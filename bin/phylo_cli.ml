(* compactphy — command-line interface.

   Subcommands: gen, stats, compact-sets, tree, compare, simulate.
   Matrices travel as PHYLIP square files (see Distmat.Matrix_io). *)

module Dist_matrix = Distmat.Dist_matrix
module Metric = Distmat.Metric
module Matrix_io = Distmat.Matrix_io
module Gen = Distmat.Gen
module Compact_sets = Cgraph.Compact_sets
module Newick = Ultra.Newick
module Solver = Bnb.Solver
module Kernel = Bnb.Kernel
module Pipeline = Compactphy.Pipeline
module Run_config = Compactphy.Run_config
module Budget = Bnb.Budget
module Checkpoint = Bnb.Checkpoint
module Decompose = Compactphy.Decompose
module Platform = Clustersim.Platform
module Dist_bnb = Clustersim.Dist_bnb
module Executor = Compactphy.Executor
module Net_exec = Compactphy.Net_exec

open Cmdliner

let read_matrix path =
  let named = Matrix_io.of_phylip (Matrix_io.read_file path) in
  (named.Matrix_io.names, named.Matrix_io.matrix)

(* --- observability plumbing (see doc/observability.mld) ---

   Every solving subcommand composes [obs_term]: it installs the Logs
   reporter honouring -v/--verbosity, and returns a config whose
   [with_obs] wrapper arranges for --trace / --metrics files to be
   written when the command finishes (also on failure). *)

type obs_cfg = {
  trace : string option;
  metrics : string option;
  progress : Obs.Progress.t option;
  telemetry_port : int option;
  telemetry_socket : string option;
  flight : string option;
  run_id : string option;
      (* trace context, minted iff some telemetry surface is on — so
         telemetry-off runs carry no id and stay byte-identical *)
}

let obs_setup style_renderer level trace metrics progress telemetry_port
    telemetry_socket flight =
  Fmt_tty.setup_std_outputs ?style_renderer ();
  Logs.set_level level;
  Logs.set_reporter (Logs_fmt.reporter ~app:Fmt.stderr ~dst:Fmt.stderr ());
  (* Progress lines are emitted at [info]; make sure they show when the
     user asked for them, whatever the global verbosity. *)
  if progress then Logs.Src.set_level Obs.Progress.src (Some Logs.Info);
  let run_id =
    if
      trace <> None || metrics <> None || telemetry_port <> None
      || telemetry_socket <> None || flight <> None || progress
    then
      Some
        (Printf.sprintf "run-%d-%Lx" (Unix.getpid ()) (Obs.Clock.now_ns ()))
    else None
  in
  {
    trace;
    metrics;
    progress =
      (if progress then Some (Obs.Progress.create ~interval_s:0.5 ())
       else None);
    telemetry_port;
    telemetry_socket;
    flight;
    run_id;
  }

let obs_term =
  let trace =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record spans and write them as Chrome-trace JSON to $(docv) \
             (open at chrome://tracing or ui.perfetto.dev).")
  in
  let metrics =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Dump the metrics registry as JSON to $(docv) on exit.")
  in
  let progress =
    Cmdliner.Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Stream live branch-and-bound progress (expanded / pruned / \
             open-list / UB-LB gap) to stderr twice a second.")
  in
  let telemetry_port =
    Cmdliner.Arg.(
      value
      & opt (some int) None
      & info [ "telemetry-port" ] ~docv:"PORT"
          ~doc:
            "Serve live telemetry over HTTP on 127.0.0.1:$(docv) while the \
             command runs: $(b,/metrics) (Prometheus text exposition), \
             $(b,/healthz) and $(b,/events) (flight-recorder NDJSON).  \
             Port 0 picks a free ephemeral port; the bound address is \
             printed to stderr.  Watch it live with $(b,phylo top).")
  in
  let telemetry_socket =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "telemetry-socket" ] ~docv:"PATH"
          ~doc:
            "Like $(b,--telemetry-port), but listen on a Unix socket at \
             $(docv) instead of a TCP port.")
  in
  let flight =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "flight-recorder" ] ~docv:"FILE"
          ~doc:
            "Arm the in-memory flight recorder and write its tail (the \
             last ~4096 events: incumbents, block lifecycles, budget \
             ticks, worker heartbeats) to $(docv) as JSON when the run \
             ends — including on Ctrl-C and crashes.")
  in
  Cmdliner.Term.(
    const obs_setup $ Fmt_cli.style_renderer () $ Logs_cli.level () $ trace
    $ metrics $ progress $ telemetry_port $ telemetry_socket $ flight)

(* Fail before the (possibly long) run, not after it, when a telemetry
   output path cannot be written. *)
let check_writable = function
  | None -> ()
  | Some path -> (
      try close_out (open_out path)
      with Sys_error e ->
        Fmt.epr "phylo: cannot write %s@." e;
        exit 1)

let with_obs cfg f =
  check_writable cfg.trace;
  check_writable cfg.metrics;
  check_writable cfg.flight;
  (* Traces stream to disk incrementally: each flush ends on a complete
     event object, so even a hard kill leaves a file the viewers (and
     Obs.Span.load_trace) still read. *)
  (match cfg.trace with
  | Some path ->
      let buf = Obs.Span.create () in
      Obs.Span.install buf;
      (* Label this process's track; worker tracks are labelled by the
         coordinator as results carrying spans arrive. *)
      Obs.Span.set_process_name buf ~pid:Obs.Span.self_pid "coordinator";
      Obs.Span.stream_to buf path
  | None -> ());
  (* Any live-telemetry surface arms the flight recorder; solver emit
     sites cost one atomic load when it stays off. *)
  let recorder =
    if cfg.telemetry_port <> None || cfg.telemetry_socket <> None
       || cfg.flight <> None
    then Some (Obs.Recorder.create ())
    else None
  in
  Option.iter Obs.Recorder.install recorder;
  let server =
    match (cfg.telemetry_port, cfg.telemetry_socket) with
    | Some _, Some _ ->
        Fmt.epr
          "phylo: give either --telemetry-port or --telemetry-socket, not \
           both@.";
        exit 1
    | Some port, None -> Some (Obs.Serve.start ?recorder ~port ())
    | None, Some path -> Some (Obs.Serve.start ?recorder ~socket:path ())
    | None, None -> None
  in
  Option.iter
    (fun srv ->
      (* Plain stderr, not Logs: scripts (and the CI smoke job) read the
         ephemeral port back from this line at any verbosity. *)
      Fmt.epr "phylo: telemetry on %s@." (Obs.Serve.addr_string srv))
    server;
  (* One cleanup, reachable two ways: the normal/exception path through
     Fun.protect, and at_exit for the hard paths (second Ctrl-C calls
     [exit], which does not unwind the stack). *)
  let cleaned = Atomic.make false in
  let cleanup () =
    if not (Atomic.exchange cleaned true) then begin
      (match (cfg.trace, Obs.Span.installed ()) with
      | Some path, Some buf ->
          Obs.Span.close_stream buf;
          Logs.info (fun m ->
              m "wrote %d spans to %s" (Obs.Span.length buf) path)
      | _ -> ());
      (match (recorder, cfg.flight) with
      | Some r, Some path ->
          Obs.Recorder.dump_flight r path;
          Fmt.epr "phylo: flight-recorder dump written to %s@." path
      | _ -> ());
      (match cfg.metrics with
      | Some path -> Obs.Metrics.write_file path
      | None -> ());
      Option.iter Obs.Serve.stop server
    end
  in
  at_exit cleanup;
  Fun.protect ~finally:cleanup f

let write_or_print output contents =
  match output with
  | None -> print_string contents
  | Some path -> Matrix_io.write_file path contents

(* --- common options --- *)

let input_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"MATRIX" ~doc:"Input distance matrix (PHYLIP square).")

let output_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write output to $(docv).")

let seed_opt =
  Arg.(
    value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let species_opt =
  Arg.(
    value
    & opt int 12
    & info [ "n"; "species" ] ~docv:"N" ~doc:"Number of species.")

(* Worker counts are validated at parse time: a zero or negative count
   would otherwise reach the library as an Invalid_argument mid-run. *)
let pos_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n ->
        Error (`Msg (Printf.sprintf "expected a count >= 1, got %d" n))
    | None -> Error (`Msg (Printf.sprintf "expected an integer, got %S" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let workers_opt =
  Arg.(
    value
    & opt (some pos_int) None
    & info [ "j"; "workers" ] ~docv:"N"
        ~doc:
          "Worker domains inside each branch-and-bound search (must be \
           >= 1; overrides the preset).")

let block_workers_opt =
  Arg.(
    value
    & opt (some pos_int) None
    & info [ "block-workers" ] ~docv:"N"
        ~doc:
          "Independent compact-set blocks solved concurrently \
           (largest-first; must be >= 1; overrides the preset).  \
           Composes with $(b,--workers): up to $(docv) * workers domains \
           run at once.  Results are identical to the sequential \
           schedule.")

let executor_opt =
  let executor_conv =
    Arg.enum
      [
        ("local", Executor.Local); ("sim", Executor.Sim); ("tcp", Executor.Tcp);
      ]
  in
  Arg.(
    value
    & opt (some executor_conv) None
    & info [ "executor" ] ~docv:"BACKEND"
        ~doc:
          "Where block solves run: $(b,local) (this process — the \
           default), $(b,sim) (the master/slave cluster simulator) or \
           $(b,tcp) (a real worker pool; requires $(b,--workers-addr) \
           and at least one $(b,phylo worker) connected).  Budgets, \
           checkpoints and manifests compose unchanged across backends.")

let addr_conv =
  let parse s =
    match Executor.parse_addr s with
    | Ok _ -> Ok s
    | Error e -> Error (`Msg e)
  in
  Arg.conv ~docv:"HOST:PORT" (parse, Format.pp_print_string)

let workers_addr_opt =
  Arg.(
    value
    & opt (some addr_conv) None
    & info [ "workers-addr" ] ~docv:"HOST:PORT"
        ~doc:
          "Bind address for the $(b,--executor tcp) coordinator.  Port \
           $(b,0) picks an ephemeral port; the bound address is logged \
           as \"worker pool listening on HOST:PORT\" so workers know \
           where to connect.")

(* Budgets: a deadline must be a positive, finite number of seconds. *)
let pos_float =
  let parse s =
    match float_of_string_opt s with
    | Some d when d > 0. && Float.is_finite d -> Ok d
    | Some d ->
        Error
          (`Msg (Printf.sprintf "expected a positive duration, got %g" d))
    | None -> Error (`Msg (Printf.sprintf "expected a number, got %S" s))
  in
  Arg.conv ~docv:"SECONDS" (parse, fun ppf d -> Format.fprintf ppf "%g" d)

let deadline_opt =
  Arg.(
    value
    & opt (some pos_float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget for the whole run.  When it fires, the \
           search stops at a clean node boundary and reports the best \
           tree found so far together with a certified lower bound \
           (status $(b,deadline)).")

let max_nodes_opt =
  Arg.(
    value
    & opt (some pos_int) None
    & info [ "max-nodes" ] ~docv:"N"
        ~doc:
          "Stop after expanding $(docv) branch-and-bound nodes across \
           the whole run (split over compact-set blocks proportionally \
           to their expected work; status $(b,node_cap)).")

let cache_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Memoize certified block solves in a content-addressed store \
           under $(docv) (created if missing).  Re-runs and runs \
           sharing sub-problems replay cached results bit-for-bit — \
           cost, topology and search counters; budget-interrupted \
           solves are never cached.  Hit/miss counters appear in \
           $(b,--metrics) dumps, $(b,/metrics) and run manifests.")

let cache_max_bytes_opt =
  Arg.(
    value
    & opt (some pos_int) None
    & info [ "cache-max-bytes" ] ~docv:"BYTES"
        ~doc:
          "Bound the on-disk size of the $(b,--cache) store: after each \
           store the oldest entries (by modification time; hits refresh \
           it) are evicted until the directory fits in $(docv) bytes.  \
           Evictions are counted in the $(b,cache.disk_evictions) \
           metric.  Unbounded when omitted.")

let linkage_opt =
  let linkage_conv =
    Arg.enum
      [ ("max", Decompose.Max); ("min", Decompose.Min); ("avg", Decompose.Avg) ]
  in
  Arg.(
    value
    & opt (some linkage_conv) None
    & info [ "linkage" ] ~docv:"KIND"
        ~doc:
          "Representative distance for small matrices: $(b,max) (the \
           paper's variant, the default), $(b,min) or $(b,avg).")

let preset_opt =
  let preset_conv =
    Arg.enum
      [
        ("paper", Run_config.Paper);
        ("fast", Run_config.Fast);
        ("exhaustive", Run_config.Exhaustive);
      ]
  in
  Arg.(
    value
    & opt (some preset_conv) None
    & info [ "preset" ] ~docv:"NAME"
        ~doc:
          "Named configuration: $(b,paper) (the published sequential \
           setup with the reference expansion kernel), $(b,fast) \
           (incremental kernels plus host-sized parallelism) or \
           $(b,exhaustive) (gather every optimal tree, best-first).  \
           Individual flags override the preset; the manifest records \
           both.")

let kernel_opt =
  let kernel_conv =
    let parse s =
      match Kernel.kind_of_string s with
      | Some k -> Ok k
      | None ->
          Error
            (`Msg
               (Printf.sprintf
                  "unknown kernel %S (expected reference or incremental)" s))
    in
    Arg.conv ~docv:"KERNEL"
      (parse, fun ppf k -> Format.pp_print_string ppf (Kernel.kind_to_string k))
  in
  Arg.(
    value
    & opt (some kernel_conv) None
    & info [ "kernel" ] ~docv:"KERNEL"
        ~doc:
          "Branch-and-bound expansion kernel: $(b,incremental) (score \
           insertions from the flat matrix, realise only un-pruned \
           children — the default) or $(b,reference) (materialise all \
           children first — the seed behaviour).  Both explore the \
           identical search tree.")

let exploration_opt =
  let exploration_conv =
    Arg.enum
      [
        ("dfs", Solver.Dfs);
        ("best-first", Solver.Best_first);
        ("best_first", Solver.Best_first);
        ("hybrid", Solver.Hybrid);
      ]
  in
  Arg.(
    value
    & opt (some exploration_conv) None
    & info [ "exploration" ] ~docv:"STRATEGY"
        ~doc:
          "Exploration strategy: $(b,dfs) (the papers' depth-first \
           search, the default), $(b,best-first) (always expand the \
           open node of least lower bound) or $(b,hybrid) (depth-first \
           dive to a complete tree, then best-first).  All three reach \
           the same optimal cost; they differ in node visits and \
           memory.")

let branching_opt =
  let branching_conv =
    Arg.enum
      [
        ("paper", Solver.Paper_order);
        ("paper_order", Solver.Paper_order);
        ("largest", Solver.Largest_first);
        ("largest_first", Solver.Largest_first);
        ("residual", Solver.Residual_lb);
        ("residual_lb", Solver.Residual_lb);
      ]
  in
  Arg.(
    value
    & opt (some branching_conv) None
    & info [ "branching" ] ~docv:"ORDER"
        ~doc:
          "Branching (child-ordering) strategy: $(b,paper) (ascending \
           lower bound, as published — the default), $(b,largest) \
           (root-nearest insertion points first) or $(b,residual) \
           (descending lower bound).")

(* A gap of exactly 0 is the exact search, so unlike durations the
   tolerance may be zero. *)
let nonneg_float =
  let parse s =
    match float_of_string_opt s with
    | Some g when g >= 0. && Float.is_finite g -> Ok g
    | Some g ->
        Error
          (`Msg
             (Printf.sprintf "expected a tolerance >= 0, got %g" g))
    | None -> Error (`Msg (Printf.sprintf "expected a number, got %S" s))
  in
  Arg.conv ~docv:"EPS" (parse, fun ppf g -> Format.fprintf ppf "%g" g)

let gap_opt =
  Arg.(
    value
    & opt (some nonneg_float) None
    & info [ "gap" ] ~docv:"EPS"
        ~doc:
          "Optimality-gap tolerance: prune once a node's lower bound \
           times $(i,1 + EPS) meets the incumbent.  The returned tree \
           is certified within a relative factor $(docv) of the \
           optimum (the exact certificate is recorded in the manifest \
           as $(b,certified_gap)).  $(b,0) (the default) keeps the \
           search exact, decision for decision.")

(* Preset first, then explicit flags on top, so [--preset fast -j 1]
   means "fast, but sequential inside each block". *)
let build_config ?deadline ?max_nodes ?cancel ~preset ~kernel ~linkage ~workers
    ~block_workers ?(exploration = None) ?(branching = None) ?(gap = None)
    ?(executor = None) ?(workers_addr = None) ?(cache = None)
    ?(cache_max_bytes = None) ?(run_id = None) ~progress () =
  let apply v f cfg = match v with Some v -> f v cfg | None -> cfg in
  Run_config.default
  |> apply preset (fun p _ -> Run_config.of_preset p)
  |> apply linkage Run_config.with_linkage
  |> apply workers Run_config.with_workers
  |> apply block_workers Run_config.with_block_workers
  |> apply executor Run_config.with_executor
  |> apply workers_addr Run_config.with_workers_addr
  |> apply cache Run_config.with_cache_dir
  |> apply cache_max_bytes Run_config.with_cache_max_bytes
  |> apply run_id Run_config.with_run_id
  |> apply kernel (fun k cfg ->
         Run_config.with_solver
           { cfg.Run_config.solver with Solver.kernel = k }
           cfg)
  |> apply exploration Run_config.with_exploration
  |> apply branching Run_config.with_branching
  |> apply gap Run_config.with_gap
  |> apply deadline Run_config.with_deadline
  |> apply max_nodes Run_config.with_max_nodes
  |> apply cancel Run_config.with_cancel
  |> apply progress Run_config.with_progress
  |> fun cfg ->
  (* Surface an incoherent flag combination (e.g. --executor tcp
     without --workers-addr) as a usage error, not a backtrace. *)
  (try Run_config.validate ~who:"phylo" cfg
   with Invalid_argument msg ->
     Fmt.epr "%s@." msg;
     Stdlib.exit 124)

(* First Ctrl-C flips the cancel flag the solvers poll cooperatively —
   the run winds down at a node boundary, reports status [cancelled]
   and writes its checkpoint if asked to; a second Ctrl-C aborts
   immediately. *)
let install_sigint () =
  let flag = Atomic.make false in
  (try
     Sys.set_signal Sys.sigint
       (Sys.Signal_handle
          (fun _ ->
            if Atomic.get flag then Stdlib.exit 130
            else begin
              Atomic.set flag true;
              prerr_endline
                "phylo: interrupted - finishing cleanly (Ctrl-C again to \
                 abort)"
            end))
   with Invalid_argument _ | Sys_error _ -> ());
  flag

let load_checkpoint path =
  match Checkpoint.load path with
  | Ok ck -> ck
  | Error e ->
      Fmt.epr "phylo: cannot resume from %s: %s@." path e;
      Stdlib.exit 1

(* The preset choice itself is not derivable from the config record;
   stamp it into manifests next to the expanded configuration. *)
let stamp_preset report preset =
  Obs.Report.set report "preset"
    (match preset with
    | Some p -> Obs.Json.String (Run_config.preset_to_string p)
    | None -> Obs.Json.Null)

(* --- --explain: human-readable search forensics --- *)

let explain_opt =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "After solving, print search forensics: pruning attribution \
           by reason and depth, the expansion/branching profile, the \
           slowest compact-set blocks with their queue waits, and \
           branch-and-bound solve-time percentiles.")

let print_explain ~stats ~report =
  Fmt.pr "@[<v>== search forensics ==@,%a@]@." Obs.Attribution.pp_summary
    stats.Bnb.Stats.att;
  (* Which strategy produced these numbers, and what the run proved. *)
  (match Obs.Report.field report "strategy" with
  | Some (Obs.Json.Obj kvs) ->
      let str k =
        match List.assoc_opt k kvs with
        | Some (Obs.Json.String s) -> s
        | _ -> "?"
      in
      let gap =
        match List.assoc_opt "gap" kvs with
        | Some (Obs.Json.Float g) -> g
        | _ -> 0.
      in
      Fmt.pr "strategy: exploration %s, branching %s, gap tolerance %g@."
        (str "exploration") (str "branching") gap
  | _ -> ());
  (match Obs.Report.field report "certified_gap" with
  | Some (Obs.Json.Float g) ->
      if Float.is_finite g then
        Fmt.pr "certified gap: %.6g (cost is within %.4g%% of the bound)@." g
          (100. *. g)
      else Fmt.pr "certified gap: unbounded (no lower bound proved)@."
  | _ -> ());
  (* Block hot-spots, from the manifest's per-block worker entries:
     where the run's wall-clock went, and whether blocks waited on the
     scheduler or on their own solve. *)
  let blocks =
    List.filter_map
      (function
        | Obs.Json.Obj kvs ->
            let num k =
              match List.assoc_opt k kvs with
              | Some (Obs.Json.Float f) -> Some f
              | Some (Obs.Json.Int i) -> Some (float_of_int i)
              | _ -> None
            in
            (match (List.assoc_opt "block" kvs, num "solve_s") with
            | Some (Obs.Json.Int b), Some s ->
                let size =
                  match List.assoc_opt "block_size" kvs with
                  | Some (Obs.Json.Int z) -> z
                  | _ -> 0
                in
                Some (b, size, s, Option.value ~default:0. (num "queue_wait_s"))
            | _ -> None)
        | _ -> None)
      (Obs.Report.workers report)
  in
  (match
     List.sort (fun (_, _, a, _) (_, _, b, _) -> Float.compare b a) blocks
   with
  | [] -> ()
  | sorted ->
      Fmt.pr "@[<v>block hot-spots (top 5 by solve time):@,";
      List.iteri
        (fun i (b, size, s, w) ->
          if i < 5 then
            Fmt.pr "  block %-3d size %-3d  solve %9.4f s  queue wait %9.4f s@,"
              b size s w)
        sorted;
      Fmt.pr "@]@.");
  let snap =
    Obs.Metrics.histogram_value (Obs.Metrics.histogram "bnb.solve_ms")
  in
  if snap.Obs.Metrics.count > 0 then
    Fmt.pr "bnb solve time: p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  (%d solves)@."
      (Obs.Metrics.histogram_quantile snap 0.50)
      (Obs.Metrics.histogram_quantile snap 0.95)
      (Obs.Metrics.histogram_quantile snap 0.99)
      snap.Obs.Metrics.count

(* --- gen --- *)

let gen_cmd =
  let kind_conv =
    Arg.enum
      [
        ("uniform", `Uniform);
        ("mtdna", `Mtdna);
        ("clustered", `Clustered);
        ("ultrametric", `Ultrametric);
        ("near-ultrametric", `Near);
      ]
  in
  let kind =
    Arg.(
      value
      & opt kind_conv `Mtdna
      & info [ "kind" ] ~docv:"KIND"
          ~doc:
            "Workload family: $(b,uniform) (the papers' random 0-100 \
             matrices), $(b,mtdna) (surrogate mitochondrial DNA), \
             $(b,clustered), $(b,ultrametric) or $(b,near-ultrametric).")
  in
  let run kind n seed output =
    let rng = Random.State.make [| seed |] in
    let m =
      match kind with
      | `Uniform -> Gen.uniform_metric ~rng n
      | `Mtdna -> (Seqsim.Mtdna.generate ~rng n).Seqsim.Mtdna.matrix
      | `Clustered ->
          Gen.clustered ~rng ~n_clusters:(Int.max 2 (n / 5)) n
      | `Ultrametric -> Gen.ultrametric ~rng n
      | `Near -> Gen.near_ultrametric ~rng n
    in
    write_or_print output (Matrix_io.to_phylip m)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a distance matrix.")
    Term.(const run $ kind $ species_opt $ seed_opt $ output_opt)

(* --- stats --- *)

let stats_cmd =
  let run input =
    let names, m = read_matrix input in
    let n = Dist_matrix.size m in
    Fmt.pr "species:          %d@." n;
    Fmt.pr "first species:    %s@." names.(0);
    Fmt.pr "metric:           %b@." (Metric.is_metric m);
    Fmt.pr "ultrametric:      %b@." (Metric.is_ultrametric m);
    Fmt.pr "max distance:     %g@." (Dist_matrix.max_entry m);
    if n >= 2 then
      Fmt.pr "min distance:     %g@." (Dist_matrix.min_off_diagonal m);
    let deco = Compactphy.Decompose.decompose m in
    Fmt.pr "compact sets:     %d@." (Compactphy.Decompose.n_blocks deco - 1);
    Fmt.pr "largest block:    %d@." (Compactphy.Decompose.largest_block deco)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Diagnostics for a distance matrix.")
    Term.(const run $ input_arg)

(* --- compact-sets --- *)

let compact_sets_cmd =
  let run input =
    let names, m = read_matrix input in
    let sets = Compact_sets.find m in
    if sets = [] then Fmt.pr "no compact sets@."
    else
      List.iter
        (fun set ->
          Fmt.pr "{%s}@."
            (String.concat ", " (List.map (fun i -> names.(i)) set)))
        sets
  in
  Cmd.v
    (Cmd.info "compact-sets"
       ~doc:"List all compact sets of the matrix's complete graph.")
    Term.(const run $ input_arg)

(* --- tree --- *)

let method_opt =
  let method_conv =
    Arg.enum
      [
        ("compact", `Compact);
        ("exact", `Exact);
        ("upgmm", `Upgmm);
        ("upgma", `Upgma);
        ("nj", `Nj);
        ("nni", `Nni);
      ]
  in
  Arg.(
    value
    & opt method_conv `Compact
    & info [ "method" ] ~docv:"M"
        ~doc:
          "Construction method: $(b,compact) (the paper's technique), \
           $(b,exact) (full branch-and-bound), the $(b,upgmm), \
           $(b,upgma), $(b,nj) heuristics, or $(b,nni) (UPGMM plus \
           local search).")

let tree_cmd =
  let nexus =
    Arg.(
      value & flag
      & info [ "nexus" ]
          ~doc:
            "Write a NEXUS document (taxa + distance matrix + tree) \
             instead of bare Newick.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "With $(b,--method exact): gather every optimal tree (the \
             companion paper's Step 7) and print them all, plus their \
             strict consensus.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Write a resumable search snapshot to $(docv) if the run \
             stops early (budget exhausted or Ctrl-C).  No file is \
             written when the search runs to completion.")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Continue from a checkpoint written by $(b,--checkpoint) \
             (same matrix, same configuration).  The resumed search \
             reaches the same optimum an uninterrupted run finds.")
  in
  let manifest_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "manifest" ] ~docv:"FILE"
          ~doc:
            "Write the run manifest (phase timings, per-block search \
             counters, status, lower bound) as JSON to $(docv).")
  in
  let run cfg input method_ preset kernel linkage workers block_workers
      exploration branching gap executor workers_addr cache cache_max_bytes
      deadline max_nodes checkpoint resume all nexus manifest explain output =
    check_writable manifest;
    check_writable checkpoint;
    with_obs cfg @@ fun () ->
    let cancel = install_sigint () in
    let config =
      build_config ?deadline ?max_nodes ~cancel ~preset ~kernel ~linkage
        ~workers ~block_workers ~exploration ~branching ~gap ~executor
        ~workers_addr ~cache ~cache_max_bytes ~run_id:cfg.run_id
        ~progress:cfg.progress ()
    in
    let names, m = read_matrix input in
    match (method_, all) with
    | `Exact, true ->
        if checkpoint <> None || resume <> None then
          Fmt.epr
            "phylo: --checkpoint/--resume are not supported with --all; \
             ignoring@.";
        let options =
          { config.Run_config.solver with Solver.collect_all = true }
        in
        let r =
          Solver.solve ~options
            ~budget:(Run_config.budget config)
            ?progress:cfg.progress m
        in
        if r.Solver.status <> Budget.Exact then
          Fmt.epr
            "status: %s (stopped early - optimal-tree collection \
             incomplete; certified lower bound %g)@."
            (Budget.status_to_string r.Solver.status)
            r.Solver.lower_bound;
        Fmt.epr "optimum %g; %d optimal tree(s)@." r.Solver.cost
          (List.length r.Solver.all_optimal);
        let buf = Buffer.create 256 in
        List.iter
          (fun t ->
            Buffer.add_string buf (Newick.to_string ~names t);
            Buffer.add_char buf '\n')
          r.Solver.all_optimal;
        List.iter
          (fun cluster ->
            Buffer.add_string buf
              ("consensus: {"
              ^ String.concat ", " (List.map (fun i -> names.(i)) cluster)
              ^ "}\n"))
          (Ultra.Consensus.strict r.Solver.all_optimal);
        write_or_print output (Buffer.contents buf)
    | _, _ ->
        let resume_ck = Option.map load_checkpoint resume in
        let solved, tree =
          match method_ with
          | `Compact ->
              let r = Pipeline.with_compact_sets ~config ?resume:resume_ck m in
              (Some r, r.Pipeline.tree)
          | `Exact ->
              let r = Pipeline.exact ~config ?resume:resume_ck m in
              (Some r, r.Pipeline.tree)
          | `Upgmm -> (None, Clustering.Linkage.upgmm m)
          | `Upgma ->
              ( None,
                Ultra.Utree.minimal_realization m (Clustering.Linkage.upgma m)
              )
          | `Nj -> (None, Clustering.Nj.ultrametric_of m)
          | `Nni ->
              (None, (Bnb.Local_search.from_upgmm m).Bnb.Local_search.tree)
        in
        (match solved with
        | Some r ->
            stamp_preset r.Pipeline.report preset;
            if r.Pipeline.status <> Budget.Exact then
              Fmt.epr "status: %s (certified lower bound %g)@."
                (Budget.status_to_string r.Pipeline.status)
                r.Pipeline.lower_bound;
            if config.Run_config.solver.Solver.gap > 0. then
              Fmt.epr "certified gap: %g (tolerance %g)@."
                r.Pipeline.certified_gap config.Run_config.solver.Solver.gap;
            (match (checkpoint, r.Pipeline.checkpoint) with
            | Some path, Some ck ->
                Checkpoint.save path ck;
                Obs.Recorder.emit_ambient (Obs.Events.Checkpoint_write { path });
                Fmt.epr "checkpoint written to %s (continue with --resume)@."
                  path
            | Some path, None ->
                (* The run finished: drop the empty placeholder that
                   [check_writable] pre-created (also prevents a stale
                   checkpoint from outliving the run it belongs to). *)
                (try Sys.remove path with Sys_error _ -> ())
            | None, _ -> ());
            (match manifest with
            | Some path -> Obs.Report.write_file r.Pipeline.report path
            | None -> ());
            if explain then
              print_explain ~stats:r.Pipeline.stats ~report:r.Pipeline.report
        | None ->
            if checkpoint <> None || resume <> None || manifest <> None
               || explain
            then
              Fmt.epr
                "phylo: --checkpoint/--resume/--manifest/--explain apply \
                 only to --method compact or exact; ignoring@.");
        Ultra.Tree_check.assert_valid m tree;
        Fmt.epr "tree cost: %g@." (Ultra.Utree.weight tree);
        if nexus then
          write_or_print output
            (Ultra.Nexus.to_string
               { Ultra.Nexus.taxa = names; matrix = Some m;
                 trees = [ ("compactphy", tree) ] })
        else write_or_print output (Newick.to_string ~names tree ^ "\n")
  in
  Cmd.v
    (Cmd.info "tree"
       ~doc:"Construct an ultrametric tree (Newick or NEXUS output).")
    Term.(
      const run $ obs_term $ input_arg $ method_opt $ preset_opt $ kernel_opt
      $ linkage_opt $ workers_opt $ block_workers_opt $ exploration_opt
      $ branching_opt $ gap_opt $ executor_opt $ workers_addr_opt $ cache_opt
      $ cache_max_bytes_opt $ deadline_opt $ max_nodes_opt $ checkpoint_arg
      $ resume_arg $ all $ nexus $ manifest_arg $ explain_opt $ output_opt)

(* --- compare --- *)

let compare_cmd =
  let manifest =
    Arg.(
      value
      & opt (some string) None
      & info [ "manifest" ] ~docv:"FILE"
          ~doc:
            "Write the run manifest (phase timings, per-block search \
             counters, headline percentages) as JSON to $(docv).")
  in
  let cap =
    Arg.(
      value
      & opt (some int) None
      & info [ "cap" ] ~docv:"N"
          ~doc:
            "Stop each branch-and-bound search after expanding $(docv) \
             nodes (the papers' budget for sizes where the exact search \
             is \"unendurable\"); capped runs report the best tree found \
             within the budget.")
  in
  let run cfg input preset kernel linkage workers block_workers exploration
      branching gap executor workers_addr cache deadline max_nodes cap manifest
      explain =
    check_writable manifest;
    with_obs cfg @@ fun () ->
    let _, m = read_matrix input in
    let cancel = install_sigint () in
    let config =
      build_config ?deadline ?max_nodes ~cancel ~preset ~kernel ~linkage
        ~workers ~block_workers ~exploration ~branching ~gap ~executor
        ~workers_addr ~cache ~run_id:cfg.run_id ~progress:cfg.progress ()
    in
    let config =
      match cap with
      | None -> config
      | Some n ->
          Run_config.with_solver
            { config.Run_config.solver with Solver.max_expanded = Some n }
            config
    in
    let c = Pipeline.compare_methods ~config m in
    stamp_preset c.Pipeline.report preset;
    Fmt.pr "@[<v>with compact sets:    cost %-12g %8.4f s (%d blocks, largest %d)@,"
      c.Pipeline.with_cs.Pipeline.cost c.Pipeline.with_cs.Pipeline.elapsed_s
      c.Pipeline.with_cs.Pipeline.n_blocks
      c.Pipeline.with_cs.Pipeline.largest_block;
    Fmt.pr "without compact sets: cost %-12g %8.4f s@,"
      c.Pipeline.without_cs.Pipeline.cost
      c.Pipeline.without_cs.Pipeline.elapsed_s;
    Fmt.pr "time saved:           %.2f %%@,cost increase:        %.2f %%@]@."
      c.Pipeline.time_saved_pct c.Pipeline.cost_increase_pct;
    (match
       (c.Pipeline.with_cs.Pipeline.status, c.Pipeline.without_cs.Pipeline.status)
     with
    | Budget.Exact, Budget.Exact -> ()
    | s_with, s_without ->
        Fmt.pr "status:               with CS %s, without CS %s@."
          (Budget.status_to_string s_with)
          (Budget.status_to_string s_without));
    Logs.info (fun msg ->
        msg "search stats with CS: %a" Bnb.Stats.pp
          c.Pipeline.with_cs.Pipeline.stats);
    Logs.info (fun msg ->
        msg "search stats without CS: %a" Bnb.Stats.pp
          c.Pipeline.without_cs.Pipeline.stats);
    if explain then begin
      Fmt.pr "@.-- with compact sets --@.";
      print_explain ~stats:c.Pipeline.with_cs.Pipeline.stats
        ~report:c.Pipeline.with_cs.Pipeline.report;
      Fmt.pr "@.-- without compact sets --@.";
      print_explain ~stats:c.Pipeline.without_cs.Pipeline.stats
        ~report:c.Pipeline.without_cs.Pipeline.report
    end;
    match manifest with
    | Some path -> Obs.Report.write_file c.Pipeline.report path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Compare construction with and without compact sets.")
    Term.(
      const run $ obs_term $ input_arg $ preset_opt $ kernel_opt $ linkage_opt
      $ workers_opt $ block_workers_opt $ exploration_opt $ branching_opt
      $ gap_opt $ executor_opt $ workers_addr_opt $ cache_opt $ deadline_opt
      $ max_nodes_opt $ cap $ manifest $ explain_opt)

(* --- render --- *)

let render_cmd =
  let svg =
    Arg.(
      value & flag
      & info [ "svg" ] ~doc:"Emit an SVG document instead of ASCII art.")
  in
  let run cfg input method_ preset kernel linkage workers block_workers
      exploration branching gap svg output =
    with_obs cfg @@ fun () ->
    let config =
      build_config ~preset ~kernel ~linkage ~workers ~block_workers
        ~exploration ~branching ~gap ~progress:cfg.progress ()
    in
    let names, m = read_matrix input in
    let tree =
      match method_ with
      | `Compact -> (Pipeline.with_compact_sets ~config m).Pipeline.tree
      | `Exact -> (Pipeline.exact ~config m).Pipeline.tree
      | `Upgmm -> Clustering.Linkage.upgmm m
      | `Upgma ->
          Ultra.Utree.minimal_realization m (Clustering.Linkage.upgma m)
      | `Nj -> Clustering.Nj.ultrametric_of m
      | `Nni -> (Bnb.Local_search.from_upgmm m).Bnb.Local_search.tree
    in
    let rendered =
      if svg then Ultra.Render.to_svg ~names tree
      else Ultra.Render.to_ascii ~names tree
    in
    write_or_print output rendered
  in
  Cmd.v
    (Cmd.info "render"
       ~doc:"Construct a tree and draw it as an ASCII or SVG dendrogram.")
    Term.(
      const run $ obs_term $ input_arg $ method_opt $ preset_opt $ kernel_opt
      $ linkage_opt $ workers_opt $ block_workers_opt $ exploration_opt
      $ branching_opt $ gap_opt $ svg $ output_opt)

(* --- treedist --- *)

let treedist_cmd =
  let tree_a =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TREE_A" ~doc:"First tree (Newick).")
  in
  let tree_b =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"TREE_B" ~doc:"Second tree (Newick).")
  in
  let run a b =
    let load path = Ultra.Newick.of_string (Matrix_io.read_file path) in
    let ta = load a and tb = load b in
    Fmt.pr "Robinson-Foulds: %d (normalised %.4f)@."
      (Ultra.Rf_distance.distance ta tb)
      (Ultra.Rf_distance.normalized ta tb);
    Fmt.pr "triplet:         %d (normalised %.4f)@."
      (Ultra.Triplet_distance.distance ta tb)
      (Ultra.Triplet_distance.normalized ta tb)
  in
  Cmd.v
    (Cmd.info "treedist"
       ~doc:
         "Robinson-Foulds and triplet distances between two Newick trees \
          (integer leaf labels).")
    Term.(const run $ tree_a $ tree_b)

(* --- report --- *)

let html_report ~names ~m ~deco ~sets ~fast ~upgmm =
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n = Dist_matrix.size m in
  add "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n";
  add "<title>compactphy report</title>\n";
  add
    "<style>body{font-family:sans-serif;max-width:60em;margin:2em \
     auto}table{border-collapse:collapse}td,th{border:1px solid \
     #999;padding:0.3em 0.7em}code{background:#f4f4f4}</style>\n";
  add "</head><body>\n<h1>compactphy report</h1>\n";
  add "<h2>Matrix</h2>\n<table>\n";
  add "<tr><th>species</th><td>%d</td></tr>\n" n;
  add "<tr><th>metric</th><td>%b</td></tr>\n" (Metric.is_metric m);
  add "<tr><th>ultrametric</th><td>%b</td></tr>\n" (Metric.is_ultrametric m);
  add "<tr><th>distance range</th><td>%g &ndash; %g</td></tr>\n"
    (if n >= 2 then Dist_matrix.min_off_diagonal m else 0.)
    (Dist_matrix.max_entry m);
  add "</table>\n<h2>Compact sets</h2>\n";
  add "<p>%d compact sets; largest exact subproblem: %d species.</p>\n<ul>\n"
    (List.length sets)
    (Compactphy.Decompose.largest_block deco);
  List.iter
    (fun set ->
      add "<li>{%s}</li>\n"
        (String.concat ", " (List.map (fun i -> names.(i)) set)))
    sets;
  add "</ul>\n<h2>Trees</h2>\n<table>\n";
  add "<tr><th>compact-set tree cost</th><td>%.4f (%.4f s, %d blocks)</td></tr>\n"
    fast.Pipeline.cost fast.Pipeline.elapsed_s fast.Pipeline.n_blocks;
  add "<tr><th>UPGMM heuristic cost</th><td>%.4f</td></tr>\n"
    (Ultra.Utree.weight upgmm);
  add
    "<tr><th>3-3 contradictions</th><td>compact %d, UPGMM %d</td></tr>\n"
    (Bnb.Relation33.count_contradictions m fast.Pipeline.tree)
    (Bnb.Relation33.count_contradictions m upgmm);
  add "</table>\n<h2>Dendrogram</h2>\n%s\n"
    (Ultra.Render.to_svg ~names fast.Pipeline.tree);
  add "<h2>Newick</h2>\n<p><code>%s</code></p>\n"
    (Ultra.Newick.to_string ~names fast.Pipeline.tree);
  add "</body></html>\n";
  Buffer.contents buf

let report_cmd =
  let html =
    Arg.(
      value & flag
      & info [ "html" ]
          ~doc:"Emit a standalone HTML report (with an SVG dendrogram) \
                instead of text.")
  in
  let run cfg input preset kernel linkage workers block_workers exploration
      branching gap html output =
    with_obs cfg @@ fun () ->
    let config =
      build_config ~preset ~kernel ~linkage ~workers ~block_workers
        ~exploration ~branching ~gap ~progress:cfg.progress ()
    in
    let names, m = read_matrix input in
    let n = Dist_matrix.size m in
    if html then begin
      let deco = Compactphy.Decompose.decompose m in
      let sets = Cgraph.Compact_sets.find m in
      let fast = Pipeline.with_compact_sets ~config m in
      let upgmm = Clustering.Linkage.upgmm m in
      write_or_print output (html_report ~names ~m ~deco ~sets ~fast ~upgmm)
    end
    else begin
    Fmt.pr "# compactphy report@.@.";
    Fmt.pr "## Matrix@.@.";
    Fmt.pr "- species: %d@." n;
    Fmt.pr "- metric: %b, ultrametric: %b@." (Metric.is_metric m)
      (Metric.is_ultrametric m);
    Fmt.pr "- distance range: %g .. %g@.@."
      (if n >= 2 then Dist_matrix.min_off_diagonal m else 0.)
      (Dist_matrix.max_entry m);
    Fmt.pr "## Compact sets@.@.";
    let deco = Decompose.decompose m in
    let sets = Cgraph.Compact_sets.find m in
    Fmt.pr "- %d compact sets; largest exact subproblem: %d species@.@."
      (List.length sets)
      (Decompose.largest_block deco);
    List.iter
      (fun set ->
        Fmt.pr "  - {%s}@."
          (String.concat ", " (List.map (fun i -> names.(i)) set)))
      sets;
    Fmt.pr "@.## Trees@.@.";
    let fast = Pipeline.with_compact_sets ~config m in
    Fmt.pr "- compact-set tree: cost %.4f in %.4f s (%d blocks)@."
      fast.Pipeline.cost fast.Pipeline.elapsed_s fast.Pipeline.n_blocks;
    let upgmm = Clustering.Linkage.upgmm m in
    Fmt.pr "- UPGMM heuristic:  cost %.4f@." (Ultra.Utree.weight upgmm);
    Fmt.pr "- 3-3 contradictions (tree vs matrix): compact %d, UPGMM %d@.@."
      (Bnb.Relation33.count_contradictions m fast.Pipeline.tree)
      (Bnb.Relation33.count_contradictions m upgmm);
    Fmt.pr "## Dendrogram@.@.%s@."
      (Ultra.Render.to_ascii ~names fast.Pipeline.tree);
    Fmt.pr "## Newick@.@.%s@."
      (Ultra.Newick.to_string ~names fast.Pipeline.tree)
    end
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Full analysis report of a matrix (markdown-flavoured text, or \
          HTML with $(b,--html)).")
    Term.(
      const run $ obs_term $ input_arg $ preset_opt $ kernel_opt $ linkage_opt
      $ workers_opt $ block_workers_opt $ exploration_opt $ branching_opt
      $ gap_opt $ html $ output_opt)

(* --- align (the sequences model, from FASTA) --- *)

let align_cmd =
  let fasta_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FASTA" ~doc:"Unaligned sequences (FASTA).")
  in
  let matrix_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "matrix" ] ~docv:"FILE"
          ~doc:"Also write the alignment-derived distance matrix (PHYLIP).")
  in
  let with_tree =
    Arg.(
      value & flag
      & info [ "tree" ]
          ~doc:"Also construct the compact-set tree and print it (Newick).")
  in
  let bootstrap =
    Arg.(
      value
      & opt int 0
      & info [ "bootstrap" ] ~docv:"N"
          ~doc:"With $(b,--tree): annotate clades with $(docv)-replicate \
                bootstrap support.")
  in
  let run cfg fasta matrix_out with_tree bootstrap workers output =
    with_obs cfg @@ fun () ->
    let entries = Seqsim.Fasta.read_file fasta in
    let names = Array.of_list (List.map (fun e -> e.Seqsim.Fasta.name) entries) in
    let seqs = Array.of_list (List.map (fun e -> e.Seqsim.Fasta.seq) entries) in
    let msa = Align.Msa.align seqs in
    let buf = Buffer.create 1024 in
    Array.iteri
      (fun i row ->
        Buffer.add_string buf
          (Printf.sprintf "%-12s %s\n" names.(i) (Align.Gapped.to_string row)))
      msa.Align.Msa.rows;
    let m = Align.Msa.distance_matrix msa in
    (match matrix_out with
    | Some path -> Matrix_io.write_file path (Matrix_io.to_phylip ~names m)
    | None -> ());
    if with_tree then begin
      let config =
        build_config ~preset:None ~kernel:None ~linkage:None ~workers
          ~block_workers:None ~progress:cfg.progress ()
      in
      let r = Pipeline.with_compact_sets ~config m in
      Buffer.add_string buf
        (Newick.to_string ~names r.Pipeline.tree ^ "\n");
      if bootstrap > 0 then begin
        (* Resample alignment columns; gaps become the row-consensus-free
           placeholder A, a standard quick approximation. *)
        let as_dna =
          Array.map
            (Array.map (function
              | Align.Gapped.Base b -> b
              | Align.Gapped.Gap -> Seqsim.Dna.A))
            msa.Align.Msa.rows
        in
        let support =
          Seqsim.Bootstrap.support
            ~rng:(Random.State.make [| 2005 |])
            ~replicates:bootstrap
            ~construct:(fun m -> (Pipeline.with_compact_sets m).Pipeline.tree)
            ~reference:r.Pipeline.tree as_dna
        in
        List.iter
          (fun (clade, sup) ->
            Buffer.add_string buf
              (Printf.sprintf "support {%s}: %.0f%%\n"
                 (String.concat ","
                    (List.map (fun i -> names.(i)) clade))
                 (100. *. sup)))
          support
      end
    end;
    write_or_print output (Buffer.contents buf)
  in
  Cmd.v
    (Cmd.info "align"
       ~doc:
         "Progressively align FASTA sequences; optionally derive the \
          distance matrix and the compact-set tree with bootstrap \
          support.")
    Term.(
      const run $ obs_term $ fasta_arg $ matrix_out $ with_tree $ bootstrap
      $ workers_opt $ output_opt)

(* --- obs: manifest diffing and the perf-regression gate --- *)

let rule_conv =
  let parse s =
    match String.index_opt s '=' with
    | None -> Error (`Msg (Printf.sprintf "expected KEY=REL, got %S" s))
    | Some i ->
        let key = String.sub s 0 i in
        let v = String.sub s (i + 1) (String.length s - i - 1) in
        (match float_of_string_opt v with
        | Some rel when rel >= 0. && Float.is_finite rel ->
            Ok (Obs.Diff.rule key rel)
        | Some _ | None ->
            Error
              (`Msg
                 (Printf.sprintf "bad relative threshold %S (want e.g. 0.02)"
                    v)))
  in
  Arg.conv ~docv:"KEY=REL"
    ( parse,
      fun ppf r ->
        Format.fprintf ppf "%s=%g" r.Obs.Diff.key r.Obs.Diff.max_rel )

let thresholds_opt =
  Arg.(
    value
    & opt_all rule_conv []
    & info [ "thr"; "threshold" ] ~docv:"KEY=REL"
        ~doc:
          "Add a gating rule: $(i,KEY) is a metric path \
           ($(b,stats.expanded)), a bare field name ($(b,expanded)), or \
           a dotted prefix ending in '.' ($(b,attribution.)); \
           $(i,REL) is the allowed relative change (0.02 = ±2%).  \
           Repeatable; user rules take precedence over the defaults.")

let obs_rules user = user @ Obs.Diff.default_rules

let load_manifest path =
  match Obs.Diff.load_entry path with
  | Ok j -> j
  | Error e ->
      Fmt.epr "compactphy obs: %s@." e;
      exit 2

let manifest_pos n name =
  Arg.(
    required
    & pos n (some file) None
    & info [] ~docv:name
        ~doc:
          (Printf.sprintf
             "%s manifest (a run/bench manifest JSON file, or an \
              append-only $(b,BENCH_*.json) trajectory, in which case \
              its latest entry is used)."
             name))

let print_diff_failures d =
  let open Obs.Diff in
  List.iter
    (fun e ->
      Fmt.pr "  %s: %g -> %g (%+.2f%%, limit ±%.0f%%)@." e.path e.base e.cur
        (100. *. e.rel)
        (100. *. Option.value ~default:Float.nan e.threshold))
    (regressions d)

let obs_diff_cmd =
  let markdown =
    Arg.(
      value & flag
      & info [ "markdown" ]
          ~doc:"Render a markdown table instead of structured JSON.")
  in
  let run base cur rules markdown =
    let d =
      Obs.Diff.diff ~rules:(obs_rules rules) ~base:(load_manifest base)
        ~cur:(load_manifest cur) ()
    in
    if markdown then
      print_string
        (Obs.Diff.to_markdown
           ~title:(Printf.sprintf "%s vs %s" base cur)
           d)
    else print_endline (Obs.Json.to_string (Obs.Diff.to_json d))
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Structured delta between two manifests: every numeric leaf \
          compared path-wise, classified against relative thresholds.")
    Term.(
      const run $ manifest_pos 0 "BASE" $ manifest_pos 1 "CURRENT"
      $ thresholds_opt $ markdown)

let baseline_dir_opt =
  Arg.(
    required
    & opt (some dir) None
    & info [ "baseline" ] ~docv:"DIR"
        ~doc:"Directory of committed baseline manifests ($(b,*.json)).")

let obs_check_cmd =
  let current =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"CURRENT"
          ~doc:"Directory of freshly produced manifests to gate.")
  in
  let run baseline current rules =
    match
      Obs.Diff.check_dirs ~rules:(obs_rules rules) ~baseline ~current ()
    with
    | Error e ->
        Fmt.epr "compactphy obs check: %s@." e;
        exit 2
    | Ok reports ->
        List.iter
          (fun { Obs.Diff.file; result } ->
            match result with
            | Error e -> Fmt.pr "FAIL %s: %s@." file e
            | Ok d when Obs.Diff.has_regression d ->
                Fmt.pr "FAIL %s@." file;
                print_diff_failures d
            | Ok d ->
                Fmt.pr "OK   %s (%d metrics compared)@." file
                  (List.length d.Obs.Diff.entries))
          reports;
        if Obs.Diff.dirs_regressed reports then begin
          Fmt.pr "perf gate: REGRESSED@.";
          exit 1
        end
        else Fmt.pr "perf gate: ok@."
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Gate a directory of manifests against committed baselines: \
          compare same-named $(b,*.json) files and exit non-zero on any \
          threshold breach (the CI perf gate).")
    Term.(const run $ baseline_dir_opt $ current $ thresholds_opt)

let obs_report_cmd =
  let run base cur rules =
    let d =
      Obs.Diff.diff ~rules:(obs_rules rules) ~base:(load_manifest base)
        ~cur:(load_manifest cur) ()
    in
    print_string
      (Obs.Diff.to_markdown ~title:(Printf.sprintf "%s vs %s" base cur) d)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Markdown comparison table between two manifests (for PR \
          comments and bench summaries).")
    Term.(
      const run $ manifest_pos 0 "BASE" $ manifest_pos 1 "CURRENT"
      $ thresholds_opt)

let obs_timeline_cmd =
  let trace_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE"
          ~doc:
            "A Chrome-trace JSON file written by $(b,--trace) — including \
             merged multi-process traces from $(b,--executor tcp) runs.")
  in
  let manifest_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "manifest" ] ~docv:"FILE"
          ~doc:
            "Reconcile the timeline against this run manifest: the trace \
             envelope and every job must fit the manifest's \
             $(b,elapsed_s) wall clock (within $(b,--tol)); exits 2 on \
             any violation.")
  in
  let tol_arg =
    Arg.(
      value
      & opt nonneg_float 0.25
      & info [ "tol" ] ~docv:"REL"
          ~doc:
            "Relative tolerance for $(b,--manifest) reconciliation \
             (clock-offset estimation is only accurate to about one \
             network round trip).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the timeline as JSON instead of text.")
  in
  let run trace manifest tol json =
    match Obs.Span.load_trace trace with
    | Error e ->
        Fmt.epr "compactphy obs timeline: %s@." e;
        exit 2
    | Ok events -> (
        let t = Obs.Timeline.of_events events in
        if json then print_endline (Obs.Json.to_string (Obs.Timeline.to_json t))
        else print_string (Obs.Timeline.render t);
        match manifest with
        | None -> ()
        | Some path -> (
            let wall_s =
              match
                Option.bind
                  (Obs.Json.member "elapsed_s" (load_manifest path))
                  Obs.Json.to_float_opt
              with
              | Some w -> w
              | None ->
                  Fmt.epr
                    "compactphy obs timeline: %s has no elapsed_s field@."
                    path;
                  exit 2
            in
            match Obs.Timeline.reconcile ~tol t ~wall_s with
            | Ok () ->
                Fmt.pr "timeline: reconciled with %s (wall %.4fs, tol %g)@."
                  path wall_s tol
            | Error problems ->
                List.iter
                  (fun p -> Fmt.epr "timeline: MISMATCH %s@." p)
                  problems;
                exit 2))
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Per-job / per-request critical-path breakdown (queue wait, \
          network, solve, cache provenance) out of a merged Chrome \
          trace, with optional reconciliation against the run manifest.")
    Term.(const run $ trace_arg $ manifest_arg $ tol_arg $ json_arg)

let obs_cmd =
  Cmd.group
    (Cmd.info "obs"
       ~doc:
         "Observability tooling: diff run manifests, render comparison \
          reports, reconstruct timelines from traces, and gate on perf \
          regressions.")
    [ obs_diff_cmd; obs_check_cmd; obs_report_cmd; obs_timeline_cmd ]

(* --- top: live dashboard over a running solve's telemetry --- *)

let top_cmd =
  let addr_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ADDR"
          ~doc:
            "Telemetry endpoint of a running solve: $(b,HOST:PORT), a bare \
             port, an $(b,http://) URL, or the path of a Unix socket — \
             whatever the solving command printed as \"telemetry on ...\".")
  in
  let interval =
    Arg.(
      value
      & opt pos_float 1.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh interval.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Render a single frame as plain lines and exit (for scripts \
             and tests).")
  in
  let poll_events target st =
    match
      Obs.Serve.get target
        (Printf.sprintf "/events?since=%d" (Obs.Top.last_seq st))
    with
    | Ok (200, body) ->
        List.filter_map
          (fun line ->
            if String.trim line = "" then None
            else
              match Obs.Json.of_string line with
              | Ok j -> Some j
              | Error _ -> None)
          (String.split_on_char '\n' body)
    | Ok _ | Error _ -> []
  in
  let poll_dropped target =
    match Obs.Serve.get target "/healthz" with
    | Ok (_, body) -> (
        match Obs.Json.of_string body with
        | Ok j ->
            Option.value ~default:0
              (Option.bind (Obs.Json.member "dropped" j) Obs.Json.to_int_opt)
        | Error _ -> 0)
    | Error _ -> 0
  in
  let run addr interval once =
    match Obs.Serve.target_of_string addr with
    | Error e ->
        Fmt.epr "phylo top: %s@." e;
        exit 1
    | Ok target ->
        (* ANSI repaints only on an interactive stdout; redirected output
           (and --once) gets plain frames. *)
        let tty = (not once) && Unix.isatty Unix.stdout in
        if tty then print_string "\x1b[2J";
        let rec loop st failures =
          match Obs.Serve.get target "/metrics" with
          | Error e ->
              (* A run that has not bound yet (or just exited) is not an
                 error worth dying for in watch mode; give it a few
                 polls. *)
              if once || failures >= 5 then begin
                Fmt.epr "phylo top: %s: %s@." addr e;
                exit 1
              end
              else begin
                Unix.sleepf interval;
                loop st (failures + 1)
              end
          | Ok (_, body) ->
              let metrics = Obs.Top.parse_prometheus body in
              let events = poll_events target st in
              let dropped = poll_dropped target in
              let st =
                Obs.Top.update st ~now_s:(Unix.gettimeofday ()) ~events
                  ~metrics ~dropped
              in
              print_string (Obs.Top.render ~tty st);
              if (not tty) && not once then print_newline ();
              flush stdout;
              if not once then begin
                Unix.sleepf interval;
                loop st 0
              end
        in
        loop Obs.Top.init 0
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard for a running solve: poll its telemetry endpoint \
          (see $(b,--telemetry-port)) and render incumbent/gap, block \
          progress, nodes/s, prune shares and worker heartbeats.")
    Term.(const run $ addr_arg $ interval $ once)

(* --- simulate --- *)

let simulate_cmd =
  let slaves =
    Arg.(
      value
      & opt int 16
      & info [ "slaves" ] ~docv:"N" ~doc:"Simulated slave nodes.")
  in
  let grid =
    Arg.(
      value & flag
      & info [ "grid" ]
          ~doc:"Use the grid platform (WAN latency) instead of the cluster.")
  in
  let manifest =
    Arg.(
      value
      & opt (some string) None
      & info [ "manifest" ] ~docv:"FILE"
          ~doc:
            "Write the run manifest (per-slave expansion/pruning counters \
             and utilization) as JSON to $(docv).")
  in
  let run cfg input slaves grid manifest =
    check_writable manifest;
    with_obs cfg @@ fun () ->
    let _, m = read_matrix input in
    let platform =
      if grid then Platform.grid ~sites:[ (slaves, 30_000.) ]
      else Platform.cluster slaves
    in
    let r = Dist_bnb.run platform m in
    Fmt.pr "@[<v>cost:       %g@,makespan:   %.6f virtual s@,"
      r.Dist_bnb.cost r.Dist_bnb.makespan;
    Fmt.pr "expansions: %d@,messages:   %d@]@." r.Dist_bnb.expansions
      r.Dist_bnb.messages;
    match manifest with
    | Some path -> Obs.Report.write_file r.Dist_bnb.report path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the construction on the simulated cluster or grid.")
    Term.(const run $ obs_term $ input_arg $ slaves $ grid $ manifest)

(* --- worker --- *)

let worker_cmd =
  let connect =
    Arg.(
      required
      & opt (some addr_conv) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:
            "Coordinator to join — the address a $(b,--executor tcp) \
             run logs as \"worker pool listening on HOST:PORT\".")
  in
  let die_after =
    Arg.(
      value
      & opt (some pos_int) None
      & info [ "die-after" ] ~docv:"N"
          ~doc:
            "Fault injection for tests and drills: drop the connection \
             abruptly (no goodbye, as a crash would) when the \
             $(docv)-th job arrives.  The coordinator retries the lost \
             job on another worker.")
  in
  let heartbeat =
    Arg.(
      value
      & opt pos_float 1.0
      & info [ "heartbeat" ] ~docv:"SECONDS"
          ~doc:
            "Interval between heartbeat frames while solving (default \
             1 s).  Heartbeats feed the coordinator's event ring, so \
             $(b,/healthz) staleness reflects worker liveness.")
  in
  let run cfg connect die_after heartbeat cache cache_max_bytes =
    with_obs cfg @@ fun () ->
    (* The hook lives in this worker process: cached jobs sent by a
       coordinator are answered from the local store without solving. *)
    Option.iter
      (fun dir ->
        Compactphy.Subsolve_cache.install
          (Compactphy.Subsolve_cache.get_or_create ~dir
             ?max_bytes:cache_max_bytes ()))
      cache;
    Fmt.epr "phylo worker: connecting to %s@." connect;
    match
      Net_exec.run_worker ?die_after_jobs:die_after
        ~heartbeat_every_s:heartbeat ~connect ()
    with
    | `Shutdown -> Fmt.epr "phylo worker: coordinator shut down; exiting@."
    | `Eof -> Fmt.epr "phylo worker: connection closed; exiting@."
    | `Died -> Fmt.epr "phylo worker: injected fault fired; exiting@."
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Join a TCP worker pool and solve branch-and-bound jobs for a \
          coordinator started with --executor tcp.")
    Term.(
      const run $ obs_term $ connect $ die_after $ heartbeat $ cache_opt
      $ cache_max_bytes_opt)

(* --- serve --- *)

let serve_cmd =
  let port =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT"
          ~doc:
            "TCP port to listen on (default 0: a free ephemeral port; \
             the bound address is printed to stderr).")
  in
  let host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind (default local).")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix socket at $(docv) instead of a TCP port.")
  in
  let pool_workers =
    Arg.(
      value
      & opt (some pos_int) None
      & info [ "pool-workers" ] ~docv:"N"
          ~doc:
            "Concurrent solves (the persistent domain pool's size; \
             default: the configuration's block workers).")
  in
  let run cfg preset kernel linkage workers block_workers exploration
      branching gap cache cache_max_bytes deadline max_nodes port host socket
      pool_workers =
    with_obs cfg @@ fun () ->
    let cancel = install_sigint () in
    (* A daemon should log its accesses: raise the listener's source to
       [info] so the one-line-per-request access log (with request ids)
       shows at default verbosity.  -q still silences it. *)
    if Logs.level () <> None then
      Logs.Src.set_level Obs.Serve.src (Some Logs.Info);
    (* No [run_id] here: each /solve request mints its own request id
       as the trace context (see Server). *)
    let config =
      build_config ?deadline ?max_nodes ~cancel ~preset ~kernel ~linkage
        ~workers ~block_workers ~exploration ~branching ~gap ~cache
        ~cache_max_bytes ~progress:cfg.progress ()
    in
    if port <> None && socket <> None then begin
      Fmt.epr "phylo serve: give either --port or --socket, not both@.";
      exit 1
    end;
    let server =
      match socket with
      | Some path -> Compactphy.Server.start ~config ~socket:path ?pool_workers ()
      | None ->
          Compactphy.Server.start ~config ~host
            ~port:(Option.value ~default:0 port)
            ?pool_workers ()
    in
    (* Plain stderr, not Logs: scripts and the CI smoke job read the
       ephemeral address back from this line at any verbosity. *)
    Fmt.epr "phylo serve: listening on %s@."
      (Compactphy.Server.addr_string server);
    Fmt.epr "phylo serve: POST a PHYLIP matrix to /solve (Ctrl-C to stop)@.";
    while not (Atomic.get cancel) do
      Unix.sleepf 0.2
    done;
    Fmt.epr "phylo serve: draining %d in-flight request(s)@."
      (Compactphy.Server.queue_depth server);
    Compactphy.Server.stop server
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the tree-construction daemon: POST PHYLIP matrices to \
          /solve, with the sub-solve cache and domain pool kept warm \
          across requests, plus the /metrics, /healthz and /status \
          telemetry endpoints.")
    Term.(
      const run $ obs_term $ preset_opt $ kernel_opt $ linkage_opt
      $ workers_opt $ block_workers_opt $ exploration_opt $ branching_opt
      $ gap_opt $ cache_opt $ cache_max_bytes_opt $ deadline_opt
      $ max_nodes_opt $ port $ host $ socket $ pool_workers)

let () =
  let doc =
    "Fast evolutionary-tree construction with compact sets (PaCT 2005)."
  in
  (* Wire the simulator into [--executor sim]: Clustersim depends on
     Compactphy, so the backend registers itself at program start. *)
  Clustersim.Sim_exec.register ();
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "compactphy" ~version:"1.0.0" ~doc)
          [
            gen_cmd;
            stats_cmd;
            compact_sets_cmd;
            tree_cmd;
            compare_cmd;
            render_cmd;
            treedist_cmd;
            report_cmd;
            align_cmd;
            obs_cmd;
            top_cmd;
            simulate_cmd;
            worker_cmd;
            serve_cmd;
          ]))
