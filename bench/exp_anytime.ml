(* Anytime quality: how fast does the budgeted branch-and-bound close
   the gap between its incumbent and the certified lower bound?

   One exact solve per node-cap on the same mtDNA workload, smallest
   budget first, plus an unlimited reference run.  Each row reports the
   incumbent cost, the certified global lower bound carried by the
   interrupted search, and the relative gap — the curve the anytime
   layer exists to flatten.  Invariants checked along the way: budgeted
   incumbents never beat the exact optimum, never lose to smaller
   budgets, and the certified bound never exceeds the optimum. *)

module Pipeline = Compactphy.Pipeline
module Run_config = Compactphy.Run_config
module Budget = Bnb.Budget

let caps ~quick =
  if quick then [ 1; 8; 64; 512 ] else [ 1; 8; 64; 512; 4096 ]

let run_with_cap m cap =
  let config =
    match cap with
    | Some cap -> Run_config.(default |> with_max_nodes cap)
    | None -> Run_config.default
  in
  Pipeline.exact ~config m

let quality ~quick () =
  let n = if quick then 18 else 24 in
  let m = Workloads.mtdna ~seed:11 n in
  let budgeted =
    List.map (fun cap -> (Some cap, run_with_cap m (Some cap))) (caps ~quick)
  in
  let reference = (None, run_with_cap m None) in
  let rows = budgeted @ [ reference ] in
  let optimum = (snd reference).Pipeline.cost in
  if (snd reference).Pipeline.status <> Budget.Exact then
    failwith "anytime-quality: unlimited run did not report Exact";
  List.iter
    (fun (_, r) ->
      if r.Pipeline.cost +. 1e-9 < optimum then
        failwith "anytime-quality: budgeted incumbent beats the optimum";
      if r.Pipeline.lower_bound > optimum +. 1e-9 then
        failwith "anytime-quality: certified bound exceeds the optimum")
    rows;
  (let costs = List.map (fun (_, r) -> r.Pipeline.cost) rows in
   let rec monotone = function
     | a :: (b :: _ as rest) ->
         if b > a +. 1e-9 then
           failwith "anytime-quality: incumbent worsened with a larger budget";
         monotone rest
     | _ -> ()
   in
   monotone costs);
  let gap_pct r =
    let lb = r.Pipeline.lower_bound in
    if lb <= 0. then 0. else (r.Pipeline.cost -. lb) /. lb *. 100.
  in
  Table.print
    ~title:
      (Printf.sprintf "Anytime quality — exact solve, %d mtDNA species" n)
    ~headers:
      [ "max nodes"; "time"; "cost"; "lower bound"; "status"; "gap" ]
    (List.map
       (fun (cap, r) ->
         [
           (match cap with Some c -> Table.d c | None -> "unlimited");
           Table.seconds r.Pipeline.elapsed_s;
           Table.f4 r.Pipeline.cost;
           Table.f4 r.Pipeline.lower_bound;
           Budget.status_to_string r.Pipeline.status;
           Table.pct (gap_pct r);
         ])
       rows);
  Manifest.record (fun rep ->
      Obs.Report.set rep "n" (Obs.Json.Int n);
      Obs.Report.set rep "optimum" (Obs.Json.Float optimum);
      List.iter
        (fun (cap, r) ->
          Obs.Report.add_worker rep
            [
              ( "max_nodes",
                match cap with
                | Some c -> Obs.Json.Int c
                | None -> Obs.Json.Null );
              ("elapsed_s", Obs.Json.Float r.Pipeline.elapsed_s);
              ("cost", Obs.Json.Float r.Pipeline.cost);
              ("lower_bound", Obs.Json.Float r.Pipeline.lower_bound);
              ("status", Budget.status_to_json r.Pipeline.status);
              ("gap_pct", Obs.Json.Float (gap_pct r));
            ])
        rows)
