(* Strategy sweep: exploration x gap-tolerance grid, plus the branching
   orders, all on one mtDNA workload.

   Every eps = 0 cell must land on the same optimal cost whatever the
   exploration or branching order — the strategies change the visit
   sequence, never the optimum.  Every eps > 0 cell must respect its
   certificate: cost within (1 + eps) of the exact optimum and a
   recorded certified gap no larger than the configured tolerance.  The
   expansion counts per cell are the diffable perf signal the trajectory
   file (BENCH_strategies.json) tracks across commits. *)

module Pipeline = Compactphy.Pipeline
module Run_config = Compactphy.Run_config
module Solver = Bnb.Solver
module Budget = Bnb.Budget
module Stats = Bnb.Stats

let explorations =
  [ ("dfs", Solver.Dfs); ("best_first", Solver.Best_first);
    ("hybrid", Solver.Hybrid) ]

let branchings =
  [ ("paper_order", Solver.Paper_order);
    ("largest_first", Solver.Largest_first);
    ("residual_lb", Solver.Residual_lb) ]

let gaps ~quick = if quick then [ 0.; 0.05 ] else [ 0.; 0.02; 0.1 ]

let solve m ~search ~branching ~gap =
  let config =
    Run_config.(
      default |> with_exploration search |> with_branching branching
      |> with_gap gap)
  in
  Pipeline.exact ~config m

let sweep ~quick () =
  let n = if quick then 14 else 18 in
  let m = Workloads.mtdna ~seed:23 n in
  (* Exploration x gap grid, paper branching order. *)
  let grid =
    List.concat_map
      (fun (ename, search) ->
        List.map
          (fun gap ->
            ( Printf.sprintf "%s_g%g" ename gap,
              ename,
              gap,
              solve m ~search ~branching:Solver.Paper_order ~gap ))
          (gaps ~quick))
      explorations
  in
  (* Branching orders at eps = 0, DFS. *)
  let borders =
    List.map
      (fun (bname, branching) ->
        ( Printf.sprintf "branch_%s" bname,
          bname,
          0.,
          solve m ~search:Solver.Dfs ~branching ~gap:0. ))
      branchings
  in
  let rows = grid @ borders in
  let optimum =
    match
      List.find_opt (fun (id, _, _, _) -> id = "dfs_g0") rows
    with
    | Some (_, _, _, r) -> r.Pipeline.cost
    | None -> failwith "strategies-sweep: missing dfs_g0 reference cell"
  in
  List.iter
    (fun (id, _, gap, (r : Pipeline.run)) ->
      if r.Pipeline.status <> Budget.Exact then
        failwith
          (Printf.sprintf "strategies-sweep: %s did not complete (%s)" id
             (Budget.status_to_string r.Pipeline.status));
      if gap = 0. then begin
        if Float.abs (r.Pipeline.cost -. optimum) > 1e-9 then
          failwith
            (Printf.sprintf
               "strategies-sweep: %s cost %g differs from optimum %g" id
               r.Pipeline.cost optimum)
      end
      else begin
        if r.Pipeline.cost > ((1. +. gap) *. optimum) +. 1e-9 then
          failwith
            (Printf.sprintf "strategies-sweep: %s violates its certificate"
               id);
        if r.Pipeline.certified_gap > gap +. 1e-12 then
          failwith
            (Printf.sprintf
               "strategies-sweep: %s certified gap %g exceeds tolerance %g"
               id r.Pipeline.certified_gap gap)
      end)
    rows;
  Table.print
    ~title:
      (Printf.sprintf "Strategy sweep — exact pipeline, %d mtDNA species" n)
    ~headers:[ "cell"; "gap"; "time"; "cost"; "certified"; "expanded" ]
    (List.map
       (fun (id, _, gap, (r : Pipeline.run)) ->
         [
           id;
           Table.f4 gap;
           Table.seconds r.Pipeline.elapsed_s;
           Table.f4 r.Pipeline.cost;
           Table.f4 r.Pipeline.certified_gap;
           Table.d r.Pipeline.stats.Stats.expanded;
         ])
       rows);
  Manifest.record (fun rep ->
      Obs.Report.set rep "n" (Obs.Json.Int n);
      Obs.Report.set rep "optimum" (Obs.Json.Float optimum);
      List.iter
        (fun (id, _, gap, (r : Pipeline.run)) ->
          (* Scalar per-cell fields so the NDJSON trajectory keeps them
             (only top-level Int/Float fields survive). *)
          Obs.Report.set rep
            ("expanded_" ^ id)
            (Obs.Json.Int r.Pipeline.stats.Stats.expanded);
          Obs.Report.set rep ("cost_" ^ id) (Obs.Json.Float r.Pipeline.cost);
          Obs.Report.add_worker rep
            [
              ("cell", Obs.Json.String id);
              ("gap", Obs.Json.Float gap);
              ("elapsed_s", Obs.Json.Float r.Pipeline.elapsed_s);
              ("cost", Obs.Json.Float r.Pipeline.cost);
              ("certified_gap", Obs.Json.Float r.Pipeline.certified_gap);
              ("expanded", Obs.Json.Int r.Pipeline.stats.Stats.expanded);
            ])
        rows)
