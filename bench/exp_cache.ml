(* Cache warm-up: the same compact-set run twice against one
   content-addressed sub-solve store (Compactphy.Subsolve_cache).  The
   cold pass populates the store; the warm pass must replay it
   bit-for-bit — identical cost and identical expansion accounting —
   with every block sub-solve answered from the cache.  Cold/warm
   seconds and the warm hit rate are the diffable perf signals the
   trajectory file (BENCH_cache.json) tracks across commits. *)

module Pipeline = Compactphy.Pipeline
module Run_config = Compactphy.Run_config
module Cache = Compactphy.Subsolve_cache
module Stats = Bnb.Stats

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "bench-cache-%d-%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let cleanup dir =
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir)
   with Sys_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

type row = {
  id : string;
  cold : Pipeline.run;
  cold_s : float;
  warm : Pipeline.run;
  warm_s : float;
  hits : int;
  misses : int;
}

let counters () =
  match Cache.installed () with
  | Some c -> Cache.counters c
  | None -> failwith "cache-warmup: no cache installed after a cached run"

let run_pair id m =
  let dir = fresh_dir () in
  let config = Run_config.default |> Run_config.with_cache_dir dir in
  Fun.protect
    ~finally:(fun () ->
      Cache.uninstall ();
      cleanup dir)
    (fun () ->
      let cold, cold_s = Workloads.time (fun () -> Pipeline.with_compact_sets ~config m) in
      let c0 = counters () in
      let warm, warm_s = Workloads.time (fun () -> Pipeline.with_compact_sets ~config m) in
      let c1 = counters () in
      {
        id;
        cold;
        cold_s;
        warm;
        warm_s;
        hits = c1.Cache.hits - c0.Cache.hits;
        misses = c1.Cache.misses - c0.Cache.misses;
      })

let check r =
  (* The warm run is a replay, not a re-solve: same certified cost and
     the same expansion accounting, with every block sub-solve a hit. *)
  if not (Float.equal r.warm.Pipeline.cost r.cold.Pipeline.cost) then
    failwith
      (Printf.sprintf "cache-warmup: %s warm cost %h differs from cold %h"
         r.id r.warm.Pipeline.cost r.cold.Pipeline.cost);
  if r.warm.Pipeline.stats.Stats.expanded <> r.cold.Pipeline.stats.Stats.expanded
  then
    failwith
      (Printf.sprintf
         "cache-warmup: %s warm expansion accounting (%d) differs from cold \
          (%d)"
         r.id r.warm.Pipeline.stats.Stats.expanded
         r.cold.Pipeline.stats.Stats.expanded);
  if r.hits = 0 then
    failwith (Printf.sprintf "cache-warmup: %s warm run never hit the cache" r.id);
  if r.misses > 0 then
    failwith
      (Printf.sprintf "cache-warmup: %s warm run missed %d sub-solves" r.id
         r.misses)

let warmup ~quick () =
  let rows =
    [
      run_pair "mtdna"
        (Workloads.mtdna ~seed:31 (if quick then 16 else 22));
      run_pair "blocks"
        (Workloads.compact_blocks ~seed:31 ~n_blocks:(if quick then 3 else 4)
           ~block_size:(if quick then 6 else 8));
    ]
  in
  List.iter check rows;
  Table.print ~title:"Cache warm-up — cold vs warm compact-set runs"
    ~headers:[ "workload"; "cold"; "warm"; "speedup"; "hits"; "cost" ]
    (List.map
       (fun r ->
         [
           r.id;
           Table.seconds r.cold_s;
           Table.seconds r.warm_s;
           Printf.sprintf "%.1fx" (r.cold_s /. Float.max r.warm_s 1e-9);
           Table.d r.hits;
           Table.f4 r.warm.Pipeline.cost;
         ])
       rows);
  Manifest.record (fun rep ->
      List.iter
        (fun r ->
          Obs.Report.set rep ("cold_s_" ^ r.id) (Obs.Json.Float r.cold_s);
          Obs.Report.set rep ("warm_s_" ^ r.id) (Obs.Json.Float r.warm_s);
          Obs.Report.set rep ("hits_" ^ r.id) (Obs.Json.Int r.hits);
          Obs.Report.set rep
            ("hit_rate_" ^ r.id)
            (Obs.Json.Float
               (float_of_int r.hits /. float_of_int (max 1 (r.hits + r.misses))));
          Obs.Report.set rep ("cost_" ^ r.id)
            (Obs.Json.Float r.warm.Pipeline.cost);
          Obs.Report.add_worker rep
            [
              ("workload", Obs.Json.String r.id);
              ("cold_s", Obs.Json.Float r.cold_s);
              ("warm_s", Obs.Json.Float r.warm_s);
              ("hits", Obs.Json.Int r.hits);
              ("misses", Obs.Json.Int r.misses);
              ("n_blocks", Obs.Json.Int r.warm.Pipeline.n_blocks);
              ("cost", Obs.Json.Float r.warm.Pipeline.cost);
            ])
        rows)
