(* Cache warm-up: the same compact-set run twice against one
   content-addressed sub-solve store (Compactphy.Subsolve_cache).  The
   cold pass populates the store; the warm pass must replay it
   bit-for-bit — identical cost and identical expansion accounting —
   with every block sub-solve answered from the cache.  Cold/warm
   seconds and the warm hit rate are the diffable perf signals the
   trajectory file (BENCH_cache.json) tracks across commits. *)

module Pipeline = Compactphy.Pipeline
module Run_config = Compactphy.Run_config
module Cache = Compactphy.Subsolve_cache
module Stats = Bnb.Stats

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "bench-cache-%d-%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let cleanup dir =
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir)
   with Sys_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

type row = {
  id : string;
  cold : Pipeline.run;
  cold_s : float;
  warm : Pipeline.run;
  warm_s : float;
  hits : int;
  misses : int;
}

let counters () =
  match Cache.installed () with
  | Some c -> Cache.counters c
  | None -> failwith "cache-warmup: no cache installed after a cached run"

let run_pair id m =
  let dir = fresh_dir () in
  let config = Run_config.default |> Run_config.with_cache_dir dir in
  Fun.protect
    ~finally:(fun () ->
      Cache.uninstall ();
      cleanup dir)
    (fun () ->
      let cold, cold_s = Workloads.time (fun () -> Pipeline.with_compact_sets ~config m) in
      let c0 = counters () in
      let warm, warm_s = Workloads.time (fun () -> Pipeline.with_compact_sets ~config m) in
      let c1 = counters () in
      {
        id;
        cold;
        cold_s;
        warm;
        warm_s;
        hits = c1.Cache.hits - c0.Cache.hits;
        misses = c1.Cache.misses - c0.Cache.misses;
      })

(* Bounded store: the same workload against a [cache_max_bytes] cap at
   half the unbounded footprint, so admission must evict.  Whatever is
   evicted, the solve must stay correct; the eviction counter and the
   honoured bound are the diffable signals. *)
type bounded_row = {
  b_id : string;
  b_run : Pipeline.run;
  b_s : float;
  b_disk_evictions : int;
  b_bound : int;
}

let disk_usage dir =
  Array.fold_left
    (fun acc f ->
      match Unix.stat (Filename.concat dir f) with
      | st -> acc + st.Unix.st_size
      | exception Unix.Unix_error _ -> acc)
    0 (Sys.readdir dir)

let run_bounded id m =
  (* Learn the unbounded footprint (and the reference cost) first. *)
  let probe_dir = fresh_dir () in
  let probe_config =
    Run_config.default |> Run_config.with_cache_dir probe_dir
  in
  let reference, footprint =
    Fun.protect
      ~finally:(fun () ->
        Cache.uninstall ();
        cleanup probe_dir)
      (fun () ->
        let r = Pipeline.with_compact_sets ~config:probe_config m in
        (r, disk_usage probe_dir))
  in
  let bound = max 1 (footprint / 2) in
  let dir = fresh_dir () in
  let config =
    Run_config.default
    |> Run_config.with_cache_dir dir
    |> Run_config.with_cache_max_bytes bound
  in
  Fun.protect
    ~finally:(fun () ->
      Cache.uninstall ();
      cleanup dir)
    (fun () ->
      let run, s =
        Workloads.time (fun () -> Pipeline.with_compact_sets ~config m)
      in
      let c = counters () in
      if not (Float.equal run.Pipeline.cost reference.Pipeline.cost) then
        failwith
          (Printf.sprintf
             "cache-warmup: %s bounded cost %h differs from unbounded %h" id
             run.Pipeline.cost reference.Pipeline.cost);
      if c.Cache.disk_evictions = 0 then
        failwith
          (Printf.sprintf
             "cache-warmup: %s store capped at half its footprint never \
              evicted"
             id);
      if disk_usage dir > bound then
        failwith
          (Printf.sprintf "cache-warmup: %s store over its %d-byte cap" id
             bound);
      {
        b_id = id;
        b_run = run;
        b_s = s;
        b_disk_evictions = c.Cache.disk_evictions;
        b_bound = bound;
      })

let check r =
  (* The warm run is a replay, not a re-solve: same certified cost and
     the same expansion accounting, with every block sub-solve a hit. *)
  if not (Float.equal r.warm.Pipeline.cost r.cold.Pipeline.cost) then
    failwith
      (Printf.sprintf "cache-warmup: %s warm cost %h differs from cold %h"
         r.id r.warm.Pipeline.cost r.cold.Pipeline.cost);
  if r.warm.Pipeline.stats.Stats.expanded <> r.cold.Pipeline.stats.Stats.expanded
  then
    failwith
      (Printf.sprintf
         "cache-warmup: %s warm expansion accounting (%d) differs from cold \
          (%d)"
         r.id r.warm.Pipeline.stats.Stats.expanded
         r.cold.Pipeline.stats.Stats.expanded);
  if r.hits = 0 then
    failwith (Printf.sprintf "cache-warmup: %s warm run never hit the cache" r.id);
  if r.misses > 0 then
    failwith
      (Printf.sprintf "cache-warmup: %s warm run missed %d sub-solves" r.id
         r.misses)

let warmup ~quick () =
  let rows =
    [
      run_pair "mtdna"
        (Workloads.mtdna ~seed:31 (if quick then 16 else 22));
      run_pair "blocks"
        (Workloads.compact_blocks ~seed:31 ~n_blocks:(if quick then 3 else 4)
           ~block_size:(if quick then 6 else 8));
    ]
  in
  List.iter check rows;
  let bounded =
    run_bounded "blocks-bounded"
      (Workloads.compact_blocks ~seed:31 ~n_blocks:(if quick then 3 else 4)
         ~block_size:(if quick then 6 else 8))
  in
  Table.print ~title:"Cache warm-up — cold vs warm compact-set runs"
    ~headers:[ "workload"; "cold"; "warm"; "speedup"; "hits"; "cost" ]
    (List.map
       (fun r ->
         [
           r.id;
           Table.seconds r.cold_s;
           Table.seconds r.warm_s;
           Printf.sprintf "%.1fx" (r.cold_s /. Float.max r.warm_s 1e-9);
           Table.d r.hits;
           Table.f4 r.warm.Pipeline.cost;
         ])
       rows);
  Table.print ~title:"Bounded store — half-footprint cap, LRU-by-mtime"
    ~headers:[ "workload"; "run"; "bound_B"; "evictions"; "cost" ]
    [
      [
        bounded.b_id;
        Table.seconds bounded.b_s;
        Table.d bounded.b_bound;
        Table.d bounded.b_disk_evictions;
        Table.f4 bounded.b_run.Pipeline.cost;
      ];
    ];
  Manifest.record (fun rep ->
      Obs.Report.set rep "disk_evictions_bounded"
        (Obs.Json.Int bounded.b_disk_evictions);
      Obs.Report.set rep "bound_bytes" (Obs.Json.Int bounded.b_bound);
      Obs.Report.set rep "cost_bounded"
        (Obs.Json.Float bounded.b_run.Pipeline.cost);
      List.iter
        (fun r ->
          Obs.Report.set rep ("cold_s_" ^ r.id) (Obs.Json.Float r.cold_s);
          Obs.Report.set rep ("warm_s_" ^ r.id) (Obs.Json.Float r.warm_s);
          Obs.Report.set rep ("hits_" ^ r.id) (Obs.Json.Int r.hits);
          Obs.Report.set rep
            ("hit_rate_" ^ r.id)
            (Obs.Json.Float
               (float_of_int r.hits /. float_of_int (max 1 (r.hits + r.misses))));
          Obs.Report.set rep ("cost_" ^ r.id)
            (Obs.Json.Float r.warm.Pipeline.cost);
          Obs.Report.add_worker rep
            [
              ("workload", Obs.Json.String r.id);
              ("cold_s", Obs.Json.Float r.cold_s);
              ("warm_s", Obs.Json.Float r.warm_s);
              ("hits", Obs.Json.Int r.hits);
              ("misses", Obs.Json.Int r.misses);
              ("n_blocks", Obs.Json.Int r.warm.Pipeline.n_blocks);
              ("cost", Obs.Json.Float r.warm.Pipeline.cost);
            ])
        rows)
