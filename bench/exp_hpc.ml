(* Experiments of the companion paper (HPCAsia 2005), Figures 1-8: the
   parallel branch-and-bound on the simulated 16-slave cluster vs a
   single node, speedup ratios, and the 3-3 relationship's effect, on
   surrogate mtDNA and on random matrices. *)

module Platform = Clustersim.Platform
module Dist_bnb = Clustersim.Dist_bnb
module Solver = Bnb.Solver
module Run_config = Compactphy.Run_config

type row = {
  n : int;
  t16 : float;
  t1 : float;
  t16_33 : float;
  exp16 : int;
  exp1 : int;
  best_speedup : float;  (** max over the datasets (paper: some inputs go super-linear) *)
}

let budget = 6_000_000

let measure gen sizes datasets =
  List.map
    (fun n ->
      let per_dataset =
        List.init datasets (fun seed ->
            let m = gen ~seed:(seed + (1000 * n)) n in
            let run platform options =
              let config = Run_config.with_solver options Run_config.default in
              match Dist_bnb.run ~config ~max_expansions:budget platform m with
              | r -> Some r
              | exception Failure _ -> None
            in
            let r16 = run (Platform.cluster 16) Solver.default_options in
            let r1 = run (Platform.single ()) Solver.default_options in
            let r33 =
              run (Platform.cluster 16)
                { Solver.default_options with relation33 = Solver.Third_only }
            in
            (r16, r1, r33))
      in
      let med f =
        Table.median
          (List.filter_map
             (fun (a, b, c) ->
               match f (a, b, c) with
               | Some (r : Dist_bnb.result) -> Some r.Dist_bnb.makespan
               | None -> None)
             per_dataset)
      in
      let med_exp f =
        int_of_float
          (Table.median
             (List.filter_map
                (fun (a, b, c) ->
                  match f (a, b, c) with
                  | Some (r : Dist_bnb.result) ->
                      Some (float_of_int r.Dist_bnb.expansions)
                  | None -> None)
                per_dataset))
      in
      let best_speedup =
        List.fold_left
          (fun acc (a, b, _) ->
            match (a, b) with
            | Some (r16 : Dist_bnb.result), Some (r1 : Dist_bnb.result)
              when r16.Dist_bnb.makespan > 0. ->
                Float.max acc (r1.Dist_bnb.makespan /. r16.Dist_bnb.makespan)
            | _ -> acc)
          0. per_dataset
      in
      {
        n;
        t16 = med (fun (a, _, _) -> a);
        t1 = med (fun (_, b, _) -> b);
        t16_33 = med (fun (_, _, c) -> c);
        exp16 = med_exp (fun (a, _, _) -> a);
        exp1 = med_exp (fun (_, b, _) -> b);
        best_speedup;
      })
    sizes

let mtdna_cache : (bool, row list) Hashtbl.t = Hashtbl.create 2
let random_cache : (bool, row list) Hashtbl.t = Hashtbl.create 2

let mtdna_rows ~quick =
  match Hashtbl.find_opt mtdna_cache quick with
  | Some r -> r
  | None ->
      let sizes = if quick then [ 12; 14; 16 ] else [ 12; 14; 16; 18 ] in
      let r = measure Workloads.mtdna sizes (if quick then 3 else 5) in
      Hashtbl.replace mtdna_cache quick r;
      r

let random_rows ~quick =
  match Hashtbl.find_opt random_cache quick with
  | Some r -> r
  | None ->
      let sizes = if quick then [ 12; 14 ] else [ 12; 14; 16 ] in
      let r =
        measure Workloads.random_structured sizes (if quick then 3 else 5)
      in
      Hashtbl.replace random_cache quick r;
      r

let time_table title rows pick =
  Table.print ~title ~headers:[ "species"; "median makespan"; "expansions" ]
    (List.map
       (fun r ->
         let t, e = pick r in
         [ Table.d r.n; Table.seconds t; Table.d e ])
       rows)

let fig1 ~quick () =
  time_table
    "HPCAsia Fig. 1 — computing time, simulated 16 slaves, mtDNA (virtual \
     seconds)"
    (mtdna_rows ~quick)
    (fun r -> (r.t16, r.exp16))

let fig2 ~quick () =
  time_table
    "HPCAsia Fig. 2 — computing time, single simulated node, mtDNA (paper: \
     unendurable past 26 species)"
    (mtdna_rows ~quick)
    (fun r -> (r.t1, r.exp1))

let speedup_table title rows =
  Table.print ~title
    ~headers:
      [ "species"; "t(1 slave)"; "t(16 slaves)"; "median speedup"; "best" ]
    (List.map
       (fun r ->
         [
           Table.d r.n;
           Table.seconds r.t1;
           Table.seconds r.t16;
           Table.f2 (r.t1 /. r.t16);
           Table.f2 r.best_speedup
           ^ (if r.best_speedup > 16. then " (super-linear)" else "");
         ])
       rows)

let fig3 ~quick () =
  speedup_table
    "HPCAsia Fig. 3 — speedup 16 slaves vs 1, mtDNA (paper: super-linear on \
     some inputs)"
    (mtdna_rows ~quick)

let relation33_table title rows =
  Table.print ~title
    ~headers:[ "species"; "without 3-3"; "with 3-3"; "reduction" ]
    (List.map
       (fun r ->
         [
           Table.d r.n;
           Table.seconds r.t16;
           Table.seconds r.t16_33;
           Table.pct ((r.t16 -. r.t16_33) /. r.t16 *. 100.);
         ])
       rows)

let fig4 ~quick () =
  relation33_table
    "HPCAsia Fig. 4 — 16 slaves, with vs without the 3-3 relationship, \
     mtDNA (paper: reduction grows with species count)"
    (mtdna_rows ~quick)

let fig5 ~quick () =
  time_table "HPCAsia Fig. 5 — computing time, 16 slaves, random data"
    (random_rows ~quick)
    (fun r -> (r.t16, r.exp16))

let fig6 ~quick () =
  speedup_table "HPCAsia Fig. 6 — speedup 16 vs 1, random data"
    (random_rows ~quick)

let fig7 ~quick () =
  time_table "HPCAsia Fig. 7 — computing time, single node, random data"
    (random_rows ~quick)
    (fun r -> (r.t1, r.exp1))

let fig8 ~quick () =
  relation33_table
    "HPCAsia Fig. 8 — 16 slaves, with vs without the 3-3 relationship, \
     random data"
    (random_rows ~quick)
