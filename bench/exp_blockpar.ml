(* Inter-block scheduler scaling: sweep block-workers (independent
   compact-set blocks solved concurrently, largest-first) against
   solver-workers (domains inside each branch-and-bound), on a
   multi-block PaCT workload.  Every configuration must report the same
   tree cost — the scheduler only reorders independent exact solves —
   so the table doubles as a determinism check. *)

module Pipeline = Compactphy.Pipeline
module Decompose = Compactphy.Decompose

let reps ~quick = if quick then 3 else 5

let time_config ~reps ~block_workers ~workers m =
  let runs =
    List.init reps (fun _ ->
        let config =
          Compactphy.Run_config.(
            default |> with_block_workers block_workers |> with_workers workers)
        in
        let r = Pipeline.with_compact_sets ~config m in
        (r.Pipeline.elapsed_s, r.Pipeline.cost))
  in
  let times = List.map fst runs in
  let costs = List.map snd runs in
  let cost = List.hd costs in
  List.iter
    (fun c ->
      if Float.abs (c -. cost) > 1e-9 then
        failwith "blockpar-scaling: cost varies across repetitions")
    costs;
  (Table.median times, cost)

let scaling ~quick () =
  let want_blocks = if quick then 4 else 6 in
  let block_size = if quick then 13 else 15 in
  let m = Workloads.compact_blocks ~seed:5 ~n_blocks:want_blocks ~block_size in
  let deco = Decompose.decompose m in
  let n_blocks = Decompose.n_blocks deco in
  let largest = Decompose.largest_block deco in
  Printf.printf
    "workload: %d clusters x %d species, %d blocks after decomposition \
     (largest %d)\n%!"
    want_blocks block_size n_blocks largest;
  let cores = Int.max 1 (Domain.recommended_domain_count ()) in
  if cores = 1 then
    Printf.printf
      "note: single-core host — the pipeline clamps the pool to 1 domain, \
       so every schedule should match the sequential wall-clock\n%!";
  let budget = Int.min 8 cores in
  let auto_bw, auto_sw = Pipeline.plan_workers ~budget deco in
  let configs =
    [
      (1, 1, "");
      (2, 1, "");
      (4, 1, "");
      (8, 1, "");
      (1, 2, "");
      (2, 2, "");
      (4, 2, "");
      (auto_bw, auto_sw, Printf.sprintf " (auto budget %d)" budget);
    ]
    (* Solver-worker counts past the hardware would benchmark pure
       oversubscription (Par_bnb honours the request); skip them. *)
    |> List.filter (fun (_, sw, _) -> sw <= cores)
  in
  let reps = reps ~quick in
  let measured =
    List.map
      (fun (bw, sw, tag) ->
        let t, cost = time_config ~reps ~block_workers:bw ~workers:sw m in
        (bw, sw, tag, t, cost))
      configs
  in
  let base_t, base_cost =
    match measured with
    | (1, 1, _, t, c) :: _ -> (t, c)
    | _ -> assert false
  in
  List.iter
    (fun (_, _, _, _, cost) ->
      if Float.abs (cost -. base_cost) > 1e-9 then
        failwith "blockpar-scaling: cost differs across schedules")
    measured;
  Table.print
    ~title:
      (Printf.sprintf
         "Inter-block scheduler — %d blocks, largest %d (median of %d)"
         n_blocks largest reps)
    ~headers:
      [ "block-workers"; "solver-workers"; "median time"; "speedup"; "cost" ]
    (List.map
       (fun (bw, sw, tag, t, cost) ->
         [
           Table.d bw ^ tag;
           Table.d sw;
           Table.seconds t;
           Table.f2 (base_t /. t);
           Table.f4 cost;
         ])
       measured);
  Manifest.record (fun r ->
      Obs.Report.set r "n" (Obs.Json.Int (want_blocks * block_size));
      Obs.Report.set r "n_blocks" (Obs.Json.Int n_blocks);
      Obs.Report.set r "largest_block" (Obs.Json.Int largest);
      Obs.Report.set r "cost" (Obs.Json.Float base_cost);
      List.iter
        (fun (bw, sw, tag, t, _) ->
          Obs.Report.add_worker r
            [
              ("block_workers", Obs.Json.Int bw);
              ("solver_workers", Obs.Json.Int sw);
              ("auto", Obs.Json.Bool (tag <> ""));
              ("median_s", Obs.Json.Float t);
              ("speedup", Obs.Json.Float (base_t /. t));
            ])
        measured)
