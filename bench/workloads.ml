(* Deterministic workload generators shared by the experiments.

   Two families mirror the papers' data: "HMDNA" (surrogate
   mitochondrial DNA, via seqsim) and "random" matrices.  For the random
   family we report two flavours: [random_structured] draws a random
   clock tree and perturbs it (a randomly generated matrix that, like the
   papers' data, still decomposes into compact sets) and
   [random_uniform] is the papers' literal uniform 0..100 draw repaired
   into a metric. *)

let rng seed = Random.State.make [| 0xC0FFEE; seed |]

let mtdna ~seed n =
  (Seqsim.Mtdna.generate ~rng:(rng seed) n).Seqsim.Mtdna.matrix

let mtdna_with_tree ~seed n = Seqsim.Mtdna.generate ~rng:(rng seed) n

let random_structured ~seed n =
  Distmat.Gen.near_ultrametric ~rng:(rng (seed + 7919)) ~noise:0.3 n

let random_uniform ~seed n =
  Distmat.Gen.uniform_metric ~rng:(rng (seed + 104729)) n

(* The inter-block scheduler's workload: [n_blocks] well-separated
   clusters, each an independent uniform metric in [40, 100] — the
   papers' random data, which is the branch-and-bound's hard case and
   almost never decomposes further — against 250..270 across clusters.
   The result is a metric (270 <= 250 + 40 covers every mixed
   triangle), each cluster is a compact set (100 < 250), and the
   decomposition yields [n_blocks] comparably heavy exact solves — the
   shape that exercises [Pipeline.with_compact_sets ~block_workers]. *)
let compact_blocks ~seed ~n_blocks ~block_size =
  let blocks =
    Array.init n_blocks (fun b ->
        Distmat.Gen.uniform_metric
          ~rng:(rng (seed + 15485863 + (104729 * b)))
          ~lo:40. ~hi:100. block_size)
  in
  let inter_rng = rng (seed + 15485863 + 7) in
  let n = n_blocks * block_size in
  Distmat.Dist_matrix.init n (fun i j ->
      let bi = i / block_size and bj = j / block_size in
      if bi = bj then
        Distmat.Dist_matrix.get blocks.(bi) (i mod block_size)
          (j mod block_size)
      else 250. +. Random.State.float inter_rng 20.)

(* Monotonic timing (Obs.Clock): wall-clock via gettimeofday could go
   backwards under NTP adjustment and corrupt a whole table. *)
let time = Obs.Clock.time

(* Shared branch-and-bound budget for the "without compact sets"
   condition at sizes where the exact search does not terminate in
   sensible wall-clock time (the papers call such runs "unendurable").
   Capped runs report the best tree found within the budget; EXPERIMENTS
   .md discusses the effect. *)
let capped_options cap =
  { Bnb.Solver.default_options with max_expanded = Some cap }
