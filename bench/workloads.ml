(* Deterministic workload generators shared by the experiments.

   Two families mirror the papers' data: "HMDNA" (surrogate
   mitochondrial DNA, via seqsim) and "random" matrices.  For the random
   family we report two flavours: [random_structured] draws a random
   clock tree and perturbs it (a randomly generated matrix that, like the
   papers' data, still decomposes into compact sets) and
   [random_uniform] is the papers' literal uniform 0..100 draw repaired
   into a metric. *)

let rng seed = Random.State.make [| 0xC0FFEE; seed |]

let mtdna ~seed n =
  (Seqsim.Mtdna.generate ~rng:(rng seed) n).Seqsim.Mtdna.matrix

let mtdna_with_tree ~seed n = Seqsim.Mtdna.generate ~rng:(rng seed) n

let random_structured ~seed n =
  Distmat.Gen.near_ultrametric ~rng:(rng (seed + 7919)) ~noise:0.3 n

let random_uniform ~seed n =
  Distmat.Gen.uniform_metric ~rng:(rng (seed + 104729)) n

(* Monotonic timing (Obs.Clock): wall-clock via gettimeofday could go
   backwards under NTP adjustment and corrupt a whole table. *)
let time = Obs.Clock.time

(* Shared branch-and-bound budget for the "without compact sets"
   condition at sizes where the exact search does not terminate in
   sensible wall-clock time (the papers call such runs "unendurable").
   Capped runs report the best tree found within the budget; EXPERIMENTS
   .md discusses the effect. *)
let capped_options cap =
  { Bnb.Solver.default_options with max_expanded = Some cap }
