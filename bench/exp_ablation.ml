(* Ablation benches for the design choices called out in DESIGN.md. *)

module Pipeline = Compactphy.Pipeline
module Decompose = Compactphy.Decompose
module Solver = Bnb.Solver
module Stats = Bnb.Stats

(* A-1: max vs min vs avg representative matrices (the paper evaluates
   only the maximum variant). *)
let linkage ~quick () =
  let n = if quick then 16 else 20 in
  let datasets = if quick then 3 else 5 in
  let rows =
    List.init datasets (fun seed ->
        let m = Workloads.mtdna ~seed:(seed + 31337) n in
        let run l =
          Pipeline.with_compact_sets
            ~config:Compactphy.Run_config.(default |> with_linkage l)
            m
        in
        let rmax = run Decompose.Max
        and rmin = run Decompose.Min
        and ravg = run Decompose.Avg in
        [
          Table.d (seed + 1);
          Table.f2 rmax.Pipeline.cost;
          Table.f2 rmin.Pipeline.cost;
          Table.f2 ravg.Pipeline.cost;
        ])
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Ablation A-1 — linkage of the small matrices, %d mtDNA species \
          (tree cost; paper only studies max)"
         n)
    ~headers:[ "data set"; "max"; "min"; "avg" ]
    rows

(* A-2: lower-bound variants. *)
let lower_bound ~quick () =
  let sizes = if quick then [ 10; 12 ] else [ 10; 12; 14 ] in
  let rows =
    List.map
      (fun n ->
        let m = Workloads.random_structured ~seed:n n in
        let run lb =
          let r = Solver.solve ~options:{ Solver.default_options with lb } m in
          (r.Solver.stats.Stats.expanded, r.Solver.cost)
        in
        let e0, c0 = run Solver.LB0 and e1, c1 = run Solver.LB1 in
        assert (Float.abs (c0 -. c1) < 1e-6);
        [
          Table.d n;
          Table.d e0;
          Table.d e1;
          Table.pct
            (100. *. float_of_int (e0 - e1) /. float_of_int (Int.max 1 e0));
        ])
      sizes
  in
  Table.print
    ~title:
      "Ablation A-2 — BBT nodes expanded under LB0 (partial cost only) vs \
       LB1 (+ remaining species bound)"
    ~headers:[ "species"; "LB0 expanded"; "LB1 expanded"; "saved" ]
    rows

(* A-3: naive vs optimised compact-set finder. *)
let compact_finder ~quick () =
  let sizes = if quick then [ 50; 100 ] else [ 50; 100; 200; 400 ] in
  let rows =
    List.map
      (fun n ->
        let m = Workloads.mtdna ~seed:n n in
        let best f =
          let runs = if quick then 2 else 3 in
          List.fold_left
            (fun acc _ -> Float.min acc (snd (Workloads.time f)))
            infinity
            (List.init runs Fun.id)
        in
        let t_naive = best (fun () -> Cgraph.Compact_sets.find_naive m) in
        let t_fast = best (fun () -> Cgraph.Compact_sets.find m) in
        [
          Table.d n;
          Table.seconds t_naive;
          Table.seconds t_fast;
          Table.f1 (t_naive /. t_fast) ^ "x";
        ])
      sizes
  in
  Table.print
    ~title:
      "Ablation A-3 — compact-set discovery: the paper's published sweep \
       (recomputes Max/Min per merge) vs the O(n^2) finder"
    ~headers:[ "species"; "published sweep"; "optimised"; "speedup" ]
    rows

(* A-4: the 3-3 relationship applied never / at the third species (as
   published) / at every insertion (the paper's future work). *)
let relation33 ~quick () =
  let sizes = if quick then [ 10; 12 ] else [ 10; 12; 14 ] in
  let rows =
    List.map
      (fun n ->
        let m = Workloads.mtdna ~seed:(n + 999) n in
        let run relation33 =
          let r =
            Solver.solve ~options:{ Solver.default_options with relation33 } m
          in
          (r.Solver.stats.Stats.expanded, r.Solver.cost)
        in
        let e_off, c_off = run Solver.Off in
        let e_third, c_third = run Solver.Third_only in
        let e_all, c_all = run Solver.Every_insertion in
        [
          Table.d n;
          Printf.sprintf "%d (%.2f)" e_off c_off;
          Printf.sprintf "%d (%.2f)" e_third c_third;
          Printf.sprintf "%d (%.2f)" e_all c_all;
        ])
      sizes
  in
  Table.print
    ~title:
      "Ablation A-4 — 3-3 relationship pruning: expanded nodes (and cost) \
       per mode; every-insertion is the papers' stated future work"
    ~headers:[ "species"; "off"; "third species only"; "every insertion" ]
    rows

(* A-6: DFS (the papers' order) vs best-first search. *)
let search_order ~quick () =
  let sizes = if quick then [ 10; 12 ] else [ 10; 12; 14 ] in
  let rows =
    List.map
      (fun n ->
        let m = Workloads.mtdna ~seed:(n + 4321) n in
        let run search =
          let r =
            Solver.solve ~options:{ Solver.default_options with search } m
          in
          (r.Solver.stats.Stats.expanded, r.Solver.stats.Stats.max_open)
        in
        let ed, md = run Solver.Dfs in
        let eb, mb = run Solver.Best_first in
        [ Table.d n; Table.d ed; Table.d md; Table.d eb; Table.d mb ])
      sizes
  in
  Table.print
    ~title:
      "Ablation A-6 — search order: expansions and open-list high-water \
       under DFS (papers' choice) vs best-first"
    ~headers:
      [ "species"; "DFS expanded"; "DFS open"; "BF expanded"; "BF open" ]
    rows

(* A-7: gathering all optimal trees (the companion paper's Step 7) and
   how much they agree. *)
let all_optimal ~quick () =
  let n = if quick then 9 else 11 in
  let rows =
    List.init 5 (fun seed ->
        (* Integer-rounded distances (like the papers' random 0..100
           data): ties make multiple optimal topologies likely. *)
        let raw = Workloads.mtdna ~seed:(seed + 8765) n in
        let m =
          Distmat.Metric.floyd_warshall
            (Distmat.Dist_matrix.init n (fun i j ->
                 Float.round (Distmat.Dist_matrix.get raw i j)))
        in
        let r =
          Solver.solve
            ~options:{ Solver.default_options with collect_all = true }
            m
        in
        let trees = r.Solver.all_optimal in
        [
          Table.d (seed + 1);
          Table.f2 r.Solver.cost;
          Table.d (List.length trees);
          Table.f2 (Ultra.Consensus.agreement trees);
        ])
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Ablation A-7 — all optimal trees gathered (Step 7), %d mtDNA \
          species: count and strict-consensus agreement"
         n)
    ~headers:[ "data set"; "optimum"; "optimal trees"; "agreement" ]
    rows

(* A-8: NNI local search as a cheap fallback: how close does
   hill-climbing from UPGMM get to the optimum? *)
let nni ~quick () =
  (* Uniform random matrices: the workload where UPGMM is weakest and
     compact sets are scarce — exactly when a fallback is needed. *)
  let n = if quick then 9 else 11 in
  let rows =
    List.init 5 (fun seed ->
        let m = Workloads.random_uniform ~seed:(seed + 2222) n in
        let upgmm_cost =
          Ultra.Utree.weight (Clustering.Linkage.upgmm m)
        in
        let r = Bnb.Local_search.from_upgmm m in
        let opt = (Solver.solve m).Solver.cost in
        [
          Table.d (seed + 1);
          Table.f2 upgmm_cost;
          Printf.sprintf "%.2f (%d moves)" r.Bnb.Local_search.cost
            r.Bnb.Local_search.improvements;
          Table.f2 opt;
        ])
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Ablation A-8 — NNI hill-climbing from UPGMM, %d-species uniform \
          random matrices (tree cost; optimum for reference)"
         n)
    ~headers:[ "data set"; "UPGMM"; "UPGMM + NNI"; "optimum" ]
    rows

(* A-9: alpha-compact relaxation — more decomposition for less
   fidelity, on the uniform random workload where strict compact sets
   are scarce. *)
let relaxation ~quick () =
  let n = if quick then 12 else 16 in
  let alphas = [ 1.0; 1.1; 1.25; 1.5; 2.0 ] in
  let rows =
    List.map
      (fun alpha ->
        let costs = ref [] and times = ref [] and largest = ref 0 in
        for seed = 0 to 4 do
          let m = Workloads.random_uniform ~seed:(seed + 3333) n in
          let r =
            Pipeline.with_compact_sets
              ~config:Compactphy.Run_config.(default |> with_relaxation alpha)
              m
          in
          costs := r.Pipeline.cost :: !costs;
          times := r.Pipeline.elapsed_s :: !times;
          largest := Int.max !largest r.Pipeline.largest_block
        done;
        [
          Table.f2 alpha;
          Table.f2 (Table.mean !costs);
          Table.seconds (Table.mean !times);
          Table.d !largest;
        ])
      alphas
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Ablation A-9 — alpha-compact relaxation, %d-species uniform \
          random matrices (mean cost / mean time / largest block over 5 \
          data sets)"
         n)
    ~headers:[ "alpha"; "mean cost"; "mean time"; "largest block" ]
    rows

(* A-5: quality of the initial upper bound. *)
let initial_ub ~quick () =
  let n = if quick then 10 else 12 in
  let rows =
    List.init 4 (fun seed ->
        let m = Workloads.mtdna ~seed:(seed + 555) n in
        let ub_of initial_ub =
          (Solver.prepare ~options:{ Solver.default_options with initial_ub } m)
            .Solver.ub0
        in
        let optimal = (Solver.solve m).Solver.cost in
        [
          Table.d (seed + 1);
          Table.f2 optimal;
          Table.f2 (ub_of Solver.Upgmm_ub);
          Table.f2 (ub_of Solver.Upgma_ub);
          Table.f2 (ub_of Solver.Nj_ub);
        ])
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Ablation A-5 — initial upper bound quality, %d mtDNA species \
          (lower is tighter; optimum for reference)"
         n)
    ~headers:[ "data set"; "optimum"; "UPGMM"; "UPGMA"; "NJ" ]
    rows
