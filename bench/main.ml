(* Benchmark harness: regenerates every table and figure of the papers'
   evaluation sections (see DESIGN.md for the experiment index).

   Usage:
     dune exec bench/main.exe                 run everything
     dune exec bench/main.exe -- --quick      smaller sizes, faster run
     dune exec bench/main.exe -- --exp ID     one experiment
     dune exec bench/main.exe -- --csv DIR    also write one CSV per table
     dune exec bench/main.exe -- --list       list experiment ids *)

let experiments : (string * string * (quick:bool -> unit -> unit)) list =
  [
    ("pact-fig8", "PaCT Fig. 8: time, random data", Exp_pact.fig8);
    ("pact-fig9", "PaCT Fig. 9: cost, random data", Exp_pact.fig9);
    ("pact-fig10", "PaCT Fig. 10: cost, 26 mtDNA", Exp_pact.fig10);
    ("pact-fig11", "PaCT Fig. 11: time, 26 mtDNA", Exp_pact.fig11);
    ("pact-fig12", "PaCT Fig. 12: cost, 30 mtDNA", Exp_pact.fig12);
    ("pact-fig13", "PaCT Fig. 13: time, 30 mtDNA", Exp_pact.fig13);
    ("hpc-fig1", "HPCAsia Fig. 1: time, 16 slaves, mtDNA", Exp_hpc.fig1);
    ("hpc-fig2", "HPCAsia Fig. 2: time, 1 node, mtDNA", Exp_hpc.fig2);
    ("hpc-fig3", "HPCAsia Fig. 3: speedup, mtDNA", Exp_hpc.fig3);
    ("hpc-fig4", "HPCAsia Fig. 4: 3-3 relationship, mtDNA", Exp_hpc.fig4);
    ("hpc-fig5", "HPCAsia Fig. 5: time, 16 slaves, random", Exp_hpc.fig5);
    ("hpc-fig6", "HPCAsia Fig. 6: speedup, random", Exp_hpc.fig6);
    ("hpc-fig7", "HPCAsia Fig. 7: time, 1 node, random", Exp_hpc.fig7);
    ("hpc-fig8", "HPCAsia Fig. 8: 3-3 relationship, random", Exp_hpc.fig8);
    ("grid-table3", "NCS Table 3: median times", Exp_grid.table3);
    ("grid-table4", "NCS Table 4: mean times", Exp_grid.table4);
    ("grid-table5", "NCS Table 5: worst-case times", Exp_grid.table5);
    ("grid-table6", "NCS Table 6: cluster vs grids", Exp_grid.table6);
    ("scpa-fig10", "SCPA Fig. 10: uneven GEN_BLOCK", Exp_scpa.fig10);
    ("scpa-fig11", "SCPA Fig. 11: even GEN_BLOCK", Exp_scpa.fig11);
    ( "blockpar-scaling",
      "Inter-block scheduler: block-workers x solver-workers sweep",
      Exp_blockpar.scaling );
    ("ablation-linkage", "A-1: max/min/avg linkage", Exp_ablation.linkage);
    ("ablation-lb", "A-2: LB0 vs LB1", Exp_ablation.lower_bound);
    ( "ablation-compact",
      "A-3: naive vs optimised compact sets",
      Exp_ablation.compact_finder );
    ("ablation-33", "A-4: 3-3 pruning modes", Exp_ablation.relation33);
    ("ablation-ub", "A-5: initial upper bounds", Exp_ablation.initial_ub);
    ("ablation-search", "A-6: DFS vs best-first", Exp_ablation.search_order);
    ("ablation-all", "A-7: all optimal trees", Exp_ablation.all_optimal);
    ("ablation-nni", "A-8: NNI local search", Exp_ablation.nni);
    ( "ablation-relax",
      "A-9: alpha-compact relaxation",
      Exp_ablation.relaxation );
    ( "anytime-quality",
      "Anytime search: incumbent vs certified bound per node budget",
      Exp_anytime.quality );
    ( "strategies-sweep",
      "Search strategies: exploration x gap grid, branching orders",
      Exp_strategies.sweep );
    ( "cache-warmup",
      "Sub-solve cache: cold vs warm compact-set runs",
      Exp_cache.warmup );
    ( "micro-kernel",
      "Expansion kernels: reference vs incremental smoke",
      Micro.kernel_smoke );
  ]

let usage () =
  print_endline
    "usage: main.exe [--quick] [--csv DIR] [--exp ID | --list | --micro-only]";
  exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let args = List.filter (fun a -> a <> "--quick") args in
  let csv_dir, args =
    let rec extract acc = function
      | "--csv" :: dir :: rest -> (Some dir, List.rev_append acc rest)
      | x :: rest -> extract (x :: acc) rest
      | [] -> (None, List.rev acc)
    in
    extract [] args
  in
  (match csv_dir with
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Manifest.dir := Some dir
  | None -> ());
  let with_csv id f =
    (match csv_dir with
    | Some dir -> Table.csv_target := Some (dir, id)
    | None -> ());
    Manifest.with_manifest id f;
    Table.csv_target := None
  in
  match args with
  | [ "--list" ] ->
      List.iter
        (fun (id, doc, _) -> Printf.printf "%-18s %s\n" id doc)
        experiments;
      print_endline "micro               Bechamel kernel micro-benchmarks"
  | [ "--exp"; id ] -> (
      if id = "micro" then Micro.run ()
      else
        match
          List.find_opt (fun (id', _, _) -> id = id') experiments
        with
        | Some (_, _, run) -> with_csv id (fun () -> run ~quick ())
        | None ->
            Printf.eprintf "unknown experiment %S; try --list\n" id;
            exit 1)
  | [ "--micro-only" ] -> Micro.run ()
  | [] ->
      let t0 = Obs.Clock.counter () in
      List.iter
        (fun (id, _, run) ->
          Printf.printf "\n##### %s #####\n%!" id;
          with_csv id (fun () -> run ~quick ()))
        experiments;
      Printf.printf "\n##### micro #####\n%!";
      Micro.run ();
      Printf.printf "\ntotal bench time: %.1f s\n" (Obs.Clock.elapsed_s t0)
  | _ -> usage ()
