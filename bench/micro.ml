(* Bechamel micro-benchmarks of the hot kernels, one Test.make each. *)

open Bechamel
open Toolkit

let mtdna_50 = lazy (Workloads.mtdna ~seed:1 50)
let mtdna_100 = lazy (Workloads.mtdna ~seed:2 100)
let random_20 = lazy (Workloads.random_structured ~seed:3 20)

let messages_16 =
  lazy
    (let rng = Random.State.make [| 99 |] in
     let src =
       Redistrib.Gen_block.random ~rng ~total:1_000_000 ~procs:16
         ~lo_frac:0.3 ~hi_frac:1.5
     in
     let dst =
       Redistrib.Gen_block.random ~rng ~total:1_000_000 ~procs:16
         ~lo_frac:0.3 ~hi_frac:1.5
     in
     Redistrib.Message.of_distributions src dst)

let tree_20 =
  lazy
    (let m = Lazy.force random_20 in
     Clustering.Linkage.upgmm m)

(* Reference-vs-incremental expansion fixture: a prepared problem per
   kernel plus one representative DFS path (the best child at every
   level), so the timed expansions span every insertion size k. *)
let kernel_fixture =
  lazy
    (let m = Lazy.force random_20 in
     let prep kernel =
       Bnb.Solver.prepare
         ~options:{ Bnb.Solver.default_options with Bnb.Solver.kernel }
         m
     in
     let pref = prep Bnb.Solver.Reference in
     let pinc = prep Bnb.Solver.Incremental in
     let path, greedy_cost =
       let stats = Bnb.Stats.create () in
       let rec down acc node =
         if Bnb.Bb_tree.is_complete pref.Bnb.Solver.pm node then
           (List.rev acc, node.Bnb.Bb_tree.cost)
         else
           match Bnb.Solver.expand pref node stats with
           | [] -> (List.rev acc, node.Bnb.Bb_tree.cost)
           | best :: _ -> down (node :: acc) best
       in
       down [] (Bnb.Bb_tree.root pref.Bnb.Solver.pm)
     in
     (* The bound a steady-state search prunes with: the incumbent after
        the first depth-first descent (or UPGMM if that is tighter). *)
     let ub = Float.min pref.Bnb.Solver.ub0 greedy_cost in
     (pref, pinc, path, ub))

let expand_path problem ~ub =
  let _, _, path, _ = Lazy.force kernel_fixture in
  let stats = Bnb.Stats.create () in
  List.iter
    (fun node -> ignore (Bnb.Solver.expand ~ub problem node stats))
    path

let tests =
  [
    Test.make ~name:"mst/prim-100"
      (Staged.stage (fun () -> Cgraph.Mst.prim (Lazy.force mtdna_100)));
    Test.make ~name:"mst/kruskal-100"
      (Staged.stage (fun () ->
           Cgraph.Mst.kruskal
             (Cgraph.Wgraph.complete_of_matrix (Lazy.force mtdna_100))));
    Test.make ~name:"compact-sets/fast-100"
      (Staged.stage (fun () -> Cgraph.Compact_sets.find (Lazy.force mtdna_100)));
    Test.make ~name:"compact-sets/naive-50"
      (Staged.stage (fun () ->
           Cgraph.Compact_sets.find_naive (Lazy.force mtdna_50)));
    Test.make ~name:"clustering/upgmm-100"
      (Staged.stage (fun () -> Clustering.Linkage.upgmm (Lazy.force mtdna_100)));
    Test.make ~name:"clustering/nj-50"
      (Staged.stage (fun () ->
           Clustering.Nj.rooted_topology (Lazy.force mtdna_50)));
    Test.make ~name:"bnb/insertions-20"
      (Staged.stage (fun () ->
           Bnb.Bb_tree.insertions (Lazy.force random_20) (Lazy.force tree_20)
             19));
    Test.make ~name:"bnb/expand-ref-20"
      (Staged.stage (fun () ->
           let pref, _, _, ub = Lazy.force kernel_fixture in
           expand_path pref ~ub));
    Test.make ~name:"bnb/expand-inc-20"
      (Staged.stage (fun () ->
           let _, pinc, _, ub = Lazy.force kernel_fixture in
           expand_path pinc ~ub));
    Test.make ~name:"bnb/maxmin-permutation-100"
      (Staged.stage (fun () ->
           Distmat.Permutation.maxmin (Lazy.force mtdna_100)));
    Test.make ~name:"ultra/minimal-realization-20"
      (Staged.stage (fun () ->
           Ultra.Utree.minimal_realization (Lazy.force random_20)
             (Lazy.force tree_20)));
    Test.make ~name:"relation33/count-20"
      (Staged.stage (fun () ->
           Bnb.Relation33.count_contradictions (Lazy.force random_20)
             (Lazy.force tree_20)));
    Test.make ~name:"redistrib/scpa-16procs"
      (Staged.stage (fun () ->
           Redistrib.Scpa.schedule (Lazy.force messages_16)));
    Test.make ~name:"redistrib/dca-16procs"
      (Staged.stage (fun () -> Redistrib.Dca.schedule (Lazy.force messages_16)));
    Test.make ~name:"align/pairwise-300bp"
      (Staged.stage
         (let pair =
            lazy
              (let rng = Random.State.make [| 21 |] in
               ( Seqsim.Dna.random ~rng 300,
                 Seqsim.Dna.random ~rng 300 ))
          in
          fun () ->
            let a, b = Lazy.force pair in
            Align.Pairwise.align a b));
    Test.make ~name:"align/msa-8x120bp"
      (Staged.stage
         (let seqs =
            lazy
              (let rng = Random.State.make [| 22 |] in
               let t = Seqsim.Clock_tree.coalescent ~rng 8 in
               Seqsim.Evolve.sequences_with_indels ~rng ~mu:0.2
                 ~indel_rate:0.03 ~sites:120 t)
          in
          fun () -> Align.Msa.align (Lazy.force seqs)));
    Test.make ~name:"seqsim/jc-matrix-20x600"
      (Staged.stage
         (let seqs =
            lazy
              (let rng = Random.State.make [| 5 |] in
               let t = Seqsim.Clock_tree.coalescent ~rng 20 in
               Seqsim.Evolve.sequences ~rng ~mu:0.15 ~sites:600 t)
          in
          fun () -> Seqsim.Distance.matrix (Lazy.force seqs)));
  ]

(* CI smoke job for the expansion kernels: time the same DFS path of
   expansions through the reference and incremental paths, record the
   ratio in the manifest (and CSV).  Trajectory only — no thresholds
   enforced here; CI uploads the artifacts for inspection. *)
let kernel_smoke ~quick () =
  let pref, pinc, path, ub = Lazy.force kernel_fixture in
  let iters = if quick then 300 else 2_000 in
  let time_n iters problem =
    (* One warm-up pass keeps allocation effects out of the first
       measured iteration. *)
    expand_path problem ~ub;
    let t0 = Obs.Clock.counter () in
    for _ = 1 to iters do
      expand_path problem ~ub
    done;
    Obs.Clock.elapsed_s t0
  in
  let time = time_n iters in
  let t_ref = time pref in
  let t_inc = time pinc in
  let n_expand = iters * List.length path in
  let per_ref = t_ref /. float_of_int n_expand in
  let per_inc = t_inc /. float_of_int n_expand in
  let speedup = if t_inc > 0. then t_ref /. t_inc else infinity in
  (* Attribution overhead: the same incremental expansion path with
     recording on and off, run as back-to-back pairs.  Clock-frequency
     drift and scheduler noise shift whole pairs, not their ratio, so
     the median of the per-pair on/off ratios is what survives a noisy
     host; an A-then-B design would bias whichever side runs second.
     Recorded in the manifest so every PR carries the measured cost of
     its own forensics. *)
  let oh_iters = Int.max iters 1_500 in
  let t_att_on = ref infinity and t_att_off = ref infinity in
  let ratios =
    Fun.protect
      ~finally:(fun () -> Obs.Attribution.set_enabled true)
      (fun () ->
        List.init 9 (fun _ ->
            Obs.Attribution.set_enabled true;
            let on = time_n oh_iters pinc in
            Obs.Attribution.set_enabled false;
            let off = time_n oh_iters pinc in
            t_att_on := Float.min !t_att_on on;
            t_att_off := Float.min !t_att_off off;
            if off > 0. then on /. off else 1.))
  in
  let t_att_on = !t_att_on and t_att_off = !t_att_off in
  let median =
    let a = List.sort Float.compare ratios in
    List.nth a (List.length a / 2)
  in
  let overhead_pct = 100. *. (median -. 1.) in
  (* Flight-recorder overhead, same paired-ratio design: a budgeted
     sequential solve (its loop carries the heartbeat sampler and the
     live metric flush) with the recorder armed vs absent.  The armed
     runs exercise the realistic steady state — nearly every sample
     call is a rate-limited clock read, not an emit. *)
  let oh_matrix = Lazy.force random_20 in
  let solve_budgeted () =
    ignore
      (Bnb.Solver.solve
         ~budget:(Bnb.Budget.create ~max_nodes:2_000 ())
         oh_matrix)
  in
  let time_solves iters =
    solve_budgeted ();
    let t0 = Obs.Clock.counter () in
    for _ = 1 to iters do
      solve_budgeted ()
    done;
    Obs.Clock.elapsed_s t0
  in
  (* Even quick mode needs a ~30 ms measurement window per side:
     shorter windows jitter by more than the 3% overhead budget the CI
     smoke asserts against. *)
  let rec_iters = if quick then 15 else 50 in
  let t_rec_on = ref infinity and t_rec_off = ref infinity in
  Fun.protect ~finally:Obs.Recorder.uninstall (fun () ->
      for _ = 1 to 9 do
        Obs.Recorder.install (Obs.Recorder.create ());
        t_rec_on := Float.min !t_rec_on (time_solves rec_iters);
        Obs.Recorder.uninstall ();
        t_rec_off := Float.min !t_rec_off (time_solves rec_iters)
      done);
  let t_rec_on = !t_rec_on and t_rec_off = !t_rec_off in
  (* Min over interleaved pairs, not the median pair ratio: scheduler
     noise only ever adds time, so the two minima are each side's
     least-disturbed run and their ratio is the tightest overhead bound
     this host can measure.  (The per-pair median above survives slow
     clock drift better, but at these ~25 ms measurements the pair
     ratios jitter by more than the effect being measured.) *)
  let recorder_overhead_pct =
    if t_rec_off > 0. then 100. *. ((t_rec_on /. t_rec_off) -. 1.) else 0.
  in
  Manifest.record (fun r ->
      Obs.Report.set r "n"
        (Obs.Json.Int (Distmat.Dist_matrix.size (Lazy.force random_20)));
      Obs.Report.set r "path_length" (Obs.Json.Int (List.length path));
      Obs.Report.set r "iters" (Obs.Json.Int iters);
      Obs.Report.set r "expand_reference_s" (Obs.Json.Float t_ref);
      Obs.Report.set r "expand_incremental_s" (Obs.Json.Float t_inc);
      Obs.Report.set r "expand_reference_per_call_s" (Obs.Json.Float per_ref);
      Obs.Report.set r "expand_incremental_per_call_s"
        (Obs.Json.Float per_inc);
      Obs.Report.set r "speedup" (Obs.Json.Float speedup);
      Obs.Report.set r "attribution_on_s" (Obs.Json.Float t_att_on);
      Obs.Report.set r "attribution_off_s" (Obs.Json.Float t_att_off);
      Obs.Report.set r "attribution_overhead_pct"
        (Obs.Json.Float overhead_pct);
      Obs.Report.set r "recorder_on_s" (Obs.Json.Float t_rec_on);
      Obs.Report.set r "recorder_off_s" (Obs.Json.Float t_rec_off);
      Obs.Report.set r "recorder_overhead_pct"
        (Obs.Json.Float recorder_overhead_pct));
  Table.print ~title:"Kernel smoke — expansion path, 20 species"
    ~headers:[ "kernel"; "total"; "per expand"; "speedup" ]
    [
      [ "reference"; Table.seconds t_ref; Table.seconds per_ref; "1.00" ];
      [
        "incremental";
        Table.seconds t_inc;
        Table.seconds per_inc;
        Table.f2 speedup;
      ];
    ];
  Printf.printf "attribution overhead: %+.2f%% (on %.6f s, off %.6f s)\n%!"
    overhead_pct t_att_on t_att_off;
  Printf.printf "flight-recorder overhead: %+.2f%% (on %.6f s, off %.6f s)\n%!"
    recorder_overhead_pct t_rec_on t_rec_off

let run () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let grouped = Test.make_grouped ~name:"kernels" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_newline ();
  print_endline "Bechamel micro-benchmarks (monotonic clock per run):";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some [ x ] -> Table.seconds (x *. 1e-9)
        | Some _ | None -> "n/a"
      in
      let name =
        match String.index_opt name ' ' with
        | Some i -> String.sub name (i + 1) (String.length name - i - 1)
        | None -> name
      in
      rows := [ name; estimate ] :: !rows)
    results;
  Table.print ~title:"" ~headers:[ "kernel"; "time / run" ]
    (List.sort compare !rows)
