(* Experiments of the core paper (PaCT 2005), Figures 8-13: computing
   time and total tree cost, with vs without compact sets, on random
   matrices and on surrogate Human Mitochondrial DNA. *)

module Pipeline = Compactphy.Pipeline

type row = {
  label : string;
  t_with : float;
  t_without : float;
  c_with : float;
  c_without : float;
  largest : int;
  capped : bool;
}

let run_one ?(cap = 0) m label =
  let options =
    if cap > 0 then Workloads.capped_options cap
    else Bnb.Solver.default_options
  in
  let config = Compactphy.Run_config.(default |> with_solver options) in
  let w = Pipeline.with_compact_sets ~config m in
  let wo = Pipeline.exact ~config m in
  (* Attach both run manifests (phase timings + per-block pruning
     counters) to the experiment manifest, one entry per measured run. *)
  Manifest.record (fun r ->
      Obs.Report.add_worker r
        [
          ("label", Obs.Json.String label);
          ("with_cs", Obs.Report.to_json w.Pipeline.report);
          ("without_cs", Obs.Report.to_json wo.Pipeline.report);
        ]);
  {
    label;
    t_with = w.Pipeline.elapsed_s;
    t_without = wo.Pipeline.elapsed_s;
    c_with = w.Pipeline.cost;
    c_without = wo.Pipeline.cost;
    largest = w.Pipeline.largest_block;
    capped = not wo.Pipeline.optimal;
  }

let saved r =
  if r.t_without <= 0. then 0.
  else (r.t_without -. r.t_with) /. r.t_without *. 100.

let cost_diff r =
  if r.c_without <= 0. then 0.
  else (r.c_with -. r.c_without) /. r.c_without *. 100.

let time_row r =
  [
    r.label;
    Table.seconds r.t_with;
    Table.seconds r.t_without ^ (if r.capped then " (cap)" else "");
    Table.pct (saved r);
    Table.d r.largest;
  ]

let cost_row r =
  [
    r.label;
    Table.f2 r.c_with;
    Table.f2 r.c_without ^ (if r.capped then " (cap)" else "");
    Table.pct (cost_diff r);
  ]

let time_headers = [ "data"; "with CS"; "without CS"; "time saved"; "largest block" ]
let cost_headers = [ "data"; "cost with CS"; "cost without CS"; "cost diff" ]

let random_rows ~quick () =
  let sizes = if quick then [ 10; 12; 14 ] else [ 10; 12; 14; 16; 18 ] in
  let datasets = if quick then 2 else 3 in
  List.concat_map
    (fun n ->
      List.concat_map
        (fun (family, gen) ->
          let rows =
            List.init datasets (fun seed ->
                run_one (gen ~seed n) (Printf.sprintf "%s n=%d" family n))
          in
          (* Average the datasets into one row per (family, n). *)
          [
            {
              label = Printf.sprintf "%s n=%d (avg of %d)" family n datasets;
              t_with = Table.mean (List.map (fun r -> r.t_with) rows);
              t_without = Table.mean (List.map (fun r -> r.t_without) rows);
              c_with = Table.mean (List.map (fun r -> r.c_with) rows);
              c_without = Table.mean (List.map (fun r -> r.c_without) rows);
              largest =
                List.fold_left (fun a r -> Int.max a r.largest) 0 rows;
              capped = List.exists (fun r -> r.capped) rows;
            };
          ])
        [
          ("structured", Workloads.random_structured);
          ("uniform", Workloads.random_uniform);
        ])
    sizes

let fig8 ~quick () =
  Table.print
    ~title:
      "PaCT Fig. 8 — computing time, random data (paper: compact sets save \
       77.19-99.7 % of the time)"
    ~headers:time_headers
    (List.map time_row (random_rows ~quick ()))

let fig9 ~quick () =
  Table.print
    ~title:
      "PaCT Fig. 9 — total tree cost, random data (paper: difference below \
       5 %)"
    ~headers:cost_headers
    (List.map cost_row (random_rows ~quick ()))

(* Figures 10/11 (and 12/13) share their measurements; cache them so the
   expensive capped searches run once per bench invocation. *)
let mtdna_cache : (int * int * int * bool, row list) Hashtbl.t =
  Hashtbl.create 4

let mtdna_rows ~quick ~species ~datasets ~cap () =
  let key = (species, datasets, cap, quick) in
  match Hashtbl.find_opt mtdna_cache key with
  | Some rows -> rows
  | None ->
      let datasets = if quick then Int.min 4 datasets else datasets in
      let cap = if quick then cap / 4 else cap in
      let rows =
        List.init datasets (fun seed ->
            run_one ~cap
              (Workloads.mtdna ~seed:(seed + (100 * species)) species)
              (Printf.sprintf "set %d" (seed + 1)))
      in
      Hashtbl.replace mtdna_cache key rows;
      rows

let fig10 ~quick () =
  Table.print
    ~title:
      "PaCT Fig. 10 — total tree cost, 15 data sets of 26 mtDNA species \
       (paper: max difference 1.5 %)"
    ~headers:cost_headers
    (List.map cost_row (mtdna_rows ~quick ~species:26 ~datasets:15 ~cap:400_000 ()))

let fig11 ~quick () =
  Table.print
    ~title:"PaCT Fig. 11 — computing time, 26 mtDNA species"
    ~headers:time_headers
    (List.map time_row (mtdna_rows ~quick ~species:26 ~datasets:15 ~cap:400_000 ()))

let fig12 ~quick () =
  Table.print
    ~title:
      "PaCT Fig. 12 — total tree cost, 10 data sets of 30 mtDNA species"
    ~headers:cost_headers
    (List.map cost_row (mtdna_rows ~quick ~species:30 ~datasets:10 ~cap:400_000 ()))

let fig13 ~quick () =
  Table.print
    ~title:"PaCT Fig. 13 — computing time, 30 mtDNA species"
    ~headers:time_headers
    (List.map time_row (mtdna_rows ~quick ~species:30 ~datasets:10 ~cap:400_000 ()))
