(* Per-experiment run manifests (Obs.Report), written next to the CSVs.

   main.ml wraps every experiment in [with_manifest]; experiment code
   that wants to attach structure (per-run phase timings, per-worker
   counters) calls [record] to reach the current report.  The manifest
   always carries the experiment id, total wall-clock, and a snapshot of
   the process-wide metrics registry. *)

let dir : string option ref = ref None
(* Defaults to the --csv directory when given, else "bench-manifests". *)

let current : Obs.Report.t option ref = ref None

let record f =
  match !current with
  | Some r -> f r
  | None -> ()

let target_dir () =
  match !dir with Some d -> d | None -> "bench-manifests"

let with_manifest id f =
  let r = Obs.Report.create id in
  (* Per-experiment metrics: start every experiment from zero so the
     snapshot in its manifest covers exactly this experiment. *)
  Obs.Metrics.reset ();
  current := Some r;
  Fun.protect
    ~finally:(fun () -> current := None)
    (fun () ->
      let (), total_s = Obs.Clock.time f in
      Obs.Report.add_phase r "total" total_s;
      Obs.Report.set r "metrics" (Obs.Metrics.dump ());
      let d = target_dir () in
      if not (Sys.file_exists d) then Sys.mkdir d 0o755;
      let path = Filename.concat d (id ^ ".manifest.json") in
      Obs.Report.write_file r path;
      Printf.printf "manifest: %s\n%!" path)
