(* Per-experiment run manifests (Obs.Report), written next to the CSVs.

   main.ml wraps every experiment in [with_manifest]; experiment code
   that wants to attach structure (per-run phase timings, per-worker
   counters) calls [record] to reach the current report.  The manifest
   always carries the experiment id, total wall-clock, and a snapshot of
   the process-wide metrics registry. *)

let dir : string option ref = ref None
(* Defaults to the --csv directory when given, else "bench-manifests". *)

let current : Obs.Report.t option ref = ref None

let record f =
  match !current with
  | Some r -> f r
  | None -> ()

let target_dir () =
  match !dir with Some d -> d | None -> "bench-manifests"

(* Append-only perf trajectory, one NDJSON line per bench run, grouped
   by experiment family (the id prefix before the first '-', so
   pact-fig8 lands in BENCH_pact.json and blockpar-scaling in
   BENCH_blockpar.json).  Each line keeps only the scalar report fields
   — the diffable numbers — plus run metadata; [compactphy obs diff] on
   a trajectory file compares against its latest line. *)
let trajectory_family id =
  match String.index_opt id '-' with
  | Some i -> String.sub id 0 i
  | None -> id

let append_trajectory r id total_s =
  let scalars =
    List.filter
      (fun (_, v) ->
        match v with Obs.Json.Int _ | Obs.Json.Float _ -> true | _ -> false)
      (Obs.Report.fields r)
  in
  let entry =
    Obs.Json.Obj
      (("experiment", Obs.Json.String id)
      :: ("meta", Obs.Report.meta_json (Obs.Report.created_at r))
      :: ("total_s", Obs.Json.Float total_s)
      :: scalars)
  in
  let path =
    Filename.concat (target_dir ()) ("BENCH_" ^ trajectory_family id ^ ".json")
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Obs.Json.to_string entry);
      output_char oc '\n')

let with_manifest id f =
  let r = Obs.Report.create id in
  (* Per-experiment metrics: start every experiment from zero so the
     snapshot in its manifest covers exactly this experiment. *)
  Obs.Metrics.reset ();
  current := Some r;
  Fun.protect
    ~finally:(fun () -> current := None)
    (fun () ->
      let (), total_s = Obs.Clock.time f in
      Obs.Report.add_phase r "total" total_s;
      Obs.Report.set r "metrics" (Obs.Metrics.dump ());
      let d = target_dir () in
      if not (Sys.file_exists d) then Sys.mkdir d 0o755;
      let path = Filename.concat d (id ^ ".manifest.json") in
      Obs.Report.write_file r path;
      append_trajectory r id total_s;
      Printf.printf "manifest: %s\n%!" path)
