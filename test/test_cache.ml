(* The content-addressed sub-solve cache's contract:

   - a warm run is bit-identical to its cold run — cost, topology and
     the replayed expansion accounting — on generated matrices of every
     flavour and on the repository's data matrices;
   - the key digest is invariant under any relabelling of the input
     (canonicalisation by maxmin), so a warm solve of a permuted matrix
     replays the stored tree relabelled, and sensitive to every
     search-relevant solver option — while the search budget, which
     certified results do not depend on, is excluded;
   - budget-interrupted (non-certified) outcomes are never admitted,
     through the executor gate or the store itself;
   - a truncated or corrupted on-disk entry is rejected and deleted,
     the [cache.corrupt] counter ticks, and the solve proceeds fresh;
   - the in-memory LRU evicts at capacity; the disk store still answers. *)

module Dist_matrix = Distmat.Dist_matrix
module Matrix_io = Distmat.Matrix_io
module Gen = Distmat.Gen
module Permutation = Distmat.Permutation
module Utree = Ultra.Utree
module Newick = Ultra.Newick
module Solver = Bnb.Solver
module Stats = Bnb.Stats
module Budget = Bnb.Budget
module Pipeline = Compactphy.Pipeline
module Run_config = Compactphy.Run_config
module Executor = Compactphy.Executor
module Cache = Compactphy.Subsolve_cache
module J = Obs.Json

let rng seed = Random.State.make [| 0xcac4e; seed |]

(* Every test gets its own store directory (and therefore its own
   [get_or_create] instance): counters and LRU state never leak between
   tests. *)
let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "sscache-%d-%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let with_uninstall f = Fun.protect ~finally:Cache.uninstall f

let load name =
  (* Under [dune runtest] the cwd is the test directory and the repo's
     data/ sits beside it (see the (deps ...) field of test/dune);
     under [dune exec] from the project root it is ./data. *)
  let path =
    match
      List.find_opt Sys.file_exists
        [
          Filename.concat ".." (Filename.concat "data" name);
          Filename.concat "data" name;
        ]
    with
    | Some p -> p
    | None -> Alcotest.failf "data matrix %s not found" name
  in
  (Matrix_io.of_phylip (Matrix_io.read_file path)).Matrix_io.matrix

let truncate m k =
  let k = Int.min k (Dist_matrix.size m) in
  Dist_matrix.init k (fun i j -> Dist_matrix.get m i j)

let newick t = Newick.to_string t

let check_stats_equal name (a : Stats.t) (b : Stats.t) =
  Alcotest.(check int) (name ^ ": expanded") a.Stats.expanded b.Stats.expanded;
  Alcotest.(check int) (name ^ ": generated") a.Stats.generated b.Stats.generated;
  Alcotest.(check int) (name ^ ": pruned") a.Stats.pruned b.Stats.pruned;
  Alcotest.(check int) (name ^ ": pruned_33") a.Stats.pruned_33 b.Stats.pruned_33;
  Alcotest.(check int) (name ^ ": ub updates") a.Stats.ub_updates b.Stats.ub_updates;
  Alcotest.(check int) (name ^ ": max open") a.Stats.max_open b.Stats.max_open

(* The manifest's cache section, unpacked. *)
let cache_section report =
  match Obs.Report.field report "cache" with
  | Some (J.Obj kvs) ->
      let int k =
        match List.assoc_opt k kvs with Some (J.Int i) -> i | _ -> -1
      in
      let enabled =
        match List.assoc_opt "enabled" kvs with
        | Some (J.Bool b) -> b
        | _ -> false
      in
      (enabled, int "block_hits", int "block_misses")
  | _ -> Alcotest.fail "manifest has no cache section"

(* Cold run, then warm run against the same store: everything the run
   reports must replay bit-for-bit. *)
let check_cold_warm name config m =
  let cold = Pipeline.with_compact_sets ~config m in
  let warm = Pipeline.with_compact_sets ~config m in
  Alcotest.(check bool)
    (name ^ ": cost bit-identical") true
    (Float.equal cold.Pipeline.cost warm.Pipeline.cost);
  Alcotest.(check string)
    (name ^ ": topology identical") (newick cold.Pipeline.tree)
    (newick warm.Pipeline.tree);
  check_stats_equal name cold.Pipeline.stats warm.Pipeline.stats;
  Alcotest.(check int)
    (name ^ ": block count") cold.Pipeline.n_blocks warm.Pipeline.n_blocks;
  let enabled_c, hits_c, _ = cache_section cold.Pipeline.report in
  let enabled_w, hits_w, misses_w = cache_section warm.Pipeline.report in
  Alcotest.(check bool) (name ^ ": cache enabled") true (enabled_c && enabled_w);
  Alcotest.(check int) (name ^ ": cold has no hits") 0 hits_c;
  (* On the warm run every cacheable block (size >= 2) must hit; only
     trivial size-1 blocks may report a miss. *)
  List.iter
    (fun w ->
      match w with
      | J.Obj kvs -> (
          match (List.assoc_opt "block_size" kvs, List.assoc_opt "cached" kvs)
          with
          | Some (J.Int size), Some (J.Bool cached) ->
              if size >= 2 then
                Alcotest.(check bool)
                  (Printf.sprintf "%s: warm block of size %d cached" name size)
                  true cached
          | _ -> ())
      | _ -> ())
    (Obs.Report.workers warm.Pipeline.report);
  ignore misses_w;
  ignore hits_w

let cached_config dir =
  Run_config.default |> Run_config.with_cache_dir dir

let test_cold_warm_generated () =
  Prop_gen.check ~count:15 ~name:"cold = warm (compact sets)"
    (Prop_gen.matrix ~min_n:5 ~max_n:11 ())
    (fun m ->
      let config = cached_config (fresh_dir ()) in
      with_uninstall (fun () ->
          check_cold_warm "generated" config m;
          true))

let test_cold_warm_data () =
  with_uninstall @@ fun () ->
  List.iter
    (fun (name, m) -> check_cold_warm name (cached_config (fresh_dir ())) m)
    [
      ("hominoids", load "hominoids.phy");
      ("mtdna26[12]", truncate (load "mtdna26.phy") 12);
      ("random20[10]", truncate (load "random20.phy") 10);
    ]

let test_cold_warm_exact () =
  with_uninstall @@ fun () ->
  let m = Gen.clustered ~rng:(rng 3) ~n_clusters:3 9 in
  let config = cached_config (fresh_dir ()) in
  let cold = Pipeline.exact ~config m in
  let warm = Pipeline.exact ~config m in
  Alcotest.(check bool)
    "exact: cost bit-identical" true
    (Float.equal cold.Pipeline.cost warm.Pipeline.cost);
  Alcotest.(check string) "exact: topology identical"
    (newick cold.Pipeline.tree) (newick warm.Pipeline.tree);
  check_stats_equal "exact" cold.Pipeline.stats warm.Pipeline.stats;
  let _, hits_c, _ = cache_section cold.Pipeline.report in
  let _, hits_w, _ = cache_section warm.Pipeline.report in
  Alcotest.(check int) "exact: cold misses" 0 hits_c;
  Alcotest.(check int) "exact: warm hits" 1 hits_w

(* Without a cache_dir nothing is consulted or admitted, even with a
   cache installed process-wide: the default path stays cache-free. *)
let test_disabled_by_default () =
  with_uninstall @@ fun () ->
  let dir = fresh_dir () in
  let c = Cache.get_or_create ~dir () in
  Cache.install c;
  let m = Gen.clustered ~rng:(rng 4) ~n_clusters:3 10 in
  let r = Pipeline.with_compact_sets m in
  Alcotest.(check bool) "solved" true (r.Pipeline.status = Budget.Exact);
  let stats = Cache.counters c in
  Alcotest.(check int) "no lookups" 0
    (stats.Cache.hits + stats.Cache.misses);
  Alcotest.(check int) "no stores" 0 stats.Cache.stores;
  let enabled, _, _ = cache_section r.Pipeline.report in
  Alcotest.(check bool) "manifest says disabled" false enabled

(* --- keys --- *)

let shuffled_permutation st n =
  let a = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Permutation.of_array a

(* Maxmin canonicalisation is content-determined exactly when no two
   pairs are at the same distance; with ties (the ultrametric
   generator's shared merge heights) the digest may legitimately differ
   across relabelings — sound, just not shared. *)
let distinct_distances m =
  let n = Dist_matrix.size m in
  let entries = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      entries := Dist_matrix.get m i j :: !entries
    done
  done;
  let sorted = List.sort Float.compare !entries in
  let rec distinct = function
    | a :: (b :: _ as rest) -> (not (Float.equal a b)) && distinct rest
    | _ -> true
  in
  distinct sorted

let test_digest_permutation_invariant () =
  Prop_gen.check ~count:50 ~name:"digest invariant under relabelling"
    (Prop_gen.matrix ~min_n:4 ~max_n:12 ())
    (fun m ->
      (not (distinct_distances m))
      ||
      let st = rng (Dist_matrix.size m) in
      let q = shuffled_permutation st (Dist_matrix.size m) in
      let m' = Permutation.apply m q in
      let options = Solver.default_options in
      Cache.digest (Cache.key ~options m)
      = Cache.digest (Cache.key ~options m'))

(* Under ties a relabelling may hit or miss — but whatever happens the
   answer must be the permuted matrix's own optimum. *)
let test_tied_matrix_sound_across_permutation () =
  with_uninstall @@ fun () ->
  let m = Gen.ultrametric ~rng:(rng 30) 8 in
  let q = shuffled_permutation (rng 31) 8 in
  let m' = Permutation.apply m q in
  let dir = fresh_dir () in
  let c = Cache.get_or_create ~dir () in
  Cache.install c;
  let job m =
    {
      Executor.j_id = 0;
      j_size = Dist_matrix.size m;
      j_matrix = m;
      j_options = Solver.default_options;
      j_workers = 1;
      j_node_share = None;
      j_poll_every = 32;
      j_resume = None;
      j_cache = true;
      j_trace = None;
    }
  in
  let monitor = Budget.arm Budget.unlimited in
  ignore (Executor.solve_job ~monitor (job m));
  let sv = Executor.solve_job ~monitor (job m') in
  Cache.uninstall ();
  let ref_sv = Executor.solve_job ~monitor (job m') in
  Alcotest.(check bool) "tied relabelling stays optimal" true
    (Float.equal
       (Utree.weight ref_sv.Executor.s_tree)
       (Utree.weight sv.Executor.s_tree));
  Ultra.Tree_check.assert_valid m' sv.Executor.s_tree

(* A hit across a relabelling must come back in the requester's labels:
   solving the permuted matrix from a cache warmed on the original one
   yields exactly what a fresh solve of the permuted matrix yields. *)
let test_hit_across_permutation () =
  with_uninstall @@ fun () ->
  let m = Gen.clustered ~rng:(rng 5) ~n_clusters:2 8 in
  let q = shuffled_permutation (rng 6) 8 in
  let m' = Permutation.apply m q in
  let dir = fresh_dir () in
  let c = Cache.get_or_create ~dir () in
  Cache.install c;
  let job m =
    {
      Executor.j_id = 0;
      j_size = Dist_matrix.size m;
      j_matrix = m;
      j_options = Solver.default_options;
      j_workers = 1;
      j_node_share = None;
      j_poll_every = 32;
      j_resume = None;
      j_cache = true;
      j_trace = None;
    }
  in
  let monitor = Budget.arm Budget.unlimited in
  let sv0 = Executor.solve_job ~monitor (job m) in
  Alcotest.(check bool) "seed solve is fresh" false sv0.Executor.s_from_cache;
  let sv1 = Executor.solve_job ~monitor (job m') in
  Alcotest.(check bool) "permuted solve hits" true sv1.Executor.s_from_cache;
  (* Reference: the permuted matrix solved with no cache at all. *)
  Cache.uninstall ();
  let ref_sv = Executor.solve_job ~monitor (job m') in
  Alcotest.(check bool) "same cost" true
    (Float.equal
       (Utree.weight ref_sv.Executor.s_tree)
       (Utree.weight sv1.Executor.s_tree));
  (* Relabelling permutes sibling order in the printed form; the
     unordered topology must match the fresh solve exactly. *)
  Alcotest.(check bool) "same topology" true
    (Utree.same_topology ref_sv.Executor.s_tree sv1.Executor.s_tree);
  Ultra.Tree_check.assert_valid m' sv1.Executor.s_tree

let test_digest_sensitivity () =
  let m = Gen.uniform_metric ~rng:(rng 7) 7 in
  let base = Solver.default_options in
  let d options = Cache.digest (Cache.key ~options m) in
  let base_d = d base in
  List.iter
    (fun (what, options) ->
      if d options = base_d then
        Alcotest.failf "digest ignores %s, but it changes the search" what)
    [
      ("lb", { base with Solver.lb = Solver.LB0 });
      ("relation33", { base with Solver.relation33 = Solver.Every_insertion });
      ("initial_ub", { base with Solver.initial_ub = Solver.Nj_ub });
      ("search", { base with Solver.search = Solver.Best_first });
      ("branching", { base with Solver.branching = Solver.Largest_first });
      ("gap", { base with Solver.gap = 0.25 });
      ("collect_all", { base with Solver.collect_all = true });
      ("kernel", { base with Solver.kernel = Solver.Reference });
    ];
  (* The budget is excluded by design: certified results are
     budget-independent, so a capped and an uncapped run share entries. *)
  Alcotest.(check string) "max_expanded excluded" base_d
    (d { base with Solver.max_expanded = Some 10 });
  (* And the matrix content must matter. *)
  let m2 = Gen.uniform_metric ~rng:(rng 8) 7 in
  Alcotest.(check bool) "different matrix, different digest" false
    (Cache.digest (Cache.key ~options:base m2) = base_d)

(* --- admission gating --- *)

let test_interrupted_never_admitted () =
  with_uninstall @@ fun () ->
  let m = Gen.uniform_metric ~rng:(rng 9) 10 in
  let dir = fresh_dir () in
  let c = Cache.get_or_create ~dir () in
  Cache.install c;
  let job =
    {
      Executor.j_id = 0;
      j_size = Dist_matrix.size m;
      j_matrix = m;
      j_options = Solver.default_options;
      j_workers = 1;
      j_node_share = None;
      j_poll_every = 1;
      j_resume = None;
      j_cache = true;
      j_trace = None;
    }
  in
  let monitor = Budget.arm (Budget.create ~max_nodes:3 ~poll_every:1 ()) in
  let sv = Executor.solve_job ~monitor job in
  Alcotest.(check bool) "search was interrupted" true
    (sv.Executor.s_status <> Budget.Exact);
  let stats = Cache.counters c in
  Alcotest.(check int) "nothing stored" 0 stats.Cache.stores;
  Alcotest.(check bool) "nothing findable" true
    (Cache.find c (Cache.key ~options:Solver.default_options m) = None);
  (* The store's own gate refuses too, whatever the caller does. *)
  Cache.store c (Cache.key ~options:Solver.default_options m) sv;
  Alcotest.(check int) "direct store refused" 0 (Cache.counters c).Cache.stores

(* --- the disk layer --- *)

let solve_and_store c m =
  Cache.install c;
  let job =
    {
      Executor.j_id = 0;
      j_size = Dist_matrix.size m;
      j_matrix = m;
      j_options = Solver.default_options;
      j_workers = 1;
      j_node_share = None;
      j_poll_every = 32;
      j_resume = None;
      j_cache = true;
      j_trace = None;
    }
  in
  Executor.solve_job ~monitor:(Budget.arm Budget.unlimited) job

let test_disk_round_trip () =
  with_uninstall @@ fun () ->
  let m = Gen.clustered ~rng:(rng 10) ~n_clusters:2 7 in
  let dir = fresh_dir () in
  let sv = solve_and_store (Cache.create ~dir ()) m in
  (* A brand-new instance over the same directory has a cold LRU: the
     answer must come back through the on-disk blob. *)
  let c2 = Cache.create ~dir () in
  let k = Cache.key ~options:Solver.default_options m in
  match Cache.find c2 k with
  | None -> Alcotest.fail "disk store did not answer"
  | Some sv' ->
      Alcotest.(check bool) "marked as replay" true sv'.Executor.s_from_cache;
      Alcotest.(check bool) "cost bit-identical" true
        (Float.equal
           (Utree.weight sv.Executor.s_tree)
           (Utree.weight sv'.Executor.s_tree));
      Alcotest.(check string) "topology identical" (newick sv.Executor.s_tree)
        (newick sv'.Executor.s_tree);
      check_stats_equal "disk" sv.Executor.s_stats sv'.Executor.s_stats;
      Alcotest.(check bool) "certified" true
        (sv'.Executor.s_status = Budget.Exact)

let corrupt_file path =
  (* Truncate mid-bytes: the surviving prefix is not valid JSON, and
     even a parse that survived would fail the digest check. *)
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let keep = len / 2 in
  let prefix = really_input_string ic keep in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc prefix;
  close_out oc

let test_corrupt_entry_rejected () =
  with_uninstall @@ fun () ->
  let m = Gen.clustered ~rng:(rng 11) ~n_clusters:2 7 in
  let dir = fresh_dir () in
  let sv = solve_and_store (Cache.create ~dir ()) m in
  let k = Cache.key ~options:Solver.default_options m in
  let path =
    match Cache.entry_path (Cache.create ~dir ()) k with
    | Some p -> p
    | None -> Alcotest.fail "expected an on-disk path"
  in
  Alcotest.(check bool) "entry exists on disk" true (Sys.file_exists path);
  corrupt_file path;
  let c3 = Cache.create ~dir () in
  Alcotest.(check bool) "corrupt entry rejected" true (Cache.find c3 k = None);
  Alcotest.(check int) "corrupt counter ticked" 1 (Cache.counters c3).Cache.corrupt;
  Alcotest.(check bool) "corrupt blob deleted" false (Sys.file_exists path);
  (* The executor path now solves fresh and re-admits a good entry. *)
  let sv2 = solve_and_store c3 m in
  Alcotest.(check bool) "re-solved fresh" false sv2.Executor.s_from_cache;
  Alcotest.(check bool) "same certified cost" true
    (Float.equal
       (Utree.weight sv.Executor.s_tree)
       (Utree.weight sv2.Executor.s_tree));
  Alcotest.(check bool) "good entry re-admitted" true
    (Cache.find c3 k <> None)

let test_disk_bound_eviction () =
  with_uninstall @@ fun () ->
  let ms =
    Array.init 3 (fun i -> Gen.clustered ~rng:(rng (40 + i)) ~n_clusters:2 6)
  in
  let k i = Cache.key ~options:Solver.default_options ms.(i) in
  (* Measure one blob to size the bound: room for two entries, never
     three. *)
  let probe = Cache.create ~dir:(fresh_dir ()) () in
  ignore (solve_and_store probe ms.(0));
  let blob =
    (Unix.stat (Option.get (Cache.entry_path probe (k 0)))).Unix.st_size
  in
  Cache.uninstall ();
  let bound = (2 * blob) + (blob / 2) in
  let dir = fresh_dir () in
  let c = Cache.create ~dir ~max_bytes:bound () in
  (* Deterministic LRU order whatever the filesystem's mtime
     granularity: pin each blob far in the past, in store order.
     (Not 0.: [Unix.utimes p 0. 0.] means "now".) *)
  let stamp i =
    match Cache.entry_path c (k i) with
    | Some p when Sys.file_exists p ->
        Unix.utimes p (float_of_int (i + 1)) (float_of_int (i + 1))
    | _ -> ()
  in
  ignore (solve_and_store c ms.(0));
  stamp 0;
  ignore (solve_and_store c ms.(1));
  stamp 1;
  ignore (solve_and_store c ms.(2));
  let stats = Cache.counters c in
  Alcotest.(check int) "three stores" 3 stats.Cache.stores;
  Alcotest.(check bool) "disk evictions ticked" true
    (stats.Cache.disk_evictions >= 1);
  Alcotest.(check bool) "oldest blob evicted" false
    (Sys.file_exists (Option.get (Cache.entry_path c (k 0))));
  Alcotest.(check bool) "newest blob survives" true
    (Sys.file_exists (Option.get (Cache.entry_path c (k 2))));
  (* The directory really fits the bound... *)
  let total =
    Array.fold_left
      (fun acc f -> acc + (Unix.stat (Filename.concat dir f)).Unix.st_size)
      0 (Sys.readdir dir)
  in
  Alcotest.(check bool) "directory within bound" true (total <= bound);
  (* ... and a survivor still loads through a brand-new instance (cold
     in-memory LRU, so the answer comes off disk). *)
  let c2 = Cache.create ~dir () in
  Alcotest.(check bool) "survivor loadable" true (Cache.find c2 (k 2) <> None)

let test_lru_eviction () =
  with_uninstall @@ fun () ->
  (* Memory-only cache of capacity 2: a third distinct entry evicts the
     least recently used one. *)
  let c = Cache.create ~capacity:2 () in
  let ms = Array.init 3 (fun i -> Gen.clustered ~rng:(rng (20 + i)) ~n_clusters:2 6) in
  Array.iter (fun m -> ignore (solve_and_store c m)) ms;
  let stats = Cache.counters c in
  Alcotest.(check int) "three stores" 3 stats.Cache.stores;
  Alcotest.(check int) "one eviction" 1 stats.Cache.evictions;
  let k i = Cache.key ~options:Solver.default_options ms.(i) in
  Alcotest.(check bool) "oldest evicted" true (Cache.find c (k 0) = None);
  Alcotest.(check bool) "newest present" true (Cache.find c (k 2) <> None);
  (* Memory-only: nothing on disk to fall back to. *)
  Alcotest.(check bool) "no disk path" true (Cache.entry_path c (k 2) = None)

let () =
  Alcotest.run "subsolve_cache"
    [
      ( "differential",
        [
          Alcotest.test_case "cold = warm on generated matrices" `Quick
            test_cold_warm_generated;
          Alcotest.test_case "cold = warm on data matrices" `Quick
            test_cold_warm_data;
          Alcotest.test_case "cold = warm through exact" `Quick
            test_cold_warm_exact;
          Alcotest.test_case "disabled by default" `Quick
            test_disabled_by_default;
        ] );
      ( "keys",
        [
          Alcotest.test_case "digest invariant under relabelling" `Quick
            test_digest_permutation_invariant;
          Alcotest.test_case "hit across a relabelling" `Quick
            test_hit_across_permutation;
          Alcotest.test_case "tied matrices stay sound" `Quick
            test_tied_matrix_sound_across_permutation;
          Alcotest.test_case "digest sensitive to every search knob" `Quick
            test_digest_sensitivity;
        ] );
      ( "admission",
        [
          Alcotest.test_case "interrupted solves never admitted" `Quick
            test_interrupted_never_admitted;
        ] );
      ( "store",
        [
          Alcotest.test_case "disk round trip" `Quick test_disk_round_trip;
          Alcotest.test_case "corrupt entry rejected and re-solved" `Quick
            test_corrupt_entry_rejected;
          Alcotest.test_case "LRU eviction at capacity" `Quick
            test_lru_eviction;
          Alcotest.test_case "disk store honours max_bytes" `Quick
            test_disk_bound_eviction;
        ] );
    ]
