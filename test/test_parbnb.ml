(* Tests for the parallel branch-and-bound: agreement with the
   sequential solver, validity of outputs, worker-count robustness. *)

module Dist_matrix = Distmat.Dist_matrix
module Gen = Distmat.Gen
module Utree = Ultra.Utree
module Solver = Bnb.Solver
module Par_bnb = Parbnb.Par_bnb
module Stats = Bnb.Stats
module Shared_pool = Parbnb.Shared_pool
module Domain_pool = Parbnb.Domain_pool
module Bb_tree = Bnb.Bb_tree

let rng seed = Random.State.make [| seed |]
let check_float = Alcotest.(check (float 1e-6))

let test_matches_sequential_random () =
  for seed = 0 to 7 do
    let m = Gen.uniform_metric ~rng:(rng seed) 9 in
    let seq = Solver.solve m in
    let par = Par_bnb.solve ~n_workers:4 m in
    check_float "same optimum" seq.Solver.cost par.Par_bnb.cost;
    Alcotest.(check bool) "optimal" true par.Par_bnb.optimal;
    Alcotest.(check bool) "feasible" true
      (Utree.is_feasible m par.Par_bnb.tree);
    check_float "cost = weight" par.Par_bnb.cost
      (Utree.weight par.Par_bnb.tree)
  done

let test_matches_sequential_mtdna_like () =
  for seed = 0 to 4 do
    let m = Gen.near_ultrametric ~rng:(rng (50 + seed)) ~noise:0.2 10 in
    let seq = Solver.solve m in
    let par = Par_bnb.solve ~n_workers:3 m in
    check_float "same optimum" seq.Solver.cost par.Par_bnb.cost
  done

let test_various_worker_counts () =
  let m = Gen.uniform_metric ~rng:(rng 11) 10 in
  let reference = (Solver.solve m).Solver.cost in
  List.iter
    (fun p ->
      let r = Par_bnb.solve ~n_workers:p m in
      check_float (Printf.sprintf "p=%d" p) reference r.Par_bnb.cost;
      Alcotest.(check int) "worker count recorded" p r.Par_bnb.n_workers)
    [ 1; 2; 5; 8; 16 ]

let test_more_workers_than_seeds () =
  (* Workers exceeding the seeded frontier must terminate cleanly. *)
  let m = Gen.uniform_metric ~rng:(rng 12) 5 in
  let r = Par_bnb.solve ~n_workers:12 m in
  check_float "optimum" (Solver.solve m).Solver.cost r.Par_bnb.cost

let test_two_species () =
  let m = Dist_matrix.init 2 (fun _ _ -> 4.) in
  let r = Par_bnb.solve ~n_workers:4 m in
  check_float "cost" 4. r.Par_bnb.cost

let test_rejects_zero_workers () =
  let m = Gen.uniform_metric ~rng:(rng 1) 5 in
  (match Par_bnb.solve ~n_workers:0 m with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ())

let test_33_mode_parallel () =
  let m = Gen.near_ultrametric ~rng:(rng 30) ~noise:0.2 9 in
  let options = { Solver.default_options with relation33 = Solver.Third_only } in
  let seq = Solver.solve ~options m in
  let par = Par_bnb.solve ~options ~n_workers:4 m in
  check_float "same cost under 3-3" seq.Solver.cost par.Par_bnb.cost

let test_stats_merged () =
  let m = Gen.uniform_metric ~rng:(rng 13) 10 in
  let r = Par_bnb.solve ~n_workers:4 m in
  Alcotest.(check bool) "expanded > 0" true (r.Par_bnb.stats.Stats.expanded > 0)

let test_cap_reports_non_optimal () =
  let m = Gen.uniform_metric ~rng:(rng 14) 12 in
  let options = { Solver.default_options with max_expanded = Some 3 } in
  let r = Par_bnb.solve ~options ~n_workers:4 m in
  Alcotest.(check bool) "not optimal" false r.Par_bnb.optimal;
  Alcotest.(check bool) "still feasible" true
    (Utree.is_feasible m r.Par_bnb.tree)

(* --- Shared_pool --- *)

let dummy_node lb : Bb_tree.node =
  { tree = Utree.Leaf 0; k = 2; cost = lb; lb }

let test_pool_take_after_seed () =
  let pool = Shared_pool.create ~n_workers:1 () in
  Shared_pool.seed pool [ dummy_node 1.; dummy_node 2. ];
  (match Shared_pool.take pool with
  | Some n -> Alcotest.(check (float 0.)) "first" 1. n.Bb_tree.lb
  | None -> Alcotest.fail "expected a node");
  (match Shared_pool.take pool with
  | Some _ -> ()
  | None -> Alcotest.fail "expected second node");
  (* Single worker, empty pool: termination. *)
  Alcotest.(check bool) "terminates" true (Shared_pool.take pool = None)

let test_pool_all_workers_park () =
  (* Two domains both draining an empty pool must both get None rather
     than deadlock. *)
  let pool = Shared_pool.create ~n_workers:2 () in
  let worker () = Shared_pool.take pool = None in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  Alcotest.(check bool) "both released" true (Domain.join d1 && Domain.join d2)

let test_pool_donation_wakes_parked () =
  let pool = Shared_pool.create ~n_workers:2 () in
  let taker = Domain.spawn (fun () -> Shared_pool.take pool) in
  (* Let the taker park, then donate: it must receive the node, and a
     subsequent take must trigger termination for both. *)
  Shared_pool.donate pool (dummy_node 7.);
  (match Domain.join taker with
  | Some n -> Alcotest.(check (float 0.)) "woken with node" 7. n.Bb_tree.lb
  | None ->
      (* The taker may also have terminated first if it raced past the
         donation; accept only if the node is still in the pool. *)
      Alcotest.(check bool) "node preserved" false (Shared_pool.is_empty pool))

(* --- Domain_pool --- *)

let test_dpool_preserves_order () =
  let tasks = Array.init 100 Fun.id in
  List.iter
    (fun n_workers ->
      let out = Domain_pool.map ~n_workers (fun i -> i * i) tasks in
      Alcotest.(check (array int))
        (Printf.sprintf "order, %d workers" n_workers)
        (Array.init 100 (fun i -> i * i))
        out)
    [ 1; 2; 4 ]

let test_dpool_more_workers_than_tasks () =
  let out = Domain_pool.map ~n_workers:8 (fun i -> i + 1) [| 1; 2; 3 |] in
  Alcotest.(check (array int)) "all done" [| 2; 3; 4 |] out

let test_dpool_empty_and_single () =
  Alcotest.(check (array int)) "empty" [||]
    (Domain_pool.map ~n_workers:4 Fun.id [||]);
  Alcotest.(check (array int)) "single" [| 7 |]
    (Domain_pool.map ~n_workers:4 Fun.id [| 7 |])

let test_dpool_rejects_zero_workers () =
  match Domain_pool.map ~n_workers:0 Fun.id [| 1 |] with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ()

let test_dpool_propagates_exception () =
  let f i = if i = 5 then failwith "boom" else i in
  (match Domain_pool.map ~n_workers:3 f (Array.init 20 Fun.id) with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg);
  (* Sequential fallback path too. *)
  match Domain_pool.map ~n_workers:1 f (Array.init 20 Fun.id) with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ()

(* --- persistent Domain_pool: fault injection and cancellation --- *)

(* A task that raises must fail only its own future: siblings complete,
   later submissions still run, and shutdown joins without deadlock. *)
let test_dpool_fault_isolation () =
  let pool = Domain_pool.create ~n_workers:2 in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      let futures =
        List.init 8 (fun i ->
            ( i,
              Domain_pool.submit pool (fun () ->
                  if i = 3 then failwith "boom" else i * 10) ))
      in
      List.iter
        (fun (i, fut) ->
          if i = 3 then (
            match Domain_pool.await fut with
            | _ -> Alcotest.fail "expected Failure"
            | exception Failure msg ->
                Alcotest.(check string) "message" "boom" msg)
          else
            Alcotest.(check int)
              (Printf.sprintf "task %d" i)
              (i * 10) (Domain_pool.await fut))
        futures;
      Alcotest.(check int)
        "pool still serves after a task failure" 99
        (Domain_pool.await (Domain_pool.submit pool (fun () -> 99))))

(* Cancellation: the running task drains to completion, queued unstarted
   tasks come back as [Cancelled], and new submissions are rejected. *)
let test_dpool_cancel () =
  let pool = Domain_pool.create ~n_workers:1 in
  let gate = Atomic.make false in
  let started = Atomic.make false in
  let running =
    Domain_pool.submit pool (fun () ->
        Atomic.set started true;
        while not (Atomic.get gate) do
          Domain.cpu_relax ()
        done;
        "done")
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  let queued = Domain_pool.submit pool (fun () -> "never") in
  Domain_pool.cancel pool;
  Atomic.set gate true;
  Alcotest.(check string)
    "running task completes" "done"
    (Domain_pool.await running);
  (match Domain_pool.await queued with
  | _ -> Alcotest.fail "expected Cancelled for the queued task"
  | exception Domain_pool.Cancelled -> ());
  (match Domain_pool.submit pool (fun () -> 0) with
  | _ -> Alcotest.fail "expected Cancelled on submit"
  | exception Domain_pool.Cancelled -> ());
  (* Clean join even after cancellation. *)
  Domain_pool.shutdown pool

let prop_parallel_equals_sequential =
  QCheck.Test.make ~name:"parallel cost = sequential cost" ~count:20
    (QCheck.make
       ~print:(fun (s, n, p) -> Printf.sprintf "seed=%d n=%d p=%d" s n p)
       QCheck.Gen.(triple (int_bound 10_000) (int_range 2 9) (int_range 1 6)))
    (fun (seed, n, p) ->
      let m = Gen.uniform_metric ~rng:(rng seed) n in
      let seq = (Solver.solve m).Solver.cost in
      let par = (Par_bnb.solve ~n_workers:p m).Par_bnb.cost in
      Float.abs (seq -. par) < 1e-6)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "parbnb"
    [
      ( "par_bnb",
        [
          Alcotest.test_case "matches sequential (random)" `Quick
            test_matches_sequential_random;
          Alcotest.test_case "matches sequential (mtdna-like)" `Quick
            test_matches_sequential_mtdna_like;
          Alcotest.test_case "worker counts" `Quick test_various_worker_counts;
          Alcotest.test_case "more workers than seeds" `Quick
            test_more_workers_than_seeds;
          Alcotest.test_case "two species" `Quick test_two_species;
          Alcotest.test_case "rejects zero workers" `Quick
            test_rejects_zero_workers;
          Alcotest.test_case "3-3 parallel" `Quick test_33_mode_parallel;
          Alcotest.test_case "stats merged" `Quick test_stats_merged;
          Alcotest.test_case "cap reports non-optimal" `Quick
            test_cap_reports_non_optimal;
        ] );
      ( "shared_pool",
        [
          Alcotest.test_case "take after seed" `Quick test_pool_take_after_seed;
          Alcotest.test_case "all workers park" `Quick
            test_pool_all_workers_park;
          Alcotest.test_case "donation wakes parked" `Quick
            test_pool_donation_wakes_parked;
        ] );
      ( "domain_pool",
        [
          Alcotest.test_case "preserves order" `Quick
            test_dpool_preserves_order;
          Alcotest.test_case "more workers than tasks" `Quick
            test_dpool_more_workers_than_tasks;
          Alcotest.test_case "empty and single" `Quick
            test_dpool_empty_and_single;
          Alcotest.test_case "rejects zero workers" `Quick
            test_dpool_rejects_zero_workers;
          Alcotest.test_case "propagates exception" `Quick
            test_dpool_propagates_exception;
          Alcotest.test_case "fault isolation (persistent)" `Quick
            test_dpool_fault_isolation;
          Alcotest.test_case "cancellation (persistent)" `Quick
            test_dpool_cancel;
        ] );
      ("properties", q [ prop_parallel_equals_sequential ]);
    ]
