(* The anytime layer's contract, end to end:

   - no budget (or [Budget.unlimited], or a huge budget) is
     bit-identical to the pre-budget solver — cost, tree and every
     statistic;
   - an exhausted budget stops the search with the right [status], a
     feasible incumbent, a certified lower bound and a non-empty
     frontier;
   - a pre-set cancel flag stops immediately with the heuristic
     incumbent;
   - checkpoints round-trip exactly and an interrupted run, resumed,
     reaches the same optimum an uninterrupted one finds (sequential
     and with inter-block parallelism);
   - the run manifest records status and lower bound. *)

module Dist_matrix = Distmat.Dist_matrix
module Matrix_io = Distmat.Matrix_io
module Utree = Ultra.Utree
module Solver = Bnb.Solver
module Stats = Bnb.Stats
module Budget = Bnb.Budget
module Checkpoint = Bnb.Checkpoint
module Par_bnb = Parbnb.Par_bnb
module Pipeline = Compactphy.Pipeline
module Run_config = Compactphy.Run_config

let rng seed = Random.State.make [| 0xA11; seed |]

(* A matrix whose exact solve expands plenty of nodes: uniform random
   data is the branch-and-bound's hard case. *)
let hard n seed = Distmat.Gen.uniform_metric ~rng:(rng seed) n

let mtdna n seed = (Seqsim.Mtdna.generate ~rng:(rng seed) n).Seqsim.Mtdna.matrix

let exact_float = Alcotest.(check (float 0.))

let check_same_outcome name (a : Solver.outcome) (b : Solver.outcome) =
  exact_float (name ^ ": cost") a.Solver.cost b.Solver.cost;
  Alcotest.(check bool)
    (name ^ ": tree") true
    (Utree.equal a.Solver.tree b.Solver.tree);
  Alcotest.(check bool) (name ^ ": optimal") a.Solver.optimal b.Solver.optimal;
  Alcotest.(check int)
    (name ^ ": expanded")
    a.Solver.stats.Stats.expanded b.Solver.stats.Stats.expanded;
  Alcotest.(check int)
    (name ^ ": generated")
    a.Solver.stats.Stats.generated b.Solver.stats.Stats.generated;
  Alcotest.(check int)
    (name ^ ": pruned")
    a.Solver.stats.Stats.pruned b.Solver.stats.Stats.pruned;
  Alcotest.(check int)
    (name ^ ": ub_updates")
    a.Solver.stats.Stats.ub_updates b.Solver.stats.Stats.ub_updates;
  Alcotest.(check int)
    (name ^ ": max_open")
    a.Solver.stats.Stats.max_open b.Solver.stats.Stats.max_open

(* No budget, the explicit unlimited budget, and a budget too large to
   fire must all produce the same outcome, bit for bit. *)
let test_unbudgeted_bit_identical () =
  let m = hard 10 3 in
  let plain = Solver.solve m in
  Alcotest.(check bool)
    "plain run is Exact" true
    (plain.Solver.status = Budget.Exact);
  exact_float "exact run certifies its own cost" plain.Solver.cost
    plain.Solver.lower_bound;
  Alcotest.(check int)
    "exact run leaves no frontier" 0
    (List.length plain.Solver.frontier);
  check_same_outcome "unlimited" plain (Solver.solve ~budget:Budget.unlimited m);
  check_same_outcome "huge budget" plain
    (Solver.solve
       ~budget:(Budget.create ~deadline_s:3600. ~max_nodes:max_int ())
       m)

let test_node_cap_fires () =
  let m = hard 12 5 in
  let reference = Solver.solve m in
  let r = Solver.solve ~budget:(Budget.create ~max_nodes:5 ()) m in
  Alcotest.(check bool)
    "status is Node_cap" true
    (r.Solver.status = Budget.Node_cap);
  Alcotest.(check bool) "not optimal" false r.Solver.optimal;
  Alcotest.(check bool)
    "frontier preserved" true
    (r.Solver.frontier <> []);
  Alcotest.(check bool)
    "bound below incumbent" true
    (r.Solver.lower_bound <= r.Solver.cost +. 1e-9);
  Alcotest.(check bool)
    "bound certifies the optimum" true
    (r.Solver.lower_bound <= reference.Solver.cost +. 1e-9);
  Alcotest.(check bool)
    "incumbent is feasible" true
    (Utree.is_feasible m r.Solver.tree)

(* --deadline 0.1 on a hard >= 20-species matrix: the run must come
   back well within ~2x the deadline (generous slop for CI), report
   Deadline, and record status + lower bound in the manifest. *)
let test_deadline_fires () =
  let m = hard 20 7 in
  let deadline = 0.1 in
  let config = Run_config.(default |> with_deadline deadline) in
  let r, elapsed = Obs.Clock.time (fun () -> Pipeline.exact ~config m) in
  Alcotest.(check bool)
    "status is Deadline" true
    (r.Pipeline.status = Budget.Deadline);
  Alcotest.(check bool)
    (Printf.sprintf "terminated promptly (%.3fs for a %.1fs deadline)"
       elapsed deadline)
    true
    (elapsed < (2. *. deadline) +. 0.5);
  Alcotest.(check bool)
    "bound below incumbent" true
    (r.Pipeline.lower_bound <= r.Pipeline.cost +. 1e-9);
  Alcotest.(check bool)
    "checkpoint offered" true
    (r.Pipeline.checkpoint <> None);
  let json = Obs.Json.to_string (Obs.Report.to_json r.Pipeline.report) in
  Alcotest.(check bool)
    "manifest records status" true
    (Astring_contains.contains json "\"status\"");
  Alcotest.(check bool)
    "manifest records lower bound" true
    (Astring_contains.contains json "\"lower_bound\"")

let test_cancel_flag () =
  let m = hard 14 9 in
  let cancel = Atomic.make true in
  let r = Solver.solve ~budget:(Budget.create ~cancel ()) m in
  Alcotest.(check bool)
    "status is Cancelled" true
    (r.Solver.status = Budget.Cancelled);
  Alcotest.(check bool)
    "heuristic incumbent is feasible" true
    (Utree.is_feasible m r.Solver.tree)

let test_checkpoint_roundtrip () =
  let m = hard 13 11 in
  let r = Solver.solve ~budget:(Budget.create ~max_nodes:20 ()) m in
  Alcotest.(check bool) "interrupted" true (r.Solver.status <> Budget.Exact);
  let ck =
    Checkpoint.make ~matrix:m ~status:r.Solver.status ~cost:r.Solver.cost
      ~lower_bound:r.Solver.lower_bound
      ~blocks:
        [
          Checkpoint.make_block ~id:0 ~matrix:m ~solved:false
            ~tree:(Some r.Solver.tree) ~frontier:r.Solver.frontier;
        ]
  in
  let path = Filename.temp_file "anytime" ".ckpt.json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Checkpoint.save path ck;
      match Checkpoint.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok ck' ->
          Alcotest.(check bool)
            "digest verifies" true
            (Checkpoint.verify ck' m = Ok ());
          Alcotest.(check int) "n" ck.Checkpoint.n ck'.Checkpoint.n;
          Alcotest.(check bool)
            "status" true
            (ck'.Checkpoint.status = ck.Checkpoint.status);
          exact_float "cost survives exactly" ck.Checkpoint.cost
            ck'.Checkpoint.cost;
          exact_float "bound survives exactly" ck.Checkpoint.lower_bound
            ck'.Checkpoint.lower_bound;
          let b = List.hd ck.Checkpoint.blocks
          and b' = List.hd ck'.Checkpoint.blocks in
          Alcotest.(check bool)
            "incumbent tree survives exactly" true
            (Option.equal Utree.equal b.Checkpoint.b_tree
               b'.Checkpoint.b_tree);
          Alcotest.(check bool)
            "frontier survives exactly" true
            (List.equal Utree.equal b.Checkpoint.b_frontier
               b'.Checkpoint.b_frontier))

(* Interrupt, checkpoint, resume: the resumed run must finish Exact at
   the same cost an uninterrupted run reports. *)
let resume_reaches_optimum ~config m =
  let uninterrupted = Pipeline.exact ~config:Run_config.default m in
  let budgeted =
    Pipeline.exact ~config:Run_config.(config |> with_max_nodes 10) m
  in
  Alcotest.(check bool)
    "budgeted run interrupted" true
    (budgeted.Pipeline.status <> Budget.Exact);
  let ck =
    match budgeted.Pipeline.checkpoint with
    | Some ck -> ck
    | None -> Alcotest.fail "interrupted run offered no checkpoint"
  in
  let resumed = Pipeline.exact ~config ~resume:ck m in
  Alcotest.(check bool)
    "resumed run is Exact" true
    (resumed.Pipeline.status = Budget.Exact);
  exact_float "resumed cost = uninterrupted cost" uninterrupted.Pipeline.cost
    resumed.Pipeline.cost

let test_resume_sequential () =
  resume_reaches_optimum ~config:Run_config.default (hard 12 13)

(* Same story through the compact-set pipeline, with two blocks solved
   concurrently on resume. *)
let test_resume_compact_parallel () =
  let m = mtdna 20 17 in
  let uninterrupted = Pipeline.with_compact_sets ~config:Run_config.default m in
  let budgeted =
    Pipeline.with_compact_sets
      ~config:Run_config.(default |> with_max_nodes 3) m
  in
  match budgeted.Pipeline.checkpoint with
  | None ->
      (* The decomposition can make every block trivial; then the cap
         never fires and there is nothing to resume. *)
      Alcotest.(check bool)
        "no checkpoint only when Exact" true
        (budgeted.Pipeline.status = Budget.Exact)
  | Some ck ->
      let resumed =
        Pipeline.with_compact_sets
          ~config:Run_config.(default |> with_block_workers 2)
          ~resume:ck m
      in
      Alcotest.(check bool)
        "resumed run is Exact" true
        (resumed.Pipeline.status = Budget.Exact);
      exact_float "resumed cost = uninterrupted cost"
        uninterrupted.Pipeline.cost resumed.Pipeline.cost;
      Alcotest.(check bool)
        "resumed tree = uninterrupted tree" true
        (Utree.equal uninterrupted.Pipeline.tree resumed.Pipeline.tree)

let test_par_bnb_budget () =
  let m = hard 13 19 in
  let r =
    Par_bnb.solve ~n_workers:2 ~budget:(Budget.create ~max_nodes:10 ()) m
  in
  Alcotest.(check bool)
    "status set" true
    (r.Par_bnb.status <> Budget.Exact);
  Alcotest.(check bool)
    "bound below incumbent" true
    (r.Par_bnb.lower_bound <= r.Par_bnb.cost +. 1e-9);
  Alcotest.(check bool)
    "incumbent feasible" true
    (Utree.is_feasible m r.Par_bnb.tree)

let () =
  Alcotest.run "anytime"
    [
      ( "budgets",
        [
          Alcotest.test_case "no budget is bit-identical" `Quick
            test_unbudgeted_bit_identical;
          Alcotest.test_case "node cap fires" `Quick test_node_cap_fires;
          Alcotest.test_case "deadline fires" `Quick test_deadline_fires;
          Alcotest.test_case "cancel flag" `Quick test_cancel_flag;
          Alcotest.test_case "par-bnb budget" `Quick test_par_bnb_budget;
        ] );
      ( "checkpoints",
        [
          Alcotest.test_case "round-trip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "resume sequential" `Quick test_resume_sequential;
          Alcotest.test_case "resume compact parallel" `Quick
            test_resume_compact_parallel;
        ] );
    ]
