(* A small property-testing harness shared by the test executables.

   No new dependencies: generation runs on [Random.State] seeded
   deterministically per case, so a failure report is always
   reproducible.  [TEST_SEED] reseeds the whole run (the failure message
   prints the value to re-export); [PROP_MULT] multiplies the case count
   (CI's nightly job runs the suite at 10x).  On failure the harness
   greedily shrinks the counterexample through the arbitrary's [shrink]
   sequence before reporting it. *)

type 'a arbitrary = {
  gen : Random.State.t -> 'a;
  shrink : 'a -> 'a Seq.t;
  print : 'a -> string;
}

let make ?(shrink = fun _ -> Seq.empty) ~print gen = { gen; shrink; print }

let default_seed = 0x5eed

let seed () =
  match Sys.getenv_opt "TEST_SEED" with
  | None | Some "" -> default_seed
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> n
      | None -> Alcotest.failf "TEST_SEED=%S is not an integer" s)

let mult () =
  match Sys.getenv_opt "PROP_MULT" with
  | None | Some "" -> 1
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | _ -> Alcotest.failf "PROP_MULT=%S is not a positive integer" s)

(* A property either holds, or fails with a reason (false = plain
   predicate failure, an exception is captured into the reason). *)
let run_prop prop x =
  match prop x with
  | true -> None
  | false -> Some "property returned false"
  | exception e -> Some ("property raised " ^ Printexc.to_string e)

let max_shrink_steps = 500

let shrink_counterexample arb prop x0 =
  let rec go x steps =
    if steps >= max_shrink_steps then x
    else
      match
        Seq.find (fun y -> Option.is_some (run_prop prop y)) (arb.shrink x)
      with
      | Some y -> go y (steps + 1)
      | None -> x
  in
  go x0 0

let check ?(count = 200) ~name arb prop =
  let base = seed () in
  let cases = count * mult () in
  for case = 0 to cases - 1 do
    let st = Random.State.make [| 0x9e3779b9; base; case |] in
    let x = arb.gen st in
    match run_prop prop x with
    | None -> ()
    | Some reason ->
        let small = shrink_counterexample arb prop x in
        Alcotest.failf
          "%s: case %d/%d failed (%s)@.shrunk counterexample:@.%s@.reproduce \
           with TEST_SEED=%d"
          name case cases reason (arb.print small) base
  done

(* --- distance-matrix arbitraries --- *)

module Dist_matrix = Distmat.Dist_matrix
module Gen = Distmat.Gen
module Matrix_io = Distmat.Matrix_io

(* Dropping one species keeps every flavour's defining property
   (metricity, ultrametricity, cluster structure), so it is a sound
   shrinking move for all matrix generators. *)
let drop_species m k =
  let n = Dist_matrix.size m in
  Dist_matrix.init (n - 1) (fun i j ->
      let i = if i >= k then i + 1 else i in
      let j = if j >= k then j + 1 else j in
      Dist_matrix.get m i j)

let shrink_matrix ~min_n m =
  let n = Dist_matrix.size m in
  if n <= min_n then Seq.empty
  else Seq.init n (fun k -> drop_species m k)

(* Mixed flavours: uniform metric (the papers' hard random case),
   clock-tree ultrametric, its perturbation, and clustered data — the
   shapes the pipeline meets in practice. *)
let gen_matrix ~min_n ~max_n st =
  let n = min_n + Random.State.int st (max_n - min_n + 1) in
  match Random.State.int st 4 with
  | 0 -> Gen.uniform_metric ~rng:st n
  | 1 -> Gen.ultrametric ~rng:st n
  | 2 -> Gen.near_ultrametric ~rng:st n
  | _ -> Gen.clustered ~rng:st ~n_clusters:(Int.max 2 (n / 4)) n

let matrix ?(min_n = 4) ~max_n () =
  make
    ~shrink:(shrink_matrix ~min_n)
    ~print:(fun m -> Matrix_io.to_phylip m)
    (gen_matrix ~min_n ~max_n)
