(* Tests for the obs telemetry library (clock, JSON, spans, metrics,
   progress, reports) and the Stats accumulation semantics it exposes. *)

module Stats = Bnb.Stats

(* Substring check for asserting on rendered JSON. *)
let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* --- Clock --- *)

let test_clock_monotone () =
  let a = Obs.Clock.now_ns () in
  let b = Obs.Clock.now_ns () in
  Alcotest.(check bool) "non-decreasing" true (Int64.compare b a >= 0);
  let c = Obs.Clock.counter () in
  let _, dt = Obs.Clock.time (fun () -> Sys.opaque_identity (Array.make 1000 0)) in
  Alcotest.(check bool) "elapsed >= 0" true (Obs.Clock.elapsed_s c >= 0.);
  Alcotest.(check bool) "timed >= 0" true (dt >= 0.)

(* --- Json --- *)

let test_json_render () =
  let j =
    Obs.Json.Obj
      [
        ("a", Obs.Json.Int 1);
        ("b", Obs.Json.List [ Obs.Json.Bool true; Obs.Json.Null ]);
        ("s", Obs.Json.String "x\"y\nz\\");
        ("f", Obs.Json.Float 2.5);
        ("i", Obs.Json.Float 3.);
      ]
  in
  Alcotest.(check string)
    "rendering"
    "{\"a\":1,\"b\":[true,null],\"s\":\"x\\\"y\\nz\\\\\",\"f\":2.5,\"i\":3.0}"
    (Obs.Json.to_string j)

let test_json_non_finite () =
  Alcotest.(check string) "nan" "null" (Obs.Json.to_string (Obs.Json.Float Float.nan));
  Alcotest.(check string)
    "inf" "1e999"
    (Obs.Json.to_string (Obs.Json.Float Float.infinity))

(* --- Span --- *)

let test_span_nesting () =
  let buf = Obs.Span.create () in
  let r =
    Obs.Span.with_span ~buffer:buf "parent" (fun () ->
        let x =
          Obs.Span.with_span ~buffer:buf "child" (fun () ->
              ignore (Sys.opaque_identity (List.init 100 Fun.id));
              41)
        in
        x + 1)
  in
  Alcotest.(check int) "result" 42 r;
  match Obs.Span.events buf with
  | [ child; parent ] ->
      (* The child completes first, so it is recorded first. *)
      Alcotest.(check string) "child name" "child" child.Obs.Span.name;
      Alcotest.(check string) "parent name" "parent" parent.Obs.Span.name;
      let child_end = Int64.add child.Obs.Span.start_ns child.Obs.Span.dur_ns in
      let parent_end =
        Int64.add parent.Obs.Span.start_ns parent.Obs.Span.dur_ns
      in
      Alcotest.(check bool)
        "child starts after parent" true
        (child.Obs.Span.start_ns >= parent.Obs.Span.start_ns);
      Alcotest.(check bool)
        "child ends before parent" true
        (Int64.compare child_end parent_end <= 0)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_span_records_on_raise () =
  let buf = Obs.Span.create () in
  (try
     Obs.Span.with_span ~buffer:buf "failing" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span recorded" 1 (Obs.Span.length buf)

let test_span_ambient_and_chrome () =
  let buf = Obs.Span.create () in
  Obs.Span.install buf;
  Fun.protect ~finally:Obs.Span.uninstall (fun () ->
      Obs.Span.with_span "ambient" Fun.id);
  Alcotest.(check int) "ambient recorded" 1 (Obs.Span.length buf);
  match Obs.Span.to_chrome_json buf with
  | Obs.Json.Obj kvs ->
      (match List.assoc "traceEvents" kvs with
      | Obs.Json.List [ Obs.Json.Obj ev ] ->
          Alcotest.(check bool)
            "ph is X" true
            (List.assoc "ph" ev = Obs.Json.String "X");
          Alcotest.(check bool) "has ts" true (List.mem_assoc "ts" ev);
          Alcotest.(check bool) "has dur" true (List.mem_assoc "dur" ev)
      | _ -> Alcotest.fail "traceEvents shape")
  | _ -> Alcotest.fail "chrome json not an object"

let test_span_disabled_is_noop () =
  Obs.Span.uninstall ();
  Alcotest.(check int) "passthrough" 7 (Obs.Span.with_span "x" (fun () -> 7))

(* --- Metrics --- *)

let test_counter () =
  let reg = Obs.Metrics.create_registry () in
  let c = Obs.Metrics.counter ~registry:reg "t.counter" in
  for _ = 1 to 10 do
    Obs.Metrics.incr c
  done;
  Obs.Metrics.add c 32;
  Alcotest.(check int) "value" 42 (Obs.Metrics.counter_value c);
  (* Registration is idempotent: same name, same counter. *)
  let c' = Obs.Metrics.counter ~registry:reg "t.counter" in
  Obs.Metrics.incr c';
  Alcotest.(check int) "shared" 43 (Obs.Metrics.counter_value c);
  (* ... but a kind clash is an error. *)
  let clash =
    try
      ignore (Obs.Metrics.gauge ~registry:reg "t.counter");
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "kind clash" true clash

let test_counter_parallel () =
  let reg = Obs.Metrics.create_registry () in
  let c = Obs.Metrics.counter ~registry:reg "t.par" in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Obs.Metrics.incr c
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost updates" 40_000 (Obs.Metrics.counter_value c)

let test_gauge () =
  let reg = Obs.Metrics.create_registry () in
  let g = Obs.Metrics.gauge ~registry:reg "t.gauge" in
  Alcotest.(check bool) "unset is NaN" true
    (Float.is_nan (Obs.Metrics.gauge_value g));
  Obs.Metrics.set g 3.25;
  Alcotest.(check (float 0.)) "set" 3.25 (Obs.Metrics.gauge_value g)

let test_histogram_buckets () =
  Alcotest.(check int) "0.5 -> 0" 0 (Obs.Metrics.bucket_of 0.5);
  Alcotest.(check int) "neg -> 0" 0 (Obs.Metrics.bucket_of (-3.));
  Alcotest.(check int) "1 -> 1" 1 (Obs.Metrics.bucket_of 1.);
  Alcotest.(check int) "1.99 -> 1" 1 (Obs.Metrics.bucket_of 1.99);
  Alcotest.(check int) "2 -> 2" 2 (Obs.Metrics.bucket_of 2.);
  Alcotest.(check int) "1000 -> 10" 10 (Obs.Metrics.bucket_of 1000.);
  Alcotest.(check int)
    "overflow clamps" (Obs.Metrics.n_buckets - 1)
    (Obs.Metrics.bucket_of 1e300);
  Alcotest.(check (float 0.)) "upper of 3" 8. (Obs.Metrics.bucket_upper 3)

let test_histogram_merge () =
  (* Observations from several domains land in different shards; the
     snapshot must merge them (same-index buckets add). *)
  let reg = Obs.Metrics.create_registry () in
  let h = Obs.Metrics.histogram ~registry:reg "t.hist" in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 1000 do
              Obs.Metrics.observe h (float_of_int ((d * 1000) + i))
            done))
  in
  List.iter Domain.join domains;
  let s = Obs.Metrics.histogram_value h in
  Alcotest.(check int) "count" 4000 s.Obs.Metrics.count;
  Alcotest.(check int)
    "bucket sums match count" 4000
    (Array.fold_left ( + ) 0 s.Obs.Metrics.counts);
  (* sum of 1..4000 *)
  Alcotest.(check (float 1e-6)) "sum" 8_002_000. s.Obs.Metrics.sum;
  (* values 1..4000 never reach bucket 13 = [4096, 8192) *)
  Alcotest.(check int) "no overflow bucket" 0 s.Obs.Metrics.counts.(13)

let test_metrics_dump () =
  let reg = Obs.Metrics.create_registry () in
  let c = Obs.Metrics.counter ~registry:reg "a.count" in
  Obs.Metrics.incr c;
  let h = Obs.Metrics.histogram ~registry:reg "b.hist" in
  Obs.Metrics.observe h 3.;
  let s = Obs.Json.to_string (Obs.Metrics.dump ~registry:reg ()) in
  Alcotest.(check bool) "has counter" true
    (contains ~affix:"\"a.count\"" s);
  Alcotest.(check bool) "has histogram" true
    (contains ~affix:"\"b.hist\"" s);
  Obs.Metrics.reset ~registry:reg ();
  Alcotest.(check int) "reset" 0 (Obs.Metrics.counter_value c)

(* --- Stats --- *)

let test_stats_add () =
  let acc = Stats.create () in
  let s1 = Stats.create () in
  s1.Stats.expanded <- 10;
  s1.Stats.generated <- 20;
  s1.Stats.pruned <- 5;
  s1.Stats.max_open <- 7;
  let s2 = Stats.create () in
  s2.Stats.expanded <- 1;
  s2.Stats.generated <- 2;
  s2.Stats.pruned <- 3;
  s2.Stats.max_open <- 4;
  Stats.add acc s1;
  Stats.add acc s2;
  Alcotest.(check int) "expanded sums" 11 acc.Stats.expanded;
  Alcotest.(check int) "generated sums" 22 acc.Stats.generated;
  Alcotest.(check int) "pruned sums" 8 acc.Stats.pruned;
  (* max_open is a high-water mark: MAX, not sum. *)
  Alcotest.(check int) "max_open maxes" 7 acc.Stats.max_open

let test_stats_json () =
  let s = Stats.create () in
  s.Stats.expanded <- 3;
  s.Stats.max_open <- 2;
  let j = Obs.Json.to_string (Stats.to_json s) in
  Alcotest.(check bool) "expanded key" true
    (contains ~affix:"\"expanded\":3" j);
  Alcotest.(check bool) "max_open key" true
    (contains ~affix:"\"max_open\":2" j);
  let via_pp = Format.asprintf "%a" Stats.pp_json s in
  Alcotest.(check string) "pp_json agrees" j via_pp

(* --- Report --- *)

let test_report () =
  let r = Obs.Report.create "unit" in
  Obs.Report.add_phase r "alpha" 1.0;
  let x = Obs.Report.timed_phase r "beta" (fun () -> 5) in
  Alcotest.(check int) "timed result" 5 x;
  Obs.Report.set r "k" (Obs.Json.Int 9);
  Obs.Report.set r "k" (Obs.Json.Int 10);
  Obs.Report.add_worker r [ ("worker", Obs.Json.Int 0) ];
  (match Obs.Report.phases r with
  | [ ("alpha", a); ("beta", b) ] ->
      Alcotest.(check (float 0.)) "alpha time" 1.0 a;
      Alcotest.(check bool) "beta >= 0" true (b >= 0.)
  | _ -> Alcotest.fail "phase order");
  Alcotest.(check bool) "total" true (Obs.Report.phase_total_s r >= 1.0);
  let j = Obs.Json.to_string (Obs.Report.to_json r) in
  Alcotest.(check bool) "name" true
    (contains ~affix:"\"name\":\"unit\"" j);
  Alcotest.(check bool) "last set wins" true
    (contains ~affix:"\"k\":10" j);
  Alcotest.(check bool) "single k" false
    (contains ~affix:"\"k\":9" j);
  Alcotest.(check bool) "workers" true
    (contains ~affix:"\"workers\":[{\"worker\":0}]" j)

let test_report_workers_accessor () =
  let r = Obs.Report.create "unit" in
  Alcotest.(check int) "empty" 0 (List.length (Obs.Report.workers r));
  Obs.Report.add_worker r [ ("worker", Obs.Json.Int 0) ];
  Obs.Report.add_worker r [ ("worker", Obs.Json.Int 1) ];
  match Obs.Report.workers r with
  | [ Obs.Json.Obj [ ("worker", Obs.Json.Int 0) ];
      Obs.Json.Obj [ ("worker", Obs.Json.Int 1) ] ] ->
      ()
  | _ -> Alcotest.fail "workers not returned in insertion order"

(* --- Progress --- *)

let test_progress_ndjson () =
  let path = Filename.temp_file "obs_progress" ".ndjson" in
  let oc = open_out path in
  let p =
    Obs.Progress.create ~interval_s:0. ~sink:(Obs.Progress.Ndjson oc) ()
  in
  Obs.Progress.sample p ~worker:0 ~expanded:10 ~pruned:2 ~open_depth:5
    ~ub:100. ~lb:80.;
  Obs.Progress.sample p ~worker:1 ~expanded:20 ~pruned:4 ~open_depth:3
    ~ub:100. ~lb:90.;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check int) "two samples" 2 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "json object" true
        (String.length l > 0 && l.[0] = '{');
      Alcotest.(check bool) "has gap" true
        (contains ~affix:"\"gap_pct\"" l))
    lines

let test_progress_rate_limit () =
  let path = Filename.temp_file "obs_progress" ".ndjson" in
  let oc = open_out path in
  let p =
    (* One-hour interval: after the first (immediately due) sample,
       nothing further is emitted. *)
    Obs.Progress.create ~interval_s:3600. ~sink:(Obs.Progress.Ndjson oc) ()
  in
  for i = 1 to 100 do
    Obs.Progress.sample p ~worker:0 ~expanded:i ~pruned:0 ~open_depth:1
      ~ub:10. ~lb:1.
  done;
  close_out oc;
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr n
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check int) "rate limited to one line" 1 !n

let test_gap_pct () =
  Alcotest.(check (float 1e-9)) "20%" 20. (Obs.Progress.gap_pct ~ub:100. ~lb:80.);
  Alcotest.(check bool) "inf ub" true
    (Float.is_nan (Obs.Progress.gap_pct ~ub:Float.infinity ~lb:3.))

(* --- Solver integration: spans + progress from a real solve --- *)

let test_solver_emits_spans () =
  let m = Distmat.Gen.uniform_metric ~rng:(Random.State.make [| 5 |]) 8 in
  let buf = Obs.Span.create () in
  Obs.Span.install buf;
  let r =
    Fun.protect ~finally:Obs.Span.uninstall (fun () ->
        Compactphy.Pipeline.compare_methods m)
  in
  let names =
    List.map (fun e -> e.Obs.Span.name) (Obs.Span.events buf)
  in
  Alcotest.(check bool) "bnb.solve span" true (List.mem "bnb.solve" names);
  Alcotest.(check bool) "pipeline span" true
    (List.mem "pipeline.with_compact_sets" names);
  Alcotest.(check bool) "exact span" true (List.mem "pipeline.exact" names);
  (* The pipeline spans must cover (almost all of) the reported elapsed
     time — the acceptance criterion for --trace output. *)
  let span_s name =
    List.fold_left
      (fun acc e ->
        if e.Obs.Span.name = name then
          acc +. (Int64.to_float e.Obs.Span.dur_ns /. 1e9)
        else acc)
      0. (Obs.Span.events buf)
  in
  let covered = span_s "pipeline.with_compact_sets" +. span_s "pipeline.exact" in
  let reported =
    r.Compactphy.Pipeline.with_cs.Compactphy.Pipeline.elapsed_s
    +. r.Compactphy.Pipeline.without_cs.Compactphy.Pipeline.elapsed_s
  in
  Alcotest.(check bool) "spans cover elapsed" true (covered >= 0.95 *. reported)

let test_pipeline_report_phases () =
  let m = Distmat.Gen.near_ultrametric ~rng:(Random.State.make [| 7 |]) 12 in
  let r = Compactphy.Pipeline.with_compact_sets m in
  let phases = List.map fst (Obs.Report.phases r.Compactphy.Pipeline.report) in
  Alcotest.(check bool) "decompose" true (List.mem "decompose" phases);
  Alcotest.(check bool) "solve-blocks" true (List.mem "solve-blocks" phases);
  Alcotest.(check bool) "re-realise" true (List.mem "re-realise" phases);
  let j = Obs.Json.to_string (Obs.Report.to_json r.Compactphy.Pipeline.report) in
  Alcotest.(check bool) "per-block stats" true
    (contains ~affix:"\"pruned\"" j)

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [ Alcotest.test_case "monotone" `Quick test_clock_monotone ] );
      ( "json",
        [
          Alcotest.test_case "render" `Quick test_json_render;
          Alcotest.test_case "non-finite" `Quick test_json_non_finite;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "records on raise" `Quick
            test_span_records_on_raise;
          Alcotest.test_case "ambient + chrome" `Quick
            test_span_ambient_and_chrome;
          Alcotest.test_case "disabled no-op" `Quick
            test_span_disabled_is_noop;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "counter parallel" `Quick test_counter_parallel;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram buckets" `Quick
            test_histogram_buckets;
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
          Alcotest.test_case "dump + reset" `Quick test_metrics_dump;
        ] );
      ( "stats",
        [
          Alcotest.test_case "add semantics" `Quick test_stats_add;
          Alcotest.test_case "json" `Quick test_stats_json;
        ] );
      ( "report",
        [
          Alcotest.test_case "lifecycle" `Quick test_report;
          Alcotest.test_case "workers accessor" `Quick
            test_report_workers_accessor;
        ] );
      ( "progress",
        [
          Alcotest.test_case "ndjson" `Quick test_progress_ndjson;
          Alcotest.test_case "rate limit" `Quick test_progress_rate_limit;
          Alcotest.test_case "gap" `Quick test_gap_pct;
        ] );
      ( "integration",
        [
          Alcotest.test_case "solver spans" `Quick test_solver_emits_spans;
          Alcotest.test_case "pipeline report" `Quick
            test_pipeline_report_phases;
        ] );
    ]
