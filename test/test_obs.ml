(* Tests for the obs telemetry library (clock, JSON, spans, metrics,
   progress, reports) and the Stats accumulation semantics it exposes. *)

module Stats = Bnb.Stats

(* Substring check for asserting on rendered JSON. *)
let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* --- Clock --- *)

let test_clock_monotone () =
  let a = Obs.Clock.now_ns () in
  let b = Obs.Clock.now_ns () in
  Alcotest.(check bool) "non-decreasing" true (Int64.compare b a >= 0);
  let c = Obs.Clock.counter () in
  let _, dt = Obs.Clock.time (fun () -> Sys.opaque_identity (Array.make 1000 0)) in
  Alcotest.(check bool) "elapsed >= 0" true (Obs.Clock.elapsed_s c >= 0.);
  Alcotest.(check bool) "timed >= 0" true (dt >= 0.)

(* --- Json --- *)

let test_json_render () =
  let j =
    Obs.Json.Obj
      [
        ("a", Obs.Json.Int 1);
        ("b", Obs.Json.List [ Obs.Json.Bool true; Obs.Json.Null ]);
        ("s", Obs.Json.String "x\"y\nz\\");
        ("f", Obs.Json.Float 2.5);
        ("i", Obs.Json.Float 3.);
      ]
  in
  Alcotest.(check string)
    "rendering"
    "{\"a\":1,\"b\":[true,null],\"s\":\"x\\\"y\\nz\\\\\",\"f\":2.5,\"i\":3.0}"
    (Obs.Json.to_string j)

let test_json_non_finite () =
  Alcotest.(check string) "nan" "null" (Obs.Json.to_string (Obs.Json.Float Float.nan));
  Alcotest.(check string)
    "inf" "1e999"
    (Obs.Json.to_string (Obs.Json.Float Float.infinity))

let test_json_parse_ok () =
  match Obs.Json.of_string "{\"a\":[1,2.5,null,\"x\\u0041\"],\"b\":true}" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j ->
      (match Obs.Json.member "a" j with
      | Some (Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Float f; Obs.Json.Null;
                              Obs.Json.String s ]) ->
          Alcotest.(check (float 0.)) "float" 2.5 f;
          Alcotest.(check string) "\\u decoded" "xA" s
      | _ -> Alcotest.fail "list shape");
      Alcotest.(check bool) "bool member" true
        (Obs.Json.member "b" j = Some (Obs.Json.Bool true))

(* Error paths must report the byte offset the parser stopped at — that
   is what makes a truncated checkpoint or manifest diagnosable. *)
let expect_parse_error input expected =
  match Obs.Json.of_string input with
  | Ok _ -> Alcotest.failf "expected failure for %S" input
  | Error e -> Alcotest.(check string) input expected e

let test_json_parse_errors () =
  expect_parse_error "" "JSON parse error at byte 0: unexpected end of input";
  expect_parse_error "{\"a\": 1"
    "JSON parse error at byte 7: expected '}'";
  expect_parse_error "[1, 2"
    "JSON parse error at byte 5: expected ']'";
  expect_parse_error "\"abc"
    "JSON parse error at byte 4: unterminated string";
  expect_parse_error "\"\\uZZZZ\""
    "JSON parse error at byte 3: invalid \\u escape";
  expect_parse_error "\"\\u00"
    "JSON parse error at byte 3: truncated \\u escape";
  expect_parse_error "true x"
    "JSON parse error at byte 5: trailing garbage";
  expect_parse_error "-"
    "JSON parse error at byte 1: invalid number \"-\""

(* --- Span --- *)

let test_span_nesting () =
  let buf = Obs.Span.create () in
  let r =
    Obs.Span.with_span ~buffer:buf "parent" (fun () ->
        let x =
          Obs.Span.with_span ~buffer:buf "child" (fun () ->
              ignore (Sys.opaque_identity (List.init 100 Fun.id));
              41)
        in
        x + 1)
  in
  Alcotest.(check int) "result" 42 r;
  match Obs.Span.events buf with
  | [ child; parent ] ->
      (* The child completes first, so it is recorded first. *)
      Alcotest.(check string) "child name" "child" child.Obs.Span.name;
      Alcotest.(check string) "parent name" "parent" parent.Obs.Span.name;
      let child_end = Int64.add child.Obs.Span.start_ns child.Obs.Span.dur_ns in
      let parent_end =
        Int64.add parent.Obs.Span.start_ns parent.Obs.Span.dur_ns
      in
      Alcotest.(check bool)
        "child starts after parent" true
        (child.Obs.Span.start_ns >= parent.Obs.Span.start_ns);
      Alcotest.(check bool)
        "child ends before parent" true
        (Int64.compare child_end parent_end <= 0)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_span_records_on_raise () =
  let buf = Obs.Span.create () in
  (try
     Obs.Span.with_span ~buffer:buf "failing" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span recorded" 1 (Obs.Span.length buf)

let test_span_ambient_and_chrome () =
  let buf = Obs.Span.create () in
  Obs.Span.install buf;
  Fun.protect ~finally:Obs.Span.uninstall (fun () ->
      Obs.Span.with_span "ambient" Fun.id);
  Alcotest.(check int) "ambient recorded" 1 (Obs.Span.length buf);
  match Obs.Span.to_chrome_json buf with
  | Obs.Json.Obj kvs ->
      (match List.assoc "traceEvents" kvs with
      | Obs.Json.List [ Obs.Json.Obj ev ] ->
          Alcotest.(check bool)
            "ph is X" true
            (List.assoc "ph" ev = Obs.Json.String "X");
          Alcotest.(check bool) "has ts" true (List.mem_assoc "ts" ev);
          Alcotest.(check bool) "has dur" true (List.mem_assoc "dur" ev)
      | _ -> Alcotest.fail "traceEvents shape")
  | _ -> Alcotest.fail "chrome json not an object"

let test_span_disabled_is_noop () =
  Obs.Span.uninstall ();
  Alcotest.(check int) "passthrough" 7 (Obs.Span.with_span "x" (fun () -> 7))

(* --- Metrics --- *)

let test_counter () =
  let reg = Obs.Metrics.create_registry () in
  let c = Obs.Metrics.counter ~registry:reg "t.counter" in
  for _ = 1 to 10 do
    Obs.Metrics.incr c
  done;
  Obs.Metrics.add c 32;
  Alcotest.(check int) "value" 42 (Obs.Metrics.counter_value c);
  (* Registration is idempotent: same name, same counter. *)
  let c' = Obs.Metrics.counter ~registry:reg "t.counter" in
  Obs.Metrics.incr c';
  Alcotest.(check int) "shared" 43 (Obs.Metrics.counter_value c);
  (* ... but a kind clash is an error. *)
  let clash =
    try
      ignore (Obs.Metrics.gauge ~registry:reg "t.counter");
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "kind clash" true clash

let test_counter_parallel () =
  let reg = Obs.Metrics.create_registry () in
  let c = Obs.Metrics.counter ~registry:reg "t.par" in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Obs.Metrics.incr c
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost updates" 40_000 (Obs.Metrics.counter_value c)

let test_gauge () =
  let reg = Obs.Metrics.create_registry () in
  let g = Obs.Metrics.gauge ~registry:reg "t.gauge" in
  Alcotest.(check bool) "unset is NaN" true
    (Float.is_nan (Obs.Metrics.gauge_value g));
  Obs.Metrics.set g 3.25;
  Alcotest.(check (float 0.)) "set" 3.25 (Obs.Metrics.gauge_value g)

let test_histogram_buckets () =
  Alcotest.(check int) "0.5 -> 0" 0 (Obs.Metrics.bucket_of 0.5);
  Alcotest.(check int) "neg -> 0" 0 (Obs.Metrics.bucket_of (-3.));
  Alcotest.(check int) "1 -> 1" 1 (Obs.Metrics.bucket_of 1.);
  Alcotest.(check int) "1.99 -> 1" 1 (Obs.Metrics.bucket_of 1.99);
  Alcotest.(check int) "2 -> 2" 2 (Obs.Metrics.bucket_of 2.);
  Alcotest.(check int) "1000 -> 10" 10 (Obs.Metrics.bucket_of 1000.);
  Alcotest.(check int)
    "overflow clamps" (Obs.Metrics.n_buckets - 1)
    (Obs.Metrics.bucket_of 1e300);
  Alcotest.(check (float 0.)) "upper of 3" 8. (Obs.Metrics.bucket_upper 3)

let test_histogram_merge () =
  (* Observations from several domains land in different shards; the
     snapshot must merge them (same-index buckets add). *)
  let reg = Obs.Metrics.create_registry () in
  let h = Obs.Metrics.histogram ~registry:reg "t.hist" in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 1000 do
              Obs.Metrics.observe h (float_of_int ((d * 1000) + i))
            done))
  in
  List.iter Domain.join domains;
  let s = Obs.Metrics.histogram_value h in
  Alcotest.(check int) "count" 4000 s.Obs.Metrics.count;
  Alcotest.(check int)
    "bucket sums match count" 4000
    (Array.fold_left ( + ) 0 s.Obs.Metrics.counts);
  (* sum of 1..4000 *)
  Alcotest.(check (float 1e-6)) "sum" 8_002_000. s.Obs.Metrics.sum;
  (* values 1..4000 never reach bucket 13 = [4096, 8192) *)
  Alcotest.(check int) "no overflow bucket" 0 s.Obs.Metrics.counts.(13)

let test_histogram_quantile () =
  (* Empty histogram: no quantiles. *)
  let reg = Obs.Metrics.create_registry () in
  let h = Obs.Metrics.histogram ~registry:reg "t.q" in
  let s = Obs.Metrics.histogram_value h in
  Alcotest.(check bool) "empty -> NaN" true
    (Float.is_nan (Obs.Metrics.histogram_quantile s 0.5));
  (* Single-bucket data interpolates inside that bucket's bounds. *)
  for _ = 1 to 4 do
    Obs.Metrics.observe h 0.5
  done;
  let s = Obs.Metrics.histogram_value h in
  Alcotest.(check (float 1e-9)) "p50 in bucket 0" 0.5
    (Obs.Metrics.histogram_quantile s 0.5);
  Alcotest.(check (float 1e-9)) "q=1 hits upper bound" 1.0
    (Obs.Metrics.histogram_quantile s 1.0);
  Alcotest.(check (float 1e-9)) "q clamps below" 0.0
    (Obs.Metrics.histogram_quantile s (-3.));
  (* A bucket further up: two observations of 3.0 live in (2, 4]. *)
  let h2 = Obs.Metrics.histogram ~registry:reg "t.q2" in
  Obs.Metrics.observe h2 3.0;
  Obs.Metrics.observe h2 3.0;
  let s2 = Obs.Metrics.histogram_value h2 in
  Alcotest.(check (float 1e-9)) "p50 interpolates (2,4)" 3.0
    (Obs.Metrics.histogram_quantile s2 0.5);
  (* Spread data: quantiles are monotone in q. *)
  let h3 = Obs.Metrics.histogram ~registry:reg "t.q3" in
  for i = 1 to 1000 do
    Obs.Metrics.observe h3 (float_of_int i)
  done;
  let s3 = Obs.Metrics.histogram_value h3 in
  let p50 = Obs.Metrics.histogram_quantile s3 0.50 in
  let p95 = Obs.Metrics.histogram_quantile s3 0.95 in
  let p99 = Obs.Metrics.histogram_quantile s3 0.99 in
  Alcotest.(check bool) "p50 <= p95" true (p50 <= p95);
  Alcotest.(check bool) "p95 <= p99" true (p95 <= p99);
  Alcotest.(check bool) "p99 <= max" true (p99 <= 1024.)

let test_bucket_bounds () =
  Alcotest.(check (pair (float 0.) (float 0.))) "bucket 0" (0., 1.)
    (Obs.Metrics.bucket_bounds 0);
  Alcotest.(check (pair (float 0.) (float 0.))) "bucket 3" (4., 8.)
    (Obs.Metrics.bucket_bounds 3)

let test_gauge_dump_null () =
  (* An unset gauge is NaN in memory; NaN is not JSON, so the dump must
     carry null — and the dump must round-trip through the parser. *)
  let reg = Obs.Metrics.create_registry () in
  let g = Obs.Metrics.gauge ~registry:reg "t.unset" in
  let j = Obs.Metrics.dump ~registry:reg () in
  let s = Obs.Json.to_string j in
  Alcotest.(check bool) "value is null" true
    (contains ~affix:"\"value\":null" s);
  (match Obs.Json.of_string s with
  | Error e -> Alcotest.failf "dump does not re-parse: %s" e
  | Ok parsed ->
      (match Obs.Json.member "t.unset" parsed with
      | Some m ->
          Alcotest.(check bool) "null round-trips" true
            (Obs.Json.member "value" m = Some Obs.Json.Null)
      | None -> Alcotest.fail "gauge missing from dump"));
  Obs.Metrics.set g 1.5;
  let s = Obs.Json.to_string (Obs.Metrics.dump ~registry:reg ()) in
  Alcotest.(check bool) "set gauge dumps its value" true
    (contains ~affix:"\"value\":1.5" s)

let test_metrics_dump () =
  let reg = Obs.Metrics.create_registry () in
  let c = Obs.Metrics.counter ~registry:reg "a.count" in
  Obs.Metrics.incr c;
  let h = Obs.Metrics.histogram ~registry:reg "b.hist" in
  Obs.Metrics.observe h 3.;
  let s = Obs.Json.to_string (Obs.Metrics.dump ~registry:reg ()) in
  Alcotest.(check bool) "has counter" true
    (contains ~affix:"\"a.count\"" s);
  Alcotest.(check bool) "has histogram" true
    (contains ~affix:"\"b.hist\"" s);
  Alcotest.(check bool) "histogram carries p50" true
    (contains ~affix:"\"p50\"" s);
  Alcotest.(check bool) "histogram carries p99" true
    (contains ~affix:"\"p99\"" s);
  Obs.Metrics.reset ~registry:reg ();
  Alcotest.(check int) "reset" 0 (Obs.Metrics.counter_value c)

(* --- Stats --- *)

let test_stats_add () =
  let acc = Stats.create () in
  let s1 = Stats.create () in
  s1.Stats.expanded <- 10;
  s1.Stats.generated <- 20;
  s1.Stats.pruned <- 5;
  s1.Stats.max_open <- 7;
  let s2 = Stats.create () in
  s2.Stats.expanded <- 1;
  s2.Stats.generated <- 2;
  s2.Stats.pruned <- 3;
  s2.Stats.max_open <- 4;
  Stats.add acc s1;
  Stats.add acc s2;
  Alcotest.(check int) "expanded sums" 11 acc.Stats.expanded;
  Alcotest.(check int) "generated sums" 22 acc.Stats.generated;
  Alcotest.(check int) "pruned sums" 8 acc.Stats.pruned;
  (* max_open is a high-water mark: MAX, not sum. *)
  Alcotest.(check int) "max_open maxes" 7 acc.Stats.max_open

let test_stats_json () =
  let s = Stats.create () in
  s.Stats.expanded <- 3;
  s.Stats.max_open <- 2;
  let j = Obs.Json.to_string (Stats.to_json s) in
  Alcotest.(check bool) "expanded key" true
    (contains ~affix:"\"expanded\":3" j);
  Alcotest.(check bool) "max_open key" true
    (contains ~affix:"\"max_open\":2" j);
  let via_pp = Format.asprintf "%a" Stats.pp_json s in
  Alcotest.(check string) "pp_json agrees" j via_pp;
  (* Per-reason prune totals ride along in the stats JSON. *)
  Obs.Attribution.prune s.Stats.att Obs.Attribution.Incumbent ~depth:1 4;
  let j = Obs.Json.to_string (Stats.to_json s) in
  Alcotest.(check bool) "pruned_by_reason" true
    (contains ~affix:"\"pruned_by_reason\"" j);
  Alcotest.(check bool) "incumbent total" true
    (contains ~affix:"\"incumbent\":4" j)

(* --- Attribution --- *)

module Att = Obs.Attribution

let test_attribution_cells () =
  let c = Att.cells () in
  Att.prune c Att.Incumbent ~depth:3 2;
  Att.prune c Att.Incumbent ~depth:3 1;
  Att.prune c Att.Lb1_suffix ~depth:5 4;
  Att.prune c Att.Filter33 ~depth:(-1) 1;  (* clamps to bucket 0 *)
  Att.prune c Att.Kernel_threshold ~depth:1000 1;  (* clamps to last *)
  Att.prune c Att.Budget_stop ~depth:0 0;  (* n = 0: no-op *)
  Att.expand c ~depth:3 ~generated:5;
  Att.expand c ~depth:4 ~generated:7;
  Alcotest.(check int) "incumbent total" 3 (Att.total c Att.Incumbent);
  Alcotest.(check int) "lb1 total" 4 (Att.total c Att.Lb1_suffix);
  Alcotest.(check int) "budget_stop empty" 0 (Att.total c Att.Budget_stop);
  Alcotest.(check int) "prunes_at" 3
    (Att.prunes_at c Att.Incumbent ~depth:3);
  Alcotest.(check int) "negative depth clamps" 1
    (Att.prunes_at c Att.Filter33 ~depth:0);
  Alcotest.(check int) "deep depth clamps" 1
    (Att.prunes_at c Att.Kernel_threshold
       ~depth:(Att.n_depth_buckets - 1));
  Alcotest.(check int) "total prunes" 9 (Att.total_prunes c);
  Alcotest.(check int) "total expanded" 2 (Att.total_expanded c);
  (* Merging is element-wise addition, like Stats.add. *)
  let acc = Att.cells () in
  Att.add_cells acc c;
  Att.add_cells acc c;
  Alcotest.(check int) "merged prunes" 18 (Att.total_prunes acc);
  Alcotest.(check int) "merged expanded" 4 (Att.total_expanded acc)

let test_attribution_disabled () =
  let c = Att.cells () in
  Att.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Att.set_enabled true)
    (fun () ->
      Att.prune c Att.Incumbent ~depth:1 5;
      Att.expand c ~depth:1 ~generated:3);
  Alcotest.(check int) "disabled records nothing" 0
    (Att.total_prunes c + Att.total_expanded c)

let test_attribution_json () =
  let c = Att.cells () in
  Att.prune c Att.Lb1_suffix ~depth:7 11;
  Att.expand c ~depth:7 ~generated:13;
  let s = Obs.Json.to_string (Att.cells_to_json c) in
  Alcotest.(check bool) "pruned_total" true
    (contains ~affix:"\"pruned_total\":11" s);
  Alcotest.(check bool) "reason key" true
    (contains ~affix:"\"lb1_suffix\"" s);
  Alcotest.(check bool) "sparse depth row" true
    (contains ~affix:"[7,11]" s);
  Alcotest.(check bool) "expanded profile" true
    (contains ~affix:"\"expanded_by_depth\":[[7,1]]" s);
  (* The manifest section must re-parse. *)
  match Obs.Json.of_string s with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "attribution json invalid: %s" e

let test_attribution_reason_strings () =
  List.iter
    (fun r ->
      match Att.reason_of_string (Att.reason_to_string r) with
      | Some r' when r' = r -> ()
      | _ ->
          Alcotest.failf "round-trip failed for %s" (Att.reason_to_string r))
    Att.reasons;
  Alcotest.(check int) "n_reasons" (List.length Att.reasons) Att.n_reasons;
  Alcotest.(check bool) "unknown string" true
    (Att.reason_of_string "bogus" = None)

let test_attribution_flush_snapshot () =
  let agg = Att.create () in
  let c = Att.cells () in
  Att.prune c Att.Incumbent ~depth:2 6;
  Att.expand c ~depth:2 ~generated:3;
  Att.flush ~into:agg c;
  Att.flush ~into:agg c;
  let snap = Att.snapshot agg in
  Alcotest.(check int) "flushed twice" 12 (Att.total_prunes snap);
  Alcotest.(check int) "expanded" 2 (Att.total_expanded snap);
  Att.reset agg;
  Alcotest.(check int) "reset" 0 (Att.total_prunes (Att.snapshot agg))

let test_attribution_bit_identity () =
  (* Acceptance criterion: recording attribution never changes the
     search.  Same matrix, recording on vs off: identical cost (bitwise)
     and identical node counts. *)
  let m = Distmat.Gen.uniform_metric ~rng:(Random.State.make [| 11 |]) 10 in
  let solve () = Bnb.Solver.solve m in
  let on = solve () in
  Att.set_enabled false;
  let off =
    Fun.protect ~finally:(fun () -> Att.set_enabled true) solve
  in
  Alcotest.(check bool) "bit-identical cost" true
    (Int64.equal
       (Int64.bits_of_float on.Bnb.Solver.cost)
       (Int64.bits_of_float off.Bnb.Solver.cost));
  Alcotest.(check int) "same expanded"
    on.Bnb.Solver.stats.Stats.expanded off.Bnb.Solver.stats.Stats.expanded;
  Alcotest.(check int) "same pruned"
    on.Bnb.Solver.stats.Stats.pruned off.Bnb.Solver.stats.Stats.pruned;
  (* And the enabled run actually attributed its prunes. *)
  Alcotest.(check int) "attribution accounts for every prune"
    on.Bnb.Solver.stats.Stats.pruned
    (Att.total_prunes on.Bnb.Solver.stats.Stats.att);
  Alcotest.(check int) "attribution accounts for every expansion"
    on.Bnb.Solver.stats.Stats.expanded
    (Att.total_expanded on.Bnb.Solver.stats.Stats.att);
  Alcotest.(check int) "disabled run recorded nothing" 0
    (Att.total_prunes off.Bnb.Solver.stats.Stats.att)

(* --- Report --- *)

let test_report () =
  let r = Obs.Report.create "unit" in
  Obs.Report.add_phase r "alpha" 1.0;
  let x = Obs.Report.timed_phase r "beta" (fun () -> 5) in
  Alcotest.(check int) "timed result" 5 x;
  Obs.Report.set r "k" (Obs.Json.Int 9);
  Obs.Report.set r "k" (Obs.Json.Int 10);
  Obs.Report.add_worker r [ ("worker", Obs.Json.Int 0) ];
  (match Obs.Report.phases r with
  | [ ("alpha", a); ("beta", b) ] ->
      Alcotest.(check (float 0.)) "alpha time" 1.0 a;
      Alcotest.(check bool) "beta >= 0" true (b >= 0.)
  | _ -> Alcotest.fail "phase order");
  Alcotest.(check bool) "total" true (Obs.Report.phase_total_s r >= 1.0);
  let j = Obs.Json.to_string (Obs.Report.to_json r) in
  Alcotest.(check bool) "name" true
    (contains ~affix:"\"name\":\"unit\"" j);
  Alcotest.(check bool) "last set wins" true
    (contains ~affix:"\"k\":10" j);
  Alcotest.(check bool) "single k" false
    (contains ~affix:"\"k\":9" j);
  Alcotest.(check bool) "workers" true
    (contains ~affix:"\"workers\":[{\"worker\":0}]" j)

let test_report_meta () =
  (* Every manifest must say when, where and from what it was made. *)
  let r = Obs.Report.create "unit" in
  let j = Obs.Report.to_json r in
  (match Obs.Json.member "meta" j with
  | Some meta ->
      (match Obs.Json.member "started_at" meta with
      | Some (Obs.Json.String ts) ->
          (* ISO-8601 UTC: 2026-08-07T12:34:56Z *)
          Alcotest.(check int) "timestamp length" 20 (String.length ts);
          Alcotest.(check bool) "date/time separator" true (ts.[10] = 'T');
          Alcotest.(check bool) "UTC suffix" true (ts.[19] = 'Z')
      | _ -> Alcotest.fail "started_at missing");
      Alcotest.(check bool) "hostname" true
        (match Obs.Json.member "hostname" meta with
        | Some (Obs.Json.String h) -> h <> ""
        | _ -> false);
      Alcotest.(check bool) "ocaml_version" true
        (Obs.Json.member "ocaml_version" meta
        = Some (Obs.Json.String Sys.ocaml_version))
  | None -> Alcotest.fail "meta section missing");
  (* The epoch origin formats as the epoch origin. *)
  match Obs.Report.meta_json 0. with
  | Obs.Json.Obj kvs ->
      Alcotest.(check bool) "epoch zero" true
        (List.assoc "started_at" kvs
        = Obs.Json.String "1970-01-01T00:00:00Z")
  | _ -> Alcotest.fail "meta_json shape"

let test_report_workers_accessor () =
  let r = Obs.Report.create "unit" in
  Alcotest.(check int) "empty" 0 (List.length (Obs.Report.workers r));
  Obs.Report.add_worker r [ ("worker", Obs.Json.Int 0) ];
  Obs.Report.add_worker r [ ("worker", Obs.Json.Int 1) ];
  match Obs.Report.workers r with
  | [ Obs.Json.Obj [ ("worker", Obs.Json.Int 0) ];
      Obs.Json.Obj [ ("worker", Obs.Json.Int 1) ] ] ->
      ()
  | _ -> Alcotest.fail "workers not returned in insertion order"

(* --- Progress --- *)

let test_progress_ndjson () =
  let path = Filename.temp_file "obs_progress" ".ndjson" in
  let oc = open_out path in
  let p =
    Obs.Progress.create ~interval_s:0. ~sink:(Obs.Progress.Ndjson oc) ()
  in
  Obs.Progress.sample p ~worker:0 ~expanded:10 ~pruned:2 ~open_depth:5
    ~ub:100. ~lb:80.;
  Obs.Progress.sample p ~worker:1 ~expanded:20 ~pruned:4 ~open_depth:3
    ~ub:100. ~lb:90.;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check int) "two samples" 2 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "json object" true
        (String.length l > 0 && l.[0] = '{');
      Alcotest.(check bool) "has gap" true
        (contains ~affix:"\"gap_pct\"" l))
    lines

let test_progress_ndjson_parses_back () =
  (* Each emitted line must be a standalone JSON document our own parser
     accepts — that is what obs diff's NDJSON fallback relies on. *)
  let path = Filename.temp_file "obs_progress" ".ndjson" in
  let oc = open_out path in
  let p =
    Obs.Progress.create ~interval_s:0. ~sink:(Obs.Progress.Ndjson oc) ()
  in
  Obs.Progress.sample p ~worker:3 ~expanded:42 ~pruned:7 ~open_depth:5
    ~ub:100. ~lb:75.;
  close_out oc;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  match Obs.Json.of_string line with
  | Error e -> Alcotest.failf "progress line does not parse: %s" e
  | Ok j ->
      Alcotest.(check (option int)) "worker" (Some 3)
        (Option.bind (Obs.Json.member "worker" j) Obs.Json.to_int_opt);
      Alcotest.(check (option int)) "expanded" (Some 42)
        (Option.bind (Obs.Json.member "expanded" j) Obs.Json.to_int_opt);
      (match
         Option.bind (Obs.Json.member "gap_pct" j) Obs.Json.to_float_opt
       with
      | Some g -> Alcotest.(check (float 1e-9)) "gap" 25. g
      | None -> Alcotest.fail "gap_pct missing")

let test_progress_rate_limit () =
  let path = Filename.temp_file "obs_progress" ".ndjson" in
  let oc = open_out path in
  let p =
    (* One-hour interval: after the first (immediately due) sample,
       nothing further is emitted. *)
    Obs.Progress.create ~interval_s:3600. ~sink:(Obs.Progress.Ndjson oc) ()
  in
  for i = 1 to 100 do
    Obs.Progress.sample p ~worker:0 ~expanded:i ~pruned:0 ~open_depth:1
      ~ub:10. ~lb:1.
  done;
  close_out oc;
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr n
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check int) "rate limited to one line" 1 !n

let test_gap_pct () =
  Alcotest.(check (float 1e-9)) "20%" 20. (Obs.Progress.gap_pct ~ub:100. ~lb:80.);
  Alcotest.(check bool) "inf ub" true
    (Float.is_nan (Obs.Progress.gap_pct ~ub:Float.infinity ~lb:3.))

(* --- Solver integration: spans + progress from a real solve --- *)

let test_solver_emits_spans () =
  let m = Distmat.Gen.uniform_metric ~rng:(Random.State.make [| 5 |]) 8 in
  let buf = Obs.Span.create () in
  Obs.Span.install buf;
  let r =
    Fun.protect ~finally:Obs.Span.uninstall (fun () ->
        Compactphy.Pipeline.compare_methods m)
  in
  let names =
    List.map (fun e -> e.Obs.Span.name) (Obs.Span.events buf)
  in
  Alcotest.(check bool) "bnb.solve span" true (List.mem "bnb.solve" names);
  Alcotest.(check bool) "pipeline span" true
    (List.mem "pipeline.with_compact_sets" names);
  Alcotest.(check bool) "exact span" true (List.mem "pipeline.exact" names);
  (* The pipeline spans must cover (almost all of) the reported elapsed
     time — the acceptance criterion for --trace output. *)
  let span_s name =
    List.fold_left
      (fun acc e ->
        if e.Obs.Span.name = name then
          acc +. (Int64.to_float e.Obs.Span.dur_ns /. 1e9)
        else acc)
      0. (Obs.Span.events buf)
  in
  let covered = span_s "pipeline.with_compact_sets" +. span_s "pipeline.exact" in
  let reported =
    r.Compactphy.Pipeline.with_cs.Compactphy.Pipeline.elapsed_s
    +. r.Compactphy.Pipeline.without_cs.Compactphy.Pipeline.elapsed_s
  in
  Alcotest.(check bool) "spans cover elapsed" true (covered >= 0.95 *. reported)

let test_pipeline_report_phases () =
  let m = Distmat.Gen.near_ultrametric ~rng:(Random.State.make [| 7 |]) 12 in
  let r = Compactphy.Pipeline.with_compact_sets m in
  let phases = List.map fst (Obs.Report.phases r.Compactphy.Pipeline.report) in
  Alcotest.(check bool) "decompose" true (List.mem "decompose" phases);
  Alcotest.(check bool) "solve-blocks" true (List.mem "solve-blocks" phases);
  Alcotest.(check bool) "re-realise" true (List.mem "re-realise" phases);
  let j = Obs.Json.to_string (Obs.Report.to_json r.Compactphy.Pipeline.report) in
  Alcotest.(check bool) "per-block stats" true
    (contains ~affix:"\"pruned\"" j)

(* --- Procstat --- *)

let test_procstat_roundtrip () =
  let s = Obs.Procstat.sample () in
  Alcotest.(check bool) "heap words positive" true
    (s.Obs.Procstat.heap_words > 0);
  (match Obs.Procstat.of_json (Obs.Procstat.to_json s) with
  | Ok s' -> Alcotest.(check bool) "round trip" true (s = s')
  | Error e -> Alcotest.failf "procstat round trip: %s" e);
  let reg = Obs.Metrics.create_registry () in
  Obs.Procstat.set_gauges ~registry:reg ~prefix:"proc.worker3" s;
  let dump = Obs.Json.to_string (Obs.Metrics.dump ~registry:reg ()) in
  Alcotest.(check bool) "gauges published under the prefix" true
    (contains ~affix:"\"proc.worker3.gc.minor_collections\"" dump);
  Alcotest.(check bool) "rss gauge" true
    (contains ~affix:"\"proc.worker3.rss_bytes\"" dump)

(* --- Timeline --- *)

(* A synthetic merged trace with known timings: one remote job (queue
   10ms, rpc 100ms wrapping a 60ms worker-track solve) and one serve
   request (120ms), written and loaded through the real file format. *)
let test_timeline_model () =
  let buf = Obs.Span.create () in
  let base = Obs.Span.origin buf in
  let at ms = Int64.add base (Int64.of_int (ms * 1_000_000)) in
  Obs.Span.set_process_name buf ~pid:Obs.Span.self_pid "coordinator";
  Obs.Span.set_process_name buf ~pid:3 "worker 1";
  let job_args =
    [ ("job", Obs.Json.Int 1); ("trace", Obs.Json.String "run-x") ]
  in
  Obs.Span.record buf ~cat:"executor" ~args:job_args ~start_ns:(at 0)
    ~stop_ns:(at 10) "job.queue";
  Obs.Span.record buf ~cat:"executor"
    ~args:(job_args @ [ ("worker", Obs.Json.Int 1) ])
    ~start_ns:(at 10) ~stop_ns:(at 110) "job.rpc";
  Obs.Span.record buf ~cat:"worker" ~pid:3 ~tid:0
    ~args:(job_args @ [ ("cached", Obs.Json.Bool false) ])
    ~start_ns:(at 30) ~stop_ns:(at 90) "job.solve";
  Obs.Span.record buf ~cat:"serve"
    ~args:[ ("request_id", Obs.Json.String "req-1-0") ]
    ~start_ns:(at 0) ~stop_ns:(at 120) "request";
  let path = Filename.temp_file "timeline" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Obs.Span.write_chrome buf path;
  let events =
    match Obs.Span.load_trace path with
    | Ok evs -> evs
    | Error e -> Alcotest.failf "load_trace: %s" e
  in
  let t = Obs.Timeline.of_events events in
  Alcotest.(check int) "four X events" 4 t.Obs.Timeline.events;
  Alcotest.(check string) "worker track labelled" "worker 1"
    (Obs.Timeline.track_label t 3);
  (match t.Obs.Timeline.jobs with
  | [ r ] ->
      Alcotest.(check int) "job id" 1 r.Obs.Timeline.job;
      Alcotest.(check int) "solve on the worker track" 3
        r.Obs.Timeline.solve_pid;
      Alcotest.(check (option string)) "trace tag" (Some "run-x")
        r.Obs.Timeline.trace;
      Alcotest.(check (float 1e-6)) "queue 10ms" 0.010 r.Obs.Timeline.queue_s;
      Alcotest.(check (float 1e-6)) "solve 60ms" 0.060 r.Obs.Timeline.solve_s;
      (* net time by subtraction: 100ms rpc minus the 60ms remote solve *)
      Alcotest.(check (float 1e-6)) "net 40ms" 0.040 r.Obs.Timeline.net_s;
      Alcotest.(check bool) "not cached" false r.Obs.Timeline.cached
  | rows -> Alcotest.failf "expected 1 job row, got %d" (List.length rows));
  (match t.Obs.Timeline.requests with
  | [ (rid, dur_s) ] ->
      Alcotest.(check string) "request id" "req-1-0" rid;
      Alcotest.(check (float 1e-6)) "request 120ms" 0.120 dur_s
  | rs -> Alcotest.failf "expected 1 request, got %d" (List.length rs));
  Alcotest.(check (float 1e-6)) "envelope 120ms" 0.120 t.Obs.Timeline.span_s;
  (match Obs.Timeline.reconcile t ~wall_s:0.2 with
  | Ok () -> ()
  | Error es -> Alcotest.failf "reconcile: %s" (String.concat "; " es));
  match Obs.Timeline.reconcile ~tol:0.0 t ~wall_s:0.01 with
  | Ok () -> Alcotest.fail "reconcile accepted an impossible wall clock"
  | Error _ -> ()

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [ Alcotest.test_case "monotone" `Quick test_clock_monotone ] );
      ( "json",
        [
          Alcotest.test_case "render" `Quick test_json_render;
          Alcotest.test_case "non-finite" `Quick test_json_non_finite;
          Alcotest.test_case "parse ok" `Quick test_json_parse_ok;
          Alcotest.test_case "parse errors report offsets" `Quick
            test_json_parse_errors;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "records on raise" `Quick
            test_span_records_on_raise;
          Alcotest.test_case "ambient + chrome" `Quick
            test_span_ambient_and_chrome;
          Alcotest.test_case "disabled no-op" `Quick
            test_span_disabled_is_noop;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "counter parallel" `Quick test_counter_parallel;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram buckets" `Quick
            test_histogram_buckets;
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
          Alcotest.test_case "histogram quantile" `Quick
            test_histogram_quantile;
          Alcotest.test_case "bucket bounds" `Quick test_bucket_bounds;
          Alcotest.test_case "gauge dumps null" `Quick test_gauge_dump_null;
          Alcotest.test_case "dump + reset" `Quick test_metrics_dump;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "cells" `Quick test_attribution_cells;
          Alcotest.test_case "disabled" `Quick test_attribution_disabled;
          Alcotest.test_case "json" `Quick test_attribution_json;
          Alcotest.test_case "reason strings" `Quick
            test_attribution_reason_strings;
          Alcotest.test_case "flush + snapshot" `Quick
            test_attribution_flush_snapshot;
          Alcotest.test_case "bit identity" `Quick
            test_attribution_bit_identity;
        ] );
      ( "stats",
        [
          Alcotest.test_case "add semantics" `Quick test_stats_add;
          Alcotest.test_case "json" `Quick test_stats_json;
        ] );
      ( "report",
        [
          Alcotest.test_case "lifecycle" `Quick test_report;
          Alcotest.test_case "metadata" `Quick test_report_meta;
          Alcotest.test_case "workers accessor" `Quick
            test_report_workers_accessor;
        ] );
      ( "progress",
        [
          Alcotest.test_case "ndjson" `Quick test_progress_ndjson;
          Alcotest.test_case "ndjson parses back" `Quick
            test_progress_ndjson_parses_back;
          Alcotest.test_case "rate limit" `Quick test_progress_rate_limit;
          Alcotest.test_case "gap" `Quick test_gap_pct;
        ] );
      ( "procstat",
        [ Alcotest.test_case "sample round trip" `Quick test_procstat_roundtrip ] );
      ( "timeline",
        [ Alcotest.test_case "model from a merged trace" `Quick test_timeline_model ] );
      ( "integration",
        [
          Alcotest.test_case "solver spans" `Quick test_solver_emits_spans;
          Alcotest.test_case "pipeline report" `Quick
            test_pipeline_report_phases;
        ] );
    ]
