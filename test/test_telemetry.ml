(* The live telemetry plane, end to end:

   - the flight recorder keeps the newest events under wraparound,
     counts what it overwrote, and survives concurrent domain writers
     without tearing or duplicating an entry;
   - the Prometheus exposition is deterministic (golden-file tested)
     whatever order metrics were registered or mutated in;
   - the /metrics, /healthz and /events endpoints round-trip over a
     real socket;
   - [phylo top]'s pure half folds canned polls into the exact frame
     the non-TTY renderer prints;
   - a run that stops early (the SIGINT/budget path) dumps a flight
     record that still holds the last incumbent event;
   - installing the recorder changes no solver outcome, bit for bit;
   - a Chrome trace cut mid-write recovers to the longest complete
     event prefix. *)

module Dist_matrix = Distmat.Dist_matrix
module Utree = Ultra.Utree
module Solver = Bnb.Solver
module Stats = Bnb.Stats
module Budget = Bnb.Budget

let rng seed = Random.State.make [| 0x7E1E; seed |]
let hard n seed = Distmat.Gen.uniform_metric ~rng:(rng seed) n

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* --- recorder: ring semantics --- *)

let test_recorder_wraparound () =
  (* A single-domain writer lands every event in one 2-slot shard:
     emitting 100 must retain the newest 2 and count 98 drops. *)
  let r = Obs.Recorder.create ~capacity:32 () in
  for i = 1 to 100 do
    Obs.Recorder.emit r (Obs.Events.Budget_tick { nodes = i })
  done;
  Alcotest.(check int) "last_seq" 100 (Obs.Recorder.last_seq r);
  Alcotest.(check int) "dropped" 98 (Obs.Recorder.dropped r);
  let entries = Obs.Recorder.snapshot r in
  Alcotest.(check int) "retained" 2 (List.length entries);
  Alcotest.(check (list int))
    "newest survive" [ 99; 100 ]
    (List.map (fun (e : Obs.Recorder.entry) -> e.seq) entries)

let test_recorder_concurrent_domains () =
  let n_domains = 4 and per_domain = 500 in
  let r = Obs.Recorder.create ~capacity:64 () in
  let writers =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Obs.Recorder.emit r
                (Obs.Events.Heartbeat
                   {
                     worker = d;
                     expanded = i;
                     pruned = 0;
                     open_nodes = 0;
                     ub = 1.;
                     lb = 0.;
                   })
            done))
  in
  List.iter Domain.join writers;
  let total = n_domains * per_domain in
  Alcotest.(check int) "every emit got a seq" total (Obs.Recorder.last_seq r);
  let entries = Obs.Recorder.snapshot r in
  Alcotest.(check bool)
    "retained within capacity" true
    (List.length entries <= 64);
  Alcotest.(check int)
    "drops + retained account for every emit" total
    (Obs.Recorder.dropped r + List.length entries);
  (* No duplicated or torn entry: seqs are unique and sorted. *)
  let seqs = List.map (fun (e : Obs.Recorder.entry) -> e.seq) entries in
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "seqs strictly increasing" true
    (strictly_increasing seqs)

let test_recorder_snapshot_since () =
  let r = Obs.Recorder.create ~capacity:64 () in
  for i = 1 to 10 do
    Obs.Recorder.emit r (Obs.Events.Budget_tick { nodes = i })
  done;
  Alcotest.(check int) "since filters" 3
    (List.length (Obs.Recorder.snapshot ~since:7 r))

(* --- metrics: deterministic Prometheus exposition --- *)

(* A registry with one of everything, including names that need
   sanitising and a histogram with an overflow observation. *)
let build_exposition_registry () =
  let reg = Obs.Metrics.create_registry () in
  Obs.Metrics.add (Obs.Metrics.counter ~registry:reg "bnb.pruned.lb1_suffix") 7;
  Obs.Metrics.set (Obs.Metrics.gauge ~registry:reg "pool.queue_depth") 3.5;
  ignore (Obs.Metrics.gauge ~registry:reg "unset.gauge");
  ignore (Obs.Metrics.counter ~registry:reg "z-metric with spaces");
  let h = Obs.Metrics.histogram ~registry:reg "solve.ms" in
  List.iter (Obs.Metrics.observe h) [ 0.25; 3.; 100.; 1e12 ];
  reg

(* Under `dune runtest` the cwd is the test directory (fixture staged
   at ../data); under `dune exec` it is the project root. *)
let fixture_path =
  if Sys.file_exists "../data/metrics_exposition.txt" then
    "../data/metrics_exposition.txt"
  else "data/metrics_exposition.txt"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_metrics_exposition_golden () =
  let reg = build_exposition_registry () in
  let body = Obs.Metrics.to_prometheus ~registry:reg () in
  if Sys.getenv_opt "TELEMETRY_BLESS" <> None then begin
    let oc = open_out_bin fixture_path in
    output_string oc body;
    close_out oc
  end;
  Alcotest.(check string) "matches committed fixture" (read_file fixture_path)
    body

let test_metrics_exposition_order_independent () =
  (* Same state reached by different registration and mutation orders
     must scrape byte-identically. *)
  let reg = Obs.Metrics.create_registry () in
  let h = Obs.Metrics.histogram ~registry:reg "solve.ms" in
  ignore (Obs.Metrics.counter ~registry:reg "z-metric with spaces");
  Obs.Metrics.set (Obs.Metrics.gauge ~registry:reg "pool.queue_depth") 3.5;
  List.iter (Obs.Metrics.observe h) [ 100.; 1e12; 3.; 0.25 ];
  Obs.Metrics.add (Obs.Metrics.counter ~registry:reg "bnb.pruned.lb1_suffix") 7;
  ignore (Obs.Metrics.gauge ~registry:reg "unset.gauge");
  let a = Obs.Metrics.to_prometheus ~registry:reg () in
  let b =
    Obs.Metrics.to_prometheus ~registry:(build_exposition_registry ()) ()
  in
  Alcotest.(check string) "byte-identical" b a;
  (* The JSON dump shares the determinism guarantee. *)
  Alcotest.(check string)
    "dump deterministic too"
    (Obs.Json.to_string
       (Obs.Metrics.dump ~registry:(build_exposition_registry ()) ()))
    (Obs.Json.to_string (Obs.Metrics.dump ~registry:reg ()))

let test_exposition_parses_back () =
  let reg = build_exposition_registry () in
  let samples =
    Obs.Top.parse_prometheus (Obs.Metrics.to_prometheus ~registry:reg ())
  in
  Alcotest.(check (option (float 0.)))
    "counter" (Some 7.)
    (Obs.Top.value samples "bnb_pruned_lb1_suffix");
  Alcotest.(check (option (float 0.)))
    "gauge" (Some 3.5)
    (Obs.Top.value samples "pool_queue_depth");
  match Obs.Top.find samples "solve_ms" with
  | Some (Obs.Top.Histogram { count; sum; buckets }) ->
      Alcotest.(check (float 0.)) "count" 4. count;
      (* %.12g prints the 1e12 outlier to 12 significant digits, so the
         round-trip is only accurate to ~10. *)
      Alcotest.(check (float 10.)) "sum" (0.25 +. 3. +. 100. +. 1e12) sum;
      let inf_count =
        List.assoc_opt Float.infinity
          (List.map (fun (le, c) -> (le, c)) buckets)
      in
      Alcotest.(check (option (float 0.)))
        "+Inf bucket is total" (Some 4.) inf_count
  | _ -> Alcotest.fail "solve_ms did not parse as a histogram"

(* --- serve: endpoints over a real socket --- *)

let test_serve_endpoints () =
  let reg = build_exposition_registry () in
  let r = Obs.Recorder.create ~capacity:64 () in
  Obs.Recorder.emit r (Obs.Events.Incumbent { cost = 42. });
  Obs.Recorder.emit r (Obs.Events.Budget_stop { status = "deadline" });
  let srv = Obs.Serve.start ~registry:reg ~recorder:r ~port:0 () in
  Fun.protect
    ~finally:(fun () -> Obs.Serve.stop srv)
    (fun () ->
      let port =
        match Obs.Serve.port srv with
        | Some p -> p
        | None -> Alcotest.fail "no bound port"
      in
      let target = Obs.Serve.Tcp ("127.0.0.1", port) in
      (match Obs.Serve.get target "/metrics" with
      | Ok (200, body) ->
          Alcotest.(check string)
            "exposition body"
            (Obs.Metrics.to_prometheus ~registry:reg ())
            body
      | Ok (code, _) -> Alcotest.failf "/metrics -> %d" code
      | Error e -> Alcotest.failf "/metrics: %s" e);
      (match Obs.Serve.get target "/healthz" with
      | Ok (200, body) -> (
          match Obs.Json.of_string body with
          | Ok j ->
              Alcotest.(check (option string))
                "status ok" (Some "ok")
                (Option.bind (Obs.Json.member "status" j)
                   Obs.Json.to_string_opt);
              Alcotest.(check (option int))
                "last_seq" (Some 2)
                (Option.bind (Obs.Json.member "last_seq" j)
                   Obs.Json.to_int_opt)
          | Error e -> Alcotest.failf "/healthz body: %s" e)
      | Ok (code, _) -> Alcotest.failf "/healthz -> %d" code
      | Error e -> Alcotest.failf "/healthz: %s" e);
      (match Obs.Serve.get target "/events?since=0" with
      | Ok (200, body) ->
          let lines =
            List.filter
              (fun l -> String.trim l <> "")
              (String.split_on_char '\n' body)
          in
          Alcotest.(check int) "two events" 2 (List.length lines);
          Alcotest.(check bool) "ndjson parses" true
            (List.for_all
               (fun l ->
                 match Obs.Json.of_string l with Ok _ -> true | Error _ -> false)
               lines)
      | Ok (code, _) -> Alcotest.failf "/events -> %d" code
      | Error e -> Alcotest.failf "/events: %s" e);
      (match Obs.Serve.get target "/events?since=2" with
      | Ok (200, body) -> Alcotest.(check string) "drained" "" body
      | Ok (code, _) -> Alcotest.failf "/events?since -> %d" code
      | Error e -> Alcotest.failf "/events?since: %s" e);
      match Obs.Serve.get target "/nope" with
      | Ok (404, _) -> ()
      | Ok (code, _) -> Alcotest.failf "unknown path -> %d" code
      | Error e -> Alcotest.failf "unknown path: %s" e)

let test_target_of_string () =
  let ok s = match Obs.Serve.target_of_string s with
    | Ok t -> t
    | Error e -> Alcotest.failf "%S: %s" s e
  in
  Alcotest.(check bool) "host:port" true
    (ok "127.0.0.1:9100" = Obs.Serve.Tcp ("127.0.0.1", 9100));
  Alcotest.(check bool) "bare port" true
    (ok "9100" = Obs.Serve.Tcp ("127.0.0.1", 9100));
  Alcotest.(check bool) "http url" true
    (ok "http://127.0.0.1:9100" = Obs.Serve.Tcp ("127.0.0.1", 9100));
  Alcotest.(check bool) "socket path" true
    (ok "/tmp/phylo.sock" = Obs.Serve.Unix_sock "/tmp/phylo.sock");
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Obs.Serve.target_of_string "not a target"))

(* --- phylo top: canned polls render the exact frame --- *)

let top_canned_events =
  let ev seq t_s kind = Obs.Events.to_json ~seq ~t_s ~domain:0 kind in
  [
    ev 1 0.1 (Obs.Events.Run_start { n = 26; n_blocks = 3 });
    ev 2 0.2 (Obs.Events.Block_start { id = 0; size = 12 });
    ev 3 0.5 (Obs.Events.Incumbent { cost = 181.5 });
    ev 4 1.0 (Obs.Events.Incumbent { cost = 180.25 });
    ev 5 1.0
      (Obs.Events.Block_finish
         { id = 0; size = 12; solve_s = 0.75; status = "exact" });
    ev 6 1.1 (Obs.Events.Block_start { id = 1; size = 9 });
    ev 7 1.2
      (Obs.Events.Heartbeat
         {
           worker = 0;
           expanded = 5000;
           pruned = 20000;
           open_nodes = 40;
           ub = 180.25;
           lb = 170.;
         });
    ev 8 1.3 (Obs.Events.Checkpoint_write { path = "/tmp/ck" });
  ]

let top_metrics_body expanded =
  Printf.sprintf
    "# TYPE bnb_expanded counter\n\
     bnb_expanded %d\n\
     # TYPE bnb_pruned_incumbent counter\n\
     bnb_pruned_incumbent 600\n\
     # TYPE bnb_pruned_lb1_suffix counter\n\
     bnb_pruned_lb1_suffix 400\n\
     # TYPE domain_pool_queue_depth gauge\n\
     domain_pool_queue_depth 2\n\
     # TYPE domain_pool_busy gauge\n\
     domain_pool_busy 3\n\
     # TYPE domain_pool_size gauge\n\
     domain_pool_size 4\n"
    expanded

let test_top_snapshot () =
  let st =
    Obs.Top.update Obs.Top.init ~now_s:10.0 ~events:top_canned_events
      ~metrics:(Obs.Top.parse_prometheus (top_metrics_body 123456))
      ~dropped:5
  in
  Alcotest.(check int) "last_seq tracks envelope" 8 (Obs.Top.last_seq st);
  let st =
    Obs.Top.update st ~now_s:11.0 ~events:[]
      ~metrics:(Obs.Top.parse_prometheus (top_metrics_body 223456))
      ~dropped:5
  in
  let expected =
    "phylo top — incumbent 180.250 (2 improvements)  gap 5.7%\n\
     run: n=26  blocks 1/3 done  (1 running)  block solve p50 0.750s p95 \
     0.750s\n\
     nodes: 223.5k expanded  100.0k nodes/s  queue 2  busy 3/4\n\
     prune: incumbent 60.0%  lb1_suffix 40.0%\n\
     worker 0: expanded 5.0k  pruned 20.0k  open 40  ub 180.250  lb 170\n\
     events: last_seq 8  dropped 5  checkpoints 1  polls 2\n"
  in
  Alcotest.(check string) "non-TTY frame" expected
    (Obs.Top.render ~tty:false st);
  Alcotest.(check bool) "no escapes in non-TTY frame" false
    (contains ~affix:"\x1b" (Obs.Top.render ~tty:false st));
  let tty_frame = Obs.Top.render ~tty:true st in
  Alcotest.(check bool) "TTY frame homes the cursor" true
    (contains ~affix:"\x1b[H" tty_frame);
  Alcotest.(check bool) "TTY frame clears the tail" true
    (contains ~affix:"\x1b[J" tty_frame)

(* --- flight dump on an interrupted run --- *)

let test_flight_dump_after_stop () =
  (* The SIGINT path: a cancel-flag budget stops the solve, then the
     CLI cleanup dumps the flight recorder.  Reproduce both halves and
     check the dump still holds the last incumbent. *)
  let m = hard 9 4 in
  let r = Obs.Recorder.create () in
  Obs.Recorder.install r;
  let outcome =
    Fun.protect ~finally:Obs.Recorder.uninstall (fun () ->
        let options =
          { Solver.default_options with initial_ub = Solver.No_heuristic_ub }
        in
        (* hard 9 solves in ~37 expansions from an infinite UB; a cap
           of 20 guarantees the stop fires after incumbents exist. *)
        Solver.solve ~options ~budget:(Budget.create ~max_nodes:20 ()) m)
  in
  Alcotest.(check bool) "run stopped early" true
    (outcome.Solver.status = Budget.Node_cap);
  let path = Filename.temp_file "flight" ".json" in
  Obs.Recorder.dump_flight r path;
  match Obs.Json.read_file path with
  | Error e -> Alcotest.failf "dump unreadable: %s" e
  | Ok j ->
      Alcotest.(check (option bool))
        "flight marker" (Some true)
        (Option.bind (Obs.Json.member "flight_recorder" j)
           (function Obs.Json.Bool b -> Some b | _ -> None));
      let events =
        Option.value ~default:[]
          (Option.bind (Obs.Json.member "events" j) Obs.Json.to_list_opt)
      in
      Alcotest.(check bool) "dump has events" true (events <> []);
      let kind e =
        Option.bind (Obs.Json.member "kind" e) Obs.Json.to_string_opt
      in
      let incumbents =
        List.filter (fun e -> kind e = Some "incumbent") events
      in
      Alcotest.(check bool) "an incumbent survived" true (incumbents <> []);
      let last_cost =
        match List.rev incumbents with
        | last :: _ ->
            Option.value ~default:Float.nan
              (Option.bind (Obs.Json.member "cost" last)
                 Obs.Json.to_float_opt)
        | [] -> Float.nan
      in
      Alcotest.(check (float 1e-9))
        "last incumbent is the returned cost" outcome.Solver.cost last_cost;
      Alcotest.(check bool) "budget stop recorded" true
        (List.exists (fun e -> kind e = Some "budget_stop") events);
      Sys.remove path

(* --- bit identity: telemetry on vs off --- *)

let test_recorder_bit_identity () =
  let m = hard 10 6 in
  let plain = Solver.solve m in
  let r = Obs.Recorder.create () in
  Obs.Recorder.install r;
  let traced =
    Fun.protect ~finally:Obs.Recorder.uninstall (fun () -> Solver.solve m)
  in
  Alcotest.(check bool) "recorder saw the run" true
    (Obs.Recorder.last_seq r > 0);
  Alcotest.(check (float 0.)) "cost" plain.Solver.cost traced.Solver.cost;
  Alcotest.(check bool) "tree" true
    (Utree.equal plain.Solver.tree traced.Solver.tree);
  Alcotest.(check int) "expanded" plain.Solver.stats.Stats.expanded
    traced.Solver.stats.Stats.expanded;
  Alcotest.(check int) "generated" plain.Solver.stats.Stats.generated
    traced.Solver.stats.Stats.generated;
  Alcotest.(check int) "pruned" plain.Solver.stats.Stats.pruned
    traced.Solver.stats.Stats.pruned;
  Alcotest.(check int) "ub_updates" plain.Solver.stats.Stats.ub_updates
    traced.Solver.stats.Stats.ub_updates;
  Alcotest.(check int) "max_open" plain.Solver.stats.Stats.max_open
    traced.Solver.stats.Stats.max_open;
  Alcotest.(check bool) "optimal" plain.Solver.optimal traced.Solver.optimal

(* --- incremental Chrome trace: stream, kill, recover --- *)

let stream_some_spans path =
  let buf = Obs.Span.create () in
  Obs.Span.stream_to ~flush_every:1 buf path;
  for i = 1 to 5 do
    Obs.Span.record buf
      ~args:[ ("i", Obs.Json.Int i) ]
      ~start_ns:(Int64.of_int (i * 1000))
      ~stop_ns:(Int64.of_int ((i * 1000) + 500))
      "step"
  done;
  buf

let test_stream_and_load_complete () =
  let path = Filename.temp_file "trace" ".json" in
  let buf = stream_some_spans path in
  Obs.Span.close_stream buf;
  (match Obs.Span.load_trace path with
  | Ok events -> Alcotest.(check int) "all five events" 5 (List.length events)
  | Error e -> Alcotest.failf "load failed: %s" e);
  Sys.remove path

let test_stream_truncated_recovers () =
  let path = Filename.temp_file "trace" ".json" in
  let buf = stream_some_spans path in
  (* No close_stream: the file ends flushed but unterminated, like a
     SIGKILLed run.  Every flush ended on a complete object, so all
     five events must load. *)
  (match Obs.Span.load_trace path with
  | Ok events -> Alcotest.(check int) "unterminated loads" 5 (List.length events)
  | Error e -> Alcotest.failf "unterminated load failed: %s" e);
  (* Now cut mid-object: recovery drops only the torn tail. *)
  let raw = read_file path in
  let cut = String.length raw - 12 in
  let oc = open_out_bin path in
  output_string oc (String.sub raw 0 cut);
  close_out oc;
  (match Obs.Span.load_trace path with
  | Ok events ->
      Alcotest.(check bool) "recovered a strict prefix" true
        (List.length events >= 1 && List.length events < 5)
  | Error e -> Alcotest.failf "recovery failed: %s" e);
  Obs.Span.close_stream buf;
  Sys.remove path

(* --- progress: no ANSI escapes on a redirected stderr --- *)

let with_captured_stderr f =
  let file = Filename.temp_file "captured" ".log" in
  let saved = Unix.dup Unix.stderr in
  let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stderr;
  Unix.close fd;
  Fun.protect
    ~finally:(fun () ->
      flush stderr;
      Unix.dup2 saved Unix.stderr;
      Unix.close saved)
    f;
  let s = read_file file in
  Sys.remove file;
  s

let test_progress_status_line_plain () =
  let captured =
    with_captured_stderr (fun () ->
        let p =
          Obs.Progress.create ~interval_s:0.
            ~sink:(Obs.Progress.Status_line { tty = false })
            ()
        in
        Obs.Progress.sample p ~worker:0 ~expanded:10 ~pruned:5 ~open_depth:3
          ~ub:4. ~lb:2.)
  in
  Alcotest.(check bool) "no escapes" false (contains ~affix:"\x1b" captured);
  Alcotest.(check bool) "no carriage returns" false
    (contains ~affix:"\r" captured);
  Alcotest.(check bool) "one plain line" true
    (contains ~affix:"[w0]" captured && contains ~affix:"\n" captured)

let test_progress_status_line_tty () =
  let captured =
    with_captured_stderr (fun () ->
        let p =
          Obs.Progress.create ~interval_s:0.
            ~sink:(Obs.Progress.Status_line { tty = true })
            ()
        in
        Obs.Progress.sample p ~worker:1 ~expanded:10 ~pruned:5 ~open_depth:3
          ~ub:4. ~lb:2.)
  in
  Alcotest.(check bool) "rewrites in place" true
    (contains ~affix:"\r\x1b[2K" captured)

let () =
  Alcotest.run "telemetry"
    [
      ( "recorder",
        [
          Alcotest.test_case "ring wraparound" `Quick test_recorder_wraparound;
          Alcotest.test_case "concurrent domains" `Quick
            test_recorder_concurrent_domains;
          Alcotest.test_case "snapshot since" `Quick
            test_recorder_snapshot_since;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "golden fixture" `Quick
            test_metrics_exposition_golden;
          Alcotest.test_case "order independent" `Quick
            test_metrics_exposition_order_independent;
          Alcotest.test_case "parses back" `Quick test_exposition_parses_back;
        ] );
      ( "serve",
        [
          Alcotest.test_case "endpoints" `Quick test_serve_endpoints;
          Alcotest.test_case "target parsing" `Quick test_target_of_string;
        ] );
      ( "top",
        [ Alcotest.test_case "non-TTY snapshot" `Quick test_top_snapshot ] );
      ( "flight",
        [
          Alcotest.test_case "dump after stop" `Quick
            test_flight_dump_after_stop;
          Alcotest.test_case "bit identity" `Quick test_recorder_bit_identity;
        ] );
      ( "trace-stream",
        [
          Alcotest.test_case "stream + load" `Quick
            test_stream_and_load_complete;
          Alcotest.test_case "truncated recovery" `Quick
            test_stream_truncated_recovers;
        ] );
      ( "progress",
        [
          Alcotest.test_case "plain on non-TTY" `Quick
            test_progress_status_line_plain;
          Alcotest.test_case "rewrite on TTY" `Quick
            test_progress_status_line_tty;
        ] );
    ]
