(* The Executor API and its three backends.

   - wire codecs round-trip jobs and results bit-exactly (hex floats);
   - a localhost TCP worker pool reproduces the sequential pipeline's
     cost and topology exactly;
   - a worker killed mid-block has its job retried elsewhere and the
     run still reaches the optimum;
   - a pool whose only worker times out (or that never had workers)
     degrades gracefully to local solves;
   - worker heartbeats land in the ambient recorder, so /healthz
     reports staleness for remote workers exactly as for local ones. *)

module Dist_matrix = Distmat.Dist_matrix
module Gen = Distmat.Gen
module Utree = Ultra.Utree
module Solver = Bnb.Solver
module Budget = Bnb.Budget
module Pipeline = Compactphy.Pipeline
module Run_config = Compactphy.Run_config
module Executor = Compactphy.Executor
module Wire = Compactphy.Wire
module Net_exec = Compactphy.Net_exec
module Sim_exec = Clustersim.Sim_exec

let rng seed = Random.State.make [| seed |]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let job_of ?(id = 0) ?(options = Solver.default_options) ?node_share
    ?(poll_every = 32) ?trace m =
  {
    Executor.j_id = id;
    j_size = Dist_matrix.size m;
    j_matrix = m;
    j_options = options;
    j_workers = 1;
    j_node_share = node_share;
    j_poll_every = poll_every;
    j_resume = None;
    j_cache = false;
    j_trace = trace;
  }

let unwrap = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected decode error: %s" e

(* --- wire codecs --- *)

let test_wire_job_roundtrip () =
  let m = Gen.uniform_metric ~rng:(rng 1) 7 in
  let options = { Solver.default_options with Solver.gap = 0.125 } in
  let job = job_of ~id:3 ~options ~node_share:41 ~poll_every:7 ~trace:"run-1-af" m in
  let job' = unwrap (Wire.job_of_json (Wire.job_to_json job)) in
  Alcotest.(check int) "id" job.Executor.j_id job'.Executor.j_id;
  Alcotest.(check (option string)) "trace context" (Some "run-1-af")
    job'.Executor.j_trace;
  (* an untraced job stays untraced — and its frame carries no trace key
     at all, preserving byte-identity with telemetry off *)
  let bare = unwrap (Wire.job_of_json (Wire.job_to_json (job_of m))) in
  Alcotest.(check (option string)) "no trace" None bare.Executor.j_trace;
  Alcotest.(check int) "size" job.Executor.j_size job'.Executor.j_size;
  Alcotest.(check bool) "node share" true
    (job'.Executor.j_node_share = Some 41);
  Alcotest.(check int) "poll_every" 7 job'.Executor.j_poll_every;
  Alcotest.(check (float 0.)) "gap bit-exact" 0.125
    job'.Executor.j_options.Solver.gap;
  (* every matrix entry must survive bit-exactly *)
  Dist_matrix.iter_pairs
    (fun i j v ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "d(%d,%d)" i j)
        v
        (Dist_matrix.get job'.Executor.j_matrix i j))
    m

let test_wire_solved_roundtrip () =
  let m = Gen.uniform_metric ~rng:(rng 2) 9 in
  (* A capped solve, so the solved value carries a genuine incumbent,
     non-trivial stats and an open frontier. *)
  let monitor = Budget.arm (Budget.create ~max_nodes:15 ~poll_every:1 ()) in
  let sv = Executor.solve_job ~monitor (job_of m) in
  Alcotest.(check bool) "capped run has a frontier" true
    (sv.Executor.s_frontier <> []);
  let sv' = unwrap (Wire.solved_of_json (Wire.solved_to_json sv)) in
  Alcotest.(check bool) "tree" true
    (Utree.equal sv.Executor.s_tree sv'.Executor.s_tree);
  Alcotest.(check (float 0.)) "lb bit-exact" sv.Executor.s_lb
    sv'.Executor.s_lb;
  Alcotest.(check bool) "status" true
    (sv.Executor.s_status = sv'.Executor.s_status);
  Alcotest.(check int) "expanded" sv.Executor.s_stats.Bnb.Stats.expanded
    sv'.Executor.s_stats.Bnb.Stats.expanded;
  Alcotest.(check int) "pruned" sv.Executor.s_stats.Bnb.Stats.pruned
    sv'.Executor.s_stats.Bnb.Stats.pruned;
  Alcotest.(check bool) "frontier" true
    (List.equal Utree.equal sv.Executor.s_frontier sv'.Executor.s_frontier)

let test_wire_trace_roundtrip () =
  let proc =
    {
      Obs.Procstat.minor_collections = 12;
      major_collections = 3;
      compactions = 1;
      heap_words = 1 lsl 20;
      rss_bytes = 64 lsl 20;
    }
  in
  let rt =
    {
      (* worker-clock nanoseconds travel as decimal strings, so pick
         values past 2^53 to catch any float round-trip *)
      Wire.rt_spans =
        [
          {
            Wire.sp_name = "job.solve";
            sp_start_ns = 9_223_372_036_854_775_806L;
            sp_dur_ns = 2_500_000L;
            sp_args =
              [ ("job", Obs.Json.Int 3); ("trace", Obs.Json.String "run-1-af") ];
          };
        ];
      rt_now_ns = 9_007_199_254_740_993L;
      rt_proc = Some proc;
    }
  in
  let rt' = unwrap (Wire.remote_trace_of_json (Wire.remote_trace_to_json rt)) in
  (match rt'.Wire.rt_spans with
  | [ sp ] ->
      Alcotest.(check string) "span name" "job.solve" sp.Wire.sp_name;
      Alcotest.(check bool) "start ns exact" true
        (sp.Wire.sp_start_ns = 9_223_372_036_854_775_806L);
      Alcotest.(check bool) "dur ns exact" true (sp.Wire.sp_dur_ns = 2_500_000L);
      Alcotest.(check bool) "args survive" true
        (List.assoc_opt "trace" sp.Wire.sp_args
        = Some (Obs.Json.String "run-1-af"))
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans));
  Alcotest.(check bool) "now_ns exact" true
    (rt'.Wire.rt_now_ns = 9_007_199_254_740_993L);
  match rt'.Wire.rt_proc with
  | Some p ->
      Alcotest.(check int) "rss" (64 lsl 20) p.Obs.Procstat.rss_bytes;
      Alcotest.(check int) "minors" 12 p.Obs.Procstat.minor_collections
  | None -> Alcotest.fail "proc sample lost in transit"

let test_wire_frames_over_socket () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      try Unix.close b with _ -> ())
    (fun () ->
      let m = Gen.uniform_metric ~rng:(rng 3) 5 in
      let frames =
        [
          Wire.Hello { version = Wire.version };
          Wire.Welcome { version = Wire.version; worker_id = 7 };
          Wire.Job (job_of ~id:2 m);
          Wire.Heartbeat
            {
              job_id = Some 2;
              expanded = 19;
              now_ns = 123456789L;
              proc = None;
            };
          Wire.Cancel { job_id = 2 };
          Wire.Shutdown;
        ]
      in
      List.iter (Wire.write_frame a) frames;
      List.iter
        (fun sent ->
          match Wire.read_frame b with
          | Error _ -> Alcotest.fail "read_frame failed"
          | Ok got -> (
              match (sent, got) with
              | Wire.Job j, Wire.Job j' ->
                  Alcotest.(check int) "job id" j.Executor.j_id
                    j'.Executor.j_id
              | Wire.Heartbeat { expanded; _ }, Wire.Heartbeat h ->
                  Alcotest.(check int) "expanded" expanded h.expanded
              | s, g ->
                  Alcotest.(check bool)
                    "same constructor" true
                    (Wire.frame_to_json s = Wire.frame_to_json g)))
        frames;
      Unix.close a;
      match Wire.read_frame b with
      | Error Wire.Eof -> ()
      | Error (Wire.Bad e) -> Alcotest.failf "expected Eof, got Bad %s" e
      | Ok _ -> Alcotest.fail "expected Eof after peer close")

(* --- TCP pool helpers --- *)

(* Run [f] with in-process worker threads dialing every coordinator the
   pipeline binds; [specs] gives one [die_after_jobs] per worker. *)
let with_worker_threads specs f =
  let threads = ref [] in
  Net_exec.on_bound (fun host port ->
      List.iter
        (fun die_after_jobs ->
          let th =
            Thread.create
              (fun () ->
                try
                  ignore
                    (Net_exec.run_worker ?die_after_jobs
                       ~heartbeat_every_s:0.02
                       ~connect:(Printf.sprintf "%s:%d" host port) ())
                with _ -> ())
              ()
          in
          threads := th :: !threads)
        specs);
  Fun.protect
    ~finally:(fun () ->
      Net_exec.on_bound (fun _ _ -> ());
      List.iter Thread.join !threads)
    (fun () -> f ())

let tcp_config =
  Run_config.(
    default
    |> with_executor Compactphy.Executor.Tcp
    |> with_workers_addr "127.0.0.1:0")

(* --- bit-identity: localhost pool vs sequential --- *)

let test_tcp_bit_identical () =
  let m = Gen.clustered ~rng:(rng 4) ~n_clusters:3 15 in
  let seq = Pipeline.with_compact_sets m in
  let tcp =
    with_worker_threads [ None; None ] (fun () ->
        Pipeline.with_compact_sets ~config:tcp_config m)
  in
  Alcotest.(check (float 0.)) "cost bit-identical" seq.Pipeline.cost
    tcp.Pipeline.cost;
  Alcotest.(check bool) "topology identical" true
    (Utree.equal seq.Pipeline.tree tcp.Pipeline.tree);
  Alcotest.(check int) "same blocks" seq.Pipeline.n_blocks
    tcp.Pipeline.n_blocks;
  Alcotest.(check bool) "exact" true (tcp.Pipeline.status = Budget.Exact);
  Alcotest.(check int) "same expansions"
    seq.Pipeline.stats.Bnb.Stats.expanded tcp.Pipeline.stats.Bnb.Stats.expanded

let test_tcp_exact_entrypoint () =
  let m = Gen.uniform_metric ~rng:(rng 5) 9 in
  (* [exact] routes its single job — the whole run — through the
     configured executor, so a tcp config really solves remotely. *)
  let seq = Pipeline.exact m in
  let tcp =
    with_worker_threads [ None ] (fun () ->
        Pipeline.exact ~config:tcp_config m)
  in
  Alcotest.(check (float 0.)) "cost" seq.Pipeline.cost tcp.Pipeline.cost;
  Alcotest.(check bool) "topology identical" true
    (Utree.equal seq.Pipeline.tree tcp.Pipeline.tree)

(* --- fault injection --- *)

let test_worker_death_retries () =
  let m = Gen.clustered ~rng:(rng 6) ~n_clusters:3 15 in
  let seq = Pipeline.with_compact_sets m in
  (* First worker drops dead on its first job, mid-block; the second
     worker (or a later retry) must pick the job up. *)
  let tcp =
    with_worker_threads
      [ Some 1; None ]
      (fun () -> Pipeline.with_compact_sets ~config:tcp_config m)
  in
  Alcotest.(check (float 0.)) "optimum survives worker death"
    seq.Pipeline.cost tcp.Pipeline.cost;
  Alcotest.(check bool) "topology identical" true
    (Utree.equal seq.Pipeline.tree tcp.Pipeline.tree)

let test_timeout_falls_back_to_local () =
  let m = Gen.uniform_metric ~rng:(rng 7) 8 in
  let monitor = Budget.arm Budget.unlimited in
  let exec, port =
    Net_exec.coordinator ~job_timeout_s:0.3 ~fallback_after_s:0.2
      ~max_retries:0 ~addr:"127.0.0.1:0" ~monitor ()
  in
  (* The only worker sits on its result for longer than the timeout, so
     the coordinator must kill it and solve locally. *)
  let th =
    Thread.create
      (fun () ->
        try
          ignore
            (Net_exec.run_worker ~delay_result_s:2.0
               ~connect:(Printf.sprintf "127.0.0.1:%d" port) ())
        with _ -> ())
      ()
  in
  let fut = exec.Executor.submit (job_of m) in
  let o = fut.Executor.await () in
  exec.Executor.shutdown ();
  Thread.join th;
  let r = Solver.solve m in
  Alcotest.(check (float 0.)) "local fallback reaches the optimum"
    r.Solver.cost
    (Utree.weight o.Executor.o_solved.Executor.s_tree)

let test_no_workers_degrades () =
  let m = Gen.uniform_metric ~rng:(rng 8) 8 in
  let monitor = Budget.arm Budget.unlimited in
  let exec, _port =
    Net_exec.coordinator ~fallback_after_s:0.1 ~addr:"127.0.0.1:0" ~monitor ()
  in
  let fut = exec.Executor.submit (job_of m) in
  let o = fut.Executor.await () in
  exec.Executor.shutdown ();
  let r = Solver.solve m in
  Alcotest.(check (float 0.)) "worker-less pool still solves" r.Solver.cost
    (Utree.weight o.Executor.o_solved.Executor.s_tree);
  Alcotest.(check bool) "and it is exact" true
    (o.Executor.o_solved.Executor.s_status = Budget.Exact)

(* --- merged tracing --- *)

(* A traced two-worker run must leave one merged timeline: coordinator
   job.queue/job.rpc spans plus worker job.solve spans re-recorded on
   per-worker pid tracks, clock-aligned into the coordinator's envelope
   and tagged with the run's trace context — and the whole thing must
   reconcile with the observed wall clock. *)
let test_tcp_merged_trace () =
  let m = Gen.clustered ~rng:(rng 12) ~n_clusters:3 15 in
  let buf = Obs.Span.create () in
  Obs.Span.install buf;
  Obs.Span.set_process_name buf ~pid:Obs.Span.self_pid "coordinator";
  let config = Run_config.with_run_id "run-test-1" tcp_config in
  let t0 = Obs.Clock.counter () in
  let run =
    Fun.protect ~finally:Obs.Span.uninstall (fun () ->
        with_worker_threads [ None; None ] (fun () ->
            Pipeline.with_compact_sets ~config m))
  in
  let wall_s = Obs.Clock.elapsed_s t0 in
  Alcotest.(check bool) "run finished" true (run.Pipeline.cost > 0.);
  let events = Obs.Span.events buf in
  let named n = List.filter (fun e -> e.Obs.Span.name = n) events in
  Alcotest.(check bool) "queue spans recorded" true (named "job.queue" <> []);
  Alcotest.(check bool) "rpc spans recorded" true (named "job.rpc" <> []);
  let worker_solves =
    List.filter (fun e -> e.Obs.Span.pid <> Obs.Span.self_pid) (named "job.solve")
  in
  Alcotest.(check bool) "worker solves merged" true (worker_solves <> []);
  List.iter
    (fun e ->
      Alcotest.(check bool) "tagged with the run's trace context" true
        (List.assoc_opt "trace" e.Obs.Span.args
        = Some (Obs.Json.String "run-test-1"));
      (* Clock alignment: the translated span must land inside the
         coordinator's own time envelope. *)
      let start_s = Int64.to_float e.Obs.Span.start_ns /. 1e9 in
      let finish_s =
        Int64.to_float (Int64.add e.Obs.Span.start_ns e.Obs.Span.dur_ns) /. 1e9
      in
      Alcotest.(check bool) "starts after the trace origin" true
        (start_s >= -0.001);
      Alcotest.(check bool) "finishes within the wall clock" true
        (finish_s <= wall_s +. 0.1))
    worker_solves;
  (* Worker tracks got process_name labels when their spans merged. *)
  let labels =
    List.filter_map
      (fun e ->
        if e.Obs.Span.ph = "M" && e.Obs.Span.pid <> Obs.Span.self_pid then
          match List.assoc_opt "name" e.Obs.Span.args with
          | Some (Obs.Json.String l) -> Some l
          | _ -> None
        else None)
      events
  in
  Alcotest.(check bool) "worker track labelled" true
    (List.exists (fun l -> contains l "worker") labels);
  (* And the timeline model reconciles the file with the wall clock. *)
  let path = Filename.temp_file "tcp-trace" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.Span.write_chrome buf path;
      let evs =
        match Obs.Span.load_trace path with
        | Ok evs -> evs
        | Error e -> Alcotest.failf "load_trace: %s" e
      in
      let t = Obs.Timeline.of_events evs in
      Alcotest.(check bool) "timeline has job rows" true
        (t.Obs.Timeline.jobs <> []);
      Alcotest.(check bool) "some solve on a worker track" true
        (List.exists
           (fun r -> r.Obs.Timeline.solve_pid <> Obs.Span.self_pid)
           t.Obs.Timeline.jobs);
      match Obs.Timeline.reconcile t ~wall_s with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "timeline does not reconcile: %s"
            (String.concat "; " es))

(* --- heartbeats and /healthz --- *)

(* Poll /healthz until it answers [want] or [deadline_s] passes, then
   return the last response.  A fixed sleep flakes both ways under CI
   load (the machine may stall past the staleness threshold before a
   "fresh" check, or not schedule the listener within a fixed window),
   so both assertions poll with a deadline instead.  [prepare] runs
   before every attempt (e.g. to emit a fresh heartbeat). *)
let poll_healthz ?(prepare = fun () -> ()) target ~want ~deadline_s =
  let t0 = Obs.Clock.counter () in
  let rec go () =
    prepare ();
    match Obs.Serve.get target "/healthz" with
    | Ok (code, _) as r
      when code = want || Obs.Clock.elapsed_s t0 > deadline_s ->
        r
    | Ok _ ->
        Thread.delay 0.05;
        go ()
    | Error _ as e -> e
  in
  go ()

let test_heartbeats_reach_healthz () =
  let recorder = Obs.Recorder.create () in
  Obs.Recorder.install recorder;
  let srv = Obs.Serve.start ~recorder ~stale_after_s:0.4 () in
  Fun.protect
    ~finally:(fun () ->
      Obs.Serve.stop srv;
      Obs.Recorder.uninstall ())
    (fun () ->
      let m = Gen.clustered ~rng:(rng 9) ~n_clusters:3 15 in
      let run =
        with_worker_threads [ None ] (fun () ->
            Pipeline.with_compact_sets ~config:tcp_config m)
      in
      Alcotest.(check bool) "run finished" true (run.Pipeline.cost > 0.);
      let kinds =
        List.map
          (fun e -> e.Obs.Recorder.kind)
          (Obs.Recorder.snapshot recorder)
      in
      Alcotest.(check bool) "worker heartbeat recorded" true
        (List.exists
           (function Obs.Events.Heartbeat _ -> true | _ -> false)
           kinds);
      let target =
        Obs.Serve.Tcp ("127.0.0.1", Option.get (Obs.Serve.port srv))
      in
      (* Re-emit a heartbeat before every attempt so freshness does not
         depend on how long ago the run's workers went quiet. *)
      let fresh_heartbeat () =
        Obs.Recorder.emit_ambient
          (Obs.Events.Heartbeat
             {
               worker = 0;
               expanded = 0;
               pruned = 0;
               open_nodes = 0;
               ub = Float.nan;
               lb = Float.nan;
             })
      in
      (match
         poll_healthz ~prepare:fresh_heartbeat target ~want:200 ~deadline_s:5.
       with
      | Ok (code, body) ->
          Alcotest.(check int) "fresh heartbeat -> 200" 200 code;
          Alcotest.(check bool) "reports staleness" true
            (contains body "heartbeat_staleness_s")
      | Error e -> Alcotest.failf "/healthz: %s" e);
      (* No more heartbeats: staleness must cross the 0.4 s threshold
         well before the deadline. *)
      match poll_healthz target ~want:503 ~deadline_s:10. with
      | Ok (code, _) -> Alcotest.(check int) "stale -> 503" 503 code
      | Error e -> Alcotest.failf "/healthz (stale): %s" e)

(* --- sim backend --- *)

let test_sim_backend () =
  Sim_exec.register ();
  let m = Gen.clustered ~rng:(rng 10) ~n_clusters:3 15 in
  let seq = Pipeline.with_compact_sets m in
  let sim =
    Pipeline.with_compact_sets
      ~config:
        Run_config.(
          default |> with_executor Compactphy.Executor.Sim |> with_workers 4)
      m
  in
  Alcotest.(check (float 1e-9)) "simulated cluster finds the same optimum"
    seq.Pipeline.cost sim.Pipeline.cost;
  Alcotest.(check int) "same blocks" seq.Pipeline.n_blocks sim.Pipeline.n_blocks

let () =
  Alcotest.run "executor"
    [
      ( "wire",
        [
          Alcotest.test_case "job round trip" `Quick test_wire_job_roundtrip;
          Alcotest.test_case "solved round trip" `Quick
            test_wire_solved_roundtrip;
          Alcotest.test_case "trace payload round trip" `Quick
            test_wire_trace_roundtrip;
          Alcotest.test_case "frames over a socket" `Quick
            test_wire_frames_over_socket;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "bit-identical to sequential" `Quick
            test_tcp_bit_identical;
          Alcotest.test_case "exact entry point" `Quick
            test_tcp_exact_entrypoint;
          Alcotest.test_case "worker death mid-block" `Quick
            test_worker_death_retries;
          Alcotest.test_case "timeout falls back to local" `Quick
            test_timeout_falls_back_to_local;
          Alcotest.test_case "no workers degrades" `Quick
            test_no_workers_degrades;
          Alcotest.test_case "two-worker merged trace" `Quick
            test_tcp_merged_trace;
          Alcotest.test_case "heartbeats reach /healthz" `Quick
            test_heartbeats_reach_healthz;
        ] );
      ( "sim",
        [ Alcotest.test_case "simulator backend" `Quick test_sim_backend ] );
    ]
