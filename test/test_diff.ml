(* Tests for Obs.Diff: manifest flattening, threshold rules, verdicts,
   NDJSON trajectory loading, and the directory-level perf gate that CI
   runs through [compactphy obs check]. *)

module D = Obs.Diff
module J = Obs.Json

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let obj kvs = J.Obj kvs

(* A miniature manifest in the shape Report.to_json writes. *)
let manifest ?(expanded = 100) ?(cost = 42.5) ?(total_s = 1.0)
    ?(speedup = 2.0) () =
  obj
    [
      ("name", J.String "unit");
      ("created_at_epoch_s", J.Float 1786000000.);
      ( "meta",
        obj
          [
            ("started_at", J.String "2026-08-07T00:00:00Z");
            ("hostname", J.String "host-a");
          ] );
      ( "phases",
        J.List [ obj [ ("name", J.String "total"); ("elapsed_s", J.Float total_s) ] ]
      );
      ("cost", J.Float cost);
      ("speedup", J.Float speedup);
      ( "stats",
        obj
          [
            ("expanded", J.Int expanded);
            ("pruned", J.Int 50);
          ] );
      ( "attribution",
        obj [ ("pruned_total", J.Int 50) ] );
    ]

(* --- flatten --- *)

let test_flatten () =
  let j =
    obj
      [
        ("a", J.Int 1);
        ("b", obj [ ("c", J.Float 2.5); ("skip", J.String "x") ]);
        ("l", J.List [ J.Int 3; obj [ ("d", J.Int 4) ]; J.Bool true ]);
        ("n", J.Null);
        ("nan", J.Float Float.nan);
      ]
  in
  Alcotest.(check (list (pair string (float 0.))))
    "numeric leaves in document order"
    [ ("a", 1.); ("b.c", 2.5); ("l[0]", 3.); ("l[1].d", 4.) ]
    (D.flatten j)

(* --- rules --- *)

let test_rule_matching () =
  let verdict_under rules =
    match
      (D.diff ~rules
         ~base:(obj [ ("x", obj [ ("y", J.Int 1) ]) ])
         ~cur:(obj [ ("x", obj [ ("y", J.Int 1) ]) ])
         ())
        .D.entries
    with
    | [ e ] -> e.D.verdict
    | _ -> Alcotest.fail "one entry expected"
  in
  (* Full-path match gates; non-matching rule leaves Info. *)
  Alcotest.(check bool) "full path gates" true
    (verdict_under [ D.rule "x.y" 0.1 ] = D.Within);
  Alcotest.(check bool) "no match is info" true
    (verdict_under [ D.rule "z" 0.1 ] = D.Info);
  (* Last-segment match, array index stripped. *)
  let d =
    D.diff
      ~rules:[ D.rule "solve_s" 0.1 ]
      ~base:(obj [ ("workers", J.List [ obj [ ("solve_s", J.Float 1.) ] ]) ])
      ~cur:(obj [ ("workers", J.List [ obj [ ("solve_s", J.Float 1.) ] ]) ])
      ()
  in
  (match d.D.entries with
  | [ e ] ->
      Alcotest.(check string) "path" "workers[0].solve_s" e.D.path;
      Alcotest.(check bool) "last segment gates" true (e.D.verdict = D.Within)
  | _ -> Alcotest.fail "one entry expected");
  (* Trailing-dot prefix match. *)
  let d =
    D.diff
      ~rules:[ D.rule "attribution." 0.1 ]
      ~base:(obj [ ("attribution", obj [ ("pruned_total", J.Int 10) ]) ])
      ~cur:(obj [ ("attribution", obj [ ("pruned_total", J.Int 10) ]) ])
      ()
  in
  (match d.D.entries with
  | [ e ] -> Alcotest.(check bool) "prefix gates" true (e.D.verdict = D.Within)
  | _ -> Alcotest.fail "one entry expected");
  (* Dotted rule keys gate nested paths: the suffix match works at a
     segment boundary, not against the last '.'-separated segment (which
     silently skipped keys like "bnb.pruned.lb1_suffix"). *)
  let entry_for d path =
    match List.find_opt (fun e -> e.D.path = path) d.D.entries with
    | Some e -> e
    | None -> Alcotest.failf "no entry for %s" path
  in
  let verdict_for ~rules path =
    let doc =
      obj
        [
          ( "bnb",
            obj
              [
                ( "pruned",
                  obj [ ("lb1_suffix", J.Int 7); ("suffix", J.Int 7) ] );
              ] );
        ]
    in
    let d = D.diff ~rules ~base:doc ~cur:doc () in
    (entry_for d path).D.verdict
  in
  Alcotest.(check bool) "dotted key matches nested path" true
    (verdict_for ~rules:[ D.rule "pruned.lb1_suffix" 0.1 ]
       "bnb.pruned.lb1_suffix"
    = D.Within);
  Alcotest.(check bool) "full dotted path matches" true
    (verdict_for ~rules:[ D.rule "bnb.pruned.lb1_suffix" 0.1 ]
       "bnb.pruned.lb1_suffix"
    = D.Within);
  Alcotest.(check bool) "suffix must start at a segment boundary" true
    (verdict_for ~rules:[ D.rule "_suffix" 0.1 ] "bnb.pruned.lb1_suffix"
    = D.Info);
  Alcotest.(check bool) "sibling leaf not captured by dotted key" true
    (verdict_for ~rules:[ D.rule "pruned.lb1_suffix" 0.1 ] "bnb.pruned.suffix"
    = D.Info);
  (* Index stripping still applies before the dotted suffix check. *)
  let d =
    D.diff
      ~rules:[ D.rule "pruned.lb1_suffix" 0.1 ]
      ~base:
        (obj
           [ ("pruned", obj [ ("lb1_suffix", J.List [ J.Int 1; J.Int 2 ]) ]) ])
      ~cur:
        (obj
           [ ("pruned", obj [ ("lb1_suffix", J.List [ J.Int 1; J.Int 2 ]) ]) ])
      ()
  in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "indexed path %s gated" e.D.path)
        true (e.D.verdict = D.Within))
    d.D.entries;
  (* First matching rule wins: a prepended user rule overrides. *)
  let d =
    D.diff
      ~rules:(D.rule "expanded" 10. :: D.default_rules)
      ~base:(obj [ ("stats", obj [ ("expanded", J.Int 100) ]) ])
      ~cur:(obj [ ("stats", obj [ ("expanded", J.Int 200) ]) ])
      ()
  in
  Alcotest.(check bool) "user rule overrides default" false
    (D.has_regression d)

(* --- verdicts --- *)

let entry_for d path =
  match List.find_opt (fun e -> e.D.path = path) d.D.entries with
  | Some e -> e
  | None -> Alcotest.failf "no entry for %s" path

let test_verdicts () =
  let d =
    D.diff ~base:(manifest ()) ~cur:(manifest ~expanded:200 ()) ()
  in
  let e = entry_for d "stats.expanded" in
  Alcotest.(check bool) "doubling expanded regresses" true
    (e.D.verdict = D.Regressed);
  Alcotest.(check (float 1e-9)) "rel" 1.0 e.D.rel;
  Alcotest.(check (option (float 0.))) "threshold" (Some 0.02) e.D.threshold;
  Alcotest.(check bool) "has_regression" true (D.has_regression d);
  (* Shrinkage in a lower-better metric improves. *)
  let d = D.diff ~base:(manifest ()) ~cur:(manifest ~expanded:50 ()) () in
  Alcotest.(check bool) "halving improves" true
    ((entry_for d "stats.expanded").D.verdict = D.Improved);
  Alcotest.(check bool) "improvement does not gate" false (D.has_regression d);
  (* Higher-better direction: a collapsing speedup regresses. *)
  let d = D.diff ~base:(manifest ()) ~cur:(manifest ~speedup:0.5 ()) () in
  Alcotest.(check bool) "speedup collapse regresses" true
    ((entry_for d "speedup").D.verdict = D.Regressed);
  (* ... and a rising one does not. *)
  let d = D.diff ~base:(manifest ()) ~cur:(manifest ~speedup:4.0 ()) () in
  Alcotest.(check bool) "speedup rise ok" false (D.has_regression d);
  (* Wall-clock has no default rule: a 10x slowdown is Info only. *)
  let d = D.diff ~base:(manifest ()) ~cur:(manifest ~total_s:10. ()) () in
  Alcotest.(check bool) "time is info" true
    ((entry_for d "phases[0].elapsed_s").D.verdict = D.Info);
  Alcotest.(check bool) "time never gates" false (D.has_regression d);
  (* Identical documents: everything Within/Info, nothing changed. *)
  let d = D.diff ~base:(manifest ()) ~cur:(manifest ()) () in
  Alcotest.(check bool) "no regression" false (D.has_regression d);
  Alcotest.(check int) "nothing changed" 0 (List.length (D.changed d))

let test_meta_ignored () =
  (* meta.* and created_at_epoch_s differ on every run by construction
     and must never appear in the comparison. *)
  let base = manifest () in
  let cur =
    obj
      (List.map
         (function
           | "created_at_epoch_s", _ -> ("created_at_epoch_s", J.Float 9e9)
           | "meta", _ -> ("meta", obj [ ("hostname", J.String "host-b") ])
           | kv -> kv)
         (match base with J.Obj kvs -> kvs | _ -> assert false))
  in
  let d = D.diff ~base ~cur () in
  Alcotest.(check int) "meta drift invisible" 0 (List.length (D.changed d));
  Alcotest.(check bool) "no meta path" true
    (List.for_all
       (fun e -> not (contains ~affix:"meta" e.D.path))
       d.D.entries)

let test_only_sides () =
  let d =
    D.diff
      ~base:(obj [ ("a", J.Int 1); ("gone", J.Int 2) ])
      ~cur:(obj [ ("a", J.Int 1); ("new", J.Int 3) ])
      ()
  in
  Alcotest.(check (list string)) "only base" [ "gone" ] d.D.only_base;
  Alcotest.(check (list string)) "only current" [ "new" ] d.D.only_cur

let test_render () =
  let d = D.diff ~base:(manifest ()) ~cur:(manifest ~expanded:200 ()) () in
  let s = J.to_string (D.to_json d) in
  Alcotest.(check bool) "regressed flag" true
    (contains ~affix:"\"regressed\":true" s);
  Alcotest.(check bool) "verdict string" true
    (contains ~affix:"\"verdict\":\"regressed\"" s);
  (match J.of_string s with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "diff json invalid: %s" e);
  let md = D.to_markdown ~title:"T" d in
  Alcotest.(check bool) "markdown header" true (contains ~affix:"## T" md);
  Alcotest.(check bool) "markdown table" true
    (contains ~affix:"| metric | base | current | change | verdict |" md);
  Alcotest.(check bool) "markdown row" true
    (contains ~affix:"`stats.expanded`" md)

(* --- files --- *)

let write_tmp ?(dir = Filename.get_temp_dir_name ()) name contents =
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let test_load_entry () =
  (* A plain manifest document. *)
  let p = write_tmp "diff_single.json" (J.to_string (manifest ())) in
  (match D.load_entry p with
  | Ok (J.Obj _) -> ()
  | Ok _ -> Alcotest.fail "not an object"
  | Error e -> Alcotest.failf "load failed: %s" e);
  Sys.remove p;
  (* An NDJSON trajectory: the LAST line is the comparison target. *)
  let p =
    write_tmp "diff_traj.json"
      "{\"experiment\":\"x\",\"v\":1}\n{\"experiment\":\"x\",\"v\":2}\n\n"
  in
  (match D.load_entry p with
  | Ok j ->
      Alcotest.(check (option int)) "latest entry wins" (Some 2)
        (Option.bind (J.member "v" j) J.to_int_opt)
  | Error e -> Alcotest.failf "ndjson load failed: %s" e);
  Sys.remove p;
  (* Garbage is an error naming the file. *)
  let p = write_tmp "diff_bad.json" "not json at all\nstill not\n" in
  (match D.load_entry p with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error e -> Alcotest.(check bool) "names the file" true
      (contains ~affix:"diff_bad.json" e));
  Sys.remove p

(* --- directory gate (the synthetic regression fixture) --- *)

let with_dirs f =
  let mk prefix =
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        ("compactphy_" ^ prefix)
    in
    if Sys.file_exists d then
      Array.iter (fun n -> Sys.remove (Filename.concat d n)) (Sys.readdir d)
    else Sys.mkdir d 0o755;
    d
  in
  let baseline = mk "diff_baseline" and current = mk "diff_current" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun d ->
          Array.iter (fun n -> Sys.remove (Filename.concat d n)) (Sys.readdir d);
          Sys.rmdir d)
        [ baseline; current ])
    (fun () -> f ~baseline ~current)

let test_check_dirs_ok () =
  with_dirs (fun ~baseline ~current ->
      let doc = J.to_string (manifest ()) in
      ignore (write_tmp ~dir:baseline "run.json" doc);
      ignore (write_tmp ~dir:current "run.json" doc);
      match D.check_dirs ~baseline ~current () with
      | Error e -> Alcotest.failf "check failed: %s" e
      | Ok reports ->
          Alcotest.(check int) "one file" 1 (List.length reports);
          Alcotest.(check bool) "gate passes" false (D.dirs_regressed reports))

let test_check_dirs_regression () =
  (* The acceptance fixture: a current run that expanded twice as many
     nodes as its committed baseline must trip the gate. *)
  with_dirs (fun ~baseline ~current ->
      ignore (write_tmp ~dir:baseline "run.json" (J.to_string (manifest ())));
      ignore
        (write_tmp ~dir:current "run.json"
           (J.to_string (manifest ~expanded:200 ())));
      match D.check_dirs ~baseline ~current () with
      | Error e -> Alcotest.failf "check failed: %s" e
      | Ok reports ->
          Alcotest.(check bool) "gate trips" true (D.dirs_regressed reports);
          (match reports with
          | [ { D.result = Ok d; _ } ] ->
              Alcotest.(check bool) "regression names the path" true
                (List.exists
                   (fun e -> e.D.path = "stats.expanded")
                   (D.regressions d))
          | _ -> Alcotest.fail "report shape"))

let test_check_dirs_missing_current () =
  with_dirs (fun ~baseline ~current ->
      ignore (write_tmp ~dir:baseline "run.json" (J.to_string (manifest ())));
      ignore (write_tmp ~dir:current "unrelated.txt" "x");
      match D.check_dirs ~baseline ~current () with
      | Error e -> Alcotest.failf "check failed: %s" e
      | Ok reports ->
          Alcotest.(check bool) "missing file fails the gate" true
            (D.dirs_regressed reports))

let test_check_dirs_empty_baseline () =
  with_dirs (fun ~baseline ~current ->
      ignore (write_tmp ~dir:current "run.json" (J.to_string (manifest ())));
      match D.check_dirs ~baseline ~current () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "empty baseline dir must be an error")

(* --- committed example manifests --- *)

let test_example_manifests_stable_delta () =
  (* Two manifests of the same deterministic pipeline run, committed
     under data/.  Their diff must be stable: search counters identical
     (so no regression), only wall-clock paths moved (all Info), and the
     rendered delta identical across invocations. *)
  let load p =
    match D.load_entry p with
    | Ok j -> j
    | Error e -> Alcotest.failf "%s: %s" p e
  in
  let base = load "../data/example_manifest_a.json" in
  let cur = load "../data/example_manifest_b.json" in
  let d = D.diff ~base ~cur () in
  Alcotest.(check bool) "no regression between identical runs" false
    (D.has_regression d);
  Alcotest.(check bool) "compares a real manifest" true
    (List.length d.D.entries > 50);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "only wall-clock moved, but %s did" e.D.path)
        true
        (e.D.verdict = D.Info))
    (D.changed d);
  let d' = D.diff ~base ~cur () in
  Alcotest.(check string) "delta is deterministic"
    (J.to_string (D.to_json d))
    (J.to_string (D.to_json d'))

let () =
  Alcotest.run "diff"
    [
      ( "flatten",
        [ Alcotest.test_case "numeric leaves" `Quick test_flatten ] );
      ( "rules",
        [ Alcotest.test_case "matching" `Quick test_rule_matching ] );
      ( "verdicts",
        [
          Alcotest.test_case "directions + thresholds" `Quick test_verdicts;
          Alcotest.test_case "meta ignored" `Quick test_meta_ignored;
          Alcotest.test_case "one-sided paths" `Quick test_only_sides;
          Alcotest.test_case "render" `Quick test_render;
        ] );
      ( "files",
        [ Alcotest.test_case "load_entry" `Quick test_load_entry ] );
      ( "gate",
        [
          Alcotest.test_case "ok" `Quick test_check_dirs_ok;
          Alcotest.test_case "synthetic regression" `Quick
            test_check_dirs_regression;
          Alcotest.test_case "missing current" `Quick
            test_check_dirs_missing_current;
          Alcotest.test_case "empty baseline" `Quick
            test_check_dirs_empty_baseline;
        ] );
      ( "examples",
        [
          Alcotest.test_case "stable delta" `Quick
            test_example_manifests_stable_delta;
        ] );
    ]
