(* Integration tests: whole pipelines crossing several libraries, file
   IO round trips, and consistency between the four solver deployments
   (sequential, domain-parallel, simulated cluster, compact-set
   decomposition). *)

module Dist_matrix = Distmat.Dist_matrix
module Matrix_io = Distmat.Matrix_io
module Gen = Distmat.Gen
module Utree = Ultra.Utree
module Newick = Ultra.Newick
module Tree_check = Ultra.Tree_check
module Rf = Ultra.Rf_distance
module Solver = Bnb.Solver
module Par_bnb = Parbnb.Par_bnb
module Platform = Clustersim.Platform
module Dist_bnb = Clustersim.Dist_bnb
module Pipeline = Compactphy.Pipeline
module Mtdna = Seqsim.Mtdna

let rng seed = Random.State.make [| seed |]
let check_float = Alcotest.(check (float 1e-6))

let test_four_deployments_agree () =
  (* The same optimum must come out of every way of running the
     search. *)
  for seed = 0 to 3 do
    let m = Gen.near_ultrametric ~rng:(rng seed) ~noise:0.3 10 in
    let sequential = (Solver.solve m).Solver.cost in
    let parallel = (Par_bnb.solve ~n_workers:4 m).Par_bnb.cost in
    let simulated =
      (Dist_bnb.run (Platform.cluster 16) m).Dist_bnb.cost
    in
    let exact_pipeline = (Pipeline.exact m).Pipeline.cost in
    check_float "parallel" sequential parallel;
    check_float "simulated" sequential simulated;
    check_float "pipeline" sequential exact_pipeline
  done

let test_sequences_to_newick_roundtrip () =
  (* sequences -> matrix -> tree -> newick -> tree -> matrix dominates
     the original matrix. *)
  let d = Mtdna.generate ~rng:(rng 5) 15 in
  let r = Pipeline.with_compact_sets d.Mtdna.matrix in
  let text = Newick.to_string r.Pipeline.tree in
  let back = Newick.of_string text in
  Alcotest.(check bool) "same topology" true
    (Utree.same_topology r.Pipeline.tree back);
  Alcotest.(check bool) "still feasible" true
    (Utree.is_feasible ~eps:1e-3 d.Mtdna.matrix back)

let test_phylip_file_roundtrip_through_disk () =
  let m = Gen.near_ultrametric ~rng:(rng 6) 12 in
  let path = Filename.temp_file "compactphy" ".phy" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Matrix_io.write_file path (Matrix_io.to_phylip m);
      let parsed = Matrix_io.of_phylip (Matrix_io.read_file path) in
      Alcotest.(check bool) "equal" true
        (Dist_matrix.equal ~eps:1e-5 m parsed.Matrix_io.matrix);
      (* And the parsed matrix is still constructible. *)
      let r = Pipeline.with_compact_sets parsed.Matrix_io.matrix in
      Alcotest.(check bool) "valid tree" true
        (Tree_check.full_check ~eps:1e-3 parsed.Matrix_io.matrix
           r.Pipeline.tree
        = Ok ()))

let test_true_tree_recovered_on_clean_data () =
  (* With long sequences and moderate divergence the compact-set tree
     recovers the generating topology almost exactly. *)
  let d = Mtdna.generate ~rng:(rng 7) ~sites:4000 12 in
  let r = Pipeline.with_compact_sets d.Mtdna.matrix in
  let rf = Rf.normalized r.Pipeline.tree d.Mtdna.true_tree in
  if rf > 0.34 then
    Alcotest.failf "normalised RF %.2f too high for clean data" rf

let test_exact_beats_heuristics_everywhere () =
  for seed = 0 to 4 do
    let m = Gen.uniform_metric ~rng:(rng seed) 9 in
    let opt = (Solver.solve m).Solver.cost in
    List.iter
      (fun (name, tree) ->
        let w = Utree.weight tree in
        if w < opt -. 1e-9 then
          Alcotest.failf "%s beat the optimum (%g < %g)" name w opt)
      [
        ("upgmm", Clustering.Linkage.upgmm m);
        ("upgma", Utree.minimal_realization m (Clustering.Linkage.upgma m));
        ("nj", Clustering.Nj.ultrametric_of m);
        ("compact", (Pipeline.with_compact_sets m).Pipeline.tree);
      ]
  done

let test_decomposition_consistent_with_subsolves () =
  (* Solving a compact set's members as a standalone matrix must give a
     subtree no better than the slice of the full exact tree: compact
     sets preserve the optimal substructure on exact ultrametrics. *)
  let m = Gen.ultrametric ~rng:(rng 8) 14 in
  let sets = Cgraph.Compact_sets.find m in
  Alcotest.(check bool) "found sets" true (sets <> []);
  List.iter
    (fun set ->
      let idx = Array.of_list set in
      let sub = Dist_matrix.sub m idx in
      let sub_cost = (Solver.solve sub).Solver.cost in
      (* The full optimal tree restricted to the compact set realises the
         same ultrametric, so costs match. *)
      let sub_cs = (Pipeline.with_compact_sets sub).Pipeline.cost in
      check_float "block solves agree" sub_cost sub_cs)
    sets

let test_simulated_grid_slower_than_cluster_same_nodes () =
  (* The NCS paper's observation: at equal node count, WAN latency makes
     the grid no faster than the cluster. *)
  (* Equal node count and speed: only communication differs. *)
  let m = Gen.near_ultrametric ~rng:(rng 11) ~noise:0.3 13 in
  let c = Dist_bnb.run (Platform.cluster 8) m in
  let g =
    Dist_bnb.run (Platform.grid ~sites:[ (8, 2_300.) ]) m
  in
  check_float "same answer" c.Dist_bnb.cost g.Dist_bnb.cost;
  Alcotest.(check bool)
    (Printf.sprintf "grid %.4f >= cluster %.4f" g.Dist_bnb.makespan
       c.Dist_bnb.makespan)
    true
    (g.Dist_bnb.makespan >= c.Dist_bnb.makespan)

let test_parallel_pipeline_on_mtdna_26 () =
  (* End-to-end at the paper's headline size: 26 species through the
     compact-set pipeline with parallel block solving. *)
  let d = Mtdna.generate ~rng:(rng 12) 26 in
  let r =
    Pipeline.with_compact_sets
      ~config:Compactphy.Run_config.(default |> with_workers 4)
      d.Mtdna.matrix
  in
  Alcotest.(check bool) "valid" true
    (Tree_check.full_check d.Mtdna.matrix r.Pipeline.tree = Ok ());
  Alcotest.(check bool) "fast" true (r.Pipeline.elapsed_s < 30.)

let () =
  Alcotest.run "integration"
    [
      ( "integration",
        [
          Alcotest.test_case "four deployments agree" `Quick
            test_four_deployments_agree;
          Alcotest.test_case "sequences to newick" `Quick
            test_sequences_to_newick_roundtrip;
          Alcotest.test_case "phylip through disk" `Quick
            test_phylip_file_roundtrip_through_disk;
          Alcotest.test_case "true tree recovered" `Quick
            test_true_tree_recovered_on_clean_data;
          Alcotest.test_case "exact beats heuristics" `Quick
            test_exact_beats_heuristics_everywhere;
          Alcotest.test_case "decomposition consistency" `Quick
            test_decomposition_consistent_with_subsolves;
          Alcotest.test_case "grid slower than cluster" `Quick
            test_simulated_grid_slower_than_cluster_same_nodes;
          Alcotest.test_case "parallel pipeline 26 species" `Quick
            test_parallel_pipeline_on_mtdna_26;
        ] );
    ]
