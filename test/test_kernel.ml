(* Differential tests for the incremental expansion kernel: with either
   [kernel] setting the solver must run an observably identical search —
   same trees, same costs, same statistics — on generated matrices of
   every flavour and on the repository's data matrices.  Plus direct
   unit tests of [Kernel.insertions] against [Bb_tree.insertions]. *)

module Dist_matrix = Distmat.Dist_matrix
module Matrix_io = Distmat.Matrix_io
module Gen = Distmat.Gen
module Utree = Ultra.Utree
module Bb_tree = Bnb.Bb_tree
module Kernel = Bnb.Kernel
module Solver = Bnb.Solver
module Stats = Bnb.Stats
module Pipeline = Compactphy.Pipeline
module Run_config = Compactphy.Run_config

let rng seed = Random.State.make [| seed |]

(* The two paths promise bit-identical floats, so compare exactly. *)
let exact_float = Alcotest.(check (float 0.))

let solve_with kernel options dm =
  Solver.solve ~options:{ options with Solver.kernel } dm

(* Run both kernels and require the observable outcome to match field
   by field, stats included. *)
let check_differential name options dm =
  let r = solve_with Solver.Reference options dm in
  let i = solve_with Solver.Incremental options dm in
  exact_float (name ^ ": cost") r.Solver.cost i.Solver.cost;
  Alcotest.(check bool)
    (name ^ ": tree") true
    (Utree.equal r.Solver.tree i.Solver.tree);
  Alcotest.(check bool) (name ^ ": optimal flag") r.Solver.optimal
    i.Solver.optimal;
  let rs = r.Solver.stats and is_ = i.Solver.stats in
  Alcotest.(check int) (name ^ ": expanded") rs.Stats.expanded
    is_.Stats.expanded;
  Alcotest.(check int)
    (name ^ ": generated")
    rs.Stats.generated is_.Stats.generated;
  Alcotest.(check int) (name ^ ": pruned") rs.Stats.pruned is_.Stats.pruned;
  Alcotest.(check int)
    (name ^ ": pruned_33")
    rs.Stats.pruned_33 is_.Stats.pruned_33;
  Alcotest.(check int)
    (name ^ ": ub_updates")
    rs.Stats.ub_updates is_.Stats.ub_updates;
  Alcotest.(check int) (name ^ ": max_open") rs.Stats.max_open
    is_.Stats.max_open;
  Alcotest.(check int)
    (name ^ ": all_optimal count")
    (List.length r.Solver.all_optimal)
    (List.length i.Solver.all_optimal);
  List.iter2
    (fun a b ->
      Alcotest.(check bool) (name ^ ": all_optimal tree") true (Utree.equal a b))
    r.Solver.all_optimal i.Solver.all_optimal

(* --- generated matrices, every flavour --- *)

let generators =
  [
    ("uniform", fun ~rng n -> Gen.uniform_metric ~rng n);
    ("euclidean", fun ~rng n -> Gen.euclidean ~rng n);
    ("clustered", fun ~rng n -> Gen.clustered ~rng ~n_clusters:2 n);
    ("ultrametric", fun ~rng n -> Gen.ultrametric ~rng n);
    ("near-ultrametric", fun ~rng n -> Gen.near_ultrametric ~rng n);
  ]

let test_differential_generated () =
  List.iteri
    (fun gi (gname, gen) ->
      List.iter
        (fun n ->
          let m = gen ~rng:(rng ((10 * gi) + n)) n in
          check_differential
            (Printf.sprintf "%s n=%d" gname n)
            Solver.default_options m)
        [ 5; 8; 11 ])
    generators

let test_differential_option_sweep () =
  let m = Gen.uniform_metric ~rng:(rng 42) 9 in
  let combos =
    [
      ("lb0-dfs", Solver.options ~lb:Solver.LB0 ());
      ("lb1-dfs", Solver.options ~lb:Solver.LB1 ());
      ("lb1-best-first", Solver.options ~search:Solver.Best_first ());
      ("lb0-best-first",
        Solver.options ~lb:Solver.LB0 ~search:Solver.Best_first ());
      ("collect-all", Solver.options ~collect_all:true ());
      ("collect-all-best-first",
        Solver.options ~collect_all:true ~search:Solver.Best_first ());
      ("no-heuristic-ub",
        Solver.options ~initial_ub:Solver.No_heuristic_ub ());
      ("capped", Solver.options ~max_expanded:50 ());
    ]
  in
  List.iter (fun (name, options) -> check_differential name options m) combos

let test_differential_relation33 () =
  (* 3-3 filtering forces the reference fallback for the filtered
     nodes; the mixed paths must still agree. *)
  let m = Gen.near_ultrametric ~rng:(rng 7) 10 in
  List.iter
    (fun (name, mode) ->
      check_differential name (Solver.options ~relation33:mode ()) m)
    [
      ("33-third-only", Solver.Third_only);
      ("33-every-insertion", Solver.Every_insertion);
    ]

let test_incremental_matches_exhaustive () =
  (* Insert species 2..n-1 in every position; the cheapest complete
     realization is the certified optimum. *)
  let m = Gen.uniform_metric ~rng:(rng 3) 7 in
  let n = Dist_matrix.size m in
  let h01 = Dist_matrix.get m 0 1 /. 2. in
  let start = Utree.node h01 (Utree.leaf 0) (Utree.leaf 1) in
  let best = ref infinity in
  let rec go t k =
    if k = n then (if Utree.weight t < !best then best := Utree.weight t)
    else List.iter (fun t' -> go t' (k + 1)) (Bb_tree.insertions m t k)
  in
  go start 2;
  let out = solve_with Solver.Incremental Solver.default_options m in
  Alcotest.(check (float 1e-9)) "exhaustive optimum" !best out.Solver.cost

(* --- data matrices --- *)

let load name =
  (* Under [dune runtest] the cwd is the test directory and the repo's
     data/ sits beside it (see the (deps ...) field of test/dune);
     under [dune exec] from the project root it is ./data. *)
  let candidates =
    [
      Filename.concat ".." (Filename.concat "data" name);
      Filename.concat "data" name;
    ]
  in
  let path =
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> Alcotest.failf "data matrix %s not found" name
  in
  (Matrix_io.of_phylip (Matrix_io.read_file path)).Matrix_io.matrix

let test_differential_hominoids () =
  let m = load "hominoids.phy" in
  check_differential "hominoids dfs" Solver.default_options m;
  check_differential "hominoids best-first"
    (Solver.options ~search:Solver.Best_first ())
    m;
  check_differential "hominoids collect-all"
    (Solver.options ~collect_all:true ())
    m

let test_differential_random20 () =
  let m = load "random20.phy" in
  check_differential "random20 capped"
    (Solver.options ~max_expanded:4_000 ())
    m

let test_differential_mtdna26 () =
  let m = load "mtdna26.phy" in
  check_differential "mtdna26 capped"
    (Solver.options ~max_expanded:2_000 ())
    m

let test_differential_pipeline () =
  (* End-to-end through the compact-set pipeline: flipping the kernel in
     the Run_config must not change the constructed tree. *)
  let m = Gen.clustered ~rng:(rng 12) ~n_clusters:4 20 in
  let run kernel =
    let config =
      Run_config.(
        default
        |> with_solver { Solver.default_options with Solver.kernel })
    in
    Pipeline.with_compact_sets ~config m
  in
  let r = run Solver.Reference and i = run Solver.Incremental in
  exact_float "pipeline cost" r.Pipeline.cost i.Pipeline.cost;
  Alcotest.(check bool)
    "pipeline tree" true
    (Utree.equal r.Pipeline.tree i.Pipeline.tree);
  Alcotest.(check int) "pipeline expanded" r.Pipeline.stats.Stats.expanded
    i.Pipeline.stats.Stats.expanded

(* --- Kernel.insertions against Bb_tree.insertions --- *)

(* A partial minimal realization over species 0..k-1, following the
   first insertion position at every level. *)
let partial_tree m k =
  let t0 =
    Utree.node (Dist_matrix.get m 0 1 /. 2.) (Utree.leaf 0) (Utree.leaf 1)
  in
  let rec go t j =
    if j >= k then t else go (List.hd (Bb_tree.insertions m t j)) (j + 1)
  in
  go t0 2

let test_insertions_unbounded_identical () =
  let m = Gen.uniform_metric ~rng:(rng 5) 10 in
  let kstate = Kernel.prepare m in
  for k = 2 to 9 do
    let t = partial_tree m k in
    let reference = Bb_tree.insertions m t k in
    let survivors, dropped = Kernel.insertions kstate t k ~dthr:infinity in
    Alcotest.(check int) "no drops" 0 dropped;
    Alcotest.(check int) "count" ((2 * k) - 1) (List.length survivors);
    List.iter2
      (fun a b ->
        Alcotest.(check bool) "same tree, same order" true (Utree.equal a b))
      reference survivors
  done

let test_insertions_threshold_exact () =
  (* With a threshold placed strictly between two candidate deltas the
     kernel must keep exactly the reference children below it. *)
  let m = Gen.euclidean ~rng:(rng 6) 9 in
  let kstate = Kernel.prepare m in
  let k = 7 in
  let t = partial_tree m k in
  let w0 = Utree.weight t in
  let reference = Bb_tree.insertions m t k in
  let deltas =
    List.sort compare (List.map (fun c -> Utree.weight c -. w0) reference)
  in
  (* Midpoint between the 3rd and 4th cheapest deltas: far from any
     boundary, so float noise cannot flip a verdict. *)
  let dthr = (List.nth deltas 2 +. List.nth deltas 3) /. 2. in
  let survivors, dropped = Kernel.insertions kstate t k ~dthr in
  let expected =
    List.filter (fun c -> Utree.weight c -. w0 < dthr) reference
  in
  Alcotest.(check int) "kept the cheap ones" (List.length expected)
    (List.length survivors);
  Alcotest.(check int) "accounted for the rest"
    ((2 * k) - 1 - List.length expected)
    dropped;
  List.iter2
    (fun a b -> Alcotest.(check bool) "same survivor" true (Utree.equal a b))
    expected survivors

let test_insertions_conservation () =
  (* Whatever the threshold: survivors + dropped = 2k - 1, and the
     survivors are a subsequence of the reference children. *)
  let m = Gen.near_ultrametric ~rng:(rng 8) 11 in
  let kstate = Kernel.prepare m in
  let k = 9 in
  let t = partial_tree m k in
  let reference = Bb_tree.insertions m t k in
  List.iter
    (fun dthr ->
      let survivors, dropped = Kernel.insertions kstate t k ~dthr in
      Alcotest.(check int) "conservation" ((2 * k) - 1)
        (List.length survivors + dropped);
      let rec subseq xs ys =
        match (xs, ys) with
        | [], _ -> true
        | _, [] -> false
        | x :: xs', y :: ys' ->
            if Utree.equal x y then subseq xs' ys' else subseq xs ys'
      in
      Alcotest.(check bool) "subsequence" true (subseq survivors reference))
    [ 0.; 1.; 5.; 20.; 100.; infinity ]

let test_prepare_row_minima () =
  let m = Gen.uniform_metric ~rng:(rng 9) 12 in
  let n = Dist_matrix.size m in
  let mins = Kernel.row_minima (Kernel.prepare m) in
  Alcotest.(check int) "length" n (Array.length mins);
  for i = 0 to n - 1 do
    let manual = ref infinity in
    for j = 0 to n - 1 do
      if j <> i then manual := Float.min !manual (Dist_matrix.get m i j)
    done;
    exact_float "row minimum" !manual mins.(i)
  done

let test_kind_round_trip () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        "round trip" true
        (Kernel.kind_of_string (Kernel.kind_to_string k) = Some k))
    [ Kernel.Reference; Kernel.Incremental ];
  Alcotest.(check bool)
    "unknown name" true
    (Kernel.kind_of_string "turbo" = None)

let () =
  Alcotest.run "kernel"
    [
      ( "differential",
        [
          Alcotest.test_case "generated matrices" `Quick
            test_differential_generated;
          Alcotest.test_case "option sweep" `Quick
            test_differential_option_sweep;
          Alcotest.test_case "relation 3-3 fallback" `Quick
            test_differential_relation33;
          Alcotest.test_case "matches exhaustive optimum" `Quick
            test_incremental_matches_exhaustive;
          Alcotest.test_case "data: hominoids" `Quick
            test_differential_hominoids;
          Alcotest.test_case "data: random20 (capped)" `Slow
            test_differential_random20;
          Alcotest.test_case "data: mtdna26 (capped)" `Slow
            test_differential_mtdna26;
          Alcotest.test_case "pipeline with compact sets" `Quick
            test_differential_pipeline;
        ] );
      ( "insertions",
        [
          Alcotest.test_case "unbounded = reference" `Quick
            test_insertions_unbounded_identical;
          Alcotest.test_case "threshold keeps exactly the cheap ones" `Quick
            test_insertions_threshold_exact;
          Alcotest.test_case "conservation and order" `Quick
            test_insertions_conservation;
        ] );
      ( "state",
        [
          Alcotest.test_case "row minima" `Quick test_prepare_row_minima;
          Alcotest.test_case "kind round trip" `Quick test_kind_round_trip;
        ] );
    ]
