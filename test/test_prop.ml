(* Property-based tests (see prop_gen.ml for the harness): the paper's
   compact-set definition on the production finder's output, the
   solver's feasibility/ultrametricity contract, and the differential
   promise of the two expansion kernels — each over hundreds of
   generated matrices of mixed flavours. *)

module Dist_matrix = Distmat.Dist_matrix
module Metric = Distmat.Metric
module Compact_sets = Cgraph.Compact_sets
module Utree = Ultra.Utree
module Solver = Bnb.Solver
module Stats = Bnb.Stats

(* The definition, straight from the paper: every distance inside the
   set is strictly smaller than every distance from inside to outside.
   Recomputed here from scratch so the test does not trust
   [Compact_sets.is_compact]. *)
let satisfies_definition m set =
  let n = Dist_matrix.size m in
  let inside = Array.make n false in
  List.iter (fun i -> inside.(i) <- true) set;
  let max_in = ref neg_infinity and min_out = ref infinity in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = Dist_matrix.get m i j in
      if inside.(i) && inside.(j) then max_in := Float.max !max_in d
      else if inside.(i) <> inside.(j) then min_out := Float.min !min_out d
    done
  done;
  !max_in < !min_out

let compact_sets_definition () =
  Prop_gen.check ~name:"compact sets satisfy the definition"
    (Prop_gen.matrix ~min_n:4 ~max_n:14 ())
    (fun m ->
      let n = Dist_matrix.size m in
      List.for_all
        (fun set ->
          let k = List.length set in
          2 <= k && k < n
          && List.sort_uniq compare set = List.sort compare set
          && satisfies_definition m set)
        (Compact_sets.find m))

(* The solver's contract: the returned tree is a feasible ultrametric
   realisation — its leaf-to-leaf distances form an ultrametric that
   dominates the input matrix entrywise — and [cost] is its weight. *)
let solver_output_contract () =
  Prop_gen.check ~name:"solver output is a feasible ultrametric"
    (Prop_gen.matrix ~min_n:4 ~max_n:8 ())
    (fun m ->
      let r = Solver.solve m in
      let t = r.Solver.tree in
      let dt = Utree.to_matrix t in
      let n = Dist_matrix.size m in
      let dominates = ref true in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Dist_matrix.get dt i j +. 1e-9 < Dist_matrix.get m i j then
            dominates := false
        done
      done;
      r.Solver.optimal
      && Utree.is_feasible m t
      && Metric.is_ultrametric ~eps:1e-9 dt
      && !dominates
      && Float.abs (r.Solver.cost -. Utree.weight t) <= 1e-9)

(* The two expansion kernels promise an observably identical search:
   same cost, same tree, same statistics, node for node. *)
let kernel_differential () =
  Prop_gen.check ~name:"reference and incremental kernels agree"
    (Prop_gen.matrix ~min_n:4 ~max_n:9 ())
    (fun m ->
      let solve kernel =
        Solver.solve ~options:{ Solver.default_options with kernel } m
      in
      let r = solve Solver.Reference and i = solve Solver.Incremental in
      r.Solver.cost = i.Solver.cost
      && Utree.equal r.Solver.tree i.Solver.tree
      && r.Solver.optimal = i.Solver.optimal
      && r.Solver.stats.Stats.expanded = i.Solver.stats.Stats.expanded
      && r.Solver.stats.Stats.generated = i.Solver.stats.Stats.generated
      && r.Solver.stats.Stats.pruned = i.Solver.stats.Stats.pruned
      && r.Solver.stats.Stats.ub_updates = i.Solver.stats.Stats.ub_updates
      && r.Solver.stats.Stats.max_open = i.Solver.stats.Stats.max_open)

let () =
  Alcotest.run "prop"
    [
      ( "properties",
        [
          Alcotest.test_case "compact-set definition" `Slow
            compact_sets_definition;
          Alcotest.test_case "solver feasible ultrametric" `Slow
            solver_output_contract;
          Alcotest.test_case "kernel differential" `Slow kernel_differential;
        ] );
    ]
