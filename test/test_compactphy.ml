(* Tests for the compactphy core: decomposition, the end-to-end pipeline,
   and the paper's worked example. *)

module Dist_matrix = Distmat.Dist_matrix
module Gen = Distmat.Gen
module Metric = Distmat.Metric
module Laminar = Cgraph.Laminar
module Utree = Ultra.Utree
module Tree_check = Ultra.Tree_check
module Solver = Bnb.Solver
module Stats = Bnb.Stats
module Decompose = Compactphy.Decompose
module Pipeline = Compactphy.Pipeline
module Run_config = Compactphy.Run_config
module Paper_example = Compactphy.Paper_example

let rng seed = Random.State.make [| seed |]
let check_float = Alcotest.(check (float 1e-6))

(* --- Paper_example --- *)

let test_paper_example_metric () =
  Alcotest.(check bool) "metric" true (Metric.is_metric Paper_example.matrix)

let test_paper_example_compact_sets () =
  Alcotest.(check (list (list int)))
    "compact sets" Paper_example.compact_sets
    (Cgraph.Compact_sets.find Paper_example.matrix)

let test_paper_example_c4_matrix () =
  let deco = Decompose.decompose Paper_example.matrix in
  (* Find the block of C4 = {0,1,2,4}. *)
  let c4 =
    List.find
      (fun (tree, _) -> Laminar.members tree = [ 0; 1; 2; 4 ])
      deco.Decompose.set_blocks
  in
  let _, block = c4 in
  Alcotest.(check bool) "figure 6 matrix" true
    (Dist_matrix.equal block.Decompose.small Paper_example.c4_max_matrix)

(* --- Decompose --- *)

let test_decompose_block_count () =
  let deco = Decompose.decompose Paper_example.matrix in
  (* 4 compact sets + virtual root. *)
  Alcotest.(check int) "blocks" 5 (Decompose.n_blocks deco);
  Alcotest.(check int) "largest block" 2 (Decompose.largest_block deco)

let test_decompose_no_sets () =
  (* Equidistant points: a single root block over all species. *)
  let m = Dist_matrix.init 5 (fun _ _ -> 3.) in
  let deco = Decompose.decompose m in
  Alcotest.(check int) "one block" 1 (Decompose.n_blocks deco);
  Alcotest.(check int) "block size" 5 (Decompose.largest_block deco)

let test_max_linkage_is_metric () =
  (* Max-linkage representative matrices built from a metric are
     metrics. *)
  for seed = 0 to 9 do
    let m = Gen.near_ultrametric ~rng:(rng seed) ~noise:0.25 14 in
    let deco = Decompose.decompose ~linkage:Decompose.Max m in
    Alcotest.(check bool) "root block metric" true
      (Metric.is_metric deco.Decompose.root_block.Decompose.small);
    List.iter
      (fun (_, b) ->
        Alcotest.(check bool) "set block metric" true
          (Metric.is_metric b.Decompose.small))
      deco.Decompose.set_blocks
  done

let test_linkage_ordering () =
  (* Pointwise: Min <= Avg <= Max on every block entry. *)
  let m = Gen.near_ultrametric ~rng:(rng 21) ~noise:0.25 12 in
  let dmax = (Decompose.decompose ~linkage:Decompose.Max m).Decompose.root_block in
  let dmin = (Decompose.decompose ~linkage:Decompose.Min m).Decompose.root_block in
  let davg = (Decompose.decompose ~linkage:Decompose.Avg m).Decompose.root_block in
  Dist_matrix.iter_pairs
    (fun i j dx ->
      let mn = Dist_matrix.get dmin.Decompose.small i j
      and av = Dist_matrix.get davg.Decompose.small i j in
      if not (mn <= av +. 1e-9 && av <= dx +. 1e-9) then
        Alcotest.failf "ordering violated at (%d,%d)" i j)
    dmax.Decompose.small

(* --- Pipeline --- *)

let test_exact_pipeline () =
  let m = Gen.uniform_metric ~rng:(rng 1) 8 in
  let r = Pipeline.exact m in
  Alcotest.(check bool) "optimal" true r.Pipeline.optimal;
  check_float "cost equals solver" (Solver.solve m).Solver.cost r.Pipeline.cost;
  Alcotest.(check int) "one block" 1 r.Pipeline.n_blocks

let test_with_compact_sets_valid_tree () =
  for seed = 0 to 9 do
    let m = Gen.near_ultrametric ~rng:(rng seed) ~noise:0.3 14 in
    let r = Pipeline.with_compact_sets m in
    (match Tree_check.full_check m r.Pipeline.tree with
    | Ok () -> ()
    | Error e ->
        Alcotest.failf "seed %d: invalid tree: %a" seed Tree_check.pp_error e);
    check_float "cost is weight" (Utree.weight r.Pipeline.tree) r.Pipeline.cost
  done

let test_compact_sets_near_optimal_on_structured () =
  (* On clustered (mtDNA-like) data the compact-set tree must stay close
     to the optimum — the paper reports <= 1.5 % on mtDNA and <= 5 % on
     random data. *)
  for seed = 0 to 4 do
    let d = Seqsim.Mtdna.generate ~rng:(rng (40 + seed)) 12 in
    let m = d.Seqsim.Mtdna.matrix in
    let cs = Pipeline.with_compact_sets m in
    let ex = Pipeline.exact m in
    let gap = (cs.Pipeline.cost -. ex.Pipeline.cost) /. ex.Pipeline.cost in
    Alcotest.(check bool) "never cheaper than optimal" true
      (cs.Pipeline.cost >= ex.Pipeline.cost -. 1e-6);
    if gap > 0.10 then
      Alcotest.failf "seed %d: gap %.1f%% too large" seed (gap *. 100.)
  done

let test_exact_ultrametric_input_is_recovered () =
  (* On an exactly ultrametric matrix the decomposition is lossless:
     compact-set blocks mirror the dendrogram, so the result is the
     optimal tree with cost = exact. *)
  let m = Gen.ultrametric ~rng:(rng 8) 12 in
  let cs = Pipeline.with_compact_sets m in
  let ex = Pipeline.exact m in
  check_float "same cost" ex.Pipeline.cost cs.Pipeline.cost

let test_pipeline_parallel_workers () =
  let m = Gen.near_ultrametric ~rng:(rng 9) ~noise:0.2 12 in
  let seqr = Pipeline.with_compact_sets m in
  let parr =
    Pipeline.with_compact_sets
      ~config:Run_config.(default |> with_workers 4)
      m
  in
  check_float "same cost" seqr.Pipeline.cost parr.Pipeline.cost

let check_stats_equal msg (a : Stats.t) (b : Stats.t) =
  let check field va vb =
    Alcotest.(check int) (Printf.sprintf "%s: %s" msg field) va vb
  in
  check "expanded" a.Stats.expanded b.Stats.expanded;
  check "generated" a.Stats.generated b.Stats.generated;
  check "pruned" a.Stats.pruned b.Stats.pruned;
  check "pruned_33" a.Stats.pruned_33 b.Stats.pruned_33;
  check "ub_updates" a.Stats.ub_updates b.Stats.ub_updates;
  check "max_open" a.Stats.max_open b.Stats.max_open

let test_block_workers_deterministic () =
  (* The inter-block scheduler must be invisible in the results: same
     cost and identical summed search statistics for every worker
     count. *)
  let m = Gen.near_ultrametric ~rng:(rng 9) ~noise:0.2 14 in
  let base = Pipeline.with_compact_sets m in
  Alcotest.(check bool) "multi-block decomposition" true
    (base.Pipeline.n_blocks >= 4);
  List.iter
    (fun block_workers ->
      let r =
        Pipeline.with_compact_sets
          ~config:Run_config.(default |> with_block_workers block_workers)
          m
      in
      check_float
        (Printf.sprintf "cost, block_workers=%d" block_workers)
        base.Pipeline.cost r.Pipeline.cost;
      check_stats_equal
        (Printf.sprintf "stats, block_workers=%d" block_workers)
        base.Pipeline.stats r.Pipeline.stats)
    [ 1; 2; 4 ]

let test_manifest_one_entry_per_block () =
  (* Whatever order the pool finishes blocks in, the manifest lists one
     worker entry per solved (>= 2 children) block, in block-id order. *)
  let m = Gen.near_ultrametric ~rng:(rng 9) ~noise:0.2 14 in
  let deco = Decompose.decompose m in
  let solvable id (block : Decompose.block) =
    if List.length block.Decompose.children >= 2 then Some id else None
  in
  let expected =
    List.filter_map Fun.id
      (solvable 0 deco.Decompose.root_block
      :: List.mapi
           (fun i (_, b) -> solvable (i + 1) b)
           deco.Decompose.set_blocks)
  in
  List.iter
    (fun block_workers ->
      let r =
        Pipeline.with_compact_sets
          ~config:Run_config.(default |> with_block_workers block_workers)
          m
      in
      let ids =
        List.map
          (function
            | Obs.Json.Obj fields -> (
                match List.assoc_opt "block" fields with
                | Some (Obs.Json.Int id) -> id
                | _ -> Alcotest.fail "worker entry without block id")
            | _ -> Alcotest.fail "worker entry is not an object")
          (Obs.Report.workers r.Pipeline.report)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "block ids, block_workers=%d" block_workers)
        expected ids)
    [ 1; 4 ]

let test_rejects_bad_worker_counts () =
  let m = Gen.uniform_metric ~rng:(rng 3) 6 in
  let expect_invalid name f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "workers 0" (fun () ->
      Pipeline.with_compact_sets
        ~config:Run_config.(default |> with_workers 0)
        m);
  expect_invalid "block_workers 0" (fun () ->
      Pipeline.with_compact_sets
        ~config:Run_config.(default |> with_block_workers 0)
        m);
  expect_invalid "workers -1" (fun () ->
      Pipeline.with_compact_sets
        ~config:Run_config.(default |> with_workers (-1))
        m);
  expect_invalid "exact workers 0" (fun () ->
      Pipeline.exact ~config:Run_config.(default |> with_workers 0) m);
  expect_invalid "plan budget 0" (fun () ->
      Pipeline.plan_workers ~budget:0 (Decompose.decompose m))

let test_plan_workers_sane () =
  List.iter
    (fun (seed, n) ->
      let m = Gen.near_ultrametric ~rng:(rng seed) ~noise:0.3 n in
      let deco = Decompose.decompose m in
      List.iter
        (fun budget ->
          let bw, sw = Pipeline.plan_workers ~budget deco in
          Alcotest.(check bool) "block_workers >= 1" true (bw >= 1);
          Alcotest.(check bool) "workers >= 1" true (sw >= 1);
          Alcotest.(check bool) "within budget" true (bw * sw <= budget))
        [ 1; 2; 4; 8 ])
    [ (9, 14); (3, 6); (800, 16) ]

let test_all_linkages_give_valid_trees () =
  let m = Gen.near_ultrametric ~rng:(rng 10) ~noise:0.3 13 in
  List.iter
    (fun linkage ->
      let r =
        Pipeline.with_compact_sets
          ~config:Run_config.(default |> with_linkage linkage)
          m
      in
      match Tree_check.full_check m r.Pipeline.tree with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid: %a" Tree_check.pp_error e)
    [ Decompose.Max; Decompose.Min; Decompose.Avg ]

let test_relaxed_pipeline_valid_and_faster_decomposition () =
  for seed = 0 to 4 do
    let m = Gen.uniform_metric ~rng:(rng (800 + seed)) 16 in
    let strict = Pipeline.with_compact_sets m in
    let relaxed =
      Pipeline.with_compact_sets
        ~config:Run_config.(default |> with_relaxation 1.5)
        m
    in
    (match Tree_check.full_check m relaxed.Pipeline.tree with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invalid: %a" Tree_check.pp_error e);
    Alcotest.(check bool) "decomposes at least as much" true
      (relaxed.Pipeline.largest_block <= strict.Pipeline.largest_block)
  done

let test_compare_methods_report () =
  let m = Gen.near_ultrametric ~rng:(rng 11) ~noise:0.2 11 in
  let c = Pipeline.compare_methods m in
  Alcotest.(check bool) "cost increase >= 0" true
    (c.Pipeline.cost_increase_pct >= -1e-6);
  Alcotest.(check bool) "time saved <= 100" true
    (c.Pipeline.time_saved_pct <= 100.)

let test_singleton_matrix () =
  let m = Dist_matrix.create 1 in
  let r = Pipeline.with_compact_sets m in
  check_float "zero cost" 0. r.Pipeline.cost

let test_two_species_pipeline () =
  let m = Dist_matrix.init 2 (fun _ _ -> 8.) in
  let r = Pipeline.with_compact_sets m in
  check_float "cost" 8. r.Pipeline.cost

(* --- qcheck --- *)

let arb_seed_n lo hi =
  QCheck.make
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck.Gen.(pair (int_bound 10_000) (int_range lo hi))

let prop_pipeline_tree_valid =
  QCheck.Test.make ~name:"compact-set tree is always a valid feasible UT"
    ~count:30 (arb_seed_n 2 14) (fun (seed, n) ->
      let m = Gen.near_ultrametric ~rng:(rng seed) ~noise:0.35 n in
      let r = Pipeline.with_compact_sets m in
      match Tree_check.full_check m r.Pipeline.tree with
      | Ok () -> true
      | Error _ -> false)

let prop_pipeline_never_beats_exact =
  QCheck.Test.make ~name:"compact-set cost >= exact cost" ~count:20
    (arb_seed_n 2 10) (fun (seed, n) ->
      let m = Gen.uniform_metric ~rng:(rng seed) n in
      let cs = Pipeline.with_compact_sets m in
      let ex = Pipeline.exact m in
      cs.Pipeline.cost >= ex.Pipeline.cost -. 1e-6)

let prop_blocks_cover_species =
  QCheck.Test.make ~name:"decomposition blocks cover every species once"
    ~count:40 (arb_seed_n 2 20) (fun (seed, n) ->
      let m = Gen.near_ultrametric ~rng:(rng seed) ~noise:0.3 n in
      let deco = Decompose.decompose m in
      let covered =
        List.concat_map Laminar.members
          deco.Decompose.root_block.Decompose.children
      in
      List.sort compare covered = List.init n Fun.id)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "compactphy"
    [
      ( "paper_example",
        [
          Alcotest.test_case "metric" `Quick test_paper_example_metric;
          Alcotest.test_case "compact sets" `Quick
            test_paper_example_compact_sets;
          Alcotest.test_case "figure 6 matrix" `Quick
            test_paper_example_c4_matrix;
        ] );
      ( "decompose",
        [
          Alcotest.test_case "block count" `Quick test_decompose_block_count;
          Alcotest.test_case "no sets" `Quick test_decompose_no_sets;
          Alcotest.test_case "max linkage metric" `Quick
            test_max_linkage_is_metric;
          Alcotest.test_case "linkage ordering" `Quick test_linkage_ordering;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "exact" `Quick test_exact_pipeline;
          Alcotest.test_case "valid trees" `Quick
            test_with_compact_sets_valid_tree;
          Alcotest.test_case "near optimal on mtdna" `Quick
            test_compact_sets_near_optimal_on_structured;
          Alcotest.test_case "ultrametric recovered" `Quick
            test_exact_ultrametric_input_is_recovered;
          Alcotest.test_case "parallel workers" `Quick
            test_pipeline_parallel_workers;
          Alcotest.test_case "block workers deterministic" `Quick
            test_block_workers_deterministic;
          Alcotest.test_case "manifest entry per block" `Quick
            test_manifest_one_entry_per_block;
          Alcotest.test_case "rejects bad worker counts" `Quick
            test_rejects_bad_worker_counts;
          Alcotest.test_case "plan_workers sane" `Quick test_plan_workers_sane;
          Alcotest.test_case "all linkages valid" `Quick
            test_all_linkages_give_valid_trees;
          Alcotest.test_case "relaxed pipeline" `Quick
            test_relaxed_pipeline_valid_and_faster_decomposition;
          Alcotest.test_case "compare report" `Quick test_compare_methods_report;
          Alcotest.test_case "singleton" `Quick test_singleton_matrix;
          Alcotest.test_case "two species" `Quick test_two_species_pipeline;
        ] );
      ( "properties",
        q
          [
            prop_pipeline_tree_valid;
            prop_pipeline_never_beats_exact;
            prop_blocks_cover_species;
          ] );
    ]
