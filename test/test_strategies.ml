(* The pluggable strategy layer's contract:

   - every exploration order (DFS, best-first, hybrid) and every
     branching order reaches the same optimal cost at gap 0, on
     generated matrices of every flavour and on the repository's data
     matrices;
   - DFS with gap 0 and the default branching is bit-identical to the
     historical solver (cost, tree, stats);
   - a gap tolerance eps > 0 keeps the certificate: cost within
     (1 + eps) of the true optimum, recorded certified gap <= eps,
     [optimal = false];
   - checkpoint/resume round-trips under best-first exploration;
   - the frontier, heap and ordered shared pool honour their orders;
   - Run_config validates/serialises the new fields and the pipeline
     manifest records strategy and certified gap. *)

module Dist_matrix = Distmat.Dist_matrix
module Matrix_io = Distmat.Matrix_io
module Gen = Distmat.Gen
module Utree = Ultra.Utree
module Bb_tree = Bnb.Bb_tree
module Strategy = Bnb.Strategy
module Solver = Bnb.Solver
module Stats = Bnb.Stats
module Budget = Bnb.Budget
module Shared_pool = Parbnb.Shared_pool
module Pipeline = Compactphy.Pipeline
module Run_config = Compactphy.Run_config

let rng seed = Random.State.make [| 0x57a7; seed |]
let exact_float = Alcotest.(check (float 0.))

let solve ?(search = Solver.Dfs) ?(branching = Solver.Paper_order)
    ?(gap = 0.) m =
  Solver.solve
    ~options:(Solver.options ~search ~branching ~gap ())
    m

let explorations = [ Solver.Dfs; Solver.Best_first; Solver.Hybrid ]

let branchings =
  [ Solver.Paper_order; Solver.Largest_first; Solver.Residual_lb ]

(* --- same optimum across strategies (property) --- *)

let prop_explorations_same_cost () =
  Prop_gen.check ~count:60 ~name:"explorations agree on the optimum"
    (Prop_gen.matrix ~min_n:4 ~max_n:9 ())
    (fun m ->
      let reference = (solve m).Solver.cost in
      List.for_all
        (fun search ->
          Float.abs ((solve ~search m).Solver.cost -. reference) <= 1e-9)
        explorations)

let prop_branchings_same_cost () =
  Prop_gen.check ~count:60 ~name:"branching orders agree on the optimum"
    (Prop_gen.matrix ~min_n:4 ~max_n:9 ())
    (fun m ->
      let reference = (solve m).Solver.cost in
      List.for_all
        (fun branching ->
          Float.abs ((solve ~branching m).Solver.cost -. reference) <= 1e-9)
        branchings)

(* --- data matrices --- *)

let load name =
  (* Under [dune runtest] the cwd is the test directory and the repo's
     data/ sits beside it (see the (deps ...) field of test/dune);
     under [dune exec] from the project root it is ./data. *)
  let candidates =
    [
      Filename.concat ".." (Filename.concat "data" name);
      Filename.concat "data" name;
    ]
  in
  let path =
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> Alcotest.failf "data matrix %s not found" name
  in
  (Matrix_io.of_phylip (Matrix_io.read_file path)).Matrix_io.matrix

(* The larger data matrices are unendurable uncapped; a leading
   principal submatrix keeps them representative and fast. *)
let truncate m k =
  let k = Int.min k (Dist_matrix.size m) in
  Dist_matrix.init k (fun i j -> Dist_matrix.get m i j)

let data_matrices () =
  [
    ("hominoids", load "hominoids.phy");
    ("mtdna26[12]", truncate (load "mtdna26.phy") 12);
    ("random20[10]", truncate (load "random20.phy") 10);
  ]

let test_data_matrices_same_cost () =
  List.iter
    (fun (name, m) ->
      let reference = (solve m).Solver.cost in
      List.iter
        (fun search ->
          exact_float (name ^ ": exploration cost") reference
            (solve ~search m).Solver.cost)
        explorations;
      List.iter
        (fun branching ->
          exact_float (name ^ ": branching cost") reference
            (solve ~branching m).Solver.cost)
        branchings)
    (data_matrices ())

(* --- DFS + gap 0 is the historical search, decision for decision --- *)

let test_dfs_gap0_bit_identical () =
  for seed = 0 to 4 do
    let m = Gen.uniform_metric ~rng:(rng seed) 9 in
    let a = Solver.solve m in
    let b = solve ~search:Solver.Dfs ~branching:Solver.Paper_order ~gap:0. m in
    exact_float "cost" a.Solver.cost b.Solver.cost;
    Alcotest.(check bool) "tree" true (Utree.equal a.Solver.tree b.Solver.tree);
    Alcotest.(check int) "expanded" a.Solver.stats.Stats.expanded
      b.Solver.stats.Stats.expanded;
    Alcotest.(check int) "pruned" a.Solver.stats.Stats.pruned
      b.Solver.stats.Stats.pruned;
    Alcotest.(check int) "max_open" a.Solver.stats.Stats.max_open
      b.Solver.stats.Stats.max_open;
    exact_float "certified gap" 0. b.Solver.certified_gap
  done

(* --- gap tolerance: certificate and accounting --- *)

let test_gap_certificate () =
  List.iter
    (fun eps ->
      for seed = 0 to 3 do
        let m = Gen.uniform_metric ~rng:(rng (20 + seed)) 10 in
        let opt = (solve m).Solver.cost in
        let r = solve ~gap:eps m in
        Alcotest.(check bool)
          "status Exact" true
          (r.Solver.status = Budget.Exact);
        Alcotest.(check bool) "not flagged optimal" false r.Solver.optimal;
        Alcotest.(check bool)
          (Printf.sprintf "cost %g within (1+%g) of optimum %g" r.Solver.cost
             eps opt)
          true
          (r.Solver.cost <= ((1. +. eps) *. opt) +. 1e-9);
        Alcotest.(check bool)
          "certified gap within tolerance" true
          (r.Solver.certified_gap <= eps +. 1e-12);
        Alcotest.(check bool)
          "lower bound below cost" true
          (r.Solver.lower_bound <= r.Solver.cost +. 1e-9);
        Alcotest.(check bool)
          "expands no more than exact" true
          (r.Solver.stats.Stats.expanded
          <= (solve m).Solver.stats.Stats.expanded)
      done)
    [ 0.05; 0.2 ]

let test_gap_attribution_reason () =
  (* A loose tolerance on a hard matrix must attribute at least one
     prune to the tolerance itself, and never at eps = 0.  The reference
     kernel keeps every pruning decision at the exact check sites (the
     incremental kernel's conservative pre-filter would absorb most of
     them as [Kernel_threshold]). *)
  let m = Gen.uniform_metric ~rng:(rng 31) 11 in
  let solve_ref gap =
    Solver.solve ~options:(Solver.options ~kernel:Solver.Reference ~gap ()) m
  in
  let count (r : Solver.outcome) =
    Obs.Attribution.total r.Solver.stats.Stats.att
      Obs.Attribution.Gap_tolerance
  in
  Alcotest.(check int) "no gap prunes at eps = 0" 0 (count (solve_ref 0.));
  Alcotest.(check bool)
    "gap prunes recorded at eps = 0.2" true
    (count (solve_ref 0.2) > 0)

(* --- checkpoint/resume under best-first --- *)

let test_best_first_resume () =
  let m = Gen.uniform_metric ~rng:(rng 41) 12 in
  let config =
    Run_config.(default |> with_exploration Solver.Best_first)
  in
  let uninterrupted = Pipeline.exact ~config m in
  let budgeted =
    Pipeline.exact ~config:Run_config.(config |> with_max_nodes 10) m
  in
  Alcotest.(check bool)
    "budgeted run interrupted" true
    (budgeted.Pipeline.status <> Budget.Exact);
  match budgeted.Pipeline.checkpoint with
  | None -> Alcotest.fail "interrupted best-first run offered no checkpoint"
  | Some ck ->
      let resumed = Pipeline.exact ~config ~resume:ck m in
      Alcotest.(check bool)
        "resumed run is Exact" true
        (resumed.Pipeline.status = Budget.Exact);
      exact_float "resumed cost = uninterrupted cost"
        uninterrupted.Pipeline.cost resumed.Pipeline.cost

(* --- parallel solver under strategies --- *)

let test_parallel_strategies_same_cost () =
  let m = Gen.uniform_metric ~rng:(rng 51) 11 in
  let reference = (solve m).Solver.cost in
  List.iter
    (fun search ->
      let r =
        Parbnb.Par_bnb.solve
          ~options:(Solver.options ~search ())
          ~n_workers:2 m
      in
      exact_float "parallel cost" reference r.Parbnb.Par_bnb.cost;
      exact_float "parallel certified gap" 0. r.Parbnb.Par_bnb.certified_gap)
    explorations

let test_parallel_gap_certificate () =
  let m = Gen.uniform_metric ~rng:(rng 52) 11 in
  let opt = (solve m).Solver.cost in
  let r =
    Parbnb.Par_bnb.solve ~options:(Solver.options ~gap:0.1 ()) ~n_workers:2 m
  in
  Alcotest.(check bool)
    "parallel gap cost certified" true
    (r.Parbnb.Par_bnb.cost <= (1.1 *. opt) +. 1e-9);
  Alcotest.(check bool)
    "parallel certified gap within tolerance" true
    (r.Parbnb.Par_bnb.certified_gap <= 0.1 +. 1e-12);
  Alcotest.(check bool) "not flagged optimal" false r.Parbnb.Par_bnb.optimal

(* --- frontier / heap / ordered pool units --- *)

let node lb : Bb_tree.node = { tree = Utree.Leaf 0; k = 2; cost = lb; lb }

let test_frontier_dfs_is_lifo () =
  let f = Strategy.Frontier.create Solver.Dfs in
  List.iter (Strategy.Frontier.push f) [ node 1.; node 2.; node 3. ];
  let pops =
    List.init 3 (fun _ ->
        match Strategy.Frontier.pop f with
        | Some n -> n.Bb_tree.lb
        | None -> Alcotest.fail "frontier ran dry")
  in
  Alcotest.(check (list (float 0.))) "LIFO order" [ 3.; 2.; 1. ] pops

let test_frontier_best_first_pops_min () =
  let f = Strategy.Frontier.create Solver.Best_first in
  List.iter (Strategy.Frontier.push f) [ node 5.; node 1.; node 3.; node 2. ];
  let pops =
    List.init 4 (fun _ ->
        match Strategy.Frontier.pop f with
        | Some n -> n.Bb_tree.lb
        | None -> Alcotest.fail "frontier ran dry")
  in
  Alcotest.(check (list (float 0.))) "ascending lb" [ 1.; 2.; 3.; 5. ] pops

let test_frontier_take_worst () =
  let f = Strategy.Frontier.create Solver.Best_first in
  List.iter (Strategy.Frontier.push f) [ node 5.; node 1.; node 3. ];
  (match Strategy.Frontier.take_worst f with
  | Some n -> exact_float "worst lb donated" 5. n.Bb_tree.lb
  | None -> Alcotest.fail "expected a node");
  Alcotest.(check int) "two remain" 2 (Strategy.Frontier.length f)

let test_hybrid_dives_then_best () =
  (* The dive register keeps the most recent push; once it empties the
     heap serves the globally best node. *)
  let f = Strategy.Frontier.create Solver.Hybrid in
  List.iter (Strategy.Frontier.push f) [ node 2.; node 9. ];
  (match Strategy.Frontier.pop f with
  | Some n -> exact_float "dive takes the latest push" 9. n.Bb_tree.lb
  | None -> Alcotest.fail "expected dive node");
  (match Strategy.Frontier.pop f with
  | Some n -> exact_float "then the heap minimum" 2. n.Bb_tree.lb
  | None -> Alcotest.fail "expected heap node")

let test_shared_pool_ordered_take () =
  let pool = Shared_pool.create ~ordered:true ~n_workers:1 () in
  Shared_pool.seed pool [ node 4.; node 1.; node 3. ];
  (match Shared_pool.take pool with
  | Some n -> exact_float "ordered take is min-lb" 1. n.Bb_tree.lb
  | None -> Alcotest.fail "expected a node");
  match Shared_pool.take pool with
  | Some n -> exact_float "then the next-smallest" 3. n.Bb_tree.lb
  | None -> Alcotest.fail "expected a node"

let test_order_children () =
  let leaf = Utree.leaf in
  let mk tree lb : Bb_tree.node = { tree; k = 3; cost = lb; lb } in
  let a = mk (leaf 0) 3. and b = mk (leaf 1) 1. and c = mk (leaf 2) 2. in
  let children = [ a; b; c ] in
  Alcotest.(check bool)
    "paper order is physically unchanged" true
    (Strategy.order_children Strategy.Paper_order ~inserted:3 children
    == children);
  Alcotest.(check (list (float 0.)))
    "residual order is descending lb" [ 3.; 2.; 1. ]
    (List.map
       (fun (n : Bb_tree.node) -> n.Bb_tree.lb)
       (Strategy.order_children Strategy.Residual_lb ~inserted:3 children))

(* --- configuration plumbing --- *)

let test_options_validation () =
  Alcotest.check_raises "negative gap rejected"
    (Invalid_argument "Solver.options: gap = -0.1 (must be >= 0 and finite)")
    (fun () -> ignore (Solver.options ~gap:(-0.1) ()));
  let bad =
    {
      Run_config.default with
      Run_config.solver = { Solver.default_options with Solver.gap = nan };
    }
  in
  Alcotest.(check bool)
    "validate rejects NaN gap" true
    (match Run_config.validate bad with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_config_json_records_strategy () =
  let config =
    Run_config.(
      default
      |> with_exploration Solver.Hybrid
      |> with_branching Solver.Residual_lb
      |> with_gap 0.05)
  in
  let json = Obs.Json.to_string (Run_config.to_json config) in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "config json mentions %s" needle)
        true
        (Astring_contains.contains json needle))
    [ "\"search\":\"hybrid\""; "\"branching\":\"residual_lb\""; "\"gap\":0.05" ]

let test_manifest_records_strategy_and_gap () =
  let m = Gen.uniform_metric ~rng:(rng 61) 8 in
  let r =
    Pipeline.exact
      ~config:Run_config.(default |> with_gap 0.05)
      m
  in
  (match Obs.Report.field r.Pipeline.report "strategy" with
  | Some (Obs.Json.Obj kvs) ->
      Alcotest.(check bool)
        "strategy object has the three keys" true
        (List.mem_assoc "exploration" kvs
        && List.mem_assoc "branching" kvs
        && List.mem_assoc "gap" kvs)
  | _ -> Alcotest.fail "manifest lacks a strategy object");
  match Obs.Report.field r.Pipeline.report "certified_gap" with
  | Some (Obs.Json.Float g) ->
      Alcotest.(check bool) "certified gap within tolerance" true (g <= 0.05)
  | _ -> Alcotest.fail "manifest lacks certified_gap"

let test_strategy_string_roundtrip () =
  List.iter
    (fun e ->
      Alcotest.(check bool)
        "exploration round-trips" true
        (Strategy.exploration_of_string (Strategy.exploration_to_string e)
        = Some e))
    [ Strategy.Dfs; Strategy.Best_first; Strategy.Hybrid ];
  List.iter
    (fun b ->
      Alcotest.(check bool)
        "branching round-trips" true
        (Strategy.branching_of_string (Strategy.branching_to_string b)
        = Some b))
    [ Strategy.Paper_order; Strategy.Largest_first; Strategy.Residual_lb ]

let () =
  Alcotest.run "strategies"
    [
      ( "same_optimum",
        [
          Alcotest.test_case "explorations (generated)" `Quick
            prop_explorations_same_cost;
          Alcotest.test_case "branchings (generated)" `Quick
            prop_branchings_same_cost;
          Alcotest.test_case "data matrices" `Quick
            test_data_matrices_same_cost;
        ] );
      ( "gap_tolerance",
        [
          Alcotest.test_case "dfs gap 0 bit-identical" `Quick
            test_dfs_gap0_bit_identical;
          Alcotest.test_case "certificate holds" `Quick test_gap_certificate;
          Alcotest.test_case "attribution reason" `Quick
            test_gap_attribution_reason;
        ] );
      ( "anytime",
        [
          Alcotest.test_case "best-first checkpoint/resume" `Quick
            test_best_first_resume;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "strategies same cost" `Quick
            test_parallel_strategies_same_cost;
          Alcotest.test_case "gap certificate" `Quick
            test_parallel_gap_certificate;
        ] );
      ( "frontier",
        [
          Alcotest.test_case "dfs is LIFO" `Quick test_frontier_dfs_is_lifo;
          Alcotest.test_case "best-first pops min" `Quick
            test_frontier_best_first_pops_min;
          Alcotest.test_case "take_worst" `Quick test_frontier_take_worst;
          Alcotest.test_case "hybrid dive" `Quick test_hybrid_dives_then_best;
          Alcotest.test_case "ordered shared pool" `Quick
            test_shared_pool_ordered_take;
          Alcotest.test_case "order_children" `Quick test_order_children;
        ] );
      ( "config",
        [
          Alcotest.test_case "validation" `Quick test_options_validation;
          Alcotest.test_case "config json" `Quick
            test_config_json_records_strategy;
          Alcotest.test_case "manifest strategy/gap" `Quick
            test_manifest_records_strategy_and_gap;
          Alcotest.test_case "string round-trips" `Quick
            test_strategy_string_roundtrip;
        ] );
    ]
