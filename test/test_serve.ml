(* The phylo serve daemon under concurrency:

   - N client threads fire overlapping POST /solve requests, several
     sharing the same matrix: every response is the optimal tree for
     its matrix, the shared sub-solves hit the cache (hit rate > 0),
     and the queue-depth gauge is back to 0 once the burst drains;
   - the builtin telemetry endpoints answer while solves run (the
     handler falls through to /metrics and /healthz);
   - malformed requests get structured errors, not hangs;
   - stop drains: a request accepted before shutdown still receives
     its answer, and new requests are refused. *)

module Dist_matrix = Distmat.Dist_matrix
module Matrix_io = Distmat.Matrix_io
module Gen = Distmat.Gen
module Pipeline = Compactphy.Pipeline
module Run_config = Compactphy.Run_config
module Server = Compactphy.Server
module Serve = Obs.Serve
module J = Obs.Json

let rng seed = Random.State.make [| 0x5e7e; seed |]

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "sserve-%d-%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let with_server ?(config = Run_config.default) ?pool_workers f =
  let server = Server.start ~config ?pool_workers () in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Compactphy.Subsolve_cache.uninstall ())
    (fun () ->
      let target =
        match Server.port server with
        | Some p -> Serve.Tcp ("127.0.0.1", p)
        | None -> Alcotest.fail "expected a TCP port"
      in
      f server target)

let unwrap = function
  | Ok v -> v
  | Error e -> Alcotest.failf "request failed: %s" e

let parse_json body =
  match J.of_string body with
  | Ok j -> j
  | Error e -> Alcotest.failf "bad JSON in response %S: %s" body e

let obj_field j k =
  match j with
  | J.Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let solve_req target ?(query = "") m =
  Serve.request ~meth:"POST" ~body:(Matrix_io.to_phylip m) target
    ("/solve" ^ query)

(* --- the concurrency test --- *)

let test_concurrent_burst () =
  let config = Run_config.default |> Run_config.with_cache_dir (fresh_dir ()) in
  with_server ~config ~pool_workers:2 @@ fun server target ->
  (* Three distinct matrices, six requests: every matrix solved twice,
     so block sub-solves repeat across overlapping requests.  Matrices
     go through one PHYLIP round trip first, so the reference solve
     sees exactly the (decimal-rendered) matrix the server receives. *)
  let round_trip m =
    (Matrix_io.of_phylip (Matrix_io.to_phylip m)).Matrix_io.matrix
  in
  let matrices =
    Array.init 3 (fun i ->
        round_trip (Gen.clustered ~rng:(rng i) ~n_clusters:3 (9 + i)))
  in
  let expected =
    Array.map (fun m -> (Pipeline.with_compact_sets m).Pipeline.cost) matrices
  in
  let n_requests = 6 in
  let results = Array.make n_requests (Error "not run") in
  let threads =
    Array.init n_requests (fun i ->
        Thread.create
          (fun () -> results.(i) <- solve_req target matrices.(i mod 3))
          ())
  in
  Array.iter Thread.join threads;
  Array.iteri
    (fun i r ->
      let code, body = unwrap r in
      Alcotest.(check int) (Printf.sprintf "request %d: 200" i) 200 code;
      let j = parse_json body in
      (match obj_field j "cost_hex" with
      | Some (J.String hex) ->
          Alcotest.(check bool)
            (Printf.sprintf "request %d: optimal cost" i)
            true
            (Float.equal (float_of_string hex) expected.(i mod 3))
      | _ -> Alcotest.failf "request %d: no cost_hex in %s" i body);
      match obj_field j "newick" with
      | Some (J.String nwk) ->
          (* The response parses back into a feasible ultrametric tree
             over the matrix's own species names (up to the decimal
             rendering of branch lengths). *)
          let { Matrix_io.names; matrix } =
            Matrix_io.of_phylip (Matrix_io.to_phylip matrices.(i mod 3))
          in
          let tree = Ultra.Newick.of_string ~names nwk in
          Alcotest.(check bool)
            (Printf.sprintf "request %d: feasible tree" i)
            true
            (Ultra.Utree.is_feasible ~eps:1e-6 matrix tree)
      | _ -> Alcotest.failf "request %d: no newick in %s" i body)
    results;
  (* The burst drained: gauge back to zero. *)
  Alcotest.(check int) "queue depth back to 0" 0 (Server.queue_depth server);
  (* Shared sub-solves crossed requests: the cache saw hits. *)
  let code, body = unwrap (Serve.get target "/status") in
  Alcotest.(check int) "/status answers" 200 code;
  let j = parse_json body in
  (match obj_field j "queue_depth" with
  | Some (J.Int 0) -> ()
  | other ->
      Alcotest.failf "queue_depth gauge not 0: %s"
        (match other with Some j -> J.to_string j | None -> "missing"));
  (match Option.bind (obj_field j "cache") (fun c -> obj_field c "hits") with
  | Some (J.Int hits) ->
      Alcotest.(check bool) "cache hit rate > 0" true (hits > 0)
  | _ -> Alcotest.failf "no cache counters in %s" body);
  match obj_field j "completed" with
  | Some (J.Int c) -> Alcotest.(check int) "all requests counted" n_requests c
  | _ -> Alcotest.fail "no completed counter"

(* --- telemetry fall-through --- *)

let test_builtins_still_served () =
  with_server @@ fun _server target ->
  let code, body = unwrap (Serve.get target "/metrics") in
  Alcotest.(check int) "/metrics answers" 200 code;
  Alcotest.(check bool) "queue gauge exported" true
    (Astring_contains.contains body "serve_queue_depth");
  let code, _ = unwrap (Serve.get target "/healthz") in
  Alcotest.(check int) "/healthz answers" 200 code;
  let code, _ = unwrap (Serve.get target "/nonesuch") in
  Alcotest.(check int) "unknown path 404s" 404 code

(* --- structured errors --- *)

let test_bad_requests () =
  with_server @@ fun _server target ->
  let code, body =
    unwrap (Serve.request ~meth:"POST" ~body:"not a matrix" target "/solve")
  in
  Alcotest.(check int) "bad matrix: 400" 400 code;
  (match obj_field (parse_json body) "error" with
  | Some (J.String _) -> ()
  | _ -> Alcotest.failf "no structured error in %s" body);
  let m = Gen.clustered ~rng:(rng 40) ~n_clusters:2 6 in
  let code, _ = unwrap (solve_req target ~query:"?method=quantum" m) in
  Alcotest.(check int) "unknown method: 400" 400 code;
  let code, _ = unwrap (Serve.get target "/solve") in
  Alcotest.(check int) "GET /solve: 405" 405 code;
  let code, body = unwrap (solve_req target ~query:"?method=exact" m) in
  Alcotest.(check int) "exact method accepted" 200 code;
  match obj_field (parse_json body) "n_blocks" with
  | Some (J.Int 1) -> ()
  | _ -> Alcotest.failf "exact run should report one block: %s" body

(* --- request ids --- *)

(* A hand-rolled request, for shapes the minimal client cannot produce
   (custom headers, a missing or lying Content-Length).  Shuts down the
   write side after sending so the server sees EOF instead of waiting
   for a body that never comes. *)
let raw_request target lines =
  match target with
  | Serve.Unix_sock _ -> Alcotest.fail "raw_request wants TCP"
  | Serve.Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          Unix.connect fd
            (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
          let req = String.concat "\r\n" lines in
          ignore (Unix.write_substring fd req 0 (String.length req));
          (try Unix.shutdown fd Unix.SHUTDOWN_SEND with _ -> ());
          let buf = Buffer.create 1024 in
          let chunk = Bytes.create 4096 in
          let rec drain () =
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                drain ()
            | exception Unix.Unix_error _ -> ()
          in
          drain ();
          Buffer.contents buf)

let raw_status resp =
  match String.split_on_char ' ' resp with
  | _ :: code :: _ -> ( try int_of_string code with _ -> -1)
  | _ -> Alcotest.failf "unparseable response %S" resp

let contains = Astring_contains.contains

let test_request_ids () =
  let m = Gen.clustered ~rng:(rng 60) ~n_clusters:2 6 in
  with_server @@ fun _server target ->
  let code, headers, body =
    unwrap
      (Serve.request_full ~meth:"POST" ~body:(Matrix_io.to_phylip m) target
         "/solve")
  in
  Alcotest.(check int) "solve answers" 200 code;
  let rid =
    match List.assoc_opt "x-request-id" headers with
    | Some rid -> rid
    | None -> Alcotest.fail "no X-Request-Id response header"
  in
  Alcotest.(check bool) "minted id shape" true
    (String.length rid > 4 && String.sub rid 0 4 = "req-");
  (match obj_field (parse_json body) "request_id" with
  | Some (J.String jrid) ->
      Alcotest.(check string) "JSON field matches header" rid jrid
  | _ -> Alcotest.failf "no request_id in %s" body);
  (* A sane client-supplied id is honoured verbatim... *)
  let resp =
    raw_request target
      [ "GET /status HTTP/1.1"; "Host: x"; "X-Request-Id: cli-42"; ""; "" ]
  in
  Alcotest.(check bool) "client id echoed" true
    (contains resp "X-Request-Id: cli-42");
  (* ...one with forbidden characters is replaced by a minted one. *)
  let resp =
    raw_request target
      [ "GET /status HTTP/1.1"; "Host: x"; "X-Request-Id: not ok"; ""; "" ]
  in
  Alcotest.(check bool) "bad id replaced" true
    ((not (contains resp "not ok")) && contains resp "X-Request-Id: req-")

(* --- the listener's error paths --- *)

let test_listener_error_paths () =
  let handler ~request_id:_ ~meth:_ ~path ~query:_ ~body =
    match path with
    | "/boom" -> failwith "kaboom"
    | "/echo" ->
        Some (200, "text/plain", Printf.sprintf "%d bytes\n" (String.length body))
    | _ -> None
  in
  let srv = Serve.start ~handler () in
  Fun.protect
    ~finally:(fun () -> Serve.stop srv)
    (fun () ->
      let target = Serve.Tcp ("127.0.0.1", Option.get (Serve.port srv)) in
      (* A handler exception answers a complete 500 response (not a
         reset)... *)
      let code, _ = unwrap (Serve.get target "/boom") in
      Alcotest.(check int) "handler raise -> 500" 500 code;
      (* ...and the listener survives to serve the next request. *)
      let code, body =
        unwrap (Serve.request ~meth:"POST" ~body:"hello" target "/echo")
      in
      Alcotest.(check int) "listener survives" 200 code;
      Alcotest.(check string) "body delivered" "5 bytes\n" body;
      (* A declared Content-Length over the 8 MiB bound is refused with
         413 without the handler ever running (the echo handler would
         have answered 200). *)
      let resp =
        raw_request target
          [ "POST /echo HTTP/1.1"; "Host: x"; "Content-Length: 16777216"; ""; "" ]
      in
      Alcotest.(check int) "oversized declared body -> 413" 413
        (raw_status resp);
      (* A POST with no Content-Length reaches the handler with an empty
         body — no hang waiting for bytes that never come. *)
      let resp = raw_request target [ "POST /echo HTTP/1.1"; "Host: x"; ""; "" ] in
      Alcotest.(check int) "missing length -> 200" 200 (raw_status resp);
      Alcotest.(check bool) "empty body" true (contains resp "0 bytes"))

(* --- shutdown drains in-flight work --- *)

let test_stop_drains () =
  let config = Run_config.default |> Run_config.with_cache_dir (fresh_dir ()) in
  let server = Server.start ~config ~pool_workers:1 () in
  let target =
    match Server.port server with
    | Some p -> Serve.Tcp ("127.0.0.1", p)
    | None -> Alcotest.fail "expected a TCP port"
  in
  (* Several overlapping requests through a one-worker pool, so work
     queues up and stop very likely lands while some are in flight.
     (If the solves outrun the poll below, the drain property is
     exercised trivially — every answer must still arrive either
     way.) *)
  let m = Gen.uniform_metric ~rng:(rng 50) 12 in
  let n_requests = 3 in
  let results = Array.make n_requests (Error "not run") in
  let answered = Atomic.make 0 in
  let clients =
    Array.init n_requests (fun i ->
        Thread.create
          (fun () ->
            results.(i) <- solve_req target m;
            Atomic.incr answered)
          ())
  in
  (* Wait until the server has accepted work (or already answered it
     all, if the solves won the race)... *)
  let deadline = Unix.gettimeofday () +. 10. in
  while
    Server.queue_depth server = 0
    && Atomic.get answered < n_requests
    && Unix.gettimeofday () < deadline
  do
    Thread.yield ()
  done;
  Alcotest.(check bool) "work was accepted" true
    (Server.queue_depth server > 0 || Atomic.get answered > 0);
  (* ...then stop: every accepted request must still be answered. *)
  Server.stop server;
  Compactphy.Subsolve_cache.uninstall ();
  Alcotest.(check int) "drained before stop returned" 0
    (Server.queue_depth server);
  Array.iter Thread.join clients;
  Array.iteri
    (fun i r ->
      let code, body = unwrap r in
      Alcotest.(check int)
        (Printf.sprintf "in-flight request %d answered" i)
        200 code;
      match obj_field (parse_json body) "optimal" with
      | Some (J.Bool _) -> ()
      | _ -> Alcotest.failf "unexpected response %s" body)
    results;
  (* New connections are refused once the listener is down. *)
  match solve_req target m with
  | Error _ -> ()
  | Ok (code, _) ->
      Alcotest.(check int) "post-stop request refused" 503 code

let () =
  Alcotest.run "serve"
    [
      ( "daemon",
        [
          Alcotest.test_case "concurrent burst, cache hits, queue drains"
            `Quick test_concurrent_burst;
          Alcotest.test_case "builtin telemetry still served" `Quick
            test_builtins_still_served;
          Alcotest.test_case "structured errors" `Quick test_bad_requests;
          Alcotest.test_case "request ids minted and echoed" `Quick
            test_request_ids;
          Alcotest.test_case "listener error paths" `Quick
            test_listener_error_paths;
          Alcotest.test_case "stop drains in-flight requests" `Quick
            test_stop_drains;
        ] );
    ]
