(* Tests for the unified Run_config API: defaults behave like the bare
   entry points, validation rejects incoherent configurations, manifest
   strings round-trip (the CLI parsers are built from exactly these),
   and presets round-trip through their string names. *)

module Dist_matrix = Distmat.Dist_matrix
module Gen = Distmat.Gen
module Utree = Ultra.Utree
module Decompose = Compactphy.Decompose
module Solver = Bnb.Solver
module Pipeline = Compactphy.Pipeline
module Run_config = Compactphy.Run_config
module Platform = Clustersim.Platform
module Dist_bnb = Clustersim.Dist_bnb
module Executor = Compactphy.Executor

let rng seed = Random.State.make [| seed |]

let rejects name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

(* --- defaults --- *)

let test_default_fields () =
  let c = Run_config.default in
  Alcotest.(check int) "workers" 1 c.Run_config.workers;
  Alcotest.(check int) "block_workers" 1 c.Run_config.block_workers;
  Alcotest.(check bool) "no relaxation" true (c.Run_config.relaxation = None);
  Alcotest.(check bool) "max linkage" true
    (c.Run_config.linkage = Decompose.Max);
  Alcotest.(check bool) "solver defaults" true
    (c.Run_config.solver = Solver.default_options);
  Alcotest.(check bool) "incremental kernel" true
    (c.Run_config.solver.Solver.kernel = Solver.Incremental);
  Alcotest.(check bool) "local executor" true
    (c.Run_config.executor = Executor.Local);
  Alcotest.(check bool) "no workers_addr" true
    (c.Run_config.workers_addr = None)

let test_default_equals_bare_exact () =
  let m = Gen.uniform_metric ~rng:(rng 1) 9 in
  let a = Pipeline.exact m in
  let b = Pipeline.exact ~config:Run_config.default m in
  Alcotest.(check (float 0.)) "cost" a.Pipeline.cost b.Pipeline.cost;
  Alcotest.(check bool) "tree" true
    (Utree.equal a.Pipeline.tree b.Pipeline.tree)

let test_default_equals_bare_compact () =
  let m = Gen.clustered ~rng:(rng 2) ~n_clusters:3 15 in
  let a = Pipeline.with_compact_sets m in
  let b = Pipeline.with_compact_sets ~config:Run_config.default m in
  Alcotest.(check (float 0.)) "cost" a.Pipeline.cost b.Pipeline.cost;
  Alcotest.(check int) "blocks" a.Pipeline.n_blocks b.Pipeline.n_blocks;
  Alcotest.(check bool) "tree" true
    (Utree.equal a.Pipeline.tree b.Pipeline.tree)

let test_setters_match_record_literal () =
  let m = Gen.clustered ~rng:(rng 3) ~n_clusters:2 12 in
  let a =
    Pipeline.with_compact_sets
      ~config:
        Run_config.(
          default |> with_linkage Decompose.Avg |> with_relaxation 1.1)
      m
  in
  let b =
    Pipeline.with_compact_sets
      ~config:
        {
          Run_config.default with
          Run_config.linkage = Decompose.Avg;
          relaxation = Some 1.1;
        }
      m
  in
  Alcotest.(check (float 0.)) "cost" a.Pipeline.cost b.Pipeline.cost;
  Alcotest.(check int) "blocks" a.Pipeline.n_blocks b.Pipeline.n_blocks

(* --- setters --- *)

let test_setters () =
  let c =
    Run_config.(
      default |> with_workers 3 |> with_block_workers 2
      |> with_linkage Decompose.Min |> with_relaxation 1.5)
  in
  Alcotest.(check int) "workers" 3 c.Run_config.workers;
  Alcotest.(check int) "block_workers" 2 c.Run_config.block_workers;
  Alcotest.(check bool) "linkage" true (c.Run_config.linkage = Decompose.Min);
  Alcotest.(check bool) "relaxation" true
    (c.Run_config.relaxation = Some 1.5);
  let c' =
    Run_config.with_solver (Solver.options ~lb:Solver.LB0 ()) c
  in
  Alcotest.(check bool) "solver swapped" true
    (c'.Run_config.solver.Solver.lb = Solver.LB0);
  Alcotest.(check int) "others untouched" 3 c'.Run_config.workers;
  let c'' =
    Run_config.(
      c' |> with_executor Executor.Tcp |> with_workers_addr "127.0.0.1:0")
  in
  Alcotest.(check bool) "executor swapped" true
    (c''.Run_config.executor = Executor.Tcp);
  Alcotest.(check bool) "addr kept" true
    (c''.Run_config.workers_addr = Some "127.0.0.1:0")

(* --- validation --- *)

let test_validate_accepts_default () =
  let c = Run_config.validate Run_config.default in
  Alcotest.(check bool) "returned unchanged" true (c = Run_config.default)

let test_validate_rejections () =
  let base = Run_config.default in
  rejects "workers < 1" (fun () ->
      Run_config.(validate (with_workers 0 base)));
  rejects "block_workers < 1" (fun () ->
      Run_config.(validate (with_block_workers 0 base)));
  rejects "relaxation < 1" (fun () ->
      Run_config.(validate (with_relaxation 0.5 base)));
  rejects "relaxation nan" (fun () ->
      Run_config.(validate (with_relaxation Float.nan base)));
  rejects "max_expanded <= 0" (fun () ->
      Run_config.validate
        (Run_config.with_solver
           { Solver.default_options with Solver.max_expanded = Some 0 }
           base));
  rejects "tcp without workers_addr" (fun () ->
      Run_config.(validate (with_executor Executor.Tcp base)));
  rejects "unparseable workers_addr" (fun () ->
      Run_config.(
        validate
          (base
          |> with_executor Executor.Tcp
          |> with_workers_addr "not-an-address")));
  (* A parseable address validates, port 0 (ephemeral) included. *)
  ignore
    Run_config.(
      validate
        (base
        |> with_executor Executor.Tcp
        |> with_workers_addr "127.0.0.1:0"))

let test_options_smart_constructor () =
  rejects "Solver.options rejects 0" (fun () ->
      Solver.options ~max_expanded:0 ());
  rejects "re-export rejects 0" (fun () ->
      Run_config.solver_options ~max_expanded:(-3) ());
  let o = Solver.options ~max_expanded:7 ~collect_all:true () in
  Alcotest.(check bool) "cap kept" true (o.Solver.max_expanded = Some 7);
  Alcotest.(check bool) "collect_all kept" true o.Solver.collect_all

let test_pipeline_rejects_invalid_config () =
  let m = Gen.uniform_metric ~rng:(rng 4) 6 in
  rejects "exact" (fun () ->
      Pipeline.exact ~config:Run_config.(with_workers 0 default) m);
  rejects "with_compact_sets" (fun () ->
      Pipeline.with_compact_sets
        ~config:Run_config.(with_relaxation 0.2 default)
        m)

let test_dist_bnb_takes_config () =
  let m = Gen.uniform_metric ~rng:(rng 5) 6 in
  (* ?config works and is validated; the removed legacy [?options] is
     expressed through [with_solver]. *)
  let r = Dist_bnb.run ~config:Run_config.default (Platform.cluster 2) m in
  let s = Pipeline.exact m in
  Alcotest.(check (float 1e-9)) "same optimum" s.Pipeline.cost r.Dist_bnb.cost;
  let r' =
    Dist_bnb.run
      ~config:(Run_config.with_solver Solver.default_options Run_config.default)
      (Platform.cluster 2) m
  in
  Alcotest.(check (float 1e-9)) "with_solver same" r.Dist_bnb.cost
    r'.Dist_bnb.cost;
  Alcotest.(check bool) "stats exposed" true
    (r.Dist_bnb.stats.Bnb.Stats.expanded >= 0);
  rejects "invalid config" (fun () ->
      Dist_bnb.run
        ~config:Run_config.(with_workers 0 default)
        (Platform.cluster 2) m)

(* --- manifest strings --- *)

let test_string_round_trips () =
  let round name to_s of_s all =
    List.iter
      (fun v ->
        Alcotest.(check bool)
          (name ^ " round trip") true
          (of_s (to_s v) = Some v))
      all;
    Alcotest.(check bool) (name ^ " unknown") true (of_s "warp" = None)
  in
  round "lb" Run_config.lb_to_string Run_config.lb_of_string
    [ Solver.LB0; Solver.LB1 ];
  round "mode33" Run_config.mode33_to_string Run_config.mode33_of_string
    [ Solver.Off; Solver.Third_only; Solver.Every_insertion ];
  round "initial_ub" Run_config.initial_ub_to_string
    Run_config.initial_ub_of_string
    [ Solver.Upgmm_ub; Solver.Upgma_ub; Solver.Nj_ub; Solver.No_heuristic_ub ];
  round "search" Run_config.search_to_string Run_config.search_of_string
    [ Solver.Dfs; Solver.Best_first; Solver.Hybrid ];
  round "branching" Run_config.branching_to_string
    Run_config.branching_of_string
    [ Solver.Paper_order; Solver.Largest_first; Solver.Residual_lb ];
  round "linkage" Run_config.linkage_to_string Run_config.linkage_of_string
    [ Decompose.Max; Decompose.Min; Decompose.Avg ];
  round "executor kind" Executor.kind_to_string Executor.kind_of_string
    [ Executor.Local; Executor.Sim; Executor.Tcp ]

let test_parse_addr () =
  Alcotest.(check bool) "host:port" true
    (Executor.parse_addr "10.0.0.1:9000" = Ok ("10.0.0.1", 9000));
  Alcotest.(check bool) ":port" true
    (Executor.parse_addr ":7000" = Ok ("127.0.0.1", 7000));
  Alcotest.(check bool) "bare port" true
    (Executor.parse_addr "7000" = Ok ("127.0.0.1", 7000));
  Alcotest.(check bool) "port 0 ok" true
    (Executor.parse_addr "127.0.0.1:0" = Ok ("127.0.0.1", 0));
  let is_err = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "port out of range" true
    (is_err (Executor.parse_addr "host:70000"));
  Alcotest.(check bool) "garbage" true (is_err (Executor.parse_addr "host:"))

(* --- presets --- *)

let test_preset_round_trip () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        "round trip" true
        (Run_config.preset_of_string (Run_config.preset_to_string p) = Some p))
    [ Run_config.Paper; Run_config.Fast; Run_config.Exhaustive ];
  Alcotest.(check bool)
    "unknown preset" true
    (Run_config.preset_of_string "warp" = None)

let test_preset_contents () =
  let paper = Run_config.of_preset Run_config.Paper in
  Alcotest.(check bool) "paper pins the reference kernel" true
    (paper.Run_config.solver.Solver.kernel = Solver.Reference);
  Alcotest.(check int) "paper is sequential" 1 paper.Run_config.block_workers;
  let fast = Run_config.of_preset Run_config.Fast in
  Alcotest.(check bool) "fast uses the incremental kernel" true
    (fast.Run_config.solver.Solver.kernel = Solver.Incremental);
  Alcotest.(check bool) "fast sizes to the host" true
    (fast.Run_config.block_workers >= 1);
  let ex = Run_config.of_preset Run_config.Exhaustive in
  Alcotest.(check bool) "exhaustive collects all" true
    ex.Run_config.solver.Solver.collect_all;
  Alcotest.(check bool) "exhaustive is best-first" true
    (ex.Run_config.solver.Solver.search = Solver.Best_first);
  (* Every preset must pass its own validation. *)
  List.iter
    (fun p -> ignore (Run_config.validate (Run_config.of_preset p)))
    [ Run_config.Paper; Run_config.Fast; Run_config.Exhaustive ]

let test_preset_paper_matches_seed_search () =
  (* The paper preset must reproduce the default search's result. *)
  let m = Gen.near_ultrametric ~rng:(rng 6) 10 in
  let a =
    Pipeline.exact ~config:(Run_config.of_preset Run_config.Paper) m
  in
  let b = Pipeline.exact m in
  Alcotest.(check (float 0.)) "cost" a.Pipeline.cost b.Pipeline.cost;
  Alcotest.(check bool) "tree" true
    (Utree.equal a.Pipeline.tree b.Pipeline.tree)

(* --- manifest serialisation --- *)

let test_to_json_shape () =
  match Run_config.to_json Run_config.default with
  | Obs.Json.Obj kvs ->
      List.iter
        (fun key ->
          Alcotest.(check bool) (key ^ " present") true (List.mem_assoc key kvs))
        [
          "solver"; "linkage"; "relaxation"; "workers"; "block_workers";
          "executor"; "workers_addr";
        ];
      Alcotest.(check bool) "executor spelled" true
        (List.assoc "executor" kvs = Obs.Json.String "local");
      Alcotest.(check bool) "workers_addr null" true
        (List.assoc "workers_addr" kvs = Obs.Json.Null);
      (match List.assoc "solver" kvs with
      | Obs.Json.Obj solver ->
          Alcotest.(check bool) "kernel recorded" true
            (List.assoc "kernel" solver
            = Obs.Json.String
                (Bnb.Kernel.kind_to_string
                   Run_config.default.Run_config.solver.Solver.kernel))
      | _ -> Alcotest.fail "solver field is not an object")
  | _ -> Alcotest.fail "to_json did not produce an object"

let () =
  Alcotest.run "run_config"
    [
      ( "defaults",
        [
          Alcotest.test_case "field values" `Quick test_default_fields;
          Alcotest.test_case "exact default = explicit" `Quick
            test_default_equals_bare_exact;
          Alcotest.test_case "with_compact_sets default = explicit" `Quick
            test_default_equals_bare_compact;
          Alcotest.test_case "setters = record literal" `Quick
            test_setters_match_record_literal;
          Alcotest.test_case "setters" `Quick test_setters;
        ] );
      ( "validation",
        [
          Alcotest.test_case "accepts default" `Quick
            test_validate_accepts_default;
          Alcotest.test_case "rejections" `Quick test_validate_rejections;
          Alcotest.test_case "Solver.options" `Quick
            test_options_smart_constructor;
          Alcotest.test_case "pipeline propagates" `Quick
            test_pipeline_rejects_invalid_config;
          Alcotest.test_case "dist_bnb takes config" `Quick
            test_dist_bnb_takes_config;
        ] );
      ( "strings",
        [
          Alcotest.test_case "manifest string round trips" `Quick
            test_string_round_trips;
          Alcotest.test_case "executor address parsing" `Quick
            test_parse_addr;
        ] );
      ( "presets",
        [
          Alcotest.test_case "string round trip" `Quick test_preset_round_trip;
          Alcotest.test_case "contents" `Quick test_preset_contents;
          Alcotest.test_case "paper preset matches default search" `Quick
            test_preset_paper_matches_seed_search;
        ] );
      ( "manifest",
        [ Alcotest.test_case "to_json shape" `Quick test_to_json_shape ] );
    ]
