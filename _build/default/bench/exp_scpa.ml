(* Experiments of the APPT 2005 SCPA paper, Figures 10-11: percentage of
   instances where SCPA beats the divide-and-conquer baseline on total
   step size, for uneven and even GEN_BLOCK distributions. *)

module Gen_block = Redistrib.Gen_block
module Message = Redistrib.Message
module Schedule = Redistrib.Schedule

let rng seed = Random.State.make [| 0xD15C0; seed |]

let contest ~seed ~total ~procs ~lo_frac ~hi_frac =
  let src =
    Gen_block.random ~rng:(rng seed) ~total ~procs ~lo_frac ~hi_frac
  in
  let dst =
    Gen_block.random ~rng:(rng (seed + 65537)) ~total ~procs ~lo_frac
      ~hi_frac
  in
  let messages = Message.of_distributions src dst in
  let s = Schedule.total_step_size (Redistrib.Scpa.schedule messages) in
  let d = Schedule.total_step_size (Redistrib.Dca.schedule messages) in
  if s < d then `Scpa else if s > d then `Dca else `Tie

let percentages ~instances ~total ~procs ~lo_frac ~hi_frac =
  let scpa = ref 0 and dca = ref 0 and tie = ref 0 in
  for seed = 0 to instances - 1 do
    match contest ~seed ~total ~procs ~lo_frac ~hi_frac with
    | `Scpa -> incr scpa
    | `Dca -> incr dca
    | `Tie -> incr tie
  done;
  let pct x = 100. *. float_of_int x /. float_of_int instances in
  (pct !scpa, pct !tie, pct !dca)

let by_procs ~instances ~lo_frac ~hi_frac =
  List.map
    (fun procs ->
      let s, t, d =
        percentages ~instances ~total:1_000_000 ~procs ~lo_frac ~hi_frac
      in
      [ Table.d procs; Table.pct s; Table.pct t; Table.pct d ])
    [ 4; 8; 12; 16; 20; 24 ]

let by_total ~instances ~lo_frac ~hi_frac =
  List.map
    (fun total ->
      let s, t, d =
        percentages ~instances ~total ~procs:8 ~lo_frac ~hi_frac
      in
      [
        Printf.sprintf "%dK" (total / 1000);
        Table.pct s;
        Table.pct t;
        Table.pct d;
      ])
    [ 250_000; 500_000; 1_000_000; 2_000_000 ]

let headers = [ "procs / size"; "SCPA better"; "tie"; "DCA better" ]

let fig10 ~quick () =
  let instances = if quick then 40 else 100 in
  Table.print
    ~title:
      "SCPA Fig. 10 — uneven GEN_BLOCK (bounds 0.3-1.5 of average); paper: \
       SCPA better in the large majority of cases"
    ~headers
    (by_procs ~instances ~lo_frac:0.3 ~hi_frac:1.5
    @ by_total ~instances ~lo_frac:0.3 ~hi_frac:1.5)

let fig11 ~quick () =
  let instances = if quick then 40 else 100 in
  Table.print
    ~title:
      "SCPA Fig. 11 — even GEN_BLOCK (bounds 0.7-1.3 of average); paper: \
       SCPA at least 85 % supreme"
    ~headers
    (by_procs ~instances ~lo_frac:0.7 ~hi_frac:1.3
    @ by_total ~instances ~lo_frac:0.7 ~hi_frac:1.3)
