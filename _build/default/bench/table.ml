(* Plain-text table rendering for experiment output, with optional CSV
   tee-ing (set by main via --csv DIR). *)

let csv_target : (string * string) option ref = ref None
(* (directory, experiment id) *)

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv ~headers rows =
  match !csv_target with
  | None -> ()
  | Some (dir, id) ->
      let path = Filename.concat dir (id ^ ".csv") in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc
            (String.concat "," (List.map csv_escape headers) ^ "\n");
          List.iter
            (fun row ->
              output_string oc
                (String.concat "," (List.map csv_escape row) ^ "\n"))
            rows)

let print ~title ~headers rows =
  let ncols = List.length headers in
  let widths = Array.of_list (List.map String.length headers) in
  List.iter
    (fun row ->
      if List.length row <> ncols then invalid_arg "Table.print: ragged row";
      List.iteri
        (fun i cell -> widths.(i) <- Int.max widths.(i) (String.length cell))
        row)
    rows;
  let line c =
    print_string "+";
    Array.iter
      (fun w ->
        print_string (String.make (w + 2) c);
        print_string "+")
      widths;
    print_newline ()
  in
  write_csv ~headers rows;
  let print_row cells =
    print_string "|";
    List.iteri
      (fun i cell ->
        Printf.printf " %-*s |" widths.(i) cell)
      cells;
    print_newline ()
  in
  Printf.printf "\n%s\n" title;
  line '-';
  print_row headers;
  line '=';
  List.iter print_row rows;
  line '-'

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let f4 x = Printf.sprintf "%.4f" x
let f6 x = Printf.sprintf "%.6f" x
let d = string_of_int

let pct x = Printf.sprintf "%.2f%%" x

let seconds x =
  if x < 1e-3 then Printf.sprintf "%.1f us" (x *. 1e6)
  else if x < 1. then Printf.sprintf "%.2f ms" (x *. 1e3)
  else Printf.sprintf "%.3f s" x

let median xs =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
      let n = List.length sorted in
      if n mod 2 = 1 then List.nth sorted (n / 2)
      else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let maximum xs = List.fold_left Float.max neg_infinity xs
