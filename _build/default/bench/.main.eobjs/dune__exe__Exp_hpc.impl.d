bench/exp_hpc.ml: Bnb Clustersim Float Hashtbl List Table Workloads
