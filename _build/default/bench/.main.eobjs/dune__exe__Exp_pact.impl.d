bench/exp_pact.ml: Bnb Compactphy Hashtbl Int List Printf Table Workloads
