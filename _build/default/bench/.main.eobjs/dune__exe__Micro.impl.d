bench/micro.ml: Align Analyze Bechamel Benchmark Bnb Cgraph Clustering Distmat Hashtbl Instance Lazy List Measure Random Redistrib Seqsim Staged String Table Test Time Toolkit Ultra Workloads
