bench/table.ml: Array Filename Float Fun Int List Printf String
