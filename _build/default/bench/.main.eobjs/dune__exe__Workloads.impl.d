bench/workloads.ml: Bnb Distmat Random Seqsim Unix
