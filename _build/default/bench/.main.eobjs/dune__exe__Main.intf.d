bench/main.mli:
