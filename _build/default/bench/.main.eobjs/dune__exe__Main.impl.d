bench/main.ml: Array Exp_ablation Exp_grid Exp_hpc Exp_pact Exp_scpa List Micro Printf Sys Table Unix
