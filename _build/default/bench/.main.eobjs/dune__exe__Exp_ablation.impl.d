bench/exp_ablation.ml: Bnb Cgraph Clustering Compactphy Distmat Float Fun Int List Printf Table Ultra Workloads
