bench/exp_grid.ml: Clustersim Float Hashtbl List Printf Table Workloads
