bench/exp_scpa.ml: List Printf Random Redistrib Table
