(* Bechamel micro-benchmarks of the hot kernels, one Test.make each. *)

open Bechamel
open Toolkit

let mtdna_50 = lazy (Workloads.mtdna ~seed:1 50)
let mtdna_100 = lazy (Workloads.mtdna ~seed:2 100)
let random_20 = lazy (Workloads.random_structured ~seed:3 20)

let messages_16 =
  lazy
    (let rng = Random.State.make [| 99 |] in
     let src =
       Redistrib.Gen_block.random ~rng ~total:1_000_000 ~procs:16
         ~lo_frac:0.3 ~hi_frac:1.5
     in
     let dst =
       Redistrib.Gen_block.random ~rng ~total:1_000_000 ~procs:16
         ~lo_frac:0.3 ~hi_frac:1.5
     in
     Redistrib.Message.of_distributions src dst)

let tree_20 =
  lazy
    (let m = Lazy.force random_20 in
     Clustering.Linkage.upgmm m)

let tests =
  [
    Test.make ~name:"mst/prim-100"
      (Staged.stage (fun () -> Cgraph.Mst.prim (Lazy.force mtdna_100)));
    Test.make ~name:"mst/kruskal-100"
      (Staged.stage (fun () ->
           Cgraph.Mst.kruskal
             (Cgraph.Wgraph.complete_of_matrix (Lazy.force mtdna_100))));
    Test.make ~name:"compact-sets/fast-100"
      (Staged.stage (fun () -> Cgraph.Compact_sets.find (Lazy.force mtdna_100)));
    Test.make ~name:"compact-sets/naive-50"
      (Staged.stage (fun () ->
           Cgraph.Compact_sets.find_naive (Lazy.force mtdna_50)));
    Test.make ~name:"clustering/upgmm-100"
      (Staged.stage (fun () -> Clustering.Linkage.upgmm (Lazy.force mtdna_100)));
    Test.make ~name:"clustering/nj-50"
      (Staged.stage (fun () ->
           Clustering.Nj.rooted_topology (Lazy.force mtdna_50)));
    Test.make ~name:"bnb/insertions-20"
      (Staged.stage (fun () ->
           Bnb.Bb_tree.insertions (Lazy.force random_20) (Lazy.force tree_20)
             19));
    Test.make ~name:"bnb/maxmin-permutation-100"
      (Staged.stage (fun () ->
           Distmat.Permutation.maxmin (Lazy.force mtdna_100)));
    Test.make ~name:"ultra/minimal-realization-20"
      (Staged.stage (fun () ->
           Ultra.Utree.minimal_realization (Lazy.force random_20)
             (Lazy.force tree_20)));
    Test.make ~name:"relation33/count-20"
      (Staged.stage (fun () ->
           Bnb.Relation33.count_contradictions (Lazy.force random_20)
             (Lazy.force tree_20)));
    Test.make ~name:"redistrib/scpa-16procs"
      (Staged.stage (fun () ->
           Redistrib.Scpa.schedule (Lazy.force messages_16)));
    Test.make ~name:"redistrib/dca-16procs"
      (Staged.stage (fun () -> Redistrib.Dca.schedule (Lazy.force messages_16)));
    Test.make ~name:"align/pairwise-300bp"
      (Staged.stage
         (let pair =
            lazy
              (let rng = Random.State.make [| 21 |] in
               ( Seqsim.Dna.random ~rng 300,
                 Seqsim.Dna.random ~rng 300 ))
          in
          fun () ->
            let a, b = Lazy.force pair in
            Align.Pairwise.align a b));
    Test.make ~name:"align/msa-8x120bp"
      (Staged.stage
         (let seqs =
            lazy
              (let rng = Random.State.make [| 22 |] in
               let t = Seqsim.Clock_tree.coalescent ~rng 8 in
               Seqsim.Evolve.sequences_with_indels ~rng ~mu:0.2
                 ~indel_rate:0.03 ~sites:120 t)
          in
          fun () -> Align.Msa.align (Lazy.force seqs)));
    Test.make ~name:"seqsim/jc-matrix-20x600"
      (Staged.stage
         (let seqs =
            lazy
              (let rng = Random.State.make [| 5 |] in
               let t = Seqsim.Clock_tree.coalescent ~rng 20 in
               Seqsim.Evolve.sequences ~rng ~mu:0.15 ~sites:600 t)
          in
          fun () -> Seqsim.Distance.matrix (Lazy.force seqs)));
  ]

let run () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let grouped = Test.make_grouped ~name:"kernels" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_newline ();
  print_endline "Bechamel micro-benchmarks (monotonic clock per run):";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some [ x ] -> Table.seconds (x *. 1e-9)
        | Some _ | None -> "n/a"
      in
      let name =
        match String.index_opt name ' ' with
        | Some i -> String.sub name (i + 1) (String.length name - i - 1)
        | None -> name
      in
      rows := [ name; estimate ] :: !rows)
    results;
  Table.print ~title:"" ~headers:[ "kernel"; "time / run" ]
    (List.sort compare !rows)
