(* Experiments of the NCS 2005 grid paper: single machine vs PC cluster
   vs computational grid (Tables 3-6 / Figures 4-7), on the simulator. *)

module Platform = Clustersim.Platform
module Dist_bnb = Clustersim.Dist_bnb

let budget = 6_000_000

(* The paper's three environments: a single node, the lab's 16-node
   cluster, and a UniGrid allocation of 12 (slower) + 4 nodes; plus the
   24-node grid of Table 6. *)
(* Per the report, the grid's machines were better than the ageing lab
   cluster's, which is why grid-16 kept up despite WAN latency. *)
let single = Platform.single ()
let cluster16 = Platform.cluster 16
let grid16 = Platform.grid ~sites:[ (12, 2_900.); (4, 2_400.) ]
let grid24 = Platform.grid ~sites:[ (12, 2_900.); (12, 2_400.) ]

let cache : (bool, (int * float list * float list * float list) list) Hashtbl.t
    =
  Hashtbl.create 2

let measurements ~quick =
  match Hashtbl.find_opt cache quick with
  | Some r -> r
  | None ->
      let sizes = if quick then [ 12; 14 ] else [ 12; 14; 16; 18 ] in
      let datasets = if quick then 3 else 8 in
      let r =
        List.map
          (fun n ->
            let runs =
              List.init datasets (fun seed ->
                  let m = Workloads.mtdna ~seed:(seed + (77 * n)) n in
                  let t p =
                    match Dist_bnb.run ~max_expansions:budget p m with
                    | r -> r.Dist_bnb.makespan
                    | exception Failure _ -> nan
                  in
                  (t single, t cluster16, t grid16))
            in
            let keep f = List.filter Float.is_finite (List.map f runs) in
            ( n,
              keep (fun (a, _, _) -> a),
              keep (fun (_, b, _) -> b),
              keep (fun (_, _, c) -> c) ))
          sizes
      in
      Hashtbl.replace cache quick r;
      r

let stat_table title stat ~quick =
  Table.print ~title
    ~headers:[ "species"; "single"; "cluster-16"; "grid-16" ]
    (List.map
       (fun (n, s, c, g) ->
         [
           Table.d n;
           Table.seconds (stat s);
           Table.seconds (stat c);
           Table.seconds (stat g);
         ])
       (measurements ~quick))

let table3 ~quick () =
  stat_table
    "NCS Table 3 / Fig. 4 — median computing time (virtual s): single vs \
     cluster vs grid (paper: single worst; cluster and grid comparable)"
    Table.median ~quick

let table4 ~quick () =
  stat_table "NCS Table 4 / Fig. 5 — mean computing time" Table.mean ~quick

let table5 ~quick () =
  stat_table "NCS Table 5 / Fig. 6 — worst-case computing time" Table.maximum
    ~quick

let table6 ~quick () =
  (* Fixed-size datasets across the three parallel environments; the
     paper's point: grid-16 is no better than cluster-16, but grid-24
     pulls ahead. *)
  (* Long-running searches, where extra nodes pay off (the paper's
     table-6 datasets ran for minutes to hours). *)
  let n = if quick then 14 else 16 in
  let datasets = if quick then 4 else 8 in
  let rows =
    List.init datasets (fun seed ->
        let m = Workloads.random_structured ~seed:(seed + 4242) n in
        let t p =
          match Dist_bnb.run ~max_expansions:budget p m with
          | r -> r.Dist_bnb.makespan
          | exception Failure _ -> nan
        in
        [
          Table.d (seed + 1);
          Table.seconds (t cluster16);
          Table.seconds (t grid16);
          Table.seconds (t grid24);
        ])
  in
  Table.print
    ~title:
      (Printf.sprintf
         "NCS Table 6 / Fig. 7 — cluster-16 vs grid-16 vs grid-24, %d \
          species (paper: grid-24 wins)"
         n)
    ~headers:[ "data set"; "cluster-16"; "grid-16"; "grid-24" ]
    rows
