type named = { names : string array; matrix : Dist_matrix.t }

let default_names n = Array.init n (Printf.sprintf "s%d")

let check_names n names =
  if Array.length names <> n then
    invalid_arg "Matrix_io: wrong number of names";
  Array.iter
    (fun s ->
      if s = "" || String.exists (fun c -> c = ' ' || c = '\t' || c = '\n') s
      then invalid_arg "Matrix_io: species names must be non-empty words")
    names

let to_phylip ?names m =
  let n = Dist_matrix.size m in
  let names =
    match names with
    | None -> default_names n
    | Some ns ->
        check_names n ns;
        ns
  in
  let buf = Buffer.create (n * n * 12) in
  Buffer.add_string buf (string_of_int n);
  Buffer.add_char buf '\n';
  for i = 0 to n - 1 do
    Buffer.add_string buf names.(i);
    for j = 0 to n - 1 do
      Buffer.add_string buf
        (Printf.sprintf " %.9g" (Dist_matrix.get m i j))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let of_phylip text =
  let tokens_of_line line =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  in
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> tokens_of_line l <> [])
  in
  match lines with
  | [] -> failwith "Matrix_io.of_phylip: empty input"
  | header :: rows -> (
      let n =
        match tokens_of_line header with
        | [ count ] -> (
            match int_of_string_opt count with
            | Some n when n > 0 -> n
            | _ -> failwith "Matrix_io.of_phylip: bad species count")
        | _ -> failwith "Matrix_io.of_phylip: bad header line"
      in
      if List.length rows <> n then
        failwith
          (Printf.sprintf "Matrix_io.of_phylip: expected %d rows, got %d" n
             (List.length rows));
      let names = Array.make n "" in
      let raw = Array.make_matrix n n 0. in
      (* Square rows carry n entries each; lower-triangular row i
         carries i entries.  Detect from the first row. *)
      let lower_triangular =
        match tokens_of_line (List.hd rows) with
        | [ _name ] -> true
        | _ -> false
      in
      let parse_cell i cell =
        match float_of_string_opt cell with
        | Some d -> d
        | None ->
            failwith
              (Printf.sprintf "Matrix_io.of_phylip: bad number %S in row %d"
                 cell i)
      in
      List.iteri
        (fun i line ->
          let expected = if lower_triangular then i else n in
          match tokens_of_line line with
          | name :: cells when List.length cells = expected ->
              names.(i) <- name;
              List.iteri
                (fun j cell ->
                  let d = parse_cell i cell in
                  raw.(i).(j) <- d;
                  if lower_triangular then raw.(j).(i) <- d)
                cells
          | _ ->
              failwith
                (Printf.sprintf
                   "Matrix_io.of_phylip: row %d must be a name and %d values"
                   i expected))
        rows;
      match Dist_matrix.of_rows raw with
      | m -> { names; matrix = m }
      | exception Invalid_argument msg ->
          failwith ("Matrix_io.of_phylip: " ^ msg))

let to_phylip_lower ?names m =
  let n = Dist_matrix.size m in
  let names =
    match names with
    | None -> default_names n
    | Some ns ->
        check_names n ns;
        ns
  in
  let buf = Buffer.create (n * n * 6) in
  Buffer.add_string buf (string_of_int n);
  Buffer.add_char buf '\n';
  for i = 0 to n - 1 do
    Buffer.add_string buf names.(i);
    for j = 0 to i - 1 do
      Buffer.add_string buf (Printf.sprintf " %.9g" (Dist_matrix.get m i j))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let to_csv ?names m =
  let n = Dist_matrix.size m in
  let names =
    match names with
    | None -> default_names n
    | Some ns ->
        check_names n ns;
        ns
  in
  let buf = Buffer.create (n * n * 12) in
  Buffer.add_string buf "species";
  Array.iter
    (fun name ->
      Buffer.add_char buf ',';
      Buffer.add_string buf name)
    names;
  Buffer.add_char buf '\n';
  for i = 0 to n - 1 do
    Buffer.add_string buf names.(i);
    for j = 0 to n - 1 do
      Buffer.add_string buf
        (Printf.sprintf ",%.6g" (Dist_matrix.get m i j))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
