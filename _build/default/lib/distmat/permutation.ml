type t = int array

let of_array a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.iter
    (fun x ->
      if x < 0 || x >= n || seen.(x) then
        invalid_arg "Permutation.of_array: not a permutation";
      seen.(x) <- true)
    a;
  Array.copy a

let identity n = Array.init n (fun i -> i)

let maxmin m =
  let n = Dist_matrix.size m in
  if n = 1 then [| 0 |]
  else begin
    let i0, j0 = Dist_matrix.farthest_pair m in
    let order = Array.make n 0 in
    order.(0) <- i0;
    order.(1) <- j0;
    let placed = Array.make n false in
    placed.(i0) <- true;
    placed.(j0) <- true;
    (* [min_to_placed.(x)] = min distance from x to the placed prefix,
       maintained incrementally so the whole loop is O(n^2). *)
    let min_to_placed =
      Array.init n (fun x ->
          Float.min (Dist_matrix.get m x i0) (Dist_matrix.get m x j0))
    in
    for rank = 2 to n - 1 do
      let best = ref (-1) in
      for x = 0 to n - 1 do
        if
          (not placed.(x))
          && (!best < 0 || min_to_placed.(x) > min_to_placed.(!best))
        then best := x
      done;
      let x = !best in
      order.(rank) <- x;
      placed.(x) <- true;
      for y = 0 to n - 1 do
        if not placed.(y) then
          min_to_placed.(y) <-
            Float.min min_to_placed.(y) (Dist_matrix.get m y x)
      done
    done;
    order
  end

let is_maxmin m p =
  let n = Dist_matrix.size m in
  Array.length p = n
  &&
  if n <= 1 then true
  else begin
    let dmax = Dist_matrix.get m p.(0) p.(1) in
    let fi, fj = Dist_matrix.farthest_pair m in
    let global_max = Dist_matrix.get m fi fj in
    let min_to_prefix rank x =
      let best = ref infinity in
      for r = 0 to rank - 1 do
        best := Float.min !best (Dist_matrix.get m x p.(r))
      done;
      !best
    in
    let ok = ref (dmax = global_max) in
    for rank = 2 to n - 1 do
      let chosen = min_to_prefix rank p.(rank) in
      for later = rank + 1 to n - 1 do
        if min_to_prefix rank p.(later) > chosen then ok := false
      done
    done;
    !ok
  end

let apply m p =
  Dist_matrix.init (Dist_matrix.size m) (fun a b ->
      Dist_matrix.get m p.(a) p.(b))

let inverse p =
  let inv = Array.make (Array.length p) 0 in
  Array.iteri (fun rank x -> inv.(x) <- rank) p;
  inv

let to_array p = Array.copy p
