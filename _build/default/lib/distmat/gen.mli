(** Random distance-matrix generators.

    All generators take an explicit [Random.State.t] so experiments are
    reproducible from a seed.  The paper's random workload draws entries
    uniformly from [0, 100] — {!uniform_metric} reproduces it (with a
    Floyd-Warshall repair pass so the result is a metric, which the
    branch-and-bound algorithms require). *)

val uniform_metric :
  rng:Random.State.t -> ?lo:float -> ?hi:float -> int -> Dist_matrix.t
(** [uniform_metric ~rng n] draws each entry uniformly from [[lo, hi]]
    (defaults 1..100) and closes the result under shortest paths so the
    triangle inequality holds.  @raise Invalid_argument if [n < 2] or
    [lo <= 0.] or [hi <= lo]. *)

val euclidean :
  rng:Random.State.t -> ?dim:int -> ?scale:float -> int -> Dist_matrix.t
(** Distances between [n] uniform random points in a [dim]-dimensional cube
    of side [scale] (defaults 3 and 100.).  Always a metric. *)

val clustered :
  rng:Random.State.t ->
  ?dim:int ->
  ?spread:float ->
  ?separation:float ->
  n_clusters:int ->
  int ->
  Dist_matrix.t
(** [clustered ~rng ~n_clusters n]: [n] points split evenly among
    [n_clusters] well-separated centers ([separation], default 100.) with
    intra-cluster noise [spread] (default 5.).  With
    [separation >> spread] every cluster is a compact set, giving the
    structured workload where the paper's decomposition shines. *)

val ultrametric :
  rng:Random.State.t -> ?height:float -> int -> Dist_matrix.t
(** A random exact ultrametric on [n] species: a random binary merge order
    with increasing merge heights up to [height] (default 100.).
    Satisfies {!Metric.is_ultrametric}. *)

val near_ultrametric :
  rng:Random.State.t -> ?height:float -> ?noise:float -> int -> Dist_matrix.t
(** {!ultrametric} with multiplicative noise of relative amplitude [noise]
    (default 0.1) and a shortest-path repair.  Mimics distance matrices
    derived from real clock-like sequence data (e.g. human mitochondrial
    DNA), which are close to — but not exactly — ultrametric. *)
