(** Metric and ultrametric predicates on distance matrices.

    Definitions follow the companion paper (HPCAsia 2005, Defs. 1-3):
    a matrix is a {e metric} when distances obey the triangle inequality,
    and an {e ultrametric} when [M(i,j) <= max (M(i,k)) (M(j,k))] for all
    triples (the three-point condition). *)

type violation = { i : int; j : int; k : int; slack : float }
(** A triple witnessing a failed inequality; [slack] is the (positive)
    amount by which the inequality is violated. *)

val is_symmetric : Dist_matrix.t -> bool
(** Always true for {!Dist_matrix.t} values built through the API; exposed
    for matrices reconstructed from raw rows in tests. *)

val is_metric : ?eps:float -> Dist_matrix.t -> bool
(** [is_metric m] holds when [m i j +. m j k >= m i k -. eps] for all
    triples [i, j, k] (default [eps = 1e-9]). *)

val metric_violations :
  ?eps:float -> ?limit:int -> Dist_matrix.t -> violation list
(** Up to [limit] (default 10) triangle-inequality violations, worst
    first. *)

val is_ultrametric : ?eps:float -> Dist_matrix.t -> bool
(** Three-point condition: every triple's two largest distances are equal
    (within [eps], default [1e-9]). *)

val ultrametric_violations :
  ?eps:float -> ?limit:int -> Dist_matrix.t -> violation list

val floyd_warshall : Dist_matrix.t -> Dist_matrix.t
(** Shortest-path (metric) closure of the matrix, viewing it as a complete
    weighted graph.  The result always satisfies [is_metric]; entries can
    only decrease.  Used to repair randomly generated matrices. *)

val subdominant_ultrametric : Dist_matrix.t -> Dist_matrix.t
(** The maximal ultrametric pointwise below [m]: the single-linkage
    (minimax-path) closure.  Classic construction used as a reference in
    tests: the result is always an ultrametric below the input. *)
