lib/distmat/matrix_io.mli: Dist_matrix
