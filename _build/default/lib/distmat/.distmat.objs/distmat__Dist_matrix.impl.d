lib/distmat/dist_matrix.ml: Array Float Format Printf
