lib/distmat/dist_matrix.mli: Format
