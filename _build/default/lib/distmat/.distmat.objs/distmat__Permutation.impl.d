lib/distmat/permutation.ml: Array Dist_matrix Float
