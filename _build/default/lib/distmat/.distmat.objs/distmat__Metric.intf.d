lib/distmat/metric.mli: Dist_matrix
