lib/distmat/permutation.mli: Dist_matrix
