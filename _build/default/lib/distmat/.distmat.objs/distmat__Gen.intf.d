lib/distmat/gen.mli: Dist_matrix Random
