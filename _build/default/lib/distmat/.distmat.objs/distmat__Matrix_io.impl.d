lib/distmat/matrix_io.ml: Array Buffer Dist_matrix Fun List Printf String
