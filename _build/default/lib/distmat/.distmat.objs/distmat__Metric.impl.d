lib/distmat/metric.ml: Dist_matrix Float List
