lib/distmat/gen.ml: Array Dist_matrix List Metric Random
