let uniform_metric ~rng ?(lo = 1.) ?(hi = 100.) n =
  if n < 2 then invalid_arg "Gen.uniform_metric: need n >= 2";
  if lo <= 0. || hi <= lo then
    invalid_arg "Gen.uniform_metric: need 0 < lo < hi";
  let raw =
    Dist_matrix.init n (fun _ _ -> lo +. Random.State.float rng (hi -. lo))
  in
  Metric.floyd_warshall raw

let random_points ~rng ~dim ~scale n =
  Array.init n (fun _ ->
      Array.init dim (fun _ -> Random.State.float rng scale))

let euclidean_dist p q =
  let acc = ref 0. in
  Array.iteri (fun k x -> acc := !acc +. ((x -. q.(k)) ** 2.)) p;
  sqrt !acc

let euclidean ~rng ?(dim = 3) ?(scale = 100.) n =
  if n < 2 then invalid_arg "Gen.euclidean: need n >= 2";
  if dim < 1 then invalid_arg "Gen.euclidean: need dim >= 1";
  let pts = random_points ~rng ~dim ~scale n in
  Dist_matrix.init n (fun i j -> euclidean_dist pts.(i) pts.(j))

let clustered ~rng ?(dim = 3) ?(spread = 5.) ?(separation = 100.) ~n_clusters
    n =
  if n < 2 then invalid_arg "Gen.clustered: need n >= 2";
  if n_clusters < 1 || n_clusters > n then
    invalid_arg "Gen.clustered: need 1 <= n_clusters <= n";
  let centers = random_points ~rng ~dim ~scale:separation n_clusters in
  let pts =
    Array.init n (fun i ->
        let c = centers.(i mod n_clusters) in
        Array.map (fun x -> x +. Random.State.float rng spread) c)
  in
  Dist_matrix.init n (fun i j -> euclidean_dist pts.(i) pts.(j))

let ultrametric ~rng ?(height = 100.) n =
  if n < 2 then invalid_arg "Gen.ultrametric: need n >= 2";
  (* Random agglomeration: repeatedly merge two random clusters at a
     strictly increasing height; d(i,j) = 2 * merge height of the clusters
     separating i and j.  Strict increase keeps the result a genuine
     ultrametric with distinct levels. *)
  let m = Dist_matrix.create n in
  let clusters = ref (List.init n (fun i -> [ i ])) in
  let level = ref 0. in
  let step = height /. float_of_int n in
  while List.length !clusters > 1 do
    let len = List.length !clusters in
    let a = Random.State.int rng len in
    let b =
      let b = Random.State.int rng (len - 1) in
      if b >= a then b + 1 else b
    in
    level := !level +. (step *. (0.5 +. Random.State.float rng 1.));
    let ca = List.nth !clusters a and cb = List.nth !clusters b in
    List.iter
      (fun i -> List.iter (fun j -> Dist_matrix.set m i j (2. *. !level)) cb)
      ca;
    clusters :=
      (ca @ cb)
      :: List.filteri (fun idx _ -> idx <> a && idx <> b) !clusters
  done;
  m

let near_ultrametric ~rng ?height ?(noise = 0.1) n =
  let base = ultrametric ~rng ?height n in
  let jittered =
    Dist_matrix.init n (fun i j ->
        let d = Dist_matrix.get base i j in
        d *. (1. +. ((Random.State.float rng 2. -. 1.) *. noise)))
  in
  Metric.floyd_warshall jittered
