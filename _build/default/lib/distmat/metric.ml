type violation = { i : int; j : int; k : int; slack : float }

let is_symmetric _ = true
(* Symmetry is a representation invariant of Dist_matrix; this predicate
   documents the fact and keeps the checking API uniform. *)

let fold_triples f acc m =
  let n = Dist_matrix.size m in
  let acc = ref acc in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      for k = 0 to n - 1 do
        if k <> i && k <> j then acc := f !acc i j k
      done
    done
  done;
  !acc

let triangle_slack m i j k =
  (* How badly [d(i,j) <= d(i,k) + d(k,j)] fails (positive = violated). *)
  Dist_matrix.get m i j -. (Dist_matrix.get m i k +. Dist_matrix.get m k j)

let is_metric ?(eps = 1e-9) m =
  fold_triples (fun ok i j k -> ok && triangle_slack m i j k <= eps) true m

let sorted_violations slack_fn ?(eps = 1e-9) ?(limit = 10) m =
  let all =
    fold_triples
      (fun acc i j k ->
        let slack = slack_fn m i j k in
        if slack > eps then { i; j; k; slack } :: acc else acc)
      [] m
  in
  let sorted =
    List.sort (fun a b -> Float.compare b.slack a.slack) all
  in
  List.filteri (fun idx _ -> idx < limit) sorted

let metric_violations ?eps ?limit m =
  sorted_violations triangle_slack ?eps ?limit m

let three_point_slack m i j k =
  (* For an ultrametric the two largest of d(i,j), d(i,k), d(j,k) are
     equal; the slack is the gap between the largest and the middle one. *)
  let a = Dist_matrix.get m i j
  and b = Dist_matrix.get m i k
  and c = Dist_matrix.get m j k in
  let hi = Float.max a (Float.max b c) in
  let mid = a +. b +. c -. hi -. Float.min a (Float.min b c) in
  hi -. mid

let is_ultrametric ?(eps = 1e-9) m =
  fold_triples (fun ok i j k -> ok && three_point_slack m i j k <= eps) true m

let ultrametric_violations ?eps ?limit m =
  sorted_violations three_point_slack ?eps ?limit m

let floyd_warshall m =
  let n = Dist_matrix.size m in
  let d = Dist_matrix.copy m in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let via = Dist_matrix.get d i k +. Dist_matrix.get d k j in
        if via < Dist_matrix.get d i j then Dist_matrix.set d i j via
      done
    done
  done;
  d

let subdominant_ultrametric m =
  (* Minimax-path distances: replace each d(i,j) by the smallest over all
     paths of the largest edge on the path.  Floyd-Warshall with
     (max, min) instead of (+, min). *)
  let n = Dist_matrix.size m in
  let d = Dist_matrix.copy m in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let via = Float.max (Dist_matrix.get d i k) (Dist_matrix.get d k j) in
        if via < Dist_matrix.get d i j then Dist_matrix.set d i j via
      done
    done
  done;
  d
