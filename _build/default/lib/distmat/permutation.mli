(** Maxmin permutations (Wu-Chao-Tang 1999, Step 1 of algorithm BBU).

    Relabelling the species as a maxmin permutation before branch-and-bound
    places "spread-out" species first, which tightens lower bounds early
    and is essential for the pruning behaviour the papers report. *)

type t = private int array
(** [p.(rank)] is the original species index placed at position [rank].
    A valid permutation of [0 .. n-1]. *)

val of_array : int array -> t
(** Validate an arbitrary permutation (for tests / IO).
    @raise Invalid_argument if the array is not a permutation of
    [0 .. n-1]. *)

val identity : int -> t

val maxmin : Dist_matrix.t -> t
(** [maxmin m] computes a maxmin permutation of the species of [m]:
    positions 0 and 1 hold a farthest pair, and every subsequent position
    holds a species maximizing its minimum distance to all previously
    placed species (ties broken by smallest index, so the result is
    deterministic). *)

val is_maxmin : Dist_matrix.t -> t -> bool
(** Check the defining property of a maxmin permutation for [m]. *)

val apply : Dist_matrix.t -> t -> Dist_matrix.t
(** [apply m p] relabels the matrix: entry [(a, b)] of the result is
    [m (p.(a)) (p.(b))]. *)

val inverse : t -> t
(** [inverse p] maps original indices back to ranks. *)

val to_array : t -> int array
(** Copy of the underlying array. *)
