(** Reading and writing distance matrices.

    The on-disk format is PHYLIP square: a line with the species count,
    then one line per species with its name followed by its full row of
    distances.  Names default to [s0, s1, ...] when not supplied. *)

type named = { names : string array; matrix : Dist_matrix.t }

val to_phylip : ?names:string array -> Dist_matrix.t -> string
(** Render in PHYLIP square format.
    @raise Invalid_argument if [names] has the wrong length or a name
    contains whitespace. *)

val of_phylip : string -> named
(** Parse PHYLIP square format, or PHYLIP lower-triangular format (row
    [i] holds [i] entries), auto-detected from the first data row.
    @raise Failure with a descriptive message on malformed input
    (wrong counts, non-numeric entries, asymmetry, non-zero diagonal). *)

val to_phylip_lower : ?names:string array -> Dist_matrix.t -> string
(** Render in PHYLIP lower-triangular format (the other common layout
    for distance matrices). *)

val to_csv : ?names:string array -> Dist_matrix.t -> string
(** Comma-separated rendering with a header row, for spreadsheets. *)

val write_file : string -> string -> unit
(** [write_file path contents]. *)

val read_file : string -> string
