lib/parbnb/shared_pool.ml: Bb_tree Condition Import Mutex
