lib/parbnb/par_bnb.ml: Atomic Bb_tree Clustering Dist_matrix Domain Import Int List Logs Mutex Option Shared_pool Solver Stats Utree
