lib/parbnb/import.ml: Bnb Distmat Ultra
