lib/parbnb/par_bnb.mli: Dist_matrix Import Solver Stats Utree
