lib/parbnb/shared_pool.mli: Bb_tree Import
