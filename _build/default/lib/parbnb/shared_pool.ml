open Import

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable queue : Bb_tree.node list;
  mutable parked : int;
  mutable finished : bool;
  n_workers : int;
}

let create ~n_workers =
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    queue = [];
    parked = 0;
    finished = false;
    n_workers;
  }

let seed t nodes =
  Mutex.lock t.lock;
  t.queue <- nodes @ t.queue;
  Mutex.unlock t.lock

let is_empty t = t.queue = []

let donate t node =
  Mutex.lock t.lock;
  t.queue <- node :: t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock

let take t =
  Mutex.lock t.lock;
  let rec wait () =
    match t.queue with
    | node :: rest ->
        t.queue <- rest;
        Mutex.unlock t.lock;
        Some node
    | [] ->
        if t.finished then begin
          Mutex.unlock t.lock;
          None
        end
        else begin
          t.parked <- t.parked + 1;
          if t.parked = t.n_workers then begin
            (* Everyone is out of work: the search space is exhausted. *)
            t.finished <- true;
            Condition.broadcast t.nonempty;
            t.parked <- t.parked - 1;
            Mutex.unlock t.lock;
            None
          end
          else begin
            Condition.wait t.nonempty t.lock;
            t.parked <- t.parked - 1;
            wait ()
          end
        end
  in
  wait ()
