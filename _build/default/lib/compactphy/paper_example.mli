open Import

(** The paper's worked example (Figures 3-6), reconstructed.

    The PaCT 2005 paper illustrates the technique on a 6-vertex complete
    weighted graph whose exact weights are only given in a figure; this
    matrix reproduces every stated property: the MST edge order is
    (1,3) < (4,6) < (1,2) < (3,5) < (5,6) (paper numbering), the compact
    sets are {{1,3}, {4,6}, {1,2,3}, {1,2,3,5}}, and the maximum
    distance from vertex 5 to C3 = {1,2,3} is 6 — the entry the paper
    shows in C4's maximum matrix.  Vertices here are 0-indexed. *)

val matrix : Dist_matrix.t

val compact_sets : int list list
(** The four compact sets (0-indexed, canonical order):
    [[0;2]; [3;5]; [0;1;2]; [0;1;2;4]]. *)

val c4_max_matrix : Dist_matrix.t
(** The paper's Figure 6: the maximum matrix of C4 = {1,2,3,5} over its
    immediate children {C3, 5} — a 2x2 matrix whose off-diagonal entry
    is 6. *)
