open Import

(** Decomposing a distance matrix along its compact sets (Section 3.1 of
    the paper).

    The laminar forest of compact sets turns the matrix into a hierarchy
    of {e blocks}: one for the virtual root and one per compact set, each
    over the node's immediate children.  A block's small matrix stores a
    representative distance between every two children — the paper
    studies the {e maximum} variant and also names minimum and average. *)

type linkage = Max | Min | Avg
(** Which representative distance a small matrix stores between two
    children (over all member pairs crossing them). *)

type block = {
  children : Laminar.tree list;  (** the block's "species" *)
  small : Dist_matrix.t;  (** its [k * k] representative matrix *)
}

type t = {
  forest : Laminar.t;
  root_block : block;
  set_blocks : (Laminar.tree * block) list;
      (** one entry per [Laminar.Set] node, keyed by the node itself *)
}

val block_of_children :
  linkage -> Dist_matrix.t -> Laminar.tree list -> block
(** Build one block's small matrix.  @raise Invalid_argument on an empty
    children list. *)

val decompose :
  ?linkage:linkage -> ?relaxation:float -> Dist_matrix.t -> t
(** Find all compact sets (optimised finder), build the laminar forest
    and every block's small matrix.  Default linkage is [Max], the
    variant the paper evaluates.  [relaxation] (default [1.], must be
    [>= 1.]) switches to alpha-compact sets
    ({!Cgraph.Compact_sets.find_relaxed}) for noisy matrices. *)

val n_blocks : t -> int
val largest_block : t -> int
(** Number of children of the biggest block — the size that bounds the
    branch-and-bound subproblems. *)
