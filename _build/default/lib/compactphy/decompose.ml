open Import

type linkage = Max | Min | Avg

type block = { children : Laminar.tree list; small : Dist_matrix.t }

type t = {
  forest : Laminar.t;
  root_block : block;
  set_blocks : (Laminar.tree * block) list;
}

let representative_distance linkage dm a_members b_members =
  let acc = ref (match linkage with Max -> neg_infinity | Min -> infinity | Avg -> 0.) in
  let count = ref 0 in
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          let d = Dist_matrix.get dm i j in
          incr count;
          match linkage with
          | Max -> acc := Float.max !acc d
          | Min -> acc := Float.min !acc d
          | Avg -> acc := !acc +. d)
        b_members)
    a_members;
  match linkage with
  | Max | Min -> !acc
  | Avg -> !acc /. float_of_int !count

let block_of_children linkage dm children =
  if children = [] then
    invalid_arg "Decompose.block_of_children: empty block";
  let members = Array.of_list (List.map Laminar.members children) in
  let k = Array.length members in
  let small =
    Dist_matrix.init k (fun a b ->
        representative_distance linkage dm members.(a) members.(b))
  in
  { children; small }

let decompose ?(linkage = Max) ?(relaxation = 1.) dm =
  let n = Dist_matrix.size dm in
  let sets =
    if relaxation = 1. then Compact_sets.find dm
    else Compact_sets.find_relaxed ~alpha:relaxation dm
  in
  let forest = Laminar.of_sets ~n sets in
  let root_block = block_of_children linkage dm forest.Laminar.roots in
  let set_blocks = ref [] in
  let rec visit tree =
    match tree with
    | Laminar.Elem _ -> ()
    | Laminar.Set s ->
        set_blocks :=
          (tree, block_of_children linkage dm s.children) :: !set_blocks;
        List.iter visit s.children
  in
  List.iter visit forest.Laminar.roots;
  { forest; root_block; set_blocks = List.rev !set_blocks }

let n_blocks t = 1 + List.length t.set_blocks

let largest_block t =
  List.fold_left
    (fun acc (_, b) -> Int.max acc (List.length b.children))
    (List.length t.root_block.children)
    t.set_blocks
