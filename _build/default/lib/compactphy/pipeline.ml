open Import

let src = Logs.Src.create "compactphy.pipeline" ~doc:"Compact-set pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

type run = {
  tree : Utree.t;
  cost : float;
  elapsed_s : float;
  stats : Stats.t;
  n_blocks : int;
  largest_block : int;
  optimal : bool;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let solve_small ~options ~workers stats optimal small =
  if Dist_matrix.size small = 1 then Utree.leaf 0
  else if workers <= 1 then begin
    let r = Solver.solve ~options small in
    Stats.add stats r.Solver.stats;
    if not r.Solver.optimal then optimal := false;
    r.Solver.tree
  end
  else begin
    let r = Par_bnb.solve ~options ~n_workers:workers small in
    Stats.add stats r.Par_bnb.stats;
    if not r.Par_bnb.optimal then optimal := false;
    r.Par_bnb.tree
  end

let exact ?(options = Solver.default_options) ?(workers = 1) dm =
  let stats = Stats.create () in
  let optimal = ref true in
  let tree, elapsed_s =
    timed (fun () -> solve_small ~options ~workers stats optimal dm)
  in
  {
    tree;
    cost = Utree.weight tree;
    elapsed_s;
    stats;
    n_blocks = 1;
    largest_block = Dist_matrix.size dm;
    optimal = !optimal;
  }

let with_compact_sets ?(linkage = Decompose.Max) ?relaxation
    ?(options = Solver.default_options) ?(workers = 1) dm =
  let n = Dist_matrix.size dm in
  if n = 0 then invalid_arg "Pipeline.with_compact_sets: empty matrix";
  if n = 1 then
    {
      tree = Utree.leaf 0;
      cost = 0.;
      elapsed_s = 0.;
      stats = Stats.create ();
      n_blocks = 1;
      largest_block = 1;
      optimal = true;
    }
  else begin
    let stats = Stats.create () in
    let optimal = ref true in
    let (tree, deco), elapsed_s =
      timed (fun () ->
          let deco = Decompose.decompose ~linkage ?relaxation dm in
          Log.debug (fun m ->
              m "decomposed %d species into %d blocks (largest %d)" n
                (Decompose.n_blocks deco)
                (Decompose.largest_block deco));
          (* Solve blocks bottom-up: a block's "species" are its
             children; each solved small tree has leaves 0 .. k-1 which
             we replace by the recursively built child subtrees. *)
          let rec build_child (child : Laminar.tree) =
            match child with
            | Laminar.Elem i -> Utree.leaf i
            | Laminar.Set _ ->
                solve_block (List.assq child deco.Decompose.set_blocks)
          and solve_block (block : Decompose.block) =
            match block.children with
            | [ only ] -> build_child only
            | children ->
                let small_tree =
                  solve_small ~options ~workers stats optimal
                    block.Decompose.small
                in
                let arr = Array.of_list children in
                Utree.map_leaves (fun a -> build_child arr.(a)) small_tree
          in
          let merged = solve_block deco.Decompose.root_block in
          Log.debug (fun m ->
              m "blocks solved: %d BBT nodes expanded in total"
                stats.Stats.expanded);
          (* The graft fixes a topology; re-realising against the full
             matrix yields the cheapest feasible ultrametric tree with
             that topology (and repairs any height inversion the Min/Avg
             linkages can introduce). *)
          (Utree.minimal_realization dm merged, deco))
    in
    {
      tree;
      cost = Utree.weight tree;
      elapsed_s;
      stats;
      n_blocks = Decompose.n_blocks deco;
      largest_block = Decompose.largest_block deco;
      optimal = !optimal;
    }
  end

type comparison = {
  with_cs : run;
  without_cs : run;
  time_saved_pct : float;
  cost_increase_pct : float;
}

let compare_methods ?linkage ?options ?workers dm =
  let with_cs = with_compact_sets ?linkage ?options ?workers dm in
  let without_cs = exact ?options ?workers dm in
  let time_saved_pct =
    if without_cs.elapsed_s <= 0. then 0.
    else
      (without_cs.elapsed_s -. with_cs.elapsed_s)
      /. without_cs.elapsed_s *. 100.
  in
  let cost_increase_pct =
    if without_cs.cost <= 0. then 0.
    else (with_cs.cost -. without_cs.cost) /. without_cs.cost *. 100.
  in
  { with_cs; without_cs; time_saved_pct; cost_increase_pct }
