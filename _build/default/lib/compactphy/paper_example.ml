open Import

let matrix =
  Dist_matrix.of_rows
    [|
      [| 0.; 2.; 1.; 9.; 6.; 9.5 |];
      [| 2.; 0.; 2.5; 10.; 6.; 10.5 |];
      [| 1.; 2.5; 0.; 9.2; 5.; 9.8 |];
      [| 9.; 10.; 9.2; 0.; 8.; 1.5 |];
      [| 6.; 6.; 5.; 8.; 0.; 7. |];
      [| 9.5; 10.5; 9.8; 1.5; 7.; 0. |];
    |]

let compact_sets = [ [ 0; 2 ]; [ 3; 5 ]; [ 0; 1; 2 ]; [ 0; 1; 2; 4 ] ]

let c4_max_matrix =
  (* Children of {0,1,2,4}: the set {0,1,2} and the lone vertex 4; the
     maximum distance between them is max(6, 6, 5) = 6. *)
  Dist_matrix.of_rows [| [| 0.; 6. |]; [| 6.; 0. |] |]
