lib/compactphy/paper_example.ml: Dist_matrix Import
