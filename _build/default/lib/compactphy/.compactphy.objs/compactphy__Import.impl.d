lib/compactphy/import.ml: Bnb Cgraph Distmat Parbnb Ultra
