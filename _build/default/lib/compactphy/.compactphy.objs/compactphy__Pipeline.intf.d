lib/compactphy/pipeline.mli: Decompose Dist_matrix Import Solver Stats Utree
