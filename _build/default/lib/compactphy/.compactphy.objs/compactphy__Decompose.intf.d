lib/compactphy/decompose.mli: Dist_matrix Import Laminar
