lib/compactphy/pipeline.ml: Array Decompose Dist_matrix Import Laminar List Logs Par_bnb Solver Stats Unix Utree
