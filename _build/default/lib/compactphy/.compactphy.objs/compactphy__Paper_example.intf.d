lib/compactphy/paper_example.mli: Dist_matrix Import
