lib/compactphy/decompose.ml: Array Compact_sets Dist_matrix Float Import Int Laminar List
