open Import

(** Bootstrap support for tree edges (Felsenstein's method).

    Resample alignment columns with replacement, rebuild the tree from
    each resampled data set, and report for every clade of the reference
    tree the fraction of replicate trees that contain it — the standard
    confidence annotation biologists expect on a published tree. *)

val resample : rng:Random.State.t -> Dna.t array -> Dna.t array
(** One bootstrap replicate: the same species with columns drawn with
    replacement.  @raise Invalid_argument if the sequences are empty or
    of different lengths. *)

val support :
  rng:Random.State.t ->
  ?replicates:int ->
  ?distance:Distance.kind ->
  construct:(Dist_matrix.t -> Utree.t) ->
  reference:Utree.t ->
  Dna.t array ->
  (int list * float) list
(** [support ~rng ~construct ~reference seqs] runs [replicates] (default
    100) bootstrap rounds: resample, turn into a distance matrix
    ([distance] defaults to {!Distance.Jc}), [construct] a tree, and
    count clade recoveries.  Returns every non-trivial clade of
    [reference] with its support in [0, 1], in cluster order.
    @raise Invalid_argument if [replicates < 1] or the reference's
    leaves don't match the sequence count. *)
