(** DNA sequences. *)

type base = A | C | G | T

type t = base array
(** A sequence of nucleotides. *)

val random : rng:Random.State.t -> int -> t
(** Uniform random sequence of the given length. *)

val of_string : string -> t
(** @raise Invalid_argument on characters outside [ACGTacgt]. *)

val to_string : t -> string

val hamming : t -> t -> int
(** Number of differing sites.
    @raise Invalid_argument on different lengths. *)

val base_equal : base -> base -> bool
val other_bases : base -> base * base * base
(** The three bases different from the argument (used by the
    Jukes-Cantor mutation step). *)
