open Import

(** Surrogate Human-Mitochondrial-DNA workload.

    The papers evaluate on distance matrices derived from human
    mitochondrial DNA, which we cannot redistribute.  This module builds
    the closest synthetic equivalent: sequences evolved under a strict
    molecular clock (mtDNA is the textbook clock-like locus), with the
    low substitution rates and strong population structure that make
    such matrices nearly ultrametric and rich in compact sets — the
    properties the papers' HMDNA experiments exercise. *)

type model =
  | Jc  (** Jukes-Cantor evolution and correction *)
  | K2p of float
      (** Kimura two-parameter with the given transition/transversion
          rate ratio; real mitochondrial DNA is strongly
          transition-biased (kappa around 10) *)

type dataset = {
  true_tree : Utree.t;  (** the clock tree the sequences evolved on *)
  sequences : Dna.t array;
  matrix : Dist_matrix.t;
      (** model-corrected distances, scaled, metric-closed *)
}

val generate :
  rng:Random.State.t ->
  ?sites:int ->
  ?mu:float ->
  ?model:model ->
  int ->
  dataset
(** [generate ~rng n] builds an [n]-species surrogate dataset.
    Defaults: [sites = 600] (HVS-I/II control-region scale),
    [mu = 0.15] per unit tree height — low enough that distances stay
    far from saturation — and [model = Jc] (the benchmarks' workload;
    pass [K2p 10.] for the more realistic transition-biased variant).
    @raise Invalid_argument if [n < 2]. *)

val batch :
  seed:int -> ?sites:int -> ?mu:float -> n_datasets:int -> int ->
  dataset list
(** [batch ~seed ~n_datasets n] — independent datasets with derived
    seeds, mirroring the papers' "15 data sets containing 26 species
    each" style of experiment. *)
