type entry = { name : string; seq : Dna.t }

let of_string text =
  let lines = String.split_on_char '\n' text in
  let flush name parts acc =
    match name with
    | None -> acc
    | Some name ->
        let joined = String.concat "" (List.rev parts) in
        if joined = "" then
          failwith (Printf.sprintf "Fasta: empty sequence for %S" name);
        let seq =
          try Dna.of_string joined
          with Invalid_argument msg ->
            failwith (Printf.sprintf "Fasta: %s in %S" msg name)
        in
        { name; seq } :: acc
  in
  let rec go lines name parts acc =
    match lines with
    | [] -> List.rev (flush name parts acc)
    | line :: rest ->
        let line = String.trim line in
        if line = "" then go rest name parts acc
        else if line.[0] = '>' then begin
          let header = String.sub line 1 (String.length line - 1) in
          let word =
            match String.index_opt header ' ' with
            | Some i -> String.sub header 0 i
            | None -> header
          in
          if String.trim word = "" then failwith "Fasta: empty header";
          go rest (Some (String.trim word)) [] (flush name parts acc)
        end
        else if name = None then
          failwith "Fasta: sequence data before the first '>' header"
        else go rest name (line :: parts) acc
  in
  let entries = go lines None [] [] in
  if entries = [] then failwith "Fasta: no sequences";
  let seen = Hashtbl.create (List.length entries) in
  List.iter
    (fun e ->
      if Hashtbl.mem seen e.name then
        failwith (Printf.sprintf "Fasta: duplicate name %S" e.name);
      Hashtbl.replace seen e.name ())
    entries;
  entries

let to_string ?(width = 70) entries =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_char buf '>';
      Buffer.add_string buf e.name;
      Buffer.add_char buf '\n';
      let s = Dna.to_string e.seq in
      let len = String.length s in
      let rec chunks start =
        if start < len then begin
          Buffer.add_string buf
            (String.sub s start (Int.min width (len - start)));
          Buffer.add_char buf '\n';
          chunks (start + width)
        end
      in
      chunks 0)
    entries;
  Buffer.contents buf

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let write_file path entries =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string entries))
