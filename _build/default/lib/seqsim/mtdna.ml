open Import

type model = Jc | K2p of float

type dataset = {
  true_tree : Utree.t;
  sequences : Dna.t array;
  matrix : Dist_matrix.t;
}

let generate ~rng ?(sites = 600) ?(mu = 0.15) ?(model = Jc) n =
  if n < 2 then invalid_arg "Mtdna.generate: need n >= 2";
  let true_tree = Clock_tree.coalescent ~rng ~height:1. n in
  let sequences, kind =
    match model with
    | Jc -> (Evolve.sequences ~rng ~mu ~sites true_tree, Distance.Jc)
    | K2p kappa ->
        (Evolve.sequences_k2p ~rng ~mu ~kappa ~sites true_tree, Distance.K2p)
  in
  let matrix = Distance.matrix ~kind ~scale:100. sequences in
  { true_tree; sequences; matrix }

let batch ~seed ?sites ?mu ~n_datasets n =
  List.init n_datasets (fun i ->
      let rng = Random.State.make [| seed; i |] in
      generate ~rng ?sites ?mu n)
