open Import

(** Random molecular-clock trees.

    Species evolving at a constant rate (the ultrametric-tree
    assumption) live on a clock tree: a rooted binary tree whose leaves
    are all at time 0 and whose internal nodes sit at their divergence
    times.  We generate them with a coalescent-style process: starting
    from [n] lineages, repeatedly merge two uniformly chosen lineages at
    a strictly increasing time. *)

val coalescent :
  rng:Random.State.t -> ?height:float -> int -> Utree.t
(** [coalescent ~rng n] is a random clock tree over species [0 .. n-1]
    with root height about [height] (default 1.).
    @raise Invalid_argument if [n < 2]. *)

val balanced : ?height:float -> int -> Utree.t
(** Deterministic fully-balanced clock tree (for tests); [n] must be a
    power of two.  @raise Invalid_argument otherwise. *)
