open Import

let coalescent ~rng ?(height = 1.) n =
  if n < 2 then invalid_arg "Clock_tree.coalescent: need n >= 2";
  let lineages = ref (List.init n (fun i -> Utree.leaf i)) in
  let time = ref 0. in
  let step = height /. float_of_int (n - 1) in
  while List.length !lineages > 1 do
    let len = List.length !lineages in
    let a = Random.State.int rng len in
    let b =
      let b = Random.State.int rng (len - 1) in
      if b >= a then b + 1 else b
    in
    time := !time +. (step *. (0.2 +. Random.State.float rng 1.6));
    let ta = List.nth !lineages a and tb = List.nth !lineages b in
    let merged = Utree.node !time ta tb in
    lineages :=
      merged :: List.filteri (fun i _ -> i <> a && i <> b) !lineages
  done;
  match !lineages with [ t ] -> t | _ -> assert false

let balanced ?(height = 1.) n =
  if n < 2 || n land (n - 1) <> 0 then
    invalid_arg "Clock_tree.balanced: n must be a power of two >= 2";
  let rec levels k = if k = 1 then 0 else 1 + levels (k / 2) in
  let depth = levels n in
  let rec build lo k =
    if k = 1 then Utree.leaf lo
    else begin
      let h = height *. float_of_int (levels k) /. float_of_int depth in
      Utree.node h (build lo (k / 2)) (build (lo + (k / 2)) (k / 2))
    end
  in
  build 0 n
