open Import

(** Distances between sequences, and matrices built from them. *)

val p_distance : Dna.t -> Dna.t -> float
(** Fraction of differing sites.  @raise Invalid_argument on different
    lengths or empty sequences. *)

val jc_distance : Dna.t -> Dna.t -> float
(** Jukes-Cantor corrected evolutionary distance
    [-3/4 * ln (1 - 4/3 p)].  Saturated pairs ([p >= 3/4]) map to a
    large finite cap rather than infinity so matrices stay usable. *)

val edit_distance : Dna.t -> Dna.t -> int
(** Unit-cost Levenshtein distance by dynamic programming — the distance
    the papers name for the distance-matrix model.  Works on sequences
    of different lengths. *)

val k2p_distance : Dna.t -> Dna.t -> float
(** Kimura two-parameter corrected distance
    [-1/2 ln((1-2P-Q) sqrt(1-2Q))] where [P] and [Q] are the observed
    transition and transversion fractions.  Saturated pairs map to a
    large finite cap. *)

type kind = P_distance | Jc | K2p | Edit

val matrix :
  ?kind:kind -> ?scale:float -> Dna.t array -> Dist_matrix.t
(** Pairwise distance matrix of the sequences, scaled by [scale]
    (default 1000., giving distances in the papers' 0-100 ballpark for
    typical simulations), then closed under shortest paths so the result
    is a metric (finite-sample JC estimates can violate the triangle
    inequality slightly).
    @raise Invalid_argument on an empty array. *)
