type base = A | C | G | T

type t = base array

let random ~rng len =
  Array.init len (fun _ ->
      match Random.State.int rng 4 with
      | 0 -> A
      | 1 -> C
      | 2 -> G
      | _ -> T)

let of_string s =
  Array.init (String.length s) (fun i ->
      match s.[i] with
      | 'A' | 'a' -> A
      | 'C' | 'c' -> C
      | 'G' | 'g' -> G
      | 'T' | 't' -> T
      | c -> invalid_arg (Printf.sprintf "Dna.of_string: bad base %C" c))

let char_of = function A -> 'A' | C -> 'C' | G -> 'G' | T -> 'T'

let to_string t = String.init (Array.length t) (fun i -> char_of t.(i))

let hamming a b =
  if Array.length a <> Array.length b then
    invalid_arg "Dna.hamming: different lengths";
  let count = ref 0 in
  Array.iteri (fun i x -> if x <> b.(i) then incr count) a;
  !count

let base_equal (a : base) b = a = b

let other_bases = function
  | A -> (C, G, T)
  | C -> (A, G, T)
  | G -> (A, C, T)
  | T -> (A, C, G)
