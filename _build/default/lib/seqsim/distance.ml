open Import

let is_purine = function Dna.A | Dna.G -> true | Dna.C | Dna.T -> false

(* Purine<->purine or pyrimidine<->pyrimidine mismatch. *)
let align_free_is_transition x y = x <> y && is_purine x = is_purine y

let p_distance a b =
  let len = Array.length a in
  if len = 0 then invalid_arg "Distance.p_distance: empty sequences";
  float_of_int (Dna.hamming a b) /. float_of_int len

(* Cap for saturated pairs: the JC correction diverges as p -> 3/4; a
   finite stand-in keeps downstream algorithms total. *)
let jc_cap = 10.

let jc_distance a b =
  let p = p_distance a b in
  if p >= 0.749 then jc_cap
  else -0.75 *. log (1. -. (4. /. 3. *. p))

let edit_distance a b =
  let la = Array.length a and lb = Array.length b in
  (* Two-row DP. *)
  let prev = Array.init (lb + 1) Fun.id in
  let curr = Array.make (lb + 1) 0 in
  for i = 1 to la do
    curr.(0) <- i;
    for j = 1 to lb do
      let sub =
        prev.(j - 1) + if Dna.base_equal a.(i - 1) b.(j - 1) then 0 else 1
      in
      curr.(j) <- Int.min sub (1 + Int.min prev.(j) curr.(j - 1))
    done;
    Array.blit curr 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let k2p_distance a b =
  let len = Array.length a in
  if len = 0 then invalid_arg "Distance.k2p_distance: empty sequences";
  if len <> Array.length b then
    invalid_arg "Distance.k2p_distance: different lengths";
  let transitions = ref 0 and transversions = ref 0 in
  Array.iteri
    (fun i x ->
      let y = b.(i) in
      if x <> y then
        if align_free_is_transition x y then incr transitions
        else incr transversions)
    a;
  let p = float_of_int !transitions /. float_of_int len in
  let q = float_of_int !transversions /. float_of_int len in
  let u = 1. -. (2. *. p) -. q and v = 1. -. (2. *. q) in
  if u <= 1e-9 || v <= 1e-9 then jc_cap
  else Float.min jc_cap (-.(0.5 *. log u) -. (0.25 *. log v))

type kind = P_distance | Jc | K2p | Edit

let matrix ?(kind = Jc) ?(scale = 1000.) seqs =
  let n = Array.length seqs in
  if n = 0 then invalid_arg "Distance.matrix: no sequences";
  let d i j =
    match kind with
    | P_distance -> p_distance seqs.(i) seqs.(j) *. scale
    | Jc -> jc_distance seqs.(i) seqs.(j) *. scale
    | K2p -> k2p_distance seqs.(i) seqs.(j) *. scale
    | Edit -> float_of_int (edit_distance seqs.(i) seqs.(j))
  in
  let raw = Dist_matrix.init n d in
  Metric.floyd_warshall raw
