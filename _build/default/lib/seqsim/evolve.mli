open Import

(** Jukes-Cantor sequence evolution along a clock tree.

    Under the JC69 model every site mutates at rate [mu]; over a branch
    of duration [t] the probability that a site ends in a {e different}
    base is [3/4 * (1 - exp (-4/3 * mu * t))]. *)

val substitution_probability : mu:float -> t:float -> float
(** JC69 per-site probability of observing a different base after time
    [t]; in [[0, 3/4)]. *)

val sequences :
  rng:Random.State.t -> mu:float -> sites:int -> Utree.t -> Dna.t array
(** [sequences ~rng ~mu ~sites tree] evolves a uniform random root
    sequence of [sites] bases down [tree] (leaf labels index the result,
    which has [n_leaves tree] entries).  Branch durations are height
    differences.
    @raise Invalid_argument if the tree's leaves are not [0 .. n-1], or
    [mu < 0.], or [sites <= 0]. *)

val kimura_probabilities : mu:float -> kappa:float -> t:float -> float * float
(** [(transition, transversion-total)] probabilities per site after time
    [t] under Kimura's two-parameter model with total rate [mu] and
    rate ratio [kappa = alpha / beta] (transition rate over the
    per-target transversion rate; [kappa = 1] recovers Jukes-Cantor).
    Mitochondrial DNA evolves with a strong transition bias ([kappa]
    around 10). *)

val sequences_k2p :
  rng:Random.State.t ->
  mu:float ->
  ?kappa:float ->
  sites:int ->
  Utree.t ->
  Dna.t array
(** Like {!sequences} but under the Kimura two-parameter model
    ([kappa] defaults to 10., mtDNA-like). *)

val sequences_with_indels :
  rng:Random.State.t ->
  mu:float ->
  ?indel_rate:float ->
  sites:int ->
  Utree.t ->
  Dna.t array
(** Like {!sequences}, but each branch also accumulates insertion and
    deletion events (rate [indel_rate] per site per unit time, default
    [mu / 10]; lengths geometric with mean 2), so the leaf sequences
    have different lengths and must be {e aligned} before distances can
    be taken — the workload of the {!Align} library. *)
