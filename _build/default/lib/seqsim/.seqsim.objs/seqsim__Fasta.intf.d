lib/seqsim/fasta.mli: Dna
