lib/seqsim/clock_tree.ml: Import List Random Utree
