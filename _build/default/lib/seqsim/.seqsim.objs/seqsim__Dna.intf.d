lib/seqsim/dna.mli: Random
