lib/seqsim/clock_tree.mli: Import Random Utree
