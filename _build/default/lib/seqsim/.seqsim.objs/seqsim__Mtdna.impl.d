lib/seqsim/mtdna.ml: Clock_tree Dist_matrix Distance Dna Evolve Import List Random Utree
