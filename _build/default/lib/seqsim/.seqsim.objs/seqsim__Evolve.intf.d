lib/seqsim/evolve.mli: Dna Import Random Utree
