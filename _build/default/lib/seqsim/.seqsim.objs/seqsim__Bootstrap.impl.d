lib/seqsim/bootstrap.ml: Array Distance Hashtbl Import List Random Ultra Utree
