lib/seqsim/fasta.ml: Buffer Dna Fun Hashtbl Int List Printf String
