lib/seqsim/evolve.ml: Array Dna Float Fun Import List Random Utree
