lib/seqsim/import.ml: Distmat Ultra
