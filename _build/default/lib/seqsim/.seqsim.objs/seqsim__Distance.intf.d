lib/seqsim/distance.mli: Dist_matrix Dna Import
