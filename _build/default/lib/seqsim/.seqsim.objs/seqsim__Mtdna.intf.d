lib/seqsim/mtdna.mli: Dist_matrix Dna Import Random Utree
