lib/seqsim/bootstrap.mli: Dist_matrix Distance Dna Import Random Utree
