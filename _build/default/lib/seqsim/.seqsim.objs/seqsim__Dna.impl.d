lib/seqsim/dna.ml: Array Printf Random String
