lib/seqsim/distance.ml: Array Dist_matrix Dna Float Fun Import Int Metric
