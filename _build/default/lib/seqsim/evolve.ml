open Import

let substitution_probability ~mu ~t =
  0.75 *. (1. -. exp (-4. /. 3. *. mu *. t))

let mutate ~rng ~p seq =
  Array.map
    (fun b ->
      if Random.State.float rng 1. < p then begin
        let x, y, z = Dna.other_bases b in
        match Random.State.int rng 3 with 0 -> x | 1 -> y | _ -> z
      end
      else b)
    seq

let geometric ~rng =
  (* Mean-2 geometric length: 1 + Geom(1/2). *)
  let rec go len =
    if Random.State.bool rng then go (len + 1) else len
  in
  go 1

let apply_indels ~rng ~rate ~dt seq =
  let sites = Array.length seq in
  if sites = 0 then seq
  else begin
    (* Expected events = rate * dt * sites; draw a small Poisson by
       thinning. *)
    let expect = rate *. dt *. float_of_int sites in
    (* Knuth's Poisson sampler. *)
    let events =
      let l = exp (-.expect) in
      let k = ref 0 and p = ref 1. in
      let continue = ref true in
      while !continue do
        incr k;
        p := !p *. Random.State.float rng 1.;
        if !p <= l then continue := false
      done;
      !k - 1
    in
    let current = ref seq in
    for _ = 1 to events do
      let s = !current in
      let len = Array.length s in
      let indel_len = geometric ~rng in
      if Random.State.bool rng && len > indel_len then begin
        (* Deletion. *)
        let pos = Random.State.int rng (len - indel_len) in
        current :=
          Array.append (Array.sub s 0 pos)
            (Array.sub s (pos + indel_len) (len - pos - indel_len))
      end
      else begin
        (* Insertion. *)
        let pos = Random.State.int rng (len + 1) in
        let insert = Dna.random ~rng indel_len in
        current :=
          Array.concat
            [ Array.sub s 0 pos; insert; Array.sub s pos (len - pos) ]
      end
    done;
    !current
  end

let evolve_generic ~rng ~mu ~indel ~sites tree =
  if mu < 0. then invalid_arg "Evolve.sequences: negative rate";
  if sites <= 0 then invalid_arg "Evolve.sequences: need sites > 0";
  let n = Utree.n_leaves tree in
  if Utree.leaves tree <> List.init n Fun.id then
    invalid_arg "Evolve.sequences: tree leaves must be 0 .. n-1";
  let out = Array.make n [||] in
  let root_seq = Dna.random ~rng sites in
  let rec go t seq parent_height =
    let dt = parent_height -. Utree.height t in
    let seq =
      if dt <= 0. then seq
      else begin
        let seq = mutate ~rng ~p:(substitution_probability ~mu ~t:dt) seq in
        match indel with
        | None -> seq
        | Some rate -> apply_indels ~rng ~rate ~dt seq
      end
    in
    match t with
    | Utree.Leaf i -> out.(i) <- seq
    | Utree.Node nd ->
        go nd.left seq nd.height;
        go nd.right seq nd.height
  in
  go tree root_seq (Utree.height tree);
  out

let sequences ~rng ~mu ~sites tree =
  evolve_generic ~rng ~mu ~indel:None ~sites tree

(* Kimura 1980: transition rate alpha, transversion rate beta per
   target; total rate mu = alpha + 2 beta, kappa = alpha / beta. *)
let kimura_probabilities ~mu ~kappa ~t =
  if mu < 0. || kappa <= 0. then
    invalid_arg "Evolve.kimura_probabilities: need mu >= 0 and kappa > 0";
  let beta = mu /. (kappa +. 2.) in
  let alpha = kappa *. beta in
  let p_transition =
    0.25 +. (0.25 *. exp (-4. *. beta *. t))
    -. (0.5 *. exp (-2. *. (alpha +. beta) *. t))
  in
  let q_transversion = 0.5 -. (0.5 *. exp (-4. *. beta *. t)) in
  (Float.max 0. p_transition, Float.max 0. q_transversion)

let transition_of = function
  | Dna.A -> Dna.G
  | Dna.G -> Dna.A
  | Dna.C -> Dna.T
  | Dna.T -> Dna.C

let transversions_of = function
  | Dna.A | Dna.G -> (Dna.C, Dna.T)
  | Dna.C | Dna.T -> (Dna.A, Dna.G)

let mutate_k2p ~rng ~p ~q seq =
  Array.map
    (fun b ->
      let u = Random.State.float rng 1. in
      if u < p then transition_of b
      else if u < p +. q then begin
        let x, y = transversions_of b in
        if Random.State.bool rng then x else y
      end
      else b)
    seq

let sequences_k2p ~rng ~mu ?(kappa = 10.) ~sites tree =
  if mu < 0. then invalid_arg "Evolve.sequences_k2p: negative rate";
  if sites <= 0 then invalid_arg "Evolve.sequences_k2p: need sites > 0";
  let n = Utree.n_leaves tree in
  if Utree.leaves tree <> List.init n Fun.id then
    invalid_arg "Evolve.sequences_k2p: tree leaves must be 0 .. n-1";
  let out = Array.make n [||] in
  let root_seq = Dna.random ~rng sites in
  let rec go t seq parent_height =
    let dt = parent_height -. Utree.height t in
    let seq =
      if dt <= 0. then seq
      else begin
        let p, q = kimura_probabilities ~mu ~kappa ~t:dt in
        mutate_k2p ~rng ~p ~q seq
      end
    in
    match t with
    | Utree.Leaf i -> out.(i) <- seq
    | Utree.Node nd ->
        go nd.left seq nd.height;
        go nd.right seq nd.height
  in
  go tree root_seq (Utree.height tree);
  out

let sequences_with_indels ~rng ~mu ?indel_rate ~sites tree =
  let rate = match indel_rate with Some r -> r | None -> mu /. 10. in
  if rate < 0. then invalid_arg "Evolve.sequences_with_indels: negative rate";
  evolve_generic ~rng ~mu ~indel:(Some rate) ~sites tree
