open Import

let resample ~rng seqs =
  if Array.length seqs = 0 then invalid_arg "Bootstrap.resample: no sequences";
  let sites = Array.length seqs.(0) in
  if sites = 0 then invalid_arg "Bootstrap.resample: empty sequences";
  Array.iter
    (fun s ->
      if Array.length s <> sites then
        invalid_arg "Bootstrap.resample: sequences of different lengths")
    seqs;
  let picks = Array.init sites (fun _ -> Random.State.int rng sites) in
  Array.map (fun s -> Array.map (fun col -> s.(col)) picks) seqs

let clusters_of tree =
  (* Non-trivial clades, reusing the ultra library's notion. *)
  Ultra.Rf_distance.clusters tree

let support ~rng ?(replicates = 100) ?(distance = Distance.Jc) ~construct
    ~reference seqs =
  if replicates < 1 then invalid_arg "Bootstrap.support: replicates < 1";
  if Utree.n_leaves reference <> Array.length seqs then
    invalid_arg "Bootstrap.support: reference does not match sequences";
  let target = clusters_of reference in
  let hits = Hashtbl.create (List.length target) in
  List.iter (fun c -> Hashtbl.replace hits c 0) target;
  for _ = 1 to replicates do
    let matrix = Distance.matrix ~kind:distance (resample ~rng seqs) in
    let tree = construct matrix in
    List.iter
      (fun c ->
        match Hashtbl.find_opt hits c with
        | Some k -> Hashtbl.replace hits c (k + 1)
        | None -> ())
      (clusters_of tree)
  done;
  List.map
    (fun c ->
      (c, float_of_int (Hashtbl.find hits c) /. float_of_int replicates))
    target
