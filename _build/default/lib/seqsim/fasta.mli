(** FASTA reading and writing — the lingua franca for sequence data, so
    the sequences-model pipeline can start from ordinary files. *)

type entry = { name : string; seq : Dna.t }

val of_string : string -> entry list
(** Parse FASTA text: [>]-headers (first word is the name) followed by
    sequence lines; blank lines ignored; case-insensitive bases.
    @raise Failure on malformed input (no header, empty sequence, bad
    characters, duplicate names). *)

val to_string : ?width:int -> entry list -> string
(** Render with lines wrapped at [width] (default 70) bases. *)

val read_file : string -> entry list
val write_file : string -> entry list -> unit
