lib/bnb/import.ml: Clustering Distmat Ultra
