lib/bnb/solver.ml: Array Bb_tree Dist_matrix Float Import Int Linkage List Nj Permutation Relation33 Stats Utree
