lib/bnb/stats.mli: Format
