lib/bnb/local_search.ml: Bb_tree Float Fun Import Linkage List Utree
