lib/bnb/enumerate.ml: Bb_tree Dist_matrix Import List Utree
