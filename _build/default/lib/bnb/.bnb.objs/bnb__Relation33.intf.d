lib/bnb/relation33.mli: Dist_matrix Import Utree
