lib/bnb/solver.mli: Bb_tree Dist_matrix Import Permutation Stats Utree
