lib/bnb/bb_tree.mli: Dist_matrix Import Utree
