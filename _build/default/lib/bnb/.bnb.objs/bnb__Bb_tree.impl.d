lib/bnb/bb_tree.ml: Array Dist_matrix Float Import List Utree
