lib/bnb/stats.ml: Format Int
