lib/bnb/enumerate.mli: Dist_matrix Import Utree
