lib/bnb/relation33.ml: Array Dist_matrix Import List Utree
