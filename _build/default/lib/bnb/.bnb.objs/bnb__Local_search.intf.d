lib/bnb/local_search.mli: Dist_matrix Import Utree
