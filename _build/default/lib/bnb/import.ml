(* Aliases for modules from dependency libraries. *)

module Dist_matrix = Distmat.Dist_matrix
module Permutation = Distmat.Permutation
module Utree = Ultra.Utree
module Linkage = Clustering.Linkage
module Nj = Clustering.Nj
