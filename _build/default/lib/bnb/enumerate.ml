open Import

let count n =
  if n < 1 then invalid_arg "Enumerate.count: n < 1";
  if n > 17 then invalid_arg "Enumerate.count: overflow";
  let rec go acc k = if k <= 1 then acc else go (acc * k) (k - 2) in
  go 1 ((2 * n) - 3)

let iter dm f =
  let n = Dist_matrix.size dm in
  if n > 12 then invalid_arg "Enumerate.iter: n too large";
  if n = 1 then f (Utree.leaf 0)
  else begin
    let start =
      Utree.node (Dist_matrix.get dm 0 1 /. 2.) (Utree.leaf 0) (Utree.leaf 1)
    in
    let rec go t k =
      if k = n then f t
      else List.iter (fun t' -> go t' (k + 1)) (Bb_tree.insertions dm t k)
    in
    go start 2
  end

let minimum dm =
  let best = ref None in
  iter dm (fun t ->
      let w = Utree.weight t in
      match !best with
      | Some (w0, _) when w0 <= w -> ()
      | Some _ | None -> best := Some (w, t));
  match !best with Some (_, t) -> t | None -> assert false
