open Import

type outcome = {
  tree : Utree.t;
  cost : float;
  rounds : int;
  improvements : int;
}

(* An internal edge joins an internal node [v] to an internal child [c].
   With [c]'s children (x, y) and [v]'s other child z, the two NNI
   rearrangements swap z with x or with y.  Heights are placeholders
   (parents get max-of-children) and are re-realised by the caller. *)
let neighbors tree =
  let acc = ref [] in
  let mk l r = Utree.node (Float.max (Utree.height l) (Utree.height r)) l r in
  (* Rebuild the tree with subtree [fresh] in place of the node currently
     at [path] — we recurse carrying a context function. *)
  let rec visit t (rebuild : Utree.t -> Utree.t) =
    match t with
    | Utree.Leaf _ -> ()
    | Utree.Node n ->
        (match (n.left, n.right) with
        | Utree.Node c, z ->
            (* Internal edge t -> left child. *)
            acc := rebuild (mk (mk c.left z) c.right) :: !acc;
            acc := rebuild (mk (mk c.right z) c.left) :: !acc
        | _ -> ());
        (match (n.right, n.left) with
        | Utree.Node c, z ->
            acc := rebuild (mk (mk c.left z) c.right) :: !acc;
            acc := rebuild (mk (mk c.right z) c.left) :: !acc
        | _ -> ());
        visit n.left (fun sub ->
            rebuild (Utree.Node { n with left = sub }));
        visit n.right (fun sub ->
            rebuild (Utree.Node { n with right = sub }))
  in
  visit tree Fun.id;
  !acc

let delete_leaf x tree =
  let rec go = function
    | Utree.Leaf i -> if i = x then None else Some (Utree.Leaf i)
    | Utree.Node n -> (
        match (go n.left, go n.right) with
        | None, Some s | Some s, None -> Some s
        | Some l, Some r -> Some (Utree.Node { n with left = l; right = r })
        | None, None -> None)
  in
  go tree

let leaf_moves dm tree =
  List.concat_map
    (fun x ->
      match delete_leaf x tree with
      | None | Some (Utree.Leaf _) -> []
      | Some pruned -> Bb_tree.insertions dm pruned x)
    (Utree.leaves tree)

let improve ?(max_rounds = 50) dm start =
  let realize t = Utree.minimal_realization dm t in
  let current = ref (realize start) in
  let cost = ref (Utree.weight !current) in
  let rounds = ref 0 and improvements = ref 0 in
  let improved = ref true in
  while !improved && !rounds < max_rounds do
    improved := false;
    incr rounds;
    (* Steepest descent: scan all neighbours, move to the best one. *)
    List.iter
      (fun candidate ->
        let candidate = realize candidate in
        let w = Utree.weight candidate in
        if w < !cost -. 1e-12 then begin
          cost := w;
          current := candidate;
          improved := true;
          incr improvements
        end)
      (neighbors !current @ leaf_moves dm !current)
  done;
  { tree = !current; cost = !cost; rounds = !rounds; improvements = !improvements }

let from_upgmm ?max_rounds dm = improve ?max_rounds dm (Linkage.upgmm dm)
