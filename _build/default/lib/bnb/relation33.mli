open Import

(** The 3-3 relationship between a distance matrix and a tree topology
    (Definition 11 of the companion paper, after Fan 2000).

    For any three species, the matrix may single out a {e strictly}
    closest pair; a binary tree always groups exactly one of the three
    pairs below the triple's common ancestor.  A triple is
    {e contradictory} when the matrix's strict pair differs from the
    tree's pair.  Counting contradictions measures how faithfully a tree
    reflects the matrix; constraining branch-and-bound insertions to
    avoid new contradictions prunes the solution space (the companion
    paper applies it when inserting the third species; applying it at
    every insertion is its stated future work, exposed here as
    {!compatible_insertion}). *)

val matrix_pair : Dist_matrix.t -> int -> int -> int -> (int * int) option
(** [matrix_pair dm i j k] is the pair of the triple at strictly smaller
    distance than the other two pairs, or [None] when ties prevent a
    strict choice.  The pair is returned with smaller index first. *)

val tree_pair : Utree.t -> int -> int -> int -> int * int
(** The pair grouped below the triple's common ancestor (well defined on
    binary trees).  @raise Not_found if a label is missing from the
    tree. *)

val contradicts : Dist_matrix.t -> Utree.t -> int -> int -> int -> bool
(** Whether the triple is contradictory: the matrix names a strict pair
    and the tree groups a different one. *)

val count_contradictions : Dist_matrix.t -> Utree.t -> int
(** Contradictory triples over all [C(n,3)] triples of the tree's leaves
    (Fan's tree-quality measure).  The tree's leaves must be exactly
    [0 .. n-1] for the matrix's [n]. *)

val compatible_insertion : Dist_matrix.t -> Utree.t -> int -> bool
(** [compatible_insertion dm t sp]: [t] is a topology that already
    contains leaf [sp]; check that no triple [(sp, a, b)] is
    contradictory.  O(k^2) for a tree with [k] leaves. *)
