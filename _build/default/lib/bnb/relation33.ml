open Import

let ordered a b = if a < b then (a, b) else (b, a)

let matrix_pair dm i j k =
  let dij = Dist_matrix.get dm i j
  and dik = Dist_matrix.get dm i k
  and djk = Dist_matrix.get dm j k in
  if dij < dik && dij < djk then Some (ordered i j)
  else if dik < dij && dik < djk then Some (ordered i k)
  else if djk < dij && djk < dik then Some (ordered j k)
  else None

(* Heights of [LCA(sp, a)] for every other leaf [a], in one traversal:
   walking the root-to-[sp] path, every leaf hanging off the path at a
   node has its LCA with [sp] exactly there. *)
let lca_heights_from t sp =
  let acc = ref [] in
  let rec record_all h t =
    match t with
    | Utree.Leaf a -> acc := (a, h) :: !acc
    | Utree.Node n ->
        record_all h n.left;
        record_all h n.right
  in
  let rec contains x = function
    | Utree.Leaf l -> l = x
    | Utree.Node n -> contains x n.left || contains x n.right
  in
  let rec walk t =
    match t with
    | Utree.Leaf l -> if l <> sp then raise Not_found
    | Utree.Node n ->
        if contains sp n.left then begin
          record_all n.height n.right;
          walk n.left
        end
        else begin
          record_all n.height n.left;
          walk n.right
        end
  in
  walk t;
  !acc

let tree_pair t i j k =
  let hs = lca_heights_from t i in
  let hj = List.assoc j hs and hk = List.assoc k hs in
  if hj < hk then ordered i j
  else if hk < hj then ordered i k
  else ordered j k

let contradicts dm t i j k =
  match matrix_pair dm i j k with
  | None -> false
  | Some p -> p <> tree_pair t i j k

let count_contradictions dm t =
  let n = Dist_matrix.size dm in
  let count = ref 0 in
  for i = 0 to n - 1 do
    (* One path walk per leaf i gives LCA heights to every other leaf. *)
    let hs = lca_heights_from t i in
    let h = Array.make n 0. in
    List.iter (fun (a, x) -> h.(a) <- x) hs;
    for j = i + 1 to n - 1 do
      for k = j + 1 to n - 1 do
        let tpair =
          if h.(j) < h.(k) then (i, j)
          else if h.(k) < h.(j) then (i, k)
          else (j, k)
        in
        match matrix_pair dm i j k with
        | Some p when p <> tpair -> incr count
        | Some _ | None -> ()
      done
    done
  done;
  !count

let compatible_insertion dm t sp =
  let hs = lca_heights_from t sp in
  let rec pairs = function
    | [] -> true
    | (a, ha) :: rest ->
        List.for_all
          (fun (b, hb) ->
            let tpair =
              if ha < hb then ordered sp a
              else if hb < ha then ordered sp b
              else ordered a b
            in
            match matrix_pair dm sp a b with
            | None -> true
            | Some p -> p = tpair)
          rest
        && pairs rest
  in
  pairs hs
