(** Search statistics for branch-and-bound runs. *)

type t = {
  mutable expanded : int;  (** BBT nodes whose children were generated *)
  mutable generated : int;  (** children created by branching *)
  mutable pruned : int;  (** children discarded because [LB >= UB] *)
  mutable pruned_33 : int;  (** children discarded by the 3-3 relationship *)
  mutable ub_updates : int;  (** times a better feasible solution was found *)
  mutable max_open : int;  (** high-water mark of the open list *)
}

val create : unit -> t
val add : t -> t -> unit
(** [add acc s] accumulates [s] into [acc] (max for [max_open]). *)

val pp : Format.formatter -> t -> unit
