type t = {
  mutable expanded : int;
  mutable generated : int;
  mutable pruned : int;
  mutable pruned_33 : int;
  mutable ub_updates : int;
  mutable max_open : int;
}

let create () =
  {
    expanded = 0;
    generated = 0;
    pruned = 0;
    pruned_33 = 0;
    ub_updates = 0;
    max_open = 0;
  }

let add acc s =
  acc.expanded <- acc.expanded + s.expanded;
  acc.generated <- acc.generated + s.generated;
  acc.pruned <- acc.pruned + s.pruned;
  acc.pruned_33 <- acc.pruned_33 + s.pruned_33;
  acc.ub_updates <- acc.ub_updates + s.ub_updates;
  acc.max_open <- Int.max acc.max_open s.max_open

let pp ppf s =
  Format.fprintf ppf
    "expanded=%d generated=%d pruned=%d pruned33=%d ub_updates=%d max_open=%d"
    s.expanded s.generated s.pruned s.pruned_33 s.ub_updates s.max_open
