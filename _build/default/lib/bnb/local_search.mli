open Import

(** Local search for ultrametric trees: nearest-neighbour interchanges
    (NNI) plus single-leaf reinsertion (a restricted SPR).

    When a matrix has no useful compact sets and branch-and-bound is out
    of reach, hill-climbing from a heuristic tree is the standard
    fallback.  NNI alone is weak for the ultrametric cost (UPGMM trees
    are frequently NNI-local-optima even when globally suboptimal — see
    the A-8 ablation), so each round also tries pruning every leaf and
    reinserting it at every position.  The result is never worse than
    the starting tree. *)

type outcome = {
  tree : Utree.t;  (** locally optimal minimal realization *)
  cost : float;
  rounds : int;  (** full NNI sweeps performed *)
  improvements : int;  (** accepted interchanges *)
}

val neighbors : Utree.t -> Utree.t list
(** All trees one NNI move away (two per internal edge), as bare
    topologies (heights not re-realised). *)

val leaf_moves : Dist_matrix.t -> Utree.t -> Utree.t list
(** All trees obtained by pruning one leaf and reinserting it elsewhere
    (heights re-realised along the insertion path). *)

val improve :
  ?max_rounds:int -> Dist_matrix.t -> Utree.t -> outcome
(** Hill-climb from the given topology over the combined NNI +
    leaf-reinsertion neighbourhood (default at most 50 sweeps).  The
    starting tree's leaves must be exactly the matrix's species. *)

val from_upgmm : ?max_rounds:int -> Dist_matrix.t -> outcome
(** Convenience: hill-climb starting from the UPGMM tree. *)
