open Import

(** Exhaustive enumeration of rooted binary topologies.

    There are [(2n-3)!! = 1 * 3 * ... * (2n-3)] leaf-labelled rooted
    binary trees on [n] leaves — the [A(n)] counts the papers quote
    ([A(20) > 10^21]).  Exhaustive enumeration is the ground truth the
    test suite checks the branch-and-bound against, and a practical
    solver for up to ~9 species. *)

val count : int -> int
(** [(2n-3)!!] for [n >= 1].  @raise Invalid_argument for [n < 1] or
    when the count overflows [int] (n > 17 on 64-bit). *)

val iter : Dist_matrix.t -> (Utree.t -> unit) -> unit
(** Apply a function to the minimal realization of every topology over
    the matrix's species.  Visits [count n] trees; guarded to [n <= 12].
    @raise Invalid_argument beyond the guard. *)

val minimum : Dist_matrix.t -> Utree.t
(** The exact minimum ultrametric tree by enumeration (first optimal
    tree in generation order).  Same guard as {!iter}. *)
