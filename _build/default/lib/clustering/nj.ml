open Import

let rooted_topology dm =
  let n = Dist_matrix.size dm in
  if n < 2 then invalid_arg "Nj.rooted_topology: need at least 2 species";
  if n = 2 then Utree.node 0. (Utree.leaf 0) (Utree.leaf 1)
  else begin
    let d = Array.init n (fun i -> Array.init n (Dist_matrix.get dm i)) in
    let tree = Array.init n (fun i -> Utree.leaf i) in
    let active = ref (List.init n Fun.id) in
    (* Classic NJ: minimise Q(i,j) = (r-2) d(i,j) - R(i) - R(j) where r is
       the number of active clusters and R is the row sum over them. *)
    while List.length !active > 2 do
      let act = !active in
      let r = float_of_int (List.length act) in
      let row_sum i =
        List.fold_left (fun acc k -> if k = i then acc else acc +. d.(i).(k)) 0. act
      in
      let sums = List.map (fun i -> (i, row_sum i)) act in
      let sum_of i = List.assoc i sums in
      let best = ref infinity and bi = ref (-1) and bj = ref (-1) in
      List.iter
        (fun i ->
          List.iter
            (fun j ->
              if i < j then begin
                let q = ((r -. 2.) *. d.(i).(j)) -. sum_of i -. sum_of j in
                if q < !best then begin
                  best := q;
                  bi := i;
                  bj := j
                end
              end)
            act)
        act;
      let i = !bi and j = !bj in
      (* Join i and j into slot i; distances to the new cluster follow the
         standard NJ update. *)
      List.iter
        (fun k ->
          if k <> i && k <> j then begin
            let nd = (d.(i).(k) +. d.(j).(k) -. d.(i).(j)) /. 2. in
            d.(i).(k) <- nd;
            d.(k).(i) <- nd
          end)
        act;
      let h = Float.max (Utree.height tree.(i)) (Utree.height tree.(j)) in
      tree.(i) <- Utree.node h tree.(i) tree.(j);
      active := List.filter (fun k -> k <> j) act
    done;
    match !active with
    | [ a; b ] ->
        let h = Float.max (Utree.height tree.(a)) (Utree.height tree.(b)) in
        Utree.node h tree.(a) tree.(b)
    | _ -> assert false
  end

let ultrametric_of dm = Utree.minimal_realization dm (rooted_topology dm)
