lib/clustering/nj.mli: Dist_matrix Import Utree
