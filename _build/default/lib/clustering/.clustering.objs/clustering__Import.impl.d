lib/clustering/import.ml: Distmat Ultra
