lib/clustering/nj.ml: Array Dist_matrix Float Fun Import List Utree
