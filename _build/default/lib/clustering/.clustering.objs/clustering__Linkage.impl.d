lib/clustering/linkage.ml: Array Dist_matrix Float Import Option Utree
