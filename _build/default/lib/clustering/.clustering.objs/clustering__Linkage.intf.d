lib/clustering/linkage.mli: Dist_matrix Import Utree
