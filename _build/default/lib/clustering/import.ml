(* Aliases for modules from dependency libraries. *)

module Dist_matrix = Distmat.Dist_matrix
module Utree = Ultra.Utree
