open Import

(** Neighbor joining (Saitou & Nei 1987) — the classical distance-based
    baseline the papers cite.

    NJ produces an unrooted additive tree; we root it at the final join
    and return the topology.  Use {!rooted_topology} together with
    {!Ultra.Utree.minimal_realization} to obtain a feasible ultrametric
    tree, e.g. as an alternative initial upper bound for the
    branch-and-bound (ablation A-5 in DESIGN.md). *)

val rooted_topology : Dist_matrix.t -> Utree.t
(** Run NJ and return the rooted topology (heights all zero except where
    needed to stay monotone — callers should re-realise heights against a
    matrix).  @raise Invalid_argument for fewer than 2 species. *)

val ultrametric_of : Dist_matrix.t -> Utree.t
(** [minimal_realization dm (rooted_topology dm)] — a feasible ultrametric
    tree guided by the NJ topology. *)
