open Import

type t = Single | Complete | Average | Weighted

let lance_williams linkage ~size_a ~size_b d_ak d_bk =
  match linkage with
  | Single -> Float.min d_ak d_bk
  | Complete -> Float.max d_ak d_bk
  | Average ->
      let na = float_of_int size_a and nb = float_of_int size_b in
      ((na *. d_ak) +. (nb *. d_bk)) /. (na +. nb)
  | Weighted -> (d_ak +. d_bk) /. 2.

let cluster linkage dm =
  let n = Dist_matrix.size dm in
  if n < 2 then invalid_arg "Linkage.cluster: need at least 2 species";
  (* Active clusters are slots 0 .. n-1; a merged pair reuses the smaller
     slot.  [d] is the evolving cluster-distance matrix. *)
  let d = Array.init n (fun i -> Array.init n (fun j -> Dist_matrix.get dm i j)) in
  let tree = Array.init n (fun i -> Utree.leaf i) in
  let size = Array.make n 1 in
  let active = Array.make n true in
  for _step = 1 to n - 1 do
    let bi = ref (-1) and bj = ref (-1) and best = ref infinity in
    for i = 0 to n - 1 do
      if active.(i) then
        for j = i + 1 to n - 1 do
          if active.(j) && d.(i).(j) < !best then begin
            best := d.(i).(j);
            bi := i;
            bj := j
          end
        done
    done;
    let a = !bi and b = !bj in
    let h =
      (* Clamp against children so inversions (possible for exotic inputs
         under Average/Weighted) never produce an invalid tree. *)
      Float.max (!best /. 2.)
        (Float.max (Utree.height tree.(a)) (Utree.height tree.(b)))
    in
    tree.(a) <- Utree.node h tree.(a) tree.(b);
    active.(b) <- false;
    for k = 0 to n - 1 do
      if active.(k) && k <> a then begin
        let nd =
          lance_williams linkage ~size_a:size.(a) ~size_b:size.(b) d.(a).(k)
            d.(b).(k)
        in
        d.(a).(k) <- nd;
        d.(k).(a) <- nd
      end
    done;
    size.(a) <- size.(a) + size.(b)
  done;
  let root = ref None in
  Array.iteri (fun i alive -> if alive then root := Some tree.(i)) active;
  Option.get !root

let upgmm dm = cluster Complete dm
let upgma dm = cluster Average dm
