open Import

(** Agglomerative hierarchical clustering.

    All four classical linkages share one engine: repeatedly merge the
    two closest clusters at height [d/2] and update the cluster-distance
    row with the Lance-Williams rule of the chosen linkage.

    [Complete] is the paper's {b UPGMM} ("Unweighted Pair Group Method
    with Maximum"): because the merged cluster keeps the {e maximum}
    pairwise distance, the produced tree satisfies
    [d_T(i,j) >= D(i,j)] for every pair — a feasible ultrametric tree,
    which is what algorithm BBU uses as its initial upper bound. *)

type t =
  | Single  (** minimum cross distance *)
  | Complete  (** maximum cross distance — the paper's UPGMM *)
  | Average  (** unweighted mean — classical UPGMA *)
  | Weighted  (** WPGMA: midpoint mean *)

val cluster : t -> Dist_matrix.t -> Utree.t
(** Build the dendrogram as an ultrametric tree over species
    [0 .. n-1].  Deterministic: ties pick the smallest cluster indices.
    @raise Invalid_argument if the matrix has fewer than 2 species. *)

val upgmm : Dist_matrix.t -> Utree.t
(** [cluster Complete] — the paper's initial-upper-bound heuristic. *)

val upgma : Dist_matrix.t -> Utree.t
(** [cluster Average]. *)
