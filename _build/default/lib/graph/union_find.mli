(** Disjoint-set forest with union by rank and path compression. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets [0 .. n-1].
    @raise Invalid_argument if [n < 0]. *)

val find : t -> int -> int
(** Canonical representative of the set containing the element. *)

val union : t -> int -> int -> int
(** [union uf a b] merges the two sets and returns the representative of
    the merged set.  Merging an element with itself is a no-op. *)

val same : t -> int -> int -> bool

val size : t -> int -> int
(** Number of elements in the set containing the given element. *)

val n_sets : t -> int
(** Current number of disjoint sets. *)

val members : t -> int -> int list
(** Elements of the set containing the given element, ascending.  O(n). *)
