open Import

let canonical sets =
  let sets = List.map (List.sort_uniq compare) sets in
  List.sort_uniq
    (fun a b ->
      match compare (List.length a) (List.length b) with
      | 0 -> compare a b
      | c -> c)
    sets

let is_compact dm members =
  let n = Dist_matrix.size dm in
  let seen = Array.make n false in
  List.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Compact_sets.is_compact: range";
      if seen.(i) then invalid_arg "Compact_sets.is_compact: duplicate";
      seen.(i) <- true)
    members;
  let k = List.length members in
  if k < 2 || k >= n then false
  else begin
    let max_in = ref neg_infinity and min_out = ref infinity in
    List.iter
      (fun i ->
        for j = 0 to n - 1 do
          if j <> i then
            if seen.(j) then begin
              if j > i then
                max_in := Float.max !max_in (Dist_matrix.get dm i j)
            end
            else min_out := Float.min !min_out (Dist_matrix.get dm i j)
        done)
      members;
    !max_in < !min_out
  end

let brute_force dm =
  let n = Dist_matrix.size dm in
  if n > 20 then invalid_arg "Compact_sets.brute_force: n too large";
  let acc = ref [] in
  for mask = 1 to (1 lsl n) - 1 do
    let members =
      List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id)
    in
    let k = List.length members in
    if k >= 2 && k < n && is_compact dm members then acc := members :: !acc
  done;
  canonical !acc

let find_naive ?mst dm =
  let n = Dist_matrix.size dm in
  if n < 2 then []
  else begin
    let mst =
      match mst with
      | Some es ->
          if not (Mst.is_spanning_tree ~n es) then
            invalid_arg "Compact_sets.find_naive: not a spanning tree";
          List.sort Wgraph.compare_edge es
      | None -> Mst.kruskal (Wgraph.complete_of_matrix dm)
    in
    let uf = Union_find.create n in
    let acc = ref [] in
    (* Paper's Step 4: process the first n-2 edges only, so the full
       vertex set is never formed (it is not a compact set by
       definition). *)
    let rec sweep remaining edges =
      match edges with
      | [] -> ()
      | _ when remaining = 0 -> ()
      | (e : Wgraph.edge) :: rest ->
          ignore (Union_find.union uf e.u e.v);
          let a = Union_find.members uf e.u in
          if is_compact dm a then acc := a :: !acc;
          sweep (remaining - 1) rest
    in
    sweep (n - 2) mst;
    canonical !acc
  end

let find_general ~alpha dm =
  let n = Dist_matrix.size dm in
  if n < 3 then []
  else begin
    let mst = Mst.prim dm in
    let uf = Union_find.create n in
    (* Per-root state.  [ctable] rows exist for every vertex but only root
       rows are meaningful; [live] tracks current roots. *)
    let max_in = Array.make n neg_infinity in
    let members = Array.init n (fun i -> [ i ]) in
    let ctable =
      Array.init n (fun i ->
          Array.init n (fun j ->
              if i = j then infinity else Dist_matrix.get dm i j))
    in
    let live = Array.make n true in
    let acc = ref [] in
    let merge_count = ref 0 in
    List.iter
      (fun (e : Wgraph.edge) ->
        incr merge_count;
        if !merge_count <= n - 2 then begin
          let ra = Union_find.find uf e.u and rb = Union_find.find uf e.v in
          (* Cross maximum: every vertex pair is scanned exactly once over
             the whole sweep, so this is O(n^2) amortised. *)
          let cross = ref neg_infinity in
          List.iter
            (fun i ->
              List.iter
                (fun j -> cross := Float.max !cross (Dist_matrix.get dm i j))
                members.(rb))
            members.(ra);
          let r = Union_find.union uf e.u e.v in
          let o = if r = ra then rb else ra in
          max_in.(r) <- Float.max !cross (Float.max max_in.(ra) max_in.(rb));
          members.(r) <- List.rev_append members.(o) members.(r);
          members.(o) <- [];
          live.(o) <- false;
          for c = 0 to n - 1 do
            if live.(c) && c <> r then begin
              let d = Float.min ctable.(r).(c) ctable.(o).(c) in
              ctable.(r).(c) <- d;
              ctable.(c).(r) <- d
            end
          done;
          let min_out = ref infinity in
          for c = 0 to n - 1 do
            if live.(c) && c <> r then
              min_out := Float.min !min_out ctable.(r).(c)
          done;
          if max_in.(r) < alpha *. !min_out then acc := members.(r) :: !acc
        end)
      mst;
    canonical !acc
  end

let find dm = find_general ~alpha:1. dm

(* Keep a laminar subfamily of a possibly-crossing family: insert sets
   from largest to smallest, dropping any that cross a kept one. *)
let laminar_filter sets =
  let crosses a b =
    let inter = List.exists (fun x -> List.mem x b) a in
    let a_in_b = List.for_all (fun x -> List.mem x b) a in
    let b_in_a = List.for_all (fun x -> List.mem x a) b in
    inter && (not a_in_b) && not b_in_a
  in
  let by_size_desc =
    List.sort (fun a b -> compare (List.length b) (List.length a)) sets
  in
  List.rev
    (List.fold_left
       (fun kept set ->
         if List.exists (crosses set) kept then kept else set :: kept)
       [] by_size_desc)

let find_relaxed ~alpha dm =
  if alpha < 1. then invalid_arg "Compact_sets.find_relaxed: alpha < 1";
  canonical (laminar_filter (find_general ~alpha dm))
