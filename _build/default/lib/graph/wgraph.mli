open Import

(** Edge-weighted undirected graphs.

    The paper views a distance matrix as a complete weighted graph
    [G = (V, E)]; minimum spanning trees and compact sets are defined on
    that graph. *)

type edge = { u : int; v : int; w : float }
(** An undirected edge; constructors normalise so that [u < v]. *)

type t
(** A graph on vertices [0 .. n-1]. *)

val edge : int -> int -> float -> edge
(** Build a normalised edge.  @raise Invalid_argument if [u = v], either
    endpoint is negative, or the weight is negative. *)

val create : n:int -> edge list -> t
(** @raise Invalid_argument on out-of-range endpoints or duplicate edges. *)

val complete_of_matrix : Dist_matrix.t -> t
(** The complete graph whose edge weights are the matrix entries. *)

val n_vertices : t -> int
val n_edges : t -> int
val edges : t -> edge list
(** All edges, in unspecified order. *)

val sorted_edges : t -> edge list
(** Edges by ascending weight; ties broken by endpoints, so the order is
    deterministic. *)

val neighbors : t -> int -> (int * float) list
(** Adjacent vertices with edge weights. *)

val is_connected : t -> bool

val compare_edge : edge -> edge -> int
(** Ascending weight, then lexicographic endpoints. *)

val pp_edge : Format.formatter -> edge -> unit
