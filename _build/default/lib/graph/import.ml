(* Aliases for modules from dependency libraries, so the rest of this
   library can refer to them by their short names. *)

module Dist_matrix = Distmat.Dist_matrix
module Metric = Distmat.Metric
