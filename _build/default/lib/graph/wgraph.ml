open Import

type edge = { u : int; v : int; w : float }

type t = { n : int; adj : (int * float) list array; m : int }

let edge u v w =
  if u = v then invalid_arg "Wgraph.edge: self loop";
  if u < 0 || v < 0 then invalid_arg "Wgraph.edge: negative vertex";
  if w < 0. then invalid_arg "Wgraph.edge: negative weight";
  if u < v then { u; v; w } else { u = v; v = u; w }

let create ~n es =
  let adj = Array.make n [] in
  let seen = Hashtbl.create (List.length es) in
  List.iter
    (fun e ->
      if e.v >= n then invalid_arg "Wgraph.create: vertex out of range";
      if Hashtbl.mem seen (e.u, e.v) then
        invalid_arg "Wgraph.create: duplicate edge";
      Hashtbl.add seen (e.u, e.v) ();
      adj.(e.u) <- (e.v, e.w) :: adj.(e.u);
      adj.(e.v) <- (e.u, e.w) :: adj.(e.v))
    es;
  { n; adj; m = List.length es }

let complete_of_matrix dm =
  let n = Dist_matrix.size dm in
  let es =
    Dist_matrix.fold_pairs (fun acc i j w -> edge i j w :: acc) [] dm
  in
  create ~n es

let n_vertices g = g.n
let n_edges g = g.m

let edges g =
  let acc = ref [] in
  for u = 0 to g.n - 1 do
    List.iter (fun (v, w) -> if u < v then acc := { u; v; w } :: !acc) g.adj.(u)
  done;
  !acc

let compare_edge a b =
  match Float.compare a.w b.w with
  | 0 -> ( match compare a.u b.u with 0 -> compare a.v b.v | c -> c)
  | c -> c

let sorted_edges g = List.sort compare_edge (edges g)

let neighbors g u =
  if u < 0 || u >= g.n then invalid_arg "Wgraph.neighbors: out of range";
  g.adj.(u)

let is_connected g =
  if g.n = 0 then true
  else begin
    let visited = Array.make g.n false in
    let rec dfs u =
      visited.(u) <- true;
      List.iter (fun (v, _) -> if not visited.(v) then dfs v) g.adj.(u)
    in
    dfs 0;
    Array.for_all Fun.id visited
  end

let pp_edge ppf e = Format.fprintf ppf "(%d-%d: %g)" e.u e.v e.w
