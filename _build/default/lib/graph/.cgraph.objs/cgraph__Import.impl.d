lib/graph/import.ml: Distmat
