lib/graph/compact_sets.mli: Dist_matrix Import Wgraph
