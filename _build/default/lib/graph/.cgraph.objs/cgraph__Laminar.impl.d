lib/graph/laminar.ml: Array Format Fun Int List
