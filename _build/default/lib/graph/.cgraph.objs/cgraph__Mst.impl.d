lib/graph/mst.ml: Array Dist_matrix Import List Union_find Wgraph
