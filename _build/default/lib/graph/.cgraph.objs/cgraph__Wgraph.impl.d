lib/graph/wgraph.ml: Array Dist_matrix Float Format Fun Hashtbl Import List
