lib/graph/mst.mli: Dist_matrix Import Wgraph
