lib/graph/compact_sets.ml: Array Dist_matrix Float Fun Import List Mst Union_find Wgraph
