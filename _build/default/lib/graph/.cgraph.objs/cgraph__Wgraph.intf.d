lib/graph/wgraph.mli: Dist_matrix Format Import
