lib/graph/laminar.mli: Format
