open Import

let kruskal g =
  let n = Wgraph.n_vertices g in
  let uf = Union_find.create n in
  let mst =
    List.filter
      (fun (e : Wgraph.edge) ->
        if Union_find.same uf e.u e.v then false
        else begin
          ignore (Union_find.union uf e.u e.v);
          true
        end)
      (Wgraph.sorted_edges g)
  in
  if List.length mst <> n - 1 then
    invalid_arg "Mst.kruskal: graph is not connected";
  mst

let prim dm =
  let n = Dist_matrix.size dm in
  if n = 1 then []
  else begin
    let in_tree = Array.make n false in
    (* [best.(v)] = cheapest connection of v to the current tree. *)
    let best = Array.make n infinity in
    let best_from = Array.make n 0 in
    in_tree.(0) <- true;
    for v = 1 to n - 1 do
      best.(v) <- Dist_matrix.get dm 0 v
    done;
    let acc = ref [] in
    for _ = 1 to n - 1 do
      let v = ref (-1) in
      for x = 0 to n - 1 do
        if (not in_tree.(x)) && (!v < 0 || best.(x) < best.(!v)) then v := x
      done;
      let v = !v in
      in_tree.(v) <- true;
      acc := Wgraph.edge best_from.(v) v best.(v) :: !acc;
      for x = 0 to n - 1 do
        if not in_tree.(x) then begin
          let d = Dist_matrix.get dm v x in
          if d < best.(x) then begin
            best.(x) <- d;
            best_from.(x) <- v
          end
        end
      done
    done;
    List.sort Wgraph.compare_edge !acc
  end

let total_weight es =
  List.fold_left (fun acc (e : Wgraph.edge) -> acc +. e.w) 0. es

let is_spanning_tree ~n es =
  List.length es = n - 1
  &&
  let uf = Union_find.create n in
  List.for_all
    (fun (e : Wgraph.edge) ->
      e.u >= 0 && e.v < n
      && (not (Union_find.same uf e.u e.v))
      &&
      (ignore (Union_find.union uf e.u e.v);
       true))
    es
  && Union_find.n_sets uf = 1
