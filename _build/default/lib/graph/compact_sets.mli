open Import

(** Compact sets of a complete weighted graph (the paper's Section 3.1).

    A subset [C] of the vertices, with [2 <= |C| <= n-1], is {e compact}
    when the largest pairwise distance inside [C] is strictly smaller than
    the smallest distance from a vertex of [C] to a vertex outside [C]
    (Lemma 2 of the paper).  Compact sets are closed under the laminar
    property: two compact sets are either disjoint or nested (Lemma 3),
    and the MST restricted to a compact set spans it (Lemma 4) — which is
    why a single Kruskal sweep over the MST edges discovers all of them.

    Three implementations are provided: a brute-force reference (for
    tests), the paper's algorithm as published (MST + sweep with
    recomputed [Max(A)] / [Min(A, !A)], O(n^3) total), and an optimised
    O(n^2) version in the spirit of Liang (1993) that maintains
    per-component maxima and a component-pair minimum table.  All three
    agree on every input (see the test suite).

    Tie-breaking note: when several MSTs exist (equal-weight edges, the
    paper's Figure 7 situation), the discovered compact sets do not
    depend on the MST chosen, because compactness is a {e strict}
    inequality: every edge inside a compact set is strictly cheaper than
    every edge leaving it, so any ascending sweep forms the set before
    touching an outgoing edge. *)

val is_compact : Dist_matrix.t -> int list -> bool
(** Direct check of the definition.  Returns [false] for sets of size
    [< 2] or [>= n] and raises [Invalid_argument] on out-of-range or
    duplicate members. *)

val brute_force : Dist_matrix.t -> int list list
(** All compact sets by exhaustive enumeration of subsets — O(2^n);
    guarded to [n <= 20].  For tests.  Sets are sorted ascending; the
    list is ordered by size, then lexicographically. *)

val find_naive : ?mst:Wgraph.edge list -> Dist_matrix.t -> int list list
(** The paper's published algorithm: Kruskal MST (or the supplied [mst]),
    ascending edge sweep, full recomputation of [Max(A)] and
    [Min(A, !A)] after each merge.  Same output convention as
    {!brute_force}. *)

val find : Dist_matrix.t -> int list list
(** Optimised O(n^2) discovery (Prim MST + incremental component maxima +
    component-pair minimum table).  Same output convention as
    {!brute_force}. *)

val find_relaxed : alpha:float -> Dist_matrix.t -> int list list
(** {e Alpha-compact} sets: candidates from the same sweep whose maximum
    internal distance is below [alpha] times their minimum outgoing
    distance.  [alpha = 1.] is exactly {!find}; [alpha > 1.] accepts
    looser clusters, giving the decomposition more to work with on noisy
    matrices at some cost in tree quality (an extension beyond the
    paper; see ablation A-9).  Relaxed sets can cross, so the result is
    reduced to a laminar subfamily (larger sets win, then sweep order).
    @raise Invalid_argument if [alpha < 1.]. *)
