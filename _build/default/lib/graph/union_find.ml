type t = {
  parent : int array;
  rank : int array;
  size : int array;
  mutable n_sets : int;
}

let create n =
  if n < 0 then invalid_arg "Union_find.create: negative size";
  {
    parent = Array.init n (fun i -> i);
    rank = Array.make n 0;
    size = Array.make n 1;
    n_sets = n;
  }

let check uf i =
  if i < 0 || i >= Array.length uf.parent then
    invalid_arg "Union_find: element out of range"

let rec find_raw uf i =
  let p = uf.parent.(i) in
  if p = i then i
  else begin
    let root = find_raw uf p in
    uf.parent.(i) <- root;
    root
  end

let find uf i =
  check uf i;
  find_raw uf i

let union uf a b =
  let ra = find uf a and rb = find uf b in
  if ra = rb then ra
  else begin
    uf.n_sets <- uf.n_sets - 1;
    let hi, lo =
      if uf.rank.(ra) >= uf.rank.(rb) then (ra, rb) else (rb, ra)
    in
    uf.parent.(lo) <- hi;
    uf.size.(hi) <- uf.size.(hi) + uf.size.(lo);
    if uf.rank.(hi) = uf.rank.(lo) then uf.rank.(hi) <- uf.rank.(hi) + 1;
    hi
  end

let same uf a b = find uf a = find uf b
let size uf i = uf.size.(find uf i)
let n_sets uf = uf.n_sets

let members uf i =
  let root = find uf i in
  let acc = ref [] in
  for j = Array.length uf.parent - 1 downto 0 do
    if find_raw uf j = root then acc := j :: !acc
  done;
  !acc
