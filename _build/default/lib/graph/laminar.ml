type tree =
  | Elem of int
  | Set of { members : int array; children : tree list }

type t = { n : int; roots : tree list }

let members t =
  match t with Elem i -> [ i ] | Set s -> Array.to_list s.members

let representative t =
  match t with
  | Elem i -> i
  | Set s -> s.members.(0)

let compare_by_rep a b = compare (representative a) (representative b)

(* Mutable scaffolding used during construction only. *)
type builder = { bmembers : int array; mutable bchildren : builder_child list }
and builder_child = Bset of builder | Belem of int

let of_sets ~n sets =
  let sets =
    List.map
      (fun s ->
        let arr = Array.of_list (List.sort_uniq compare s) in
        if Array.length arr <> List.length s then
          invalid_arg "Laminar.of_sets: duplicate member in a set";
        if Array.length arr < 2 then
          invalid_arg "Laminar.of_sets: sets must have >= 2 members";
        Array.iter
          (fun i ->
            if i < 0 || i >= n then
              invalid_arg "Laminar.of_sets: member out of range")
          arr;
        arr)
      sets
  in
  (* Insert big sets first so that each set lands below every strict
     superset already placed. *)
  let sets =
    List.sort (fun a b -> compare (Array.length b) (Array.length a)) sets
  in
  let top = { bmembers = Array.init n Fun.id; bchildren = [] } in
  for i = 0 to n - 1 do
    top.bchildren <- Belem i :: top.bchildren
  done;
  let subset a b =
    (* both sorted *)
    let la = Array.length a and lb = Array.length b in
    la <= lb
    &&
    let j = ref 0 in
    Array.for_all
      (fun x ->
        while !j < lb && b.(!j) < x do
          incr j
        done;
        !j < lb && b.(!j) = x)
      a
  in
  let intersects a b =
    Array.exists (fun x -> Array.exists (fun y -> x = y) b) a
  in
  let rec insert node set =
    (* Precondition: set is a subset of node.bmembers and is distinct from
       every set already in the tree (duplicates were removed upstream). *)
    match
      List.find_opt
        (function Bset c -> subset set c.bmembers | Belem _ -> false)
        node.bchildren
    with
    | Some (Bset child) -> insert child set
    | Some (Belem _) -> assert false
    | None ->
        (* The set becomes a new child here; it absorbs every current
           child it contains.  Partial overlap with a child set means the
           family is not laminar. *)
        let absorbed, kept =
          List.partition
            (function
              | Belem i -> Array.exists (fun x -> x = i) set
              | Bset c -> subset c.bmembers set)
            node.bchildren
        in
        List.iter
          (function
            | Bset c when intersects c.bmembers set ->
                invalid_arg "Laminar.of_sets: sets are not laminar"
            | _ -> ())
          kept;
        let fresh = { bmembers = set; bchildren = absorbed } in
        node.bchildren <- Bset fresh :: kept
  in
  List.iter
    (fun set ->
      if Array.length set = n then
        invalid_arg "Laminar.of_sets: a set may not cover all vertices";
      insert top set)
    (List.sort_uniq compare sets);
  let rec freeze = function
    | Belem i -> Elem i
    | Bset b ->
        Set
          {
            members = b.bmembers;
            children =
              List.sort compare_by_rep (List.map freeze b.bchildren);
          }
  in
  { n; roots = List.sort compare_by_rep (List.map freeze top.bchildren) }

let rec count_sets = function
  | Elem _ -> 0
  | Set s -> List.fold_left (fun acc c -> acc + count_sets c) 1 s.children

let n_sets t = List.fold_left (fun acc r -> acc + count_sets r) 0 t.roots

let rec tree_depth = function
  | Elem _ -> 0
  | Set s ->
      1 + List.fold_left (fun acc c -> Int.max acc (tree_depth c)) 0 s.children

let depth t = List.fold_left (fun acc r -> Int.max acc (tree_depth r)) 0 t.roots

let internal_nodes t =
  let blocks = ref [] in
  let rec visit = function
    | Elem _ -> ()
    | Set s ->
        blocks := (s.children, Array.to_list s.members) :: !blocks;
        List.iter visit s.children
  in
  List.iter visit t.roots;
  (t.roots, List.init t.n Fun.id) :: List.rev !blocks

let rec pp_tree ppf = function
  | Elem i -> Format.fprintf ppf "%d" i
  | Set s ->
      Format.fprintf ppf "{@[%a@]}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           pp_tree)
        s.children

let pp ppf t =
  Format.fprintf ppf "@[<hov>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " |@ ")
       pp_tree)
    t.roots
