(** Laminar forests of compact sets.

    Compact sets of a graph are pairwise disjoint-or-nested (Lemma 3 of
    the paper), so they organise into a forest under inclusion.  The
    paper's decomposition exploits this: each compact set becomes a block
    solved independently, with its immediate children (smaller compact
    sets, or loose vertices) as the block's "species". *)

type tree =
  | Elem of int  (** a single vertex not wrapped in any smaller set *)
  | Set of { members : int array; children : tree list }
      (** a compact set; [members] sorted ascending, [children] ordered by
          smallest member *)

type t = { n : int; roots : tree list }
(** A forest covering the vertices [0 .. n-1]: the virtual top level whose
    children are the maximal compact sets and the uncovered vertices. *)

val of_sets : n:int -> int list list -> t
(** Build the forest.
    @raise Invalid_argument if the sets are not laminar, contain
    out-of-range or duplicate members, or have fewer than 2 members. *)

val members : tree -> int list
(** Vertices covered by a tree, ascending. *)

val representative : tree -> int
(** Smallest member — used to label a block's row in small matrices. *)

val n_sets : t -> int
(** Number of [Set] nodes in the forest. *)

val depth : t -> int
(** Length of the longest chain of nested sets (0 when there are none). *)

val internal_nodes : t -> (tree list * int list) list
(** Every "block" of the decomposition: for the virtual root and for each
    [Set] node, the pair of its children list and its member list.  The
    virtual root block comes first; blocks with a single child are
    included (they become trivial matrices). *)

val pp : Format.formatter -> t -> unit
