open Import

(** Minimum spanning trees.

    Step 1 of the paper's compact-set algorithm: find the MST of the
    complete graph induced by the distance matrix (the paper uses
    Kruskal's algorithm; Prim's is provided for dense graphs, where it is
    O(n^2) without sorting). *)

val kruskal : Wgraph.t -> Wgraph.edge list
(** MST edges by ascending weight (deterministic tie-breaking via
    {!Wgraph.compare_edge}).  @raise Invalid_argument if the graph is not
    connected. *)

val prim : Dist_matrix.t -> Wgraph.edge list
(** O(n^2) Prim on the complete graph of a matrix.  Edge list is returned
    sorted ascending like {!kruskal}. *)

val total_weight : Wgraph.edge list -> float

val is_spanning_tree : n:int -> Wgraph.edge list -> bool
(** [n - 1] edges, connected, acyclic. *)
