lib/cluster/sim.mli:
