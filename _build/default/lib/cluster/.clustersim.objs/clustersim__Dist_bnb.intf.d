lib/cluster/dist_bnb.mli: Dist_matrix Import Platform Solver Utree
