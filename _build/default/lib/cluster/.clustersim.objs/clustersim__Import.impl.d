lib/cluster/import.ml: Bnb Distmat Ultra
