lib/cluster/platform.mli:
