lib/cluster/platform.ml: Array List
