lib/cluster/dist_bnb.ml: Array Bb_tree Dist_matrix Float Import List Platform Sim Solver Stats Utree
