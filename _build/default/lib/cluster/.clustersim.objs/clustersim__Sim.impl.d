lib/cluster/sim.ml: Array Float
