(** Hardware models for the simulated experiments.

    The papers' testbed is a Linux PC cluster: one master and 16 slave
    nodes on 100 Mbps Ethernet (1 Gbps to the server); the grid paper
    adds a second site reached over a WAN with slower nodes.  A platform
    fixes each slave's compute speed (BBT node expansions per second)
    and the communication parameters used for every message
    ([latency + bytes / bandwidth]). *)

type t = {
  slave_speeds : float array;  (** expansions per second, one per slave *)
  master_speed : float;  (** master's expansion speed (seeding phase) *)
  latency : float;  (** per-message startup, seconds *)
  bandwidth : float;  (** bytes per second *)
  startup : float;
      (** one-off job-launch cost (MPI/Globus start, barrier), seconds *)
}

val n_slaves : t -> int

val single : ?speed:float -> unit -> t
(** One node, no parallel job launch: the papers' sequential baseline.
    Default speed 2_300 expansions/s, calibrated so that the simulated
    single-node times sit in the papers' reported range on comparable
    search sizes. *)

val cluster : ?speed:float -> int -> t
(** The papers' PC cluster: homogeneous slaves (default speed 2_300
    expansions/s — AMD 2000+ class), 100 us latency, 100 Mbps links,
    50 ms MPI job launch. *)

val grid : sites:(int * float) list -> t
(** A computational grid: one [(nodes, speed)] pair per site, joined by
    WAN-class communication (5 ms latency, 10 Mbps) with an 80 ms
    Globus/MPICH-G2 launch — the UniGrid setup of the NCS 2005 paper
    (whose per-node hardware was {e better} than the lab cluster's, as
    the report notes). *)

val message_time : t -> bytes:int -> float
(** Latency plus transmission time of one message. *)

val node_bytes : n_species:int -> int
(** Serialised size of one BBT node: a topology over at most [n] leaves
    plus bookkeeping. *)
