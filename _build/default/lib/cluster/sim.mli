(** A minimal discrete-event simulation engine.

    Events are closures scheduled at absolute virtual times; [run]
    executes them in time order (FIFO among equal times) until none
    remain.  Handlers may schedule further events. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time (seconds); [0.] before the first event. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Enqueue a handler [delay] seconds after the current time.
    @raise Invalid_argument on negative or non-finite delays. *)

val run : t -> unit
(** Drain the event queue.  Returns when no events remain; [now] then
    reports the completion time. *)

val n_processed : t -> int
(** Events executed so far (for instrumentation). *)
