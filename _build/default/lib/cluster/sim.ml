(* Binary min-heap on (time, seq); seq preserves FIFO order for equal
   times and makes runs deterministic. *)

type event = { time : float; seq : int; handler : unit -> unit }

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
}

let dummy = { time = 0.; seq = 0; handler = ignore }

let create () =
  { heap = Array.make 64 dummy; size = 0; clock = 0.; next_seq = 0;
    processed = 0 }

let now t = t.clock

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let x = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- x

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let schedule t ~delay handler =
  if (not (Float.is_finite delay)) || delay < 0. then
    invalid_arg "Sim.schedule: delay must be finite and non-negative";
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <-
    { time = t.clock +. delay; seq = t.next_seq; handler };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  sift_down t 0;
  top

let run t =
  while t.size > 0 do
    let e = pop t in
    t.clock <- e.time;
    t.processed <- t.processed + 1;
    e.handler ()
  done

let n_processed t = t.processed
