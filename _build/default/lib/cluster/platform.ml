type t = {
  slave_speeds : float array;
  master_speed : float;
  latency : float;
  bandwidth : float;
  startup : float;
}

let n_slaves t = Array.length t.slave_speeds

let single ?(speed = 2_300.) () =
  {
    slave_speeds = [| speed |];
    master_speed = speed;
    latency = 1e-4;
    bandwidth = 100e6 /. 8.;
    startup = 0.;
  }

let cluster ?(speed = 2_300.) n =
  if n < 1 then invalid_arg "Platform.cluster: need at least one slave";
  {
    slave_speeds = Array.make n speed;
    master_speed = speed;
    latency = 1e-4;
    bandwidth = 100e6 /. 8.;
    startup = 0.05;
  }

let grid ~sites =
  if sites = [] then invalid_arg "Platform.grid: no sites";
  let speeds =
    List.concat_map
      (fun (nodes, speed) ->
        if nodes < 1 || speed <= 0. then
          invalid_arg "Platform.grid: bad site spec";
        List.init nodes (fun _ -> speed))
      sites
  in
  {
    slave_speeds = Array.of_list speeds;
    master_speed = (match sites with (_, s) :: _ -> s | [] -> 0.);
    latency = 5e-3;
    bandwidth = 10e6 /. 8.;
    startup = 0.08;
  }

let message_time t ~bytes = t.latency +. (float_of_int bytes /. t.bandwidth)

let node_bytes ~n_species = 64 + (16 * n_species)
