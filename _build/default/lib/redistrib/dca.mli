(** Divide-and-conquer redistribution scheduling (after Wang, Guo & Wei
    2004) — the baseline the SCPA paper compares against.

    The processors are split in half; messages living entirely in one
    half are scheduled recursively and the two sub-schedules are merged
    step-by-step (their processor sets are disjoint, so merging is
    contention-free); messages crossing the boundary are then inserted
    greedily in non-increasing size order. *)

val schedule : Message.t list -> Schedule.t
(** Always returns a schedule passing {!Schedule.verify}. *)
