(* Steps are rebuilt-on-demand message lists: instances have at most
   2P - 1 messages, so recomputing contention and maxima is cheap and
   keeps the relocation repair simple. *)

type step = { mutable msgs : Message.t list }

let conflicts_with (m : Message.t) (m' : Message.t) =
  m'.Message.src = m.Message.src || m'.Message.dst = m.Message.dst

let compatible step m = not (List.exists (conflicts_with m) step.msgs)

let by_size =
  List.sort (fun (a : Message.t) b -> compare b.Message.size a.Message.size)

let step_max step =
  List.fold_left (fun acc (m : Message.t) -> Int.max acc m.Message.size) 0
    step.msgs

(* The paper's "similar message size" placement: among compatible steps,
   prefer one the message fits under (no step-cost increase), tightest
   first; otherwise the step needing the smallest increase. *)
let choose_step steps (m : Message.t) =
  let score step =
    let mx = step_max step in
    if mx >= m.Message.size then (0, mx - m.Message.size)
    else (1, m.Message.size - mx)
  in
  List.fold_left
    (fun best step ->
      if not (compatible step m) then best
      else
        match best with
        | None -> Some step
        | Some b -> if score step < score b then Some step else best)
    None steps

(* Single-relocation repair: make room for [m] in some step by moving
   the one message that blocks it into another step. *)
let try_relocate steps (m : Message.t) =
  let rec go = function
    | [] -> false
    | step :: rest -> (
        match List.filter (conflicts_with m) step.msgs with
        | [ blocker ] -> (
            let others =
              List.filter
                (fun s -> s != step && compatible s blocker)
                steps
            in
            match others with
            | target :: _ ->
                step.msgs <- List.filter (fun x -> x != blocker) step.msgs;
                target.msgs <- blocker :: target.msgs;
                step.msgs <- m :: step.msgs;
                true
            | [] -> go rest)
        | _ -> go rest)
  in
  go steps

let insert steps m =
  match choose_step !steps m with
  | Some step ->
      step.msgs <- m :: step.msgs;
      steps
  | None ->
      if not (try_relocate !steps m) then steps := !steps @ [ { msgs = [ m ] } ];
      steps

(* Try to empty surplus steps (beyond the max-degree minimum) by
   re-inserting their messages elsewhere. *)
let dissolve_surplus steps min_steps =
  let changed = ref true in
  while List.length !steps > min_steps && !changed do
    changed := false;
    let by_load =
      List.sort
        (fun a b -> compare (List.length a.msgs) (List.length b.msgs))
        !steps
    in
    match by_load with
    | victim :: _ ->
        let rescue = List.filter (fun s -> s != victim) !steps in
        let homeless =
          List.filter
            (fun m ->
              match choose_step rescue m with
              | Some s ->
                  s.msgs <- m :: s.msgs;
                  false
              | None -> not (try_relocate rescue m))
            (by_size victim.msgs)
        in
        if homeless = [] then begin
          steps := rescue;
          changed := true
        end
        else victim.msgs <- homeless
    | [] -> ()
  done

let schedule messages =
  let conflict = Conflict.conflict_points messages in
  let sets = Conflict.mdms_list messages in
  let in_conflict (m : Message.t) =
    List.exists (fun (c : Message.t) -> c.Message.id = m.Message.id) conflict
  in
  let in_mdms (m : Message.t) =
    List.exists
      (fun s ->
        List.exists
          (fun (m' : Message.t) -> m'.Message.id = m.Message.id)
          s.Conflict.messages)
      sets
  in
  let steps = ref [ { msgs = [] } ] in
  (* Phase 1: conflict points, all aimed at the opening step. *)
  List.iter
    (fun m ->
      let first = List.hd !steps in
      if compatible first m then first.msgs <- m :: first.msgs
      else ignore (insert steps m))
    (by_size conflict);
  (* Phase 2: remaining MDMS messages, largest first. *)
  List.iter
    (fun m -> ignore (insert steps m))
    (by_size
       (List.filter (fun m -> in_mdms m && not (in_conflict m)) messages));
  (* Phase 3: everything else, largest first. *)
  List.iter
    (fun m -> ignore (insert steps m))
    (by_size
       (List.filter (fun m -> not (in_mdms m || in_conflict m)) messages));
  dissolve_surplus steps (Schedule.min_steps messages);
  List.filter_map
    (fun s -> match s.msgs with [] -> None | ms -> Some (List.rev ms))
    !steps
