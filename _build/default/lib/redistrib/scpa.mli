(** The Smallest Conflict Points Algorithm (SCPA).

    SCPA schedules the conflict points first — all into the opening step —
    then places the remaining MDMS messages and finally the rest, each in
    non-increasing size order into the step of most similar size that has
    no sender/receiver contention.  It achieves the minimum number of
    steps (the maximum degree) and a near-minimal total step size. *)

val schedule : Message.t list -> Schedule.t
(** Always returns a schedule passing {!Schedule.verify}; the number of
    steps equals {!Schedule.min_steps} whenever the conflict points are
    mutually compatible (guaranteed-by-construction greedy fallback adds
    steps otherwise). *)
