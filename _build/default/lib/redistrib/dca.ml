let compatible step (m : Message.t) =
  List.for_all
    (fun (m' : Message.t) ->
      m'.Message.src <> m.Message.src && m'.Message.dst <> m.Message.dst)
    step

let insert_greedy steps m =
  let rec go = function
    | [] -> [ [ m ] ]
    | step :: rest ->
        if compatible step m then (m :: step) :: rest else step :: go rest
  in
  go steps

let by_size =
  List.sort (fun (a : Message.t) b -> compare b.Message.size a.Message.size)

let rec schedule_range lo hi messages =
  (* Schedule the messages whose endpoints both lie in [lo, hi). *)
  match messages with
  | [] -> []
  | _ when hi - lo <= 1 ->
      (* A single processor: its messages pairwise conflict; one per
         step, largest first so expensive steps come early. *)
      List.map (fun m -> [ m ]) (by_size messages)
  | _ ->
      let mid = (lo + hi) / 2 in
      let left, rest =
        List.partition
          (fun (m : Message.t) -> m.Message.src < mid && m.Message.dst < mid)
          messages
      in
      let right, crossing =
        List.partition
          (fun (m : Message.t) -> m.Message.src >= mid && m.Message.dst >= mid)
          rest
      in
      let ls = schedule_range lo mid left
      and rs = schedule_range mid hi right in
      (* Merge: the halves touch disjoint processors, so step i of one
         can run with step i of the other. *)
      let rec merge a b =
        match (a, b) with
        | [], s | s, [] -> s
        | x :: xs, y :: ys -> (x @ y) :: merge xs ys
      in
      List.fold_left insert_greedy (merge ls rs) (by_size crossing)

let schedule messages =
  let procs =
    List.fold_left
      (fun acc (m : Message.t) ->
        Int.max acc (Int.max m.Message.src m.Message.dst))
      (-1) messages
    + 1
  in
  List.map List.rev (schedule_range 0 procs messages)
