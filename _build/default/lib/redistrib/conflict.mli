(** Maximum-degree message sets and conflict points (SCPA paper, §3.1).

    The minimum number of steps equals the maximum processor degree [k].
    Messages touching a maximum-degree processor form that processor's
    {e Maximum Degree Message Set} (MDMS).  A message belonging to two
    MDMSs is an {e explicit conflict point}; two disjoint MDMSs linked
    through a lower-degree processor (which sends or receives one message
    of each) make the earlier of those two messages an {e implicit
    conflict point}.  Scheduling all conflict points in the same first
    step is the key idea of SCPA. *)

type mdms = {
  owner : [ `Sender of int | `Receiver of int ];
      (** the maximum-degree processor *)
  messages : Message.t list;  (** its messages, in id order *)
}

val max_degree : Message.t list -> int

val mdms_list : Message.t list -> mdms list
(** One entry per maximum-degree processor (senders first, then
    receivers, each in processor order). *)

val explicit_conflict_points : mdms list -> Message.t list
(** Messages shared by two MDMSs, in id order, without duplicates. *)

val implicit_conflict_points : Message.t list -> mdms list -> Message.t list
(** For every lower-degree processor whose messages connect two distinct
    MDMSs that share no message: the earliest of the connecting
    messages.  In id order, without duplicates, excluding explicit
    conflict points. *)

val conflict_points : Message.t list -> Message.t list
(** Explicit then implicit conflict points of the message set. *)
