lib/redistrib/message.mli: Format Gen_block
