lib/redistrib/message.ml: Array Format Gen_block Int List
