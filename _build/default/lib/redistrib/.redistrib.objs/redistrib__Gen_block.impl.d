lib/redistrib/gen_block.ml: Array Format Int Random
