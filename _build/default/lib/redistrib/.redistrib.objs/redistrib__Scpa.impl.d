lib/redistrib/scpa.ml: Conflict Int List Message Schedule
