lib/redistrib/schedule.ml: Format Hashtbl Int List Message
