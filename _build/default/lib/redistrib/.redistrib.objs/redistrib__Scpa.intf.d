lib/redistrib/scpa.mli: Message Schedule
