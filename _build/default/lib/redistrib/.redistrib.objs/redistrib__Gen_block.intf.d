lib/redistrib/gen_block.mli: Format Random
