lib/redistrib/conflict.ml: Hashtbl Int List Message
