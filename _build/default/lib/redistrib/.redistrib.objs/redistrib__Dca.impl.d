lib/redistrib/dca.ml: Int List Message
