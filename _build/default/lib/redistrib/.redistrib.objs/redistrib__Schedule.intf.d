lib/redistrib/schedule.mli: Format Message
