lib/redistrib/conflict.mli: Message
