lib/redistrib/dca.mli: Message Schedule
