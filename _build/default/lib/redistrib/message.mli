(** Messages of a GEN_BLOCK redistribution.

    Redistributing from a source to a destination GEN_BLOCK distribution
    moves every array element owned by a different processor afterwards;
    the overlap of source segment [i] with destination segment [j]
    becomes one message.  Consecutive segments overlap in a staircase
    pattern, so there are between [P] and [2P - 1] messages. *)

type t = { id : int; src : int; dst : int; size : int }
(** [id] numbers messages left-to-right in array order (the papers'
    m1, m2, ...) starting from 0. *)

val of_distributions : Gen_block.t -> Gen_block.t -> t list
(** Messages in array order.  Zero-size overlaps are skipped.
    @raise Invalid_argument if the two distributions disagree on
    processor count or total size. *)

val total_size : t list -> int

val pp : Format.formatter -> t -> unit
