(** Communication schedules and their cost model.

    A schedule partitions the messages into steps; within a step every
    processor sends at most one message and receives at most one message
    (the node-contention constraint).  The cost of a step is
    [ts + tm * max message size] — startup plus transmission of the
    longest message — and the schedule's cost is the sum over steps. *)

type t = Message.t list list
(** Steps in order; each step is a list of contention-free messages. *)

type verification_error =
  | Missing_message of int
  | Duplicated_message of int
  | Send_contention of { step : int; proc : int }
  | Receive_contention of { step : int; proc : int }

val verify : Message.t list -> t -> (unit, verification_error) result
(** Check the schedule carries exactly the given messages with no
    contention. *)

val pp_error : Format.formatter -> verification_error -> unit

val n_steps : t -> int

val step_sizes : t -> int list
(** Max message size per step. *)

val cost : ?ts:float -> ?tm:float -> t -> float
(** Default [ts = 1.], [tm = 1.] (abstract units). *)

val total_step_size : t -> int
(** Sum of per-step maxima — the metric the SCPA paper compares
    ("total messages size of steps"). *)

val min_steps : Message.t list -> int
(** The contention lower bound: the maximum send- or receive-degree of
    any processor. *)
