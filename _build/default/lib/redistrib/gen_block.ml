type t = { sizes : int array }

let create sizes =
  if Array.length sizes = 0 then invalid_arg "Gen_block.create: empty";
  Array.iter
    (fun s -> if s < 0 then invalid_arg "Gen_block.create: negative size")
    sizes;
  { sizes = Array.copy sizes }

let n_procs t = Array.length t.sizes
let total t = Array.fold_left ( + ) 0 t.sizes

let bounds t =
  let acc = ref 0 in
  Array.map
    (fun s ->
      let lo = !acc in
      acc := lo + s;
      (lo, !acc))
    t.sizes

let random ~rng ~total ~procs ~lo_frac ~hi_frac =
  if procs <= 0 || total <= 0 then
    invalid_arg "Gen_block.random: need positive total and procs";
  if lo_frac < 0. || hi_frac < lo_frac then
    invalid_arg "Gen_block.random: bad fraction bounds";
  let avg = float_of_int total /. float_of_int procs in
  let lo = Int.max 0 (int_of_float (lo_frac *. avg)) in
  let hi = Int.max (lo + 1) (int_of_float (hi_frac *. avg)) in
  if lo * procs > total || hi * procs < total then
    invalid_arg "Gen_block.random: bounds cannot sum to total";
  let sizes = Array.make procs 0 in
  (* Draw uniformly in [lo, hi], then repair the sum by bounded
     adjustments so every size stays within the band. *)
  for p = 0 to procs - 1 do
    sizes.(p) <- lo + Random.State.int rng (hi - lo + 1)
  done;
  let excess = ref (Array.fold_left ( + ) 0 sizes - total) in
  let step = if !excess > 0 then -1 else 1 in
  let p = ref 0 in
  while !excess <> 0 do
    let s = sizes.(!p) + step in
    if s >= lo && s <= hi then begin
      sizes.(!p) <- s;
      excess := !excess + step
    end;
    p := (!p + 1) mod procs
  done;
  { sizes }

let pp ppf t =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       Format.pp_print_int)
    t.sizes
