type t = { id : int; src : int; dst : int; size : int }

let of_distributions src_dist dst_dist =
  if Gen_block.n_procs src_dist <> Gen_block.n_procs dst_dist then
    invalid_arg "Message.of_distributions: different processor counts";
  if Gen_block.total src_dist <> Gen_block.total dst_dist then
    invalid_arg "Message.of_distributions: different totals";
  let sb = Gen_block.bounds src_dist and db = Gen_block.bounds dst_dist in
  let p = Gen_block.n_procs src_dist in
  let acc = ref [] and id = ref 0 in
  let rec sweep i j =
    if i < p && j < p then begin
      let slo, shi = sb.(i) and dlo, dhi = db.(j) in
      let size = Int.min shi dhi - Int.max slo dlo in
      if size > 0 then begin
        acc := { id = !id; src = i; dst = j; size } :: !acc;
        incr id
      end;
      (* Advance whichever segment ends first; on a tie advance both. *)
      if shi < dhi then sweep (i + 1) j
      else if dhi < shi then sweep i (j + 1)
      else sweep (i + 1) (j + 1)
    end
  in
  sweep 0 0;
  List.rev !acc

let total_size ms = List.fold_left (fun acc m -> acc + m.size) 0 ms

let pp ppf m =
  Format.fprintf ppf "m%d(SP%d->DP%d:%d)" (m.id + 1) m.src m.dst m.size
