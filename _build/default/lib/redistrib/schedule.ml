type t = Message.t list list

type verification_error =
  | Missing_message of int
  | Duplicated_message of int
  | Send_contention of { step : int; proc : int }
  | Receive_contention of { step : int; proc : int }

let pp_error ppf = function
  | Missing_message id -> Format.fprintf ppf "message m%d not scheduled" (id + 1)
  | Duplicated_message id ->
      Format.fprintf ppf "message m%d scheduled twice" (id + 1)
  | Send_contention { step; proc } ->
      Format.fprintf ppf "step %d: SP%d sends twice" step proc
  | Receive_contention { step; proc } ->
      Format.fprintf ppf "step %d: DP%d receives twice" step proc

let verify messages sched =
  let seen = Hashtbl.create 64 in
  let error = ref None in
  let set_error e = if !error = None then error := Some e in
  List.iteri
    (fun step msgs ->
      let senders = Hashtbl.create 8 and receivers = Hashtbl.create 8 in
      List.iter
        (fun (m : Message.t) ->
          if Hashtbl.mem seen m.Message.id then
            set_error (Duplicated_message m.Message.id);
          Hashtbl.replace seen m.Message.id ();
          if Hashtbl.mem senders m.Message.src then
            set_error (Send_contention { step; proc = m.Message.src });
          Hashtbl.replace senders m.Message.src ();
          if Hashtbl.mem receivers m.Message.dst then
            set_error (Receive_contention { step; proc = m.Message.dst });
          Hashtbl.replace receivers m.Message.dst ())
        msgs)
    sched;
  List.iter
    (fun (m : Message.t) ->
      if not (Hashtbl.mem seen m.Message.id) then
        set_error (Missing_message m.Message.id))
    messages;
  match !error with None -> Ok () | Some e -> Error e

let n_steps = List.length

let step_sizes sched =
  List.map
    (fun msgs ->
      List.fold_left (fun acc (m : Message.t) -> Int.max acc m.Message.size) 0 msgs)
    sched

let cost ?(ts = 1.) ?(tm = 1.) sched =
  List.fold_left
    (fun acc size -> acc +. ts +. (tm *. float_of_int size))
    0. (step_sizes sched)

let total_step_size sched = List.fold_left ( + ) 0 (step_sizes sched)

let min_steps messages =
  let bump tbl key =
    let v = try Hashtbl.find tbl key + 1 with Not_found -> 1 in
    Hashtbl.replace tbl key v;
    v
  in
  let send = Hashtbl.create 16 and recv = Hashtbl.create 16 in
  List.fold_left
    (fun acc (m : Message.t) ->
      Int.max acc
        (Int.max (bump send m.Message.src) (bump recv m.Message.dst)))
    0 messages
