type mdms = {
  owner : [ `Sender of int | `Receiver of int ];
  messages : Message.t list;
}

let degrees messages =
  let send = Hashtbl.create 16 and recv = Hashtbl.create 16 in
  let bump tbl key =
    Hashtbl.replace tbl key
      (1 + try Hashtbl.find tbl key with Not_found -> 0)
  in
  List.iter
    (fun (m : Message.t) ->
      bump send m.Message.src;
      bump recv m.Message.dst)
    messages;
  (send, recv)

let max_degree messages =
  let send, recv = degrees messages in
  let table_max tbl = Hashtbl.fold (fun _ v acc -> Int.max v acc) tbl 0 in
  Int.max (table_max send) (table_max recv)

let mdms_list messages =
  let send, recv = degrees messages in
  let k = max_degree messages in
  if k = 0 then []
  else begin
    let procs_at tbl =
      Hashtbl.fold (fun p v acc -> if v = k then p :: acc else acc) tbl []
      |> List.sort compare
    in
    let of_sender p =
      {
        owner = `Sender p;
        messages = List.filter (fun (m : Message.t) -> m.Message.src = p) messages;
      }
    in
    let of_receiver p =
      {
        owner = `Receiver p;
        messages = List.filter (fun (m : Message.t) -> m.Message.dst = p) messages;
      }
    in
    List.map of_sender (procs_at send) @ List.map of_receiver (procs_at recv)
  end

let dedup_by_id ms =
  List.sort_uniq
    (fun (a : Message.t) b -> compare a.Message.id b.Message.id)
    ms

let explicit_conflict_points sets =
  let rec pairs acc = function
    | [] -> acc
    | s :: rest ->
        let shared =
          List.concat_map
            (fun s' ->
              List.filter
                (fun (m : Message.t) ->
                  List.exists
                    (fun (m' : Message.t) -> m'.Message.id = m.Message.id)
                    s'.messages)
                s.messages)
            rest
        in
        pairs (shared @ acc) rest
  in
  dedup_by_id (pairs [] sets)

let implicit_conflict_points messages sets =
  let explicit = explicit_conflict_points sets in
  let is_explicit (m : Message.t) =
    List.exists (fun (e : Message.t) -> e.Message.id = m.Message.id) explicit
  in
  let mdms_of (m : Message.t) =
    List.filteri
      (fun _ s ->
        List.exists
          (fun (m' : Message.t) -> m'.Message.id = m.Message.id)
          s.messages)
      sets
  in
  let share_message a b =
    List.exists
      (fun (m : Message.t) ->
        List.exists
          (fun (m' : Message.t) -> m'.Message.id = m.Message.id)
          b.messages)
      a.messages
  in
  (* Group the messages by the low-degree processors; when one such
     processor carries messages of two unrelated MDMSs, the earliest of
     the connecting messages is the implicit conflict point. *)
  let k = max_degree messages in
  let send, recv = degrees messages in
  let acc = ref [] in
  let consider side tbl proc_of =
    Hashtbl.iter
      (fun p deg ->
        if deg < k then begin
          let mine =
            List.filter (fun (m : Message.t) -> proc_of m = p) messages
          in
          (* All pairs of this processor's messages that live in distinct,
             message-disjoint MDMSs. *)
          List.iteri
            (fun i m ->
              List.iteri
                (fun j m' ->
                  if j > i then begin
                    let sa = mdms_of m and sb = mdms_of m' in
                    let unrelated =
                      List.exists
                        (fun a ->
                          List.exists
                            (fun b -> a.owner <> b.owner && not (share_message a b))
                            sb)
                        sa
                    in
                    if unrelated then
                      acc :=
                        (if (m : Message.t).Message.id < m'.Message.id then m
                         else m')
                        :: !acc
                  end)
                mine)
            mine
        end)
      tbl;
    ignore side
  in
  consider `Send send (fun (m : Message.t) -> m.Message.src);
  consider `Recv recv (fun (m : Message.t) -> m.Message.dst);
  dedup_by_id (List.filter (fun m -> not (is_explicit m)) !acc)

let conflict_points messages =
  let sets = mdms_list messages in
  explicit_conflict_points sets @ implicit_conflict_points messages sets
