(** HPF-2 GEN_BLOCK data distributions.

    A GEN_BLOCK distribution assigns consecutive, unevenly sized segments
    of an array to consecutive processors — the irregular-redistribution
    setting of the project's APPT 2005 paper (the cluster-communication
    substrate of this reproduction). *)

type t = { sizes : int array }
(** [sizes.(p)] = number of array elements owned by processor [p]; all
    non-negative. *)

val create : int array -> t
(** @raise Invalid_argument on negative sizes or an empty array. *)

val n_procs : t -> int
val total : t -> int

val bounds : t -> (int * int) array
(** Half-open element ranges [(lo, hi)] per processor. *)

val random :
  rng:Random.State.t ->
  total:int ->
  procs:int ->
  lo_frac:float ->
  hi_frac:float ->
  t
(** Random distribution whose segment sizes fall within
    [[lo_frac, hi_frac] * (total / procs)] and sum exactly to [total] —
    the paper's uneven case uses fractions (0.3, 1.5) and the even case
    (0.7, 1.3).  @raise Invalid_argument if the constraints are
    unsatisfiable. *)

val pp : Format.formatter -> t -> unit
