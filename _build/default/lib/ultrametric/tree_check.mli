open Import

(** Whole-tree validation, used by tests and by the pipeline's debug
    assertions. *)

type error =
  | Bad_leaf_set of string
      (** leaves are not exactly [0 .. n-1], or duplicated *)
  | Not_monotone of string  (** an internal node is lower than a child *)
  | Not_feasible of { i : int; j : int; needed : float; got : float }
      (** some pair is closer in the tree than in the matrix *)

val pp_error : Format.formatter -> error -> unit

val full_check :
  ?eps:float -> Dist_matrix.t -> Utree.t -> (unit, error) result
(** Check that the tree is a well-formed ultrametric tree over exactly the
    matrix's species and is feasible for the matrix. *)

val assert_valid : ?eps:float -> Dist_matrix.t -> Utree.t -> unit
(** @raise Failure with a rendered error when {!full_check} fails. *)
