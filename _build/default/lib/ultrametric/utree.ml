open Import

type t = Leaf of int | Node of { height : float; left : t; right : t }

let leaf i =
  if i < 0 then invalid_arg "Utree.leaf: negative label";
  Leaf i

let height = function Leaf _ -> 0. | Node n -> n.height

let node h l r =
  if not (Float.is_finite h) || h < 0. then
    invalid_arg "Utree.node: height must be finite and non-negative";
  if h < height l || h < height r then
    invalid_arg "Utree.node: height below a child";
  Node { height = h; left = l; right = r }

let rec n_leaves = function
  | Leaf _ -> 1
  | Node n -> n_leaves n.left + n_leaves n.right

let rec leaf_fold f acc = function
  | Leaf i -> f acc i
  | Node n -> leaf_fold f (leaf_fold f acc n.left) n.right

let leaf_list t = List.rev (leaf_fold (fun acc i -> i :: acc) [] t)
let leaves t = List.sort compare (leaf_list t)

let weight t =
  (* Sum over edges of (parent height - child height). *)
  let rec go = function
    | Leaf _ -> 0.
    | Node n ->
        (n.height -. height n.left)
        +. (n.height -. height n.right)
        +. go n.left +. go n.right
  in
  go t

let tree_distance t i j =
  if i = j then 0.
  else begin
    let rec contains x = function
      | Leaf l -> l = x
      | Node n -> contains x n.left || contains x n.right
    in
    (* Walk down from the root; the LCA is the first node separating the
       two labels. *)
    let rec lca_height t =
      match t with
      | Leaf _ -> raise Not_found
      | Node n ->
          let li = contains i n.left and lj = contains j n.left in
          let ri = contains i n.right and rj = contains j n.right in
          if (not (li || ri)) || not (lj || rj) then raise Not_found
          else if li && lj then lca_height n.left
          else if ri && rj then lca_height n.right
          else n.height
    in
    2. *. lca_height t
  end

let to_matrix t =
  let n = n_leaves t in
  let ls = leaves t in
  if ls <> List.init n Fun.id then
    invalid_arg "Utree.to_matrix: leaves must be exactly 0 .. n-1";
  let m = Dist_matrix.create n in
  (* One traversal: at each internal node, every (left-leaf, right-leaf)
     pair is separated exactly there. *)
  let rec go t =
    match t with
    | Leaf i -> [ i ]
    | Node nd ->
        let l = go nd.left and r = go nd.right in
        List.iter
          (fun i ->
            List.iter (fun j -> Dist_matrix.set m i j (2. *. nd.height)) r)
          l;
        List.rev_append l r
  in
  ignore (go t : int list);
  m

let minimal_realization dm t =
  let rec go t =
    match t with
    | Leaf i -> (Leaf i, [ i ])
    | Node nd ->
        let l, ll = go nd.left and r, rl = go nd.right in
        let hmax = ref 0. in
        List.iter
          (fun i ->
            List.iter
              (fun j -> hmax := Float.max !hmax (Dist_matrix.get dm i j))
              rl)
          ll;
        (* Heights must stay monotone even when the matrix is not a
           metric; clamp to the children. *)
        let h =
          Float.max (!hmax /. 2.) (Float.max (height l) (height r))
        in
        (Node { height = h; left = l; right = r }, List.rev_append ll rl)
  in
  fst (go t)

let is_feasible ?(eps = 1e-9) dm t =
  let rec go t =
    (* Returns (ok, leaf list). *)
    match t with
    | Leaf i -> (true, [ i ])
    | Node nd ->
        let okl, ll = go nd.left and okr, rl = go nd.right in
        let ok = ref (okl && okr) in
        let d = 2. *. nd.height in
        List.iter
          (fun i ->
            List.iter
              (fun j -> if d < Dist_matrix.get dm i j -. eps then ok := false)
              rl)
          ll;
        (!ok, List.rev_append ll rl)
  in
  fst (go t)

let rec is_monotone = function
  | Leaf _ -> true
  | Node n ->
      n.height >= height n.left
      && n.height >= height n.right
      && is_monotone n.left && is_monotone n.right

let rec relabel f = function
  | Leaf i -> leaf (f i)
  | Node n -> Node { n with left = relabel f n.left; right = relabel f n.right }

let rec map_leaves f = function
  | Leaf i -> f i
  | Node n ->
      Node { n with left = map_leaves f n.left; right = map_leaves f n.right }

let rec equal a b =
  match (a, b) with
  | Leaf i, Leaf j -> i = j
  | Node x, Node y ->
      Float.equal x.height y.height && equal x.left y.left
      && equal x.right y.right
  | Leaf _, Node _ | Node _, Leaf _ -> false

let rec clusters acc = function
  | Leaf i -> ([ i ], acc)
  | Node n ->
      let l, acc = clusters acc n.left in
      let r, acc = clusters acc n.right in
      let here = List.sort compare (List.rev_append l r) in
      (here, here :: acc)

let cluster_set t =
  let _, cs = clusters [] t in
  List.sort_uniq compare cs

let same_topology a b = cluster_set a = cluster_set b

let rec pp ppf = function
  | Leaf i -> Format.fprintf ppf "%d" i
  | Node n ->
      Format.fprintf ppf "@[<v 2>(h=%g@,%a@,%a)@]" n.height pp n.left pp
        n.right
