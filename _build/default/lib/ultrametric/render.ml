let name_of names i =
  match names with
  | None -> string_of_int i
  | Some ns ->
      if i >= Array.length ns then
        invalid_arg "Render: leaf index outside names";
      ns.(i)

(* Assign each leaf a row and each internal node the mean row of its
   children; x positions scale with height (root at x = 0, leaves at the
   right edge). *)
type layout = {
  rows : (Utree.t * int) list;  (* leaf rows, in display order *)
  n_rows : int;
}

let leaf_rows t =
  let rows = ref [] and next = ref 0 in
  let rec go t =
    match t with
    | Utree.Leaf _ ->
        rows := (t, !next) :: !rows;
        incr next
    | Utree.Node n ->
        go n.left;
        go n.right
  in
  go t;
  { rows = List.rev !rows; n_rows = !next }

let to_ascii ?names ?(width = 72) t =
  match t with
  | Utree.Leaf i -> name_of names i ^ "\n"
  | Utree.Node _ ->
      let { rows; n_rows } = leaf_rows t in
      let root_h = Utree.height t in
      let label_width =
        List.fold_left
          (fun acc (leaf, _) ->
            match leaf with
            | Utree.Leaf i -> Int.max acc (String.length (name_of names i))
            | Utree.Node _ -> acc)
          0 rows
      in
      let plot_width = Int.max 10 (width - label_width - 2) in
      (* Column of a node at a given height: root (max height) at column
         0, height 0 at the right edge. *)
      let col h =
        if root_h <= 0. then plot_width - 1
        else
          Int.min (plot_width - 1)
            (int_of_float
               (Float.round
                  ((1. -. (h /. root_h)) *. float_of_int (plot_width - 1))))
      in
      let grid = Array.make_matrix (2 * n_rows) (plot_width + 1) ' ' in
      let leaf_row =
        let tbl = Hashtbl.create n_rows in
        List.iter
          (fun (leaf, r) ->
            match leaf with
            | Utree.Leaf i -> Hashtbl.replace tbl i (2 * r)
            | Utree.Node _ -> ())
          rows;
        fun i -> Hashtbl.find tbl i
      in
      (* Draw each subtree, returning its connector row. *)
      let rec draw t parent_col =
        match t with
        | Utree.Leaf i ->
            let r = leaf_row i in
            for c = parent_col to plot_width - 1 do
              grid.(r).(c) <- '-'
            done;
            r
        | Utree.Node n ->
            let c = col n.height in
            let rl = draw n.left c and rr = draw n.right c in
            let lo = Int.min rl rr and hi = Int.max rl rr in
            for r = lo to hi do
              if grid.(r).(c) = ' ' then grid.(r).(c) <- '|'
            done;
            grid.(lo).(c) <- '+';
            grid.(hi).(c) <- '+';
            let mid = (rl + rr) / 2 in
            for cc = parent_col to c - 1 do
              grid.(mid).(cc) <- '-'
            done;
            if grid.(mid).(c) = '|' then grid.(mid).(c) <- '+';
            mid
      in
      ignore (draw t (col root_h) : int);
      let buf = Buffer.create (n_rows * (width + 1) * 2) in
      Array.iteri
        (fun r line ->
          let text = String.init (plot_width + 1) (Array.get line) in
          let text =
            (* Trim trailing blanks. *)
            let len = ref (String.length text) in
            while !len > 0 && text.[!len - 1] = ' ' do
              decr len
            done;
            String.sub text 0 !len
          in
          let label =
            if r mod 2 = 0 then
              match List.nth_opt rows (r / 2) with
              | Some (Utree.Leaf i, _) -> " " ^ name_of names i
              | Some (Utree.Node _, _) | None -> ""
            else ""
          in
          if text <> "" || label <> "" then begin
            Buffer.add_string buf text;
            Buffer.add_string buf label;
            Buffer.add_char buf '\n'
          end)
        grid;
      Buffer.contents buf

let to_svg ?names ?(width = 640) t =
  let { rows; n_rows } = leaf_rows t in
  let root_h = Float.max (Utree.height t) 1e-9 in
  let row_height = 22 and margin = 20 and label_space = 120 in
  let plot_w = float_of_int (width - (2 * margin) - label_space) in
  let height = (n_rows * row_height) + (2 * margin) + 30 in
  let x h =
    float_of_int margin +. ((1. -. (h /. root_h)) *. plot_w)
  in
  let y_of_row r = float_of_int (margin + (r * row_height) + (row_height / 2)) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" \
        height=\"%d\" font-family=\"monospace\" font-size=\"12\">\n"
       width height);
  let line x1 y1 x2 y2 =
    Buffer.add_string buf
      (Printf.sprintf
         "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
          stroke=\"black\" stroke-width=\"1.2\"/>\n"
         x1 y1 x2 y2)
  in
  let text tx ty s =
    Buffer.add_string buf
      (Printf.sprintf "<text x=\"%.1f\" y=\"%.1f\">%s</text>\n" tx ty s)
  in
  let leaf_row =
    let tbl = Hashtbl.create n_rows in
    List.iter
      (fun (leaf, r) ->
        match leaf with
        | Utree.Leaf i -> Hashtbl.replace tbl i r
        | Utree.Node _ -> ())
      rows;
    fun i -> Hashtbl.find tbl i
  in
  let rec draw t parent_x =
    match t with
    | Utree.Leaf i ->
        let y = y_of_row (leaf_row i) in
        line parent_x y (x 0.) y;
        text (x 0. +. 4.) (y +. 4.) (name_of names i);
        y
    | Utree.Node n ->
        let cx = x n.height in
        let yl = draw n.left cx and yr = draw n.right cx in
        line cx yl cx yr;
        let ym = (yl +. yr) /. 2. in
        line parent_x ym cx ym;
        ym
  in
  ignore (draw t (x root_h) : float);
  (* Distance scale bar: root height to zero. *)
  let bar_y = float_of_int (height - margin) in
  line (x root_h) bar_y (x 0.) bar_y;
  text (x root_h) (bar_y -. 5.) (Printf.sprintf "%.3g" root_h);
  text (x 0. -. 8.) (bar_y -. 5.) "0";
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf
