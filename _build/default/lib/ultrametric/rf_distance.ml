let clusters t =
  let all = ref [] in
  let rec go = function
    | Utree.Leaf i -> [ i ]
    | Utree.Node n ->
        let l = go n.left and r = go n.right in
        let here = List.sort compare (List.rev_append l r) in
        all := here :: !all;
        here
  in
  let top = go t in
  let n = List.length top in
  !all
  |> List.filter (fun c ->
         let k = List.length c in
         k >= 2 && k < n)
  |> List.sort_uniq compare

let distance a b =
  if Utree.leaves a <> Utree.leaves b then
    invalid_arg "Rf_distance.distance: different leaf sets";
  let ca = clusters a and cb = clusters b in
  let only_in x y = List.filter (fun c -> not (List.mem c y)) x in
  List.length (only_in ca cb) + List.length (only_in cb ca)

let normalized a b =
  let total = List.length (clusters a) + List.length (clusters b) in
  if total = 0 then 0. else float_of_int (distance a b) /. float_of_int total
