(** Consensus of a collection of trees over the same leaf set.

    The companion paper's parallel search gathers {e all} optimal trees
    (its Step 7); a consensus summarises them.  Because the strict or
    majority consensus of binary trees is generally non-binary, the
    result is returned as a cluster family (every consensus cluster,
    including singletons' complements' intersections being dropped),
    which callers can print or compare. *)

val strict : Utree.t list -> int list list
(** Non-trivial clusters present in {e every} input tree, sorted.
    @raise Invalid_argument on an empty list or differing leaf sets. *)

val majority : ?threshold:float -> Utree.t list -> int list list
(** Clusters present in more than [threshold] (default [0.5]) of the
    trees.  [threshold] must be in [[0.5, 1.0]]; [1.0] equals
    {!strict}. *)

val agreement : Utree.t list -> float
(** Fraction of the distinct non-trivial clusters across all trees that
    are in the strict consensus — [1.] when all trees agree, [0.] when
    no cluster is shared.  [1.] for a single tree. *)
