open Import

(** Ultrametric trees (Definitions 6-8 of the companion paper).

    An ultrametric tree over species [{0 .. n-1}] is a rooted, leaf
    labelled, edge weighted binary tree in which every internal node is at
    the same distance from all leaves below it.  We store each internal
    node's {e height} (that distance); the weight of the edge from a node
    at height [h] to a child at height [h'] is [h - h'], and leaves have
    height [0].  The tree distance between two leaves is twice the height
    of their lowest common ancestor.

    For a fixed topology the {e minimal realization} assigns every
    internal node the height [max D(i,j) / 2] over {e all} leaf pairs of
    its subtree (equivalently, the max of the separated-pair distances and
    the children's heights).  This is the cheapest feasible ultrametric
    tree with that topology, and its weight can only grow when a leaf is
    inserted — the two facts the branch-and-bound's cost function and
    [LB0] bound rely on. *)

type t = Leaf of int | Node of { height : float; left : t; right : t }

val leaf : int -> t
(** @raise Invalid_argument on a negative label. *)

val node : float -> t -> t -> t
(** [node h l r] builds an internal node.
    @raise Invalid_argument if [h] is negative, not finite, or lower than
    a child's height. *)

val height : t -> float
(** Height of the root ([0.] for a leaf). *)

val n_leaves : t -> int

val leaves : t -> int list
(** Leaf labels, ascending. *)

val leaf_list : t -> int list
(** Leaf labels in left-to-right tree order. *)

val weight : t -> float
(** Total edge weight [w(T)] — the quantity the MUT problem minimises. *)

val tree_distance : t -> int -> int -> float
(** [tree_distance t i j] is [d_T(i, j)] = twice the LCA height.
    @raise Not_found if either label is missing.  O(size). *)

val to_matrix : t -> Dist_matrix.t
(** The [n * n] ultrametric matrix induced by the tree, where [n] is the
    number of leaves.  @raise Invalid_argument if the leaf labels are not
    exactly [0 .. n-1]. *)

val minimal_realization : Dist_matrix.t -> t -> t
(** Recompute every internal height as the max separated pair distance
    over 2 (the cheapest ultrametric tree with this topology that is
    feasible for the matrix).  Leaf labels index the matrix. *)

val is_feasible : ?eps:float -> Dist_matrix.t -> t -> bool
(** [d_T(i,j) >= D(i,j) - eps] for all leaf pairs (Definition 8's
    constraint).  Default [eps = 1e-9]. *)

val is_monotone : t -> bool
(** Every internal node is at least as high as its children — always true
    for trees built with {!node}; useful for trees parsed from Newick. *)

val relabel : (int -> int) -> t -> t
(** Apply a relabelling to every leaf. *)

val map_leaves : (int -> t) -> t -> t
(** Substitute a subtree for every leaf (used to graft compact-set block
    trees back together).  Heights of the host tree are kept. *)

val equal : t -> t -> bool
(** Structural equality (exact float comparison on heights). *)

val same_topology : t -> t -> bool
(** Equality ignoring heights and left/right order (compares the nested
    leaf-set structure). *)

val pp : Format.formatter -> t -> unit
(** Indented ASCII rendering. *)
