open Import

(** A pragmatic subset of the NEXUS file format (Maddison et al. 1997),
    the interchange format of PAUP*/MrBayes-era phylogenetics: TAXA,
    DISTANCES and TREES blocks.  Writing always succeeds; parsing
    accepts the files this module writes (and reasonable variations:
    case-insensitive keywords, flexible whitespace, [\[...\]] comments). *)

type document = {
  taxa : string array;
  matrix : Dist_matrix.t option;  (** DISTANCES block, if present *)
  trees : (string * Utree.t) list;  (** named trees from the TREES block *)
}

val to_string : document -> string
(** Render as [#NEXUS] with a TAXA block, then DISTANCES (if any) and
    TREES (if any).  Tree leaves must index [taxa].
    @raise Invalid_argument on inconsistent sizes. *)

val of_string : string -> document
(** Parse.  @raise Failure with a descriptive message on malformed
    input, unknown taxa in trees, or a distance matrix that disagrees
    with the taxa count. *)
