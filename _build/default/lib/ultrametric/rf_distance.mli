(** Robinson-Foulds distance between rooted leaf-labelled trees.

    The RF distance counts the clusters (leaf sets of internal nodes)
    present in one tree but not the other.  We use it to quantify how far
    the compact-set tree's topology is from the exact minimum ultrametric
    tree, complementing the paper's cost-difference measurements. *)

val clusters : Utree.t -> int list list
(** Sorted list of non-trivial clusters (each sorted ascending; the
    all-leaves cluster and singletons are excluded). *)

val distance : Utree.t -> Utree.t -> int
(** Size of the symmetric difference of the two cluster sets.
    @raise Invalid_argument if the trees have different leaf sets. *)

val normalized : Utree.t -> Utree.t -> float
(** {!distance} divided by the total number of non-trivial clusters in
    both trees ([0.] when both trees have none); ranges over [0, 1]. *)
