lib/ultrametric/rf_distance.mli: Utree
