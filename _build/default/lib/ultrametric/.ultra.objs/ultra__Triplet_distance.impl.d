lib/ultrametric/triplet_distance.ml: Array Utree
