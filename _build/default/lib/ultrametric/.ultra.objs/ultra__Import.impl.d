lib/ultrametric/import.ml: Distmat
