lib/ultrametric/tree_check.mli: Dist_matrix Format Import Utree
