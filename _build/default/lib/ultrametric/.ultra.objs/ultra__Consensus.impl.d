lib/ultrametric/consensus.ml: Hashtbl Int List Rf_distance Utree
