lib/ultrametric/nexus.ml: Array Buffer Dist_matrix Fun Import List Newick Printf String Utree
