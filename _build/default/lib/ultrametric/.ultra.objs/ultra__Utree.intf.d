lib/ultrametric/utree.mli: Dist_matrix Format Import
