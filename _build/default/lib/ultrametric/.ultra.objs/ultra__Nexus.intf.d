lib/ultrametric/nexus.mli: Dist_matrix Import Utree
