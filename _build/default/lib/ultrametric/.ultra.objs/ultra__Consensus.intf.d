lib/ultrametric/consensus.mli: Utree
