lib/ultrametric/render.ml: Array Buffer Float Hashtbl Int List Printf String Utree
