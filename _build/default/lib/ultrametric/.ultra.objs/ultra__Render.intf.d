lib/ultrametric/render.mli: Utree
