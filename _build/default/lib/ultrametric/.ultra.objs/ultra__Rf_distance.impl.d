lib/ultrametric/rf_distance.ml: List Utree
