lib/ultrametric/tree_check.ml: Dist_matrix Format Fun Import List Utree
