lib/ultrametric/newick.ml: Array Buffer Float Printf String Utree
