lib/ultrametric/newick.mli: Utree
