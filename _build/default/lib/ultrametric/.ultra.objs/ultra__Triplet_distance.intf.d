lib/ultrametric/triplet_distance.mli: Utree
