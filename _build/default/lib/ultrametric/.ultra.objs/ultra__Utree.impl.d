lib/ultrametric/utree.ml: Dist_matrix Float Format Fun Import List
