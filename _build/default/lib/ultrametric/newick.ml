let to_string ?names t =
  let name i =
    match names with
    | None -> string_of_int i
    | Some ns ->
        if i >= Array.length ns then
          invalid_arg "Newick.to_string: leaf index outside names";
        ns.(i)
  in
  let buf = Buffer.create 256 in
  let rec go parent_height t =
    let len = parent_height -. Utree.height t in
    (match t with
    | Utree.Leaf i -> Buffer.add_string buf (name i)
    | Utree.Node n ->
        Buffer.add_char buf '(';
        go n.height n.left;
        Buffer.add_char buf ',';
        go n.height n.right;
        Buffer.add_char buf ')');
    Buffer.add_string buf (Printf.sprintf ":%.9g" len)
  in
  (match t with
  | Utree.Leaf i -> Buffer.add_string buf (name i)
  | Utree.Node n ->
      Buffer.add_char buf '(';
      go n.height n.left;
      Buffer.add_char buf ',';
      go n.height n.right;
      Buffer.add_char buf ')');
  Buffer.add_char buf ';';
  Buffer.contents buf

(* --- Parsing: a small recursive-descent parser over a char cursor. --- *)

type parsed = Pleaf of string | Pnode of (parsed * float) * (parsed * float)

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = failwith (Printf.sprintf "Newick: %s at offset %d" msg c.pos)

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let word c =
  skip_ws c;
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some (('(' | ')' | ',' | ':' | ';') | ' ' | '\t' | '\n' | '\r') | None ->
        ()
    | Some _ ->
        advance c;
        go ()
  in
  go ();
  if c.pos = start then fail c "expected a name";
  String.sub c.text start (c.pos - start)

let branch_length c =
  expect c ':';
  let w = word c in
  match float_of_string_opt w with
  | Some f when Float.is_finite f && f >= 0. -> f
  | _ -> fail c (Printf.sprintf "bad branch length %S" w)

let rec subtree c =
  skip_ws c;
  match peek c with
  | Some '(' ->
      advance c;
      let l = subtree c in
      let ll = branch_length c in
      expect c ',';
      let r = subtree c in
      let rl = branch_length c in
      skip_ws c;
      (match peek c with
      | Some ')' -> advance c
      | Some ',' -> fail c "only binary trees are supported"
      | _ -> fail c "expected ')'");
      Pnode ((l, ll), (r, rl))
  | Some _ -> Pleaf (word c)
  | None -> fail c "unexpected end of input"

let of_string ?(eps = 1e-6) ?names text =
  let c = { text; pos = 0 } in
  let p = subtree c in
  skip_ws c;
  (* Optional root branch length, then the mandatory semicolon. *)
  (match peek c with Some ':' -> ignore (branch_length c : float) | _ -> ());
  expect c ';';
  skip_ws c;
  if peek c <> None then fail c "trailing input";
  let label w =
    match names with
    | None -> (
        match int_of_string_opt w with
        | Some i when i >= 0 -> i
        | _ -> failwith (Printf.sprintf "Newick: leaf %S is not an integer" w))
    | Some ns -> (
        match Array.find_index (String.equal w) ns with
        | Some i -> i
        | None -> failwith (Printf.sprintf "Newick: unknown leaf name %S" w))
  in
  (* Convert to heights bottom-up, checking ultrametricity: both children
     must reach the same height through their branch lengths. *)
  let rec build = function
    | Pleaf w -> Utree.leaf (label w)
    | Pnode ((l, ll), (r, rl)) ->
        let lt = build l and rt = build r in
        let hl = Utree.height lt +. ll and hr = Utree.height rt +. rl in
        if Float.abs (hl -. hr) > eps then
          failwith
            (Printf.sprintf
               "Newick: branch lengths are not ultrametric (%g vs %g)" hl hr);
        Utree.node (Float.max hl hr) lt rt
  in
  build p
