(** Tree rendering: ASCII dendrograms for terminals and SVG for reports.

    The project report emphasises giving biologists {e readable} results;
    these renderers turn an ultrametric tree into a left-to-right
    dendrogram whose horizontal axis is evolutionary distance (node
    height), so merge depths can be read off directly. *)

val to_ascii : ?names:string array -> ?width:int -> Utree.t -> string
(** Text dendrogram, roughly [width] columns wide (default 72).
    Leaves are labelled by [names] (default: the integer labels).
    @raise Invalid_argument if a leaf index is outside [names]. *)

val to_svg : ?names:string array -> ?width:int -> Utree.t -> string
(** Standalone SVG document of the same dendrogram (default width 640
    pixels), with a distance scale bar. *)
