(* For each leaf [i], one walk down the root-to-[i] path records, for
   every other leaf [a], how early [a] split from [i] (the path depth of
   their LCA).  The grouped pair of a triple (i, j, k) follows by
   comparing split depths, exactly as in Relation33 but against a second
   tree instead of a matrix. *)

let split_depths t n i =
  let depths = Array.make n (-1) in
  let rec record_all d t =
    match t with
    | Utree.Leaf a -> depths.(a) <- d
    | Utree.Node nd ->
        record_all d nd.left;
        record_all d nd.right
  in
  let rec contains x = function
    | Utree.Leaf l -> l = x
    | Utree.Node nd -> contains x nd.left || contains x nd.right
  in
  let rec walk d t =
    match t with
    | Utree.Leaf _ -> ()
    | Utree.Node nd ->
        if contains i nd.left then begin
          record_all d nd.right;
          walk (d + 1) nd.left
        end
        else begin
          record_all d nd.left;
          walk (d + 1) nd.right
        end
  in
  walk 0 t;
  depths

(* The grouped pair of (i, j, k) encoded as 0 = (j,k), 1 = (i,j),
   2 = (i,k), from i's split depths: whichever of j, k split from i
   later is grouped with i; equal depths mean j and k are together. *)
let grouped depths j k =
  if depths.(j) > depths.(k) then 1
  else if depths.(k) > depths.(j) then 2
  else 0

let distance a b =
  if Utree.leaves a <> Utree.leaves b then
    invalid_arg "Triplet_distance.distance: different leaf sets";
  let n = Utree.n_leaves a in
  let count = ref 0 in
  for i = 0 to n - 1 do
    let da = split_depths a n i and db = split_depths b n i in
    for j = i + 1 to n - 1 do
      for k = j + 1 to n - 1 do
        if grouped da j k <> grouped db j k then incr count
      done
    done
  done;
  !count

let normalized a b =
  let n = Utree.n_leaves a in
  if n < 3 then 0.
  else
    let triples = n * (n - 1) * (n - 2) / 6 in
    float_of_int (distance a b) /. float_of_int triples
