open Import

type error =
  | Bad_leaf_set of string
  | Not_monotone of string
  | Not_feasible of { i : int; j : int; needed : float; got : float }

let pp_error ppf = function
  | Bad_leaf_set msg -> Format.fprintf ppf "bad leaf set: %s" msg
  | Not_monotone msg -> Format.fprintf ppf "heights not monotone: %s" msg
  | Not_feasible { i; j; needed; got } ->
      Format.fprintf ppf
        "tree distance between %d and %d is %g, below the matrix's %g" i j
        got needed

let full_check ?(eps = 1e-9) dm t =
  let n = Dist_matrix.size dm in
  let ls = Utree.leaves t in
  if List.length ls <> n || ls <> List.init n Fun.id then
    Error
      (Bad_leaf_set
         (Format.asprintf "expected 0..%d, got [%a]" (n - 1)
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.fprintf ppf ";")
               Format.pp_print_int)
            ls))
  else if not (Utree.is_monotone t) then
    Error (Not_monotone "some internal node is lower than a child")
  else begin
    (* Localise the worst feasibility violation for the error message. *)
    let worst = ref None in
    let tm = Utree.to_matrix t in
    Dist_matrix.iter_pairs
      (fun i j needed ->
        let got = Dist_matrix.get tm i j in
        if got < needed -. eps then
          match !worst with
          | Some (_, _, n0, g0) when n0 -. g0 >= needed -. got -> ()
          | _ -> worst := Some (i, j, needed, got))
      dm;
    match !worst with
    | None -> Ok ()
    | Some (i, j, needed, got) -> Error (Not_feasible { i; j; needed; got })
  end

let assert_valid ?eps dm t =
  match full_check ?eps dm t with
  | Ok () -> ()
  | Error e -> failwith (Format.asprintf "Tree_check: %a" pp_error e)
