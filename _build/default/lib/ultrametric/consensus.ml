let check_same_leaves = function
  | [] -> invalid_arg "Consensus: empty tree list"
  | t :: rest ->
      let ls = Utree.leaves t in
      List.iter
        (fun t' ->
          if Utree.leaves t' <> ls then
            invalid_arg "Consensus: trees have different leaf sets")
        rest

let cluster_counts trees =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun t ->
      List.iter
        (fun c ->
          Hashtbl.replace counts c
            (1 + try Hashtbl.find counts c with Not_found -> 0))
        (Rf_distance.clusters t))
    trees;
  counts

let filter_by_count trees needed =
  check_same_leaves trees;
  let counts = cluster_counts trees in
  Hashtbl.fold
    (fun cluster count acc -> if count >= needed then cluster :: acc else acc)
    counts []
  |> List.sort compare

let strict trees = filter_by_count trees (List.length trees)

let majority ?(threshold = 0.5) trees =
  if threshold < 0.5 || threshold > 1.0 then
    invalid_arg "Consensus.majority: threshold must be in [0.5, 1.0]";
  let n = List.length trees in
  (* "More than threshold", with >= at exactly 1.0 so it matches
     [strict]. *)
  let needed =
    if threshold >= 1.0 then n
    else 1 + int_of_float (threshold *. float_of_int n)
  in
  filter_by_count trees (Int.min n needed)

let agreement trees =
  check_same_leaves trees;
  let counts = cluster_counts trees in
  let total = Hashtbl.length counts in
  if total = 0 then 1.
  else
    float_of_int (List.length (strict trees)) /. float_of_int total
