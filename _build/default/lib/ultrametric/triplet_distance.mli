(** Triplet distance between rooted trees.

    For every three leaves, a rooted binary tree groups exactly one pair
    below the triple's common ancestor; the triplet distance counts the
    triples on which two trees disagree.  It is finer-grained than
    Robinson-Foulds and is the tree-tree analogue of the 3-3
    relationship the companion paper uses between a tree and a matrix
    ({!Bnb.Relation33} lives downstream, so the measure is implemented
    here independently). *)

val distance : Utree.t -> Utree.t -> int
(** Number of disagreeing triples.  O(n^2) preprocessing + O(n^3)
    comparison.  @raise Invalid_argument if the trees have different
    leaf sets. *)

val normalized : Utree.t -> Utree.t -> float
(** {!distance} divided by [C(n, 3)] (the number of triples); in
    [0, 1].  [0.] for trees with fewer than 3 leaves. *)
