open Import

type document = {
  taxa : string array;
  matrix : Dist_matrix.t option;
  trees : (string * Utree.t) list;
}

let to_string doc =
  let n = Array.length doc.taxa in
  (match doc.matrix with
  | Some m when Dist_matrix.size m <> n ->
      invalid_arg "Nexus.to_string: matrix size disagrees with taxa"
  | Some _ | None -> ());
  List.iter
    (fun (_, t) ->
      if Utree.leaves t <> List.init n Fun.id then
        invalid_arg "Nexus.to_string: tree leaves must index the taxa")
    doc.trees;
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "#NEXUS\n\n";
  add "BEGIN TAXA;\n  DIMENSIONS NTAX=%d;\n  TAXLABELS" n;
  Array.iter (fun name -> add " %s" name) doc.taxa;
  add ";\nEND;\n\n";
  (match doc.matrix with
  | None -> ()
  | Some m ->
      add "BEGIN DISTANCES;\n  DIMENSIONS NTAX=%d;\n" n;
      add "  FORMAT TRIANGLE=LOWER DIAGONAL;\n  MATRIX\n";
      for i = 0 to n - 1 do
        add "    %s" doc.taxa.(i);
        for j = 0 to i do
          add " %.9g" (Dist_matrix.get m i j)
        done;
        add "\n"
      done;
      add "  ;\nEND;\n\n");
  (match doc.trees with
  | [] -> ()
  | trees ->
      add "BEGIN TREES;\n";
      List.iter
        (fun (name, t) ->
          add "  TREE %s = %s\n" name (Newick.to_string ~names:doc.taxa t))
        trees;
      add "END;\n");
  Buffer.contents buf

(* --- parsing --- *)

let strip_comments text =
  (* NEXUS comments are [ ... ] and do not nest in our subset. *)
  let buf = Buffer.create (String.length text) in
  let depth = ref 0 in
  String.iter
    (fun c ->
      if c = '[' then incr depth
      else if c = ']' then begin
        if !depth = 0 then failwith "Nexus: unbalanced ']'";
        decr depth
      end
      else if !depth = 0 then Buffer.add_char buf c)
    text;
  if !depth <> 0 then failwith "Nexus: unterminated comment";
  Buffer.contents buf

let tokens_of text =
  (* Statements are ;-terminated; split into statements first, keeping
     structure simple. *)
  String.split_on_char ';' text
  |> List.map (fun stmt ->
         String.split_on_char ' '
           (String.map
              (function '\n' | '\t' | '\r' -> ' ' | c -> c)
              stmt)
         |> List.filter (fun s -> s <> ""))
  |> List.filter (fun stmt -> stmt <> [])

let upper = String.uppercase_ascii

let of_string text =
  let text = strip_comments text in
  (* The #NEXUS magic may sit at the start of the first statement. *)
  let stmts = tokens_of text in
  (match stmts with
  | (magic :: _) :: _ when upper magic = "#NEXUS" -> ()
  | _ -> failwith "Nexus: missing #NEXUS header");
  let taxa = ref [||] in
  let matrix = ref None in
  let trees = ref [] in
  let current_block = ref "" in
  let stmts =
    (* Drop the #NEXUS token from the first statement. *)
    match stmts with
    | (magic :: rest) :: others when upper magic = "#NEXUS" ->
        if rest = [] then others else rest :: others
    | all -> all
  in
  List.iter
    (fun stmt ->
      match stmt with
      | kw :: rest when upper kw = "BEGIN" -> (
          match rest with
          | [ block ] -> current_block := upper block
          | _ -> failwith "Nexus: malformed BEGIN")
      | [ kw ] when upper kw = "END" || upper kw = "ENDBLOCK" ->
          current_block := ""
      | kw :: rest when upper kw = "TAXLABELS" && !current_block = "TAXA" ->
          taxa := Array.of_list rest
      | kw :: rest when upper kw = "MATRIX" && !current_block = "DISTANCES"
        -> (
          let n = Array.length !taxa in
          if n = 0 then failwith "Nexus: DISTANCES before TAXLABELS";
          (* rest = taxon_0 d00 taxon_1 d10 d11 ... (lower + diagonal) *)
          let raw = Array.make_matrix n n 0. in
          let toks = ref rest in
          let next () =
            match !toks with
            | [] -> failwith "Nexus: truncated distance matrix"
            | t :: more ->
                toks := more;
                t
          in
          for i = 0 to n - 1 do
            let name = next () in
            if name <> !taxa.(i) then
              failwith
                (Printf.sprintf "Nexus: row %d is %S, expected %S" i name
                   !taxa.(i));
            for j = 0 to i do
              match float_of_string_opt (next ()) with
              | Some d ->
                  raw.(i).(j) <- d;
                  raw.(j).(i) <- d
              | None -> failwith "Nexus: bad distance value"
            done
          done;
          if !toks <> [] then failwith "Nexus: trailing matrix entries";
          match Dist_matrix.of_rows raw with
          | m -> matrix := Some m
          | exception Invalid_argument msg -> failwith ("Nexus: " ^ msg))
      | kw :: rest when upper kw = "TREE" && !current_block = "TREES" -> (
          match rest with
          | name :: "=" :: newick_parts ->
              let newick = String.concat "" newick_parts ^ ";" in
              let tree = Newick.of_string ~names:!taxa newick in
              trees := (name, tree) :: !trees
          | _ -> failwith "Nexus: malformed TREE statement")
      | kw :: _
        when List.mem (upper kw) [ "DIMENSIONS"; "FORMAT"; "TRANSLATE" ] ->
          ()
      | _ -> ())
    stmts;
  if Array.length !taxa = 0 then failwith "Nexus: no TAXLABELS found";
  { taxa = !taxa; matrix = !matrix; trees = List.rev !trees }
