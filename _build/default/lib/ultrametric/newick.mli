(** Newick serialisation of ultrametric trees.

    Branch lengths are height differences, so a tree at height [h] prints
    as e.g. [((0:1,1:1):2,2:3);] — every root-to-leaf path sums to [h].
    Parsing accepts binary trees whose branch lengths are consistent with
    an ultrametric (all leaves equidistant from the root, up to [eps]). *)

val to_string : ?names:string array -> Utree.t -> string
(** [names.(i)] labels leaf [i]; defaults to the integer itself.
    @raise Invalid_argument if a leaf index is outside [names]. *)

val of_string : ?eps:float -> ?names:string array -> string -> Utree.t
(** Parse a Newick string into an ultrametric tree.  When [names] is
    given, leaf words are looked up in it; otherwise leaf words must be
    integers.  @raise Failure on syntax errors, non-binary nodes, unknown
    names, missing branch lengths, or branch lengths that do not describe
    an ultrametric (root-to-leaf distances differing by more than [eps],
    default [1e-6]). *)
