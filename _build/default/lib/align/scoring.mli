open Import

(** Alignment scoring: substitution scores and affine gap penalties.

    Scores are maximised; gap penalties are negative.  A gap of length
    [k] costs [gap_open + k * gap_extend]. *)

type t = {
  matches : float;  (** score for identical bases *)
  transition : float;
      (** purine-purine / pyrimidine-pyrimidine mismatch (A<->G, C<->T) —
          biologically far more common, so penalised less *)
  transversion : float;  (** the other mismatches *)
  gap_open : float;  (** opening a gap (negative) *)
  gap_extend : float;  (** each gap position (negative) *)
}

val default : t
(** [+2 / -1 / -2 / -4 / -1] — EDNAFULL-flavoured. *)

val unit_edit : t
(** Scores whose maximising alignment minimises unit-cost edit distance:
    [0 / -1 / -1 / 0 / -1]. *)

val substitution : t -> Dna.base -> Dna.base -> float

val is_transition : Dna.base -> Dna.base -> bool
(** [A<->G] or [C<->T]. *)
