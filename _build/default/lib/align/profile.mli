open Import

(** Alignment profiles: a block of already-aligned rows, summarised per
    column by symbol frequencies, alignable against another profile with
    the same Gotoh engine (sum-of-pairs expected score). *)

type t
(** Invariant: every row has the same length (the profile width). *)

val of_sequence : int -> Dna.t -> t
(** [of_sequence id seq] — a single-row profile; [id] tags the row so
    the final alignment can be reassembled in input order. *)

val width : t -> int
val n_rows : t -> int

val rows : t -> (int * Gapped.t) list
(** Tagged rows, in no particular order. *)

val combine : ?scoring:Scoring.t -> t -> t -> t
(** Align two profiles and merge them into one (progressive-alignment
    step). *)
