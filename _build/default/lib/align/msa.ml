open Import

type t = { rows : Gapped.t array }

let guide_distances ?scoring seqs =
  let n = Array.length seqs in
  Dist_matrix.init n (fun i j ->
      let r = Pairwise.align ?scoring seqs.(i) seqs.(j) in
      (* p-distance plus a small gap penalty term so that very gappy
         pairs look distant even when their shared columns agree. *)
      let gaps =
        float_of_int (Gapped.n_gaps r.Pairwise.a + Gapped.n_gaps r.Pairwise.b)
      in
      Gapped.p_distance r.Pairwise.a r.Pairwise.b
      +. (gaps /. float_of_int (2 * Gapped.length r.Pairwise.a))
      +. 1e-9)

let guide_tree ?scoring seqs =
  if Array.length seqs = 0 then invalid_arg "Msa.guide_tree: no sequences";
  if Array.length seqs = 1 then Utree.leaf 0
  else Linkage.upgma (guide_distances ?scoring seqs)

let align ?scoring seqs =
  match Array.length seqs with
  | 0 -> invalid_arg "Msa.align: no sequences"
  | 1 -> { rows = [| Gapped.of_dna seqs.(0) |] }
  | n ->
      let guide = guide_tree ?scoring seqs in
      let rec build t =
        match t with
        | Utree.Leaf i -> Profile.of_sequence i seqs.(i)
        | Utree.Node nd ->
            Profile.combine ?scoring (build nd.left) (build nd.right)
      in
      let profile = build guide in
      let rows = Array.make n [||] in
      List.iter (fun (id, row) -> rows.(id) <- row) (Profile.rows profile);
      { rows }

let width t = if Array.length t.rows = 0 then 0 else Gapped.length t.rows.(0)

let to_strings t = Array.map Gapped.to_string t.rows

let pp ppf t =
  let block = 60 in
  let w = width t in
  let rec blocks start =
    if start < w then begin
      let len = Int.min block (w - start) in
      Array.iteri
        (fun i row ->
          Format.fprintf ppf "s%-6d %s@." i
            (Gapped.to_string (Array.sub row start len)))
        t.rows;
      Format.fprintf ppf "@.";
      blocks (start + block)
    end
  in
  blocks 0

let jc_cap = 10.

let distance_matrix ?(jc = true) t =
  let n = Array.length t.rows in
  let raw =
    Dist_matrix.init n (fun i j ->
        let p = Gapped.p_distance t.rows.(i) t.rows.(j) in
        let d =
          if not jc then p
          else if p >= 0.749 then jc_cap
          else -0.75 *. log (1. -. (4. /. 3. *. p))
        in
        d *. 100.)
  in
  Metric.floyd_warshall raw
