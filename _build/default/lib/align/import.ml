(* Aliases for modules from dependency libraries. *)

module Dist_matrix = Distmat.Dist_matrix
module Metric = Distmat.Metric
module Dna = Seqsim.Dna
module Utree = Ultra.Utree
module Linkage = Clustering.Linkage
