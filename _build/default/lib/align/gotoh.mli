(** Generic global alignment with affine gaps (Gotoh's algorithm),
    over abstract positions.

    Both {!Pairwise} (bases) and {!Profile} (alignment columns) drive
    this engine; they only differ in the substitution function. *)

type op =
  | Match  (** consume one position from each side *)
  | Delete  (** consume from the first side, gap on the second *)
  | Insert  (** gap on the first side, consume from the second *)

val align :
  sub:(int -> int -> float) ->
  gap_open:float ->
  gap_extend:float ->
  int ->
  int ->
  op list * float
(** [align ~sub ~gap_open ~gap_extend la lb] returns the operation list
    (from the start of the sequences) and the optimal score, where
    [sub i j] scores matching position [i] of the first side (0-based)
    with position [j] of the second, and a gap of length [k] costs
    [gap_open + k * gap_extend].  O(la * lb) time and space. *)
