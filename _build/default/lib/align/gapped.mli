open Import

(** Gapped sequences: DNA with alignment gaps. *)

type symbol = Base of Dna.base | Gap

type t = symbol array

val of_dna : Dna.t -> t
val to_dna : t -> Dna.t
(** Drop the gaps. *)

val to_string : t -> string
(** Gaps print as ['-']. *)

val of_string : string -> t
(** @raise Invalid_argument on characters outside [ACGTacgt-]. *)

val length : t -> int
val n_gaps : t -> int

val identity : t -> t -> float
(** Fraction of columns where both rows carry the {e same base};
    columns with a gap in either row are excluded from the denominator.
    [0.] when no gap-free columns exist.
    @raise Invalid_argument on different lengths. *)

val p_distance : t -> t -> float
(** Fraction of differing bases over gap-free columns (the standard
    pairwise-deletion p-distance); [0.] when no gap-free columns. *)
