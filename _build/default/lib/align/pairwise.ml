type result = { a : Gapped.t; b : Gapped.t; score : float }

let align ?(scoring = Scoring.default) sa sb =
  let ops, score =
    Gotoh.align
      ~sub:(fun i j -> Scoring.substitution scoring sa.(i) sb.(j))
      ~gap_open:scoring.Scoring.gap_open
      ~gap_extend:scoring.Scoring.gap_extend (Array.length sa)
      (Array.length sb)
  in
  let ra = ref [] and rb = ref [] and i = ref 0 and j = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Gotoh.Match ->
          ra := Gapped.Base sa.(!i) :: !ra;
          rb := Gapped.Base sb.(!j) :: !rb;
          incr i;
          incr j
      | Gotoh.Delete ->
          ra := Gapped.Base sa.(!i) :: !ra;
          rb := Gapped.Gap :: !rb;
          incr i
      | Gotoh.Insert ->
          ra := Gapped.Gap :: !ra;
          rb := Gapped.Base sb.(!j) :: !rb;
          incr j)
    ops;
  {
    a = Array.of_list (List.rev !ra);
    b = Array.of_list (List.rev !rb);
    score;
  }

let score ?(scoring = Scoring.default) sa sb =
  (* Row-wise DP keeping only the previous row of each state table. *)
  let la = Array.length sa and lb = Array.length sb in
  let open_ext = scoring.Scoring.gap_open +. scoring.Scoring.gap_extend in
  let ext = scoring.Scoring.gap_extend in
  let neg_inf = neg_infinity in
  let mp = Array.make (lb + 1) neg_inf in
  let xp = Array.make (lb + 1) neg_inf in
  let yp = Array.make (lb + 1) neg_inf in
  let mc = Array.make (lb + 1) neg_inf in
  let xc = Array.make (lb + 1) neg_inf in
  let yc = Array.make (lb + 1) neg_inf in
  mp.(0) <- 0.;
  for j = 1 to lb do
    yp.(j) <- scoring.Scoring.gap_open +. (float_of_int j *. ext)
  done;
  for i = 1 to la do
    mc.(0) <- neg_inf;
    yc.(0) <- neg_inf;
    xc.(0) <- scoring.Scoring.gap_open +. (float_of_int i *. ext);
    for j = 1 to lb do
      let sub = Scoring.substitution scoring sa.(i - 1) sb.(j - 1) in
      mc.(j) <- sub +. Float.max mp.(j - 1) (Float.max xp.(j - 1) yp.(j - 1));
      xc.(j) <-
        Float.max (mp.(j) +. open_ext)
          (Float.max (xp.(j) +. ext) (yp.(j) +. open_ext));
      yc.(j) <-
        Float.max
          (mc.(j - 1) +. open_ext)
          (Float.max (xc.(j - 1) +. open_ext) (yc.(j - 1) +. ext))
    done;
    Array.blit mc 0 mp 0 (lb + 1);
    Array.blit xc 0 xp 0 (lb + 1);
    Array.blit yc 0 yp 0 (lb + 1)
  done;
  Float.max mp.(lb) (Float.max xp.(lb) yp.(lb))

let edit_distance sa sb =
  -. score ~scoring:Scoring.unit_edit sa sb |> Float.round |> int_of_float
