open Import

(** Global pairwise alignment with affine gaps (Needleman-Wunsch /
    Gotoh).

    This is the edit-distance computation the papers' distance-matrix
    model refers to ("they determine the distance as the edit distance
    for any two of species"), generalised to affine gap costs. *)

type result = { a : Gapped.t; b : Gapped.t; score : float }
(** Both rows have equal length; stripping gaps recovers the inputs. *)

val align : ?scoring:Scoring.t -> Dna.t -> Dna.t -> result
(** Optimal global alignment ({!Scoring.default} by default).
    O(|a| * |b|) time and space. *)

val score : ?scoring:Scoring.t -> Dna.t -> Dna.t -> float
(** Optimal score only — two-row DP, O(min) memory. *)

val edit_distance : Dna.t -> Dna.t -> int
(** Unit-cost Levenshtein distance via {!Scoring.unit_edit}: the negated
    optimal score.  Agrees with {!Seqsim.Distance.edit_distance} (see
    the test suite). *)
