open Import

(* Per-column frequency vector over A, C, G, T, gap. *)
type column = float array

type t = { columns : column array; members : (int * Gapped.t) list }

let symbol_index = function
  | Gapped.Base Dna.A -> 0
  | Gapped.Base Dna.C -> 1
  | Gapped.Base Dna.G -> 2
  | Gapped.Base Dna.T -> 3
  | Gapped.Gap -> 4

let base_of_index = [| Dna.A; Dna.C; Dna.G; Dna.T |]

let column_of_rows rows col =
  let c = Array.make 5 0. in
  List.iter
    (fun (_, row) ->
      let i = symbol_index row.(col) in
      c.(i) <- c.(i) +. 1.)
    rows;
  c

let recompute_columns members width =
  Array.init width (column_of_rows members)

let of_sequence id seq =
  let row = Gapped.of_dna seq in
  {
    columns = recompute_columns [ (id, row) ] (Array.length row);
    members = [ (id, row) ];
  }

let width t = Array.length t.columns
let n_rows t = List.length t.members
let rows t = t.members

(* Expected substitution score between two columns: average over base
   pairs; a base facing an existing gap costs one gap extension, and
   gap-gap pairs are neutral. *)
let column_score scoring (p : column) (q : column) =
  let np = Array.fold_left ( +. ) 0. p and nq = Array.fold_left ( +. ) 0. q in
  let total = ref 0. in
  for a = 0 to 3 do
    if p.(a) > 0. then
      for b = 0 to 3 do
        if q.(b) > 0. then
          total :=
            !total
            +. p.(a) *. q.(b)
               *. Scoring.substitution scoring base_of_index.(a)
                    base_of_index.(b)
      done
  done;
  let gap_cross = (p.(4) *. (nq -. q.(4))) +. (q.(4) *. (np -. p.(4))) in
  total := !total +. (gap_cross *. scoring.Scoring.gap_extend);
  !total /. (np *. nq)

let insert_gaps ops ~keep_on row =
  (* Rebuild one row following the merged operation list; [keep_on] says
     which ops consume this row's columns. *)
  let out = ref [] and i = ref 0 in
  List.iter
    (fun op ->
      if keep_on op then begin
        out := row.(!i) :: !out;
        incr i
      end
      else out := Gapped.Gap :: !out)
    ops;
  Array.of_list (List.rev !out)

let combine ?(scoring = Scoring.default) p q =
  let ops, _score =
    Gotoh.align
      ~sub:(fun i j -> column_score scoring p.columns.(i) q.columns.(j))
      ~gap_open:scoring.Scoring.gap_open
      ~gap_extend:scoring.Scoring.gap_extend (width p) (width q)
  in
  let keep_p = function Gotoh.Match | Gotoh.Delete -> true | Gotoh.Insert -> false in
  let keep_q = function Gotoh.Match | Gotoh.Insert -> true | Gotoh.Delete -> false in
  let members =
    List.map (fun (id, row) -> (id, insert_gaps ops ~keep_on:keep_p row)) p.members
    @ List.map (fun (id, row) -> (id, insert_gaps ops ~keep_on:keep_q row)) q.members
  in
  let w = List.length ops in
  { columns = recompute_columns members w; members }
