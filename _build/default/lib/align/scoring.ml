open Import

type t = {
  matches : float;
  transition : float;
  transversion : float;
  gap_open : float;
  gap_extend : float;
}

let default =
  {
    matches = 2.;
    transition = -1.;
    transversion = -2.;
    gap_open = -4.;
    gap_extend = -1.;
  }

let unit_edit =
  {
    matches = 0.;
    transition = -1.;
    transversion = -1.;
    gap_open = 0.;
    gap_extend = -1.;
  }

let is_purine = function Dna.A | Dna.G -> true | Dna.C | Dna.T -> false

let is_transition a b = a <> b && is_purine a = is_purine b

let substitution t a b =
  if a = b then t.matches
  else if is_transition a b then t.transition
  else t.transversion
