open Import

(** Progressive multiple sequence alignment.

    The papers' "sequences model": align the species' sequences, then
    build the tree from the alignment.  Exact MSA is NP-hard (the papers
    cite Wang & Jiang 1994), so we use the classical progressive
    heuristic: pairwise guide distances, a UPGMA guide tree, and
    postorder profile-profile merges. *)

type t = { rows : Gapped.t array }
(** [rows.(i)] is sequence [i] with gaps inserted; all rows share one
    width, and stripping the gaps recovers the input sequences. *)

val align : ?scoring:Scoring.t -> Dna.t array -> t
(** Align 1 or more sequences.  O(n^2 L^2) guide phase plus one profile
    merge per internal guide-tree node.
    @raise Invalid_argument on an empty array. *)

val width : t -> int

val guide_tree : ?scoring:Scoring.t -> Dna.t array -> Utree.t
(** The UPGMA guide tree over pairwise alignment p-distances (exposed
    for inspection and tests). *)

val to_strings : t -> string array
(** One gapped string per input sequence, gaps as ['-']. *)

val pp : Format.formatter -> t -> unit
(** Clustal-style block rendering. *)

val distance_matrix :
  ?jc:bool -> t -> Dist_matrix.t
(** Pairwise-deletion distances from the alignment — p-distances, or
    Jukes-Cantor corrected with [jc] (default true) — scaled by 100 and
    closed into a metric; ready for {!Compactphy.Pipeline}. *)
