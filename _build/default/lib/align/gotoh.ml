type op = Match | Delete | Insert

let neg_inf = neg_infinity

let st_m = 0
let st_x = 1 (* Delete state: consuming the first side against gaps *)
let st_y = 2 (* Insert state *)

let align ~sub ~gap_open ~gap_extend la lb =
  let open_ext = gap_open +. gap_extend in
  let ext = gap_extend in
  let m = Array.make_matrix (la + 1) (lb + 1) neg_inf in
  let x = Array.make_matrix (la + 1) (lb + 1) neg_inf in
  let y = Array.make_matrix (la + 1) (lb + 1) neg_inf in
  let from_m = Array.make_matrix (la + 1) (lb + 1) 0 in
  let from_x = Array.make_matrix (la + 1) (lb + 1) 0 in
  let from_y = Array.make_matrix (la + 1) (lb + 1) 0 in
  m.(0).(0) <- 0.;
  for i = 1 to la do
    x.(i).(0) <- gap_open +. (float_of_int i *. ext);
    from_x.(i).(0) <- (if i = 1 then st_m else st_x)
  done;
  for j = 1 to lb do
    y.(0).(j) <- gap_open +. (float_of_int j *. ext);
    from_y.(0).(j) <- (if j = 1 then st_m else st_y)
  done;
  let best3 a b c =
    if a >= b && a >= c then (a, st_m)
    else if b >= c then (b, st_x)
    else (c, st_y)
  in
  for i = 1 to la do
    for j = 1 to lb do
      let s = sub (i - 1) (j - 1) in
      let v, st = best3 m.(i - 1).(j - 1) x.(i - 1).(j - 1) y.(i - 1).(j - 1) in
      m.(i).(j) <- v +. s;
      from_m.(i).(j) <- st;
      let vx, sx =
        best3
          (m.(i - 1).(j) +. open_ext)
          (x.(i - 1).(j) +. ext)
          (y.(i - 1).(j) +. open_ext)
      in
      x.(i).(j) <- vx;
      from_x.(i).(j) <- sx;
      let vy, sy =
        best3
          (m.(i).(j - 1) +. open_ext)
          (x.(i).(j - 1) +. open_ext)
          (y.(i).(j - 1) +. ext)
      in
      y.(i).(j) <- vy;
      from_y.(i).(j) <- sy
    done
  done;
  let score, final = best3 m.(la).(lb) x.(la).(lb) y.(la).(lb) in
  let ops = ref [] in
  let rec walk i j state =
    if i > 0 || j > 0 then
      if state = st_m then begin
        ops := Match :: !ops;
        walk (i - 1) (j - 1) from_m.(i).(j)
      end
      else if state = st_x then begin
        ops := Delete :: !ops;
        walk (i - 1) j from_x.(i).(j)
      end
      else begin
        ops := Insert :: !ops;
        walk i (j - 1) from_y.(i).(j)
      end
  in
  walk la lb final;
  (!ops, score)
