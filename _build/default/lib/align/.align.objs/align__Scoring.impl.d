lib/align/scoring.ml: Dna Import
