lib/align/gotoh.mli:
