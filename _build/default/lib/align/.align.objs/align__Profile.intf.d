lib/align/profile.mli: Dna Gapped Import Scoring
