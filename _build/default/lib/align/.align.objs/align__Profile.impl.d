lib/align/profile.ml: Array Dna Gapped Gotoh Import List Scoring
