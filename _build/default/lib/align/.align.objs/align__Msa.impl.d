lib/align/msa.ml: Array Dist_matrix Format Gapped Import Int Linkage List Metric Pairwise Profile Utree
