lib/align/gapped.mli: Dna Import
