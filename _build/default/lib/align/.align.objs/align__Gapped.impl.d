lib/align/gapped.ml: Array Dna Import List String
