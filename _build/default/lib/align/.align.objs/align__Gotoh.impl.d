lib/align/gotoh.ml: Array
