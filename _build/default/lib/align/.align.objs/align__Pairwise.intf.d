lib/align/pairwise.mli: Dna Gapped Import Scoring
