lib/align/scoring.mli: Dna Import
