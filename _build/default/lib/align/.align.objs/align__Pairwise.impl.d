lib/align/pairwise.ml: Array Float Gapped Gotoh List Scoring
