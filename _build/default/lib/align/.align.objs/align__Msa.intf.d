lib/align/msa.mli: Dist_matrix Dna Format Gapped Import Scoring Utree
