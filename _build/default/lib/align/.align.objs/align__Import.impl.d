lib/align/import.ml: Clustering Distmat Seqsim Ultra
