open Import

type symbol = Base of Dna.base | Gap

type t = symbol array

let of_dna seq = Array.map (fun b -> Base b) seq

let to_dna t =
  Array.of_list
    (List.filter_map
       (function Base b -> Some b | Gap -> None)
       (Array.to_list t))

let to_string t =
  String.init (Array.length t) (fun i ->
      match t.(i) with
      | Gap -> '-'
      | Base b -> (Dna.to_string [| b |]).[0])

let of_string s =
  Array.init (String.length s) (fun i ->
      match s.[i] with
      | '-' -> Gap
      | c -> Base (Dna.of_string (String.make 1 c)).(0))

let length = Array.length

let n_gaps t =
  Array.fold_left (fun acc x -> if x = Gap then acc + 1 else acc) 0 t

let compared_columns a b =
  if Array.length a <> Array.length b then
    invalid_arg "Gapped: different lengths";
  let same = ref 0 and total = ref 0 in
  Array.iteri
    (fun i x ->
      match (x, b.(i)) with
      | Base p, Base q ->
          incr total;
          if p = q then incr same
      | Gap, _ | _, Gap -> ())
    a;
  (!same, !total)

let identity a b =
  let same, total = compared_columns a b in
  if total = 0 then 0. else float_of_int same /. float_of_int total

let p_distance a b =
  let same, total = compared_columns a b in
  if total = 0 then 0.
  else float_of_int (total - same) /. float_of_int total
