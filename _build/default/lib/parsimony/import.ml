(* Aliases for modules from dependency libraries. *)

module Dna = Seqsim.Dna
module Utree = Ultra.Utree
module Dist_matrix = Distmat.Dist_matrix
