open Import

let base_bit = function
  | Dna.A -> 1
  | Dna.C -> 2
  | Dna.G -> 4
  | Dna.T -> 8

let check_input seqs tree =
  let n = Array.length seqs in
  if n = 0 then invalid_arg "Fitch: no sequences";
  let sites = Array.length seqs.(0) in
  Array.iter
    (fun s ->
      if Array.length s <> sites then
        invalid_arg "Fitch: sequences must be aligned (equal lengths)")
    seqs;
  if Utree.leaves tree <> List.init n Fun.id then
    invalid_arg "Fitch: tree leaves must index the sequences";
  sites

let score seqs tree =
  let sites = check_input seqs tree in
  let total = ref 0 in
  for site = 0 to sites - 1 do
    (* Post-order: each node carries the set (bitmask) of states an
       optimal labelling can assign it; a union instead of an
       intersection costs one substitution. *)
    let rec fitch t =
      match t with
      | Utree.Leaf i -> base_bit seqs.(i).(site)
      | Utree.Node n ->
          let l = fitch n.left and r = fitch n.right in
          let inter = l land r in
          if inter <> 0 then inter
          else begin
            incr total;
            l lor r
          end
    in
    ignore (fitch tree : int)
  done;
  !total

let best_tree seqs =
  let n = Array.length seqs in
  if n = 0 then invalid_arg "Fitch.best_tree: no sequences";
  if n > 9 then invalid_arg "Fitch.best_tree: n too large";
  if n = 1 then (Utree.leaf 0, 0)
  else begin
    (* Enumerate topologies over a trivial matrix (heights are
       irrelevant to parsimony). *)
    let dummy = Dist_matrix.init n (fun _ _ -> 1.) in
    let best = ref None in
    Bnb.Enumerate.iter dummy (fun t ->
        let s = score seqs t in
        match !best with
        | Some (s0, _) when s0 <= s -> ()
        | Some _ | None -> best := Some (s, t));
    match !best with Some (s, t) -> (t, s) | None -> assert false
  end

let consistency_with_distance_tree seqs tree =
  let s = score seqs tree in
  let _, opt = best_tree seqs in
  if s = 0 then 1. else float_of_int opt /. float_of_int s
