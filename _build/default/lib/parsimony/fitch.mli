open Import

(** Fitch's small-parsimony algorithm and exhaustive maximum parsimony.

    The character-based counterpart to the distance model: the papers
    repeatedly cite the parsimony family of tree problems (Day 1983,
    Foulds & Graham 1982 — NP-complete), and a parsimony score makes a
    useful independent check on distance-built topologies.  Fitch's
    algorithm computes, in one post-order pass per site, the minimum
    number of substitutions a {e fixed} topology requires. *)

val score : Dna.t array -> Utree.t -> int
(** [score seqs tree] — minimum substitutions over all sites; the tree's
    leaves index [seqs], which must be non-empty and equal-length
    (aligned).  @raise Invalid_argument otherwise. *)

val best_tree : Dna.t array -> Utree.t * int
(** Exhaustive maximum parsimony over all [(2n-3)!!] topologies —
    guarded to [n <= 9].  Returns a most-parsimonious tree (heights are
    uniform placeholders) and its score.
    @raise Invalid_argument beyond the guard. *)

val consistency_with_distance_tree :
  Dna.t array -> Utree.t -> float
(** Ratio of the given tree's parsimony score to the exhaustive optimum
    ([1.0] = the distance tree is also maximally parsimonious).  Same
    [n <= 9] guard as {!best_tree}. *)
