lib/parsimony/fitch.ml: Array Bnb Dist_matrix Dna Fun Import List Utree
