lib/parsimony/import.ml: Distmat Seqsim Ultra
