lib/parsimony/fitch.mli: Dna Import Utree
