(* Tests for the align library: gapped sequences, pairwise Gotoh
   alignment, profiles, and progressive MSA. *)

module Dna = Seqsim.Dna
module Gapped = Align.Gapped
module Scoring = Align.Scoring
module Pairwise = Align.Pairwise
module Msa = Align.Msa
module Utree = Ultra.Utree

let rng seed = Random.State.make [| seed |]
let seq = Dna.of_string
let check_float = Alcotest.(check (float 1e-9))

(* --- Gapped --- *)

let test_gapped_string_roundtrip () =
  let g = Gapped.of_string "AC-GT-" in
  Alcotest.(check string) "roundtrip" "AC-GT-" (Gapped.to_string g);
  Alcotest.(check int) "gaps" 2 (Gapped.n_gaps g);
  Alcotest.(check string) "ungapped" "ACGT" (Dna.to_string (Gapped.to_dna g))

let test_gapped_identity () =
  let a = Gapped.of_string "AC-GT" and b = Gapped.of_string "AT-GA" in
  (* Compared columns: A/A, C/T, G/G, T/A -> 2 of 4 match. *)
  check_float "identity" 0.5 (Gapped.identity a b);
  check_float "p distance" 0.5 (Gapped.p_distance a b)

let test_gapped_skips_gap_columns () =
  let a = Gapped.of_string "A-C" and b = Gapped.of_string "AG-" in
  (* Only column 0 is gap-free. *)
  check_float "identity" 1. (Gapped.identity a b)

(* --- Scoring --- *)

let test_transitions () =
  Alcotest.(check bool) "A-G" true (Scoring.is_transition Dna.A Dna.G);
  Alcotest.(check bool) "C-T" true (Scoring.is_transition Dna.C Dna.T);
  Alcotest.(check bool) "A-C" false (Scoring.is_transition Dna.A Dna.C);
  Alcotest.(check bool) "A-A" false (Scoring.is_transition Dna.A Dna.A)

(* --- Pairwise --- *)

let test_align_identical () =
  let r = Pairwise.align (seq "ACGTACGT") (seq "ACGTACGT") in
  Alcotest.(check string) "no gaps a" "ACGTACGT" (Gapped.to_string r.Pairwise.a);
  Alcotest.(check string) "no gaps b" "ACGTACGT" (Gapped.to_string r.Pairwise.b);
  check_float "score" 16. r.Pairwise.score

let test_align_single_insertion () =
  let r = Pairwise.align (seq "ACGT") (seq "ACGGT") in
  Alcotest.(check int) "width 5" 5 (Gapped.length r.Pairwise.a);
  Alcotest.(check int) "one gap in a" 1 (Gapped.n_gaps r.Pairwise.a);
  Alcotest.(check int) "no gap in b" 0 (Gapped.n_gaps r.Pairwise.b)

let test_align_recovers_inputs () =
  for s = 0 to 9 do
    let a = Dna.random ~rng:(rng s) 40 in
    let b = Dna.random ~rng:(rng (100 + s)) 35 in
    let r = Pairwise.align a b in
    Alcotest.(check string) "a recovered" (Dna.to_string a)
      (Dna.to_string (Gapped.to_dna r.Pairwise.a));
    Alcotest.(check string) "b recovered" (Dna.to_string b)
      (Dna.to_string (Gapped.to_dna r.Pairwise.b));
    Alcotest.(check int) "same width" (Gapped.length r.Pairwise.a)
      (Gapped.length r.Pairwise.b)
  done

let test_score_matches_align () =
  for s = 0 to 9 do
    let a = Dna.random ~rng:(rng s) 30 in
    let b = Dna.random ~rng:(rng (200 + s)) 25 in
    check_float "same score" (Pairwise.align a b).Pairwise.score
      (Pairwise.score a b)
  done

let test_empty_sequences () =
  let r = Pairwise.align (seq "") (seq "ACG") in
  Alcotest.(check int) "gaps" 3 (Gapped.n_gaps r.Pairwise.a);
  check_float "zero vs empty" 0. (Pairwise.score (seq "") (seq ""))

let test_edit_distance_agrees () =
  List.iter
    (fun (a, b) ->
      Alcotest.(check int)
        (Printf.sprintf "%s/%s" a b)
        (Seqsim.Distance.edit_distance (seq a) (seq b))
        (Pairwise.edit_distance (seq a) (seq b)))
    [
      ("", "ACGT");
      ("ACGT", "ACGT");
      ("ACGT", "AGGT");
      ("AC", "CA");
      ("GCATGCT", "GATTACA");
      ("AAAA", "TTTT");
    ]

let test_affine_prefers_one_long_gap () =
  (* With affine costs, deleting a contiguous block beats scattering
     single-site gaps. *)
  let a = seq "ACGTACGTACGT" and b = seq "ACGTACGT" in
  let r = Pairwise.align a b in
  (* The four gaps in b's row must be contiguous. *)
  let s = Gapped.to_string r.Pairwise.b in
  let first = String.index s '-' in
  Alcotest.(check string) "contiguous" "----"
    (String.sub s first 4)

(* --- Msa --- *)

let test_msa_identical_sequences () =
  let seqs = Array.make 4 (seq "ACGTACGTAC") in
  let m = Msa.align seqs in
  Alcotest.(check int) "width" 10 (Msa.width m);
  Array.iter
    (fun row -> Alcotest.(check int) "no gaps" 0 (Gapped.n_gaps row))
    m.Msa.rows

let test_msa_recovers_inputs () =
  let t = Seqsim.Clock_tree.coalescent ~rng:(rng 3) 6 in
  let seqs =
    Seqsim.Evolve.sequences_with_indels ~rng:(rng 4) ~mu:0.3
      ~indel_rate:0.05 ~sites:80 t
  in
  let m = Msa.align seqs in
  Array.iteri
    (fun i row ->
      Alcotest.(check string)
        (Printf.sprintf "row %d" i)
        (Dna.to_string seqs.(i))
        (Dna.to_string (Gapped.to_dna row)))
    m.Msa.rows;
  (* All rows share one width. *)
  Array.iter
    (fun row ->
      Alcotest.(check int) "width" (Msa.width m) (Gapped.length row))
    m.Msa.rows

let test_msa_no_all_gap_columns () =
  let t = Seqsim.Clock_tree.coalescent ~rng:(rng 5) 5 in
  let seqs =
    Seqsim.Evolve.sequences_with_indels ~rng:(rng 6) ~mu:0.4 ~indel_rate:0.1
      ~sites:60 t
  in
  let m = Msa.align seqs in
  for col = 0 to Msa.width m - 1 do
    let has_base =
      Array.exists (fun row -> row.(col) <> Gapped.Gap) m.Msa.rows
    in
    if not has_base then Alcotest.failf "all-gap column %d" col
  done

let test_msa_single_sequence () =
  let m = Msa.align [| seq "ACGT" |] in
  Alcotest.(check int) "width" 4 (Msa.width m)

let test_msa_rejects_empty () =
  (match Msa.align [||] with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ())

let test_guide_tree_leaves () =
  let seqs = Array.init 5 (fun i -> Dna.random ~rng:(rng i) 50) in
  Alcotest.(check (list int)) "leaves" [ 0; 1; 2; 3; 4 ]
    (Utree.leaves (Msa.guide_tree seqs))

let test_msa_distance_matrix_metric () =
  let t = Seqsim.Clock_tree.coalescent ~rng:(rng 7) 8 in
  let seqs =
    Seqsim.Evolve.sequences_with_indels ~rng:(rng 8) ~mu:0.2 ~indel_rate:0.03
      ~sites:200 t
  in
  let m = Msa.distance_matrix (Msa.align seqs) in
  Alcotest.(check bool) "metric" true (Distmat.Metric.is_metric m);
  Alcotest.(check int) "size" 8 (Distmat.Dist_matrix.size m)

let test_sequences_model_end_to_end () =
  (* The papers' full sequences model: unaligned sequences -> MSA ->
     distance matrix -> compact-set ultrametric tree, recovering the
     generating topology reasonably well. *)
  let truth = Seqsim.Clock_tree.coalescent ~rng:(rng 9) 10 in
  let seqs =
    Seqsim.Evolve.sequences_with_indels ~rng:(rng 10) ~mu:0.15
      ~indel_rate:0.02 ~sites:600 truth
  in
  let lengths = Array.map Array.length seqs in
  Alcotest.(check bool) "lengths differ" true
    (Array.exists (fun l -> l <> lengths.(0)) lengths);
  let matrix = Msa.distance_matrix (Msa.align seqs) in
  let r = Compactphy.Pipeline.with_compact_sets matrix in
  (match Ultra.Tree_check.full_check matrix r.Compactphy.Pipeline.tree with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid: %a" Ultra.Tree_check.pp_error e);
  let rf = Ultra.Rf_distance.normalized r.Compactphy.Pipeline.tree truth in
  if rf > 0.5 then Alcotest.failf "poor recovery: RF %.2f" rf

(* --- qcheck --- *)

let arb_pair_strings =
  QCheck.make
    ~print:(fun (a, b) -> Printf.sprintf "%s / %s" a b)
    QCheck.Gen.(
      pair
        (string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range 0 20))
        (string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range 0 20)))

let prop_edit_distance_equals_dp =
  QCheck.Test.make ~name:"Gotoh unit-edit = classic DP edit distance"
    ~count:100 arb_pair_strings (fun (a, b) ->
      Pairwise.edit_distance (seq a) (seq b)
      = Seqsim.Distance.edit_distance (seq a) (seq b))

let prop_alignment_recovers_inputs =
  QCheck.Test.make ~name:"alignment rows strip back to the inputs"
    ~count:100 arb_pair_strings (fun (a, b) ->
      let r = Pairwise.align (seq a) (seq b) in
      Dna.to_string (Gapped.to_dna r.Pairwise.a) = a
      && Dna.to_string (Gapped.to_dna r.Pairwise.b) = b)

let prop_score_symmetric =
  QCheck.Test.make ~name:"alignment score is symmetric" ~count:100
    arb_pair_strings (fun (a, b) ->
      Float.abs (Pairwise.score (seq a) (seq b) -. Pairwise.score (seq b) (seq a))
      < 1e-9)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "align"
    [
      ( "gapped",
        [
          Alcotest.test_case "string roundtrip" `Quick
            test_gapped_string_roundtrip;
          Alcotest.test_case "identity" `Quick test_gapped_identity;
          Alcotest.test_case "skips gap columns" `Quick
            test_gapped_skips_gap_columns;
        ] );
      ("scoring", [ Alcotest.test_case "transitions" `Quick test_transitions ]);
      ( "pairwise",
        [
          Alcotest.test_case "identical" `Quick test_align_identical;
          Alcotest.test_case "single insertion" `Quick
            test_align_single_insertion;
          Alcotest.test_case "recovers inputs" `Quick
            test_align_recovers_inputs;
          Alcotest.test_case "score matches align" `Quick
            test_score_matches_align;
          Alcotest.test_case "empty sequences" `Quick test_empty_sequences;
          Alcotest.test_case "edit distance agrees" `Quick
            test_edit_distance_agrees;
          Alcotest.test_case "affine gap block" `Quick
            test_affine_prefers_one_long_gap;
        ] );
      ( "msa",
        [
          Alcotest.test_case "identical sequences" `Quick
            test_msa_identical_sequences;
          Alcotest.test_case "recovers inputs" `Quick test_msa_recovers_inputs;
          Alcotest.test_case "no all-gap columns" `Quick
            test_msa_no_all_gap_columns;
          Alcotest.test_case "single sequence" `Quick test_msa_single_sequence;
          Alcotest.test_case "rejects empty" `Quick test_msa_rejects_empty;
          Alcotest.test_case "guide tree leaves" `Quick test_guide_tree_leaves;
          Alcotest.test_case "distance matrix metric" `Quick
            test_msa_distance_matrix_metric;
          Alcotest.test_case "sequences model end-to-end" `Quick
            test_sequences_model_end_to_end;
        ] );
      ( "properties",
        q
          [
            prop_edit_distance_equals_dp;
            prop_alignment_recovers_inputs;
            prop_score_symmetric;
          ] );
    ]
