(* Tests for the seqsim library: DNA, clock trees, JC evolution,
   distances and the mtDNA surrogate. *)

module Dist_matrix = Distmat.Dist_matrix
module Metric = Distmat.Metric
module Utree = Ultra.Utree
module Dna = Seqsim.Dna
module Clock_tree = Seqsim.Clock_tree
module Evolve = Seqsim.Evolve
module Distance = Seqsim.Distance
module Mtdna = Seqsim.Mtdna
module Bootstrap = Seqsim.Bootstrap
module Fasta = Seqsim.Fasta

let rng seed = Random.State.make [| seed |]
let check_float = Alcotest.(check (float 1e-9))

(* --- Dna --- *)

let test_dna_string_roundtrip () =
  let s = "ACGTACGT" in
  Alcotest.(check string) "roundtrip" s (Dna.to_string (Dna.of_string s));
  Alcotest.(check string) "lowercase" "ACGT" (Dna.to_string (Dna.of_string "acgt"))

let test_dna_rejects_bad () =
  (match Dna.of_string "ACGX" with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ())

let test_hamming () =
  let a = Dna.of_string "AAAA" and b = Dna.of_string "AATT" in
  Alcotest.(check int) "hamming" 2 (Dna.hamming a b);
  Alcotest.(check int) "self" 0 (Dna.hamming a a)

let test_hamming_length_mismatch () =
  (match Dna.hamming (Dna.of_string "AA") (Dna.of_string "AAA") with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ())

let test_random_composition () =
  let s = Dna.random ~rng:(rng 0) 4000 in
  (* Roughly uniform base usage. *)
  List.iter
    (fun b ->
      let count = Array.fold_left (fun acc x -> if x = b then acc + 1 else acc) 0 s in
      if count < 800 || count > 1200 then
        Alcotest.failf "base count %d out of uniform range" count)
    [ Dna.A; Dna.C; Dna.G; Dna.T ]

(* --- Clock_tree --- *)

let test_coalescent_shape () =
  let t = Clock_tree.coalescent ~rng:(rng 1) 10 in
  Alcotest.(check (list int)) "leaves" (List.init 10 Fun.id) (Utree.leaves t);
  Alcotest.(check bool) "monotone" true (Utree.is_monotone t)

let test_coalescent_matrix_ultrametric () =
  let t = Clock_tree.coalescent ~rng:(rng 2) 12 in
  Alcotest.(check bool) "ultrametric" true
    (Metric.is_ultrametric (Utree.to_matrix t))

let test_balanced () =
  let t = Clock_tree.balanced ~height:4. 8 in
  Alcotest.(check int) "leaves" 8 (Utree.n_leaves t);
  check_float "height" 4. (Utree.height t);
  (match Clock_tree.balanced 6 with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ())

(* --- Evolve --- *)

let test_substitution_probability () =
  check_float "t=0" 0. (Evolve.substitution_probability ~mu:1. ~t:0.);
  let p_inf = Evolve.substitution_probability ~mu:1. ~t:1e9 in
  Alcotest.(check (float 1e-6)) "saturation" 0.75 p_inf;
  let p1 = Evolve.substitution_probability ~mu:0.5 ~t:1. in
  Alcotest.(check bool) "monotone in t" true
    (p1 < Evolve.substitution_probability ~mu:0.5 ~t:2.)

let test_zero_rate_identical () =
  let t = Clock_tree.coalescent ~rng:(rng 3) 6 in
  let seqs = Evolve.sequences ~rng:(rng 4) ~mu:0. ~sites:100 t in
  Array.iter
    (fun s -> Alcotest.(check int) "identical" 0 (Dna.hamming seqs.(0) s))
    seqs

let test_divergence_tracks_tree_distance () =
  (* Deep splits must accumulate more substitutions than shallow ones. *)
  let t = Clock_tree.balanced ~height:1. 4 in
  (* leaves 0,1 split late; 0,2 split at the root. *)
  let total_shallow = ref 0 and total_deep = ref 0 in
  for seed = 0 to 19 do
    let seqs = Evolve.sequences ~rng:(rng seed) ~mu:0.3 ~sites:500 t in
    total_shallow := !total_shallow + Dna.hamming seqs.(0) seqs.(1);
    total_deep := !total_deep + Dna.hamming seqs.(0) seqs.(2)
  done;
  Alcotest.(check bool) "deep > shallow" true (!total_deep > !total_shallow)

let test_evolve_rejects () =
  let t = Clock_tree.coalescent ~rng:(rng 5) 4 in
  (match Evolve.sequences ~rng:(rng 6) ~mu:(-1.) ~sites:10 t with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ());
  match Evolve.sequences ~rng:(rng 6) ~mu:1. ~sites:0 t with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ()

(* --- Distance --- *)

let test_p_distance () =
  let a = Dna.of_string "AAAA" and b = Dna.of_string "AATT" in
  check_float "p" 0.5 (Distance.p_distance a b)

let test_jc_identity_zero () =
  let a = Dna.of_string "ACGT" in
  check_float "zero" 0. (Distance.jc_distance a a)

let test_jc_greater_than_p () =
  (* The JC correction always exceeds the raw p-distance (multiple
     hits). *)
  let a = Dna.of_string "AAAAAAAAAA" and b = Dna.of_string "AATTAAAAAA" in
  Alcotest.(check bool) "jc > p" true
    (Distance.jc_distance a b > Distance.p_distance a b)

let test_jc_saturation_cap () =
  let a = Dna.of_string "AAAA" and b = Dna.of_string "TTTT" in
  Alcotest.(check bool) "finite" true
    (Float.is_finite (Distance.jc_distance a b))

let test_edit_distance () =
  let d x y =
    Distance.edit_distance (Dna.of_string x) (Dna.of_string y)
  in
  Alcotest.(check int) "equal" 0 (d "ACGT" "ACGT");
  Alcotest.(check int) "substitution" 1 (d "ACGT" "AGGT");
  Alcotest.(check int) "insertion" 1 (d "ACGT" "ACGGT");
  Alcotest.(check int) "empty vs seq" 4 (d "" "ACGT");
  Alcotest.(check int) "swap" 2 (d "AC" "CA");
  Alcotest.(check int) "symmetric" (d "GCATGCT" "GATTACA") (d "GATTACA" "GCATGCT")

let test_matrix_is_metric () =
  let t = Clock_tree.coalescent ~rng:(rng 7) 8 in
  let seqs = Evolve.sequences ~rng:(rng 8) ~mu:0.2 ~sites:300 t in
  List.iter
    (fun kind ->
      let m = Distance.matrix ~kind seqs in
      Alcotest.(check bool) "metric" true (Metric.is_metric m);
      Alcotest.(check int) "size" 8 (Dist_matrix.size m))
    [ Distance.P_distance; Distance.Jc; Distance.Edit ]

(* --- Mtdna --- *)

let test_mtdna_dataset_valid () =
  let d = Mtdna.generate ~rng:(rng 9) 26 in
  Alcotest.(check int) "species" 26 (Dist_matrix.size d.Mtdna.matrix);
  Alcotest.(check int) "sequences" 26 (Array.length d.Mtdna.sequences);
  Alcotest.(check bool) "metric" true (Metric.is_metric d.Mtdna.matrix);
  Alcotest.(check int) "true tree leaves" 26
    (Utree.n_leaves d.Mtdna.true_tree)

let test_mtdna_near_ultrametric () =
  (* Clock evolution must leave only small three-point violations
     relative to the matrix scale. *)
  let d = Mtdna.generate ~rng:(rng 10) ~sites:2000 20 in
  let worst =
    match Metric.ultrametric_violations ~limit:1 d.Mtdna.matrix with
    | [] -> 0.
    | v :: _ -> v.Metric.slack
  in
  let scale = Dist_matrix.max_entry d.Mtdna.matrix in
  Alcotest.(check bool) "small violations" true (worst < 0.35 *. scale)

let test_mtdna_has_compact_sets () =
  (* The whole point of the surrogate: population structure gives the
     decomposition something to find on most datasets. *)
  let sets =
    List.concat_map
      (fun d -> Cgraph.Compact_sets.find d.Mtdna.matrix)
      (Mtdna.batch ~seed:77 ~n_datasets:5 20)
  in
  Alcotest.(check bool) "some compact sets" true (List.length sets > 0)

let test_mtdna_k2p_model () =
  let d = Mtdna.generate ~rng:(rng 40) ~model:(Mtdna.K2p 10.) 12 in
  Alcotest.(check bool) "metric" true (Metric.is_metric d.Mtdna.matrix);
  Alcotest.(check int) "species" 12 (Dist_matrix.size d.Mtdna.matrix)

let test_mtdna_batch_independent () =
  match Mtdna.batch ~seed:3 ~n_datasets:2 8 with
  | [ a; b ] ->
      Alcotest.(check bool) "different matrices" false
        (Dist_matrix.equal a.Mtdna.matrix b.Mtdna.matrix)
  | _ -> Alcotest.fail "wrong batch size"

(* --- K2P --- *)

let test_k2p_identity () =
  let a = Dna.of_string "ACGTACGT" in
  check_float "zero" 0. (Distance.k2p_distance a a)

let test_k2p_reduces_to_jc_at_balanced_kappa () =
  (* With kappa = 1 (alpha = beta) the Kimura model is Jukes-Cantor:
     its P and Q probabilities satisfy Q = 2P and their total matches
     the JC substitution probability. *)
  let p, q = Evolve.kimura_probabilities ~mu:0.4 ~kappa:1.0 ~t:1.2 in
  Alcotest.(check (float 1e-9)) "Q = 2P" (2. *. p) q;
  (* And P + Q matches the JC substitution probability. *)
  Alcotest.(check (float 1e-9))
    "total matches JC"
    (Evolve.substitution_probability ~mu:0.4 ~t:1.2)
    (p +. q)

let test_k2p_saturation_capped () =
  let a = Dna.of_string "ACAC" and b = Dna.of_string "GTGT" in
  Alcotest.(check bool) "finite" true
    (Float.is_finite (Distance.k2p_distance a b))

let test_k2p_evolution_transition_biased () =
  let t = Clock_tree.balanced ~height:1. 2 in
  let seqs = Evolve.sequences_k2p ~rng:(rng 31) ~mu:0.2 ~kappa:10. ~sites:4000 t in
  let transitions = ref 0 and transversions = ref 0 in
  Array.iteri
    (fun i x ->
      let y = seqs.(1).(i) in
      if x <> y then begin
        let purine = function Dna.A | Dna.G -> true | Dna.C | Dna.T -> false in
        if purine x = purine y then incr transitions else incr transversions
      end)
    seqs.(0);
  Alcotest.(check bool)
    (Printf.sprintf "ts=%d tv=%d" !transitions !transversions)
    true
    (!transitions > 2 * !transversions)

let test_k2p_estimator_recovers_distance () =
  (* Estimated K2P distance approximates 2 * mu * height on long
     sequences. *)
  let t = Clock_tree.balanced ~height:1. 2 in
  let seqs =
    Evolve.sequences_k2p ~rng:(rng 32) ~mu:0.15 ~kappa:8. ~sites:20_000 t
  in
  let d = Distance.k2p_distance seqs.(0) seqs.(1) in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.3f vs true 0.3" d)
    true
    (Float.abs (d -. 0.3) < 0.05)

(* --- Fasta --- *)

let test_fasta_roundtrip () =
  let entries =
    [
      { Fasta.name = "human"; seq = Dna.of_string "ACGTACGTAC" };
      { Fasta.name = "chimp"; seq = Dna.of_string "ACGTACGTAA" };
    ]
  in
  let parsed = Fasta.of_string (Fasta.to_string entries) in
  Alcotest.(check int) "count" 2 (List.length parsed);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "name" a.Fasta.name b.Fasta.name;
      Alcotest.(check string) "seq" (Dna.to_string a.Fasta.seq)
        (Dna.to_string b.Fasta.seq))
    entries parsed

let test_fasta_wrapping_and_comments () =
  let text = ">a first sequence
ACGT
ACGT

>b
TTTT
" in
  match Fasta.of_string text with
  | [ a; b ] ->
      Alcotest.(check string) "first word only" "a" a.Fasta.name;
      Alcotest.(check string) "lines joined" "ACGTACGT"
        (Dna.to_string a.Fasta.seq);
      Alcotest.(check string) "b" "TTTT" (Dna.to_string b.Fasta.seq)
  | _ -> Alcotest.fail "wrong entry count"

let test_fasta_rejects () =
  List.iter
    (fun bad ->
      match Fasta.of_string bad with
      | _ -> Alcotest.failf "accepted %S" bad
      | exception Failure _ -> ())
    [ ""; "ACGT
"; ">a
"; ">a
ACGX
"; ">a
ACGT
>a
ACGT
"; ">
AC
" ]

(* --- Bootstrap --- *)

let test_resample_shape () =
  let seqs = Array.init 4 (fun i -> Dna.random ~rng:(rng i) 50) in
  let r = Bootstrap.resample ~rng:(rng 9) seqs in
  Alcotest.(check int) "species" 4 (Array.length r);
  Array.iter (fun s -> Alcotest.(check int) "sites" 50 (Array.length s)) r;
  (* Columns stay aligned: a column of the replicate equals some column
     of the original across all species. *)
  let original_cols =
    List.init 50 (fun c -> Array.map (fun s -> s.(c)) seqs)
  in
  for c = 0 to 49 do
    let col = Array.map (fun s -> s.(c)) r in
    if not (List.mem col original_cols) then
      Alcotest.failf "column %d is not an original column" c
  done

let test_resample_rejects () =
  (match Bootstrap.resample ~rng:(rng 0) [||] with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ());
  match
    Bootstrap.resample ~rng:(rng 0)
      [| Dna.of_string "ACG"; Dna.of_string "AC" |]
  with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ()

let test_support_on_clean_data () =
  (* Strong signal: a deep, clean split must get high support. *)
  let truth = Clock_tree.balanced ~height:1. 8 in
  let seqs = Evolve.sequences ~rng:(rng 11) ~mu:0.3 ~sites:800 truth in
  let construct m = Clustering.Linkage.upgmm m in
  let reference = construct (Distance.matrix seqs) in
  let support =
    Bootstrap.support ~rng:(rng 12) ~replicates:30 ~construct ~reference seqs
  in
  Alcotest.(check bool) "has clades" true (support <> []);
  List.iter
    (fun (_, s) ->
      if s < 0. || s > 1. then Alcotest.failf "support %g out of range" s)
    support;
  (* The best-supported clade on clean data should be near-certain. *)
  let best = List.fold_left (fun acc (_, s) -> Float.max acc s) 0. support in
  Alcotest.(check bool) "strong signal" true (best >= 0.9)

let test_support_deterministic () =
  let truth = Clock_tree.coalescent ~rng:(rng 13) 6 in
  let seqs = Evolve.sequences ~rng:(rng 14) ~mu:0.2 ~sites:200 truth in
  let construct m = Clustering.Linkage.upgmm m in
  let reference = construct (Distance.matrix seqs) in
  let run () =
    Bootstrap.support ~rng:(rng 15) ~replicates:10 ~construct ~reference seqs
  in
  Alcotest.(check bool) "same seed same support" true (run () = run ())

(* --- qcheck --- *)

let prop_matrix_metric =
  QCheck.Test.make ~name:"sequence matrices are metrics" ~count:20
    (QCheck.make
       ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
       QCheck.Gen.(pair (int_bound 10_000) (int_range 2 15)))
    (fun (seed, n) ->
      let d = Mtdna.generate ~rng:(rng seed) ~sites:200 n in
      Metric.is_metric d.Mtdna.matrix)

let prop_edit_distance_triangle =
  QCheck.Test.make ~name:"edit distance obeys the triangle inequality"
    ~count:60
    (QCheck.make
       ~print:(fun (a, b, c) -> Printf.sprintf "%s %s %s" a b c)
       QCheck.Gen.(
         triple
           (string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range 0 12))
           (string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range 0 12))
           (string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range 0 12))))
    (fun (a, b, c) ->
      let d x y = Distance.edit_distance (Dna.of_string x) (Dna.of_string y) in
      d a c <= d a b + d b c)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "seqsim"
    [
      ( "dna",
        [
          Alcotest.test_case "string roundtrip" `Quick test_dna_string_roundtrip;
          Alcotest.test_case "rejects bad" `Quick test_dna_rejects_bad;
          Alcotest.test_case "hamming" `Quick test_hamming;
          Alcotest.test_case "hamming mismatch" `Quick
            test_hamming_length_mismatch;
          Alcotest.test_case "random composition" `Quick
            test_random_composition;
        ] );
      ( "clock_tree",
        [
          Alcotest.test_case "coalescent shape" `Quick test_coalescent_shape;
          Alcotest.test_case "coalescent ultrametric" `Quick
            test_coalescent_matrix_ultrametric;
          Alcotest.test_case "balanced" `Quick test_balanced;
        ] );
      ( "evolve",
        [
          Alcotest.test_case "substitution probability" `Quick
            test_substitution_probability;
          Alcotest.test_case "zero rate" `Quick test_zero_rate_identical;
          Alcotest.test_case "divergence tracks distance" `Quick
            test_divergence_tracks_tree_distance;
          Alcotest.test_case "rejects bad args" `Quick test_evolve_rejects;
        ] );
      ( "distance",
        [
          Alcotest.test_case "p distance" `Quick test_p_distance;
          Alcotest.test_case "jc identity" `Quick test_jc_identity_zero;
          Alcotest.test_case "jc > p" `Quick test_jc_greater_than_p;
          Alcotest.test_case "jc saturation" `Quick test_jc_saturation_cap;
          Alcotest.test_case "edit distance" `Quick test_edit_distance;
          Alcotest.test_case "matrices are metric" `Quick test_matrix_is_metric;
        ] );
      ( "mtdna",
        [
          Alcotest.test_case "dataset valid" `Quick test_mtdna_dataset_valid;
          Alcotest.test_case "near ultrametric" `Quick
            test_mtdna_near_ultrametric;
          Alcotest.test_case "has compact sets" `Quick
            test_mtdna_has_compact_sets;
          Alcotest.test_case "k2p model" `Quick test_mtdna_k2p_model;
          Alcotest.test_case "batch independent" `Quick
            test_mtdna_batch_independent;
        ] );
      ( "k2p",
        [
          Alcotest.test_case "identity" `Quick test_k2p_identity;
          Alcotest.test_case "kappa 1 = JC" `Quick
            test_k2p_reduces_to_jc_at_balanced_kappa;
          Alcotest.test_case "saturation capped" `Quick
            test_k2p_saturation_capped;
          Alcotest.test_case "transition biased" `Quick
            test_k2p_evolution_transition_biased;
          Alcotest.test_case "estimator recovers" `Quick
            test_k2p_estimator_recovers_distance;
        ] );
      ( "fasta",
        [
          Alcotest.test_case "roundtrip" `Quick test_fasta_roundtrip;
          Alcotest.test_case "wrapping and headers" `Quick
            test_fasta_wrapping_and_comments;
          Alcotest.test_case "rejects" `Quick test_fasta_rejects;
        ] );
      ( "bootstrap",
        [
          Alcotest.test_case "resample shape" `Quick test_resample_shape;
          Alcotest.test_case "resample rejects" `Quick test_resample_rejects;
          Alcotest.test_case "support on clean data" `Quick
            test_support_on_clean_data;
          Alcotest.test_case "deterministic" `Quick test_support_deterministic;
        ] );
      ("properties", q [ prop_matrix_metric; prop_edit_distance_triangle ]);
    ]
