(* Substring search helper for tests (no external deps). *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0
