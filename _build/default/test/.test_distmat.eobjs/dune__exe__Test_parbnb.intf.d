test/test_parbnb.mli:
