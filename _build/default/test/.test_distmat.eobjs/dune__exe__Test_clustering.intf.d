test/test_clustering.mli:
