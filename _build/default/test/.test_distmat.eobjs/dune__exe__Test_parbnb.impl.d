test/test_parbnb.ml: Alcotest Bnb Distmat Domain Float List Parbnb Printf QCheck QCheck_alcotest Random Ultra
