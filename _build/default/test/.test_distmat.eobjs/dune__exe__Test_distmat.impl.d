test/test_distmat.ml: Alcotest Array Distmat Float List Printf QCheck QCheck_alcotest Random String
