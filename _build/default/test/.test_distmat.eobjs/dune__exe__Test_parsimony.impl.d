test/test_parsimony.ml: Alcotest Array Compactphy List Parsimony Printf QCheck QCheck_alcotest Random Seqsim Ultra
