test/test_seqsim.ml: Alcotest Array Cgraph Clustering Distmat Float Fun List Printf QCheck QCheck_alcotest Random Seqsim Ultra
