test/test_graph.ml: Alcotest Cgraph Distmat Float Fun List Printf QCheck QCheck_alcotest Random
