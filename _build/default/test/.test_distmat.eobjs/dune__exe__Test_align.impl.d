test/test_align.ml: Alcotest Align Array Compactphy Distmat Float List Printf QCheck QCheck_alcotest Random Seqsim String Ultra
