test/test_bnb.ml: Alcotest Array Bnb Clustering Distmat Float List Printf QCheck QCheck_alcotest Random Ultra
