test/test_ultra.mli:
