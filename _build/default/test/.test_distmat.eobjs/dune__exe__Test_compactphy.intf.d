test/test_compactphy.mli:
