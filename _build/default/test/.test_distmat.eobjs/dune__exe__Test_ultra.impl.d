test/test_ultra.ml: Alcotest Array Astring_contains Distmat Float List Option Printf QCheck QCheck_alcotest Random String Ultra
