test/test_parsimony.mli:
