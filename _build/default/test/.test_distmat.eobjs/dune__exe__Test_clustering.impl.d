test/test_clustering.ml: Alcotest Clustering Distmat Float Fun List Printf QCheck QCheck_alcotest Random Ultra
