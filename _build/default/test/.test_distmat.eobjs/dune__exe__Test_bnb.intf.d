test/test_bnb.mli:
