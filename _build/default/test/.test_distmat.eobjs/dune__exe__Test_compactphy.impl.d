test/test_compactphy.ml: Alcotest Bnb Cgraph Compactphy Distmat Fun List Printf QCheck QCheck_alcotest Random Seqsim Ultra
