test/test_redistrib.ml: Alcotest Array List Printf QCheck QCheck_alcotest Random Redistrib
