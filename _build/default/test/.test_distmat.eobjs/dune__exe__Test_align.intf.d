test/test_align.mli:
