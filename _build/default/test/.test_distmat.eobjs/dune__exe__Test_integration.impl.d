test/test_integration.ml: Alcotest Array Bnb Cgraph Clustering Clustersim Compactphy Distmat Filename Fun List Parbnb Printf Random Seqsim Sys Ultra
