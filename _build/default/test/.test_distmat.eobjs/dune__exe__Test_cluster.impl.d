test/test_cluster.ml: Alcotest Array Bnb Clustersim Distmat Float Fun List Printf QCheck QCheck_alcotest Random Seqsim Ultra
