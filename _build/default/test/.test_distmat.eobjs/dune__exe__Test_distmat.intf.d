test/test_distmat.mli:
