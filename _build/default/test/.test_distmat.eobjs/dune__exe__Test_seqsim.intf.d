test/test_seqsim.mli:
