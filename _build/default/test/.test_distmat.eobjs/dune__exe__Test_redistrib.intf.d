test/test_redistrib.mli:
