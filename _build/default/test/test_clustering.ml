(* Tests for the clustering library: linkage dendrograms and NJ. *)

module Dist_matrix = Distmat.Dist_matrix
module Metric = Distmat.Metric
module Gen = Distmat.Gen
module Utree = Ultra.Utree
module Linkage = Clustering.Linkage
module Nj = Clustering.Nj

let rng seed = Random.State.make [| seed |]
let check_float = Alcotest.(check (float 1e-9))

let triple =
  Dist_matrix.of_rows
    [| [| 0.; 2.; 8. |]; [| 2.; 0.; 6. |]; [| 8.; 6.; 0. |] |]

let test_upgmm_triple () =
  (* Complete linkage: merge (0,1) at 1; then cluster-{2} distance is
     max(8,6) = 8, root at 4. *)
  let t = Linkage.upgmm triple in
  check_float "root height" 4. (Utree.height t);
  check_float "weight" 9. (Utree.weight t)

let test_upgma_triple () =
  (* Average linkage: root at (8+6)/2/2 = 3.5. *)
  let t = Linkage.upgma triple in
  check_float "root height" 3.5 (Utree.height t)

let test_single_triple () =
  let t = Linkage.cluster Linkage.Single triple in
  check_float "root height" 3. (Utree.height t)

let test_wpgma_equals_upgma_on_triple () =
  (* With singleton merges only, weighted and unweighted coincide. *)
  let a = Linkage.cluster Linkage.Weighted triple in
  let b = Linkage.upgma triple in
  Alcotest.(check bool) "equal" true (Utree.equal a b)

let test_upgmm_feasible () =
  for seed = 0 to 19 do
    let m = Gen.uniform_metric ~rng:(rng seed) 15 in
    let t = Linkage.upgmm m in
    Alcotest.(check bool) "feasible" true (Utree.is_feasible m t);
    Alcotest.(check bool) "monotone" true (Utree.is_monotone t);
    Alcotest.(check (list int)) "leaves" (List.init 15 Fun.id) (Utree.leaves t)
  done

let test_single_linkage_is_subdominant () =
  (* Single linkage's dendrogram realises the subdominant ultrametric. *)
  let m = Gen.uniform_metric ~rng:(rng 3) 10 in
  let t = Linkage.cluster Linkage.Single m in
  let sub = Metric.subdominant_ultrametric m in
  Alcotest.(check bool) "matches closure" true
    (Dist_matrix.equal ~eps:1e-9 (Utree.to_matrix t) sub)

let test_cluster_on_exact_ultrametric () =
  (* On an exact ultrametric all linkages recover the true matrix. *)
  let m = Gen.ultrametric ~rng:(rng 5) 9 in
  List.iter
    (fun l ->
      let t = Linkage.cluster l m in
      Alcotest.(check bool) "recovers matrix" true
        (Dist_matrix.equal ~eps:1e-6 (Utree.to_matrix t) m))
    [ Linkage.Single; Linkage.Complete; Linkage.Average; Linkage.Weighted ]

let test_cluster_two_species () =
  let m = Dist_matrix.init 2 (fun _ _ -> 6.) in
  let t = Linkage.upgmm m in
  check_float "height" 3. (Utree.height t);
  check_float "weight" 6. (Utree.weight t)

let test_cluster_rejects_singleton () =
  let m = Dist_matrix.create 1 in
  (match Linkage.upgmm m with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ())

let test_nj_topology_leaves () =
  let m = Gen.uniform_metric ~rng:(rng 7) 12 in
  let t = Nj.rooted_topology m in
  Alcotest.(check (list int)) "leaves" (List.init 12 Fun.id) (Utree.leaves t)

let test_nj_ultrametric_feasible () =
  for seed = 0 to 9 do
    let m = Gen.uniform_metric ~rng:(rng seed) 10 in
    let t = Nj.ultrametric_of m in
    Alcotest.(check bool) "feasible" true (Utree.is_feasible m t)
  done

let test_nj_recovers_clear_split () =
  (* Two tight clusters far apart: NJ's (arbitrarily rooted) tree must
     contain at least one of the clusters as a clade. *)
  let m =
    Gen.clustered ~rng:(rng 2) ~n_clusters:2 ~spread:1. ~separation:300. 8
  in
  let clades = Ultra.Rf_distance.clusters (Nj.rooted_topology m) in
  let expected0 = List.filter (fun i -> i mod 2 = 0) (List.init 8 Fun.id) in
  let expected1 = List.filter (fun i -> i mod 2 = 1) (List.init 8 Fun.id) in
  Alcotest.(check bool) "cluster is a clade" true
    (List.mem expected0 clades || List.mem expected1 clades)

(* --- qcheck --- *)

let arb_seed_n lo hi =
  QCheck.make
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck.Gen.(pair (int_bound 10_000) (int_range lo hi))

let prop_upgmm_feasible =
  QCheck.Test.make ~name:"UPGMM tree is always feasible" ~count:80
    (arb_seed_n 2 20) (fun (seed, n) ->
      let m = Gen.near_ultrametric ~rng:(rng seed) ~noise:0.3 n in
      Utree.is_feasible m (Linkage.upgmm m))

let prop_upgmm_root_is_half_max =
  QCheck.Test.make ~name:"UPGMM root height is half the max entry" ~count:80
    (arb_seed_n 2 20) (fun (seed, n) ->
      (* Feasibility forces root >= max/2; complete linkage never merges
         above the maximum entry, so equality holds. *)
      let m = Gen.uniform_metric ~rng:(rng seed) n in
      Float.abs
        ((2. *. Utree.height (Linkage.upgmm m)) -. Dist_matrix.max_entry m)
      < 1e-9)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "clustering"
    [
      ( "linkage",
        [
          Alcotest.test_case "upgmm triple" `Quick test_upgmm_triple;
          Alcotest.test_case "upgma triple" `Quick test_upgma_triple;
          Alcotest.test_case "single triple" `Quick test_single_triple;
          Alcotest.test_case "wpgma = upgma on triple" `Quick
            test_wpgma_equals_upgma_on_triple;
          Alcotest.test_case "upgmm feasible" `Quick test_upgmm_feasible;
          Alcotest.test_case "single = subdominant" `Quick
            test_single_linkage_is_subdominant;
          Alcotest.test_case "exact ultrametric recovered" `Quick
            test_cluster_on_exact_ultrametric;
          Alcotest.test_case "two species" `Quick test_cluster_two_species;
          Alcotest.test_case "rejects singleton" `Quick
            test_cluster_rejects_singleton;
        ] );
      ( "nj",
        [
          Alcotest.test_case "topology leaves" `Quick test_nj_topology_leaves;
          Alcotest.test_case "ultrametric feasible" `Quick
            test_nj_ultrametric_feasible;
          Alcotest.test_case "recovers clear split" `Quick
            test_nj_recovers_clear_split;
        ] );
      ( "properties",
        q [ prop_upgmm_feasible; prop_upgmm_root_is_half_max ] );
    ]
