(* Tests for the bnb library: branching, lower bounds, the 3-3
   relationship, and the sequential solver checked against exhaustive
   enumeration of all (2n-3)!! topologies. *)

module Dist_matrix = Distmat.Dist_matrix
module Gen = Distmat.Gen
module Utree = Ultra.Utree
module Linkage = Clustering.Linkage
module Bb_tree = Bnb.Bb_tree
module Relation33 = Bnb.Relation33
module Solver = Bnb.Solver
module Stats = Bnb.Stats
module Enumerate = Bnb.Enumerate
module Local_search = Bnb.Local_search

let rng seed = Random.State.make [| seed |]
let check_float = Alcotest.(check (float 1e-6))

(* Exhaustive minimum: insert species 2 .. n-1 in every possible position
   and keep the cheapest complete minimal realization. *)
let exhaustive_minimum dm =
  let n = Dist_matrix.size dm in
  let h01 = Dist_matrix.get dm 0 1 /. 2. in
  let start = Utree.node h01 (Utree.leaf 0) (Utree.leaf 1) in
  let best = ref infinity and best_tree = ref start in
  let rec go t k =
    if k = n then begin
      let w = Utree.weight t in
      if w < !best then begin
        best := w;
        best_tree := t
      end
    end
    else List.iter (fun t' -> go t' (k + 1)) (Bb_tree.insertions dm t k)
  in
  go start 2;
  (!best, !best_tree)

let double_factorial n =
  let rec go acc k = if k <= 1 then acc else go (acc * k) (k - 2) in
  go 1 n

(* --- Bb_tree --- *)

let test_insertion_count () =
  let m = Gen.uniform_metric ~rng:(rng 0) 8 in
  let t = Utree.node (Dist_matrix.get m 0 1 /. 2.) (Utree.leaf 0) (Utree.leaf 1) in
  (* 2 leaves -> 3 positions; then each 3-leaf tree -> 5 positions... *)
  let c2 = Bb_tree.insertions m t 2 in
  Alcotest.(check int) "3 positions" 3 (List.length c2);
  let c3 = Bb_tree.insertions m (List.hd c2) 3 in
  Alcotest.(check int) "5 positions" 5 (List.length c3)

let test_full_bbt_leaf_count () =
  (* The number of complete topologies must be (2n-3)!!. *)
  let m = Gen.uniform_metric ~rng:(rng 1) 6 in
  let count = ref 0 in
  let t0 = Utree.node (Dist_matrix.get m 0 1 /. 2.) (Utree.leaf 0) (Utree.leaf 1) in
  let rec go t k =
    if k = 6 then incr count
    else List.iter (fun t' -> go t' (k + 1)) (Bb_tree.insertions m t k)
  in
  go t0 2;
  Alcotest.(check int) "(2*6-3)!!" (double_factorial 9) !count

let test_insertions_are_minimal_realizations () =
  let m = Gen.uniform_metric ~rng:(rng 2) 7 in
  let t0 = Utree.node (Dist_matrix.get m 0 1 /. 2.) (Utree.leaf 0) (Utree.leaf 1) in
  let rec go t k =
    if k < 7 then
      List.iter
        (fun t' ->
          let sub = Dist_matrix.sub m (Array.of_list (Utree.leaves t')) in
          (* Leaves of t' are 0..k, so sub = principal submatrix. *)
          Alcotest.(check bool)
            "feasible" true
            (Utree.is_feasible sub t');
          Alcotest.(check bool) "monotone" true (Utree.is_monotone t');
          check_float "is minimal realization" (Utree.weight t')
            (Utree.weight (Utree.minimal_realization sub t'));
          go t' (k + 1))
        (Bb_tree.insertions m t k)
  in
  go t0 2

let test_suffix_min_bounds () =
  let m =
    Dist_matrix.of_rows
      [| [| 0.; 2.; 8. |]; [| 2.; 0.; 6. |]; [| 8.; 6.; 0. |] |]
  in
  let b = Bb_tree.suffix_min_bounds m in
  (* dmin = 2, 2, 6 -> suffix sums / 2 = 5, 4, 3, 0. *)
  check_float "b0" 5. b.(0);
  check_float "b1" 4. b.(1);
  check_float "b2" 3. b.(2);
  check_float "b3" 0. b.(3)

let test_branch_sorted_by_lb () =
  let m = Gen.uniform_metric ~rng:(rng 3) 9 in
  let lb_extra = Bb_tree.suffix_min_bounds m in
  let node = Bb_tree.root m in
  let children = Bb_tree.branch m ~lb_extra node in
  let lbs = List.map (fun (c : Bb_tree.node) -> c.lb) children in
  Alcotest.(check bool) "ascending" true (List.sort compare lbs = lbs)

(* --- Relation33 --- *)

let test_matrix_pair () =
  let m =
    Dist_matrix.of_rows
      [| [| 0.; 1.; 5. |]; [| 1.; 0.; 5. |]; [| 5.; 5.; 0. |] |]
  in
  Alcotest.(check (option (pair int int))) "strict pair" (Some (0, 1))
    (Relation33.matrix_pair m 0 1 2);
  let tie = Dist_matrix.init 3 (fun _ _ -> 4.) in
  Alcotest.(check (option (pair int int))) "tie" None
    (Relation33.matrix_pair tie 0 1 2)

let test_tree_pair () =
  let t =
    Utree.node 3. (Utree.node 1. (Utree.leaf 0) (Utree.leaf 1)) (Utree.leaf 2)
  in
  Alcotest.(check (pair int int)) "grouped" (0, 1) (Relation33.tree_pair t 0 1 2);
  Alcotest.(check (pair int int)) "any order" (0, 1)
    (Relation33.tree_pair t 2 1 0)

let test_contradiction_count_zero_on_own_matrix () =
  (* A tree can never contradict the ultrametric matrix it induces. *)
  let m = Gen.ultrametric ~rng:(rng 4) 10 in
  let t = Linkage.upgmm m in
  Alcotest.(check int) "no contradictions" 0
    (Relation33.count_contradictions m t)

let test_contradiction_detected () =
  let m =
    Dist_matrix.of_rows
      [| [| 0.; 1.; 5. |]; [| 1.; 0.; 5. |]; [| 5.; 5.; 0. |] |]
  in
  (* Tree grouping (1,2) contradicts the matrix's (0,1). *)
  let bad =
    Utree.node 3. (Utree.node 2.5 (Utree.leaf 1) (Utree.leaf 2)) (Utree.leaf 0)
  in
  Alcotest.(check bool) "contradicts" true (Relation33.contradicts m bad 0 1 2);
  Alcotest.(check int) "count" 1 (Relation33.count_contradictions m bad)

let test_compatible_insertion () =
  let m =
    Dist_matrix.of_rows
      [| [| 0.; 1.; 5. |]; [| 1.; 0.; 5. |]; [| 5.; 5.; 0. |] |]
  in
  let good =
    Utree.node 3. (Utree.node 0.5 (Utree.leaf 0) (Utree.leaf 1)) (Utree.leaf 2)
  in
  let bad =
    Utree.node 3. (Utree.node 2.5 (Utree.leaf 1) (Utree.leaf 2)) (Utree.leaf 0)
  in
  Alcotest.(check bool) "good" true (Relation33.compatible_insertion m good 2);
  Alcotest.(check bool) "bad" false (Relation33.compatible_insertion m bad 2)

(* --- Solver vs exhaustive enumeration --- *)

let test_optimal_small_random () =
  for seed = 0 to 9 do
    let m = Gen.uniform_metric ~rng:(rng seed) 7 in
    let exact, _ = exhaustive_minimum m in
    let r = Solver.solve m in
    Alcotest.(check bool) "optimal flag" true r.Solver.optimal;
    check_float "matches exhaustive" exact r.Solver.cost;
    Alcotest.(check bool) "feasible" true (Utree.is_feasible m r.Solver.tree);
    check_float "cost is tree weight" r.Solver.cost (Utree.weight r.Solver.tree)
  done

let test_optimal_small_near_ultrametric () =
  for seed = 10 to 16 do
    let m = Gen.near_ultrametric ~rng:(rng seed) ~noise:0.3 7 in
    let exact, _ = exhaustive_minimum m in
    check_float "matches exhaustive" exact (Solver.solve m).Solver.cost
  done

let test_lb0_also_optimal () =
  let options = { Solver.default_options with lb = Solver.LB0 } in
  for seed = 0 to 4 do
    let m = Gen.uniform_metric ~rng:(rng seed) 7 in
    let exact, _ = exhaustive_minimum m in
    check_float "LB0 optimal" exact (Solver.solve ~options m).Solver.cost
  done

let test_lb1_prunes_more_than_lb0 () =
  let m = Gen.uniform_metric ~rng:(rng 5) 10 in
  let run lb =
    (Solver.solve ~options:{ Solver.default_options with lb } m).Solver.stats
  in
  let s0 = run Solver.LB0 and s1 = run Solver.LB1 in
  Alcotest.(check bool) "LB1 expands fewer nodes" true
    (s1.Stats.expanded <= s0.Stats.expanded)

let test_ub_variants_all_optimal () =
  let m = Gen.uniform_metric ~rng:(rng 6) 8 in
  let exact, _ = exhaustive_minimum m in
  List.iter
    (fun initial_ub ->
      let options = { Solver.default_options with initial_ub } in
      check_float "optimal" exact (Solver.solve ~options m).Solver.cost)
    [ Solver.Upgmm_ub; Solver.Upgma_ub; Solver.Nj_ub; Solver.No_heuristic_ub ]

let test_exact_ultrametric_input () =
  (* On an exact ultrametric matrix, the optimal UT realises the matrix
     itself: cost = sum of internal heights + root. *)
  let m = Gen.ultrametric ~rng:(rng 7) 8 in
  let r = Solver.solve m in
  let u = Linkage.upgmm m in
  check_float "UPGMM is already optimal" (Utree.weight u) r.Solver.cost

let test_two_species () =
  let m = Dist_matrix.init 2 (fun _ _ -> 5. ) in
  let r = Solver.solve m in
  check_float "cost" 5. r.Solver.cost;
  Alcotest.(check bool) "optimal" true r.Solver.optimal

let test_one_species () =
  let m = Dist_matrix.create 1 in
  let r = Solver.solve m in
  check_float "cost" 0. r.Solver.cost

let test_max_expanded_cap () =
  let m = Gen.uniform_metric ~rng:(rng 8) 12 in
  let options = { Solver.default_options with max_expanded = Some 5 } in
  let r = Solver.solve ~options m in
  Alcotest.(check bool) "not optimal" false r.Solver.optimal;
  (* The incumbent is still a feasible tree (from UPGMM at worst). *)
  Alcotest.(check bool) "feasible" true (Utree.is_feasible m r.Solver.tree)

let test_33_third_only_same_cost () =
  for seed = 0 to 9 do
    let m = Gen.near_ultrametric ~rng:(rng (100 + seed)) ~noise:0.2 8 in
    let base = Solver.solve m in
    let opts = { Solver.default_options with relation33 = Solver.Third_only } in
    let r33 = Solver.solve ~options:opts m in
    check_float "same optimum" base.Solver.cost r33.Solver.cost
  done

let test_33_every_insertion_feasible_and_close () =
  (* The aggressive variant stays feasible; cost may exceed the optimum
     but not the UPGMM upper bound. *)
  for seed = 0 to 4 do
    let m = Gen.near_ultrametric ~rng:(rng (200 + seed)) ~noise:0.2 9 in
    let opts =
      { Solver.default_options with relation33 = Solver.Every_insertion }
    in
    let r = Solver.solve ~options:opts m in
    Alcotest.(check bool) "feasible" true (Utree.is_feasible m r.Solver.tree);
    Alcotest.(check bool) "within UPGMM bound" true
      (r.Solver.cost <= Utree.weight (Linkage.upgmm m) +. 1e-9)
  done

let test_stats_populated () =
  let m = Gen.uniform_metric ~rng:(rng 9) 9 in
  let r = Solver.solve m in
  Alcotest.(check bool) "expanded > 0" true (r.Solver.stats.Stats.expanded > 0);
  Alcotest.(check bool) "generated > 0" true
    (r.Solver.stats.Stats.generated > 0)

(* --- Enumerate --- *)

let test_enumerate_count () =
  Alcotest.(check int) "n=2" 1 (Enumerate.count 2);
  Alcotest.(check int) "n=3" 3 (Enumerate.count 3);
  Alcotest.(check int) "n=6" 945 (Enumerate.count 6);
  (match Enumerate.count 18 with
  | _ -> Alcotest.fail "expected overflow guard"
  | exception Invalid_argument _ -> ())

let test_enumerate_visits_all () =
  let m = Gen.uniform_metric ~rng:(rng 21) 6 in
  let visited = ref 0 in
  Enumerate.iter m (fun _ -> incr visited);
  Alcotest.(check int) "(2n-3)!!" (Enumerate.count 6) !visited

let test_enumerate_minimum_matches_solver () =
  for seed = 0 to 4 do
    let m = Gen.uniform_metric ~rng:(rng (60 + seed)) 7 in
    check_float "same optimum"
      (Utree.weight (Enumerate.minimum m))
      (Solver.solve m).Solver.cost
  done

(* --- search orders and all-optimal collection --- *)

let test_best_first_same_optimum () =
  for seed = 0 to 5 do
    let m = Gen.near_ultrametric ~rng:(rng (70 + seed)) ~noise:0.3 9 in
    let dfs = Solver.solve m in
    let bf =
      Solver.solve
        ~options:{ Solver.default_options with search = Solver.Best_first }
        m
    in
    check_float "same optimum" dfs.Solver.cost bf.Solver.cost
  done

let test_best_first_expands_no_more () =
  (* Best-first with an admissible bound never expands more nodes than
     any other order (up to tie-breaking at the optimum). *)
  let m = Gen.near_ultrametric ~rng:(rng 77) ~noise:0.3 11 in
  let dfs = Solver.solve m in
  let bf =
    Solver.solve
      ~options:{ Solver.default_options with search = Solver.Best_first }
      m
  in
  Alcotest.(check bool)
    (Printf.sprintf "bf %d <= dfs %d + slack" bf.Solver.stats.Stats.expanded
       dfs.Solver.stats.Stats.expanded)
    true
    (bf.Solver.stats.Stats.expanded
    <= dfs.Solver.stats.Stats.expanded + (dfs.Solver.stats.Stats.expanded / 2) + 10)

let test_collect_all_finds_every_optimum () =
  (* Cross-check against enumeration: same set of optimal topologies. *)
  for seed = 0 to 4 do
    let m = Gen.uniform_metric ~rng:(rng (80 + seed)) 6 in
    let r =
      Solver.solve
        ~options:{ Solver.default_options with collect_all = true }
        m
    in
    let expected = ref [] in
    Enumerate.iter m (fun t ->
        if Float.abs (Utree.weight t -. r.Solver.cost) <= 1e-9 then
          if not (List.exists (Utree.same_topology t) !expected) then
            expected := t :: !expected);
    Alcotest.(check int)
      (Printf.sprintf "seed %d: optimal tree count" seed)
      (List.length !expected)
      (List.length r.Solver.all_optimal);
    List.iter
      (fun t ->
        if not (List.exists (Utree.same_topology t) r.Solver.all_optimal)
        then Alcotest.fail "an optimal topology was missed")
      !expected
  done

let test_collect_all_on_tie_rich_matrix () =
  (* All distances equal: every topology is optimal. *)
  let m = Dist_matrix.init 5 (fun _ _ -> 4.) in
  let r =
    Solver.solve
      ~options:{ Solver.default_options with collect_all = true }
      m
  in
  Alcotest.(check int) "all (2*5-3)!! topologies" 105
    (List.length r.Solver.all_optimal)

let test_collect_all_default_singleton () =
  let m = Gen.uniform_metric ~rng:(rng 90) 7 in
  let r = Solver.solve m in
  Alcotest.(check int) "one tree" 1 (List.length r.Solver.all_optimal)

(* --- Local_search (NNI) --- *)

let test_nni_neighbor_count () =
  (* A tree with k internal edges has 2k NNI neighbours; the 4-leaf
     caterpillar (((0,1),2),3) has 2 internal edges. *)
  let t =
    Utree.node 3.
      (Utree.node 2.
         (Utree.node 1. (Utree.leaf 0) (Utree.leaf 1))
         (Utree.leaf 2))
      (Utree.leaf 3)
  in
  Alcotest.(check int) "4 neighbours" 4 (List.length (Local_search.neighbors t));
  (* Each neighbour keeps the leaf set. *)
  List.iter
    (fun t' ->
      Alcotest.(check (list int)) "leaves" [ 0; 1; 2; 3 ] (Utree.leaves t'))
    (Local_search.neighbors t)

let test_nni_never_worse_than_start () =
  for seed = 0 to 9 do
    let m = Gen.uniform_metric ~rng:(rng (300 + seed)) 10 in
    let start = Linkage.upgmm m in
    let r = Local_search.improve m start in
    Alcotest.(check bool) "improved or equal" true
      (r.Local_search.cost <= Utree.weight start +. 1e-9);
    Alcotest.(check bool) "feasible" true
      (Utree.is_feasible m r.Local_search.tree)
  done

let test_nni_often_reaches_optimum () =
  (* On small instances NNI from UPGMM should usually find the global
     optimum; require it on a clear majority of seeds. *)
  let hits = ref 0 and total = 10 in
  for seed = 0 to total - 1 do
    let m = Gen.near_ultrametric ~rng:(rng (400 + seed)) ~noise:0.3 8 in
    let opt = (Solver.solve m).Solver.cost in
    let r = Local_search.from_upgmm m in
    Alcotest.(check bool) "never beats optimum" true
      (r.Local_search.cost >= opt -. 1e-9);
    if Float.abs (r.Local_search.cost -. opt) < 1e-6 then incr hits
  done;
  if !hits * 2 < total then
    Alcotest.failf "NNI reached the optimum on only %d/%d" !hits total

let test_nni_fixed_point () =
  (* Re-running from a local optimum changes nothing. *)
  let m = Gen.uniform_metric ~rng:(rng 55) 9 in
  let r1 = Local_search.from_upgmm m in
  let r2 = Local_search.improve m r1.Local_search.tree in
  Alcotest.(check (float 1e-12)) "same cost" r1.Local_search.cost
    r2.Local_search.cost;
  Alcotest.(check int) "no improvements" 0 r2.Local_search.improvements

(* --- qcheck --- *)

let arb_seed_n lo hi =
  QCheck.make
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck.Gen.(pair (int_bound 10_000) (int_range lo hi))

let prop_lower_bounds_admissible =
  QCheck.Test.make
    ~name:"LB1 never exceeds the cheapest completion (n <= 6)" ~count:25
    (arb_seed_n 3 6) (fun (seed, n) ->
      (* For every node of the full BBT, the lower bound must be at most
         the weight of the best complete tree below it. *)
      let m = Gen.uniform_metric ~rng:(rng seed) n in
      let lb_extra = Bb_tree.suffix_min_bounds m in
      let ok = ref true in
      let rec best_completion (node : Bb_tree.node) =
        if node.k = n then node.cost
        else
          List.fold_left
            (fun acc child -> Float.min acc (best_completion child))
            infinity
            (Bb_tree.branch m ~lb_extra node)
      in
      let rec walk (node : Bb_tree.node) =
        let best = best_completion node in
        if node.lb > best +. 1e-9 then ok := false
        else if node.k < n then
          List.iter walk (Bb_tree.branch m ~lb_extra node)
      in
      walk (Bb_tree.root m);
      !ok)

let prop_solver_matches_exhaustive =
  QCheck.Test.make ~name:"solver = exhaustive minimum (n <= 7)" ~count:25
    (arb_seed_n 2 7) (fun (seed, n) ->
      let m = Gen.uniform_metric ~rng:(rng seed) n in
      let exact, _ = exhaustive_minimum m in
      Float.abs ((Solver.solve m).Solver.cost -. exact) < 1e-6)

let prop_solution_feasible_and_ultrametric =
  QCheck.Test.make ~name:"solver output is a valid feasible UT" ~count:40
    (arb_seed_n 2 10) (fun (seed, n) ->
      let m = Gen.near_ultrametric ~rng:(rng seed) ~noise:0.4 n in
      let r = Solver.solve m in
      match Ultra.Tree_check.full_check m r.Solver.tree with
      | Ok () -> true
      | Error _ -> false)

let prop_solution_below_upgmm =
  QCheck.Test.make ~name:"optimum <= UPGMM weight" ~count:40
    (arb_seed_n 2 10) (fun (seed, n) ->
      let m = Gen.uniform_metric ~rng:(rng seed) n in
      (Solver.solve m).Solver.cost
      <= Utree.weight (Linkage.upgmm m) +. 1e-9)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "bnb"
    [
      ( "bb_tree",
        [
          Alcotest.test_case "insertion count" `Quick test_insertion_count;
          Alcotest.test_case "BBT leaf count = (2n-3)!!" `Quick
            test_full_bbt_leaf_count;
          Alcotest.test_case "insertions are minimal realizations" `Quick
            test_insertions_are_minimal_realizations;
          Alcotest.test_case "suffix min bounds" `Quick test_suffix_min_bounds;
          Alcotest.test_case "branch sorted by LB" `Quick
            test_branch_sorted_by_lb;
        ] );
      ( "relation33",
        [
          Alcotest.test_case "matrix pair" `Quick test_matrix_pair;
          Alcotest.test_case "tree pair" `Quick test_tree_pair;
          Alcotest.test_case "zero on own matrix" `Quick
            test_contradiction_count_zero_on_own_matrix;
          Alcotest.test_case "contradiction detected" `Quick
            test_contradiction_detected;
          Alcotest.test_case "compatible insertion" `Quick
            test_compatible_insertion;
        ] );
      ( "solver",
        [
          Alcotest.test_case "optimal on random" `Quick
            test_optimal_small_random;
          Alcotest.test_case "optimal on near-ultrametric" `Quick
            test_optimal_small_near_ultrametric;
          Alcotest.test_case "LB0 optimal" `Quick test_lb0_also_optimal;
          Alcotest.test_case "LB1 prunes more" `Quick
            test_lb1_prunes_more_than_lb0;
          Alcotest.test_case "UB variants optimal" `Quick
            test_ub_variants_all_optimal;
          Alcotest.test_case "exact ultrametric input" `Quick
            test_exact_ultrametric_input;
          Alcotest.test_case "two species" `Quick test_two_species;
          Alcotest.test_case "one species" `Quick test_one_species;
          Alcotest.test_case "expansion cap" `Quick test_max_expanded_cap;
          Alcotest.test_case "3-3 third-only keeps optimum" `Quick
            test_33_third_only_same_cost;
          Alcotest.test_case "3-3 every insertion" `Quick
            test_33_every_insertion_feasible_and_close;
          Alcotest.test_case "stats populated" `Quick test_stats_populated;
        ] );
      ( "enumerate",
        [
          Alcotest.test_case "count" `Quick test_enumerate_count;
          Alcotest.test_case "visits all" `Quick test_enumerate_visits_all;
          Alcotest.test_case "minimum matches solver" `Quick
            test_enumerate_minimum_matches_solver;
        ] );
      ( "search_orders",
        [
          Alcotest.test_case "best-first same optimum" `Quick
            test_best_first_same_optimum;
          Alcotest.test_case "best-first expands no more" `Quick
            test_best_first_expands_no_more;
          Alcotest.test_case "collect-all vs enumeration" `Quick
            test_collect_all_finds_every_optimum;
          Alcotest.test_case "collect-all tie-rich" `Quick
            test_collect_all_on_tie_rich_matrix;
          Alcotest.test_case "default singleton" `Quick
            test_collect_all_default_singleton;
        ] );
      ( "local_search",
        [
          Alcotest.test_case "neighbour count" `Quick test_nni_neighbor_count;
          Alcotest.test_case "never worse" `Quick
            test_nni_never_worse_than_start;
          Alcotest.test_case "often optimal" `Quick
            test_nni_often_reaches_optimum;
          Alcotest.test_case "fixed point" `Quick test_nni_fixed_point;
        ] );
      ( "properties",
        q
          [
            prop_lower_bounds_admissible;
            prop_solver_matches_exhaustive;
            prop_solution_feasible_and_ultrametric;
            prop_solution_below_upgmm;
          ] );
    ]
