(* Tests for the redistrib library: GEN_BLOCK distributions, message
   generation, conflict points, and the SCPA / DCA schedulers. *)

module Gen_block = Redistrib.Gen_block
module Message = Redistrib.Message
module Conflict = Redistrib.Conflict
module Schedule = Redistrib.Schedule
module Scpa = Redistrib.Scpa
module Dca = Redistrib.Dca

let rng seed = Random.State.make [| seed |]

(* The SCPA paper's running example (Figure 1): an array of 101 elements
   over 8 processors. *)
let paper_src = Gen_block.create [| 12; 20; 15; 14; 11; 9; 9; 11 |]
let paper_dst = Gen_block.create [| 17; 10; 13; 6; 17; 12; 11; 15 |]
let paper_messages () = Message.of_distributions paper_src paper_dst

(* --- Gen_block --- *)

let test_create_rejects () =
  (match Gen_block.create [||] with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ());
  match Gen_block.create [| 3; -1 |] with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ()

let test_bounds () =
  let b = Gen_block.bounds paper_src in
  Alcotest.(check (pair int int)) "first" (0, 12) b.(0);
  Alcotest.(check (pair int int)) "second" (12, 32) b.(1);
  Alcotest.(check (pair int int)) "last" (90, 101) b.(7)

let test_random_respects_bounds () =
  for seed = 0 to 9 do
    let d =
      Gen_block.random ~rng:(rng seed) ~total:1_000_000 ~procs:8
        ~lo_frac:0.3 ~hi_frac:1.5
    in
    Alcotest.(check int) "total" 1_000_000 (Gen_block.total d);
    let avg = 1_000_000 / 8 in
    Array.iter
      (fun s ->
        if s < int_of_float (0.3 *. float_of_int avg) - 1 then
          Alcotest.failf "segment %d below band" s;
        if s > int_of_float (1.5 *. float_of_int avg) + 1 then
          Alcotest.failf "segment %d above band" s)
      d.Gen_block.sizes
  done

let test_random_rejects_impossible () =
  (match
     Gen_block.random ~rng:(rng 0) ~total:100 ~procs:4 ~lo_frac:2.0
       ~hi_frac:3.0
   with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ())

(* --- Message --- *)

let test_paper_message_count () =
  (* The paper's Figure 2 shows fifteen messages m1 .. m15. *)
  Alcotest.(check int) "fifteen messages" 15 (List.length (paper_messages ()))

let test_messages_conserve_size () =
  Alcotest.(check int) "total size" 101 (Message.total_size (paper_messages ()))

let test_paper_first_messages () =
  match paper_messages () with
  | m1 :: m2 :: _ ->
      (* SP0's 12 elements split as 12 to DP0; DP0's remaining 5 come
         from SP1. *)
      Alcotest.(check int) "m1 size" 12 m1.Message.size;
      Alcotest.(check (pair int int)) "m1 route" (0, 0)
        (m1.Message.src, m1.Message.dst);
      Alcotest.(check int) "m2 size" 5 m2.Message.size;
      Alcotest.(check (pair int int)) "m2 route" (1, 0)
        (m2.Message.src, m2.Message.dst)
  | _ -> Alcotest.fail "missing messages"

let test_message_staircase_bound () =
  for seed = 0 to 9 do
    let procs = 8 in
    let src =
      Gen_block.random ~rng:(rng seed) ~total:10_000 ~procs ~lo_frac:0.3
        ~hi_frac:1.5
    in
    let dst =
      Gen_block.random ~rng:(rng (seed + 100)) ~total:10_000 ~procs
        ~lo_frac:0.3 ~hi_frac:1.5
    in
    let k = List.length (Message.of_distributions src dst) in
    Alcotest.(check bool)
      (Printf.sprintf "P <= %d <= 2P-1" k)
      true
      (k >= procs && k <= (2 * procs) - 1)
  done

let test_message_rejects_mismatch () =
  (match Message.of_distributions paper_src (Gen_block.create [| 101 |]) with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ())

(* --- Conflict --- *)

let test_paper_max_degree () =
  (* SP1, SP2 and DP4 have three messages each: k = 3. *)
  Alcotest.(check int) "degree" 3 (Conflict.max_degree (paper_messages ()))

let test_paper_mdms () =
  (* By the paper's Section 3.1 definition the maximum-degree processors
     are SP1, SP2 and DP4, giving three MDMSs of three messages each.
     (The paper's Section 4 walkthrough also lists DP2's {m4, m5} as a
     fourth "MDMS", inconsistently with its own definition; what matters
     is the conflict points, which we match exactly below.) *)
  let sets = Conflict.mdms_list (paper_messages ()) in
  Alcotest.(check int) "three MDMSs" 3 (List.length sets);
  List.iter
    (fun s ->
      Alcotest.(check int) "each has k messages" 3
        (List.length s.Conflict.messages))
    sets

let test_paper_conflict_points_match_step_one () =
  (* The paper schedules m4 and m7 (1-indexed) together in step 1. *)
  let cps = Conflict.conflict_points (paper_messages ()) in
  Alcotest.(check (list int)) "m7 then m4" [ 6; 3 ]
    (List.map (fun (m : Message.t) -> m.Message.id) cps)

let test_paper_explicit_conflict () =
  let sets = Conflict.mdms_list (paper_messages ()) in
  let explicit = Conflict.explicit_conflict_points sets in
  (* m7 (0-indexed id 6) belongs to both MDMS {m5,m6,m7} and
     {m7,m8,m9}. *)
  Alcotest.(check (list int)) "m7" [ 6 ]
    (List.map (fun (m : Message.t) -> m.Message.id) explicit)

let test_paper_conflict_points_schedulable () =
  let messages = paper_messages () in
  let cps = Conflict.conflict_points messages in
  (* Conflict points must be pairwise contention-free (SCPA puts them in
     one step). *)
  let rec pairwise_ok = function
    | [] -> true
    | (m : Message.t) :: rest ->
        List.for_all
          (fun (m' : Message.t) ->
            m'.Message.src <> m.Message.src && m'.Message.dst <> m.Message.dst)
          rest
        && pairwise_ok rest
  in
  Alcotest.(check bool) "one step suffices" true (pairwise_ok cps)

(* --- Schedulers --- *)

let schedulers = [ ("SCPA", Scpa.schedule); ("DCA", Dca.schedule) ]

let test_schedulers_valid_on_paper_example () =
  let messages = paper_messages () in
  List.iter
    (fun (name, f) ->
      match Schedule.verify messages (f messages) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %a" name Schedule.pp_error e)
    schedulers

let test_scpa_minimal_steps_on_paper_example () =
  let messages = paper_messages () in
  Alcotest.(check int) "three steps" (Schedule.min_steps messages)
    (Schedule.n_steps (Scpa.schedule messages))

let test_schedulers_valid_random () =
  for seed = 0 to 19 do
    let src =
      Gen_block.random ~rng:(rng seed) ~total:100_000 ~procs:12 ~lo_frac:0.3
        ~hi_frac:1.5
    in
    let dst =
      Gen_block.random ~rng:(rng (1000 + seed)) ~total:100_000 ~procs:12
        ~lo_frac:0.3 ~hi_frac:1.5
    in
    let messages = Message.of_distributions src dst in
    List.iter
      (fun (name, f) ->
        match Schedule.verify messages (f messages) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "seed %d %s: %a" seed name Schedule.pp_error e)
      schedulers
  done

let test_scpa_usually_at_least_as_good () =
  (* The paper reports SCPA >= 85 % wins on total step size; we require a
     clear majority over a fixed sample. *)
  let wins = ref 0 and total = 30 in
  for seed = 0 to total - 1 do
    let src =
      Gen_block.random ~rng:(rng (2000 + seed)) ~total:1_000_000 ~procs:16
        ~lo_frac:0.3 ~hi_frac:1.5
    in
    let dst =
      Gen_block.random ~rng:(rng (3000 + seed)) ~total:1_000_000 ~procs:16
        ~lo_frac:0.3 ~hi_frac:1.5
    in
    let messages = Message.of_distributions src dst in
    let s = Schedule.total_step_size (Scpa.schedule messages) in
    let d = Schedule.total_step_size (Dca.schedule messages) in
    if s <= d then incr wins
  done;
  if !wins * 3 < total * 2 then
    Alcotest.failf "SCPA won only %d/%d" !wins total

let test_empty_message_list () =
  List.iter
    (fun (name, f) ->
      Alcotest.(check int) (name ^ " empty") 0 (Schedule.n_steps (f [])))
    schedulers

let test_schedule_cost_model () =
  let messages = paper_messages () in
  let sched = Scpa.schedule messages in
  let cost = Schedule.cost ~ts:1. ~tm:0. sched in
  Alcotest.(check (float 1e-9))
    "ts-only cost counts steps"
    (float_of_int (Schedule.n_steps sched))
    cost

let test_verify_catches_bad_schedules () =
  let messages = paper_messages () in
  (match Schedule.verify messages [ messages ] with
  | Error (Schedule.Send_contention _ | Schedule.Receive_contention _) -> ()
  | Ok () -> Alcotest.fail "expected contention"
  | Error e -> Alcotest.failf "unexpected: %a" Schedule.pp_error e);
  match Schedule.verify messages [] with
  | Error (Schedule.Missing_message _) -> ()
  | Ok () | Error _ -> Alcotest.fail "expected missing message"

(* --- qcheck --- *)

let arb_case =
  QCheck.make
    ~print:(fun (s1, s2, p) -> Printf.sprintf "seeds=%d,%d procs=%d" s1 s2 p)
    QCheck.Gen.(
      triple (int_bound 10_000) (int_bound 10_000) (int_range 2 24))

let prop_scpa_valid =
  QCheck.Test.make ~name:"SCPA schedules are always valid" ~count:60 arb_case
    (fun (s1, s2, procs) ->
      let src =
        Gen_block.random ~rng:(rng s1) ~total:(procs * 1000) ~procs
          ~lo_frac:0.3 ~hi_frac:1.5
      in
      let dst =
        Gen_block.random ~rng:(rng s2) ~total:(procs * 1000) ~procs
          ~lo_frac:0.3 ~hi_frac:1.5
      in
      let messages = Message.of_distributions src dst in
      Schedule.verify messages (Scpa.schedule messages) = Ok ())

let prop_dca_valid =
  QCheck.Test.make ~name:"DCA schedules are always valid" ~count:60 arb_case
    (fun (s1, s2, procs) ->
      let src =
        Gen_block.random ~rng:(rng s1) ~total:(procs * 1000) ~procs
          ~lo_frac:0.3 ~hi_frac:1.5
      in
      let dst =
        Gen_block.random ~rng:(rng s2) ~total:(procs * 1000) ~procs
          ~lo_frac:0.3 ~hi_frac:1.5
      in
      let messages = Message.of_distributions src dst in
      Schedule.verify messages (Dca.schedule messages) = Ok ())

let prop_scpa_steps_near_minimal =
  QCheck.Test.make ~name:"SCPA uses at most min_steps + 1 steps" ~count:60
    arb_case (fun (s1, s2, procs) ->
      let src =
        Gen_block.random ~rng:(rng s1) ~total:(procs * 1000) ~procs
          ~lo_frac:0.3 ~hi_frac:1.5
      in
      let dst =
        Gen_block.random ~rng:(rng s2) ~total:(procs * 1000) ~procs
          ~lo_frac:0.3 ~hi_frac:1.5
      in
      let messages = Message.of_distributions src dst in
      Schedule.n_steps (Scpa.schedule messages)
      <= Schedule.min_steps messages + 1)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "redistrib"
    [
      ( "gen_block",
        [
          Alcotest.test_case "create rejects" `Quick test_create_rejects;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "random respects bounds" `Quick
            test_random_respects_bounds;
          Alcotest.test_case "random rejects impossible" `Quick
            test_random_rejects_impossible;
        ] );
      ( "message",
        [
          Alcotest.test_case "paper count" `Quick test_paper_message_count;
          Alcotest.test_case "size conserved" `Quick
            test_messages_conserve_size;
          Alcotest.test_case "paper first messages" `Quick
            test_paper_first_messages;
          Alcotest.test_case "staircase bound" `Quick
            test_message_staircase_bound;
          Alcotest.test_case "rejects mismatch" `Quick
            test_message_rejects_mismatch;
        ] );
      ( "conflict",
        [
          Alcotest.test_case "paper max degree" `Quick test_paper_max_degree;
          Alcotest.test_case "paper MDMSs" `Quick test_paper_mdms;
          Alcotest.test_case "paper step-1 conflict points" `Quick
            test_paper_conflict_points_match_step_one;
          Alcotest.test_case "paper explicit conflict" `Quick
            test_paper_explicit_conflict;
          Alcotest.test_case "conflict points one step" `Quick
            test_paper_conflict_points_schedulable;
        ] );
      ( "schedulers",
        [
          Alcotest.test_case "valid on paper example" `Quick
            test_schedulers_valid_on_paper_example;
          Alcotest.test_case "SCPA minimal steps" `Quick
            test_scpa_minimal_steps_on_paper_example;
          Alcotest.test_case "valid on random" `Quick
            test_schedulers_valid_random;
          Alcotest.test_case "SCPA wins majority" `Quick
            test_scpa_usually_at_least_as_good;
          Alcotest.test_case "empty" `Quick test_empty_message_list;
          Alcotest.test_case "cost model" `Quick test_schedule_cost_model;
          Alcotest.test_case "verify catches bad" `Quick
            test_verify_catches_bad_schedules;
        ] );
      ( "properties",
        q [ prop_scpa_valid; prop_dca_valid; prop_scpa_steps_near_minimal ] );
    ]
