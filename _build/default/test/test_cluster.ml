(* Tests for the clustersim library: the event engine, platforms, and
   the distributed branch-and-bound protocol. *)

module Dist_matrix = Distmat.Dist_matrix
module Gen = Distmat.Gen
module Utree = Ultra.Utree
module Solver = Bnb.Solver
module Sim = Clustersim.Sim
module Platform = Clustersim.Platform
module Dist_bnb = Clustersim.Dist_bnb

let rng seed = Random.State.make [| seed |]
let check_float = Alcotest.(check (float 1e-6))

(* --- Sim --- *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:3. (fun () -> log := 3 :: !log);
  Sim.schedule sim ~delay:1. (fun () -> log := 1 :: !log);
  Sim.schedule sim ~delay:2. (fun () -> log := 2 :: !log);
  Sim.run sim;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  check_float "final clock" 3. (Sim.now sim)

let test_sim_fifo_for_ties () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Sim.schedule sim ~delay:1. (fun () -> log := i :: !log)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "fifo" (List.init 10 Fun.id) (List.rev !log)

let test_sim_nested_scheduling () =
  let sim = Sim.create () in
  let hits = ref 0 in
  let rec chain k =
    if k > 0 then
      Sim.schedule sim ~delay:0.5 (fun () ->
          incr hits;
          chain (k - 1))
  in
  chain 5;
  Sim.run sim;
  Alcotest.(check int) "all fired" 5 !hits;
  check_float "clock accumulated" 2.5 (Sim.now sim);
  Alcotest.(check int) "processed" 5 (Sim.n_processed sim)

let test_sim_rejects_bad_delay () =
  let sim = Sim.create () in
  (match Sim.schedule sim ~delay:(-1.) ignore with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ())

let test_sim_many_events () =
  let sim = Sim.create () in
  let count = ref 0 in
  for _ = 1 to 10_000 do
    Sim.schedule sim ~delay:(Random.float 10.) (fun () -> incr count)
  done;
  Sim.run sim;
  Alcotest.(check int) "all processed" 10_000 !count

(* --- Platform --- *)

let test_platform_cluster () =
  let p = Platform.cluster 16 in
  Alcotest.(check int) "slaves" 16 (Platform.n_slaves p);
  Alcotest.(check bool) "latency dominates small messages" true
    (Platform.message_time p ~bytes:16 < Platform.message_time p ~bytes:100_000)

let test_platform_grid () =
  let g = Platform.grid ~sites:[ (12, 2_900.); (4, 2_400.) ] in
  Alcotest.(check int) "slaves" 16 (Platform.n_slaves g);
  (* WAN latency is far above the LAN's. *)
  let c = Platform.cluster 16 in
  Alcotest.(check bool) "grid slower to talk" true
    (Platform.message_time g ~bytes:16 > Platform.message_time c ~bytes:16)

(* --- Dist_bnb --- *)

let test_sim_cost_matches_sequential () =
  for seed = 0 to 5 do
    let m = Gen.uniform_metric ~rng:(rng seed) 9 in
    let expect = (Solver.solve m).Solver.cost in
    let r = Dist_bnb.run (Platform.cluster 4) m in
    check_float "optimal cost" expect r.Dist_bnb.cost;
    Alcotest.(check bool) "feasible tree" true
      (Utree.is_feasible m r.Dist_bnb.tree);
    Alcotest.(check bool) "time advanced" true (r.Dist_bnb.makespan > 0.)
  done

let test_sim_cost_matches_on_mtdna () =
  for seed = 0 to 2 do
    let d = Seqsim.Mtdna.generate ~rng:(rng (80 + seed)) 11 in
    let m = d.Seqsim.Mtdna.matrix in
    let expect = (Solver.solve m).Solver.cost in
    List.iter
      (fun slaves ->
        let r = Dist_bnb.run (Platform.cluster slaves) m in
        check_float
          (Printf.sprintf "seed %d slaves %d" seed slaves)
          expect r.Dist_bnb.cost)
      [ 1; 2; 16 ]
  done

let test_sim_grid_matches_too () =
  let m = Gen.uniform_metric ~rng:(rng 42) 10 in
  let expect = (Solver.solve m).Solver.cost in
  let g = Platform.grid ~sites:[ (3, 2_300.); (2, 2_900.) ] in
  check_float "grid cost" expect (Dist_bnb.run g m).Dist_bnb.cost

let test_more_slaves_not_slower_on_hard_input () =
  (* On a search big enough to parallelise (thousands of expansions),
     8 slaves must beat 1 slave. *)
  let m = Gen.near_ultrametric ~rng:(rng 7) ~noise:0.3 14 in
  let t1 = (Dist_bnb.run (Platform.cluster 1) m).Dist_bnb.makespan in
  let t8 = (Dist_bnb.run (Platform.cluster 8) m).Dist_bnb.makespan in
  Alcotest.(check bool)
    (Printf.sprintf "t1=%g t8=%g" t1 t8)
    true (t8 < t1)

let test_speedup_helper () =
  let m = Gen.uniform_metric ~rng:(rng 8) 11 in
  let s =
    Dist_bnb.speedup (Platform.cluster 1) (Platform.cluster 8) m
  in
  Alcotest.(check bool) "positive" true (s > 0.)

let test_two_species_shortcut () =
  let m = Dist_matrix.init 2 (fun _ _ -> 4.) in
  let r = Dist_bnb.run (Platform.cluster 4) m in
  check_float "cost" 4. r.Dist_bnb.cost;
  check_float "no virtual time" 0. r.Dist_bnb.makespan

let test_sim_run_deterministic () =
  (* Identical inputs give bit-identical makespans and costs. *)
  let m = Gen.near_ultrametric ~rng:(rng 55) ~noise:0.3 12 in
  let run () = Dist_bnb.run (Platform.cluster 8) m in
  let a = run () and b = run () in
  Alcotest.(check bool) "same makespan" true
    (Float.equal a.Dist_bnb.makespan b.Dist_bnb.makespan);
  Alcotest.(check bool) "same expansions" true
    (a.Dist_bnb.expansions = b.Dist_bnb.expansions);
  Alcotest.(check bool) "same messages" true
    (a.Dist_bnb.messages = b.Dist_bnb.messages)

let test_utilization_sane () =
  let m = Gen.near_ultrametric ~rng:(rng 77) ~noise:0.3 13 in
  let r = Dist_bnb.run (Platform.cluster 4) m in
  Alcotest.(check int) "per slave" 4 (Array.length r.Dist_bnb.utilization);
  Array.iter
    (fun u ->
      if u < 0. || u > 1.0 +. 1e-9 then
        Alcotest.failf "utilization %g out of range" u)
    r.Dist_bnb.utilization;
  (* A busy parallel search keeps the slaves mostly working. *)
  let mean =
    Array.fold_left ( +. ) 0. r.Dist_bnb.utilization /. 4.
  in
  Alcotest.(check bool) (Printf.sprintf "mean %.2f" mean) true (mean > 0.3)

let test_messages_counted () =
  let m = Gen.uniform_metric ~rng:(rng 9) 9 in
  let r = Dist_bnb.run (Platform.cluster 4) m in
  Alcotest.(check bool) "messages flowed" true (r.Dist_bnb.messages > 0);
  Alcotest.(check bool) "expansions counted" true (r.Dist_bnb.expansions > 0)

let prop_sim_always_optimal =
  QCheck.Test.make ~name:"simulated cost = sequential optimum" ~count:15
    (QCheck.make
       ~print:(fun (s, n, p) -> Printf.sprintf "seed=%d n=%d p=%d" s n p)
       QCheck.Gen.(triple (int_bound 10_000) (int_range 3 9) (int_range 1 8)))
    (fun (seed, n, p) ->
      let m = Gen.near_ultrametric ~rng:(rng seed) ~noise:0.3 n in
      let expect = (Solver.solve m).Solver.cost in
      let r = Dist_bnb.run (Platform.cluster p) m in
      Float.abs (expect -. r.Dist_bnb.cost) < 1e-6)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "clustersim"
    [
      ( "sim",
        [
          Alcotest.test_case "ordering" `Quick test_sim_ordering;
          Alcotest.test_case "fifo ties" `Quick test_sim_fifo_for_ties;
          Alcotest.test_case "nested" `Quick test_sim_nested_scheduling;
          Alcotest.test_case "rejects bad delay" `Quick
            test_sim_rejects_bad_delay;
          Alcotest.test_case "many events" `Quick test_sim_many_events;
        ] );
      ( "platform",
        [
          Alcotest.test_case "cluster" `Quick test_platform_cluster;
          Alcotest.test_case "grid" `Quick test_platform_grid;
        ] );
      ( "dist_bnb",
        [
          Alcotest.test_case "cost matches sequential" `Quick
            test_sim_cost_matches_sequential;
          Alcotest.test_case "cost matches on mtdna" `Quick
            test_sim_cost_matches_on_mtdna;
          Alcotest.test_case "grid matches" `Quick test_sim_grid_matches_too;
          Alcotest.test_case "8 slaves beat 1" `Quick
            test_more_slaves_not_slower_on_hard_input;
          Alcotest.test_case "speedup helper" `Quick test_speedup_helper;
          Alcotest.test_case "two species" `Quick test_two_species_shortcut;
          Alcotest.test_case "deterministic" `Quick test_sim_run_deterministic;
          Alcotest.test_case "utilization sane" `Quick test_utilization_sane;
          Alcotest.test_case "messages counted" `Quick test_messages_counted;
        ] );
      ("properties", q [ prop_sim_always_optimal ]);
    ]
