(* Tests for the distmat library: matrices, metric predicates, maxmin
   permutations, IO and generators. *)

module Dist_matrix = Distmat.Dist_matrix
module Metric = Distmat.Metric
module Permutation = Distmat.Permutation
module Matrix_io = Distmat.Matrix_io
module Gen = Distmat.Gen

let rng seed = Random.State.make [| seed |]

let check_float = Alcotest.(check (float 1e-9))

(* --- Dist_matrix --- *)

let test_create_get_set () =
  let m = Dist_matrix.create 4 in
  Alcotest.(check int) "size" 4 (Dist_matrix.size m);
  Dist_matrix.set m 1 3 2.5;
  check_float "symmetric set" 2.5 (Dist_matrix.get m 3 1);
  check_float "diagonal" 0. (Dist_matrix.get m 2 2)

let test_set_rejects_bad () =
  let m = Dist_matrix.create 3 in
  Alcotest.check_raises "diagonal" (Invalid_argument
    "Dist_matrix.set: diagonal entries must be zero")
    (fun () -> Dist_matrix.set m 1 1 1.);
  Alcotest.check_raises "negative" (Invalid_argument
    "Dist_matrix.set: negative distance")
    (fun () -> Dist_matrix.set m 0 1 (-1.))

let test_set_rejects_non_finite () =
  let m = Dist_matrix.create 3 in
  List.iter
    (fun d ->
      match Dist_matrix.set m 0 1 d with
      | () -> Alcotest.failf "accepted %g" d
      | exception Invalid_argument _ -> ())
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let test_out_of_range () =
  let m = Dist_matrix.create 3 in
  (match Dist_matrix.get m 0 3 with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ())

let test_of_rows_roundtrip () =
  let rows = [| [| 0.; 1.; 2. |]; [| 1.; 0.; 3. |]; [| 2.; 3.; 0. |] |] in
  let m = Dist_matrix.of_rows rows in
  Alcotest.(check bool) "roundtrip" true (Dist_matrix.to_rows m = rows)

let test_of_rows_rejects_asymmetric () =
  let rows = [| [| 0.; 1. |]; [| 2.; 0. |] |] in
  (match Dist_matrix.of_rows rows with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ())

let test_sub () =
  let m = Dist_matrix.init 4 (fun i j -> float_of_int ((10 * i) + j)) in
  let s = Dist_matrix.sub m [| 3; 1 |] in
  check_float "sub entry" (Dist_matrix.get m 3 1) (Dist_matrix.get s 0 1);
  Alcotest.(check int) "sub size" 2 (Dist_matrix.size s)

let test_sub_rejects_repeat () =
  let m = Dist_matrix.create 3 in
  (match Dist_matrix.sub m [| 1; 1 |] with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ())

let test_farthest_pair () =
  let m = Dist_matrix.init 4 (fun i j -> float_of_int (i + j)) in
  Alcotest.(check (pair int int)) "farthest" (2, 3) (Dist_matrix.farthest_pair m)

let test_min_off_diagonal () =
  let m = Dist_matrix.init 3 (fun i j -> float_of_int ((i * 3) + j)) in
  check_float "min" 1. (Dist_matrix.min_off_diagonal m)

let test_fold_pairs_count () =
  let m = Dist_matrix.create 5 in
  let count = Dist_matrix.fold_pairs (fun acc _ _ _ -> acc + 1) 0 m in
  Alcotest.(check int) "C(5,2)" 10 count

(* --- Metric --- *)

let metric_example () =
  Dist_matrix.of_rows
    [| [| 0.; 2.; 3. |]; [| 2.; 0.; 4. |]; [| 3.; 4.; 0. |] |]

let test_is_metric () =
  Alcotest.(check bool) "metric" true (Metric.is_metric (metric_example ()))

let test_not_metric () =
  let m =
    Dist_matrix.of_rows
      [| [| 0.; 1.; 10. |]; [| 1.; 0.; 1. |]; [| 10.; 1.; 0. |] |]
  in
  Alcotest.(check bool) "not metric" false (Metric.is_metric m);
  Alcotest.(check bool) "has violations" true (Metric.metric_violations m <> [])

let test_floyd_warshall_repairs () =
  let m =
    Dist_matrix.of_rows
      [| [| 0.; 1.; 10. |]; [| 1.; 0.; 1. |]; [| 10.; 1.; 0. |] |]
  in
  let fixed = Metric.floyd_warshall m in
  Alcotest.(check bool) "repaired" true (Metric.is_metric fixed);
  check_float "shortcut" 2. (Dist_matrix.get fixed 0 2)

let test_ultrametric_detection () =
  let u =
    Dist_matrix.of_rows
      [| [| 0.; 2.; 6. |]; [| 2.; 0.; 6. |]; [| 6.; 6.; 0. |] |]
  in
  Alcotest.(check bool) "ultrametric" true (Metric.is_ultrametric u);
  Alcotest.(check bool) "metric too" true (Metric.is_metric u);
  let not_u = metric_example () in
  Alcotest.(check bool) "not ultrametric" false (Metric.is_ultrametric not_u)

let test_subdominant () =
  let m = Gen.uniform_metric ~rng:(rng 7) 9 in
  let sub = Metric.subdominant_ultrametric m in
  Alcotest.(check bool) "is ultrametric" true (Metric.is_ultrametric sub);
  (* Below the input, pointwise. *)
  Dist_matrix.iter_pairs
    (fun i j d ->
      if d > Dist_matrix.get m i j +. 1e-9 then
        Alcotest.failf "subdominant above input at (%d,%d)" i j)
    sub

(* --- Permutation --- *)

let test_maxmin_simple () =
  let m =
    Dist_matrix.of_rows
      [|
        [| 0.; 1.; 9. |];
        [| 1.; 0.; 8. |];
        [| 9.; 8.; 0. |];
      |]
  in
  let p = Permutation.to_array (Permutation.maxmin m) in
  Alcotest.(check (list int)) "farthest first" [ 0; 2; 1 ] (Array.to_list p)

let test_maxmin_property () =
  let m = Gen.uniform_metric ~rng:(rng 3) 12 in
  let p = Permutation.maxmin m in
  Alcotest.(check bool) "is maxmin" true (Permutation.is_maxmin m p)

let test_apply_inverse () =
  let m = Gen.uniform_metric ~rng:(rng 4) 8 in
  let p = Permutation.maxmin m in
  let pm = Permutation.apply m p in
  let back = Permutation.apply pm (Permutation.inverse p) in
  Alcotest.(check bool) "inverse restores" true (Dist_matrix.equal m back)

let test_of_array_rejects () =
  (match Permutation.of_array [| 0; 0; 1 |] with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ())

(* --- Matrix_io --- *)

let test_phylip_roundtrip () =
  let m = Gen.uniform_metric ~rng:(rng 5) 6 in
  let text = Matrix_io.to_phylip m in
  let { Matrix_io.names; matrix } = Matrix_io.of_phylip text in
  Alcotest.(check string) "default name" "s0" names.(0);
  Alcotest.(check bool) "same matrix" true
    (Dist_matrix.equal ~eps:1e-5 m matrix)

let test_phylip_names () =
  let m = Dist_matrix.init 2 (fun _ _ -> 3.) in
  let text = Matrix_io.to_phylip ~names:[| "human"; "chimp" |] m in
  let parsed = Matrix_io.of_phylip text in
  Alcotest.(check string) "name kept" "chimp" parsed.Matrix_io.names.(1)

let test_phylip_rejects_garbage () =
  List.iter
    (fun bad ->
      match Matrix_io.of_phylip bad with
      | _ -> Alcotest.failf "accepted %S" bad
      | exception Failure _ -> ())
    [ ""; "x"; "2\na 0 1\n"; "2\na 0 1\nb 1 zero\n"; "1\na 0 extra\n" ]

let test_phylip_lower_roundtrip () =
  let m = Gen.uniform_metric ~rng:(rng 15) 7 in
  let text = Matrix_io.to_phylip_lower m in
  let parsed = Matrix_io.of_phylip text in
  Alcotest.(check bool) "same matrix" true
    (Dist_matrix.equal ~eps:1e-5 m parsed.Matrix_io.matrix)

let test_phylip_lower_format () =
  let m = Dist_matrix.init 3 (fun i j -> float_of_int (i + j)) in
  Alcotest.(check string) "layout" "3\ns0\ns1 1\ns2 2 3\n"
    (Matrix_io.to_phylip_lower m)

let test_phylip_lower_rejects_ragged () =
  (match Matrix_io.of_phylip "3\na\nb 1\nc 2\n" with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure _ -> ())

let test_csv_shape () =
  let m = Dist_matrix.init 3 (fun i j -> float_of_int (i + j)) in
  let lines = String.split_on_char '\n' (Matrix_io.to_csv m) in
  Alcotest.(check int) "rows + header + trailing" 5 (List.length lines)

(* --- Gen --- *)

let test_uniform_metric_is_metric () =
  for seed = 0 to 4 do
    let m = Gen.uniform_metric ~rng:(rng seed) 10 in
    Alcotest.(check bool) "metric" true (Metric.is_metric m)
  done

let test_uniform_deterministic () =
  let a = Gen.uniform_metric ~rng:(rng 42) 8
  and b = Gen.uniform_metric ~rng:(rng 42) 8 in
  Alcotest.(check bool) "same seed same matrix" true (Dist_matrix.equal a b)

let test_euclidean_is_metric () =
  let m = Gen.euclidean ~rng:(rng 1) ~dim:2 15 in
  Alcotest.(check bool) "metric" true (Metric.is_metric m)

let test_ultrametric_gen () =
  let m = Gen.ultrametric ~rng:(rng 2) 12 in
  Alcotest.(check bool) "ultrametric" true (Metric.is_ultrametric m)

let test_near_ultrametric_is_metric () =
  let m = Gen.near_ultrametric ~rng:(rng 6) ~noise:0.2 14 in
  Alcotest.(check bool) "metric" true (Metric.is_metric m)

let test_clustered_separation () =
  let m =
    Gen.clustered ~rng:(rng 9) ~n_clusters:3 ~spread:1. ~separation:100. 12
  in
  Alcotest.(check bool) "metric" true (Metric.is_metric m)

(* --- qcheck properties --- *)

let arb_matrix =
  QCheck.make
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck.Gen.(pair (int_bound 10_000) (int_range 2 14))

let prop_floyd_warshall_idempotent =
  QCheck.Test.make ~name:"floyd_warshall is idempotent" ~count:50 arb_matrix
    (fun (seed, n) ->
      let m = Gen.uniform_metric ~rng:(rng seed) n in
      Distmat.Dist_matrix.equal ~eps:1e-9 m (Metric.floyd_warshall m))

let prop_maxmin_always_valid =
  QCheck.Test.make ~name:"maxmin permutation is always maxmin" ~count:50
    arb_matrix (fun (seed, n) ->
      let m = Gen.near_ultrametric ~rng:(rng seed) n in
      Permutation.is_maxmin m (Permutation.maxmin m))

let prop_subdominant_ultrametric =
  QCheck.Test.make ~name:"subdominant closure is ultrametric" ~count:50
    arb_matrix (fun (seed, n) ->
      let m = Gen.uniform_metric ~rng:(rng seed) n in
      Metric.is_ultrametric (Metric.subdominant_ultrametric m))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "distmat"
    [
      ( "dist_matrix",
        [
          Alcotest.test_case "create/get/set" `Quick test_create_get_set;
          Alcotest.test_case "set rejects bad" `Quick test_set_rejects_bad;
          Alcotest.test_case "set rejects non-finite" `Quick
            test_set_rejects_non_finite;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "of_rows roundtrip" `Quick test_of_rows_roundtrip;
          Alcotest.test_case "of_rows asymmetric" `Quick
            test_of_rows_rejects_asymmetric;
          Alcotest.test_case "sub" `Quick test_sub;
          Alcotest.test_case "sub rejects repeats" `Quick
            test_sub_rejects_repeat;
          Alcotest.test_case "farthest pair" `Quick test_farthest_pair;
          Alcotest.test_case "min off diagonal" `Quick test_min_off_diagonal;
          Alcotest.test_case "fold_pairs count" `Quick test_fold_pairs_count;
        ] );
      ( "metric",
        [
          Alcotest.test_case "is_metric" `Quick test_is_metric;
          Alcotest.test_case "not metric" `Quick test_not_metric;
          Alcotest.test_case "floyd_warshall repairs" `Quick
            test_floyd_warshall_repairs;
          Alcotest.test_case "ultrametric detection" `Quick
            test_ultrametric_detection;
          Alcotest.test_case "subdominant ultrametric" `Quick test_subdominant;
        ] );
      ( "permutation",
        [
          Alcotest.test_case "maxmin simple" `Quick test_maxmin_simple;
          Alcotest.test_case "maxmin property" `Quick test_maxmin_property;
          Alcotest.test_case "apply/inverse" `Quick test_apply_inverse;
          Alcotest.test_case "of_array rejects" `Quick test_of_array_rejects;
        ] );
      ( "matrix_io",
        [
          Alcotest.test_case "phylip roundtrip" `Quick test_phylip_roundtrip;
          Alcotest.test_case "phylip names" `Quick test_phylip_names;
          Alcotest.test_case "phylip rejects garbage" `Quick
            test_phylip_rejects_garbage;
          Alcotest.test_case "lower roundtrip" `Quick
            test_phylip_lower_roundtrip;
          Alcotest.test_case "lower format" `Quick test_phylip_lower_format;
          Alcotest.test_case "lower rejects ragged" `Quick
            test_phylip_lower_rejects_ragged;
          Alcotest.test_case "csv shape" `Quick test_csv_shape;
        ] );
      ( "gen",
        [
          Alcotest.test_case "uniform is metric" `Quick
            test_uniform_metric_is_metric;
          Alcotest.test_case "uniform deterministic" `Quick
            test_uniform_deterministic;
          Alcotest.test_case "euclidean is metric" `Quick
            test_euclidean_is_metric;
          Alcotest.test_case "ultrametric gen" `Quick test_ultrametric_gen;
          Alcotest.test_case "near-ultrametric is metric" `Quick
            test_near_ultrametric_is_metric;
          Alcotest.test_case "clustered is metric" `Quick
            test_clustered_separation;
        ] );
      ( "properties",
        q
          [
            prop_floyd_warshall_idempotent;
            prop_maxmin_always_valid;
            prop_subdominant_ultrametric;
          ] );
    ]
