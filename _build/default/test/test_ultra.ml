(* Tests for the ultra library: trees, Newick, checks, RF distance. *)

module Dist_matrix = Distmat.Dist_matrix
module Metric = Distmat.Metric
module Gen = Distmat.Gen
module Utree = Ultra.Utree
module Newick = Ultra.Newick
module Tree_check = Ultra.Tree_check
module Rf_distance = Ultra.Rf_distance
module Render = Ultra.Render
module Triplet_distance = Ultra.Triplet_distance
module Consensus = Ultra.Consensus
module Nexus = Ultra.Nexus

let rng seed = Random.State.make [| seed |]
let check_float = Alcotest.(check (float 1e-9))

(* ((0,1) at height 1, 2) at height 3 *)
let small_tree =
  Utree.node 3. (Utree.node 1. (Utree.leaf 0) (Utree.leaf 1)) (Utree.leaf 2)

let caterpillar n =
  (* (((0,1),2),...,n-1) with heights 1, 2, ..., n-1. *)
  let rec go acc k =
    if k = n then acc
    else go (Utree.node (float_of_int k) acc (Utree.leaf k)) (k + 1)
  in
  go (Utree.node 1. (Utree.leaf 0) (Utree.leaf 1)) 2

let test_leaves () =
  Alcotest.(check (list int)) "leaves" [ 0; 1; 2 ] (Utree.leaves small_tree);
  Alcotest.(check int) "count" 3 (Utree.n_leaves small_tree)

let test_weight () =
  (* Edges: 3-1, 3-0 (leaf 2), 1-0, 1-0 = 2 + 3 + 1 + 1 = 7. *)
  check_float "weight" 7. (Utree.weight small_tree)

let test_weight_height_identity () =
  (* weight = sum of internal heights + root height. *)
  let t = caterpillar 6 in
  let rec heights = function
    | Utree.Leaf _ -> 0.
    | Utree.Node n -> n.height +. heights n.left +. heights n.right
  in
  check_float "identity" (heights t +. Utree.height t) (Utree.weight t)

let test_tree_distance () =
  check_float "cherry" 2. (Utree.tree_distance small_tree 0 1);
  check_float "across root" 6. (Utree.tree_distance small_tree 0 2);
  check_float "self" 0. (Utree.tree_distance small_tree 1 1)

let test_tree_distance_missing () =
  (match Utree.tree_distance small_tree 0 9 with
  | _ -> Alcotest.fail "expected Not_found"
  | exception Not_found -> ())

let test_to_matrix_is_ultrametric () =
  let m = Utree.to_matrix (caterpillar 7) in
  Alcotest.(check bool) "ultrametric" true (Metric.is_ultrametric m);
  check_float "distance matches" (Utree.tree_distance (caterpillar 7) 2 5)
    (Dist_matrix.get m 2 5)

let test_node_rejects_inversion () =
  (match Utree.node 0.5 small_tree (Utree.leaf 3) with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ())

let test_minimal_realization_feasible () =
  for seed = 0 to 9 do
    let m = Gen.uniform_metric ~rng:(rng seed) 8 in
    (* Any topology: use the caterpillar shape re-realised for m. *)
    let t = Utree.minimal_realization m (caterpillar 8) in
    Alcotest.(check bool) "feasible" true (Utree.is_feasible m t);
    Alcotest.(check bool) "monotone" true (Utree.is_monotone t)
  done

let test_minimal_realization_minimal () =
  (* Lowering any internal node of the realization breaks feasibility:
     check the root of a 3-leaf tree. *)
  let m =
    Dist_matrix.of_rows
      [| [| 0.; 2.; 8. |]; [| 2.; 0.; 6. |]; [| 8.; 6.; 0. |] |]
  in
  let t = Utree.minimal_realization m small_tree in
  (match t with
  | Utree.Node n ->
      check_float "root height" 4. n.height;
      check_float "cherry height" 1. (Utree.height n.left)
  | Utree.Leaf _ -> Alcotest.fail "not a leaf")

let test_relabel () =
  let t = Utree.relabel (fun i -> i + 10) small_tree in
  Alcotest.(check (list int)) "relabelled" [ 10; 11; 12 ] (Utree.leaves t)

let test_map_leaves_graft () =
  let t =
    Utree.map_leaves
      (fun i ->
        if i = 0 then Utree.node 0.5 (Utree.leaf 10) (Utree.leaf 11)
        else Utree.leaf i)
      small_tree
  in
  Alcotest.(check (list int)) "grafted" [ 1; 2; 10; 11 ] (Utree.leaves t);
  Alcotest.(check bool) "monotone" true (Utree.is_monotone t)

let test_same_topology () =
  let a = Utree.node 5. (Utree.node 2. (Utree.leaf 0) (Utree.leaf 1)) (Utree.leaf 2) in
  let b = Utree.node 9. (Utree.leaf 2) (Utree.node 1. (Utree.leaf 1) (Utree.leaf 0)) in
  Alcotest.(check bool) "mirror" true (Utree.same_topology a b);
  let c = Utree.node 9. (Utree.leaf 1) (Utree.node 1. (Utree.leaf 2) (Utree.leaf 0)) in
  Alcotest.(check bool) "different" false (Utree.same_topology a c)

(* --- Newick --- *)

let test_newick_print () =
  Alcotest.(check string)
    "render" "((0:1,1:1):2,2:3);"
    (Newick.to_string small_tree)

let test_newick_roundtrip () =
  let t = caterpillar 6 in
  let t' = Newick.of_string (Newick.to_string t) in
  Alcotest.(check bool) "equal" true (Utree.equal t t')

let test_newick_names () =
  let names = [| "ape"; "bee"; "cat" |] in
  let s = Newick.to_string ~names small_tree in
  Alcotest.(check string) "named" "((ape:1,bee:1):2,cat:3);" s;
  let t = Newick.of_string ~names s in
  Alcotest.(check bool) "roundtrip" true (Utree.equal small_tree t)

let test_newick_rejects () =
  List.iter
    (fun bad ->
      match Newick.of_string bad with
      | (_ : Utree.t) -> Alcotest.failf "accepted %S" bad
      | exception Failure _ -> ())
    [
      "";
      "(0:1,1:1)";
      (* missing ; *)
      "((0:1,1:1):2,2:9);";
      (* not ultrametric *)
      "(0:1,1:1,2:1);";
      (* not binary *)
      "(0:1,x:1);";
      (* non-integer leaf *)
      "(0:1,1:-2);" (* negative length *);
    ]

let test_newick_whitespace () =
  let t = Newick.of_string " ( 0 :1, 1 : 1 ) ;" in
  Alcotest.(check (list int)) "parsed" [ 0; 1 ] (Utree.leaves t)

(* --- Tree_check --- *)

let test_full_check_ok () =
  let m = Utree.to_matrix small_tree in
  (match Tree_check.full_check m small_tree with
  | Ok () -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Tree_check.pp_error e)

let test_full_check_bad_leaves () =
  let m = Dist_matrix.create 4 in
  (match Tree_check.full_check m small_tree with
  | Error (Tree_check.Bad_leaf_set _) -> ()
  | Ok () | Error _ -> Alcotest.fail "expected Bad_leaf_set")

let test_full_check_infeasible () =
  let m = Dist_matrix.init 3 (fun _ _ -> 100.) in
  (match Tree_check.full_check m small_tree with
  | Error (Tree_check.Not_feasible _) -> ()
  | Ok () | Error _ -> Alcotest.fail "expected Not_feasible")

(* --- Rf_distance --- *)

let test_rf_zero_on_self () =
  Alcotest.(check int) "self" 0
    (Rf_distance.distance (caterpillar 6) (caterpillar 6))

let test_rf_known () =
  (* ((0,1),2,3 caterpillar) vs ((0,2),1,3 caterpillar): clusters
     {0,1},{0,1,2} vs {0,2},{0,1,2}: distance 2. *)
  let a =
    Utree.node 3.
      (Utree.node 2. (Utree.node 1. (Utree.leaf 0) (Utree.leaf 1)) (Utree.leaf 2))
      (Utree.leaf 3)
  in
  let b =
    Utree.node 3.
      (Utree.node 2. (Utree.node 1. (Utree.leaf 0) (Utree.leaf 2)) (Utree.leaf 1))
      (Utree.leaf 3)
  in
  Alcotest.(check int) "distance" 2 (Rf_distance.distance a b);
  Alcotest.(check (float 1e-9)) "normalised" 0.5 (Rf_distance.normalized a b)

let test_rf_rejects_mismatch () =
  (match Rf_distance.distance small_tree (caterpillar 5) with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ())

(* --- Render --- *)

let test_ascii_contains_all_names () =
  let names = [| "human"; "chimp"; "gorilla" |] in
  let art = Render.to_ascii ~names small_tree in
  Array.iter
    (fun n ->
      if not (Astring_contains.contains art n) then
        Alcotest.failf "missing %s in:\n%s" n art)
    names

let test_ascii_single_leaf () =
  Alcotest.(check string) "leaf" "0\n" (Render.to_ascii (Utree.leaf 0))

let test_svg_well_formed () =
  let svg = Render.to_svg (caterpillar 6) in
  Alcotest.(check bool) "opens" true
    (String.length svg > 10 && String.sub svg 0 4 = "<svg");
  Alcotest.(check bool) "closes" true
    (Astring_contains.contains svg "</svg>");
  (* One label per leaf. *)
  for i = 0 to 5 do
    if not (Astring_contains.contains svg (Printf.sprintf ">%d</text>" i))
    then Alcotest.failf "label %d missing" i
  done

let test_render_rejects_short_names () =
  (match Render.to_ascii ~names:[| "a" |] small_tree with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ())

(* --- Triplet_distance --- *)

let test_triplet_zero_on_self () =
  Alcotest.(check int) "self" 0
    (Triplet_distance.distance (caterpillar 7) (caterpillar 7))

let test_triplet_known () =
  (* ((0,1),2) vs ((0,2),1): the single triple disagrees. *)
  let a = Utree.node 2. (Utree.node 1. (Utree.leaf 0) (Utree.leaf 1)) (Utree.leaf 2) in
  let b = Utree.node 2. (Utree.node 1. (Utree.leaf 0) (Utree.leaf 2)) (Utree.leaf 1) in
  Alcotest.(check int) "one triple" 1 (Triplet_distance.distance a b);
  Alcotest.(check (float 1e-9)) "normalised" 1. (Triplet_distance.normalized a b)

let test_triplet_mirror_invariant () =
  let a = caterpillar 6 in
  let mirror = function
    | Utree.Leaf _ as l -> l
    | Utree.Node n -> Utree.Node { n with left = n.right; right = n.left }
  in
  let rec deep_mirror = function
    | Utree.Leaf _ as l -> l
    | Utree.Node n ->
        mirror (Utree.Node { n with left = deep_mirror n.left; right = deep_mirror n.right })
  in
  Alcotest.(check int) "mirrored" 0 (Triplet_distance.distance a (deep_mirror a))

let test_triplet_rejects_mismatch () =
  (match Triplet_distance.distance small_tree (caterpillar 5) with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ())

(* --- Nexus --- *)

let nexus_doc () =
  {
    Nexus.taxa = [| "human"; "chimp"; "gorilla" |];
    matrix = Some (Utree.to_matrix small_tree);
    trees = [ ("best", small_tree) ];
  }

let test_nexus_roundtrip () =
  let doc = nexus_doc () in
  let parsed = Nexus.of_string (Nexus.to_string doc) in
  Alcotest.(check (array string)) "taxa" doc.Nexus.taxa parsed.Nexus.taxa;
  (match parsed.Nexus.matrix with
  | Some m ->
      Alcotest.(check bool) "matrix" true
        (Dist_matrix.equal ~eps:1e-6 (Option.get doc.Nexus.matrix) m)
  | None -> Alcotest.fail "matrix lost");
  match parsed.Nexus.trees with
  | [ (name, t) ] ->
      Alcotest.(check string) "tree name" "best" name;
      Alcotest.(check bool) "same topology" true
        (Utree.same_topology small_tree t)
  | _ -> Alcotest.fail "tree lost"

let test_nexus_matrix_only () =
  let doc = { (nexus_doc ()) with Nexus.trees = [] } in
  let parsed = Nexus.of_string (Nexus.to_string doc) in
  Alcotest.(check int) "no trees" 0 (List.length parsed.Nexus.trees)

let test_nexus_comments_and_case () =
  let text =
    "#nexus [a comment]\nbegin taxa;\n dimensions ntax=2;\n taxlabels a \
     b;\nend;\nbegin trees;\n tree t1 = (a:1,b:1);\nend;\n"
  in
  let parsed = Nexus.of_string text in
  Alcotest.(check (array string)) "taxa" [| "a"; "b" |] parsed.Nexus.taxa;
  Alcotest.(check int) "one tree" 1 (List.length parsed.Nexus.trees)

let test_nexus_rejects () =
  List.iter
    (fun bad ->
      match Nexus.of_string bad with
      | _ -> Alcotest.failf "accepted %S" bad
      | exception Failure _ -> ())
    [
      "";
      "BEGIN TAXA; TAXLABELS a b; END;";
      (* no #NEXUS *)
      "#NEXUS [unterminated";
      "#NEXUS\nBEGIN TREES;\nTREE t = (a:1,b:1);\nEND;" (* no taxa *);
    ]

let test_nexus_rejects_inconsistent () =
  let doc =
    { (nexus_doc ()) with Nexus.matrix = Some (Dist_matrix.create 2) }
  in
  match Nexus.to_string doc with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ()

(* --- Consensus --- *)

let cat4a =
  Utree.node 3.
    (Utree.node 2. (Utree.node 1. (Utree.leaf 0) (Utree.leaf 1)) (Utree.leaf 2))
    (Utree.leaf 3)

let cat4b =
  Utree.node 3.
    (Utree.node 2. (Utree.node 1. (Utree.leaf 0) (Utree.leaf 1)) (Utree.leaf 3))
    (Utree.leaf 2)

let test_consensus_strict () =
  Alcotest.(check (list (list int)))
    "only the shared cherry" [ [ 0; 1 ] ]
    (Consensus.strict [ cat4a; cat4b ]);
  Alcotest.(check (list (list int)))
    "self strict keeps all" [ [ 0; 1 ]; [ 0; 1; 2 ] ]
    (Consensus.strict [ cat4a; cat4a ])

let test_consensus_majority () =
  let clusters = Consensus.majority [ cat4a; cat4a; cat4b ] in
  Alcotest.(check (list (list int)))
    "2/3 majority" [ [ 0; 1 ]; [ 0; 1; 2 ] ] clusters

let test_consensus_agreement () =
  Alcotest.(check (float 1e-9)) "identical" 1.
    (Consensus.agreement [ cat4a; cat4a ]);
  (* cat4a/cat4b share 1 of 3 distinct clusters. *)
  Alcotest.(check (float 1e-9)) "partial" (1. /. 3.)
    (Consensus.agreement [ cat4a; cat4b ])

let test_consensus_rejects () =
  (match Consensus.strict [] with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ());
  match Consensus.strict [ cat4a; small_tree ] with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ()

(* --- qcheck properties --- *)

let arb_seed_n lo hi =
  QCheck.make
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck.Gen.(pair (int_bound 10_000) (int_range lo hi))

(* Random tree by random insertions — exercises arbitrary shapes. *)
let random_topology rng n =
  let rec insert t sp =
    match t with
    | Utree.Leaf _ -> Utree.Node { height = 0.; left = t; right = Utree.Leaf sp }
    | Utree.Node nd ->
        if Random.State.bool rng then
          Utree.Node { height = 0.; left = t; right = Utree.Leaf sp }
        else if Random.State.bool rng then
          Utree.Node { nd with left = insert nd.left sp }
        else Utree.Node { nd with right = insert nd.right sp }
  in
  let rec go t k = if k = n then t else go (insert t k) (k + 1) in
  go (Utree.Node { height = 0.; left = Utree.Leaf 0; right = Utree.Leaf 1 }) 2

let prop_realization_feasible =
  QCheck.Test.make ~name:"minimal realization is feasible and monotone"
    ~count:100 (arb_seed_n 2 16) (fun (seed, n) ->
      let r = rng seed in
      let m = Gen.uniform_metric ~rng:r n in
      let t = Utree.minimal_realization m (random_topology r n) in
      Utree.is_feasible m t && Utree.is_monotone t)

let prop_to_matrix_roundtrip =
  QCheck.Test.make
    ~name:"to_matrix induces the tree's own minimal realization" ~count:100
    (arb_seed_n 2 14) (fun (seed, n) ->
      let r = rng seed in
      let m = Gen.uniform_metric ~rng:r n in
      let t = Utree.minimal_realization m (random_topology r n) in
      let tm = Utree.to_matrix t in
      (* Re-realising against the tree's own matrix reproduces the tree. *)
      Utree.equal t (Utree.minimal_realization tm t))

let prop_triplet_agrees_with_rf_zero =
  QCheck.Test.make
    ~name:"RF distance 0 implies triplet distance 0" ~count:60
    (arb_seed_n 3 12) (fun (seed, n) ->
      let r = rng seed in
      let m = Gen.uniform_metric ~rng:r n in
      let t = Utree.minimal_realization m (random_topology r n) in
      (* Same tree, re-realized: RF = 0, so triplets must agree. *)
      Rf_distance.distance t t = 0 && Triplet_distance.distance t t = 0)

let prop_ascii_renders_all_leaves =
  QCheck.Test.make ~name:"ascii render mentions every leaf" ~count:40
    (arb_seed_n 2 15) (fun (seed, n) ->
      let r = rng seed in
      let m = Gen.uniform_metric ~rng:r n in
      let t = Utree.minimal_realization m (random_topology r n) in
      let art = Render.to_ascii t in
      List.for_all
        (fun i -> Astring_contains.contains art (string_of_int i))
        (Utree.leaves t))

let prop_newick_roundtrip =
  QCheck.Test.make ~name:"newick roundtrip preserves the tree" ~count:100
    (arb_seed_n 2 18) (fun (seed, n) ->
      let r = rng seed in
      let m = Gen.uniform_metric ~rng:r n in
      let t = Utree.minimal_realization m (random_topology r n) in
      let t' = Newick.of_string (Newick.to_string t) in
      Utree.same_topology t t'
      && Float.abs (Utree.weight t -. Utree.weight t') < 1e-3)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "ultra"
    [
      ( "utree",
        [
          Alcotest.test_case "leaves" `Quick test_leaves;
          Alcotest.test_case "weight" `Quick test_weight;
          Alcotest.test_case "weight/height identity" `Quick
            test_weight_height_identity;
          Alcotest.test_case "tree distance" `Quick test_tree_distance;
          Alcotest.test_case "tree distance missing" `Quick
            test_tree_distance_missing;
          Alcotest.test_case "to_matrix ultrametric" `Quick
            test_to_matrix_is_ultrametric;
          Alcotest.test_case "node rejects inversion" `Quick
            test_node_rejects_inversion;
          Alcotest.test_case "minimal realization feasible" `Quick
            test_minimal_realization_feasible;
          Alcotest.test_case "minimal realization minimal" `Quick
            test_minimal_realization_minimal;
          Alcotest.test_case "relabel" `Quick test_relabel;
          Alcotest.test_case "map_leaves graft" `Quick test_map_leaves_graft;
          Alcotest.test_case "same topology" `Quick test_same_topology;
        ] );
      ( "newick",
        [
          Alcotest.test_case "print" `Quick test_newick_print;
          Alcotest.test_case "roundtrip" `Quick test_newick_roundtrip;
          Alcotest.test_case "names" `Quick test_newick_names;
          Alcotest.test_case "rejects" `Quick test_newick_rejects;
          Alcotest.test_case "whitespace" `Quick test_newick_whitespace;
        ] );
      ( "tree_check",
        [
          Alcotest.test_case "ok" `Quick test_full_check_ok;
          Alcotest.test_case "bad leaves" `Quick test_full_check_bad_leaves;
          Alcotest.test_case "infeasible" `Quick test_full_check_infeasible;
        ] );
      ( "render",
        [
          Alcotest.test_case "names present" `Quick
            test_ascii_contains_all_names;
          Alcotest.test_case "single leaf" `Quick test_ascii_single_leaf;
          Alcotest.test_case "svg well-formed" `Quick test_svg_well_formed;
          Alcotest.test_case "rejects short names" `Quick
            test_render_rejects_short_names;
        ] );
      ( "triplet_distance",
        [
          Alcotest.test_case "zero on self" `Quick test_triplet_zero_on_self;
          Alcotest.test_case "known" `Quick test_triplet_known;
          Alcotest.test_case "mirror invariant" `Quick
            test_triplet_mirror_invariant;
          Alcotest.test_case "rejects mismatch" `Quick
            test_triplet_rejects_mismatch;
        ] );
      ( "nexus",
        [
          Alcotest.test_case "roundtrip" `Quick test_nexus_roundtrip;
          Alcotest.test_case "matrix only" `Quick test_nexus_matrix_only;
          Alcotest.test_case "comments and case" `Quick
            test_nexus_comments_and_case;
          Alcotest.test_case "rejects" `Quick test_nexus_rejects;
          Alcotest.test_case "rejects inconsistent" `Quick
            test_nexus_rejects_inconsistent;
        ] );
      ( "consensus",
        [
          Alcotest.test_case "strict" `Quick test_consensus_strict;
          Alcotest.test_case "majority" `Quick test_consensus_majority;
          Alcotest.test_case "agreement" `Quick test_consensus_agreement;
          Alcotest.test_case "rejects" `Quick test_consensus_rejects;
        ] );
      ( "rf_distance",
        [
          Alcotest.test_case "zero on self" `Quick test_rf_zero_on_self;
          Alcotest.test_case "known distance" `Quick test_rf_known;
          Alcotest.test_case "rejects mismatch" `Quick test_rf_rejects_mismatch;
        ] );
      ( "properties",
        q
          [
            prop_realization_feasible;
            prop_to_matrix_roundtrip;
            prop_newick_roundtrip;
            prop_triplet_agrees_with_rf_zero;
            prop_ascii_renders_all_leaves;
          ] );
    ]
