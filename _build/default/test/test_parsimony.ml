(* Tests for the parsimony library: Fitch scoring and exhaustive
   maximum parsimony. *)

module Dna = Seqsim.Dna
module Utree = Ultra.Utree
module Fitch = Parsimony.Fitch

let rng seed = Random.State.make [| seed |]
let seq = Dna.of_string

let cherry01 =
  Utree.node 2. (Utree.node 1. (Utree.leaf 0) (Utree.leaf 1)) (Utree.leaf 2)

let cherry02 =
  Utree.node 2. (Utree.node 1. (Utree.leaf 0) (Utree.leaf 2)) (Utree.leaf 1)

let test_identical_sequences_zero () =
  let seqs = Array.make 3 (seq "ACGTACGT") in
  Alcotest.(check int) "zero" 0 (Fitch.score seqs cherry01)

let test_single_informative_site () =
  (* Site pattern A A T: grouping (0,1) costs 1; so does (0,2) (Fitch on
     3 leaves is topology-independent for a single site). *)
  let seqs = [| seq "A"; seq "A"; seq "T" |] in
  Alcotest.(check int) "cherry01" 1 (Fitch.score seqs cherry01);
  Alcotest.(check int) "cherry02" 1 (Fitch.score seqs cherry02)

let test_topology_matters_on_four_leaves () =
  (* Pattern AATT: ((0,1),(2,3)) costs 1, ((0,2),(1,3)) costs 2. *)
  let seqs = [| seq "A"; seq "A"; seq "T"; seq "T" |] in
  let grouped =
    Utree.node 2.
      (Utree.node 1. (Utree.leaf 0) (Utree.leaf 1))
      (Utree.node 1. (Utree.leaf 2) (Utree.leaf 3))
  in
  let crossed =
    Utree.node 2.
      (Utree.node 1. (Utree.leaf 0) (Utree.leaf 2))
      (Utree.node 1. (Utree.leaf 1) (Utree.leaf 3))
  in
  Alcotest.(check int) "grouped" 1 (Fitch.score seqs grouped);
  Alcotest.(check int) "crossed" 2 (Fitch.score seqs crossed)

let test_score_additive_over_sites () =
  let seqs = [| seq "AT"; seq "AA"; seq "TA" |] in
  let site1 = [| seq "A"; seq "A"; seq "T" |] in
  let site2 = [| seq "T"; seq "A"; seq "A" |] in
  Alcotest.(check int) "additive"
    (Fitch.score site1 cherry01 + Fitch.score site2 cherry01)
    (Fitch.score seqs cherry01)

let test_rejects_bad_input () =
  (match Fitch.score [||] cherry01 with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ());
  (match Fitch.score [| seq "AC"; seq "A"; seq "AC" |] cherry01 with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ());
  match Fitch.score [| seq "A"; seq "A" |] cherry01 with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ()

let test_best_tree_recovers_clean_split () =
  (* Strongly structured sequences: maximum parsimony groups the two
     blocks. *)
  let seqs =
    [| seq "AAAAAA"; seq "AAAAAT"; seq "TTTTTA"; seq "TTTTTT" |]
  in
  let t, score = Fitch.best_tree seqs in
  (* Sites 1-5 (pattern AATT) cost 1 each under the block grouping; the
     conflicting 6th site (ATAT) costs 2: total 7. *)
  Alcotest.(check int) "score" 7 score;
  let clades = Ultra.Rf_distance.clusters t in
  Alcotest.(check bool) "block clade" true
    (List.mem [ 0; 1 ] clades || List.mem [ 2; 3 ] clades)

let test_best_tree_score_is_minimal () =
  let truth = Seqsim.Clock_tree.coalescent ~rng:(rng 1) 6 in
  let seqs = Seqsim.Evolve.sequences ~rng:(rng 2) ~mu:0.3 ~sites:60 truth in
  let _, best = Fitch.best_tree seqs in
  (* No enumerated tree may beat it — spot-check with the truth and a
     caterpillar. *)
  Alcotest.(check bool) "truth >= best" true (Fitch.score seqs truth >= best)

let test_consistency_ratio () =
  let truth = Seqsim.Clock_tree.coalescent ~rng:(rng 3) 7 in
  let seqs = Seqsim.Evolve.sequences ~rng:(rng 4) ~mu:0.2 ~sites:300 truth in
  let matrix = Seqsim.Distance.matrix seqs in
  let distance_tree = (Compactphy.Pipeline.with_compact_sets matrix).Compactphy.Pipeline.tree in
  let ratio = Fitch.consistency_with_distance_tree seqs distance_tree in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f in (0, 1]" ratio)
    true
    (ratio > 0. && ratio <= 1.);
  (* On clock-like data the distance tree should be near-parsimonious. *)
  Alcotest.(check bool) "close to parsimony optimum" true (ratio >= 0.85)

let prop_fitch_nonnegative_le_sites =
  QCheck.Test.make ~name:"0 <= fitch score <= sites * (n-1)" ~count:40
    (QCheck.make
       ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
       QCheck.Gen.(pair (int_bound 10_000) (int_range 2 8)))
    (fun (s, n) ->
      let truth = Seqsim.Clock_tree.coalescent ~rng:(rng s) n in
      let seqs = Seqsim.Evolve.sequences ~rng:(rng (s + 1)) ~mu:0.5 ~sites:30 truth in
      let score = Fitch.score seqs truth in
      score >= 0 && score <= 30 * (n - 1))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "parsimony"
    [
      ( "fitch",
        [
          Alcotest.test_case "identical zero" `Quick
            test_identical_sequences_zero;
          Alcotest.test_case "single site" `Quick test_single_informative_site;
          Alcotest.test_case "topology matters" `Quick
            test_topology_matters_on_four_leaves;
          Alcotest.test_case "additive over sites" `Quick
            test_score_additive_over_sites;
          Alcotest.test_case "rejects bad input" `Quick test_rejects_bad_input;
          Alcotest.test_case "best tree clean split" `Quick
            test_best_tree_recovers_clean_split;
          Alcotest.test_case "best tree minimal" `Quick
            test_best_tree_score_is_minimal;
          Alcotest.test_case "consistency ratio" `Quick test_consistency_ratio;
        ] );
      ("properties", q [ prop_fitch_nonnegative_le_sites ]);
    ]
