(* Tests for the cgraph library: union-find, graphs, MSTs, compact sets
   and the laminar forest. *)

module Dist_matrix = Distmat.Dist_matrix
module Gen = Distmat.Gen
module Union_find = Cgraph.Union_find
module Wgraph = Cgraph.Wgraph
module Mst = Cgraph.Mst
module Compact_sets = Cgraph.Compact_sets
module Laminar = Cgraph.Laminar

let rng seed = Random.State.make [| seed |]

(* Reconstruction of the paper's 6-vertex worked example (Figures 3-5),
   0-indexed: the MST ascending is (0,2) < (3,5) < (0,1) < (2,4) < (4,5)
   and the compact sets are {0,2}, {3,5}, {0,1,2} and {0,1,2,4}. *)
let paper_example =
  Dist_matrix.of_rows
    [|
      [| 0.; 2.; 1.; 9.; 6.; 9.5 |];
      [| 2.; 0.; 2.5; 10.; 6.; 10.5 |];
      [| 1.; 2.5; 0.; 9.2; 5.; 9.8 |];
      [| 9.; 10.; 9.2; 0.; 8.; 1.5 |];
      [| 6.; 6.; 5.; 8.; 0.; 7. |];
      [| 9.5; 10.5; 9.8; 1.5; 7.; 0. |];
    |]

let paper_compact_sets = [ [ 0; 2 ]; [ 3; 5 ]; [ 0; 1; 2 ]; [ 0; 1; 2; 4 ] ]

(* --- Union_find --- *)

let test_uf_basics () =
  let uf = Union_find.create 5 in
  Alcotest.(check int) "initial sets" 5 (Union_find.n_sets uf);
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 3 4);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same" false (Union_find.same uf 1 3);
  Alcotest.(check int) "sets" 3 (Union_find.n_sets uf);
  Alcotest.(check int) "size" 2 (Union_find.size uf 4);
  Alcotest.(check (list int)) "members" [ 3; 4 ] (Union_find.members uf 3)

let test_uf_self_union () =
  let uf = Union_find.create 3 in
  ignore (Union_find.union uf 1 1);
  Alcotest.(check int) "unchanged" 3 (Union_find.n_sets uf)

let test_uf_chain () =
  let n = 100 in
  let uf = Union_find.create n in
  for i = 0 to n - 2 do
    ignore (Union_find.union uf i (i + 1))
  done;
  Alcotest.(check int) "one set" 1 (Union_find.n_sets uf);
  Alcotest.(check int) "full size" n (Union_find.size uf 0)

(* --- Wgraph --- *)

let test_edge_normalised () =
  let e = Wgraph.edge 5 2 1. in
  Alcotest.(check (pair int int)) "u<v" (2, 5) (e.Wgraph.u, e.Wgraph.v)

let test_edge_rejects () =
  List.iter
    (fun f ->
      match f () with
      | (_ : Wgraph.edge) -> Alcotest.fail "expected exception"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> Wgraph.edge 1 1 1.);
      (fun () -> Wgraph.edge (-1) 2 1.);
      (fun () -> Wgraph.edge 0 1 (-1.));
    ]

let test_complete_graph () =
  let g = Wgraph.complete_of_matrix paper_example in
  Alcotest.(check int) "vertices" 6 (Wgraph.n_vertices g);
  Alcotest.(check int) "edges" 15 (Wgraph.n_edges g);
  Alcotest.(check bool) "connected" true (Wgraph.is_connected g)

let test_disconnected () =
  let g = Wgraph.create ~n:4 [ Wgraph.edge 0 1 1. ] in
  Alcotest.(check bool) "disconnected" false (Wgraph.is_connected g)

let test_sorted_edges () =
  let g = Wgraph.complete_of_matrix paper_example in
  let ws = List.map (fun e -> e.Wgraph.w) (Wgraph.sorted_edges g) in
  Alcotest.(check bool) "ascending" true (List.sort compare ws = ws)

(* --- Mst --- *)

let test_kruskal_paper_example () =
  let mst = Mst.kruskal (Wgraph.complete_of_matrix paper_example) in
  Alcotest.(check bool) "spanning" true (Mst.is_spanning_tree ~n:6 mst);
  Alcotest.(check (float 1e-9)) "weight" 16.5 (Mst.total_weight mst)
(* 1 + 1.5 + 2 + 5 + 7 = 16.5 *)

let test_prim_equals_kruskal_weight () =
  for seed = 0 to 9 do
    let m = Gen.uniform_metric ~rng:(rng seed) 20 in
    let k = Mst.kruskal (Wgraph.complete_of_matrix m) in
    let p = Mst.prim m in
    Alcotest.(check (float 1e-6))
      "same weight" (Mst.total_weight k) (Mst.total_weight p);
    Alcotest.(check bool) "prim spanning" true (Mst.is_spanning_tree ~n:20 p)
  done

let test_kruskal_disconnected_raises () =
  let g = Wgraph.create ~n:3 [ Wgraph.edge 0 1 1. ] in
  (match Mst.kruskal g with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ())

let test_is_spanning_tree_rejects_cycle () =
  let es = [ Wgraph.edge 0 1 1.; Wgraph.edge 1 2 1.; Wgraph.edge 0 2 1. ] in
  Alcotest.(check bool) "cycle" false (Mst.is_spanning_tree ~n:4 es)

(* --- Compact_sets --- *)

let test_paper_example_sets () =
  Alcotest.(check (list (list int)))
    "paper example" paper_compact_sets
    (Compact_sets.find_naive paper_example);
  Alcotest.(check (list (list int)))
    "optimised agrees" paper_compact_sets
    (Compact_sets.find paper_example)

let test_is_compact_direct () =
  Alcotest.(check bool) "{0,2}" true
    (Compact_sets.is_compact paper_example [ 0; 2 ]);
  Alcotest.(check bool) "{1,2} not" false
    (Compact_sets.is_compact paper_example [ 1; 2 ]);
  Alcotest.(check bool) "full set not" false
    (Compact_sets.is_compact paper_example [ 0; 1; 2; 3; 4; 5 ]);
  Alcotest.(check bool) "singleton not" false
    (Compact_sets.is_compact paper_example [ 3 ])

let test_three_implementations_agree () =
  for seed = 0 to 19 do
    let m = Gen.near_ultrametric ~rng:(rng seed) ~noise:0.3 11 in
    let bf = Compact_sets.brute_force m in
    let naive = Compact_sets.find_naive m in
    let fast = Compact_sets.find m in
    Alcotest.(check (list (list int))) "naive = brute force" bf naive;
    Alcotest.(check (list (list int))) "fast = brute force" bf fast
  done

let test_uniform_random_agree () =
  for seed = 100 to 109 do
    let m = Gen.uniform_metric ~rng:(rng seed) 12 in
    Alcotest.(check (list (list int)))
      "fast = brute force"
      (Compact_sets.brute_force m)
      (Compact_sets.find m)
  done

let test_clustered_has_cluster_sets () =
  let m =
    Gen.clustered ~rng:(rng 3) ~n_clusters:3 ~spread:1. ~separation:200. 12
  in
  let sets = Compact_sets.find m in
  (* Each of the three generated clusters {i : i mod 3 = c} must show up. *)
  List.iter
    (fun c ->
      let expect =
        List.filter (fun i -> i mod 3 = c) (List.init 12 Fun.id)
      in
      if not (List.mem expect sets) then
        Alcotest.failf "cluster %d not discovered" c)
    [ 0; 1; 2 ]

let test_ultrametric_many_sets () =
  (* On an exact ultrametric with distinct levels, every internal node of
     the dendrogram except the root is a compact set: n - 2 of them. *)
  let m = Gen.ultrametric ~rng:(rng 11) 10 in
  let sets = Compact_sets.find m in
  Alcotest.(check int) "n-2 sets" 8 (List.length sets)

let test_mst_independence () =
  (* A matrix with tied edges: two coexisting MSTs (the paper's Figure 7
     situation).  Compact sets must not depend on the MST supplied. *)
  let m =
    Dist_matrix.of_rows
      [|
        [| 0.; 1.; 1.; 5. |];
        [| 1.; 0.; 1.; 5. |];
        [| 1.; 1.; 0.; 5. |];
        [| 5.; 5.; 5.; 0. |];
      |]
  in
  let mst1 = [ Wgraph.edge 0 1 1.; Wgraph.edge 0 2 1.; Wgraph.edge 2 3 5. ] in
  let mst2 = [ Wgraph.edge 0 1 1.; Wgraph.edge 1 2 1.; Wgraph.edge 0 3 5. ] in
  let s1 = Compact_sets.find_naive ~mst:mst1 m in
  let s2 = Compact_sets.find_naive ~mst:mst2 m in
  Alcotest.(check (list (list int))) "same sets" s1 s2;
  Alcotest.(check (list (list int))) "expected" [ [ 0; 1; 2 ] ] s1

let test_no_compact_sets () =
  (* All pairwise distances equal: no subset is strictly tighter. *)
  let m = Dist_matrix.init 6 (fun _ _ -> 4.) in
  Alcotest.(check (list (list int))) "none" [] (Compact_sets.find m);
  Alcotest.(check (list (list int))) "none (naive)" []
    (Compact_sets.find_naive m)

let test_relaxed_alpha_one_equals_find () =
  for seed = 0 to 9 do
    let m = Gen.near_ultrametric ~rng:(rng (500 + seed)) ~noise:0.3 15 in
    Alcotest.(check (list (list int)))
      "alpha 1" (Compact_sets.find m)
      (Compact_sets.find_relaxed ~alpha:1. m)
  done

let test_relaxed_monotone_in_alpha () =
  (* Larger alpha can only keep accepting the sweep's candidates, so the
     (pre-filter) family grows; after laminar filtering the count never
     goes below the strict count on these seeds. *)
  for seed = 0 to 9 do
    let m = Gen.uniform_metric ~rng:(rng (600 + seed)) 15 in
    let strict = List.length (Compact_sets.find m) in
    let relaxed = List.length (Compact_sets.find_relaxed ~alpha:1.5 m) in
    if relaxed < strict then
      Alcotest.failf "seed %d: relaxed %d < strict %d" seed relaxed strict
  done

let test_relaxed_family_is_laminar () =
  for seed = 0 to 9 do
    let m = Gen.uniform_metric ~rng:(rng (700 + seed)) 18 in
    let sets = Compact_sets.find_relaxed ~alpha:2.0 m in
    match Laminar.of_sets ~n:18 sets with
    | (_ : Laminar.t) -> ()
    | exception Invalid_argument msg ->
        Alcotest.failf "seed %d: not laminar (%s)" seed msg
  done

let test_relaxed_rejects_small_alpha () =
  let m = Gen.uniform_metric ~rng:(rng 1) 5 in
  (match Compact_sets.find_relaxed ~alpha:0.9 m with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ())

(* --- Laminar --- *)

let test_laminar_paper_example () =
  let t = Laminar.of_sets ~n:6 paper_compact_sets in
  Alcotest.(check int) "set count" 4 (Laminar.n_sets t);
  Alcotest.(check int) "depth" 3 (Laminar.depth t);
  (* Top level: {0,1,2,4} and {3,5} — exactly two roots. *)
  Alcotest.(check int) "roots" 2 (List.length t.Laminar.roots)

let test_laminar_members_sorted () =
  let t = Laminar.of_sets ~n:6 paper_compact_sets in
  List.iter
    (fun r ->
      let ms = Laminar.members r in
      Alcotest.(check bool) "sorted" true (List.sort compare ms = ms))
    t.Laminar.roots

let test_laminar_rejects_crossing () =
  (match Laminar.of_sets ~n:5 [ [ 0; 1; 2 ]; [ 2; 3 ] ] with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ())

let test_laminar_rejects_full_set () =
  (match Laminar.of_sets ~n:3 [ [ 0; 1; 2 ] ] with
  | _ -> Alcotest.fail "expected exception"
  | exception Invalid_argument _ -> ())

let test_laminar_internal_nodes () =
  let t = Laminar.of_sets ~n:6 paper_compact_sets in
  let blocks = Laminar.internal_nodes t in
  (* Virtual root + 4 sets = 5 blocks. *)
  Alcotest.(check int) "blocks" 5 (List.length blocks);
  (* The first block is the virtual root over all vertices. *)
  let _, members = List.hd blocks in
  Alcotest.(check (list int)) "root members" [ 0; 1; 2; 3; 4; 5 ] members

let test_laminar_empty () =
  let t = Laminar.of_sets ~n:4 [] in
  Alcotest.(check int) "no sets" 0 (Laminar.n_sets t);
  Alcotest.(check int) "four roots" 4 (List.length t.Laminar.roots)

(* --- qcheck properties --- *)

let arb_seed_n lo hi =
  QCheck.make
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck.Gen.(pair (int_bound 10_000) (int_range lo hi))

let prop_fast_equals_brute =
  QCheck.Test.make ~name:"compact sets: fast = brute force" ~count:40
    (arb_seed_n 3 12) (fun (seed, n) ->
      let m = Gen.near_ultrametric ~rng:(rng seed) ~noise:0.25 n in
      Compact_sets.brute_force m = Compact_sets.find m)

let prop_compact_sets_laminar =
  QCheck.Test.make ~name:"compact sets are laminar" ~count:60
    (arb_seed_n 3 25) (fun (seed, n) ->
      let m = Gen.near_ultrametric ~rng:(rng seed) ~noise:0.3 n in
      let sets = Compact_sets.find m in
      match Laminar.of_sets ~n sets with
      | (_ : Laminar.t) -> true
      | exception Invalid_argument _ -> false)

let prop_all_found_are_compact =
  QCheck.Test.make ~name:"every reported set satisfies the definition"
    ~count:60 (arb_seed_n 3 25) (fun (seed, n) ->
      let m = Gen.uniform_metric ~rng:(rng seed) n in
      List.for_all (Compact_sets.is_compact m) (Compact_sets.find m))

let prop_random_laminar_families_accepted =
  QCheck.Test.make ~name:"random laminar families build a forest" ~count:60
    (arb_seed_n 4 30) (fun (seed, n) ->
      (* Build a genuinely laminar family by recursive splitting, then
         check of_sets accepts it and reports consistent counts. *)
      let r = rng seed in
      let sets = ref [] in
      let rec split lo hi =
        (* [lo, hi) is a candidate set. *)
        if hi - lo >= 2 then begin
          if hi - lo < n && Random.State.bool r then
            sets := List.init (hi - lo) (fun i -> lo + i) :: !sets;
          if hi - lo >= 3 || (hi - lo >= 2 && Random.State.bool r) then begin
            let mid = lo + 1 + Random.State.int r (hi - lo - 1) in
            split lo mid;
            split mid hi
          end
        end
      in
      split 0 n;
      match Laminar.of_sets ~n !sets with
      | forest ->
          Laminar.n_sets forest = List.length (List.sort_uniq compare !sets)
      | exception Invalid_argument _ -> false)

let prop_mst_weights_agree =
  QCheck.Test.make ~name:"prim and kruskal MST weights agree" ~count:40
    (arb_seed_n 2 30) (fun (seed, n) ->
      let m = Gen.uniform_metric ~rng:(rng seed) n in
      let k = Mst.kruskal (Wgraph.complete_of_matrix m) in
      Float.abs (Mst.total_weight k -. Mst.total_weight (Mst.prim m)) < 1e-6)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "cgraph"
    [
      ( "union_find",
        [
          Alcotest.test_case "basics" `Quick test_uf_basics;
          Alcotest.test_case "self union" `Quick test_uf_self_union;
          Alcotest.test_case "chain" `Quick test_uf_chain;
        ] );
      ( "wgraph",
        [
          Alcotest.test_case "edge normalised" `Quick test_edge_normalised;
          Alcotest.test_case "edge rejects" `Quick test_edge_rejects;
          Alcotest.test_case "complete graph" `Quick test_complete_graph;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "sorted edges" `Quick test_sorted_edges;
        ] );
      ( "mst",
        [
          Alcotest.test_case "kruskal paper example" `Quick
            test_kruskal_paper_example;
          Alcotest.test_case "prim = kruskal" `Quick
            test_prim_equals_kruskal_weight;
          Alcotest.test_case "kruskal disconnected" `Quick
            test_kruskal_disconnected_raises;
          Alcotest.test_case "spanning tree rejects cycle" `Quick
            test_is_spanning_tree_rejects_cycle;
        ] );
      ( "compact_sets",
        [
          Alcotest.test_case "paper example" `Quick test_paper_example_sets;
          Alcotest.test_case "is_compact direct" `Quick test_is_compact_direct;
          Alcotest.test_case "implementations agree" `Quick
            test_three_implementations_agree;
          Alcotest.test_case "uniform random agree" `Quick
            test_uniform_random_agree;
          Alcotest.test_case "clustered clusters found" `Quick
            test_clustered_has_cluster_sets;
          Alcotest.test_case "ultrametric has n-2 sets" `Quick
            test_ultrametric_many_sets;
          Alcotest.test_case "MST independence" `Quick test_mst_independence;
          Alcotest.test_case "no compact sets" `Quick test_no_compact_sets;
          Alcotest.test_case "relaxed alpha=1" `Quick
            test_relaxed_alpha_one_equals_find;
          Alcotest.test_case "relaxed monotone" `Quick
            test_relaxed_monotone_in_alpha;
          Alcotest.test_case "relaxed laminar" `Quick
            test_relaxed_family_is_laminar;
          Alcotest.test_case "relaxed rejects alpha<1" `Quick
            test_relaxed_rejects_small_alpha;
        ] );
      ( "laminar",
        [
          Alcotest.test_case "paper example" `Quick test_laminar_paper_example;
          Alcotest.test_case "members sorted" `Quick
            test_laminar_members_sorted;
          Alcotest.test_case "rejects crossing" `Quick
            test_laminar_rejects_crossing;
          Alcotest.test_case "rejects full set" `Quick
            test_laminar_rejects_full_set;
          Alcotest.test_case "internal nodes" `Quick
            test_laminar_internal_nodes;
          Alcotest.test_case "empty" `Quick test_laminar_empty;
        ] );
      ( "properties",
        q
          [
            prop_fast_equals_brute;
            prop_compact_sets_laminar;
            prop_all_found_are_compact;
            prop_mst_weights_agree;
            prop_random_laminar_families_accepted;
          ] );
    ]
