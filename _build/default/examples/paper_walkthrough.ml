(* The paper's worked example (Figures 3-7), step by step: the complete
   weighted graph, its minimum spanning tree, the Kruskal sweep that
   discovers the compact sets, the small maximum matrices, and the final
   grafted ultrametric tree.

   Run with:  dune exec examples/paper_walkthrough.exe *)

module Dist_matrix = Distmat.Dist_matrix
module Wgraph = Cgraph.Wgraph
module Mst = Cgraph.Mst
module Compact_sets = Cgraph.Compact_sets
module Laminar = Cgraph.Laminar
module Utree = Ultra.Utree
module Newick = Ultra.Newick
module Decompose = Compactphy.Decompose
module Pipeline = Compactphy.Pipeline
module Paper_example = Compactphy.Paper_example

let section title = Fmt.pr "@.== %s ==@." title

let () =
  let m = Paper_example.matrix in
  section "Distance matrix (paper Figure 3, 0-indexed)";
  Fmt.pr "%a@." Dist_matrix.pp m;

  section "Minimum spanning tree (paper Figure 4)";
  let mst = Mst.kruskal (Wgraph.complete_of_matrix m) in
  List.iter (fun e -> Fmt.pr "%a@." Wgraph.pp_edge e) mst;
  Fmt.pr "total weight: %g@." (Mst.total_weight mst);

  section "Compact sets (paper Figure 5)";
  let sets = Compact_sets.find m in
  List.iter
    (fun set ->
      Fmt.pr "{%s}@." (String.concat "," (List.map string_of_int set)))
    sets;

  section "Laminar hierarchy";
  let forest = Laminar.of_sets ~n:(Dist_matrix.size m) sets in
  Fmt.pr "%a@." Laminar.pp forest;

  section "Small maximum matrices (paper Figure 6)";
  let deco = Decompose.decompose m in
  let show_block label block =
    Fmt.pr "%s over %d children:@.%a@." label
      (List.length block.Decompose.children)
      Dist_matrix.pp block.Decompose.small
  in
  show_block "root block" deco.Decompose.root_block;
  List.iter
    (fun (tree, block) ->
      show_block
        (Fmt.str "block {%s}"
           (String.concat ","
              (List.map string_of_int (Laminar.members tree))))
        block)
    deco.Decompose.set_blocks;

  section "Final ultrametric tree";
  let fast = Pipeline.with_compact_sets m in
  let exact = Pipeline.exact m in
  Fmt.pr "compact sets: cost %g -> %s@." fast.Pipeline.cost
    (Newick.to_string fast.Pipeline.tree);
  Fmt.pr "exact MUT:    cost %g -> %s@." exact.Pipeline.cost
    (Newick.to_string exact.Pipeline.tree)
