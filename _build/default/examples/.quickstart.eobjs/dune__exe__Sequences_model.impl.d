examples/sequences_model.ml: Align Array Compactphy Fmt List Random Seqsim String Ultra
