examples/redistribution_demo.ml: Fmt List Random Redistrib
