examples/cluster_speedup.mli:
