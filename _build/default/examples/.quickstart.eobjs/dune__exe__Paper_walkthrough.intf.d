examples/paper_walkthrough.mli:
