examples/quickstart.ml: Compactphy Distmat Fmt Random Ultra
