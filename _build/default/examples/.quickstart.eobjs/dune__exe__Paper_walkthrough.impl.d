examples/paper_walkthrough.ml: Cgraph Compactphy Distmat Fmt List String Ultra
