examples/redistribution_demo.mli:
