examples/cluster_speedup.ml: Clustersim Distmat Fmt List Random Seqsim
