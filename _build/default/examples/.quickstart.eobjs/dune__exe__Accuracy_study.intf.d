examples/accuracy_study.mli:
