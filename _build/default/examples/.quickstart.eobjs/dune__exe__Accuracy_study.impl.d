examples/accuracy_study.ml: Clustering Compactphy Fmt List Random Seqsim Ultra
