examples/sequences_model.mli:
