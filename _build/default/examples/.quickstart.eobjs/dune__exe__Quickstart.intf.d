examples/quickstart.mli:
