examples/mtdna_pipeline.ml: Array Bnb Clustering Compactphy Distmat Fmt Random Seqsim String Ultra
