examples/mtdna_pipeline.mli:
