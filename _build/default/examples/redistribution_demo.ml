(* The irregular-redistribution substrate (APPT 2005): build the paper's
   GEN_BLOCK example, show its messages, conflict points, and the SCPA
   schedule next to the divide-and-conquer baseline.

   Run with:  dune exec examples/redistribution_demo.exe *)

module Gen_block = Redistrib.Gen_block
module Message = Redistrib.Message
module Conflict = Redistrib.Conflict
module Schedule = Redistrib.Schedule
module Scpa = Redistrib.Scpa
module Dca = Redistrib.Dca

let show_schedule name sched =
  Fmt.pr "@.%s: %d steps, total step size %d, cost %.0f@." name
    (Schedule.n_steps sched)
    (Schedule.total_step_size sched)
    (Schedule.cost sched);
  List.iteri
    (fun i msgs ->
      Fmt.pr "  step %d: %a@." (i + 1)
        (Fmt.list ~sep:Fmt.sp Message.pp)
        msgs)
    sched

let () =
  (* The paper's Figure 1 example: 101 elements over 8 processors. *)
  let src = Gen_block.create [| 12; 20; 15; 14; 11; 9; 9; 11 |] in
  let dst = Gen_block.create [| 17; 10; 13; 6; 17; 12; 11; 15 |] in
  Fmt.pr "source:      %a@." Gen_block.pp src;
  Fmt.pr "destination: %a@." Gen_block.pp dst;

  let messages = Message.of_distributions src dst in
  Fmt.pr "@.%d messages:@.  %a@." (List.length messages)
    (Fmt.list ~sep:Fmt.sp Message.pp)
    messages;

  Fmt.pr "@.maximum degree (= minimum steps): %d@."
    (Conflict.max_degree messages);
  Fmt.pr "conflict points: %a@."
    (Fmt.list ~sep:Fmt.sp Message.pp)
    (Conflict.conflict_points messages);

  let scpa = Scpa.schedule messages in
  let dca = Dca.schedule messages in
  show_schedule "SCPA" scpa;
  show_schedule "divide-and-conquer" dca;

  (* A bigger random instance, paper-style uneven distribution. *)
  let rng = Random.State.make [| 5 |] in
  let total = 1_000_000 and procs = 16 in
  let src = Gen_block.random ~rng ~total ~procs ~lo_frac:0.3 ~hi_frac:1.5 in
  let dst = Gen_block.random ~rng ~total ~procs ~lo_frac:0.3 ~hi_frac:1.5 in
  let messages = Message.of_distributions src dst in
  Fmt.pr "@.random uneven instance (%d procs, %d messages):@." procs
    (List.length messages);
  List.iter
    (fun (name, f) ->
      let s = f messages in
      Fmt.pr "  %-20s steps %d, total step size %d@." name
        (Schedule.n_steps s)
        (Schedule.total_step_size s))
    [ ("SCPA", Scpa.schedule); ("divide-and-conquer", Dca.schedule) ]
