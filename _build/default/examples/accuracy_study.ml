(* Reconstruction-accuracy study: how close does each method's topology
   get to the TRUE clock tree, as the sequence data degrades?

   Because the simulator knows the generating tree, we can measure what
   the papers could not on real mtDNA: normalised Robinson-Foulds and
   triplet distances to the truth, for the compact-set technique and the
   classical heuristics, across sequence lengths (less data = noisier
   distance estimates).

   Run with:  dune exec examples/accuracy_study.exe *)

module Utree = Ultra.Utree
module Rf = Ultra.Rf_distance
module Triplet = Ultra.Triplet_distance
module Mtdna = Seqsim.Mtdna
module Pipeline = Compactphy.Pipeline

let methods =
  [
    ("compact", fun m -> (Pipeline.with_compact_sets m).Pipeline.tree);
    ("upgmm", Clustering.Linkage.upgmm);
    ( "upgma",
      fun m -> Utree.minimal_realization m (Clustering.Linkage.upgma m) );
    ("nj", Clustering.Nj.ultrametric_of);
  ]

let () =
  let n = 16 and datasets = 8 in
  Fmt.pr
    "Mean normalised RF distance to the true tree (%d species, %d data \
     sets per row; lower is better)@.@."
    n datasets;
  Fmt.pr "%-8s" "sites";
  List.iter (fun (name, _) -> Fmt.pr " %-10s" name) methods;
  Fmt.pr "@.";
  List.iter
    (fun sites ->
      Fmt.pr "%-8d" sites;
      let data =
        List.init datasets (fun seed ->
            Mtdna.generate
              ~rng:(Random.State.make [| 13; sites; seed |])
              ~sites n)
      in
      List.iter
        (fun (_, construct) ->
          let mean_rf =
            List.fold_left
              (fun acc d ->
                acc
                +. Rf.normalized (construct d.Mtdna.matrix) d.Mtdna.true_tree)
              0. data
            /. float_of_int datasets
          in
          Fmt.pr " %-10.3f" mean_rf)
        methods;
      Fmt.pr "@.")
    [ 100; 300; 1000; 4000 ];
  Fmt.pr
    "@.(NJ is handicapped here: its tree is unrooted and we root it at \
     its final join, which the rooted RF measure penalises.)@.";
  Fmt.pr
    "@.Same study, mean normalised triplet distance (finer-grained):@.@.";
  Fmt.pr "%-8s" "sites";
  List.iter (fun (name, _) -> Fmt.pr " %-10s" name) methods;
  Fmt.pr "@.";
  List.iter
    (fun sites ->
      Fmt.pr "%-8d" sites;
      let data =
        List.init datasets (fun seed ->
            Mtdna.generate
              ~rng:(Random.State.make [| 13; sites; seed |])
              ~sites n)
      in
      List.iter
        (fun (_, construct) ->
          let mean_t =
            List.fold_left
              (fun acc d ->
                acc
                +. Triplet.normalized (construct d.Mtdna.matrix)
                     d.Mtdna.true_tree)
              0. data
            /. float_of_int datasets
          in
          Fmt.pr " %-10.3f" mean_t)
        methods;
      Fmt.pr "@.")
    [ 100; 300; 1000; 4000 ]
