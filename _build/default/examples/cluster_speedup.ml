(* Reproduce the companion paper's cluster experiment in miniature: run
   the master/slave branch-and-bound on the simulated PC cluster with
   1 .. 16 slaves and print the speedup curve, then compare the cluster
   against a computational grid at equal node count (the NCS 2005
   question).

   Run with:  dune exec examples/cluster_speedup.exe *)

module Gen = Distmat.Gen
module Platform = Clustersim.Platform
module Dist_bnb = Clustersim.Dist_bnb

let () =
  let rng = Random.State.make [| 7 |] in
  let m = (Seqsim.Mtdna.generate ~rng 17).Seqsim.Mtdna.matrix in

  Fmt.pr "Simulated master/slave B&B, surrogate mtDNA, 17 species@.@.";
  let base = Dist_bnb.run (Platform.single ()) m in
  Fmt.pr "%-8s %-12s %-10s %-12s %s@." "slaves" "makespan(s)" "speedup"
    "expansions" "messages";
  List.iter
    (fun p ->
      let r = Dist_bnb.run (Platform.cluster p) m in
      Fmt.pr "%-8d %-12.4f %-10.2f %-12d %d@." p r.Dist_bnb.makespan
        (base.Dist_bnb.makespan /. r.Dist_bnb.makespan)
        r.Dist_bnb.expansions r.Dist_bnb.messages)
    [ 1; 2; 4; 8; 16 ];

  Fmt.pr "@.Cluster vs grid at 16 nodes (and a 24-node grid):@.";
  let platforms =
    [
      ("cluster-16", Platform.cluster 16);
      ("grid-16", Platform.grid ~sites:[ (12, 2_900.); (4, 2_400.) ]);
      ("grid-24", Platform.grid ~sites:[ (12, 2_900.); (12, 2_400.) ]);
    ]
  in
  List.iter
    (fun (name, p) ->
      let r = Dist_bnb.run p m in
      Fmt.pr "%-12s makespan %.4f s (cost %.2f)@." name r.Dist_bnb.makespan
        r.Dist_bnb.cost)
    platforms
