(* The papers' "sequences model", end to end: unaligned DNA (with real
   indels) -> progressive multiple alignment -> corrected distance
   matrix -> compact-set ultrametric tree -> bootstrap support values.

   Run with:  dune exec examples/sequences_model.exe *)

module Dna = Seqsim.Dna
module Msa = Align.Msa
module Gapped = Align.Gapped
module Utree = Ultra.Utree
module Pipeline = Compactphy.Pipeline

let () =
  let n = 10 in
  let rng = Random.State.make [| 1977 |] in
  Fmt.pr "Evolving %d sequences with substitutions AND indels...@." n;
  let truth = Seqsim.Clock_tree.coalescent ~rng n in
  let seqs =
    Seqsim.Evolve.sequences_with_indels ~rng ~mu:0.15 ~indel_rate:0.02
      ~sites:300 truth
  in
  Array.iteri
    (fun i s -> Fmt.pr "  s%-3d %d bases@." i (Array.length s))
    seqs;

  Fmt.pr "@.Progressive multiple alignment (guide tree + profiles):@.@.";
  let msa = Msa.align seqs in
  Fmt.pr "%a" Msa.pp msa;
  Fmt.pr "alignment width: %d columns@." (Msa.width msa);

  let matrix = Msa.distance_matrix msa in
  Fmt.pr "@.Distances estimated from the alignment; constructing tree...@.";
  let r = Pipeline.with_compact_sets matrix in
  Fmt.pr "compact-set tree, cost %.2f:@.@.%s@." r.Pipeline.cost
    (Ultra.Render.to_ascii r.Pipeline.tree);
  Fmt.pr "normalised RF distance to the true clock tree: %.2f@."
    (Ultra.Rf_distance.normalized r.Pipeline.tree truth);

  (* Bootstrap: how solid is each clade?  (Resampling needs equal-length
     rows, which the alignment provides — we resample its gap-free
     projection per replicate via the aligned rows' bases.) *)
  Fmt.pr "@.Bootstrap support (50 replicates over alignment columns):@.";
  let aligned_as_dna =
    (* Treat gaps as a uniformly random base per row to keep columns
       resampleable; crude but standard quick-and-dirty practice. *)
    Array.map
      (fun row ->
        Array.map
          (function
            | Gapped.Base b -> b
            | Gapped.Gap -> Dna.A)
          row)
      msa.Msa.rows
  in
  let support =
    Seqsim.Bootstrap.support ~rng ~replicates:50
      ~construct:(fun m -> (Pipeline.with_compact_sets m).Pipeline.tree)
      ~reference:r.Pipeline.tree aligned_as_dna
  in
  List.iter
    (fun (clade, s) ->
      Fmt.pr "  {%s}: %.0f%%@."
        (String.concat "," (List.map string_of_int clade))
        (100. *. s))
    support
