(* Quickstart: construct a near-optimal ultrametric tree from a distance
   matrix with the paper's compact-set technique, and compare it with the
   exact branch-and-bound.

   Run with:  dune exec examples/quickstart.exe *)

module Gen = Distmat.Gen
module Utree = Ultra.Utree
module Newick = Ultra.Newick
module Pipeline = Compactphy.Pipeline

let () =
  (* 1. A distance matrix.  Here: a random matrix over 14 species; in
     real use, read one with Distmat.Matrix_io.of_phylip. *)
  let rng = Random.State.make [| 2005 |] in
  let matrix = Gen.near_ultrametric ~rng ~noise:0.25 14 in

  (* 2. The paper's fast construction: find compact sets, solve each
     small matrix exactly, graft the results. *)
  let fast = Pipeline.with_compact_sets matrix in
  Fmt.pr "compact-set tree : cost %-10.4f (%d blocks, largest %d, %.4f s)@."
    fast.Pipeline.cost fast.Pipeline.n_blocks fast.Pipeline.largest_block
    fast.Pipeline.elapsed_s;

  (* 3. The exact minimum ultrametric tree, for reference. *)
  let exact = Pipeline.exact matrix in
  Fmt.pr "exact MUT        : cost %-10.4f (%.4f s)@." exact.Pipeline.cost
    exact.Pipeline.elapsed_s;
  Fmt.pr "cost gap         : %.3f %%@."
    ((fast.Pipeline.cost -. exact.Pipeline.cost)
    /. exact.Pipeline.cost *. 100.);

  (* 4. Trees print as Newick. *)
  Fmt.pr "@.compact-set tree in Newick:@.%s@."
    (Newick.to_string fast.Pipeline.tree)
