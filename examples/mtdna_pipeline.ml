(* The full mitochondrial-DNA style pipeline the papers motivate:
   simulate clock-like sequences, estimate a distance matrix from them,
   construct the ultrametric tree with compact sets, and check the result
   against both the exact optimum and the true (generating) tree.

   Run with:  dune exec examples/mtdna_pipeline.exe *)

module Dist_matrix = Distmat.Dist_matrix
module Utree = Ultra.Utree
module Newick = Ultra.Newick
module Rf = Ultra.Rf_distance
module Mtdna = Seqsim.Mtdna
module Dna = Seqsim.Dna
module Solver = Bnb.Solver
module Pipeline = Compactphy.Pipeline
module Relation33 = Bnb.Relation33

let () =
  let n = 22 in
  let rng = Random.State.make [| 1999 |] in
  Fmt.pr "Simulating %d mitochondrial control-region sequences...@." n;
  let d = Mtdna.generate ~rng ~sites:800 n in

  Fmt.pr "first 60 bases of species 0: %s...@."
    (String.sub (Dna.to_string d.Mtdna.sequences.(0)) 0 60);
  Fmt.pr "matrix: %d species, max distance %.2f@."
    (Dist_matrix.size d.Mtdna.matrix)
    (Dist_matrix.max_entry d.Mtdna.matrix);

  (* The fast construction. *)
  let fast = Pipeline.with_compact_sets d.Mtdna.matrix in
  Fmt.pr "@.compact-set tree: cost %.4f in %.4f s (%d blocks, largest %d)@."
    fast.Pipeline.cost fast.Pipeline.elapsed_s fast.Pipeline.n_blocks
    fast.Pipeline.largest_block;

  (* Exact search with a budget: at 22 species this can take a while, so
     cap it like a practitioner would. *)
  let options =
    { Solver.default_options with max_expanded = Some 500_000 }
  in
  let exact =
    Pipeline.exact
      ~config:Compactphy.Run_config.(default |> with_solver options)
      d.Mtdna.matrix
  in
  Fmt.pr "exact search:     cost %.4f in %.4f s (%s)@." exact.Pipeline.cost
    exact.Pipeline.elapsed_s
    (if exact.Pipeline.optimal then "proved optimal" else "budget-capped");
  Fmt.pr "cost gap:         %.3f %%@."
    ((fast.Pipeline.cost -. exact.Pipeline.cost)
    /. exact.Pipeline.cost *. 100.);

  (* How close is the reconstructed topology to the truth? *)
  Fmt.pr "@.Robinson-Foulds distance to the true clock tree:@.";
  Fmt.pr "  compact-set tree: %.2f (normalised)@."
    (Rf.normalized fast.Pipeline.tree d.Mtdna.true_tree);
  Fmt.pr "  budget-capped exact: %.2f (normalised)@."
    (Rf.normalized exact.Pipeline.tree d.Mtdna.true_tree);

  (* Fan's 3-3 contradiction measure (companion paper, Section 2). *)
  Fmt.pr "@.3-3 contradictions against the matrix:@.";
  Fmt.pr "  compact-set tree: %d@."
    (Relation33.count_contradictions d.Mtdna.matrix fast.Pipeline.tree);
  Fmt.pr "  UPGMM heuristic:  %d@."
    (Relation33.count_contradictions d.Mtdna.matrix
       (Clustering.Linkage.upgmm d.Mtdna.matrix));

  Fmt.pr "@.Newick: %s@." (Newick.to_string fast.Pipeline.tree)
