(** Pluggable search strategies for the branch-and-bound solvers.

    Two orthogonal choices (see the {{!page-strategies} strategy guide}
    for when to pick what):

    - {!exploration} — which open node is expanded next.  The open list
      lives behind {!Frontier}, so the sequential solver, the parallel
      workers and checkpoint resume all honour the same choice.
    - {!branching} — how a node's children are ordered before being
      pushed, i.e. which insertion a DFS dive commits to first.

    The defaults ([Dfs], [Paper_order]) reproduce the papers' search
    bit for bit. *)

type exploration =
  | Dfs
      (** depth-first via a stack — the papers' strategy, constant
          memory per level *)
  | Best_first
      (** always expand the open node of least lower bound, via a
          binary min-heap — fewer expansions, potentially exponential
          memory *)
  | Hybrid
      (** DFS dive to a complete tree (cheap incumbents early), then
          continue from the globally best open node — dive-and-jump *)

type branching =
  | Paper_order  (** children in ascending-LB order, as published *)
  | Largest_first
      (** root-nearest insertions first: commit to the coarse tree
          shape (the largest subtree splits) before leaf placements *)
  | Residual_lb
      (** descending LB: probe the largest residual bound increase
          first — anti-greedy, front-loads pruning of expensive
          subtrees *)

val exploration_to_string : exploration -> string
val exploration_of_string : string -> exploration option
(** Accepts ["dfs"], ["best_first"] (or ["best-first"]), ["hybrid"]. *)

val branching_to_string : branching -> string
val branching_of_string : string -> branching option
(** Accepts ["paper_order"]/["paper"], ["largest_first"]/["largest"],
    ["residual_lb"]/["residual"]. *)

val order_children :
  branching -> inserted:int -> Bb_tree.node list -> Bb_tree.node list
(** Reorder a node's children (handed in ascending-LB order, the
    solver's invariant) according to the branching strategy; [inserted]
    is the label of the species the expansion just placed.
    [Paper_order] returns the list physically unchanged. *)

(** Binary min-heap on the lower bound — the best-first open list.
    Exposed for the parallel solver's ordered work stealing. *)
module Heap : sig
  type t

  val create : unit -> t
  val length : t -> int
  val push : t -> Bb_tree.node -> unit

  val pop : t -> Bb_tree.node option
  (** Least lower bound first. *)

  val take_max : t -> Bb_tree.node option
  (** Remove the entry of {e largest} lower bound (linear scan) — what a
      worker donates when the shared pool runs dry. *)
end

(** The open list behind one strategy-selected interface.  Not
    thread-safe: each solver (or parallel worker) owns its frontier. *)
module Frontier : sig
  type t

  val create : exploration -> t

  val push : t -> Bb_tree.node -> unit
  (** Callers push children worst-bound first (the historical stack
      discipline), so under [Hybrid] the last-pushed — best — child
      stays in the dive register and its siblings spill to the heap. *)

  val pop : t -> Bb_tree.node option
  (** [Dfs]: last pushed.  [Best_first]: least lower bound.  [Hybrid]:
      the dive register if occupied, else the least open bound. *)

  val length : t -> int

  val drain : t -> Bb_tree.node list
  (** Remaining open nodes in pop order, emptying the frontier. *)

  val take_worst : t -> Bb_tree.node option
  (** Remove the open node of worst (largest) lower bound — the
      donation pick for two-level load balancing.  For [Dfs] this is
      the bottom of the stack, exactly the pre-strategy behaviour. *)
end
