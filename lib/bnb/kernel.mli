open Import

(** Incremental hot-path kernels for the branch-and-bound inner loop.

    The reference expansion ({!Bb_tree.branch}) materialises all
    [2k - 1] candidate insertions as full minimal realizations and
    reweighs each with {!Ultra.Utree.weight} — [O(k)] tree allocation
    plus [O(k)] summing per candidate, [O(k^2)] per expansion, even for
    children the caller immediately prunes against the incumbent.

    This module scores every candidate first, in one [O(k)]-ish pass
    over the partial tree using [Array.unsafe_get] reads of the flat
    matrix (validated once in {!prepare}), and only materialises the
    candidates whose score-based lower bound stays under the caller's
    pruning threshold.  The scoring delta is a true lower bound on the
    exact cost delta while it accumulates, and is accurate to float
    rounding once complete, so with a small safety margin on the
    threshold the surviving set is a superset of what exact bounds keep
    — the solver re-checks survivors with their exact (bit-identical)
    costs, making the search observably identical to the reference
    path.  See {!Solver.expand}. *)

type kind =
  | Reference
      (** realise all [2k - 1] children, then bound — the seed
          behaviour, kept as the differential-testing baseline *)
  | Incremental
      (** score first, realise only un-pruned children (this module) *)

val kind_to_string : kind -> string

val kind_of_string : string -> kind option
(** Inverse of {!kind_to_string}; [None] on unknown names. *)

type t
(** Per-problem kernel state: the validated flat backing store of the
    (permuted) matrix plus the per-species row minima, computed once. *)

val prepare : Dist_matrix.t -> t
(** Validate and capture the matrix for unsafe access.  The row minima
    are computed here in one pass and shared between the LB1 suffix
    bounds ({!Bb_tree.suffix_of_minima}) and any kernel heuristics.
    @raise Invalid_argument if the backing store is inconsistent. *)

val row_minima : t -> float array
(** [min_{j <> i} D(i, j)] per species ([0.]s for a 1x1 matrix). *)

val size : t -> int

val insertions : t -> Utree.t -> int -> dthr:float -> Utree.t list * int
(** [insertions k t sp ~dthr] scores all [2k - 1] insertions of species
    [sp] into [t] and returns [(survivors, dropped)]: the candidates
    whose cost delta lower bound stayed below [dthr], as minimal
    realizations bit-identical to the corresponding
    {!Bb_tree.insertions} results (same order), plus the number of
    candidates dropped.  [dthr] is a {e delta} threshold: the caller
    subtracts the parent's cost and the LB increment from its pruning
    bound (with a safety margin for float drift) before calling.
    [dthr = infinity] keeps everything. *)
