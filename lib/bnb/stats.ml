type t = {
  mutable expanded : int;
  mutable generated : int;
  mutable pruned : int;
  mutable pruned_33 : int;
  mutable ub_updates : int;
  mutable max_open : int;
  att : Obs.Attribution.cells;
}

let create () =
  {
    expanded = 0;
    generated = 0;
    pruned = 0;
    pruned_33 = 0;
    ub_updates = 0;
    max_open = 0;
    att = Obs.Attribution.cells ();
  }

(* All counters are sums — except [max_open], which is a per-run
   high-water mark and therefore combines by MAX.  The result is the
   largest open list any single accumulated run saw, not the open-list
   peak of a hypothetical combined run; summing it would double-count
   when accumulating sequential per-block runs (Pipeline) just as much
   as concurrent per-worker runs (Par_bnb). *)
let add acc s =
  assert (s.expanded >= 0 && s.generated >= 0 && s.pruned >= 0);
  acc.expanded <- acc.expanded + s.expanded;
  acc.generated <- acc.generated + s.generated;
  acc.pruned <- acc.pruned + s.pruned;
  acc.pruned_33 <- acc.pruned_33 + s.pruned_33;
  acc.ub_updates <- acc.ub_updates + s.ub_updates;
  acc.max_open <- Int.max acc.max_open s.max_open;
  Obs.Attribution.add_cells acc.att s.att

let pp ppf s =
  Format.fprintf ppf
    "expanded=%d generated=%d pruned=%d pruned33=%d ub_updates=%d max_open=%d"
    s.expanded s.generated s.pruned s.pruned_33 s.ub_updates s.max_open

let to_json s =
  Obs.Json.Obj
    [
      ("expanded", Obs.Json.Int s.expanded);
      ("generated", Obs.Json.Int s.generated);
      ("pruned", Obs.Json.Int s.pruned);
      ("pruned_33", Obs.Json.Int s.pruned_33);
      ("ub_updates", Obs.Json.Int s.ub_updates);
      ("max_open", Obs.Json.Int s.max_open);
      ( "pruned_by_reason",
        Obs.Json.Obj
          (List.map
             (fun r ->
               ( Obs.Attribution.reason_to_string r,
                 Obs.Json.Int (Obs.Attribution.total s.att r) ))
             Obs.Attribution.reasons) );
    ]

let pp_json ppf s = Format.pp_print_string ppf (Obs.Json.to_string (to_json s))
