open Import

type kind = Reference | Incremental

let kind_to_string = function
  | Reference -> "reference"
  | Incremental -> "incremental"

let kind_of_string = function
  | "reference" -> Some Reference
  | "incremental" -> Some Incremental
  | _ -> None

type t = {
  data : float array;  (* backing store of the prepared matrix *)
  n : int;
  row_min : float array;  (* min_{j<>i} D(i,j), one pass at prepare *)
}

let prepare dm =
  let n = Dist_matrix.size dm in
  let data = Dist_matrix.unsafe_data dm in
  (* The only validation the unsafe reads below rely on: the backing
     store really is n*n, so every (leaf * n + sp) offset produced from
     in-range species labels is in range. *)
  if Array.length data <> n * n then
    invalid_arg "Kernel.prepare: corrupt matrix backing store";
  let row_min =
    if n < 2 then Array.make n 0. else Dist_matrix.row_minima dm
  in
  { data; n; row_min }

let row_minima k = k.row_min
let size k = k.n

(* Incremental insertion scoring.

   Inserting species [sp] above position [p] of the minimal realization
   [t] changes the weight by a closed-form delta, derived from
   [weight = sum over internal nodes of (2h - h_left - h_right)]:

     delta(p) = h'(p) + sum over proper ancestors a of p of d(a)
                      + d(root)                     (the root counts twice:
                                                     it has no parent edge
                                                     to absorb its raise)

   where [M(x) = max over leaves l of x of D(sp, l)],
   [h'(x) = max (height x) (M(x) / 2)] (the raised height, which for the
   new node above [p] is also its height) and [d(x) = h'(x) - height x].
   For the insertion above the root the same bookkeeping yields
   [2 h'(root) - height root = h'(root) + d(root)].

   All increments are non-negative, so the partial delta accumulated on
   the way up is a lower bound on the final delta: a candidate whose
   partial-score lower bound already clears the caller's threshold can
   be dropped without ever materialising its tree.  Surviving candidates
   are built with exactly the [Bb_tree.insertions] recursion — same
   float operations, same sharing, same list order — so their trees,
   and therefore their [Utree.weight] costs, are bit-identical to the
   reference path's. *)

let insertions k tree sp ~dthr =
  let data = k.data and n = k.n in
  let base = sp * n in
  let sp_leaf = Utree.Leaf sp in
  let dropped = ref 0 in
  (* Each live candidate is (delta accumulated so far, partially built
     tree).  A candidate whose partial score reaches [dthr] is dropped
     on the spot — scores only grow on the way up, so it can never
     revive, and removing it immediately keeps every ancestor's list
     (and allocation) proportional to the surviving set. *)
  let rec go t =
    match t with
    | Utree.Leaf i ->
        let d = Array.unsafe_get data (base + i) in
        let h = d /. 2. in
        let cands =
          if h >= dthr then begin
            incr dropped;
            []
          end
          else [ (h, Utree.Node { height = h; left = t; right = sp_leaf }) ]
        in
        (cands, d)
    | Utree.Node nd ->
        let lc, lmax = go nd.left in
        let rc, rmax = go nd.right in
        let maxd = Float.max lmax rmax in
        let h' = Float.max nd.height (maxd /. 2.) in
        let delta = h' -. nd.height in
        let lift wrap (d0, sub) acc =
          let d = d0 +. delta in
          if d >= dthr then begin
            incr dropped;
            acc
          end
          else (d, wrap sub) :: acc
        in
        let wl sub = Utree.Node { height = h'; left = sub; right = nd.right } in
        let wr sub = Utree.Node { height = h'; left = nd.left; right = sub } in
        (* Reference candidate order is [here :: rev lc' @ rc']: build
           the right side in order, then fold the left side on top
           reversed — [rev_append] with the drops filtered out. *)
        let below = List.fold_right (lift wr) rc [] in
        let below = List.fold_left (fun acc c -> lift wl c acc) below lc in
        let cands =
          if h' >= dthr then begin
            incr dropped;
            below
          end
          else (h', Utree.Node { height = h'; left = t; right = sp_leaf }) :: below
        in
        (cands, maxd)
  in
  let cands, maxd = go tree in
  (* Second helping of the root's raise (no parent edge above it). *)
  let droot = Float.max (Utree.height tree) (maxd /. 2.) -. Utree.height tree in
  let survivors =
    List.filter_map
      (fun (d, sub) ->
        if d +. droot < dthr then Some sub
        else begin
          incr dropped;
          None
        end)
      cands
  in
  (survivors, !dropped)
