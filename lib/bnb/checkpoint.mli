open Import

(** Durable snapshots of an interrupted anytime search.

    A checkpoint freezes everything a budgeted run needs to continue
    later: per block (one block for a plain exact solve, one per
    compact-set block for the pipeline), the best tree found so far and
    the open frontier of partial trees.  Costs, bounds and permutations
    are {e not} stored — they are recomputed from the trees and the
    matrix on resume, so a resumed search is exactly as precise as an
    uninterrupted one.  Heights are serialised as hexadecimal float
    literals ([%h]), which round-trip bit-exactly through the JSON
    text; the matrix itself is pinned by a digest so a checkpoint can
    never silently resume against different data.

    The file format is a single JSON document (see {!to_json});
    [format]/[version] fields make future migrations detectable. *)

type block = {
  b_id : int;  (** block id: decomposition block id, or [0] for exact *)
  b_solved : bool;  (** this block's search ran to completion *)
  b_tree : Utree.t option;
      (** best tree so far in the block's local species labels ([None]
          only if no complete tree existed when interrupted) *)
  b_frontier : Utree.t list;
      (** open partial trees (local labels, exploration order); empty
          when [b_solved] *)
}

type t = {
  version : int;
  n : int;  (** species count of the source matrix *)
  digest : string;  (** {!digest_matrix} of the source matrix *)
  status : Budget.status;  (** why the run stopped *)
  cost : float;  (** incumbent cost when the snapshot was taken *)
  lower_bound : float;  (** certified global lower bound at snapshot *)
  blocks : block list;
}

val version : int
(** Current format version (1). *)

val digest_matrix : Dist_matrix.t -> string
(** Content digest of a distance matrix (size and every entry, at full
    float precision). *)

val make :
  matrix:Dist_matrix.t ->
  status:Budget.status ->
  cost:float ->
  lower_bound:float ->
  blocks:block list ->
  t

val make_block :
  id:int ->
  matrix:Dist_matrix.t ->
  solved:bool ->
  tree:Utree.t option ->
  frontier:Bb_tree.node list ->
  block
(** Package one (sub-)search's state.  [matrix] is the {e block-local}
    matrix the search ran on; [frontier] comes straight from the solver
    outcome (permuted labels) and is mapped back to local labels via
    the matrix's maxmin permutation. *)

val resume_of_block :
  matrix:Dist_matrix.t -> block -> [ `Solved of Utree.t | `Restart of Solver.resume ]
(** Turn a stored block back into solver input against the same
    block-local [matrix]: either the finished tree, or a
    {!Solver.resume} with the frontier re-mapped into permuted labels. *)

val find_block : t -> int -> block option

(** {2 Persistence} *)

val tree_to_json : Utree.t -> Obs.Json.t
(** One tree as JSON, heights as bit-exact [%h] hex-float literals —
    the encoding checkpoints use, shared with the executor wire
    protocol. *)

val tree_of_json : Obs.Json.t -> (Utree.t, string) result
(** Inverse of {!tree_to_json}. *)

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result

val save : string -> t -> unit
(** Write as a JSON file (truncating). *)

val load : string -> (t, string) result
(** Parse a checkpoint file; [Error] covers IO failures, JSON syntax
    errors and schema violations, with a human-readable reason. *)

val verify : t -> Dist_matrix.t -> (unit, string) result
(** Check the checkpoint belongs to [matrix] (size and digest). *)
