open Import

(* Pluggable search strategies: how the open list is ordered
   (exploration) and how a node's children are ordered before being
   pushed (branching).  The solver and the parallel workers both drive
   their open lists through [Frontier], so the strategies compose with
   budgets, checkpoints and work stealing unchanged. *)

type exploration = Dfs | Best_first | Hybrid
type branching = Paper_order | Largest_first | Residual_lb

let exploration_to_string = function
  | Dfs -> "dfs"
  | Best_first -> "best_first"
  | Hybrid -> "hybrid"

let exploration_of_string = function
  | "dfs" -> Some Dfs
  | "best_first" | "best-first" -> Some Best_first
  | "hybrid" -> Some Hybrid
  | _ -> None

let branching_to_string = function
  | Paper_order -> "paper_order"
  | Largest_first -> "largest_first"
  | Residual_lb -> "residual_lb"

let branching_of_string = function
  | "paper_order" | "paper" -> Some Paper_order
  | "largest_first" | "largest" -> Some Largest_first
  | "residual_lb" | "residual" -> Some Residual_lb
  | _ -> None

(* --- branching: child ordering --- *)

(* Depth of the leaf labelled [label]; the just-inserted species sits at
   depth 1 when the insertion split the root edge (the largest possible
   sibling subtree) and deeper as the insertion point moves down. *)
let rec leaf_depth label t =
  match t with
  | Utree.Leaf i -> if i = label then Some 0 else None
  | Utree.Node n -> (
      match leaf_depth label n.left with
      | Some d -> Some (d + 1)
      | None -> (
          match leaf_depth label n.right with
          | Some d -> Some (d + 1)
          | None -> None))

let order_children branching ~inserted children =
  match branching with
  | Paper_order ->
      (* The papers' order, untouched: callers hand children sorted by
         ascending lower bound and that list is returned as-is, so the
         default strategy is bit-identical to the historical search. *)
      children
  | Largest_first ->
      (* Insertions nearest the root first: they split the largest
         subtrees, so a DFS dive commits to the coarse shape of the tree
         before refining leaf-level placements.  Ties keep the incoming
         ascending-LB order. *)
      let depth (c : Bb_tree.node) =
        match leaf_depth inserted c.Bb_tree.tree with
        | Some d -> d
        | None -> max_int
      in
      List.stable_sort (fun a b -> compare (depth a) (depth b)) children
  | Residual_lb ->
      (* Descending lower bound: probe the child with the largest
         residual bound increase first.  Anti-greedy — the expensive
         subtrees are visited (and usually pruned) while the incumbent
         is still loose, which front-loads the certified-gap tightening
         of [collect_all] and gap-tolerance sweeps. *)
      List.stable_sort
        (fun (a : Bb_tree.node) (b : Bb_tree.node) ->
          Float.compare b.Bb_tree.lb a.Bb_tree.lb)
        children

(* --- binary min-heap on the lower bound --- *)

module Heap = struct
  type t = { mutable a : Bb_tree.node array; mutable size : int }

  let dummy : Bb_tree.node =
    { tree = Utree.Leaf 0; k = 0; cost = 0.; lb = 0. }

  let create () = { a = Array.make 64 dummy; size = 0 }
  let length h = h.size

  let swap h i j =
    let x = h.a.(i) in
    h.a.(i) <- h.a.(j);
    h.a.(j) <- x

  let rec sift_up h i =
    let parent = (i - 1) / 2 in
    if i > 0 && h.a.(i).Bb_tree.lb < h.a.(parent).Bb_tree.lb then begin
      swap h i parent;
      sift_up h parent
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.size && h.a.(l).Bb_tree.lb < h.a.(!smallest).Bb_tree.lb then
      smallest := l;
    if r < h.size && h.a.(r).Bb_tree.lb < h.a.(!smallest).Bb_tree.lb then
      smallest := r;
    if !smallest <> i then begin
      swap h i !smallest;
      sift_down h !smallest
    end

  let push h node =
    if h.size = Array.length h.a then begin
      let bigger = Array.make (2 * h.size) dummy in
      Array.blit h.a 0 bigger 0 h.size;
      h.a <- bigger
    end;
    h.a.(h.size) <- node;
    h.size <- h.size + 1;
    sift_up h (h.size - 1)

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.a.(0) in
      h.size <- h.size - 1;
      h.a.(0) <- h.a.(h.size);
      h.a.(h.size) <- dummy;
      sift_down h 0;
      Some top
    end

  (* Remove the entry of largest lower bound — the node worth donating
     to a dry shared pool.  Linear scan; donation is rare and the local
     heap small compared to the search, so O(n) here never shows. *)
  let take_max h =
    if h.size = 0 then None
    else begin
      let mi = ref 0 in
      for i = 1 to h.size - 1 do
        if h.a.(i).Bb_tree.lb > h.a.(!mi).Bb_tree.lb then mi := i
      done;
      let node = h.a.(!mi) in
      h.size <- h.size - 1;
      h.a.(!mi) <- h.a.(h.size);
      h.a.(h.size) <- dummy;
      if !mi < h.size then begin
        sift_down h !mi;
        sift_up h !mi
      end;
      Some node
    end
end

(* --- the open list, behind one strategy-selected interface --- *)

module Frontier = struct
  type t =
    | Stack of Bb_tree.node list ref
    | Best of Heap.t
    | Hyb of { mutable dive : Bb_tree.node option; heap : Heap.t }
        (* [dive] is a one-slot register: each push evicts the previous
           occupant to the heap, so after a node's children are pushed
           (worst first, best last — see the solver loop) the register
           holds the best child and the heap its siblings.  Popping the
           register continues the DFS dive; when the dive dies out the
           globally best open node is popped instead. *)

  let create = function
    | Dfs -> Stack (ref [])
    | Best_first -> Best (Heap.create ())
    | Hybrid -> Hyb { dive = None; heap = Heap.create () }

  let push t node =
    match t with
    | Stack s -> s := node :: !s
    | Best h -> Heap.push h node
    | Hyb f ->
        (match f.dive with
        | Some prev -> Heap.push f.heap prev
        | None -> ());
        f.dive <- Some node

  let pop t =
    match t with
    | Stack s -> (
        match !s with
        | [] -> None
        | x :: rest ->
            s := rest;
            Some x)
    | Best h -> Heap.pop h
    | Hyb f -> (
        match f.dive with
        | Some n ->
            f.dive <- None;
            Some n
        | None -> Heap.pop f.heap)

  let length = function
    | Stack s -> List.length !s
    | Best h -> Heap.length h
    | Hyb f -> (match f.dive with Some _ -> 1 | None -> 0) + Heap.length f.heap

  (* Remaining open nodes in pop order, emptying the frontier — an
     interrupted worker's frontier share.  For [Dfs] this is exactly the
     historical stack contents. *)
  let drain t =
    let rec go acc = match pop t with None -> List.rev acc | Some n -> go (n :: acc) in
    go []

  (* The node a worker parts with when the shared pool runs dry: its
     worst open bound.  For the historical DFS list that is the deepest-
     queued node (the bottom of the stack), preserving the pre-strategy
     donation behaviour bit for bit. *)
  let take_worst t =
    match t with
    | Stack s -> (
        match List.rev !s with
        | [] -> None
        | worst :: rest_rev ->
            s := List.rev rest_rev;
            Some worst)
    | Best h -> Heap.take_max h
    | Hyb f -> (
        match Heap.take_max f.heap with
        | Some _ as n -> n
        | None ->
            let n = f.dive in
            f.dive <- None;
            n)
end
