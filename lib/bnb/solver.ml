open Import

let src = Logs.Src.create "compactphy.solver" ~doc:"Sequential branch-and-bound"

module Log = (val Logs.src_log src : Logs.LOG)

(* Cumulative process-wide metrics (see Obs.Metrics).  Counters are
   flushed once per solve from the run's Stats — zero cost in the inner
   loop; the histograms record the per-solve distribution. *)
module M = struct
  let solves = lazy (Obs.Metrics.counter "bnb.solves")
  let expanded = lazy (Obs.Metrics.counter "bnb.expanded")
  let generated = lazy (Obs.Metrics.counter "bnb.generated")
  let pruned = lazy (Obs.Metrics.counter "bnb.pruned")
  let pruned_33 = lazy (Obs.Metrics.counter "bnb.pruned_33")
  let ub_updates = lazy (Obs.Metrics.counter "bnb.ub_updates")
  let expanded_per_solve = lazy (Obs.Metrics.histogram "bnb.expanded_per_solve")
  let solve_ms = lazy (Obs.Metrics.histogram "bnb.solve_ms")
  let max_open = lazy (Obs.Metrics.histogram "bnb.max_open_per_solve")

  let pruned_by_reason =
    lazy
      (List.map
         (fun r ->
           ( r,
             Obs.Metrics.counter
               ("bnb.pruned." ^ Obs.Attribution.reason_to_string r) ))
         Obs.Attribution.reasons)

  (* Last values already pushed to the counters for the current solve.
     Mid-run scrapes of /metrics would otherwise see nothing until the
     block finishes; a [live] record lets the solve flush {e deltas}
     whenever a telemetry heartbeat fires, and the final [flush] adds
     only the residue through the same path — totals come out identical
     whether zero or many live flushes happened in between. *)
  type live = {
    mutable l_expanded : int;
    mutable l_generated : int;
    mutable l_pruned : int;
    mutable l_pruned_33 : int;
    mutable l_ub_updates : int;
    l_reason : int array;
  }

  let live () =
    {
      l_expanded = 0;
      l_generated = 0;
      l_pruned = 0;
      l_pruned_33 = 0;
      l_ub_updates = 0;
      l_reason = Array.make (List.length Obs.Attribution.reasons) 0;
    }

  let flush_live lv (stats : Stats.t) =
    let bump c v last =
      if v > last then Obs.Metrics.add (Lazy.force c) (v - last);
      v
    in
    lv.l_expanded <- bump expanded stats.Stats.expanded lv.l_expanded;
    lv.l_generated <- bump generated stats.Stats.generated lv.l_generated;
    lv.l_pruned <- bump pruned stats.Stats.pruned lv.l_pruned;
    lv.l_pruned_33 <- bump pruned_33 stats.Stats.pruned_33 lv.l_pruned_33;
    lv.l_ub_updates <- bump ub_updates stats.Stats.ub_updates lv.l_ub_updates;
    List.iteri
      (fun i (r, c) ->
        let v = Obs.Attribution.total stats.Stats.att r in
        if v > lv.l_reason.(i) then Obs.Metrics.add c (v - lv.l_reason.(i));
        lv.l_reason.(i) <- v)
      (Lazy.force pruned_by_reason)

  let flush lv (stats : Stats.t) elapsed_s =
    Obs.Metrics.incr (Lazy.force solves);
    flush_live lv stats;
    Obs.Metrics.observe
      (Lazy.force expanded_per_solve)
      (float_of_int stats.Stats.expanded);
    Obs.Metrics.observe (Lazy.force max_open)
      (float_of_int stats.Stats.max_open);
    Obs.Metrics.observe (Lazy.force solve_ms) (elapsed_s *. 1e3);
    Obs.Attribution.flush stats.Stats.att
end

type lb_kind = LB0 | LB1
type mode33 = Off | Third_only | Every_insertion
type initial_ub = Upgmm_ub | Upgma_ub | Nj_ub | No_heuristic_ub
type search_order = Strategy.exploration = Dfs | Best_first | Hybrid
type branch_order = Strategy.branching = Paper_order | Largest_first | Residual_lb

type kernel_kind = Kernel.kind = Reference | Incremental

type options = {
  lb : lb_kind;
  relation33 : mode33;
  initial_ub : initial_ub;
  max_expanded : int option;
  search : search_order;
  branching : branch_order;
  gap : float;
  collect_all : bool;
  kernel : kernel_kind;
}

let default_options =
  {
    lb = LB1;
    relation33 = Off;
    initial_ub = Upgmm_ub;
    max_expanded = None;
    search = Dfs;
    branching = Paper_order;
    gap = 0.;
    collect_all = false;
    kernel = Incremental;
  }

let options ?(lb = default_options.lb)
    ?(relation33 = default_options.relation33)
    ?(initial_ub = default_options.initial_ub) ?max_expanded
    ?(search = default_options.search)
    ?(branching = default_options.branching) ?(gap = default_options.gap)
    ?(collect_all = default_options.collect_all)
    ?(kernel = default_options.kernel) () =
  (match max_expanded with
  | Some cap when cap <= 0 ->
      invalid_arg
        (Printf.sprintf "Solver.options: max_expanded = %d (must be > 0)" cap)
  | Some _ | None -> ());
  if not (gap >= 0. && Float.is_finite gap) then
    invalid_arg
      (Printf.sprintf "Solver.options: gap = %g (must be >= 0 and finite)" gap);
  { lb; relation33; initial_ub; max_expanded; search; branching; gap;
    collect_all; kernel }

type outcome = {
  tree : Utree.t;
  cost : float;
  optimal : bool;
  all_optimal : Utree.t list;
  stats : Stats.t;
  status : Budget.status;
  lower_bound : float;
  certified_gap : float;
  frontier : Bb_tree.node list;
}

type resume = {
  r_frontier : (int * Utree.t) list;
  r_ub : float;
  r_incumbent : Utree.t option;
}

type problem = {
  pm : Dist_matrix.t;
  perm : Permutation.t;
  lb_extra : float array;
  ub0 : float;
  incumbent0 : Utree.t option;
  opts : options;
  kstate : Kernel.t;
}

let prepare ?(options = default_options) dm =
  let perm = Permutation.maxmin dm in
  let pm = Permutation.apply dm perm in
  let n = Dist_matrix.size pm in
  let kstate = Kernel.prepare pm in
  let lb_extra =
    match options.lb with
    | LB0 -> Array.make (n + 1) 0.
    | LB1 -> Bb_tree.suffix_of_minima (Kernel.row_minima kstate)
  in
  let heuristic_tree =
    match options.initial_ub with
    | Upgmm_ub -> Some (Linkage.upgmm pm)
    | Upgma_ub -> Some (Utree.minimal_realization pm (Linkage.upgma pm))
    | Nj_ub -> Some (Nj.ultrametric_of pm)
    | No_heuristic_ub -> None
  in
  let ub0 =
    match heuristic_tree with
    | Some t -> Utree.weight t
    | None -> infinity
  in
  { pm; perm; lb_extra; ub0; incumbent0 = heuristic_tree; opts = options; kstate }

let relabel_out problem t =
  let p = Permutation.to_array problem.perm in
  Utree.relabel (fun r -> p.(r)) t

let tie_eps = 1e-9

(* Safety margin for the incremental kernel's score-based pre-pruning.
   The score differs from the exact (reweighed) cost only by float
   rounding — well under 1e-8 for the magnitudes this solver sees — so
   dropping a candidate only when its score clears the bound by this
   margin guarantees exact bounds would drop it too, in every pruning
   mode.  Survivors are re-checked with exact costs by the caller. *)
let score_safety = 1e-6

let expand ?(ub = infinity) problem (node : Bb_tree.node) stats =
  stats.Stats.expanded <- stats.Stats.expanded + 1;
  let order children =
    (* [Paper_order] (the default) returns the ascending-LB list
       physically unchanged, keeping the historical search bit-exact. *)
    Strategy.order_children problem.opts.branching ~inserted:node.k children
  in
  let apply_33 =
    match problem.opts.relation33 with
    | Off -> false
    | Third_only -> node.k = 2
    | Every_insertion -> true
  in
  if problem.opts.kernel = Incremental && not apply_33 then begin
    (* Hot path: score all 2k-1 insertions from the flat matrix and
       realise only candidates the bound cannot already dismiss.  The
       threshold converts the caller's upper bound into a cost-delta
       bound, padded so pre-pruning is strictly conservative: any
       dropped child has an exact lower bound the caller would prune in
       either pruning mode ([lb >= ub], or [lb > ub + tie_eps] under
       [collect_all]), and — at the last level — a cost on which
       recording the solution would be a no-op. *)
    let sp = node.k in
    let lb_inc = problem.lb_extra.(sp + 1) in
    let dthr =
      if Float.is_finite ub then
        ub +. tie_eps +. score_safety -. node.cost -. lb_inc
      else infinity
    in
    let survivors, dropped =
      Kernel.insertions problem.kstate node.tree sp ~dthr
    in
    stats.Stats.generated <- stats.Stats.generated + (2 * sp) - 1;
    Obs.Attribution.expand stats.Stats.att ~depth:sp ~generated:((2 * sp) - 1);
    (* Dropped complete children would have reached the caller's
       solution recording — a no-op at these costs when [ub] is the
       incumbent, a solution the tolerance traded away when it is the
       effective bound [incumbent / (1 + eps)] — not its pruning
       counter; dropped partial children would have been pruned. *)
    if sp + 1 < Dist_matrix.size problem.pm then begin
      stats.Stats.pruned <- stats.Stats.pruned + dropped;
      Obs.Attribution.prune stats.Stats.att Kernel_threshold ~depth:(sp + 1)
        dropped
    end;
    let children =
      List.map
        (fun tree ->
          let cost = Utree.weight tree in
          { Bb_tree.tree; k = sp + 1; cost; lb = cost +. lb_inc })
        survivors
    in
    order
      (List.sort
         (fun (a : Bb_tree.node) (b : Bb_tree.node) -> Float.compare a.lb b.lb)
         children)
  end
  else begin
    let children = Bb_tree.branch problem.pm ~lb_extra:problem.lb_extra node in
    stats.Stats.generated <- stats.Stats.generated + List.length children;
    Obs.Attribution.expand stats.Stats.att ~depth:node.k
      ~generated:(List.length children);
    if not apply_33 then order children
    else begin
      let kept =
        List.filter
          (fun (c : Bb_tree.node) ->
            Relation33.compatible_insertion problem.pm c.tree node.k)
          children
      in
      stats.Stats.pruned_33 <-
        stats.Stats.pruned_33 + List.length children - List.length kept;
      Obs.Attribution.prune stats.Stats.att Filter33 ~depth:(node.k + 1)
        (List.length children - List.length kept);
      (* Never let the heuristic constraint empty the candidate list: the
         companion paper reports 3-3 results as a subset of the full
         results, which requires at least one child to survive. *)
      order (if kept = [] then [ List.hd children ] else kept)
    end
  end

(* The certified relative gap [(cost - lower_bound) / lower_bound].
   Completed tolerance runs clamp to the configured eps: real-arithmetic
   soundness (every discarded node had [lb >= ub_t / (1 + eps)] with
   [ub_t >= ub_final]) guarantees the bound, while the float division
   behind [lower_bound] could otherwise overshoot eps by an ulp or two. *)
let certify ~gap ~exhausted ~cost ~lower_bound =
  let raw =
    if cost <= lower_bound then 0.
    else if lower_bound > 0. then (cost -. lower_bound) /. lower_bound
    else infinity
  in
  if exhausted && gap > 0. then Float.min gap raw else raw

let solve ?(options = default_options) ?budget ?monitor ?resume ?progress dm =
  let n = Dist_matrix.size dm in
  if n = 1 then
    {
      tree = Utree.leaf 0;
      cost = 0.;
      optimal = true;
      all_optimal = [ Utree.leaf 0 ];
      stats = Stats.create ();
      status = Budget.Exact;
      lower_bound = 0.;
      certified_gap = 0.;
      frontier = [];
    }
  else
    Obs.Span.with_span "bnb.solve"
      ~args:[ ("n", Obs.Json.Int n) ]
      @@ fun () ->
    let t_start = Obs.Clock.counter () in
    let problem = prepare ~options dm in
    let stats = Stats.create () in
    let monitor =
      match (monitor, budget) with
      | Some m, _ -> m
      | None, Some b -> Budget.arm b
      | None, None -> Budget.arm Budget.unlimited
    in
    let tk = Budget.ticker monitor in
    let rpulse = Obs.Recorder.pulse () in
    let mlive = M.live () in
    let interrupted = ref None in
    (* Resuming re-derives the permutation (deterministic for a given
       matrix) and re-costs the checkpointed frontier, so only trees are
       ever persisted — floats are recomputed, never trusted. *)
    let seed_nodes, ub_init, best_init =
      match resume with
      | None -> (None, problem.ub0, problem.incumbent0)
      | Some r ->
          let nodes =
            List.map
              (fun (k, tree) ->
                let cost = Utree.weight tree in
                { Bb_tree.tree; k; cost; lb = cost +. problem.lb_extra.(k) })
              r.r_frontier
          in
          if r.r_ub < problem.ub0 then (Some nodes, r.r_ub, r.r_incumbent)
          else (Some nodes, problem.ub0, problem.incumbent0)
    in
    let ub = ref ub_init in
    let best = ref best_init in
    let ties = ref [] in
    let optimal = ref true in
    let record_stop s =
      optimal := false;
      interrupted := Some s;
      Obs.Recorder.emit_ambient
        (Obs.Events.Budget_stop { status = Budget.status_to_string s })
    in
    (* Optimality-gap tolerance: a node is pruned once [lb * (1 + eps)]
       meets the incumbent, i.e. [lb >= ub / (1 + eps)] — with eps = 0
       ([gap_scale = 1.], an exact float multiply) this is literally the
       historical rule, decision for decision.  With [collect_all],
       equal-cost nodes survive pruning so every optimal topology is
       reached — each exactly once, because the BBT generates each
       topology along a unique insertion sequence. *)
    let gap_scale = 1. +. options.gap in
    let prunable lb =
      if options.collect_all then lb *. gap_scale > !ub +. tie_eps
      else lb *. gap_scale >= !ub
    in
    (* Attribution of a prune that [prunable] decided: if the node's own
       cost already met the bound the incumbent alone was responsible;
       if its exact bound did, the LB1 suffix supplied the missing
       margin; otherwise only the gap tolerance closed it.  (Under LB0
       the suffix is all zeros, so every exact prune classifies
       Incumbent.) *)
    let exact_bound x =
      if options.collect_all then x > !ub +. tie_eps else x >= !ub
    in
    let prune_reason ~cost ~lb =
      if exact_bound cost then Obs.Attribution.Incumbent
      else if exact_bound lb then Obs.Attribution.Lb1_suffix
      else Obs.Attribution.Gap_tolerance
    in
    let record_solution (c : Bb_tree.node) =
      if c.Bb_tree.cost < !ub -. tie_eps then begin
        ub := c.cost;
        best := Some c.tree;
        ties := (if options.collect_all then [ c.tree ] else []);
        stats.Stats.ub_updates <- stats.Stats.ub_updates + 1;
        Obs.Recorder.emit_ambient (Obs.Events.Incumbent { cost = c.cost })
      end
      else if options.collect_all && Float.abs (c.cost -. !ub) <= tie_eps
      then begin
        if not (List.exists (Utree.same_topology c.tree) !ties) then
          ties := c.tree :: !ties
      end
      else if c.cost < !ub then begin
        (* An improvement finer than [tie_eps]: still adopt the tree. *)
        ub := c.cost;
        best := Some c.tree;
        stats.Stats.ub_updates <- stats.Stats.ub_updates + 1;
        Obs.Recorder.emit_ambient (Obs.Events.Incumbent { cost = c.cost })
      end
    in
    (* Open list, behind the frontier chosen by the search order. *)
    let front = Strategy.Frontier.create options.search in
    let push node = Strategy.Frontier.push front node in
    let pop () = Strategy.Frontier.pop front in
    let open_length () = Strategy.Frontier.length front in
    let cap_reached () =
      match options.max_expanded with
      | Some cap -> stats.Stats.expanded >= cap
      | None -> false
    in
    (match seed_nodes with
    | None -> push (Bb_tree.root problem.pm)
    | Some nodes -> List.iter push (List.rev nodes));
    (* On interruption the node in hand goes back on the open list, so
       the drained frontier is exactly the set of unexplored subtrees:
       min over its lower bounds certifies the global optimum. *)
    let rec loop () =
      match pop () with
      | None -> ()
      | Some node when cap_reached () ->
          record_stop Budget.Node_cap;
          Obs.Attribution.prune stats.Stats.att Budget_stop
            ~depth:node.Bb_tree.k 1;
          push node
      | Some node ->
          if prunable node.Bb_tree.lb then begin
            stats.Stats.pruned <- stats.Stats.pruned + 1;
            Obs.Attribution.prune stats.Stats.att
              (prune_reason ~cost:node.Bb_tree.cost ~lb:node.Bb_tree.lb)
              ~depth:node.Bb_tree.k 1;
            loop ()
          end
          else if Bb_tree.is_complete problem.pm node then begin
            (* Only the n = 2 root can be popped complete. *)
            record_solution node;
            loop ()
          end
          else begin
            match Budget.tick tk with
            | Some s ->
                record_stop s;
                Obs.Attribution.prune stats.Stats.att Budget_stop
                  ~depth:node.Bb_tree.k 1;
                push node
            | None ->
                (* Under a gap tolerance the kernel's pre-pruning
                   threshold is the effective bound [ub / (1 + eps)]
                   (an exact no-op divide when eps = 0), so candidates
                   the tolerance would discard are never realised. *)
                let children =
                  expand ~ub:(!ub /. gap_scale) problem node stats
                in
                List.iter
                  (fun (c : Bb_tree.node) ->
                    if Bb_tree.is_complete problem.pm c then record_solution c
                    else if not (prunable c.lb) then push c
                    else begin
                      stats.Stats.pruned <- stats.Stats.pruned + 1;
                      Obs.Attribution.prune stats.Stats.att
                        (prune_reason ~cost:c.Bb_tree.cost ~lb:c.Bb_tree.lb)
                        ~depth:c.Bb_tree.k 1
                    end)
                  (List.rev children);
                let olen = open_length () in
                stats.Stats.max_open <- Int.max stats.Stats.max_open olen;
                if
                  Obs.Recorder.sample rpulse ~worker:0
                    ~expanded:stats.Stats.expanded ~pruned:stats.Stats.pruned
                    ~open_nodes:olen ~ub:!ub ~lb:node.Bb_tree.lb
                then M.flush_live mlive stats;
                (match progress with
                | None -> ()
                | Some p ->
                    Obs.Progress.sample p ~worker:0
                      ~expanded:stats.Stats.expanded ~pruned:stats.Stats.pruned
                      ~open_depth:olen ~ub:!ub ~lb:node.Bb_tree.lb);
                loop ()
          end
    in
    (match Budget.check monitor with
    | Some s ->
        (* Exhausted before the first expansion (e.g. a block solved
           after the whole-run budget tripped): return the heuristic
           incumbent immediately, frontier untouched. *)
        record_stop s;
        Obs.Attribution.prune stats.Stats.att Budget_stop ~depth:0 1
    | None -> loop ());
    Budget.flush tk;
    let frontier =
      let rec drain acc =
        match pop () with None -> List.rev acc | Some nd -> drain (nd :: acc)
      in
      drain []
    in
    let status = match !interrupted with Some s -> s | None -> Budget.Exact in
    (* Every subtree a tolerance run discarded (explicitly, or inside
       the kernel against the effective bound) had a lower bound of at
       least [ub_t / (1 + eps)] for some incumbent [ub_t >= !ub], so
       [!ub / (1 + eps)] is a sound global floor; with eps = 0 the
       divide is exact and this is the historical [!ub] start. *)
    let lower_bound =
      List.fold_left
        (fun acc (nd : Bb_tree.node) -> Float.min acc nd.Bb_tree.lb)
        (!ub /. gap_scale) frontier
    in
    M.flush mlive stats (Obs.Clock.elapsed_s t_start);
    Log.debug (fun m -> m "solve n=%d done: %a" n Stats.pp stats);
    match !best with
    | Some t ->
        let tree = relabel_out problem t in
        let all_optimal =
          match !ties with
          | [] -> [ tree ]
          | ts -> List.map (relabel_out problem) ts
        in
        {
          tree;
          cost = !ub;
          (* A tolerance run proves [cost <= (1 + eps) * optimum], not
             optimality — [certified_gap] carries the guarantee. *)
          optimal = !optimal && options.gap = 0.;
          all_optimal;
          stats;
          status;
          lower_bound;
          certified_gap =
            certify ~gap:options.gap ~exhausted:(frontier = []) ~cost:!ub
              ~lower_bound;
          frontier;
        }
    | None ->
        (* Only reachable with [No_heuristic_ub] and an expansion cap
           small enough that no complete tree was ever built. *)
        let fallback = Linkage.upgmm dm in
        {
          tree = fallback;
          cost = Utree.weight fallback;
          optimal = false;
          all_optimal = [ fallback ];
          stats;
          status;
          lower_bound;
          certified_gap =
            certify ~gap:options.gap ~exhausted:false
              ~cost:(Utree.weight fallback) ~lower_bound;
          frontier;
        }
