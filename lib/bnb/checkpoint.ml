open Import
module J = Obs.Json

type block = {
  b_id : int;
  b_solved : bool;
  b_tree : Utree.t option;
  b_frontier : Utree.t list;
}

type t = {
  version : int;
  n : int;
  digest : string;
  status : Budget.status;
  cost : float;
  lower_bound : float;
  blocks : block list;
}

let version = 1
let hex x = Printf.sprintf "%h" x

let digest_matrix m =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (string_of_int (Dist_matrix.size m));
  Dist_matrix.iter_pairs
    (fun i j d -> Buffer.add_string buf (Printf.sprintf ";%d,%d:%s" i j (hex d)))
    m;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let make ~matrix ~status ~cost ~lower_bound ~blocks =
  {
    version;
    n = Dist_matrix.size matrix;
    digest = digest_matrix matrix;
    status;
    cost;
    lower_bound;
    blocks;
  }

let make_block ~id ~matrix ~solved ~tree ~frontier =
  let p = Permutation.to_array (Permutation.maxmin matrix) in
  let out t = Utree.relabel (fun r -> p.(r)) t in
  {
    b_id = id;
    b_solved = solved;
    b_tree = tree;
    b_frontier = List.map (fun (nd : Bb_tree.node) -> out nd.tree) frontier;
  }

let resume_of_block ~matrix b =
  match (b.b_solved, b.b_tree) with
  | true, Some tr -> `Solved tr
  | _ ->
      let inv =
        Permutation.to_array (Permutation.inverse (Permutation.maxmin matrix))
      in
      let back t = Utree.relabel (fun orig -> inv.(orig)) t in
      `Restart
        {
          Solver.r_frontier =
            List.map (fun t -> (Utree.n_leaves t, back t)) b.b_frontier;
          r_ub =
            (match b.b_tree with Some t -> Utree.weight t | None -> infinity);
          r_incumbent = Option.map back b.b_tree;
        }

let find_block ck id = List.find_opt (fun b -> b.b_id = id) ck.blocks

(* --- JSON --- *)

let rec tree_to_json = function
  | Utree.Leaf i -> J.Int i
  | Utree.Node { height; left; right } ->
      J.Obj
        [
          ("h", J.String (hex height));
          ("l", tree_to_json left);
          ("r", tree_to_json right);
        ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let rec tree_of_json j =
  match j with
  | J.Int i ->
      if i >= 0 then Ok (Utree.leaf i) else Error "negative leaf label"
  | J.Obj _ -> (
      match (J.member "h" j, J.member "l" j, J.member "r" j) with
      | Some (J.String h), Some l, Some r -> (
          match float_of_string_opt h with
          | None -> Error (Printf.sprintf "bad height literal %S" h)
          | Some height ->
              let* left = tree_of_json l in
              let* right = tree_of_json r in
              Ok (Utree.Node { height; left; right }))
      | _ -> Error "tree node needs string \"h\" and subtrees \"l\", \"r\"")
  | _ -> Error "tree must be a leaf integer or an object"

let block_to_json b =
  J.Obj
    [
      ("id", J.Int b.b_id);
      ("solved", J.Bool b.b_solved);
      ( "tree",
        match b.b_tree with None -> J.Null | Some t -> tree_to_json t );
      ("frontier", J.List (List.map tree_to_json b.b_frontier));
    ]

let field name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field name j =
  let* v = field name j in
  match J.to_int_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "field %S must be an integer" name)

let string_field name j =
  let* v = field name j in
  match J.to_string_opt v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S must be a string" name)

let hex_float_field name j =
  let* s = string_field name j in
  match float_of_string_opt s with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "field %S: bad float literal %S" name s)

let list_field name j =
  let* v = field name j in
  match J.to_list_opt v with
  | Some xs -> Ok xs
  | None -> Error (Printf.sprintf "field %S must be a list" name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let block_of_json j =
  let* b_id = int_field "id" j in
  let* solved = field "solved" j in
  let* b_solved =
    match solved with
    | J.Bool b -> Ok b
    | _ -> Error "field \"solved\" must be a boolean"
  in
  let* tree = field "tree" j in
  let* b_tree =
    match tree with
    | J.Null -> Ok None
    | t ->
        let* t = tree_of_json t in
        Ok (Some t)
  in
  let* fr = list_field "frontier" j in
  let* b_frontier = map_result tree_of_json fr in
  Ok { b_id; b_solved; b_tree; b_frontier }

let to_json ck =
  J.Obj
    [
      ("format", J.String "compactphy-checkpoint");
      ("version", J.Int ck.version);
      ("n", J.Int ck.n);
      ("digest", J.String ck.digest);
      ("status", Budget.status_to_json ck.status);
      ("cost", J.String (hex ck.cost));
      ("cost_approx", J.Float ck.cost);
      ("lower_bound", J.String (hex ck.lower_bound));
      ("lower_bound_approx", J.Float ck.lower_bound);
      ("blocks", J.List (List.map block_to_json ck.blocks));
    ]

let of_json j =
  let* fmt = string_field "format" j in
  let* () =
    if fmt = "compactphy-checkpoint" then Ok ()
    else Error (Printf.sprintf "not a checkpoint file (format %S)" fmt)
  in
  let* v = int_field "version" j in
  let* () =
    if v = version then Ok ()
    else Error (Printf.sprintf "unsupported checkpoint version %d" v)
  in
  let* n = int_field "n" j in
  let* digest = string_field "digest" j in
  let* status_s = string_field "status" j in
  let* status =
    match Budget.status_of_string status_s with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "unknown status %S" status_s)
  in
  let* cost = hex_float_field "cost" j in
  let* lower_bound = hex_float_field "lower_bound" j in
  let* bs = list_field "blocks" j in
  let* blocks = map_result block_of_json bs in
  Ok { version = v; n; digest; status; cost; lower_bound; blocks }

let save path ck = J.write_file path (to_json ck)

let load path =
  match J.read_file path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok j -> (
      match of_json j with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok ck -> Ok ck)

let verify ck matrix =
  if ck.n <> Dist_matrix.size matrix then
    Error
      (Printf.sprintf "checkpoint is for %d species, matrix has %d" ck.n
         (Dist_matrix.size matrix))
  else if ck.digest <> digest_matrix matrix then
    Error "checkpoint digest does not match this matrix"
  else Ok ()
