open Import

(** Branching for the branch-and-bound tree (BBT).

    A BBT node is a partial topology over the first [k] species of the
    (maxmin-relabelled) matrix, stored as its minimal realization (see
    {!Ultra.Utree}).  Branching inserts species [k] at each of the
    [2k - 1] positions of a [k]-leaf tree — above every node including
    the root — so the full BBT has [(2n-3)!!] leaves, matching the
    paper's [A(n)] counts. *)

type node = {
  tree : Utree.t;  (** minimal realization over species [0 .. k-1] *)
  k : int;  (** number of species inserted so far *)
  cost : float;  (** [Utree.weight tree], cached *)
  lb : float;  (** lower bound on any completion of this topology *)
}

val root : Dist_matrix.t -> node
(** The BBT root: the unique topology over species 0 and 1.
    @raise Invalid_argument if the matrix has fewer than 2 species. *)

val suffix_min_bounds : Dist_matrix.t -> float array
(** [b.(k)] = sum over species [x >= k] of [min_j D(x,j) / 2] — the LB1
    increment for a node with [k] species inserted.  [b.(n) = 0]. *)

val suffix_of_minima : float array -> float array
(** {!suffix_min_bounds} from precomputed row minima
    ({!Distmat.Dist_matrix.row_minima}), so the solver computes the
    minima once and shares them with the insertion kernel. *)

val insertions : Dist_matrix.t -> Utree.t -> int -> Utree.t list
(** [insertions dm t sp] are the [2k - 1] minimal realizations obtained
    by inserting leaf [sp] at every position of [t].  Heights are updated
    along the insertion path only, so each candidate shares structure
    with [t]. *)

val branch :
  Dist_matrix.t -> lb_extra:float array -> node -> node list
(** Children of a BBT node: all insertions of species [node.k], with
    costs and lower bounds ([cost + lb_extra.(k + 1)]) filled in, sorted
    by ascending lower bound.  @raise Invalid_argument if the node is
    already complete. *)

val is_complete : Dist_matrix.t -> node -> bool
