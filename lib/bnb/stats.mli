(** Search statistics for branch-and-bound runs. *)

type t = {
  mutable expanded : int;  (** BBT nodes whose children were generated *)
  mutable generated : int;  (** children created by branching *)
  mutable pruned : int;  (** children discarded because [LB >= UB] *)
  mutable pruned_33 : int;  (** children discarded by the 3-3 relationship *)
  mutable ub_updates : int;  (** times a better feasible solution was found *)
  mutable max_open : int;  (** high-water mark of the open list *)
  att : Obs.Attribution.cells;
      (** pruning attribution (reason × depth) and per-depth expansion
          profile for this run — see {!Obs.Attribution} *)
}

val create : unit -> t

val add : t -> t -> unit
(** [add acc s] accumulates [s] into [acc].  Every counter is summed
    {e except} [max_open], which combines by maximum: it is a per-run
    high-water mark, so the accumulated value reports the deepest open
    list of any single constituent run (per block in the pipeline, per
    worker in the parallel solver) — not the sum of the peaks. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Obs.Json.t
(** The counters as a JSON object, for run manifests. *)

val pp_json : Format.formatter -> t -> unit
(** [pp] in JSON form (one object, no trailing newline). *)
