open Import

type node = { tree : Utree.t; k : int; cost : float; lb : float }

let suffix_of_minima mins =
  let n = Array.length mins in
  let b = Array.make (n + 1) 0. in
  for k = n - 1 downto 0 do
    b.(k) <- b.(k + 1) +. (mins.(k) /. 2.)
  done;
  b

let suffix_min_bounds dm =
  if Dist_matrix.size dm < 2 then Array.make (Dist_matrix.size dm + 1) 0.
  else suffix_of_minima (Dist_matrix.row_minima dm)

let root dm =
  if Dist_matrix.size dm < 2 then invalid_arg "Bb_tree.root: need n >= 2";
  let h = Dist_matrix.get dm 0 1 /. 2. in
  let tree = Utree.node h (Utree.leaf 0) (Utree.leaf 1) in
  let cost = Utree.weight tree in
  { tree; k = 2; cost; lb = cost }

let insertions dm t sp =
  let dist j = Dist_matrix.get dm sp j in
  (* Returns the candidates for every position inside [t] plus the
     maximum of [dist j] over the leaves of [t]; each node on the path to
     an insertion is raised to [max height (maxd / 2)], which keeps every
     candidate a minimal realization (height = half the max pairwise
     distance in its subtree). *)
  let rec go t =
    match t with
    | Utree.Leaf i ->
        let d = dist i in
        ([ Utree.Node { height = d /. 2.; left = t; right = Utree.Leaf sp } ], d)
    | Utree.Node n ->
        let lcands, lmax = go n.left in
        let rcands, rmax = go n.right in
        let maxd = Float.max lmax rmax in
        let h' = Float.max n.height (maxd /. 2.) in
        let here =
          Utree.Node { height = h'; left = t; right = Utree.Leaf sp }
        in
        let with_left =
          List.map
            (fun c -> Utree.Node { height = h'; left = c; right = n.right })
            lcands
        in
        let with_right =
          List.map
            (fun c -> Utree.Node { height = h'; left = n.left; right = c })
            rcands
        in
        (here :: List.rev_append with_left with_right, maxd)
  in
  fst (go t)

let branch dm ~lb_extra node =
  let n = Dist_matrix.size dm in
  if node.k >= n then invalid_arg "Bb_tree.branch: node is complete";
  let sp = node.k in
  let children =
    List.map
      (fun tree ->
        let cost = Utree.weight tree in
        { tree; k = sp + 1; cost; lb = cost +. lb_extra.(sp + 1) })
      (insertions dm node.tree sp)
  in
  List.sort (fun a b -> Float.compare a.lb b.lb) children

let is_complete dm node = node.k = Dist_matrix.size dm
