open Import

(** Sequential branch-and-bound construction of minimum ultrametric trees
    (algorithm BBU of Wu-Chao-Tang 1999, as used by both papers).

    The solver (1) relabels the species as a maxmin permutation,
    (2) builds the two-species root topology, (3) takes the UPGMM tree's
    weight as the initial upper bound, and (4) explores the BBT
    depth-first, pruning nodes whose lower bound reaches the incumbent.
    The 3-3 relationship can additionally prune insertions (off /
    third-species-only as published / every insertion as the companion
    paper's future-work extension). *)

type lb_kind =
  | LB0  (** weight of the partial minimal realization only *)
  | LB1
      (** LB0 plus [sum min_j D(x,j) / 2] over species not yet inserted *)

type mode33 = Off | Third_only | Every_insertion

type initial_ub =
  | Upgmm_ub  (** the papers' choice: complete-linkage heuristic tree *)
  | Upgma_ub  (** classical UPGMA topology, re-realised to be feasible *)
  | Nj_ub  (** neighbor-joining topology, re-realised *)
  | No_heuristic_ub  (** start from an infinite upper bound *)

type search_order = Strategy.exploration =
  | Dfs
      (** depth-first with children in ascending-LB order — the papers'
          strategy, constant memory per level *)
  | Best_first
      (** always expand the open node of least lower bound — fewer
          expansions, potentially exponential memory *)
  | Hybrid
      (** DFS dive to a complete tree, then continue from the globally
          best open node (see {!Strategy.exploration}) *)

type branch_order = Strategy.branching =
  | Paper_order  (** ascending-LB children, as published — the default *)
  | Largest_first  (** root-nearest (largest-subtree) insertions first *)
  | Residual_lb  (** descending LB — probe the largest residual first *)
(** Child ordering applied by {!expand}; see {!Strategy.branching}.
    Any order explores the same space — only the visit sequence (and so
    the pruning trajectory) changes.  The {{!page-strategies} strategy
    guide} covers choosing between explorations, branchings and gap
    tolerances. *)

type kernel_kind = Kernel.kind = Reference | Incremental
(** Which expansion path {!expand} uses: [Reference] realises all
    [2k - 1] children before bounding (the seed behaviour, kept as the
    differential-testing baseline); [Incremental] scores candidates from
    the flat matrix first and realises only un-pruned ones
    ({!Kernel.insertions}).  Both produce an observably identical
    search: same trees, same costs, same stats. *)

type options = {
  lb : lb_kind;
  relation33 : mode33;
  initial_ub : initial_ub;
  max_expanded : int option;
      (** stop early after expanding this many BBT nodes (the outcome is
          then possibly non-optimal); [None] = run to completion *)
  search : search_order;
  branching : branch_order;
  gap : float;
      (** optimality-gap tolerance eps [>= 0]: prune once
          [lb * (1 + eps)] meets the incumbent, certifying
          [cost <= (1 + eps) * optimum].  [0.] (the default) is the
          exact search, decision for decision. *)
  collect_all : bool;
      (** gather {e every} optimal tree, as the companion paper's Step 7
          ("gather all solutions from each node") does.  Equal-cost
          nodes are then kept instead of pruned, so the search expands
          more nodes. *)
  kernel : kernel_kind;
}

val default_options : options
(** [LB1], [Off], [Upgmm_ub], no cap, [Dfs], [Paper_order], [gap = 0.],
    [collect_all = false], [Incremental]. *)

val options :
  ?lb:lb_kind ->
  ?relation33:mode33 ->
  ?initial_ub:initial_ub ->
  ?max_expanded:int ->
  ?search:search_order ->
  ?branching:branch_order ->
  ?gap:float ->
  ?collect_all:bool ->
  ?kernel:kernel_kind ->
  unit ->
  options
(** Smart constructor over {!default_options} that validates its inputs.
    @raise Invalid_argument if [max_expanded <= 0], or [gap] is negative
    or not finite. *)

type outcome = {
  tree : Utree.t;  (** best tree found, in the original species labels *)
  cost : float;  (** its weight *)
  optimal : bool;
      (** whether the search ran to completion (always [false] when the
          expansion cap was hit first) *)
  all_optimal : Utree.t list;
      (** with [collect_all]: every distinct optimal topology the search
          completed (original labels); otherwise just [[tree]] *)
  stats : Stats.t;
  status : Budget.status;
      (** [Exact] when the search ran to completion; otherwise which
          budget constraint stopped it ([Node_cap] also covers the
          legacy [max_expanded] option) *)
  lower_bound : float;
      (** certified global lower bound on the optimum: the minimum of
          the open frontier's bounds and [cost / (1 + gap)].  Equals
          [cost] when [status = Exact] and [gap = 0.]. *)
  certified_gap : float;
      (** the guarantee [(cost - lower_bound) / lower_bound]: the true
          optimum is within this relative factor below [cost].  [0.]
          for a completed exact search; at most [gap] for a completed
          tolerance run; possibly larger when a budget stopped the
          search early. *)
  frontier : Bb_tree.node list;
      (** the open list at the moment the search stopped (permuted
          labels, in pop order) — empty for a completed search.  Feed it
          back through a {!resume} to continue the run. *)
}

type resume = {
  r_frontier : (int * Utree.t) list;
      (** open nodes as [(k, partial tree)] pairs in {e permuted}
          labels, in the order they should be explored *)
  r_ub : float;  (** best cost known when the checkpoint was taken *)
  r_incumbent : Utree.t option;  (** tree realising [r_ub] (permuted) *)
}
(** A search state to continue from (see [Bnb.Checkpoint] for the
    file format).  Costs and bounds are recomputed from the trees, so a
    resumed run is exact whatever precision the checkpoint survived. *)

val src : Logs.src
(** Log source ["compactphy.solver"]. *)

val solve :
  ?options:options ->
  ?budget:Budget.t ->
  ?monitor:Budget.monitor ->
  ?resume:resume ->
  ?progress:Obs.Progress.t ->
  Dist_matrix.t ->
  outcome
(** Construct the minimum ultrametric tree of a metric distance matrix.
    With [relation33 <> Off] the search is restricted and the result can
    in principle be slightly costlier than the true optimum (empirically
    it is not — see the test suite).  Handles [n = 1] and [n = 2]
    directly.

    [budget] bounds the search (see {!Budget}); on exhaustion the
    outcome carries the best incumbent, the certified [lower_bound] and
    the open [frontier], with [status] naming the constraint that fired.
    An unbudgeted (or {!Budget.unlimited}) run is bit-identical to the
    pre-budget solver: same tree, cost and stats.  [monitor] supplies an
    already-armed monitor instead (e.g. a per-block {!Budget.sub} of a
    whole-run budget) and takes precedence over [budget].  [resume]
    seeds the open list and incumbent from a checkpoint instead of
    starting at the root; the permutation is re-derived from [dm], so
    the matrix must be the one the checkpoint was taken from.

    Telemetry: the whole search runs under an [Obs.Span] named
    ["bnb.solve"]; pass [progress] to get rate-limited live samples
    (expanded/pruned/open-depth/UB-LB gap) from the inner loop; the
    final stats are also flushed into the [bnb.*] metrics of
    {!Obs.Metrics.default}.

    @raise Invalid_argument on an empty matrix. *)

(** {2 Shared plumbing}

    The parallel solver drives the same branching and bounding; these
    give it access to the prepared search state. *)

type problem = {
  pm : Dist_matrix.t;  (** matrix relabelled by the maxmin permutation *)
  perm : Permutation.t;
  lb_extra : float array;  (** per-level LB increment (zeros for [LB0]) *)
  ub0 : float;  (** initial upper bound *)
  incumbent0 : Utree.t option;
      (** feasible tree realising [ub0] (in permuted labels), if any *)
  opts : options;
  kstate : Kernel.t;  (** prepared hot-path kernel state *)
}

val prepare : ?options:options -> Dist_matrix.t -> problem

val expand :
  ?ub:float -> problem -> Bb_tree.node -> Stats.t -> Bb_tree.node list
(** Children of a node after 3-3 filtering (recorded in the stats), in
    [opts.branching] order ([Paper_order]: ascending lower bound).
    Final upper-bound pruning is left to the caller, whose incumbent
    may be shared across workers.  Callers applying a gap tolerance
    pass the {e effective} bound [incumbent / (1 + eps)] as [ub].

    With [opts.kernel = Incremental] (and 3-3 filtering off for this
    node), candidates whose score-based lower bound provably exceeds
    [ub] (default [infinity] = keep everything) are dropped {e before}
    being realised, counted into [stats.pruned]; the threshold carries a
    safety margin so the surviving set is a superset of what the
    caller's exact bound keeps — pass a stale or conservative [ub]
    (e.g. a racy snapshot of a shared incumbent) freely. *)

val relabel_out : problem -> Utree.t -> Utree.t
(** Map a tree over permuted labels back to the original species. *)

val certify :
  gap:float -> exhausted:bool -> cost:float -> lower_bound:float -> float
(** The certified relative gap [(cost - lower_bound) / lower_bound]
    (never negative; [infinity] when nothing is proved).  [exhausted]
    says the search ran its frontier dry, in which case a tolerance
    run's result is clamped to the configured [gap] — sound in real
    arithmetic, where float division could overshoot by an ulp. *)
