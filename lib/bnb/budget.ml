type status = Exact | Deadline | Node_cap | Cancelled

let status_to_string = function
  | Exact -> "exact"
  | Deadline -> "deadline"
  | Node_cap -> "node_cap"
  | Cancelled -> "cancelled"

let status_of_string = function
  | "exact" -> Some Exact
  | "deadline" -> Some Deadline
  | "node_cap" -> Some Node_cap
  | "cancelled" -> Some Cancelled
  | _ -> None

let status_to_json s = Obs.Json.String (status_to_string s)

type t = {
  deadline_s : float option;
  max_nodes : int option;
  cancel : bool Atomic.t option;
  poll_every : int;
}

let unlimited =
  { deadline_s = None; max_nodes = None; cancel = None; poll_every = 32 }

let create ?deadline_s ?max_nodes ?cancel ?(poll_every = 32) () =
  (match deadline_s with
  | Some d when not (d > 0. && Float.is_finite d) ->
      invalid_arg
        (Printf.sprintf "Budget.create: deadline_s = %g (must be > 0)" d)
  | Some _ | None -> ());
  (match max_nodes with
  | Some cap when cap <= 0 ->
      invalid_arg
        (Printf.sprintf "Budget.create: max_nodes = %d (must be > 0)" cap)
  | Some _ | None -> ());
  if poll_every <= 0 then
    invalid_arg
      (Printf.sprintf "Budget.create: poll_every = %d (must be > 0)"
         poll_every);
  { deadline_s; max_nodes; cancel; poll_every }

let is_unlimited b =
  b.deadline_s = None && b.max_nodes = None && b.cancel = None

let deadline_s b = b.deadline_s
let max_nodes b = b.max_nodes
let poll_every b = b.poll_every

type monitor = {
  budget : t;
  clock : Obs.Clock.counter;
  node_count : int Atomic.t;
  state : status option Atomic.t;
  parent : monitor option;
}

let arm budget =
  {
    budget;
    clock = Obs.Clock.counter ();
    node_count = Atomic.make 0;
    state = Atomic.make None;
    parent = None;
  }

let sub ?max_nodes ?poll_every m =
  let poll_every =
    match poll_every with
    | None -> m.budget.poll_every
    | Some p when p <= 0 ->
        invalid_arg
          (Printf.sprintf "Budget.sub: poll_every = %d (must be > 0)" p)
    | Some p -> p
  in
  {
    budget = { max_nodes; poll_every; deadline_s = None; cancel = None };
    clock = m.clock;
    node_count = Atomic.make 0;
    state = Atomic.make None;
    parent = Some m;
  }

let spec m = m.budget
let tripped m = Atomic.get m.state
let nodes m = Atomic.get m.node_count

let trip m s =
  (* First trip wins: the status must not change once a worker saw it. *)
  ignore (Atomic.compare_and_set m.state None (Some s))

let cancel_requested m =
  match m.budget.cancel with Some flag -> Atomic.get flag | None -> false

let rec check m =
  match Atomic.get m.state with
  | Some _ as s -> s
  | None ->
      let verdict =
        match m.parent with
        | Some p -> (
            match check p with Some _ as s -> s | None -> None)
        | None -> None
      in
      let verdict =
        match verdict with
        | Some _ -> verdict
        | None ->
            if cancel_requested m then Some Cancelled
            else begin
              match m.budget.deadline_s with
              | Some d when Obs.Clock.elapsed_s m.clock >= d -> Some Deadline
              | _ -> (
                  match m.budget.max_nodes with
                  | Some cap when Atomic.get m.node_count >= cap ->
                      Some Node_cap
                  | _ -> None)
            end
      in
      (match verdict with Some s -> trip m s | None -> ());
      verdict

type ticker = {
  m : monitor;
  mutable pending : int;
  (* next flight-recorder Budget_tick, monotonic ns; the ticker is owned
     by one worker, so a plain mutable needs no synchronisation *)
  mutable next_emit_ns : int64;
}

let ticker m = { m; pending = 0; next_emit_ns = Int64.min_int }

let rec charge m k =
  ignore (Atomic.fetch_and_add m.node_count k);
  match m.parent with Some p -> charge p k | None -> ()

let flush tk =
  if tk.pending > 0 then begin
    charge tk.m tk.pending;
    tk.pending <- 0
  end

let tick tk =
  tk.pending <- tk.pending + 1;
  if tk.pending >= tk.m.budget.poll_every then begin
    flush tk;
    (* Already the slow path (once per [poll_every] expansions), so the
       flight-recorder progress tick hides here: one atomic load when no
       recorder is installed, at most ~4 events/s per worker when one
       is. *)
    if Obs.Recorder.enabled () then begin
      let now = Obs.Clock.now_ns () in
      if now >= tk.next_emit_ns then begin
        tk.next_emit_ns <- Int64.add now 250_000_000L;
        Obs.Recorder.emit_ambient
          (Obs.Events.Budget_tick { nodes = Atomic.get tk.m.node_count })
      end
    end;
    check tk.m
  end
  else Atomic.get tk.m.state
