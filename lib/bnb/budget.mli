(** Cooperative budgets for anytime branch-and-bound.

    A budget says when an exact search must give up: a wall-clock
    deadline, a cap on expanded BBT nodes, and/or an external cancel
    flag (typically flipped by a SIGINT handler).  The solvers poll it
    {e cooperatively} — a cheap atomic read on the hot path, a full
    check (clock, counters, flag) every [poll_every] expansions — so a
    budgeted run always stops at a clean node boundary with its best
    incumbent, a certified lower bound and the open frontier intact.

    A budget value is pure configuration.  {!arm} turns it into a
    {!monitor}, the shared run-time state one search (or one whole
    pipeline run) polls; {!sub} derives per-block child monitors that
    observe the parent's deadline, cancel flag and global node cap
    while enforcing their own node share. *)

type status =
  | Exact  (** ran to completion — the result is the certified optimum *)
  | Deadline  (** the wall-clock deadline fired *)
  | Node_cap  (** the expansion cap was reached *)
  | Cancelled  (** the external cancel flag was set *)

val status_to_string : status -> string

val status_of_string : string -> status option
(** Inverse of {!status_to_string}; [None] on unknown names. *)

val status_to_json : status -> Obs.Json.t

type t
(** A budget specification (immutable). *)

val unlimited : t
(** No deadline, no node cap, no cancel flag: the search runs to
    completion exactly as an unbudgeted one. *)

val create :
  ?deadline_s:float ->
  ?max_nodes:int ->
  ?cancel:bool Atomic.t ->
  ?poll_every:int ->
  unit ->
  t
(** [poll_every] (default 32) is the number of expansions between full
    checks; smaller means faster reaction, more clock reads.
    @raise Invalid_argument if [deadline_s] is not positive and finite,
    or [max_nodes <= 0], or [poll_every <= 0]. *)

val is_unlimited : t -> bool
(** No constraint of any kind — solvers skip frontier capture. *)

val deadline_s : t -> float option
val max_nodes : t -> int option

val poll_every : t -> int
(** Expansions between full checks (the {!create} default is 32).
    Executors ship it with remote jobs so a worker-side monitor polls
    at the same period as a local {!sub} child would. *)

(** {2 Run-time monitors} *)

type monitor
(** Armed budget: the clock started, shared expansion counter and
    sticky trip flag.  Safe to poll from any number of domains. *)

val arm : t -> monitor
(** Start the clock now. *)

val sub : ?max_nodes:int -> ?poll_every:int -> monitor -> monitor
(** A child monitor for one sub-search (e.g. one compact-set block): it
    trips whenever the parent trips (deadline, cancel and the parent's
    global node cap included, since child expansions are counted into
    the parent too) and additionally on its own [max_nodes] share.  A
    child tripping on its own share does {e not} trip the parent.
    [poll_every] overrides the inherited polling period — useful when
    the share is smaller than the parent's period, so a tiny cap still
    trips promptly.
    @raise Invalid_argument if [poll_every <= 0]. *)

val spec : monitor -> t

val tripped : monitor -> status option
(** The sticky trip flag — one atomic read, no clock access; [None]
    while the budget still has room.  Does not consult the parent. *)

val check : monitor -> status option
(** Full check: parent chain, cancel flag, deadline, node caps.  Trips
    (stickily) on the first exhausted constraint and returns it. *)

val trip : monitor -> status -> unit
(** Force the monitor into [status] (first trip wins).  Used to record
    an external stop decision. *)

val nodes : monitor -> int
(** Expansions charged so far (including children's flushed ticks). *)

val charge : monitor -> int -> unit
(** Charge [k] expansions directly into the monitor (and its parent
    chain).  For work accounted elsewhere — e.g. a remote worker's
    expansions arriving with its result — where no local {!ticker}
    observed them. *)

(** {2 Hot-path tickers}

    One per worker domain: counts expansions locally and flushes into
    the shared monitor every [poll_every] ticks, so the common case is
    one increment and one comparison per expansion. *)

type ticker

val ticker : monitor -> ticker

val tick : ticker -> status option
(** Charge one expansion.  Returns the trip status as soon as the
    monitor is (or becomes) exhausted; the caller must then stop
    expanding and preserve its frontier. *)

val flush : ticker -> unit
(** Flush the residual local count into the monitor (call when the
    worker stops for any reason, so {!nodes} is exact). *)
