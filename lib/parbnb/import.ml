(* Aliases for modules from dependency libraries. *)

module Dist_matrix = Distmat.Dist_matrix
module Utree = Ultra.Utree
module Bb_tree = Bnb.Bb_tree
module Solver = Bnb.Solver
module Strategy = Bnb.Strategy
module Stats = Bnb.Stats
module Budget = Bnb.Budget
