open Import

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable queue : Bb_tree.node list;
  mutable parked : int;
  mutable retired : int;
  mutable finished : bool;
  n_workers : int;
  ordered : bool;
}

let create ?(ordered = false) ~n_workers () =
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    queue = [];
    parked = 0;
    retired = 0;
    finished = false;
    n_workers;
    ordered;
  }

let seed t nodes =
  Mutex.lock t.lock;
  t.queue <- nodes @ t.queue;
  Mutex.unlock t.lock

let is_empty t = t.queue = []

let donate t node =
  Mutex.lock t.lock;
  t.queue <- node :: t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock

(* Remove the queued node of least lower bound — the ordered (best-first
   stealing) discipline.  The queue is a plain list scanned under the
   lock: it holds at most a few nodes per worker, so a scan is cheaper
   than maintaining a heap across donate/drain. *)
let pop_min t =
  match t.queue with
  | [] -> None
  | first :: _ ->
      let best =
        List.fold_left
          (fun (acc : Bb_tree.node) (nd : Bb_tree.node) ->
            if nd.Bb_tree.lb < acc.Bb_tree.lb then nd else acc)
          first t.queue
      in
      let removed = ref false in
      t.queue <-
        List.filter
          (fun nd ->
            if (not !removed) && nd == best then begin
              removed := true;
              false
            end
            else true)
          t.queue;
      Some best

let take t =
  Mutex.lock t.lock;
  let rec wait () =
    if t.finished then begin
      (* A closed pool hands out no more work even if nodes remain —
         they are an interrupted run's frontier, kept for {!drain}. *)
      Mutex.unlock t.lock;
      None
    end
    else if t.ordered && t.queue <> [] then begin
      let node = pop_min t in
      Mutex.unlock t.lock;
      node
    end
    else
      match t.queue with
      | node :: rest ->
          t.queue <- rest;
          Mutex.unlock t.lock;
          Some node
      | [] ->
          t.parked <- t.parked + 1;
          if t.parked + t.retired >= t.n_workers then begin
            (* Everyone is out of work: the search space is exhausted. *)
            t.finished <- true;
            Condition.broadcast t.nonempty;
            t.parked <- t.parked - 1;
            Mutex.unlock t.lock;
            None
          end
          else begin
            Condition.wait t.nonempty t.lock;
            t.parked <- t.parked - 1;
            wait ()
          end
  in
  wait ()

let retire t =
  Mutex.lock t.lock;
  t.retired <- t.retired + 1;
  if t.parked + t.retired >= t.n_workers && t.queue = [] then begin
    t.finished <- true;
    Condition.broadcast t.nonempty
  end;
  Mutex.unlock t.lock

let close t =
  Mutex.lock t.lock;
  t.finished <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock

let drain t =
  Mutex.lock t.lock;
  let nodes = t.queue in
  t.queue <- [];
  Mutex.unlock t.lock;
  nodes
