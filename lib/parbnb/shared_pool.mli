open Import

(** The global pool (GP) of the master/slave design, plus termination
    detection.

    Workers keep private local pools and touch the global pool only when
    (a) their local pool runs dry, or (b) the global pool is empty and
    they can donate surplus work.  A worker that finds both pools empty
    parks on a condition variable; when every worker is parked the search
    is complete and all are released. *)

type t

val create : ?ordered:bool -> n_workers:int -> unit -> t
(** [ordered] (default [false]) makes {!take} hand out the queued node
    of {e least lower bound} instead of LIFO — best-first work stealing:
    whichever worker steals gets the globally most promising open node.
    Donation order then no longer matters. *)

val seed : t -> Bb_tree.node list -> unit
(** Fill the pool before the workers start. *)

val is_empty : t -> bool
(** Racy snapshot — good enough to decide whether to donate. *)

val donate : t -> Bb_tree.node -> unit
(** Push a node and wake one parked worker. *)

val take : t -> Bb_tree.node option
(** Pop a node; blocks while the pool is empty and other workers are
    still running; returns [None] once every worker is parked or
    retired (global termination), or once the pool is {!close}d. *)

val retire : t -> unit
(** A worker announces it is exiting early (e.g. its expansion cap
    fired) and will never [take] again.  Termination detection then
    counts it as permanently parked, so the remaining workers still
    unblock once they all run dry. *)

val close : t -> unit
(** Stop handing out work: every blocked or future {!take} returns
    [None] immediately.  Nodes still queued are kept for {!drain} —
    they are the interrupted search's open frontier. *)

val drain : t -> Bb_tree.node list
(** Remove and return everything still queued (newest first).  Call
    after the workers have joined to collect the frontier. *)
