(** A reusable fixed-size pool of domains for independent tasks.

    Where {!Shared_pool} is the work-sharing queue {e inside} one
    branch-and-bound search (nodes flow between workers mid-solve),
    this pool runs a batch of {e unrelated} tasks — one compact-set
    block solve each, in the pipeline — over a bounded number of
    domains.  Tasks are claimed in array order, so the caller controls
    the schedule by ordering the input (the pipeline submits blocks
    largest-first to minimise makespan); results always come back in
    input order, which keeps downstream merges deterministic whatever
    order tasks actually finished in. *)

exception Cancelled
(** Raised by {!submit} on a cancelled (or shut-down) pool, and by
    {!await} for a task that was cancelled before it started. *)

type t
(** A persistent pool: [n_workers] domains spawned once, fed through
    {!submit} until {!shutdown}.  The pipeline keeps one alive across
    all compact-set blocks of a run so per-block solves never pay a
    spawn, and so cancellation has a single place to land. *)

type 'a future
(** Handle to one submitted task's eventual result. *)

val create : n_workers:int -> t
(** Spawn the worker domains (they park until work arrives).
    @raise Invalid_argument if [n_workers < 1]. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task.  Tasks start in submission order.  A task that
    raises records the exception in its future — the worker domain
    survives and moves on to the next task.
    @raise Cancelled if the pool was cancelled or shut down. *)

val await : 'a future -> 'a
(** Block until the task finished; returns its value or re-raises its
    exception in the calling domain.
    @raise Cancelled if the task was skipped by {!cancel}. *)

val cancel : t -> unit
(** Stop accepting work: subsequent {!submit}s raise {!Cancelled},
    queued-but-unstarted tasks resolve to [Cancelled], running tasks
    finish normally (cooperative tasks should watch a {!Bnb.Budget}
    monitor to stop early).  Idempotent. *)

val shutdown : t -> unit
(** Finish whatever is queued (unless {!cancel}led first), then join
    all worker domains.  Idempotent; no [submit] may race with it. *)

(** {2 One-shot batch} *)

val map : n_workers:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~n_workers f tasks] applies [f] to every task and returns the
    results in input order.  [n_workers = 1] (or a single task) runs
    everything in the calling domain with no spawns; otherwise
    [min n_workers (Array.length tasks)] domains each repeatedly claim
    the next unclaimed index.  If any [f] raises, the first exception
    (in claim order) is re-raised after all domains have drained, and
    no further tasks are started.

    @raise Invalid_argument if [n_workers < 1]. *)
