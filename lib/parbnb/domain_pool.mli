(** A reusable fixed-size pool of domains for independent tasks.

    Where {!Shared_pool} is the work-sharing queue {e inside} one
    branch-and-bound search (nodes flow between workers mid-solve),
    this pool runs a batch of {e unrelated} tasks — one compact-set
    block solve each, in the pipeline — over a bounded number of
    domains.  Tasks are claimed in array order, so the caller controls
    the schedule by ordering the input (the pipeline submits blocks
    largest-first to minimise makespan); results always come back in
    input order, which keeps downstream merges deterministic whatever
    order tasks actually finished in. *)

val map : n_workers:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~n_workers f tasks] applies [f] to every task and returns the
    results in input order.  [n_workers = 1] (or a single task) runs
    everything in the calling domain with no spawns; otherwise
    [min n_workers (Array.length tasks)] domains each repeatedly claim
    the next unclaimed index.  If any [f] raises, the first exception
    (in claim order) is re-raised after all domains have drained, and
    no further tasks are started.

    @raise Invalid_argument if [n_workers < 1]. *)
