open Import

(** Parallel branch-and-bound for minimum ultrametric trees
    (Table 1 of the companion paper), on OCaml 5 domains.

    The master seeds a global pool with [2 * n_workers] BBT nodes
    (paper's Steps 1-5), then every worker runs branch-and-bound on a
    local pool ordered by [options.search] — the papers' depth-first
    stack by default, a best-first heap or hybrid dive otherwise, with
    best-first work stealing from the global pool — sharing two things:
    the global
    upper bound (an atomic, updated whenever a better complete tree is
    found — the mechanism behind the reported super-linear speedups) and
    the global pool (refilled by busy workers whenever it runs dry, the
    papers' two-level load-balancing scheme).

    The result cost always equals the sequential solver's (see the test
    suite); the returned tree is one optimal tree, not necessarily the
    same one the sequential search reports first. *)

type outcome = {
  tree : Utree.t;
  cost : float;
  optimal : bool;
      (** false only when a worker exhausted its per-worker node share
          ([options.max_expanded], enforced as a {!Budget.sub} child of
          the run monitor) *)
  stats : Stats.t;  (** merged over workers *)
  n_workers : int;
  worker_stats : Stats.t array;
      (** per-worker search counters, in worker-id order (a single entry
          for the [n <= 2] sequential fallback) — the load-balance
          picture behind the merged [stats] *)
  report : Obs.Report.t;
      (** run manifest: seed/search phase timings and one worker entry
          per domain *)
  status : Budget.status;
      (** [Exact] for a completed search; the tripped constraint
          otherwise ([Node_cap] also covers an exhausted per-worker
          node share) *)
  lower_bound : float;
      (** certified global lower bound (equals [cost] when exact and
          [gap = 0.]) *)
  certified_gap : float;
      (** certified relative gap [(cost - lower_bound) / lower_bound];
          [0.] for a completed exact search, at most [options.gap] for a
          completed tolerance run (see {!Solver.certify}) *)
  frontier : Bb_tree.node list;
      (** open nodes at the stop (permuted labels): workers' local
          queues plus whatever was left in the global pool *)
}

val solve :
  ?options:Solver.options ->
  ?budget:Budget.t ->
  ?monitor:Budget.monitor ->
  ?resume:Solver.resume ->
  ?progress:Obs.Progress.t ->
  ?n_workers:int ->
  Dist_matrix.t ->
  outcome
(** [solve ~n_workers dm] — [n_workers] defaults to
    [Domain.recommended_domain_count () - 1], at least 1.

    [budget] (or an externally armed [monitor], which wins) bounds the
    whole parallel search: every worker polls the shared monitor; the
    first to observe exhaustion closes the global pool, the others
    drain within one expansion each, and the union of their local
    queues and the pool becomes [frontier].  [resume] seeds the search
    from a checkpointed frontier instead of the root (the master still
    widens it to feed every worker).

    Telemetry: the solve runs under an [Obs.Span] named
    ["parbnb.solve"]; with [progress], every worker feeds the sampler
    (tagged by worker id) from its inner loop.

    @raise Invalid_argument on an empty matrix or [n_workers < 1]. *)
