exception Cancelled

(* Pool scheduling metrics: how long submitted tasks sat queued before a
   domain picked them up (milliseconds — sub-millisecond waits all land
   in the first log-scale bucket, which is the uninteresting case), and
   how many ran.  Flushed straight to the default registry; the dump's
   p50/p95/p99 of task_wait_ms is the block scheduler's queue pressure. *)
module M = struct
  let tasks = lazy (Obs.Metrics.counter "domain_pool.tasks")
  let task_wait_ms = lazy (Obs.Metrics.histogram "domain_pool.task_wait_ms")

  (* Live scheduler state for /metrics and [phylo top].  Gauges are
     process-wide: with several pools alive the last writer wins, which
     in practice is the one pool the pipeline runs. *)
  let size = lazy (Obs.Metrics.gauge "domain_pool.size")
  let queue_depth = lazy (Obs.Metrics.gauge "domain_pool.queue_depth")
  let busy = lazy (Obs.Metrics.gauge "domain_pool.busy")

  let started ~waited_s =
    Obs.Metrics.incr (Lazy.force tasks);
    Obs.Metrics.observe (Lazy.force task_wait_ms) (waited_s *. 1e3)

  let set_queue_depth n = Obs.Metrics.set (Lazy.force queue_depth) (float_of_int n)
  let set_busy n = Obs.Metrics.set (Lazy.force busy) (float_of_int n)
end

(* --- persistent pool --- *)

type 'a cell = Pending | Done of 'a | Failed of exn | Skipped

type 'a future = {
  f_lock : Mutex.t;
  f_filled : Condition.t;
  mutable cell : 'a cell;
}

type job = { run : unit -> unit; skip : unit -> unit }

type t = {
  lock : Mutex.t;
  work : Condition.t;
  queue : job Queue.t;
  running : int Atomic.t;  (* jobs currently executing, for the gauge *)
  mutable cancelled : bool;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let fill fut cell =
  Mutex.lock fut.f_lock;
  (match fut.cell with Pending -> fut.cell <- cell | _ -> ());
  Condition.broadcast fut.f_filled;
  Mutex.unlock fut.f_lock

let worker pool () =
  let rec next () =
    Mutex.lock pool.lock;
    let rec get () =
      if pool.cancelled then begin
        (* Unstarted jobs are abandoned, their futures resolved so no
           awaiter blocks forever. *)
        let skipped = List.of_seq (Queue.to_seq pool.queue) in
        Queue.clear pool.queue;
        M.set_queue_depth 0;
        Mutex.unlock pool.lock;
        List.iter (fun j -> j.skip ()) skipped;
        None
      end
      else
        match Queue.take_opt pool.queue with
        | Some job ->
            M.set_queue_depth (Queue.length pool.queue);
            Mutex.unlock pool.lock;
            Some job
        | None ->
            if pool.stopping then begin
              Mutex.unlock pool.lock;
              None
            end
            else begin
              Condition.wait pool.work pool.lock;
              get ()
            end
    in
    match get () with
    | None -> ()
    | Some job ->
        M.set_busy (1 + Atomic.fetch_and_add pool.running 1);
        job.run ();
        M.set_busy (Atomic.fetch_and_add pool.running (-1) - 1);
        next ()
  in
  next ()

let create ~n_workers =
  if n_workers < 1 then invalid_arg "Domain_pool.create: n_workers < 1";
  let pool =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      running = Atomic.make 0;
      cancelled = false;
      stopping = false;
      domains = [];
    }
  in
  Obs.Metrics.set (Lazy.force M.size) (float_of_int n_workers);
  M.set_queue_depth 0;
  M.set_busy 0;
  pool.domains <- List.init n_workers (fun _ -> Domain.spawn (worker pool));
  pool

let submit pool f =
  let fut = { f_lock = Mutex.create (); f_filled = Condition.create (); cell = Pending } in
  let queued = Obs.Clock.counter () in
  let job =
    {
      (* Task exceptions land in the future, never in the worker: one
         raising task cannot take a pool domain down with it. *)
      run =
        (fun () ->
          M.started ~waited_s:(Obs.Clock.elapsed_s queued);
          fill fut (match f () with v -> Done v | exception e -> Failed e));
      skip = (fun () -> fill fut Skipped);
    }
  in
  Mutex.lock pool.lock;
  if pool.cancelled || pool.stopping then begin
    Mutex.unlock pool.lock;
    raise Cancelled
  end;
  Queue.add job pool.queue;
  M.set_queue_depth (Queue.length pool.queue);
  Condition.signal pool.work;
  Mutex.unlock pool.lock;
  fut

let await fut =
  Mutex.lock fut.f_lock;
  while (match fut.cell with Pending -> true | _ -> false) do
    Condition.wait fut.f_filled fut.f_lock
  done;
  let cell = fut.cell in
  Mutex.unlock fut.f_lock;
  match cell with
  | Done v -> v
  | Failed e -> raise e
  | Skipped -> raise Cancelled
  | Pending -> assert false

let cancel pool =
  Mutex.lock pool.lock;
  pool.cancelled <- true;
  let skipped = List.of_seq (Queue.to_seq pool.queue) in
  Queue.clear pool.queue;
  M.set_queue_depth 0;
  Condition.broadcast pool.work;
  Mutex.unlock pool.lock;
  List.iter (fun j -> j.skip ()) skipped

let shutdown pool =
  Mutex.lock pool.lock;
  pool.stopping <- true;
  Condition.broadcast pool.work;
  let domains = pool.domains in
  pool.domains <- [];
  Mutex.unlock pool.lock;
  List.iter Domain.join domains

(* --- one-shot batch map --- *)

let map ~n_workers f tasks =
  if n_workers < 1 then invalid_arg "Domain_pool.map: n_workers < 1";
  let n = Array.length tasks in
  if n_workers = 1 || n <= 1 then Array.map f tasks
  else begin
    let next = Atomic.make 0 in
    let stop = Atomic.make false in
    let results = Array.make n None in
    let errors = Array.make n None in
    let rec drain () =
      if not (Atomic.get stop) then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f tasks.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
              errors.(i) <- Some e;
              Atomic.set stop true);
          drain ()
        end
      end
    in
    let domains =
      List.init (Int.min n_workers n) (fun _ -> Domain.spawn drain)
    in
    List.iter Domain.join domains;
    (* Claim order is index order, so the first recorded exception is the
       first one raised among tasks that actually started. *)
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Domain_pool.map: unreachable missing result")
      results
  end
