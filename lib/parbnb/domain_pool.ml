let map ~n_workers f tasks =
  if n_workers < 1 then invalid_arg "Domain_pool.map: n_workers < 1";
  let n = Array.length tasks in
  if n_workers = 1 || n <= 1 then Array.map f tasks
  else begin
    let next = Atomic.make 0 in
    let stop = Atomic.make false in
    let results = Array.make n None in
    let errors = Array.make n None in
    let rec drain () =
      if not (Atomic.get stop) then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f tasks.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
              errors.(i) <- Some e;
              Atomic.set stop true);
          drain ()
        end
      end
    in
    let domains =
      List.init (Int.min n_workers n) (fun _ -> Domain.spawn drain)
    in
    List.iter Domain.join domains;
    (* Claim order is index order, so the first recorded exception is the
       first one raised among tasks that actually started. *)
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Domain_pool.map: unreachable missing result")
      results
  end
