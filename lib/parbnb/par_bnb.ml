open Import

let src = Logs.Src.create "compactphy.parbnb" ~doc:"Parallel branch-and-bound"

module Log = (val Logs.src_log src : Logs.LOG)

type outcome = {
  tree : Utree.t;
  cost : float;
  optimal : bool;
  stats : Stats.t;
  n_workers : int;
  worker_stats : Stats.t array;
  report : Obs.Report.t;
  status : Budget.status;
  lower_bound : float;
  certified_gap : float;
  frontier : Bb_tree.node list;
}

type shared = {
  ub : float Atomic.t;
  best : (float * Utree.t) option ref;
  best_lock : Mutex.t;
  pool : Shared_pool.t;
  node_capped : bool Atomic.t;
      (* some worker exhausted its per-worker node share ([Budget.sub]
         child monitor), so the search is incomplete even though the
         whole-run monitor never tripped *)
}

let publish shared cost tree =
  (* Lower the atomic upper bound to [cost] and record the tree.  The CAS
     loop keeps the bound monotone under concurrent updates. *)
  let rec lower () =
    let current = Atomic.get shared.ub in
    if cost < current then
      if not (Atomic.compare_and_set shared.ub current cost) then lower ()
      else begin
        Mutex.lock shared.best_lock;
        (match !(shared.best) with
        | Some (c, _) when c <= cost -> ()
        | Some _ | None -> shared.best := Some (cost, tree));
        Mutex.unlock shared.best_lock;
        Obs.Recorder.emit_ambient (Obs.Events.Incumbent { cost })
      end
  in
  lower ()

let worker problem shared ~monitor ~node_share ~id ~progress () =
  let stats = Stats.create () in
  (* A per-worker node share is a [Budget.sub] child of the run monitor:
     it observes the parent's deadline, cancel flag and global cap while
     enforcing its own [max_nodes].  The polling period shrinks to the
     share so tiny caps still trip promptly. *)
  let wmon =
    match node_share with
    | None -> monitor
    | Some cap -> Budget.sub ~max_nodes:cap ~poll_every:(Int.min 32 cap) monitor
  in
  let tk = Budget.ticker wmon in
  let rpulse = Obs.Recorder.pulse () in
  (* The local pool honours the configured exploration strategy; for the
     historical [Dfs] it is exactly the old cons-list stack. *)
  let local = Strategy.Frontier.create problem.Solver.opts.Solver.search in
  let gap = problem.Solver.opts.Solver.gap in
  let gap_scale = 1. +. gap in
  let stopped = ref false in
  let capped = ref false in
  (* Attribution mirrors the sequential solver: a prune whose node cost
     already met the (racy, monotone) incumbent snapshot is the
     incumbent's; if its exact bound did, the LB1 suffix supplied the
     margin; otherwise only the gap tolerance closed it. *)
  let lb_reason ~cost ~lb ~u =
    if cost >= u then Obs.Attribution.Incumbent
    else if lb >= u then Obs.Attribution.Lb1_suffix
    else Obs.Attribution.Gap_tolerance
  in
  let process (node : Bb_tree.node) =
    let u = Atomic.get shared.ub in
    if node.lb *. gap_scale >= u then begin
      stats.Stats.pruned <- stats.Stats.pruned + 1;
      Obs.Attribution.prune stats.Stats.att
        (lb_reason ~cost:node.Bb_tree.cost ~lb:node.Bb_tree.lb ~u)
        ~depth:node.Bb_tree.k 1
    end
    else if Bb_tree.is_complete problem.Solver.pm node then
      publish shared node.cost node.tree
    else
      match Budget.tick tk with
      | Some _ ->
          (* Budget exhausted: keep the node in hand as part of this
             worker's frontier share.  When only the child tripped (the
             whole-run monitor is clean), it was this worker's own node
             share — the siblings keep going, so the surplus is donated
             rather than the pool closed. *)
          if node_share <> None && Budget.tripped monitor = None then
            capped := true
          else stopped := true;
          Obs.Attribution.prune stats.Stats.att Budget_stop
            ~depth:node.Bb_tree.k 1;
          Strategy.Frontier.push local node
      | None -> begin
          (* A racy snapshot of the shared incumbent is safe here: the
             kernel's pre-pruning is conservative for any ub >= the true
             incumbent, and the per-child checks below re-filter exactly.
             The gap divide turns the snapshot into the effective
             tolerance bound (an exact no-op when gap = 0). *)
          let children =
            Solver.expand
              ~ub:(Atomic.get shared.ub /. gap_scale)
              problem node stats
          in
          List.iter
            (fun (c : Bb_tree.node) ->
              if Bb_tree.is_complete problem.Solver.pm c then begin
                if c.cost < Atomic.get shared.ub then
                  publish shared c.cost c.tree
              end
              else
                let u = Atomic.get shared.ub in
                if c.lb *. gap_scale < u then Strategy.Frontier.push local c
                else begin
                  stats.Stats.pruned <- stats.Stats.pruned + 1;
                  Obs.Attribution.prune stats.Stats.att
                    (lb_reason ~cost:c.Bb_tree.cost ~lb:c.Bb_tree.lb ~u)
                    ~depth:c.Bb_tree.k 1
                end)
            (List.rev children);
          let olen = Strategy.Frontier.length local in
          stats.Stats.max_open <- Int.max stats.Stats.max_open olen;
          ignore
            (Obs.Recorder.sample rpulse ~worker:id
               ~expanded:stats.Stats.expanded ~pruned:stats.Stats.pruned
               ~open_nodes:olen ~ub:(Atomic.get shared.ub)
               ~lb:node.Bb_tree.lb);
          match progress with
          | None -> ()
          | Some p ->
              Obs.Progress.sample p ~worker:id ~expanded:stats.Stats.expanded
                ~pruned:stats.Stats.pruned ~open_depth:olen
                ~ub:(Atomic.get shared.ub) ~lb:node.Bb_tree.lb
        end
  in
  let rec run () =
    if !stopped then
      (* Release every parked worker; queued pool nodes stay for the
         frontier drain, the local queue is returned to the caller. *)
      Shared_pool.close shared.pool
    else if !capped then begin
      (* Own node share exhausted: return surplus work so other workers
         can finish it; flag the run as capped since this worker
         abandoned its own. *)
      Atomic.set shared.node_capped true;
      List.iter (Shared_pool.donate shared.pool)
        (Strategy.Frontier.drain local);
      Shared_pool.retire shared.pool
    end
    else
      match Strategy.Frontier.pop local with
      | Some node ->
          (* Two-level load balancing: when the global pool is dry and we
             still have queued work, donate our worst-lower-bound node. *)
          (if Shared_pool.is_empty shared.pool then
             match Strategy.Frontier.take_worst local with
             | Some worst -> Shared_pool.donate shared.pool worst
             | None -> ());
          process node;
          run ()
      | None -> (
          match Shared_pool.take shared.pool with
          | Some node ->
              process node;
              run ()
          | None -> ())
  in
  run ();
  Budget.flush tk;
  (stats, Strategy.Frontier.drain local)

let solve ?(options = Solver.default_options) ?budget ?monitor ?resume
    ?progress ?n_workers dm =
  let n_workers =
    match n_workers with
    | Some p ->
        if p < 1 then invalid_arg "Par_bnb.solve: n_workers < 1";
        p
    | None -> Int.max 1 (Domain.recommended_domain_count () - 1)
  in
  let monitor =
    match (monitor, budget) with
    | Some m, _ -> m
    | None, Some b -> Budget.arm b
    | None, None -> Budget.arm Budget.unlimited
  in
  let n = Dist_matrix.size dm in
  if n <= 2 then begin
    let r = Solver.solve ~options ~monitor ?resume dm in
    let report = Obs.Report.create "par_bnb" in
    Obs.Report.set report "n" (Obs.Json.Int n);
    Obs.Report.set report "status" (Budget.status_to_json r.Solver.status);
    Obs.Report.set report "lower_bound" (Obs.Json.Float r.Solver.lower_bound);
    Obs.Report.set report "certified_gap"
      (Obs.Json.Float r.Solver.certified_gap);
    {
      tree = r.Solver.tree;
      cost = r.Solver.cost;
      optimal = r.Solver.optimal;
      stats = r.Solver.stats;
      n_workers;
      worker_stats = [| r.Solver.stats |];
      report;
      status = r.Solver.status;
      lower_bound = r.Solver.lower_bound;
      certified_gap = r.Solver.certified_gap;
      frontier = r.Solver.frontier;
    }
  end
  else
    Obs.Span.with_span "parbnb.solve"
      ~args:[ ("n", Obs.Json.Int n); ("workers", Obs.Json.Int n_workers) ]
      @@ fun () ->
    let report = Obs.Report.create "par_bnb" in
    Obs.Report.set report "n" (Obs.Json.Int n);
    Obs.Report.set report "n_workers" (Obs.Json.Int n_workers);
    let problem = Solver.prepare ~options dm in
    let stats = Stats.create () in
    let start_nodes, ub_init, best_init =
      match resume with
      | None ->
          ( [ Bb_tree.root problem.Solver.pm ],
            problem.Solver.ub0,
            Option.map
              (fun t -> (problem.Solver.ub0, t))
              problem.Solver.incumbent0 )
      | Some (r : Solver.resume) ->
          let nodes =
            List.map
              (fun (k, tree) ->
                let cost = Utree.weight tree in
                { Bb_tree.tree; k; cost; lb = cost +. problem.Solver.lb_extra.(k) })
              r.Solver.r_frontier
          in
          if r.Solver.r_ub < problem.Solver.ub0 then
            ( nodes,
              r.Solver.r_ub,
              Option.map (fun t -> (r.Solver.r_ub, t)) r.Solver.r_incumbent )
          else
            ( nodes,
              problem.Solver.ub0,
              Option.map
                (fun t -> (problem.Solver.ub0, t))
                problem.Solver.incumbent0 )
    in
    let shared =
      {
        ub = Atomic.make ub_init;
        best = ref best_init;
        best_lock = Mutex.create ();
        pool =
          Shared_pool.create
            ~ordered:(options.Solver.search <> Solver.Dfs)
            ~n_workers ();
        node_capped = Atomic.make false;
      }
    in
    (* Master phase: breadth-first expansion until the frontier can feed
       every worker twice over (paper's Step 5). *)
    let target = 2 * n_workers in
    let gap_scale = 1. +. options.Solver.gap in
    let mtk = Budget.ticker monitor in
    let rec widen frontier =
      let expandable, complete =
        List.partition
          (fun (nd : Bb_tree.node) ->
            not (Bb_tree.is_complete problem.Solver.pm nd))
          frontier
      in
      List.iter
        (fun (nd : Bb_tree.node) ->
          if nd.Bb_tree.cost < Atomic.get shared.ub then
            publish shared nd.cost nd.tree)
        complete;
      match expandable with
      | [] -> []
      | _ when List.length expandable >= target -> expandable
      | nd :: rest ->
          let u = Atomic.get shared.ub in
          if nd.Bb_tree.lb *. gap_scale >= u then begin
            stats.Stats.pruned <- stats.Stats.pruned + 1;
            Obs.Attribution.prune stats.Stats.att
              (if nd.Bb_tree.cost >= u then Obs.Attribution.Incumbent
               else if nd.Bb_tree.lb >= u then Obs.Attribution.Lb1_suffix
               else Obs.Attribution.Gap_tolerance)
              ~depth:nd.Bb_tree.k 1;
            widen rest
          end
          else begin
            match Budget.tick mtk with
            | Some _ ->
                (* Budget already exhausted: stop seeding; the workers
                   will observe the trip and preserve the frontier. *)
                expandable
            | None ->
                (* No [~ub]: the seeding phase must hand every worker real
                   work, pruned-or-not, so worker-count scaling behaves the
                   same as the reference path. *)
                widen (rest @ Solver.expand problem nd stats)
          end
    in
    let seedwork, seed_s =
      Obs.Clock.time (fun () ->
          match Budget.check monitor with
          | Some _ -> start_nodes
          | None -> widen start_nodes)
    in
    Budget.flush mtk;
    Obs.Report.add_phase report "seed" seed_s
      ~meta:[ ("frontier", Obs.Json.Int (List.length seedwork)) ];
    Log.debug (fun m ->
        m "seeding %d workers with %d nodes (initial UB %g)" n_workers
          (List.length seedwork) problem.Solver.ub0);
    Shared_pool.seed shared.pool seedwork;
    let t_search = Obs.Clock.counter () in
    let domains =
      List.init n_workers (fun id ->
          Domain.spawn
            (worker problem shared ~monitor
               ~node_share:options.Solver.max_expanded ~id ~progress))
    in
    let results = List.map Domain.join domains in
    let worker_stats = Array.of_list (List.map fst results) in
    Obs.Report.add_phase report "search" (Obs.Clock.elapsed_s t_search);
    Array.iteri
      (fun id ws ->
        Stats.add stats ws;
        Obs.Report.add_worker report
          (("worker", Obs.Json.Int id) :: [ ("stats", Stats.to_json ws) ]))
      worker_stats;
    let frontier =
      List.concat_map snd results @ Shared_pool.drain shared.pool
    in
    let status =
      match Budget.tripped monitor with
      | Some s -> s
      | None ->
          if Atomic.get shared.node_capped then Budget.Node_cap
          else Budget.Exact
    in
    let cost, tree =
      match !(shared.best) with
      | Some (c, t) -> (c, Solver.relabel_out problem t)
      | None ->
          (* No heuristic and the cap aborted everything before any
             complete tree was built: fall back like the sequential
             solver does. *)
          let fallback = Clustering.Linkage.upgmm dm in
          (Utree.weight fallback, fallback)
    in
    let lower_bound =
      (* Every pruned node's bound was >= incumbent / (1 + gap), so the
         incumbent scaled down by the tolerance bounds the whole space;
         open frontier nodes can certify less. *)
      List.fold_left
        (fun acc (nd : Bb_tree.node) -> Float.min acc nd.Bb_tree.lb)
        (cost /. gap_scale) frontier
    in
    let certified_gap =
      Solver.certify ~gap:options.Solver.gap
        ~exhausted:(frontier = [])
        ~cost ~lower_bound
    in
    Obs.Report.set report "stats" (Stats.to_json stats);
    Obs.Report.set report "attribution"
      (Obs.Attribution.cells_to_json stats.Stats.att);
    Obs.Report.set report "status" (Budget.status_to_json status);
    Obs.Report.set report "lower_bound" (Obs.Json.Float lower_bound);
    Obs.Report.set report "certified_gap" (Obs.Json.Float certified_gap);
    (* The merged per-worker cells feed the process-wide aggregate once
       per parallel solve (the sequential path flushes in Solver.solve;
       the n <= 2 fast path above went through it already). *)
    Obs.Attribution.flush stats.Stats.att;
    {
      tree;
      cost;
      optimal =
        (not (Atomic.get shared.node_capped))
        && status = Budget.Exact
        && options.Solver.gap = 0.;
      stats;
      n_workers;
      worker_stats;
      report;
      status;
      lower_bound;
      certified_gap;
      frontier;
    }
