(** Dense symmetric distance matrices over species [0 .. n-1].

    This is the input model of the whole system: the paper constructs
    ultrametric trees from an [n * n] symmetric matrix with zero diagonal
    whose entries obey the triangle inequality (see {!Metric}). *)

type t
(** A symmetric [n * n] matrix of non-negative distances.  The
    representation enforces symmetry: updating [(i, j)] also updates
    [(j, i)]. *)

val create : int -> t
(** [create n] is the all-zero [n * n] matrix.  @raise Invalid_argument if
    [n <= 0]. *)

val size : t -> int
(** Number of species [n]. *)

val get : t -> int -> int -> float
(** [get m i j] is the distance between species [i] and [j].
    @raise Invalid_argument on out-of-range indices. *)

val unsafe_get : t -> int -> int -> float
(** [get] without bounds checks.  For hot solver loops whose indices
    were validated once up front (see {!Bnb.Kernel.prepare}); anything
    else should use {!get}. *)

val unsafe_data : t -> float array
(** The raw row-major backing store ([n * n] entries, entry [(i, j)] at
    [i * n + j]).  Borrowed, not copied: callers must treat it as
    read-only — writing would bypass the symmetry and validity
    invariants.  Intended for kernels that stride a row with
    [Array.unsafe_get]. *)

val row : t -> int -> float array
(** [row m i] is a fresh copy of row [i] ([n] entries, [row.(i) = 0.]).
    @raise Invalid_argument on an out-of-range index. *)

val row_minima : t -> float array
(** [row_minima m] is the array of [min_{j <> i} get m i j] for every
    [i], computed in one pass over the upper triangle.  Shared by the
    LB1 suffix bounds and the solver kernels.
    @raise Invalid_argument for a 1x1 matrix. *)

val set : t -> int -> int -> float -> unit
(** [set m i j d] sets the distance between [i] and [j] (and [j] and [i])
    to [d].  @raise Invalid_argument on out-of-range indices, on [i = j]
    with [d <> 0.], or on negative or non-finite [d]. *)

val init : int -> (int -> int -> float) -> t
(** [init n f] builds a matrix with entry [(i, j)] equal to [f i j] for
    [i < j].  [f] is only called on pairs [i < j]; the diagonal is zero. *)

val of_rows : float array array -> t
(** Build from a full square array of rows.
    @raise Invalid_argument if the array is not square, not symmetric,
    has a non-zero diagonal, or has negative entries. *)

val to_rows : t -> float array array
(** Full square array copy of the matrix. *)

val copy : t -> t

val sub : t -> int array -> t
(** [sub m idx] is the principal submatrix of [m] restricted to the
    species listed in [idx] (in that order).
    @raise Invalid_argument if [idx] contains an out-of-range or repeated
    index. *)

val equal : ?eps:float -> t -> t -> bool
(** Entry-wise equality up to [eps] (default [0.]). *)

val max_entry : t -> float
(** Largest entry; [0.] for a 1x1 matrix. *)

val min_off_diagonal : t -> float
(** Smallest off-diagonal entry.
    @raise Invalid_argument for a 1x1 matrix. *)

val farthest_pair : t -> int * int
(** A pair [(i, j)], [i < j], achieving the maximum distance.
    @raise Invalid_argument for a 1x1 matrix. *)

val iter_pairs : (int -> int -> float -> unit) -> t -> unit
(** Iterate over all pairs [i < j]. *)

val fold_pairs : ('a -> int -> int -> float -> 'a) -> 'a -> t -> 'a
(** Fold over all pairs [i < j]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering (rows of fixed-width entries). *)
