type t = { n : int; data : float array }
(* Row-major full storage: [data.(i * n + j)].  Full (not triangular)
   storage doubles memory but keeps [get] branch-free, which matters in the
   branch-and-bound inner loops. *)

let create n =
  if n <= 0 then invalid_arg "Dist_matrix.create: size must be positive";
  { n; data = Array.make (n * n) 0. }

let size m = m.n

let check_index m i =
  if i < 0 || i >= m.n then
    invalid_arg
      (Printf.sprintf "Dist_matrix: index %d out of range [0, %d)" i m.n)

let get m i j =
  check_index m i;
  check_index m j;
  Array.unsafe_get m.data ((i * m.n) + j)

let unsafe_get m i j = Array.unsafe_get m.data ((i * m.n) + j)
let unsafe_data m = m.data

let row m i =
  check_index m i;
  Array.sub m.data (i * m.n) m.n

let row_minima m =
  if m.n < 2 then invalid_arg "Dist_matrix.row_minima: need n >= 2";
  (* One pass over the upper triangle updates both endpoints of each
     pair, so the whole array costs n(n-1)/2 reads. *)
  let mins = Array.make m.n infinity in
  for i = 0 to m.n - 1 do
    let base = i * m.n in
    for j = i + 1 to m.n - 1 do
      let d = Array.unsafe_get m.data (base + j) in
      if d < Array.unsafe_get mins i then Array.unsafe_set mins i d;
      if d < Array.unsafe_get mins j then Array.unsafe_set mins j d
    done
  done;
  mins

let set m i j d =
  check_index m i;
  check_index m j;
  if i = j && d <> 0. then
    invalid_arg "Dist_matrix.set: diagonal entries must be zero";
  if not (Float.is_finite d) then
    invalid_arg "Dist_matrix.set: distance must be finite";
  if d < 0. then invalid_arg "Dist_matrix.set: negative distance";
  m.data.((i * m.n) + j) <- d;
  m.data.((j * m.n) + i) <- d

let init n f =
  let m = create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      set m i j (f i j)
    done
  done;
  m

let of_rows rows =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Dist_matrix.of_rows: empty";
  Array.iter
    (fun r ->
      if Array.length r <> n then invalid_arg "Dist_matrix.of_rows: not square")
    rows;
  for i = 0 to n - 1 do
    if rows.(i).(i) <> 0. then
      invalid_arg "Dist_matrix.of_rows: non-zero diagonal";
    for j = 0 to n - 1 do
      if not (Float.is_finite rows.(i).(j)) then
        invalid_arg "Dist_matrix.of_rows: non-finite entry";
      if rows.(i).(j) < 0. then
        invalid_arg "Dist_matrix.of_rows: negative entry";
      if rows.(i).(j) <> rows.(j).(i) then
        invalid_arg "Dist_matrix.of_rows: not symmetric"
    done
  done;
  init n (fun i j -> rows.(i).(j))

let to_rows m =
  Array.init m.n (fun i -> Array.init m.n (fun j -> get m i j))

let copy m = { n = m.n; data = Array.copy m.data }

let sub m idx =
  let k = Array.length idx in
  if k = 0 then invalid_arg "Dist_matrix.sub: empty index set";
  Array.iter (fun i -> check_index m i) idx;
  let seen = Array.make m.n false in
  Array.iter
    (fun i ->
      if seen.(i) then invalid_arg "Dist_matrix.sub: repeated index";
      seen.(i) <- true)
    idx;
  init k (fun a b -> get m idx.(a) idx.(b))

let equal ?(eps = 0.) a b =
  a.n = b.n
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.data b.data

let max_entry m = Array.fold_left Float.max 0. m.data

let min_off_diagonal m =
  if m.n < 2 then invalid_arg "Dist_matrix.min_off_diagonal: need n >= 2";
  let best = ref infinity in
  for i = 0 to m.n - 1 do
    for j = i + 1 to m.n - 1 do
      let d = get m i j in
      if d < !best then best := d
    done
  done;
  !best

let farthest_pair m =
  if m.n < 2 then invalid_arg "Dist_matrix.farthest_pair: need n >= 2";
  let bi = ref 0 and bj = ref 1 and best = ref neg_infinity in
  for i = 0 to m.n - 1 do
    for j = i + 1 to m.n - 1 do
      let d = get m i j in
      if d > !best then begin
        best := d;
        bi := i;
        bj := j
      end
    done
  done;
  (!bi, !bj)

let iter_pairs f m =
  for i = 0 to m.n - 1 do
    for j = i + 1 to m.n - 1 do
      f i j (get m i j)
    done
  done

let fold_pairs f acc m =
  let acc = ref acc in
  iter_pairs (fun i j d -> acc := f !acc i j d) m;
  !acc

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.n - 1 do
    if i > 0 then Format.fprintf ppf "@,";
    for j = 0 to m.n - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%8.3f" (get m i j)
    done
  done;
  Format.fprintf ppf "@]"
