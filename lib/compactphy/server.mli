(** The [phylo serve] daemon: tree construction over HTTP.

    One process holds a persistent {!Domain_pool} and the
    content-addressed {!Subsolve_cache} warm across requests, so a
    stream of related matrices — re-runs, sweeps, the same blocks
    reached through different decompositions — amortises both domain
    spawns and sub-solve work.  The HTTP side reuses the
    {!Obs.Serve} telemetry listener with an application handler: every
    connection runs on its own thread, and the builtin [/metrics],
    [/healthz] and [/events] endpoints keep answering while solves run.

    Endpoints (on top of the {!Obs.Serve} builtins):

    - [POST /solve?method=compact|exact] — body: a PHYLIP distance
      matrix (square or lower-triangular).  The request queues onto the
      domain pool; the response is JSON with the Newick tree ([newick],
      using the matrix's species names), [cost] (and bit-exact
      [cost_hex]), [status], [optimal], [n_blocks], [elapsed_s],
      the run's [cache] provenance section (hits/misses per block),
      and the [request_id] — the same id {!Obs.Serve} echoes on the
      [X-Request-Id] response header and writes to the access log;
      it also becomes the solve's [run_id] trace context, so spans
      from this request (local or on remote workers) are attributable
      in a merged timeline.
      Errors: 400 (bad matrix or method), 413 (body over 8 MiB),
      422 (config rejected), 503 (shutting down).
    - [GET /status] — JSON: current [queue_depth], requests
      [completed], and the installed cache's counters.

    The [serve.queue_depth] gauge (requests accepted but not yet
    answered) and [serve.requests] / [serve.errors] counters are
    published into {!Obs.Metrics.default}, next to the [cache.*]
    family, so a [/metrics] scrape shows load and cache effectiveness
    together. *)

type t

val src : Logs.src
(** Log source ["compactphy.server"]. *)

val start :
  ?config:Run_config.t ->
  ?recorder:Obs.Recorder.t ->
  ?host:string ->
  ?port:int ->
  ?socket:string ->
  ?pool_workers:int ->
  unit ->
  t
(** Validate the configuration, install its [cache_dir] cache if any
    (so cache counters are visible from the first scrape), spawn the
    domain pool and bind the listener.  [config] drives every solve
    (default {!Run_config.default}); [pool_workers] bounds concurrent
    solves (default [max 1 config.block_workers]); [host] / [port] /
    [socket] as in {!Obs.Serve.start} ([port] defaults to 0,
    ephemeral — read it back with {!port} / {!addr_string}).
    @raise Invalid_argument on an invalid configuration,
    [pool_workers < 1], or both [~port] and [~socket]. *)

val addr_string : t -> string
(** ["http://HOST:PORT"] or the socket path. *)

val port : t -> int option
(** The bound TCP port; [None] for Unix sockets. *)

val queue_depth : t -> int
(** Solve requests accepted but not yet answered (the
    [serve.queue_depth] gauge's source). *)

val stop : t -> unit
(** Drain and shut down: new [/solve] requests are refused with 503,
    the listener stops (joining every in-flight connection thread, so
    each accepted request gets its answer), then the domain pool is
    joined.  Safe to call from a signal-triggered context. *)
