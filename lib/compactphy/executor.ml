open Import

let src = Logs.Src.create "compactphy.executor" ~doc:"Block-solve executors"

module Log = (val Logs.src_log src : Logs.LOG)

type kind = Local | Sim | Tcp

let kind_to_string = function Local -> "local" | Sim -> "sim" | Tcp -> "tcp"

let kind_of_string = function
  | "local" -> Some Local
  | "sim" -> Some Sim
  | "tcp" -> Some Tcp
  | _ -> None

(* "HOST:PORT" (or a bare port) for the TCP pool.  Unlike
   [Obs.Serve.target_of_string] this accepts port 0 — bind-time
   ephemeral ports are how tests and CI avoid picking a fixed port —
   and never a Unix socket path (remote workers need TCP). *)
let parse_addr s =
  match String.rindex_opt s ':' with
  | Some i -> (
      let host = String.sub s 0 i in
      let host = if host = "" then "127.0.0.1" else host in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some p when p >= 0 && p < 65536 -> Ok (host, p)
      | Some _ | None -> Error (Printf.sprintf "bad port in %S" s))
  | None -> (
      match int_of_string_opt s with
      | Some p when p >= 0 && p < 65536 -> Ok ("127.0.0.1", p)
      | Some _ | None ->
          Error (Printf.sprintf "cannot parse %S (want HOST:PORT)" s))

type job = {
  j_id : int;
  j_size : int;
  j_matrix : Dist_matrix.t;
  j_options : Solver.options;
  j_workers : int;
  j_node_share : int option;
  j_poll_every : int;
  j_resume : [ `Solved of Utree.t | `Restart of Solver.resume ] option;
  j_cache : bool;
  j_trace : string option;
}

type solved = {
  s_stats : Stats.t;
  s_tree : Utree.t;
  s_status : Budget.status;
  s_lb : float;
  s_gap : float;
  s_optimal : bool;
  s_frontier : Utree.t list;
  s_from_cache : bool;
}

type outcome = {
  o_job : int;
  o_solved : solved;
  o_queue_wait_s : float;
  o_solve_s : float;
}

type future = { await : unit -> outcome }

type t = {
  name : string;
  capacity : unit -> int;
  submit : job -> future;
  cancel : unit -> unit;
  shutdown : unit -> unit;
}

let trivially_solved tree =
  {
    s_stats = Stats.create ();
    s_tree = tree;
    s_status = Budget.Exact;
    s_lb = Utree.weight tree;
    s_gap = 0.;
    s_optimal = true;
    s_frontier = [];
    s_from_cache = false;
  }

(* --- content-addressed sub-solve cache hook ---

   The cache itself (Subsolve_cache) sits above this module — it needs
   the wire codecs and Run_config's manifest spellings — so the solve
   core reaches it through an installed hook, the same late-binding
   trick the sim backend uses.  The gating lives here, in one place:
   only jobs that opted in ([j_cache]), with no resume state, over a
   non-trivial matrix, consult the hook; only certified ([Exact])
   results that did not themselves come from the cache are offered
   back.  A hook failure is logged and treated as a miss/no-op — the
   cache is an accelerator, never a point of failure. *)

type cache_hook = {
  c_lookup : job -> solved option;
  c_store : job -> solved -> unit;
}

let cache_hook : cache_hook option Atomic.t = Atomic.make None
let set_cache_hook h = Atomic.set cache_hook h

let cacheable job =
  job.j_cache && job.j_resume = None && Dist_matrix.size job.j_matrix >= 2

let cache_lookup job =
  if not (cacheable job) then None
  else
    match Atomic.get cache_hook with
    | None -> None
    | Some h -> (
        try h.c_lookup job
        with e ->
          Log.warn (fun m ->
              m "cache lookup failed for block %d: %s" job.j_id
                (Printexc.to_string e));
          None)

let cache_store job sv =
  if cacheable job && sv.s_status = Budget.Exact && not sv.s_from_cache then
    match Atomic.get cache_hook with
    | None -> ()
    | Some h -> (
        try h.c_store job sv
        with e ->
          Log.warn (fun m ->
              m "cache store failed for block %d: %s" job.j_id
                (Printexc.to_string e)))

(* Map a solver frontier (permuted labels) back to the matrix's own
   species labels, so a [solved] value is pure data: everything needed
   to checkpoint or resume the block without the solver's internal
   permutation, and therefore safe to ship across a process boundary. *)
let frontier_out matrix = function
  | [] -> []
  | frontier ->
      let p = Permutation.to_array (Permutation.maxmin matrix) in
      List.map
        (fun (nd : Bb_tree.node) -> Utree.relabel (fun r -> p.(r)) nd.tree)
        frontier

(* The one solve every executor shares: the sequential solver, or the
   domain-parallel one when the job's intra-solve budget allows.  A
   resumed-and-finished block skips the solve entirely; an interrupted
   one continues from its frontier.  Cache-opted jobs consult the
   installed sub-solve cache first and offer their certified result
   back afterwards. *)
let solve_job ~monitor ?progress job =
  match cache_lookup job with
  | Some sv -> sv
  | None -> (
      match job.j_resume with
      | Some (`Solved tree) -> trivially_solved tree
      | (None | Some (`Restart _)) as rs ->
          if Dist_matrix.size job.j_matrix = 1 then
            trivially_solved (Utree.leaf 0)
          else begin
            let resume =
              match rs with Some (`Restart r) -> Some r | _ -> None
            in
            let small = job.j_matrix in
            let options = job.j_options in
            let sv =
              if job.j_workers <= 1 then begin
                let r =
                  Solver.solve ~options ~monitor ?resume ?progress small
                in
                {
                  s_stats = r.Solver.stats;
                  s_tree = r.Solver.tree;
                  s_status = r.Solver.status;
                  s_lb = r.Solver.lower_bound;
                  s_gap = r.Solver.certified_gap;
                  s_optimal = r.Solver.optimal;
                  s_frontier = frontier_out small r.Solver.frontier;
                  s_from_cache = false;
                }
              end
              else begin
                let r =
                  Par_bnb.solve ~options ~monitor ?resume ?progress
                    ~n_workers:job.j_workers small
                in
                {
                  s_stats = r.Par_bnb.stats;
                  s_tree = r.Par_bnb.tree;
                  s_status = r.Par_bnb.status;
                  s_lb = r.Par_bnb.lower_bound;
                  s_gap = r.Par_bnb.certified_gap;
                  s_optimal = r.Par_bnb.optimal;
                  s_frontier = frontier_out small r.Par_bnb.frontier;
                  s_from_cache = false;
                }
              end
            in
            cache_store job sv;
            sv
          end)

let job_monitor ~monitor job =
  (* A job with its own node share solves under a child monitor, so
     exhausting one block's share never stops its siblings; deadline and
     cancellation still propagate from the parent. *)
  match job.j_node_share with
  | None -> monitor
  | Some cap -> Budget.sub ~max_nodes:cap ~poll_every:job.j_poll_every monitor

(* The args every job span carries, so [phylo obs timeline] can group
   spans by job and correlate them with the run/request trace id. *)
let span_args ?(extra = []) job =
  ("job", Obs.Json.Int job.j_id)
  :: (match job.j_trace with
     | Some tr -> [ ("trace", Obs.Json.String tr) ]
     | None -> [])
  @ extra

(* Run one job in the calling domain/thread: block events, queue-wait
   from the executor's epoch counter, and the solve timing — the shape
   every in-process execution path (local, and the net executor's
   degraded fallback) shares.  With tracing on, each job leaves a
   [job.queue] and a [job.solve] span tagged with its job id (and trace
   id when the run minted one); with tracing off the extra work is one
   atomic load. *)
let run_job ~monitor ?progress ~t0 job =
  let queue_wait_s = Obs.Clock.elapsed_s t0 in
  let bmon = job_monitor ~monitor job in
  Obs.Recorder.emit_ambient
    (Obs.Events.Block_start { id = job.j_id; size = job.j_size });
  let solve_start_ns = Obs.Clock.now_ns () in
  let sv, solve_s =
    Obs.Clock.time (fun () -> solve_job ~monitor:bmon ?progress job)
  in
  (match Obs.Span.installed () with
  | None -> ()
  | Some buf ->
      let queue_ns = Int64.of_float (queue_wait_s *. 1e9) in
      Obs.Span.record buf ~cat:"executor" ~args:(span_args job)
        ~start_ns:(Int64.sub solve_start_ns queue_ns)
        ~stop_ns:solve_start_ns "job.queue";
      Obs.Span.record buf ~cat:"executor"
        ~args:
          (span_args
             ~extra:
               [
                 ("size", Obs.Json.Int job.j_size);
                 ("cached", Obs.Json.Bool sv.s_from_cache);
               ]
             job)
        ~start_ns:solve_start_ns ~stop_ns:(Obs.Clock.now_ns ()) "job.solve");
  Obs.Recorder.emit_ambient
    (Obs.Events.Block_finish
       {
         id = job.j_id;
         size = job.j_size;
         solve_s;
         status = Budget.status_to_string sv.s_status;
       });
  { o_job = job.j_id; o_solved = sv; o_queue_wait_s = queue_wait_s; o_solve_s = solve_s }

(* --- Local: the calling domain, or a Domain_pool --- *)

let local ~capacity ~monitor ?progress () =
  let capacity = Int.max 1 capacity in
  let t0 = Obs.Clock.counter () in
  if capacity = 1 then
    (* Jobs run eagerly at submission, in submission order — exactly the
       sequential schedule, with no domain spawned. *)
    {
      name = "local";
      capacity = (fun () -> capacity);
      submit =
        (fun job ->
          let o = run_job ~monitor ?progress ~t0 job in
          { await = (fun () -> o) });
      cancel = ignore;
      shutdown = ignore;
    }
  else begin
    let pool = Domain_pool.create ~n_workers:capacity in
    {
      name = "local";
      capacity = (fun () -> capacity);
      submit =
        (fun job ->
          let fut =
            Domain_pool.submit pool (fun () -> run_job ~monitor ?progress ~t0 job)
          in
          { await = (fun () -> Domain_pool.await fut) });
      cancel = (fun () -> Domain_pool.cancel pool);
      shutdown = (fun () -> Domain_pool.shutdown pool);
    }
  end

(* --- Sim: registered by Clustersim, which depends on this library --- *)

type sim_factory = monitor:Budget.monitor -> workers:int -> t

let sim_factory : sim_factory option ref = ref None
let register_sim f = sim_factory := Some f

let sim ~monitor ~workers =
  match !sim_factory with
  | Some f -> f ~monitor ~workers
  | None ->
      failwith
        "Executor.sim: no cluster simulator registered (call \
         Clustersim.Sim_exec.register () first)"
