open Import

(** One record for everything a pipeline run can be configured with.

    The pipeline entry points historically took a growing pile of
    optional arguments ([?options ?linkage ?relaxation ?workers
    ?block_workers ?progress]); this module packages them as a single
    validated value so configurations can be named, passed around,
    logged into run manifests and round-tripped through the CLI.

    {[
      let cfg = Run_config.(default |> with_workers 4 |> with_linkage Avg) in
      Pipeline.with_compact_sets ~config:cfg dm
    ]} *)

type t = {
  solver : Solver.options;  (** branch-and-bound knobs (see {!solver_options}) *)
  linkage : Decompose.linkage;  (** compact-set linkage, default [Max] *)
  relaxation : float option;
      (** alpha-compact relaxation, [>= 1.]; [None] = exact compactness *)
  workers : int;  (** domains inside one branch-and-bound solve *)
  block_workers : int;  (** independent blocks solved concurrently *)
  progress : Obs.Progress.t option;  (** live solver samples sink *)
  deadline_s : float option;
      (** whole-run wall-clock budget in seconds; [None] = unlimited *)
  max_nodes : int option;
      (** whole-run cap on expanded BBT nodes, split across compact-set
          blocks by expected work; [None] = unlimited *)
  cancel : bool Atomic.t option;
      (** external cancel flag (e.g. set from a SIGINT handler): the run
          stops cooperatively once it becomes [true] *)
  executor : Executor.kind;
      (** where block solves run: [Local] (this process, the default),
          [Sim] (the cluster simulator), or [Tcp] (a real worker pool —
          see {!Net_exec}) *)
  workers_addr : string option;
      (** [Tcp] coordinator listen address, [HOST:PORT]; port 0 binds an
          ephemeral port.  Required when [executor = Tcp]. *)
  cache_dir : string option;
      (** on-disk store for the content-addressed sub-solve cache
          ({!Subsolve_cache}); [None] (the default) disables caching
          entirely, so runs behave exactly as before this field
          existed *)
  cache_max_bytes : int option;
      (** byte budget for the on-disk cache store: after each admit the
          store evicts least-recently-used blobs (by mtime; disk hits
          refresh it) until the directory fits.  [None] (the default)
          leaves the disk store unbounded, as before. *)
  run_id : string option;
      (** trace context for this run: stamped on every executor job
          ([j_trace]), shipped to TCP workers over the wire, and echoed
          in the manifest.  Minted by the CLI when tracing/telemetry is
          on and by [phylo serve] per request; [None] (the default)
          changes nothing — jobs carry no trace and manifests are
          byte-identical to earlier releases. *)
}

val default : t
(** Today's defaults: {!Solver.default_options} (incremental kernel),
    [Max] linkage, no relaxation, sequential ([workers = 1],
    [block_workers = 1]), no progress sink, and no budget of any kind —
    runs behave exactly as before this field existed. *)

val solver_options :
  ?lb:Solver.lb_kind ->
  ?relation33:Solver.mode33 ->
  ?initial_ub:Solver.initial_ub ->
  ?max_expanded:int ->
  ?search:Solver.search_order ->
  ?branching:Solver.branch_order ->
  ?gap:float ->
  ?collect_all:bool ->
  ?kernel:Solver.kernel_kind ->
  unit ->
  Solver.options
(** Re-export of {!Solver.options}, the validating smart constructor,
    so pipeline users never need to depend on [Bnb] directly. *)

(** {2 Functional setters} *)

val with_solver : Solver.options -> t -> t

val with_exploration : Solver.search_order -> t -> t
(** Replace just the exploration strategy inside [solver]. *)

val with_branching : Solver.branch_order -> t -> t
(** Replace just the branching (child-ordering) strategy. *)

val with_gap : float -> t -> t
(** Replace just the optimality-gap tolerance (validated by
    {!validate}: must be [>= 0] and finite). *)

val with_linkage : Decompose.linkage -> t -> t
val with_relaxation : float -> t -> t
val with_workers : int -> t -> t
val with_block_workers : int -> t -> t
val with_progress : Obs.Progress.t -> t -> t
val with_deadline : float -> t -> t
val with_max_nodes : int -> t -> t
val with_cancel : bool Atomic.t -> t -> t
val with_executor : Executor.kind -> t -> t
val with_workers_addr : string -> t -> t

val with_cache_dir : string -> t -> t
(** Enable the content-addressed sub-solve cache, persisted under the
    given directory (created on first use). *)

val with_cache_max_bytes : int -> t -> t
(** Bound the on-disk cache store (bytes, [>= 1]); see
    [cache_max_bytes]. *)

val with_run_id : string -> t -> t
(** Set the run's trace context; see [run_id]. *)

val budget : t -> Bnb.Budget.t
(** The run budget this configuration describes
    ({!Bnb.Budget.unlimited} when no budget field is set). *)

val validate : ?who:string -> t -> t
(** Returns its argument unchanged if coherent.  [who] prefixes the
    error message (defaults to ["Run_config.validate"]).
    @raise Invalid_argument if [workers < 1], [block_workers < 1],
    [relaxation < 1.] (or NaN), [solver.gap] negative or not finite,
    [solver.max_expanded <= 0], [deadline_s] not positive and finite,
    [max_nodes <= 0], [executor = Tcp] without a [workers_addr],
    [workers_addr] is not a parseable [HOST:PORT], [cache_dir] or
    [run_id] is the empty string, or [cache_max_bytes < 1]. *)

(** {2 Manifest strings}

    The spellings used by {!to_json}, the run manifests and the wire
    protocol, with their inverses so configurations round-trip across
    process boundaries. *)

val search_to_string : Solver.search_order -> string
(** ["dfs"], ["best_first"] or ["hybrid"] — the spelling used by
    {!to_json} and the run manifests. *)

val branching_to_string : Solver.branch_order -> string
(** ["paper_order"], ["largest_first"] or ["residual_lb"]. *)

val lb_to_string : Solver.lb_kind -> string
val mode33_to_string : Solver.mode33 -> string
val initial_ub_to_string : Solver.initial_ub -> string
val linkage_to_string : Decompose.linkage -> string
val lb_of_string : string -> Solver.lb_kind option
val mode33_of_string : string -> Solver.mode33 option
val initial_ub_of_string : string -> Solver.initial_ub option
val search_of_string : string -> Solver.search_order option
val branching_of_string : string -> Solver.branch_order option
val linkage_of_string : string -> Decompose.linkage option

(** {2 Presets} *)

type preset =
  | Paper
      (** the published configuration: sequential, reference expansion
          kernel — reproduces the seed's search trajectory exactly *)
  | Fast
      (** incremental kernel plus inter-block parallelism sized to the
          host *)
  | Exhaustive
      (** gather every optimal topology ([collect_all]), best-first *)

val of_preset : preset -> t
val preset_to_string : preset -> string

val preset_of_string : string -> preset option
(** Inverse of {!preset_to_string}; [None] on unknown names. *)

val to_json : t -> Obs.Json.t
(** For run manifests: every field except [progress] and [cancel]
    (runtime handles, not data).  [cache_max_bytes] and [run_id] are
    emitted only when set, keeping manifests from runs that never use
    them byte-identical to earlier releases. *)
