open Import

(** The paper's end-to-end technique (Section 3) and its baseline.

    [exact] runs (parallel) branch-and-bound on the whole matrix — the
    "without compact sets" condition of the experiments.
    [with_compact_sets] decomposes the matrix along its compact sets,
    solves every small matrix exactly, grafts the block trees back
    together, and re-realises the merged topology against the original
    matrix — the "with compact sets" condition.  Compactness guarantees
    the graft is consistent: everything inside a compact set is closer
    than anything outside it, so the block structure can only help.

    {2 Two orthogonal axes of parallelism}

    The decomposition exposes task parallelism {e between} blocks
    (sibling blocks are independent exact solves) on top of the domain
    parallelism {e inside} one branch-and-bound search
    ({!Parbnb.Par_bnb}).  [with_compact_sets] drives both:
    [~block_workers] dispatches blocks largest-first over a
    {!Parbnb.Domain_pool} (so the longest solve overlaps everything
    else), while [~workers] is the per-block solver's domain count.
    Results are merged in deterministic block order, so costs, summed
    statistics and the run manifest are identical for every
    [block_workers] value; see {!plan_workers} for splitting a domain
    budget between the two axes. *)

type run = {
  tree : Utree.t;  (** feasible ultrametric tree over the input matrix *)
  cost : float;  (** its weight *)
  elapsed_s : float;  (** wall-clock seconds for the whole construction *)
  stats : Stats.t;
      (** branch-and-bound statistics, summed over blocks in block-id
          order (deterministic under inter-block scheduling) *)
  n_blocks : int;  (** 1 for [exact] *)
  largest_block : int;  (** species count of the largest solved matrix *)
  optimal : bool;
      (** [exact]: global optimality; [with_compact_sets]: every block
          was solved to optimality (the merged tree itself is
          near-optimal, not guaranteed optimal) *)
  report : Obs.Report.t;
      (** run manifest: phase timings ([decompose] / [solve-blocks] /
          [graft] / [re-realise], or [solve] for {!exact}), one worker
          entry per solved block in block-id order ([block] id,
          [block_size], [queue_wait_s], [solve_s], search counters,
          [status]), and the summary fields — including ["status"],
          ["lower_bound"], ["strategy"] (exploration / branching / gap)
          and ["certified_gap"]; serialise with [Obs.Report.to_json] *)
  status : Bnb.Budget.status;
      (** [Exact] when every search ran to completion; otherwise the
          budget constraint that stopped the run *)
  lower_bound : float;
      (** {!exact}: certified global lower bound on the optimal cost
          (equals [cost] when [status = Exact]).
          {!with_compact_sets}: sum of the per-block certified bounds —
          a lower bound on the cost of finishing every block exactly,
          {e not} on the final re-realised tree's weight (the
          decomposition itself is a heuristic). *)
  certified_gap : float;
      (** {!exact}: the solver's certificate
          [(cost - lower_bound) / lower_bound] — [0.] for a completed
          exact search, at most the configured [gap] for a completed
          tolerance run (see {!Bnb.Solver.certify}).
          {!with_compact_sets}: [cost] relative to the sum-of-block
          bound above, never clamped to the tolerance (same caveat as
          [lower_bound]). *)
  checkpoint : Bnb.Checkpoint.t option;
      (** [Some] exactly when [status <> Exact]: everything needed to
          {!Bnb.Checkpoint.save} and later resume this run *)
}

val src : Logs.src
(** Log source ["compactphy.pipeline"]. *)

val exact : ?config:Run_config.t -> ?resume:Bnb.Checkpoint.t -> Dist_matrix.t -> run
(** Minimum ultrametric tree of the full matrix — the configuration's
    [solver] options, [workers] (1 = sequential, more = the
    domain-parallel solver) and [progress] sink apply; the decomposition
    fields are ignored.  The run manifest embeds the full configuration
    under ["config"].

    The configuration's budget fields ([deadline_s] / [max_nodes] /
    [cancel]) bound the solve; an exhausted run returns its incumbent
    with a [checkpoint] to continue from.  [resume] continues such a
    checkpoint (same matrix, same configuration): the run reaches the
    same optimum an uninterrupted one finds.

    @raise Invalid_argument if the configuration fails
    {!Run_config.validate}, or if [resume] does not match the matrix. *)

val with_compact_sets :
  ?config:Run_config.t -> ?resume:Bnb.Checkpoint.t -> Dist_matrix.t -> run
(** The paper's fast construction, driven by a {!Run_config.t}
    (default {!Run_config.default}).  Linkage default [Max] (the variant
    the paper evaluates); [relaxation >= 1.] uses alpha-compact sets,
    decomposing more aggressively on noisy data.

    [workers] parallelises each block's branch-and-bound;
    [block_workers] solves that many independent blocks concurrently,
    largest-first.  The two compose: up to [block_workers * workers]
    domains run at once.  Whatever the split, the returned cost, tree
    (up to the solver's existing tie-breaking), summed [stats] and
    manifest are identical to the sequential run.

    [block_workers] beyond the host's recommended domain count is
    clamped (oversubscription only adds GC synchronisation), so a large
    value reads as "as parallel as this machine allows"; the manifest
    records both the requested [block_workers] and the
    [effective_block_workers] used.

    Budgets: the configuration's [deadline_s] and [cancel] apply to the
    whole run (all blocks share one monitor); a whole-run [max_nodes] is
    split across blocks proportionally to their estimated search cost,
    each block under its own child monitor so one block exhausting its
    share never starves the others.  Interrupted blocks contribute
    their best incumbent to the graft, so the anytime result is always
    a complete feasible tree; the [checkpoint] records every block
    (finished ones included) and [resume] picks up only the unfinished
    ones — under the same matrix and configuration, the resumed run
    reaches exactly the tree an unbudgeted run builds.

    Telemetry: the whole construction runs under an [Obs.Span] named
    ["pipeline.with_compact_sets"], with nested phase spans matching the
    manifest phases ([decompose], [solve-blocks], [graft],
    [re-realise]).

    @raise Invalid_argument on an empty matrix, if the configuration
    fails {!Run_config.validate}, or if [resume] does not match the
    matrix. *)

val plan_workers : budget:int -> Decompose.t -> int * int
(** [plan_workers ~budget deco] splits a total domain budget into
    [(block_workers, workers)] for {!with_compact_sets}.  Heuristic: a
    single big block that dominates the decomposition's estimated search
    cost gets the whole budget as intra-block domains (inter-block
    dispatch could not overlap anything comparable); many comparable
    small blocks get the budget as inter-block domains first, and only
    the remainder inside each solve.

    @raise Invalid_argument if [budget < 1]. *)

type comparison = {
  with_cs : run;
  without_cs : run;
  time_saved_pct : float;
      (** [(t_without - t_with) / t_without * 100] — the paper reports
          77.19-99.7 % on random data *)
  cost_increase_pct : float;
      (** [(c_with - c_without) / c_without * 100] — the paper reports
          under 5 % (random) and under 1.5 % (mtDNA) *)
  report : Obs.Report.t;
      (** both runs' manifests embedded under [with_cs] / [without_cs],
          plus the two headline percentages *)
}

val compare_methods : ?config:Run_config.t -> Dist_matrix.t -> comparison
(** Run both conditions on the same matrix — one row of the paper's
    Figures 8-13.  [block_workers] applies to the compact-set condition
    only (the exact baseline is a single block).

    {2 Where block solves run}

    Both entry points schedule every solve through the {!Executor}
    backend the configuration names: [Local] (the default — this
    process, bit-identical to the historical pipeline), [Sim] (the
    cluster simulator; register it with [Clustersim.Sim_exec.register]),
    or [Tcp] (a real worker pool at [workers_addr]; see {!Net_exec}).
    Budgets, checkpoints, manifests and telemetry compose unchanged
    across backends.

    Note: the pre-[Run_config] [*_legacy] entry points were removed —
    build a {!Run_config.t} instead, e.g.
    [Pipeline.exact ~config:(Run_config.with_solver options Run_config.default) dm]. *)
