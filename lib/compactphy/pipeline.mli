open Import

(** The paper's end-to-end technique (Section 3) and its baseline.

    [exact] runs (parallel) branch-and-bound on the whole matrix — the
    "without compact sets" condition of the experiments.
    [with_compact_sets] decomposes the matrix along its compact sets,
    solves every small matrix exactly, grafts the block trees back
    together, and re-realises the merged topology against the original
    matrix — the "with compact sets" condition.  Compactness guarantees
    the graft is consistent: everything inside a compact set is closer
    than anything outside it, so the block structure can only help. *)

type run = {
  tree : Utree.t;  (** feasible ultrametric tree over the input matrix *)
  cost : float;  (** its weight *)
  elapsed_s : float;  (** wall-clock seconds for the whole construction *)
  stats : Stats.t;  (** branch-and-bound statistics, summed over blocks *)
  n_blocks : int;  (** 1 for [exact] *)
  largest_block : int;  (** species count of the largest solved matrix *)
  optimal : bool;
      (** [exact]: global optimality; [with_compact_sets]: every block
          was solved to optimality (the merged tree itself is
          near-optimal, not guaranteed optimal) *)
  report : Obs.Report.t;
      (** run manifest: phase timings ([decompose] / [solve-blocks] /
          [re-realise], or [solve] for {!exact}), one worker entry per
          solved block (size + search counters), and the summary
          fields; serialise with [Obs.Report.to_json] *)
}

val src : Logs.src
(** Log source ["compactphy.pipeline"]. *)

val exact :
  ?options:Solver.options ->
  ?workers:int ->
  ?progress:Obs.Progress.t ->
  Dist_matrix.t ->
  run
(** Minimum ultrametric tree of the full matrix.  [workers] defaults to
    1 (sequential); more workers use the domain-parallel solver.
    [progress] streams live solver samples (see [Obs.Progress]). *)

val with_compact_sets :
  ?linkage:Decompose.linkage ->
  ?relaxation:float ->
  ?options:Solver.options ->
  ?workers:int ->
  ?progress:Obs.Progress.t ->
  Dist_matrix.t ->
  run
(** The paper's fast construction.  Default linkage [Max] (the variant
    the paper evaluates).  [relaxation >= 1.] (default 1.) uses
    alpha-compact sets, decomposing more aggressively on noisy data.
    [workers] parallelises the per-block solver.

    Telemetry: the whole construction runs under an [Obs.Span] named
    ["pipeline.with_compact_sets"], with nested phase spans matching the
    manifest phases.

    @raise Invalid_argument on an empty matrix. *)

type comparison = {
  with_cs : run;
  without_cs : run;
  time_saved_pct : float;
      (** [(t_without - t_with) / t_without * 100] — the paper reports
          77.19-99.7 % on random data *)
  cost_increase_pct : float;
      (** [(c_with - c_without) / c_without * 100] — the paper reports
          under 5 % (random) and under 1.5 % (mtDNA) *)
  report : Obs.Report.t;
      (** both runs' manifests embedded under [with_cs] / [without_cs],
          plus the two headline percentages *)
}

val compare_methods :
  ?linkage:Decompose.linkage ->
  ?options:Solver.options ->
  ?workers:int ->
  ?progress:Obs.Progress.t ->
  Dist_matrix.t ->
  comparison
(** Run both conditions on the same matrix — one row of the paper's
    Figures 8-13. *)
