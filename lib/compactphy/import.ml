(* Aliases for modules from dependency libraries. *)

module Dist_matrix = Distmat.Dist_matrix
module Matrix_io = Distmat.Matrix_io
module Permutation = Distmat.Permutation
module Compact_sets = Cgraph.Compact_sets
module Laminar = Cgraph.Laminar
module Utree = Ultra.Utree
module Newick = Ultra.Newick
module Solver = Bnb.Solver
module Stats = Bnb.Stats
module Budget = Bnb.Budget
module Bb_tree = Bnb.Bb_tree
module Checkpoint = Bnb.Checkpoint
module Par_bnb = Parbnb.Par_bnb
module Domain_pool = Parbnb.Domain_pool
