open Import

let src = Logs.Src.create "compactphy.pipeline" ~doc:"Compact-set pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

(* Process-wide pipeline metrics (Obs.Metrics.default). *)
module M = struct
  let runs = lazy (Obs.Metrics.counter "pipeline.runs")
  let block_size = lazy (Obs.Metrics.histogram "pipeline.block_size")
  let blocks_per_run = lazy (Obs.Metrics.histogram "pipeline.blocks_per_run")
  let queue_wait = lazy (Obs.Metrics.histogram "pipeline.block_queue_wait_s")
end

type run = {
  tree : Utree.t;
  cost : float;
  elapsed_s : float;
  stats : Stats.t;
  n_blocks : int;
  largest_block : int;
  optimal : bool;
  report : Obs.Report.t;
}

(* One exact solve of a small matrix: the sequential solver, or the
   domain-parallel one when the intra-block budget allows. *)
let solve_matrix ~options ~workers ~progress optimal small =
  if workers <= 1 then begin
    let r = Solver.solve ~options ?progress small in
    if not r.Solver.optimal then optimal := false;
    (r.Solver.stats, r.Solver.tree)
  end
  else begin
    let r = Par_bnb.solve ~options ?progress ~n_workers:workers small in
    if not r.Par_bnb.optimal then optimal := false;
    (r.Par_bnb.stats, r.Par_bnb.tree)
  end

let solve_small ~options ~workers ~progress ~report stats optimal small =
  let size = Dist_matrix.size small in
  if size = 1 then Utree.leaf 0
  else begin
    let (block_stats, tree), solve_s =
      Obs.Clock.time (fun () ->
          solve_matrix ~options ~workers ~progress optimal small)
    in
    Stats.add stats block_stats;
    Obs.Metrics.observe (Lazy.force M.block_size) (float_of_int size);
    Obs.Report.add_worker report
      [
        ("block", Obs.Json.Int 0);
        ("block_size", Obs.Json.Int size);
        ("solve_s", Obs.Json.Float solve_s);
        ("stats", Stats.to_json block_stats);
      ];
    tree
  end

let finish_report report ~elapsed_s ~cost ~n_blocks ~largest_block stats =
  Obs.Metrics.incr (Lazy.force M.runs);
  Obs.Metrics.observe (Lazy.force M.blocks_per_run) (float_of_int n_blocks);
  Obs.Report.set report "elapsed_s" (Obs.Json.Float elapsed_s);
  Obs.Report.set report "cost" (Obs.Json.Float cost);
  Obs.Report.set report "n_blocks" (Obs.Json.Int n_blocks);
  Obs.Report.set report "largest_block" (Obs.Json.Int largest_block);
  Obs.Report.set report "stats" (Stats.to_json stats)

let exact ?(config = Run_config.default) dm =
  let config = Run_config.validate ~who:"Pipeline.exact" config in
  let options = config.Run_config.solver in
  let workers = config.Run_config.workers in
  let progress = config.Run_config.progress in
  Obs.Span.with_span "pipeline.exact"
    ~args:[ ("n", Obs.Json.Int (Dist_matrix.size dm)) ]
  @@ fun () ->
  let report = Obs.Report.create "pipeline.exact" in
  Obs.Report.set report "n" (Obs.Json.Int (Dist_matrix.size dm));
  Obs.Report.set report "config" (Run_config.to_json config);
  let stats = Stats.create () in
  let optimal = ref true in
  let tree, elapsed_s =
    Obs.Clock.time (fun () ->
        Obs.Report.timed_phase report "solve" (fun () ->
            solve_small ~options ~workers ~progress ~report stats optimal dm))
  in
  let cost = Utree.weight tree in
  let largest_block = Dist_matrix.size dm in
  finish_report report ~elapsed_s ~cost ~n_blocks:1 ~largest_block stats;
  {
    tree;
    cost;
    elapsed_s;
    stats;
    n_blocks = 1;
    largest_block;
    optimal = !optimal;
    report;
  }

(* --- inter-block scheduling --- *)

(* One block of the decomposition with its deterministic id: 0 is the
   virtual root, then the [set_blocks] in [Decompose] order (a pre-order
   walk of the laminar forest).  Everything downstream — stats merge,
   manifest worker entries, the graft — keys on this id, never on the
   order tasks finished in. *)
type slot = {
  id : int;
  node : Laminar.tree option;  (* [None] for the virtual root *)
  block : Decompose.block;
  size : int;  (* number of children = species of the small matrix *)
}

type block_result = {
  slot : slot;
  queue_wait_s : float;  (* pool start -> this task claimed *)
  solve_s : float;
  b_stats : Stats.t;
  b_tree : Utree.t;
  b_optimal : bool;
}

let slots_of (deco : Decompose.t) =
  let mk id node (block : Decompose.block) =
    { id; node; block; size = List.length block.Decompose.children }
  in
  mk 0 None deco.Decompose.root_block
  :: List.mapi
       (fun i (node, block) -> mk (i + 1) (Some node) block)
       deco.Decompose.set_blocks

(* Largest-block-first: the longest solve starts first, so it overlaps
   with everything else and bounds the makespan.  Ties break on the
   deterministic id. *)
let schedule slots =
  let a = Array.of_list (List.filter (fun s -> s.size >= 2) slots) in
  Array.sort
    (fun a b ->
      match compare b.size a.size with 0 -> compare a.id b.id | c -> c)
    a;
  a

(* Oversubscribing domains past the hardware only adds minor-GC
   synchronisation (every domain must join each collection), so the
   pool never uses more domains than the host recommends — a request
   for more is a portable "as parallel as this machine allows". *)
let effective_block_workers block_workers =
  Int.min block_workers (Int.max 1 (Domain.recommended_domain_count ()))

let solve_slots ~options ~workers ~block_workers ~progress slots =
  let todo = schedule slots in
  let t_pool = Obs.Clock.counter () in
  let solve_one slot =
    let queue_wait_s = Obs.Clock.elapsed_s t_pool in
    let optimal = ref true in
    let (b_stats, b_tree), solve_s =
      Obs.Clock.time (fun () ->
          solve_matrix ~options ~workers ~progress optimal
            slot.block.Decompose.small)
    in
    { slot; queue_wait_s; solve_s; b_stats; b_tree; b_optimal = !optimal }
  in
  let results =
    Domain_pool.map ~n_workers:(effective_block_workers block_workers)
      solve_one todo
  in
  Array.sort (fun a b -> compare a.slot.id b.slot.id) results;
  results

(* Deterministic merge: iterate results in block-id order, whatever
   order the pool finished them in, so the summed stats and the
   manifest's workers array are identical for every [block_workers]. *)
let merge_results ~report ~stats ~optimal results =
  Array.iter
    (fun r ->
      Stats.add stats r.b_stats;
      if not r.b_optimal then optimal := false;
      Obs.Metrics.observe (Lazy.force M.block_size) (float_of_int r.slot.size);
      Obs.Metrics.observe (Lazy.force M.queue_wait) r.queue_wait_s;
      Obs.Report.add_worker report
        [
          ("block", Obs.Json.Int r.slot.id);
          ("block_size", Obs.Json.Int r.slot.size);
          ("queue_wait_s", Obs.Json.Float r.queue_wait_s);
          ("solve_s", Obs.Json.Float r.solve_s);
          ("stats", Stats.to_json r.b_stats);
        ])
    results

(* Graft the solved small trees back together, bottom-up.  A solved
   small tree has leaves 0 .. k-1 standing for the block's children;
   replace each by the child's assembled subtree. *)
let graft slots results =
  let solved = Array.make (List.length slots) None in
  Array.iter (fun r -> solved.(r.slot.id) <- Some r.b_tree) results;
  let rec assemble_child (child : Laminar.tree) =
    match child with
    | Laminar.Elem i -> Utree.leaf i
    | Laminar.Set _ ->
        assemble_slot
          (List.find
             (fun s ->
               match s.node with Some n -> n == child | None -> false)
             slots)
  and assemble_slot slot =
    match slot.block.Decompose.children with
    | [ only ] -> assemble_child only
    | children -> (
        match solved.(slot.id) with
        | None -> invalid_arg "Pipeline.graft: unsolved block"
        | Some small_tree ->
            let arr = Array.of_list children in
            Utree.map_leaves (fun a -> assemble_child arr.(a)) small_tree)
  in
  assemble_slot (List.hd slots)

let plan_workers ~budget deco =
  if budget < 1 then
    invalid_arg
      (Printf.sprintf "Pipeline.plan_workers: budget = %d (must be >= 1)"
         budget);
  let sizes =
    List.filter_map
      (fun s -> if s.size >= 2 then Some s.size else None)
      (slots_of deco)
  in
  let n_solvable = List.length sizes in
  if n_solvable <= 1 || budget = 1 then (1, budget)
  else begin
    (* Cost proxy: a block over k children has (2k-3)!! topologies, so
       one block a couple of species larger dwarfs all the rest; 3^k
       tracks that growth well enough to pick an axis. *)
    let weight k = 3. ** float_of_int k in
    let largest = List.fold_left Int.max 0 sizes in
    let total = List.fold_left (fun acc k -> acc +. weight k) 0. sizes in
    if weight largest >= 0.5 *. total then
      (* One big lone block dominates the makespan: spend the whole
         budget inside its branch-and-bound. *)
      (1, budget)
    else begin
      (* Many comparable small blocks: spread the budget across blocks
         first, and only then inside each solve. *)
      let bw = Int.min n_solvable budget in
      (bw, Int.max 1 (budget / bw))
    end
  end

let with_compact_sets ?(config = Run_config.default) dm =
  let config = Run_config.validate ~who:"Pipeline.with_compact_sets" config in
  let options = config.Run_config.solver in
  let linkage = config.Run_config.linkage in
  let relaxation = config.Run_config.relaxation in
  let workers = config.Run_config.workers in
  let block_workers = config.Run_config.block_workers in
  let progress = config.Run_config.progress in
  let n = Dist_matrix.size dm in
  if n = 0 then invalid_arg "Pipeline.with_compact_sets: empty matrix";
  Obs.Span.with_span "pipeline.with_compact_sets"
    ~args:[ ("n", Obs.Json.Int n) ]
  @@ fun () ->
  let report = Obs.Report.create "pipeline.with_compact_sets" in
  Obs.Report.set report "n" (Obs.Json.Int n);
  Obs.Report.set report "config" (Run_config.to_json config);
  if n = 1 then begin
    finish_report report ~elapsed_s:0. ~cost:0. ~n_blocks:1 ~largest_block:1
      (Stats.create ());
    {
      tree = Utree.leaf 0;
      cost = 0.;
      elapsed_s = 0.;
      stats = Stats.create ();
      n_blocks = 1;
      largest_block = 1;
      optimal = true;
      report;
    }
  end
  else begin
    Obs.Report.set report "block_workers" (Obs.Json.Int block_workers);
    Obs.Report.set report "effective_block_workers"
      (Obs.Json.Int (effective_block_workers block_workers));
    Obs.Report.set report "solver_workers" (Obs.Json.Int workers);
    let stats = Stats.create () in
    let optimal = ref true in
    let (tree, deco), elapsed_s =
      Obs.Clock.time (fun () ->
          let deco =
            Obs.Report.timed_phase report "decompose" (fun () ->
                Decompose.decompose ~linkage ?relaxation dm)
          in
          Log.debug (fun m ->
              m "decomposed %d species into %d blocks (largest %d)" n
                (Decompose.n_blocks deco)
                (Decompose.largest_block deco));
          (* Sibling blocks are independent exact solves — the laminar
             family's natural task parallelism.  Solve them all over the
             inter-block pool, then merge and graft deterministically. *)
          let slots = slots_of deco in
          let results =
            Obs.Report.timed_phase report "solve-blocks" (fun () ->
                solve_slots ~options ~workers ~block_workers ~progress slots)
          in
          merge_results ~report ~stats ~optimal results;
          Log.debug (fun m ->
              m "blocks solved: %d BBT nodes expanded in total"
                stats.Stats.expanded);
          let merged =
            Obs.Report.timed_phase report "graft" (fun () ->
                graft slots results)
          in
          (* The graft fixes a topology; re-realising against the full
             matrix yields the cheapest feasible ultrametric tree with
             that topology (and repairs any height inversion the Min/Avg
             linkages can introduce). *)
          ( Obs.Report.timed_phase report "re-realise" (fun () ->
                Utree.minimal_realization dm merged),
            deco ))
    in
    let cost = Utree.weight tree in
    let n_blocks = Decompose.n_blocks deco in
    let largest_block = Decompose.largest_block deco in
    finish_report report ~elapsed_s ~cost ~n_blocks ~largest_block stats;
    {
      tree;
      cost;
      elapsed_s;
      stats;
      n_blocks;
      largest_block;
      optimal = !optimal;
      report;
    }
  end

type comparison = {
  with_cs : run;
  without_cs : run;
  time_saved_pct : float;
  cost_increase_pct : float;
  report : Obs.Report.t;
}

let compare_methods ?(config = Run_config.default) dm =
  let config = Run_config.validate ~who:"Pipeline.compare_methods" config in
  let with_cs = with_compact_sets ~config dm in
  let without_cs = exact ~config dm in
  let time_saved_pct =
    if without_cs.elapsed_s <= 0. then 0.
    else
      (without_cs.elapsed_s -. with_cs.elapsed_s)
      /. without_cs.elapsed_s *. 100.
  in
  let cost_increase_pct =
    if without_cs.cost <= 0. then 0.
    else (with_cs.cost -. without_cs.cost) /. without_cs.cost *. 100.
  in
  let report = Obs.Report.create "pipeline.compare_methods" in
  Obs.Report.set report "n" (Obs.Json.Int (Dist_matrix.size dm));
  Obs.Report.set report "time_saved_pct" (Obs.Json.Float time_saved_pct);
  Obs.Report.set report "cost_increase_pct"
    (Obs.Json.Float cost_increase_pct);
  Obs.Report.set report "with_cs" (Obs.Report.to_json with_cs.report);
  Obs.Report.set report "without_cs" (Obs.Report.to_json without_cs.report);
  { with_cs; without_cs; time_saved_pct; cost_increase_pct; report }

(* --- deprecated optional-argument entry points ---

   Thin shims over the [?config] API, kept so older call sites migrate
   on their own schedule.  Each builds the equivalent [Run_config.t]
   and defers; validation therefore happens in one place. *)

let exact_legacy ?(options = Solver.default_options) ?(workers = 1) ?progress
    dm =
  exact
    ~config:{ Run_config.default with solver = options; workers; progress }
    dm

let with_compact_sets_legacy ?(linkage = Decompose.Max) ?relaxation
    ?(options = Solver.default_options) ?(workers = 1) ?(block_workers = 1)
    ?progress dm =
  with_compact_sets
    ~config:
      {
        Run_config.solver = options;
        linkage;
        relaxation;
        workers;
        block_workers;
        progress;
      }
    dm

let compare_methods_legacy ?(linkage = Decompose.Max)
    ?(options = Solver.default_options) ?(workers = 1) ?(block_workers = 1)
    ?progress dm =
  compare_methods
    ~config:
      {
        Run_config.solver = options;
        linkage;
        relaxation = None;
        workers;
        block_workers;
        progress;
      }
    dm
