open Import

let src = Logs.Src.create "compactphy.pipeline" ~doc:"Compact-set pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

(* Process-wide pipeline metrics (Obs.Metrics.default). *)
module M = struct
  let runs = lazy (Obs.Metrics.counter "pipeline.runs")
  let block_size = lazy (Obs.Metrics.histogram "pipeline.block_size")
  let blocks_per_run = lazy (Obs.Metrics.histogram "pipeline.blocks_per_run")
end

type run = {
  tree : Utree.t;
  cost : float;
  elapsed_s : float;
  stats : Stats.t;
  n_blocks : int;
  largest_block : int;
  optimal : bool;
  report : Obs.Report.t;
}

let solve_small ~options ~workers ~progress ~report stats optimal small =
  let size = Dist_matrix.size small in
  if size = 1 then Utree.leaf 0
  else begin
    let block_stats, tree =
      if workers <= 1 then begin
        let r = Solver.solve ~options ?progress small in
        if not r.Solver.optimal then optimal := false;
        (r.Solver.stats, r.Solver.tree)
      end
      else begin
        let r = Par_bnb.solve ~options ?progress ~n_workers:workers small in
        if not r.Par_bnb.optimal then optimal := false;
        (r.Par_bnb.stats, r.Par_bnb.tree)
      end
    in
    Stats.add stats block_stats;
    Obs.Metrics.observe (Lazy.force M.block_size) (float_of_int size);
    Obs.Report.add_worker report
      [
        ("block_size", Obs.Json.Int size);
        ("stats", Stats.to_json block_stats);
      ];
    tree
  end

let finish_report report ~elapsed_s ~cost ~n_blocks ~largest_block stats =
  Obs.Metrics.incr (Lazy.force M.runs);
  Obs.Metrics.observe (Lazy.force M.blocks_per_run) (float_of_int n_blocks);
  Obs.Report.set report "elapsed_s" (Obs.Json.Float elapsed_s);
  Obs.Report.set report "cost" (Obs.Json.Float cost);
  Obs.Report.set report "n_blocks" (Obs.Json.Int n_blocks);
  Obs.Report.set report "largest_block" (Obs.Json.Int largest_block);
  Obs.Report.set report "stats" (Stats.to_json stats)

let exact ?(options = Solver.default_options) ?(workers = 1) ?progress dm =
  Obs.Span.with_span "pipeline.exact"
    ~args:[ ("n", Obs.Json.Int (Dist_matrix.size dm)) ]
  @@ fun () ->
  let report = Obs.Report.create "pipeline.exact" in
  Obs.Report.set report "n" (Obs.Json.Int (Dist_matrix.size dm));
  let stats = Stats.create () in
  let optimal = ref true in
  let tree, elapsed_s =
    Obs.Clock.time (fun () ->
        Obs.Report.timed_phase report "solve" (fun () ->
            solve_small ~options ~workers ~progress ~report stats optimal dm))
  in
  let cost = Utree.weight tree in
  let largest_block = Dist_matrix.size dm in
  finish_report report ~elapsed_s ~cost ~n_blocks:1 ~largest_block stats;
  {
    tree;
    cost;
    elapsed_s;
    stats;
    n_blocks = 1;
    largest_block;
    optimal = !optimal;
    report;
  }

let with_compact_sets ?(linkage = Decompose.Max) ?relaxation
    ?(options = Solver.default_options) ?(workers = 1) ?progress dm =
  let n = Dist_matrix.size dm in
  if n = 0 then invalid_arg "Pipeline.with_compact_sets: empty matrix";
  Obs.Span.with_span "pipeline.with_compact_sets"
    ~args:[ ("n", Obs.Json.Int n) ]
  @@ fun () ->
  let report = Obs.Report.create "pipeline.with_compact_sets" in
  Obs.Report.set report "n" (Obs.Json.Int n);
  if n = 1 then begin
    finish_report report ~elapsed_s:0. ~cost:0. ~n_blocks:1 ~largest_block:1
      (Stats.create ());
    {
      tree = Utree.leaf 0;
      cost = 0.;
      elapsed_s = 0.;
      stats = Stats.create ();
      n_blocks = 1;
      largest_block = 1;
      optimal = true;
      report;
    }
  end
  else begin
    let stats = Stats.create () in
    let optimal = ref true in
    let (tree, deco), elapsed_s =
      Obs.Clock.time (fun () ->
          let deco =
            Obs.Report.timed_phase report "decompose" (fun () ->
                Decompose.decompose ~linkage ?relaxation dm)
          in
          Log.debug (fun m ->
              m "decomposed %d species into %d blocks (largest %d)" n
                (Decompose.n_blocks deco)
                (Decompose.largest_block deco));
          (* Solve blocks bottom-up: a block's "species" are its
             children; each solved small tree has leaves 0 .. k-1 which
             we replace by the recursively built child subtrees. *)
          let rec build_child (child : Laminar.tree) =
            match child with
            | Laminar.Elem i -> Utree.leaf i
            | Laminar.Set _ ->
                solve_block (List.assq child deco.Decompose.set_blocks)
          and solve_block (block : Decompose.block) =
            match block.children with
            | [ only ] -> build_child only
            | children ->
                let small_tree =
                  solve_small ~options ~workers ~progress ~report stats
                    optimal block.Decompose.small
                in
                let arr = Array.of_list children in
                Utree.map_leaves (fun a -> build_child arr.(a)) small_tree
          in
          let merged =
            Obs.Report.timed_phase report "solve-blocks" (fun () ->
                solve_block deco.Decompose.root_block)
          in
          Log.debug (fun m ->
              m "blocks solved: %d BBT nodes expanded in total"
                stats.Stats.expanded);
          (* The graft fixes a topology; re-realising against the full
             matrix yields the cheapest feasible ultrametric tree with
             that topology (and repairs any height inversion the Min/Avg
             linkages can introduce). *)
          ( Obs.Report.timed_phase report "re-realise" (fun () ->
                Utree.minimal_realization dm merged),
            deco ))
    in
    let cost = Utree.weight tree in
    let n_blocks = Decompose.n_blocks deco in
    let largest_block = Decompose.largest_block deco in
    finish_report report ~elapsed_s ~cost ~n_blocks ~largest_block stats;
    {
      tree;
      cost;
      elapsed_s;
      stats;
      n_blocks;
      largest_block;
      optimal = !optimal;
      report;
    }
  end

type comparison = {
  with_cs : run;
  without_cs : run;
  time_saved_pct : float;
  cost_increase_pct : float;
  report : Obs.Report.t;
}

let compare_methods ?linkage ?options ?workers ?progress dm =
  let with_cs = with_compact_sets ?linkage ?options ?workers ?progress dm in
  let without_cs = exact ?options ?workers ?progress dm in
  let time_saved_pct =
    if without_cs.elapsed_s <= 0. then 0.
    else
      (without_cs.elapsed_s -. with_cs.elapsed_s)
      /. without_cs.elapsed_s *. 100.
  in
  let cost_increase_pct =
    if without_cs.cost <= 0. then 0.
    else (with_cs.cost -. without_cs.cost) /. without_cs.cost *. 100.
  in
  let report = Obs.Report.create "pipeline.compare_methods" in
  Obs.Report.set report "n" (Obs.Json.Int (Dist_matrix.size dm));
  Obs.Report.set report "time_saved_pct" (Obs.Json.Float time_saved_pct);
  Obs.Report.set report "cost_increase_pct"
    (Obs.Json.Float cost_increase_pct);
  Obs.Report.set report "with_cs" (Obs.Report.to_json with_cs.report);
  Obs.Report.set report "without_cs" (Obs.Report.to_json without_cs.report);
  { with_cs; without_cs; time_saved_pct; cost_increase_pct; report }
