open Import

let src = Logs.Src.create "compactphy.pipeline" ~doc:"Compact-set pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

(* Process-wide pipeline metrics (Obs.Metrics.default). *)
module M = struct
  let runs = lazy (Obs.Metrics.counter "pipeline.runs")
  let block_size = lazy (Obs.Metrics.histogram "pipeline.block_size")
  let blocks_per_run = lazy (Obs.Metrics.histogram "pipeline.blocks_per_run")
  let queue_wait = lazy (Obs.Metrics.histogram "pipeline.block_queue_wait_s")
  let certified_gap = lazy (Obs.Metrics.gauge "pipeline.certified_gap")
end

type run = {
  tree : Utree.t;
  cost : float;
  elapsed_s : float;
  stats : Stats.t;
  n_blocks : int;
  largest_block : int;
  optimal : bool;
  report : Obs.Report.t;
  status : Budget.status;
  lower_bound : float;
  certified_gap : float;
  checkpoint : Checkpoint.t option;
}

let strategy_json (options : Solver.options) =
  Obs.Json.Obj
    [
      ( "exploration",
        Obs.Json.String (Run_config.search_to_string options.Solver.search) );
      ( "branching",
        Obs.Json.String
          (Run_config.branching_to_string options.Solver.branching) );
      ("gap", Obs.Json.Float options.Solver.gap);
    ]

let finish_report report ~options ~elapsed_s ~cost ~n_blocks ~largest_block
    ~status ~lower_bound ~certified_gap stats =
  Obs.Metrics.incr (Lazy.force M.runs);
  Obs.Metrics.observe (Lazy.force M.blocks_per_run) (float_of_int n_blocks);
  Obs.Metrics.set (Lazy.force M.certified_gap) certified_gap;
  Obs.Report.set report "elapsed_s" (Obs.Json.Float elapsed_s);
  Obs.Report.set report "cost" (Obs.Json.Float cost);
  Obs.Report.set report "n_blocks" (Obs.Json.Int n_blocks);
  Obs.Report.set report "largest_block" (Obs.Json.Int largest_block);
  Obs.Report.set report "stats" (Stats.to_json stats);
  Obs.Report.set report "attribution"
    (Obs.Attribution.cells_to_json stats.Stats.att);
  Obs.Report.set report "status" (Budget.status_to_json status);
  Obs.Report.set report "lower_bound" (Obs.Json.Float lower_bound);
  Obs.Report.set report "strategy" (strategy_json options);
  Obs.Report.set report "certified_gap" (Obs.Json.Float certified_gap)

(* Validate a user-supplied checkpoint against the matrix it claims to
   continue. *)
let checked_resume ~who ~matrix = function
  | None -> None
  | Some ck -> (
      match Checkpoint.verify ck matrix with
      | Ok () -> Some ck
      | Error e -> invalid_arg (Printf.sprintf "%s: %s" who e))

(* Oversubscribing domains past the hardware only adds minor-GC
   synchronisation (every domain must join each collection), so the
   pool never uses more domains than the host recommends — a request
   for more is a portable "as parallel as this machine allows". *)
let effective_block_workers block_workers =
  Int.min block_workers (Int.max 1 (Domain.recommended_domain_count ()))

(* The backend the configuration selects for solves — both entry
   points route every job through it.  [Local] is the default and
   bit-identical to the historical in-process pipeline; [Sim] is the
   discrete-event cluster; [Tcp] a real worker pool. *)
let executor_for ~(config : Run_config.t) ~monitor ~n_jobs =
  let progress = config.Run_config.progress in
  match config.Run_config.executor with
  | Executor.Local ->
      let capacity =
        Int.min
          (effective_block_workers config.Run_config.block_workers)
          (Int.max 1 n_jobs)
      in
      Executor.local ~capacity ~monitor ?progress ()
  | Executor.Sim -> Executor.sim ~monitor ~workers:config.Run_config.workers
  | Executor.Tcp ->
      let addr =
        (* validate guarantees the address is present and parseable *)
        Option.value ~default:"127.0.0.1:0" config.Run_config.workers_addr
      in
      fst (Net_exec.coordinator ~addr ~monitor ?progress ())

(* Install (and share) the content-addressed sub-solve cache the
   configuration selects.  Jobs opt in per-run via [j_cache], so
   installing for one run never changes the behaviour of a concurrent
   or later run without [cache_dir]. *)
let cache_setup (config : Run_config.t) =
  match config.Run_config.cache_dir with
  | None -> false
  | Some dir ->
      Subsolve_cache.install
        (Subsolve_cache.get_or_create ~dir
           ?max_bytes:config.Run_config.cache_max_bytes ());
      true

(* The per-run cache provenance a manifest records: how many of this
   run's block solves were replayed from the cache. *)
let cache_json ~enabled ~hits ~total =
  Obs.Json.Obj
    [
      ("enabled", Obs.Json.Bool enabled);
      ("block_hits", Obs.Json.Int hits);
      ("block_misses", Obs.Json.Int (total - hits));
      ( "hit_rate",
        Obs.Json.Float
          (if total = 0 then 0. else float_of_int hits /. float_of_int total)
      );
    ]

let exact ?(config = Run_config.default) ?resume dm =
  let config = Run_config.validate ~who:"Pipeline.exact" config in
  let options = config.Run_config.solver in
  let workers = config.Run_config.workers in
  let resume_ck = checked_resume ~who:"Pipeline.exact" ~matrix:dm resume in
  Obs.Span.with_span "pipeline.exact"
    ~args:[ ("n", Obs.Json.Int (Dist_matrix.size dm)) ]
  @@ fun () ->
  let report = Obs.Report.create "pipeline.exact" in
  Obs.Report.set report "n" (Obs.Json.Int (Dist_matrix.size dm));
  Obs.Report.set report "config" (Run_config.to_json config);
  let use_cache = cache_setup config in
  let monitor = Budget.arm (Run_config.budget config) in
  let block_resume =
    Option.bind resume_ck (fun ck ->
        Option.map
          (Checkpoint.resume_of_block ~matrix:dm)
          (Checkpoint.find_block ck 0))
  in
  let stats = Stats.create () in
  let n = Dist_matrix.size dm in
  Obs.Recorder.emit_ambient (Obs.Events.Run_start { n; n_blocks = 1 });
  (* An exact solve is one job through the executor the configuration
     selects, so block events, node-share handling and timing come from
     the shared execution core exactly as a pipeline block's would —
     and [--executor sim|tcp] applies to this entry point too. *)
  let job =
    {
      Executor.j_id = 0;
      j_size = n;
      j_matrix = dm;
      j_options = options;
      j_workers = workers;
      j_node_share = None;
      j_poll_every = Budget.poll_every (Budget.spec monitor);
      j_resume = block_resume;
      j_cache = use_cache;
      j_trace = config.Run_config.run_id;
    }
  in
  let exec = executor_for ~config ~monitor ~n_jobs:1 in
  let o, elapsed_s =
    Obs.Clock.time (fun () ->
        Obs.Report.timed_phase report "solve" (fun () ->
            Fun.protect
              ~finally:(fun () -> exec.Executor.shutdown ())
              (fun () -> (exec.Executor.submit job).Executor.await ())))
  in
  let sv = o.Executor.o_solved in
  Stats.add stats sv.Executor.s_stats;
  if n > 1 then begin
    Obs.Metrics.observe (Lazy.force M.block_size) (float_of_int n);
    Obs.Report.add_worker report
      [
        ("block", Obs.Json.Int 0);
        ("block_size", Obs.Json.Int n);
        ("solve_s", Obs.Json.Float o.Executor.o_solve_s);
        ("stats", Stats.to_json sv.Executor.s_stats);
        ("status", Budget.status_to_json sv.Executor.s_status);
        ("cached", Obs.Json.Bool sv.Executor.s_from_cache);
      ]
  end;
  Obs.Report.set report "cache"
    (cache_json ~enabled:use_cache
       ~hits:(if sv.Executor.s_from_cache then 1 else 0)
       ~total:1);
  let tree = sv.Executor.s_tree in
  let cost = Utree.weight tree in
  let largest_block = n in
  let checkpoint =
    if sv.Executor.s_status = Budget.Exact then None
    else
      Some
        (Checkpoint.make ~matrix:dm ~status:sv.Executor.s_status ~cost
           ~lower_bound:sv.Executor.s_lb
           ~blocks:
             [
               {
                 Checkpoint.b_id = 0;
                 b_solved = false;
                 b_tree = Some tree;
                 b_frontier = sv.Executor.s_frontier;
               };
             ])
  in
  finish_report report ~options ~elapsed_s ~cost ~n_blocks:1 ~largest_block
    ~status:sv.Executor.s_status ~lower_bound:sv.Executor.s_lb
    ~certified_gap:sv.Executor.s_gap stats;
  {
    tree;
    cost;
    elapsed_s;
    stats;
    n_blocks = 1;
    largest_block;
    optimal = sv.Executor.s_optimal;
    report;
    status = sv.Executor.s_status;
    lower_bound = sv.Executor.s_lb;
    certified_gap = sv.Executor.s_gap;
    checkpoint;
  }

(* --- inter-block scheduling --- *)

(* One block of the decomposition with its deterministic id: 0 is the
   virtual root, then the [set_blocks] in [Decompose] order (a pre-order
   walk of the laminar forest).  Everything downstream — stats merge,
   manifest worker entries, the graft — keys on this id, never on the
   order tasks finished in. *)
type slot = {
  id : int;
  node : Laminar.tree option;  (* [None] for the virtual root *)
  block : Decompose.block;
  size : int;  (* number of children = species of the small matrix *)
}

type block_result = {
  slot : slot;
  queue_wait_s : float;  (* executor start -> this job began *)
  solve_s : float;
  b_stats : Stats.t;
  b_tree : Utree.t;
  b_optimal : bool;
  b_status : Budget.status;
  b_lb : float;
  b_frontier : Utree.t list;  (* block-local labels, as checkpoints *)
  b_cached : bool;  (* replayed from the sub-solve cache *)
}

let slots_of (deco : Decompose.t) =
  let mk id node (block : Decompose.block) =
    { id; node; block; size = List.length block.Decompose.children }
  in
  mk 0 None deco.Decompose.root_block
  :: List.mapi
       (fun i (node, block) -> mk (i + 1) (Some node) block)
       deco.Decompose.set_blocks

(* Largest-block-first: the longest solve starts first, so it overlaps
   with everything else and bounds the makespan.  Ties break on the
   deterministic id. *)
let schedule slots =
  let a = Array.of_list (List.filter (fun s -> s.size >= 2) slots) in
  Array.sort
    (fun a b ->
      match compare b.size a.size with 0 -> compare a.id b.id | c -> c)
    a;
  a

(* Split a whole-run node cap into per-block shares, proportional to
   the same 3^k work proxy {!plan_workers} uses; every solvable block
   keeps at least one node so it can record a heuristic incumbent.  The
   parent monitor still enforces the global cap exactly — the shares
   only decide which blocks are starved first. *)
let plan_node_shares ~max_nodes todo =
  let weight slot = 3. ** float_of_int slot.size in
  let total = Array.fold_left (fun acc s -> acc +. weight s) 0. todo in
  Array.map
    (fun s ->
      Int.max 1 (int_of_float (float_of_int max_nodes *. weight s /. total)))
    todo

let solve_slots ~config ~monitor ~resume_for slots =
  let options = config.Run_config.solver in
  let workers = config.Run_config.workers in
  let use_cache = config.Run_config.cache_dir <> None in
  let todo = schedule slots in
  let shares =
    match Budget.max_nodes (Budget.spec monitor) with
    | None -> Array.map (fun _ -> None) todo
    | Some cap -> Array.map (fun s -> Some s) (plan_node_shares ~max_nodes:cap todo)
  in
  let poll_every = Budget.poll_every (Budget.spec monitor) in
  let exec = executor_for ~config ~monitor ~n_jobs:(Array.length todo) in
  Log.debug (fun m ->
      m "solving %d blocks on the %s executor (capacity %d)"
        (Array.length todo) exec.Executor.name
        (exec.Executor.capacity ()));
  (* Submit largest-first (the schedule order), await in the same order;
     a job failure surfaces on await after the executor is shut down
     cleanly. *)
  let outcomes =
    Fun.protect
      ~finally:(fun () -> exec.Executor.shutdown ())
      (fun () ->
        let futures =
          Array.mapi
            (fun i slot ->
              ( slot,
                exec.Executor.submit
                  {
                    Executor.j_id = slot.id;
                    j_size = slot.size;
                    j_matrix = slot.block.Decompose.small;
                    j_options = options;
                    j_workers = workers;
                    j_node_share = shares.(i);
                    j_poll_every = poll_every;
                    j_resume = resume_for slot;
                    j_cache = use_cache;
                    j_trace = config.Run_config.run_id;
                  } ))
            todo
        in
        Array.map (fun (slot, fut) -> (slot, fut.Executor.await ())) futures)
  in
  let results =
    Array.map
      (fun (slot, (o : Executor.outcome)) ->
        let sv = o.Executor.o_solved in
        {
          slot;
          queue_wait_s = o.Executor.o_queue_wait_s;
          solve_s = o.Executor.o_solve_s;
          b_stats = sv.Executor.s_stats;
          b_tree = sv.Executor.s_tree;
          b_optimal = sv.Executor.s_optimal;
          b_status = sv.Executor.s_status;
          b_lb = sv.Executor.s_lb;
          b_frontier = sv.Executor.s_frontier;
          b_cached = sv.Executor.s_from_cache;
        })
      outcomes
  in
  Array.sort (fun a b -> compare a.slot.id b.slot.id) results;
  results

(* Deterministic merge: iterate results in block-id order, whatever
   order the pool finished them in, so the summed stats and the
   manifest's workers array are identical for every [block_workers]. *)
let merge_results ~report ~stats ~optimal results =
  Array.iter
    (fun r ->
      Stats.add stats r.b_stats;
      if not r.b_optimal then optimal := false;
      Obs.Metrics.observe (Lazy.force M.block_size) (float_of_int r.slot.size);
      Obs.Metrics.observe (Lazy.force M.queue_wait) r.queue_wait_s;
      Obs.Report.add_worker report
        [
          ("block", Obs.Json.Int r.slot.id);
          ("block_size", Obs.Json.Int r.slot.size);
          ("queue_wait_s", Obs.Json.Float r.queue_wait_s);
          ("solve_s", Obs.Json.Float r.solve_s);
          ("stats", Stats.to_json r.b_stats);
          ("status", Budget.status_to_json r.b_status);
          ("cached", Obs.Json.Bool r.b_cached);
        ])
    results

(* Graft the solved small trees back together, bottom-up.  A solved
   small tree has leaves 0 .. k-1 standing for the block's children;
   replace each by the child's assembled subtree. *)
let graft slots results =
  let solved = Array.make (List.length slots) None in
  Array.iter (fun r -> solved.(r.slot.id) <- Some r.b_tree) results;
  let rec assemble_child (child : Laminar.tree) =
    match child with
    | Laminar.Elem i -> Utree.leaf i
    | Laminar.Set _ ->
        assemble_slot
          (List.find
             (fun s ->
               match s.node with Some n -> n == child | None -> false)
             slots)
  and assemble_slot slot =
    match slot.block.Decompose.children with
    | [ only ] -> assemble_child only
    | children -> (
        match solved.(slot.id) with
        | None -> invalid_arg "Pipeline.graft: unsolved block"
        | Some small_tree ->
            let arr = Array.of_list children in
            Utree.map_leaves (fun a -> assemble_child arr.(a)) small_tree)
  in
  assemble_slot (List.hd slots)

let plan_workers ~budget deco =
  if budget < 1 then
    invalid_arg
      (Printf.sprintf "Pipeline.plan_workers: budget = %d (must be >= 1)"
         budget);
  let sizes =
    List.filter_map
      (fun s -> if s.size >= 2 then Some s.size else None)
      (slots_of deco)
  in
  let n_solvable = List.length sizes in
  if n_solvable <= 1 || budget = 1 then (1, budget)
  else begin
    (* Cost proxy: a block over k children has (2k-3)!! topologies, so
       one block a couple of species larger dwarfs all the rest; 3^k
       tracks that growth well enough to pick an axis. *)
    let weight k = 3. ** float_of_int k in
    let largest = List.fold_left Int.max 0 sizes in
    let total = List.fold_left (fun acc k -> acc +. weight k) 0. sizes in
    if weight largest >= 0.5 *. total then
      (* One big lone block dominates the makespan: spend the whole
         budget inside its branch-and-bound. *)
      (1, budget)
    else begin
      (* Many comparable small blocks: spread the budget across blocks
         first, and only then inside each solve. *)
      let bw = Int.min n_solvable budget in
      (bw, Int.max 1 (budget / bw))
    end
  end

let with_compact_sets ?(config = Run_config.default) ?resume dm =
  let config = Run_config.validate ~who:"Pipeline.with_compact_sets" config in
  let options = config.Run_config.solver in
  let linkage = config.Run_config.linkage in
  let relaxation = config.Run_config.relaxation in
  let workers = config.Run_config.workers in
  let block_workers = config.Run_config.block_workers in
  let n = Dist_matrix.size dm in
  if n = 0 then invalid_arg "Pipeline.with_compact_sets: empty matrix";
  let resume_ck =
    checked_resume ~who:"Pipeline.with_compact_sets" ~matrix:dm resume
  in
  Obs.Span.with_span "pipeline.with_compact_sets"
    ~args:[ ("n", Obs.Json.Int n) ]
  @@ fun () ->
  let report = Obs.Report.create "pipeline.with_compact_sets" in
  Obs.Report.set report "n" (Obs.Json.Int n);
  Obs.Report.set report "config" (Run_config.to_json config);
  if n = 1 then begin
    finish_report report ~options ~elapsed_s:0. ~cost:0. ~n_blocks:1
      ~largest_block:1 ~status:Budget.Exact ~lower_bound:0. ~certified_gap:0.
      (Stats.create ());
    {
      tree = Utree.leaf 0;
      cost = 0.;
      elapsed_s = 0.;
      stats = Stats.create ();
      n_blocks = 1;
      largest_block = 1;
      optimal = true;
      report;
      status = Budget.Exact;
      lower_bound = 0.;
      certified_gap = 0.;
      checkpoint = None;
    }
  end
  else begin
    Obs.Report.set report "block_workers" (Obs.Json.Int block_workers);
    Obs.Report.set report "effective_block_workers"
      (Obs.Json.Int (effective_block_workers block_workers));
    Obs.Report.set report "solver_workers" (Obs.Json.Int workers);
    let use_cache = cache_setup config in
    let stats = Stats.create () in
    let optimal = ref true in
    let monitor = Budget.arm (Run_config.budget config) in
    let (tree, deco, results), elapsed_s =
      Obs.Clock.time (fun () ->
          let deco =
            Obs.Report.timed_phase report "decompose" (fun () ->
                Decompose.decompose ~linkage ?relaxation dm)
          in
          Log.debug (fun m ->
              m "decomposed %d species into %d blocks (largest %d)" n
                (Decompose.n_blocks deco)
                (Decompose.largest_block deco));
          Obs.Recorder.emit_ambient
            (Obs.Events.Run_start { n; n_blocks = Decompose.n_blocks deco });
          (* Sibling blocks are independent exact solves — the laminar
             family's natural task parallelism.  Solve them all over the
             inter-block pool, then merge and graft deterministically. *)
          let slots = slots_of deco in
          (* The decomposition is a deterministic function of the matrix
             and linkage, so block ids line up with a checkpoint taken
             under the same configuration; the matrix itself was already
             digest-checked. *)
          let resume_for slot =
            Option.bind resume_ck (fun ck ->
                Option.map
                  (Checkpoint.resume_of_block
                     ~matrix:slot.block.Decompose.small)
                  (Checkpoint.find_block ck slot.id))
          in
          let results =
            Obs.Report.timed_phase report "solve-blocks" (fun () ->
                solve_slots ~config ~monitor ~resume_for slots)
          in
          merge_results ~report ~stats ~optimal results;
          Obs.Report.set report "cache"
            (cache_json ~enabled:use_cache
               ~hits:
                 (Array.fold_left
                    (fun acc r -> if r.b_cached then acc + 1 else acc)
                    0 results)
               ~total:(Array.length results));
          Log.debug (fun m ->
              m "blocks solved: %d BBT nodes expanded in total"
                stats.Stats.expanded);
          let merged =
            Obs.Report.timed_phase report "graft" (fun () ->
                graft slots results)
          in
          (* The graft fixes a topology; re-realising against the full
             matrix yields the cheapest feasible ultrametric tree with
             that topology (and repairs any height inversion the Min/Avg
             linkages can introduce).  Interrupted blocks contribute
             their best incumbent, so the anytime result is always a
             complete, feasible tree. *)
          ( Obs.Report.timed_phase report "re-realise" (fun () ->
                Utree.minimal_realization dm merged),
            deco,
            results ))
    in
    let cost = Utree.weight tree in
    let n_blocks = Decompose.n_blocks deco in
    let largest_block = Decompose.largest_block deco in
    let status =
      (* Every block exact means the run is exact, even if the deadline
         expires a microsecond after the last solve returned; otherwise
         a whole-run trip (deadline, cancel, global cap) wins over a
         block-local node-share exhaustion. *)
      match Array.find_opt (fun r -> r.b_status <> Budget.Exact) results with
      | None -> Budget.Exact
      | Some r -> (
          match Budget.tripped monitor with Some s -> s | None -> r.b_status)
    in
    (* Sum of per-block certified bounds: a lower bound on the total
       cost of solving every block exactly — the quantity the block
       phase minimises — not on the final re-realised tree's weight. *)
    let lower_bound =
      Array.fold_left (fun acc r -> acc +. r.b_lb) 0. results
    in
    let checkpoint =
      if status = Budget.Exact then None
      else
        Some
          (Checkpoint.make ~matrix:dm ~status ~cost ~lower_bound
             ~blocks:
               (Array.to_list
                  (Array.map
                     (fun r ->
                       (* [b_frontier] is already in block-local labels
                          (the executor relabels before returning), so
                          the block record is assembled directly. *)
                       {
                         Checkpoint.b_id = r.slot.id;
                         b_solved = r.b_status = Budget.Exact;
                         b_tree = Some r.b_tree;
                         b_frontier = r.b_frontier;
                       })
                     results)))
    in
    (* Relative to the sum-of-block bound above, never clamped to the
       configured tolerance: the re-realised tree's weight is not the
       quantity the block searches bounded, so only the raw ratio is an
       honest certificate here. *)
    let certified_gap =
      Solver.certify ~gap:0. ~exhausted:false ~cost ~lower_bound
    in
    finish_report report ~options ~elapsed_s ~cost ~n_blocks ~largest_block
      ~status ~lower_bound ~certified_gap stats;
    {
      tree;
      cost;
      elapsed_s;
      stats;
      n_blocks;
      largest_block;
      optimal = !optimal;
      report;
      status;
      lower_bound;
      certified_gap;
      checkpoint;
    }
  end

type comparison = {
  with_cs : run;
  without_cs : run;
  time_saved_pct : float;
  cost_increase_pct : float;
  report : Obs.Report.t;
}

let compare_methods ?(config = Run_config.default) dm =
  let config = Run_config.validate ~who:"Pipeline.compare_methods" config in
  let with_cs = with_compact_sets ~config dm in
  let without_cs = exact ~config dm in
  let time_saved_pct =
    if without_cs.elapsed_s <= 0. then 0.
    else
      (without_cs.elapsed_s -. with_cs.elapsed_s)
      /. without_cs.elapsed_s *. 100.
  in
  let cost_increase_pct =
    if without_cs.cost <= 0. then 0.
    else (with_cs.cost -. without_cs.cost) /. without_cs.cost *. 100.
  in
  let report = Obs.Report.create "pipeline.compare_methods" in
  Obs.Report.set report "n" (Obs.Json.Int (Dist_matrix.size dm));
  Obs.Report.set report "time_saved_pct" (Obs.Json.Float time_saved_pct);
  Obs.Report.set report "cost_increase_pct"
    (Obs.Json.Float cost_increase_pct);
  Obs.Report.set report "with_cs" (Obs.Report.to_json with_cs.report);
  Obs.Report.set report "without_cs" (Obs.Report.to_json without_cs.report);
  { with_cs; without_cs; time_saved_pct; cost_increase_pct; report }
