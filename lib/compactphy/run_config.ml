open Import
module Kernel = Bnb.Kernel

type t = {
  solver : Solver.options;
  linkage : Decompose.linkage;
  relaxation : float option;
  workers : int;
  block_workers : int;
  progress : Obs.Progress.t option;
  deadline_s : float option;
  max_nodes : int option;
  cancel : bool Atomic.t option;
  executor : Executor.kind;
  workers_addr : string option;
  cache_dir : string option;
  cache_max_bytes : int option;
  run_id : string option;
}

let default =
  {
    solver = Solver.default_options;
    linkage = Decompose.Max;
    relaxation = None;
    workers = 1;
    block_workers = 1;
    progress = None;
    deadline_s = None;
    max_nodes = None;
    cancel = None;
    executor = Executor.Local;
    workers_addr = None;
    cache_dir = None;
    cache_max_bytes = None;
    run_id = None;
  }

let solver_options = Solver.options

(* Setters, so call sites read as a pipeline of intent:
   [Run_config.(default |> with_workers 4 |> with_linkage Avg)]. *)
let with_solver solver c = { c with solver }

let with_exploration search c =
  { c with solver = { c.solver with Solver.search } }

let with_branching branching c =
  { c with solver = { c.solver with Solver.branching } }

let with_gap gap c = { c with solver = { c.solver with Solver.gap } }
let with_linkage linkage c = { c with linkage }
let with_relaxation r c = { c with relaxation = Some r }
let with_workers workers c = { c with workers }
let with_block_workers block_workers c = { c with block_workers }
let with_progress p c = { c with progress = Some p }
let with_deadline d c = { c with deadline_s = Some d }
let with_max_nodes cap c = { c with max_nodes = Some cap }
let with_cancel flag c = { c with cancel = Some flag }
let with_executor executor c = { c with executor }
let with_workers_addr addr c = { c with workers_addr = Some addr }
let with_cache_dir dir c = { c with cache_dir = Some dir }
let with_cache_max_bytes b c = { c with cache_max_bytes = Some b }
let with_run_id id c = { c with run_id = Some id }

let budget c =
  Bnb.Budget.create ?deadline_s:c.deadline_s ?max_nodes:c.max_nodes
    ?cancel:c.cancel ()

let validate ?(who = "Run_config.validate") c =
  if c.workers < 1 then
    invalid_arg (Printf.sprintf "%s: workers = %d (must be >= 1)" who c.workers);
  if c.block_workers < 1 then
    invalid_arg
      (Printf.sprintf "%s: block_workers = %d (must be >= 1)" who
         c.block_workers);
  (match c.relaxation with
  | Some r when not (r >= 1.) ->
      invalid_arg
        (Printf.sprintf "%s: relaxation = %g (must be >= 1)" who r)
  | Some _ | None -> ());
  if not (c.solver.Solver.gap >= 0. && Float.is_finite c.solver.Solver.gap)
  then
    invalid_arg
      (Printf.sprintf "%s: gap = %g (must be >= 0 and finite)" who
         c.solver.Solver.gap);
  (match c.solver.Solver.max_expanded with
  | Some cap when cap <= 0 ->
      invalid_arg
        (Printf.sprintf "%s: max_expanded = %d (must be > 0)" who cap)
  | Some _ | None -> ());
  (match c.deadline_s with
  | Some d when not (d > 0. && Float.is_finite d) ->
      invalid_arg
        (Printf.sprintf "%s: deadline_s = %g (must be > 0 and finite)" who d)
  | Some _ | None -> ());
  (match c.max_nodes with
  | Some cap when cap <= 0 ->
      invalid_arg
        (Printf.sprintf "%s: max_nodes = %d (must be > 0)" who cap)
  | Some _ | None -> ());
  (* The TCP executor needs a coordinator listen address (HOST:PORT;
     port 0 binds an ephemeral port). *)
  (match (c.executor, c.workers_addr) with
  | Executor.Tcp, None ->
      invalid_arg
        (Printf.sprintf "%s: executor = tcp requires workers_addr" who)
  | _, Some addr -> (
      match Executor.parse_addr addr with
      | Ok _ -> ()
      | Error e -> invalid_arg (Printf.sprintf "%s: workers_addr: %s" who e))
  | (Executor.Local | Executor.Sim), None -> ());
  (match c.cache_dir with
  | Some "" -> invalid_arg (Printf.sprintf "%s: cache_dir must not be empty" who)
  | Some _ | None -> ());
  (match c.cache_max_bytes with
  | Some b when b < 1 ->
      invalid_arg
        (Printf.sprintf "%s: cache_max_bytes = %d (must be >= 1)" who b)
  | Some _ | None -> ());
  (match c.run_id with
  | Some "" -> invalid_arg (Printf.sprintf "%s: run_id must not be empty" who)
  | Some _ | None -> ());
  c

type preset = Paper | Fast | Exhaustive

let preset_to_string = function
  | Paper -> "paper"
  | Fast -> "fast"
  | Exhaustive -> "exhaustive"

let preset_of_string = function
  | "paper" -> Some Paper
  | "fast" -> Some Fast
  | "exhaustive" -> Some Exhaustive
  | _ -> None

let of_preset = function
  | Paper ->
      (* The published configuration, byte for byte: sequential search
         over fully realised children, so runs reproduce the seed's
         trajectory exactly. *)
      {
        default with
        solver = { Solver.default_options with kernel = Solver.Reference };
      }
  | Fast ->
      (* Incremental kernels plus both parallel axes; the pipeline clamps
         block workers to the host and splits the rest sensibly. *)
      {
        default with
        block_workers = Int.max 1 (Domain.recommended_domain_count ());
      }
  | Exhaustive ->
      (* Every optimal topology, best-first so the bound tightens early
         despite the wider (un-pruned ties) frontier. *)
      {
        default with
        solver =
          {
            Solver.default_options with
            collect_all = true;
            search = Solver.Best_first;
          };
      }

let lb_to_string = function Solver.LB0 -> "lb0" | Solver.LB1 -> "lb1"

let lb_of_string = function
  | "lb0" -> Some Solver.LB0
  | "lb1" -> Some Solver.LB1
  | _ -> None

let mode33_to_string = function
  | Solver.Off -> "off"
  | Solver.Third_only -> "third_only"
  | Solver.Every_insertion -> "every_insertion"

let mode33_of_string = function
  | "off" -> Some Solver.Off
  | "third_only" -> Some Solver.Third_only
  | "every_insertion" -> Some Solver.Every_insertion
  | _ -> None

let initial_ub_to_string = function
  | Solver.Upgmm_ub -> "upgmm"
  | Solver.Upgma_ub -> "upgma"
  | Solver.Nj_ub -> "nj"
  | Solver.No_heuristic_ub -> "none"

let initial_ub_of_string = function
  | "upgmm" -> Some Solver.Upgmm_ub
  | "upgma" -> Some Solver.Upgma_ub
  | "nj" -> Some Solver.Nj_ub
  | "none" -> Some Solver.No_heuristic_ub
  | _ -> None

let search_to_string = function
  | Solver.Dfs -> "dfs"
  | Solver.Best_first -> "best_first"
  | Solver.Hybrid -> "hybrid"

let search_of_string = function
  | "dfs" -> Some Solver.Dfs
  | "best_first" -> Some Solver.Best_first
  | "hybrid" -> Some Solver.Hybrid
  | _ -> None

let branching_to_string = function
  | Solver.Paper_order -> "paper_order"
  | Solver.Largest_first -> "largest_first"
  | Solver.Residual_lb -> "residual_lb"

let branching_of_string = function
  | "paper_order" -> Some Solver.Paper_order
  | "largest_first" -> Some Solver.Largest_first
  | "residual_lb" -> Some Solver.Residual_lb
  | _ -> None

let linkage_to_string = function
  | Decompose.Max -> "max"
  | Decompose.Min -> "min"
  | Decompose.Avg -> "avg"

let linkage_of_string = function
  | "max" -> Some Decompose.Max
  | "min" -> Some Decompose.Min
  | "avg" -> Some Decompose.Avg
  | _ -> None

let to_json c =
  let s = c.solver in
  Obs.Json.Obj
    ([
      ( "solver",
        Obs.Json.Obj
          [
            ("lb", Obs.Json.String (lb_to_string s.Solver.lb));
            ( "relation33",
              Obs.Json.String (mode33_to_string s.Solver.relation33) );
            ( "initial_ub",
              Obs.Json.String (initial_ub_to_string s.Solver.initial_ub) );
            ( "max_expanded",
              match s.Solver.max_expanded with
              | Some cap -> Obs.Json.Int cap
              | None -> Obs.Json.Null );
            ("search", Obs.Json.String (search_to_string s.Solver.search));
            ( "branching",
              Obs.Json.String (branching_to_string s.Solver.branching) );
            ("gap", Obs.Json.Float s.Solver.gap);
            ("collect_all", Obs.Json.Bool s.Solver.collect_all);
            ( "kernel",
              Obs.Json.String (Kernel.kind_to_string s.Solver.kernel) );
          ] );
      ("linkage", Obs.Json.String (linkage_to_string c.linkage));
      ( "relaxation",
        match c.relaxation with
        | Some r -> Obs.Json.Float r
        | None -> Obs.Json.Null );
      ("workers", Obs.Json.Int c.workers);
      ("block_workers", Obs.Json.Int c.block_workers);
      ( "deadline_s",
        match c.deadline_s with
        | Some d -> Obs.Json.Float d
        | None -> Obs.Json.Null );
      ( "max_nodes",
        match c.max_nodes with
        | Some cap -> Obs.Json.Int cap
        | None -> Obs.Json.Null );
      ("executor", Obs.Json.String (Executor.kind_to_string c.executor));
      ( "workers_addr",
        match c.workers_addr with
        | Some a -> Obs.Json.String a
        | None -> Obs.Json.Null );
      ( "cache_dir",
        match c.cache_dir with
        | Some d -> Obs.Json.String d
        | None -> Obs.Json.Null );
    ]
    (* Optional fields append only when set, so manifests from runs that
       never touch them stay byte-identical to earlier releases. *)
    @ (match c.cache_max_bytes with
      | Some b -> [ ("cache_max_bytes", Obs.Json.Int b) ]
      | None -> [])
    @ (match c.run_id with
      | Some id -> [ ("run_id", Obs.Json.String id) ]
      | None -> []))
