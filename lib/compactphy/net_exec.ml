open Import

let src = Logs.Src.create "compactphy.netexec" ~doc:"TCP worker-pool executor"

module Log = (val Logs.src_log src : Logs.LOG)

let resolve host =
  try Unix.inet_addr_of_string host
  with _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with _ -> invalid_arg (Printf.sprintf "Net_exec: cannot resolve %S" host))

let addr_of s who =
  match Executor.parse_addr s with
  | Ok (host, port) -> (host, port)
  | Error e -> invalid_arg (Printf.sprintf "%s: %s" who e)

(* Dead peers are routine here — they are the fault model.  A write to
   a peer that just vanished must surface as EPIPE (handled wherever
   frames are written), not deliver SIGPIPE and kill the process. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

(* Tests and the CLI want to know which ephemeral port the coordinator
   actually bound (workers_addr "127.0.0.1:0"); the pipeline creates the
   coordinator internally, so the only general channel is a hook. *)
let bound_hook : (string -> int -> unit) option ref = ref None
let on_bound f = bound_hook := Some f

(* --- Coordinator ------------------------------------------------- *)

type cell_state =
  | Pending
  | Done of Executor.outcome
  | Failed of exn

type pending = {
  p_job : Executor.job;
  p_submitted_at : float;  (** coordinator-clock seconds, for aging *)
  p_submitted_ns : int64;  (** absolute [Obs.Clock.now_ns], for spans *)
  mutable p_retries : int;
  mutable p_dispatched_at : float;
  mutable p_dispatched_ns : int64;
  cell_m : Mutex.t;
  cell_c : Condition.t;
  mutable cell : cell_state;
}

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  mutable c_inflight : pending option;
  mutable c_alive : bool;
  mutable c_cancel_sent : bool;
  (* Estimated worker-to-coordinator clock offset: the minimum over all
     (coordinator receipt time - worker send stamp) samples from this
     connection's heartbeats and results.  Each sample overestimates the
     true offset by one network delay, so the minimum-delay sample wins;
     on localhost the error is microseconds, across a real network it is
     bounded by the best one-way trip observed.  Read and written only
     on this connection's reader thread. *)
  mutable c_offset_ns : int64 option;
  (* The coordinator's trace labels this worker's track once. *)
  mutable c_named : bool;
  (* Socket writes happen on a per-connection writer thread fed by this
     outbox, so a worker with a full TCP send buffer can never stall
     the coordinator state machine: [co.lock] is held across queue
     pushes only, never across a [write]. *)
  c_outbox : Wire.frame Queue.t;
  c_out_m : Mutex.t;
  c_out_c : Condition.t;
  mutable c_out_closed : bool;
  mutable c_writer : Thread.t option;
}

type coord = {
  listen_fd : Unix.file_descr;
  port : int;
  monitor : Budget.monitor;
  progress : Obs.Progress.t option;
  job_timeout_s : float option;
  fallback_after_s : float;
  max_retries : int;
  t0 : Obs.Clock.counter;
  lock : Mutex.t;
  wake : Condition.t;  (** fallback runner + housekeeping wake-ups *)
  queue : pending Queue.t;  (** jobs waiting for an idle worker *)
  fallback : pending Queue.t;  (** jobs degraded to a local solve *)
  mutable conns : conn list;
  mutable next_id : int;
  mutable stopping : bool;
  mutable cancelled : bool;
  mutable threads : Thread.t list;
}

let fill p st =
  Mutex.lock p.cell_m;
  (match p.cell with
  | Pending ->
      p.cell <- st;
      Condition.broadcast p.cell_c
  | Done _ | Failed _ -> ());
  Mutex.unlock p.cell_m

let await_pending p =
  Mutex.lock p.cell_m;
  let rec wait () =
    match p.cell with
    | Pending ->
        Condition.wait p.cell_c p.cell_m;
        wait ()
    | (Done _ | Failed _) as st -> st
  in
  let st = wait () in
  Mutex.unlock p.cell_m;
  match st with
  | Done o -> o
  | Failed e -> raise e
  | Pending -> assert false

(* Queue [frame] for the connection's writer thread.  Safe to call with
   [co.lock] held: the lock order is [co.lock] then [c_out_m], never
   the reverse. *)
let send c frame =
  Mutex.lock c.c_out_m;
  if not c.c_out_closed then begin
    Queue.push frame c.c_outbox;
    Condition.signal c.c_out_c
  end;
  Mutex.unlock c.c_out_m

let close_outbox c =
  Mutex.lock c.c_out_m;
  c.c_out_closed <- true;
  Condition.broadcast c.c_out_c;
  Mutex.unlock c.c_out_m

(* All of the functions below suffixed [_locked] require [co.lock]. *)

let alive_conns_locked co = List.filter (fun c -> c.c_alive) co.conns

let push_fallback_locked co p =
  Queue.push p co.fallback;
  Condition.broadcast co.wake

(* Mark a connection dead and put its in-flight job back in line.  The
   actual [close] belongs to the reader thread (which may be blocked in
   [read]); [shutdown] wakes it with EOF.  Idempotent via [c_alive]. *)
let kill_conn_locked co c =
  if c.c_alive then begin
    c.c_alive <- false;
    co.conns <- List.filter (fun x -> x != c) co.conns;
    close_outbox c;
    (try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL with _ -> ());
    match c.c_inflight with
    | None -> ()
    | Some p ->
        c.c_inflight <- None;
        p.p_retries <- p.p_retries + 1;
        if p.p_retries > co.max_retries then begin
          Log.warn (fun m ->
              m "job %d failed on %d workers; degrading to local solve"
                p.p_job.Executor.j_id p.p_retries);
          push_fallback_locked co p
        end
        else begin
          Log.info (fun m ->
              m "worker %d lost; retrying job %d elsewhere" c.c_id
                p.p_job.Executor.j_id);
          Queue.push p co.queue
        end
  end

(* Match idle workers with queued jobs.  Once the run budget tripped (or
   [cancel] was called) remote dispatch stops: workers solve under their
   own budgets and would run the block to completion, whereas the local
   fallback solves under the tripped [monitor] and returns immediately
   with the correct status and frontier. *)
let rec pump_locked co =
  if not (Queue.is_empty co.queue) then
    if co.cancelled || Budget.tripped co.monitor <> None then begin
      Queue.transfer co.queue co.fallback;
      Condition.broadcast co.wake
    end
    else
      match
        List.find_opt
          (fun c ->
            c.c_alive && match c.c_inflight with None -> true | Some _ -> false)
          co.conns
      with
      | None -> ()
      | Some c ->
          let p = Queue.pop co.queue in
          c.c_inflight <- Some p;
          p.p_dispatched_at <- Obs.Clock.elapsed_s co.t0;
          p.p_dispatched_ns <- Obs.Clock.now_ns ();
          Obs.Recorder.emit_ambient
            (Obs.Events.Block_start
               { id = p.p_job.Executor.j_id; size = p.p_job.Executor.j_size });
          (* A failed write surfaces on the writer thread, which kills
             the connection and requeues the job. *)
          send c (Wire.Job p.p_job);
          pump_locked co

(* Drain one connection's outbox onto its socket.  A failed write means
   the peer is gone: kill the connection (requeueing its in-flight job)
   and exit.  After the drain the socket is shut down, which also wakes
   this connection's reader with EOF; the reader joins this thread
   before closing the descriptor, so the fd is never closed while a
   write is in flight. *)
let writer co c () =
  let rec loop () =
    Mutex.lock c.c_out_m;
    let rec next () =
      match Queue.take_opt c.c_outbox with
      | Some f -> Some f
      | None ->
          if c.c_out_closed then None
          else begin
            Condition.wait c.c_out_c c.c_out_m;
            next ()
          end
    in
    let f = next () in
    Mutex.unlock c.c_out_m;
    match f with
    | None -> ()
    | Some f -> (
        match Wire.write_frame c.c_fd f with
        | () -> loop ()
        | exception _ ->
            Mutex.lock co.lock;
            kill_conn_locked co c;
            pump_locked co;
            Condition.broadcast co.wake;
            Mutex.unlock co.lock)
  in
  loop ();
  try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL with _ -> ()

(* One offset sample from a frame that carried the worker's clock.
   Reader-thread only (see [c_offset_ns]); pre-v4 frames stamp [0L]
   and are ignored. *)
let note_clock c ~worker_now_ns =
  if worker_now_ns <> 0L then begin
    let off = Int64.sub (Obs.Clock.now_ns ()) worker_now_ns in
    match c.c_offset_ns with
    | Some prev when Int64.compare prev off <= 0 -> ()
    | Some _ | None -> c.c_offset_ns <- Some off
  end

(* The Chrome-trace process track for a worker: the coordinator itself
   is [Span.self_pid] (1), workers follow. *)
let worker_pid c = 2 + c.c_id

(* Publish a worker's process sample as [proc.worker<N>.*] gauges, so
   [/metrics] and [phylo top] see every process in the pool. *)
let note_proc c = function
  | None -> ()
  | Some sample ->
      Obs.Procstat.set_gauges
        ~prefix:(Printf.sprintf "proc.worker%d" c.c_id)
        sample

(* Re-record a worker's spans into the coordinator's trace buffer, on
   the worker's own process track, with timestamps translated through
   the connection's estimated clock offset. *)
let merge_worker_trace c (t : Wire.remote_trace) =
  match Obs.Span.installed () with
  | None -> ()
  | Some buf ->
      let offset = Option.value ~default:0L c.c_offset_ns in
      if not c.c_named then begin
        c.c_named <- true;
        Obs.Span.set_process_name buf ~pid:(worker_pid c)
          (Printf.sprintf "worker %d" c.c_id)
      end;
      List.iter
        (fun (sp : Wire.span) ->
          let start_ns = Int64.add sp.Wire.sp_start_ns offset in
          Obs.Span.record buf ~cat:"worker" ~args:sp.Wire.sp_args
            ~pid:(worker_pid c) ~tid:0 ~start_ns
            ~stop_ns:(Int64.add start_ns sp.Wire.sp_dur_ns)
            sp.Wire.sp_name)
        t.Wire.rt_spans

let job_span_args ?(extra = []) (job : Executor.job) =
  ("job", Obs.Json.Int job.Executor.j_id)
  :: (match job.Executor.j_trace with
     | Some tr -> [ ("trace", Obs.Json.String tr) ]
     | None -> [])
  @ extra

let handle_result co c job_id solved trace =
  let result_ns = Obs.Clock.now_ns () in
  (match trace with
  | Some (t : Wire.remote_trace) ->
      note_clock c ~worker_now_ns:t.Wire.rt_now_ns;
      note_proc c t.Wire.rt_proc
  | None -> ());
  Mutex.lock co.lock;
  let p_opt =
    match c.c_inflight with
    | Some p when p.p_job.Executor.j_id = job_id ->
        c.c_inflight <- None;
        Some p
    | Some _ | None -> None
  in
  pump_locked co;
  Mutex.unlock co.lock;
  match p_opt with
  | None ->
      (* stale result for a job that was already reassigned: drop it *)
      Log.debug (fun m -> m "dropping stale result for job %d" job_id)
  | Some p ->
      (* Remote expansions never touched the coordinator's monitor while
         they happened; charge them on arrival so a whole-run node cap
         accounts for remote work exactly like local work. *)
      Budget.charge co.monitor solved.Executor.s_stats.Stats.expanded;
      let now = Obs.Clock.elapsed_s co.t0 in
      let solve_s = now -. p.p_dispatched_at in
      (* The coordinator's side of the job: queue wait (submit to
         dispatch) and the whole remote round trip (dispatch to this
         result).  [phylo obs timeline] derives network time as the rpc
         span minus the worker's merged solve span. *)
      (match Obs.Span.installed () with
      | None -> ()
      | Some buf ->
          Obs.Span.record buf ~cat:"executor" ~args:(job_span_args p.p_job)
            ~start_ns:p.p_submitted_ns ~stop_ns:p.p_dispatched_ns "job.queue";
          Obs.Span.record buf ~cat:"executor"
            ~args:
              (job_span_args
                 ~extra:[ ("worker", Obs.Json.Int c.c_id) ]
                 p.p_job)
            ~start_ns:p.p_dispatched_ns ~stop_ns:result_ns "job.rpc");
      (match trace with Some t -> merge_worker_trace c t | None -> ());
      Obs.Recorder.emit_ambient
        (Obs.Events.Block_finish
           {
             id = job_id;
             size = p.p_job.Executor.j_size;
             solve_s;
             status = Budget.status_to_string solved.Executor.s_status;
           });
      fill p
        (Done
           {
             Executor.o_job = job_id;
             o_solved = solved;
             o_queue_wait_s = p.p_dispatched_at;
             o_solve_s = solve_s;
           })

let handle_failure co c job_id message =
  Mutex.lock co.lock;
  let p_opt =
    match c.c_inflight with
    | Some p when p.p_job.Executor.j_id = job_id ->
        c.c_inflight <- None;
        Some p
    | Some _ | None -> None
  in
  pump_locked co;
  Mutex.unlock co.lock;
  match p_opt with
  | None -> ()
  | Some p ->
      (* A solver exception is deterministic — retrying on another worker
         would fail identically, so surface it through the future just
         like a local solve would raise. *)
      Log.err (fun m -> m "job %d failed remotely: %s" job_id message);
      fill p (Failed (Stdlib.Failure message))

let reader co c () =
  let rec loop () =
    match Wire.read_frame c.c_fd with
    | Ok (Wire.Heartbeat { job_id = _; expanded; now_ns; proc }) ->
        note_clock c ~worker_now_ns:now_ns;
        note_proc c proc;
        Obs.Recorder.emit_ambient
          (Obs.Events.Heartbeat
             {
               worker = c.c_id;
               expanded;
               pruned = 0;
               open_nodes = 0;
               ub = 0.;
               lb = 0.;
             });
        loop ()
    | Ok (Wire.Result { job_id; solved; trace }) ->
        handle_result co c job_id solved trace;
        loop ()
    | Ok (Wire.Failure { job_id; message }) ->
        handle_failure co c job_id message;
        loop ()
    | Ok _ -> loop () (* protocol noise; ignore *)
    | Error _ -> ()
    | exception _ -> ()
  in
  loop ();
  Mutex.lock co.lock;
  kill_conn_locked co c;
  pump_locked co;
  Condition.broadcast co.wake;
  Mutex.unlock co.lock;
  (match c.c_writer with
  | Some th -> ( try Thread.join th with _ -> ())
  | None -> ());
  (try Unix.close c.c_fd with _ -> ())

let acceptor co () =
  let rec loop () =
    match Unix.accept co.listen_fd with
    | fd, _ -> (
        match Wire.read_frame fd with
        | Ok (Wire.Hello { version }) when version = Wire.version -> (
            Mutex.lock co.lock;
            if co.stopping then begin
              Mutex.unlock co.lock;
              (try Unix.close fd with _ -> ())
            end
            else begin
              let id = co.next_id in
              co.next_id <- id + 1;
              let c =
                {
                  c_id = id;
                  c_fd = fd;
                  c_inflight = None;
                  c_alive = true;
                  c_cancel_sent = false;
                  c_offset_ns = None;
                  c_named = false;
                  c_outbox = Queue.create ();
                  c_out_m = Mutex.create ();
                  c_out_c = Condition.create ();
                  c_out_closed = false;
                  c_writer = None;
                }
              in
              co.conns <- c :: co.conns;
              c.c_writer <- Some (Thread.create (writer co c) ());
              let th = Thread.create (reader co c) () in
              co.threads <- th :: co.threads;
              Log.info (fun m -> m "worker %d connected" id);
              (* The outbox is FIFO, so the Welcome is on the wire
                 before any job [pump_locked] dispatches. *)
              send c (Wire.Welcome { version = Wire.version; worker_id = id });
              pump_locked co;
              Mutex.unlock co.lock;
              loop ()
            end)
        | Ok _ | Error _ ->
            (try Unix.close fd with _ -> ());
            loop ()
        | exception _ ->
            (try Unix.close fd with _ -> ());
            loop ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception _ -> if not co.stopping then loop ()
  in
  loop ()

(* Periodic duties: cancel in-flight work once the run budget trips,
   enforce per-job timeouts, and age worker-less jobs into the local
   fallback so a pool with no (remaining) workers still finishes. *)
let housekeeping co () =
  let rec loop () =
    Thread.delay 0.05;
    Mutex.lock co.lock;
    let stop = co.stopping in
    if not stop then begin
      let now = Obs.Clock.elapsed_s co.t0 in
      if co.cancelled || Budget.tripped co.monitor <> None then
        List.iter
          (fun c ->
            if c.c_alive && not c.c_cancel_sent then begin
              c.c_cancel_sent <- true;
              match c.c_inflight with
              | Some p ->
                  send c (Wire.Cancel { job_id = p.p_job.Executor.j_id })
              | None -> ()
            end)
          co.conns;
      (match co.job_timeout_s with
      | None -> ()
      | Some tmo ->
          List.iter
            (fun c ->
              match c.c_inflight with
              | Some p when now -. p.p_dispatched_at > tmo ->
                  Log.warn (fun m ->
                      m "job %d timed out after %.1fs on worker %d"
                        p.p_job.Executor.j_id tmo c.c_id);
                  kill_conn_locked co c
              | Some _ | None -> ())
            (alive_conns_locked co));
      if alive_conns_locked co = [] && not (Queue.is_empty co.queue) then begin
        let aged =
          Queue.fold
            (fun acc p -> acc || now -. p.p_submitted_at > co.fallback_after_s)
            false co.queue
        in
        if aged then begin
          Log.warn (fun m ->
              m "no workers for %.1fs; degrading %d queued job(s) to local \
                 solves"
                co.fallback_after_s (Queue.length co.queue));
          Queue.transfer co.queue co.fallback;
          Condition.broadcast co.wake
        end
      end;
      pump_locked co
    end;
    Mutex.unlock co.lock;
    if not stop then loop ()
  in
  loop ()

(* Degraded mode: solve in this process, on the calling thread of this
   runner, under the real run monitor — bit-identical to the local
   executor's sequential schedule. *)
let fallback_runner co () =
  let rec loop () =
    Mutex.lock co.lock;
    let rec next () =
      match Queue.take_opt co.fallback with
      | Some p -> Some p
      | None ->
          if co.stopping then None
          else begin
            Condition.wait co.wake co.lock;
            next ()
          end
    in
    let p = next () in
    Mutex.unlock co.lock;
    match p with
    | None -> ()
    | Some p ->
        (match
           Executor.run_job ~monitor:co.monitor ?progress:co.progress
             ~t0:co.t0 p.p_job
         with
        | o -> fill p (Done o)
        | exception e -> fill p (Failed e));
        loop ()
  in
  loop ()

let submit co job =
  let p =
    {
      p_job = job;
      p_submitted_at = Obs.Clock.elapsed_s co.t0;
      p_submitted_ns = Obs.Clock.now_ns ();
      p_retries = 0;
      p_dispatched_at = 0.;
      p_dispatched_ns = 0L;
      cell_m = Mutex.create ();
      cell_c = Condition.create ();
      cell = Pending;
    }
  in
  Mutex.lock co.lock;
  Queue.push p co.queue;
  pump_locked co;
  Mutex.unlock co.lock;
  { Executor.await = (fun () -> await_pending p) }

let cancel co () =
  Mutex.lock co.lock;
  co.cancelled <- true;
  pump_locked co;
  Condition.broadcast co.wake;
  Mutex.unlock co.lock

let shutdown co () =
  Mutex.lock co.lock;
  if not co.stopping then begin
    co.stopping <- true;
    (* Each writer drains its outbox (so the Shutdown frame goes out
       whole) and then shuts the socket down, waking its reader. *)
    List.iter
      (fun c ->
        if c.c_alive then begin
          send c Wire.Shutdown;
          close_outbox c
        end)
      co.conns;
    (try Unix.shutdown co.listen_fd Unix.SHUTDOWN_ALL with _ -> ());
    (try Unix.close co.listen_fd with _ -> ());
    Condition.broadcast co.wake
  end;
  let ths = co.threads in
  Mutex.unlock co.lock;
  List.iter (fun th -> try Thread.join th with _ -> ()) ths

let coordinator ?job_timeout_s ?(fallback_after_s = 10.) ?(max_retries = 2)
    ~addr ~monitor ?progress () =
  ignore_sigpipe ();
  let host, port = addr_of addr "Net_exec.coordinator" in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (resolve host, port));
     Unix.listen fd 16
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let co =
    {
      listen_fd = fd;
      port;
      monitor;
      progress;
      job_timeout_s;
      fallback_after_s;
      max_retries;
      t0 = Obs.Clock.counter ();
      lock = Mutex.create ();
      wake = Condition.create ();
      queue = Queue.create ();
      fallback = Queue.create ();
      conns = [];
      next_id = 0;
      stopping = false;
      cancelled = false;
      threads = [];
    }
  in
  co.threads <-
    [
      Thread.create (acceptor co) ();
      Thread.create (housekeeping co) ();
      Thread.create (fallback_runner co) ();
    ];
  Log.app (fun m -> m "worker pool listening on %s:%d" host port);
  (match !bound_hook with Some f -> f host port | None -> ());
  ( {
      Executor.name = "tcp";
      capacity =
        (* Live workers, queried at call time: workers come and go, so
           the pool's concurrency is a property of the moment. *)
        (fun () ->
          Mutex.lock co.lock;
          let n = List.length (alive_conns_locked co) in
          Mutex.unlock co.lock;
          Int.max 1 n);
      submit = submit co;
      cancel = cancel co;
      shutdown = shutdown co;
    },
    port )

(* --- Worker ------------------------------------------------------ *)

type worker_exit = [ `Shutdown | `Eof | `Died ]

(* Solve one job while keeping the socket responsive: the solve runs in
   its own thread under a per-job budget; this thread multiplexes frame
   reads (Cancel / Shutdown) with periodic heartbeats. *)
let serve_job fd ~heartbeat_every_s ~delay_result_s (job : Executor.job) =
  let cancel = Atomic.make false in
  (* Mirror [Executor.job_monitor]: the same node share polled at the
     same period as the local executor's [Budget.sub] child, so a
     share-capped block trips at the same expansion count wherever it
     runs.  Deadlines and whole-run caps still live with the
     coordinator, which propagates them as [Wire.Cancel]. *)
  let monitor =
    Budget.arm
      (Budget.create ?max_nodes:job.Executor.j_node_share ~cancel
         ~poll_every:job.Executor.j_poll_every ())
  in
  let result = Atomic.make None in
  let solve_start_ns = Obs.Clock.now_ns () in
  let th =
    Thread.create
      (fun () ->
        let r =
          try Ok (Executor.solve_job ~monitor job) with e -> Error e
        in
        Atomic.set result (Some r))
      ()
  in
  let t = Obs.Clock.counter () in
  let next_hb = ref 0. in
  let rec wait () =
    match Atomic.get result with
    | Some r ->
        Thread.join th;
        r
    | None ->
        let readable, _, _ =
          try Unix.select [ fd ] [] [] 0.05 with _ -> ([], [], [])
        in
        if readable <> [] then begin
          match Wire.read_frame fd with
          | Ok (Wire.Cancel _) | Ok Wire.Shutdown -> Atomic.set cancel true
          | Ok _ -> ()
          | Error _ -> Atomic.set cancel true (* coordinator gone *)
          | exception _ -> Atomic.set cancel true
        end;
        let el = Obs.Clock.elapsed_s t in
        if el >= !next_hb then begin
          next_hb := el +. heartbeat_every_s;
          try
            Wire.write_frame fd
              (Wire.Heartbeat
                 {
                   job_id = Some job.Executor.j_id;
                   expanded = Budget.nodes monitor;
                   now_ns = Obs.Clock.now_ns ();
                   proc = Some (Obs.Procstat.sample ());
                 })
          with _ -> ()
        end;
        wait ()
  in
  let r = wait () in
  let solve_stop_ns = Obs.Clock.now_ns () in
  if delay_result_s > 0. then Thread.delay delay_result_s;
  (* The worker's half of the merged timeline: when the job carries a
     trace context, ship the solve span (worker-clock timestamps; the
     coordinator translates them) plus a process sample back with the
     result.  Untraced jobs produce the exact v3 result frame. *)
  let trace_payload solved =
    match job.Executor.j_trace with
    | None -> None
    | Some tr ->
        let sp_args =
          [
            ("job", Obs.Json.Int job.Executor.j_id);
            ("trace", Obs.Json.String tr);
            ("size", Obs.Json.Int job.Executor.j_size);
          ]
          @
          match solved with
          | Some (sv : Executor.solved) ->
              [ ("cached", Obs.Json.Bool sv.Executor.s_from_cache) ]
          | None -> []
        in
        Some
          {
            Wire.rt_spans =
              [
                {
                  Wire.sp_name = "job.solve";
                  sp_start_ns = solve_start_ns;
                  sp_dur_ns = Int64.sub solve_stop_ns solve_start_ns;
                  sp_args;
                };
              ];
            rt_now_ns = Obs.Clock.now_ns ();
            rt_proc = Some (Obs.Procstat.sample ());
          }
  in
  try
    match r with
    | Ok solved ->
        Wire.write_frame fd
          (Wire.Result
             {
               job_id = job.Executor.j_id;
               solved;
               trace = trace_payload (Some solved);
             })
    | Error e ->
        Wire.write_frame fd
          (Wire.Failure
             { job_id = job.Executor.j_id; message = Printexc.to_string e })
  with _ -> ()

let run_worker ?die_after_jobs ?(delay_result_s = 0.)
    ?(heartbeat_every_s = 1.) ~connect () =
  ignore_sigpipe ();
  let host, port = addr_of connect "Net_exec.run_worker" in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (resolve host, port))
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  let finish (r : worker_exit) =
    (try Unix.close fd with _ -> ());
    r
  in
  match
    Wire.write_frame fd (Wire.Hello { version = Wire.version });
    Wire.read_frame fd
  with
  | Ok (Wire.Welcome { worker_id; _ }) ->
      Log.info (fun m -> m "connected to %s:%d as worker %d" host port worker_id);
      let jobs = ref 0 in
      let rec loop () =
        match Wire.read_frame fd with
        | Ok (Wire.Job job) -> (
            incr jobs;
            match die_after_jobs with
            | Some n when !jobs >= n ->
                (* Fault injection: drop dead mid-job, without a result
                   or a goodbye — exactly what a SIGKILL looks like from
                   the coordinator's side. *)
                Log.warn (fun m ->
                    m "worker %d dying on purpose (job %d)" worker_id
                      job.Executor.j_id);
                finish `Died
            | Some _ | None ->
                serve_job fd ~heartbeat_every_s ~delay_result_s job;
                loop ())
        | Ok Wire.Shutdown -> finish `Shutdown
        | Ok _ -> loop ()
        | Error _ -> finish `Eof
        | exception _ -> finish `Eof
      in
      loop ()
  | Ok _ | Error _ -> finish `Eof
  | exception e ->
      ignore (finish `Eof);
      raise e
